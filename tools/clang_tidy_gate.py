#!/usr/bin/env python3
"""Baseline-ratcheted clang-tidy gate.

Usage:
    clang_tidy_gate.py [--baseline tools/clang_tidy_baseline.txt]
                       [--update] LOG [LOG...]

LOG files contain raw clang-tidy output. Findings are normalized to
(repo-relative file, check) pairs and counted; line numbers are ignored
so unrelated edits cannot shift the verdict. The gate FAILS (exit 1)
only when a (file, check) pair appears more often than the committed
baseline records — i.e. only on new findings. Fixing findings without
updating the baseline is fine (the job prints a reminder to ratchet).

Regenerate the baseline after an intentional change (or download the
`clang-tidy-log-*` artifact the CI job uploads and run --update on it):

    cmake --preset ci-gcc -DSGL_BUILD_TESTS=OFF -DSGL_BUILD_BENCHMARKS=OFF
    run-clang-tidy-18 -p build/ci-gcc 'src/(solver|la)/.*\\.cpp' \
        | tee tidy.log
    python3 tools/clang_tidy_gate.py --update tidy.log

Baseline format: one `count<TAB>file<TAB>check` line per pair, sorted;
`#` comments and blank lines are ignored. A `# mode: bootstrap` line
puts the gate in REPORT-ONLY mode: findings are tabulated in the
summary but never fail the job — used exactly once, when the gate is
introduced from an environment without clang-tidy, so the first real CI
run can seed the baseline from its artifact instead of guessing. The
gate becomes blocking when the marker is removed (--update removes it).
"""

from __future__ import annotations

import argparse
import collections
import os
import re
import sys

# path:line:col: warning: message [check-name(,check-name)*]
FINDING = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?:warning|error):\s+.*\[(?P<checks>[\w.,-]+)\]\s*$"
)


def normalize_path(path: str) -> str:
    """Repo-relative path with build-dir prefixes stripped."""
    path = os.path.normpath(path)
    cwd = os.getcwd()
    if os.path.isabs(path):
        try:
            path = os.path.relpath(path, cwd)
        except ValueError:
            pass
    # Strip leading ../ produced by compile databases rooted in build/.
    while path.startswith(".." + os.sep):
        path = path[3:]
    return path.replace(os.sep, "/")


def collect_findings(paths: list[str]) -> collections.Counter:
    counts: collections.Counter = collections.Counter()
    for log in paths:
        with open(log, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                match = FINDING.match(line.rstrip("\n"))
                if not match:
                    continue
                file = normalize_path(match.group("file"))
                for check in match.group("checks").split(","):
                    counts[(file, check)] += 1
    return counts


def load_baseline(path: str) -> tuple[collections.Counter, bool]:
    """Returns (per-pair counts, bootstrap flag)."""
    counts: collections.Counter = collections.Counter()
    bootstrap = False
    if not os.path.exists(path):
        return counts, bootstrap
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if line.startswith("#"):
                if line.lstrip("# ").startswith("mode: bootstrap"):
                    bootstrap = True
                continue
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                continue
            counts[(parts[1], parts[2])] = int(parts[0])
    return counts, bootstrap


def write_baseline(path: str, counts: collections.Counter) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# clang-tidy warning baseline — maintained by\n")
        fh.write("# tools/clang_tidy_gate.py --update (see its docstring).\n")
        fh.write("# count\tfile\tcheck\n")
        for (file, check), count in sorted(counts.items()):
            fh.write(f"{count}\t{file}\t{check}\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("logs", nargs="+", help="clang-tidy output file(s)")
    parser.add_argument(
        "--baseline",
        default="tools/clang_tidy_baseline.txt",
        help="committed warning baseline (default %(default)s)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the logs instead of gating",
    )
    args = parser.parse_args()

    current = collect_findings(args.logs)
    if args.update:
        write_baseline(args.baseline, current)
        print(f"clang_tidy_gate: wrote {sum(current.values())} finding(s) "
              f"across {len(current)} (file, check) pair(s) to {args.baseline}")
        return 0

    baseline, bootstrap = load_baseline(args.baseline)
    new = {
        key: (count, baseline.get(key, 0))
        for key, count in sorted(current.items())
        if count > baseline.get(key, 0)
    }
    fixed = {
        key: (current.get(key, 0), count)
        for key, count in sorted(baseline.items())
        if current.get(key, 0) < count
    }

    print("### clang-tidy gate")
    print()
    print(f"{sum(current.values())} finding(s) now, "
          f"{sum(baseline.values())} in the baseline.")
    if new:
        print()
        print("| file | check | now | baseline |")
        print("|---|---|---:|---:|")
        for (file, check), (count, base) in new.items():
            print(f"| `{file}` | `{check}` | {count} | {base} |")
        print()
        if bootstrap:
            print("**REPORT-ONLY (bootstrap baseline):** seed "
                  "tools/clang_tidy_baseline.txt from the uploaded tidy.log "
                  "artifact via `clang_tidy_gate.py --update` — that removes "
                  "the `# mode: bootstrap` marker and makes this gate "
                  "blocking.")
            return 0
        print("**FAIL: new clang-tidy findings.** Fix them or, if accepted "
              "deliberately, regenerate the baseline (see "
              "tools/clang_tidy_gate.py).")
        return 1
    if fixed:
        print()
        print(f"{len(fixed)} (file, check) pair(s) improved on the baseline — "
              "consider ratcheting it down with --update.")
    print()
    print("**PASS: no new findings.**")
    return 0


if __name__ == "__main__":
    sys.exit(main())
