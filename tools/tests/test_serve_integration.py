#!/usr/bin/env python3
"""End-to-end integration test for the sgl_serve daemon.

Boots the real binary twice on unix-domain sockets -- once with the
default batching width, once with --batch-width 1 (pure serial) -- and
drives the same NDJSON request stream against both:

  * every query response must be BYTE-identical between the two servers
    (the solver's block bit-equality contract surfaced over the wire);
  * malformed requests must come back as typed error envelopes with
    stable ErrorCode names, never free-text to parse;
  * concurrent client connections must coalesce into batches without
    changing a single response byte;
  * `shutdown` must stop the daemon cleanly (exit code 0).

Usage: test_serve_integration.py /path/to/sgl_serve
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time


def fail(message):
    print("FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def check(condition, message):
    if not condition:
        fail(message)


class ServeDaemon:
    """Context manager owning one sgl_serve process on a temp socket."""

    def __init__(self, binary, extra_args=()):
        self.binary = binary
        self.extra_args = list(extra_args)
        self.tempdir = None
        self.socket_path = None
        self.process = None

    def __enter__(self):
        self.tempdir = tempfile.mkdtemp(prefix="sgl_serve_", dir="/tmp")
        self.socket_path = os.path.join(self.tempdir, "s.sock")
        self.process = subprocess.Popen(
            [self.binary, "--socket", self.socket_path] + self.extra_args,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        deadline = time.monotonic() + 30.0
        while not os.path.exists(self.socket_path):
            if self.process.poll() is not None:
                out = self.process.stdout.read().decode(errors="replace")
                fail("daemon exited before binding its socket:\n" + out)
            if time.monotonic() > deadline:
                fail("daemon did not bind %s within 30s" % self.socket_path)
            time.sleep(0.01)
        return self

    def __exit__(self, exc_type, exc, tb):
        if self.process.poll() is None:
            try:
                self.request({"op": "shutdown"})
            except OSError:
                pass
        try:
            self.process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()
            if exc_type is None:
                fail("daemon ignored shutdown; had to kill it")
        self.process.stdout.close()
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        os.rmdir(self.tempdir)
        return False

    def connect(self):
        client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        client.settimeout(60.0)
        client.connect(self.socket_path)
        return client

    def request(self, payload):
        """One request on a fresh connection; returns the raw response line."""
        with self.connect() as client:
            return request_on(client, payload)


def recv_line(client):
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = client.recv(65536)
        if not chunk:
            fail("connection closed mid-response (got %r)" % buf[:200])
        buf += chunk
    return buf[:-1]


def request_on(client, payload):
    line = json.dumps(payload, separators=(",", ":")) + "\n"
    client.sendall(line.encode())
    return recv_line(client)


def error_code(response_bytes):
    doc = json.loads(response_bytes)
    check(doc.get("ok") is False, "expected an error envelope: %r" % doc)
    check("message" in doc["error"], "error envelope missing message")
    return doc["error"]["code"]


LEARN = {
    "op": "learn_synthetic",
    "graph": "grid2d",
    "nx": 10,
    "ny": 10,
    "measurements": 40,
}


def query_stream():
    requests = []
    for i in range(12):
        requests.append({"op": "resistance", "s": i, "t": 99 - i})
    requests.append(
        {"op": "resistance_batch", "pairs": [[0, 1], [1, 2], [3, 50], [98, 99]]}
    )
    requests.append({"op": "embedding"})
    return requests


def run_stream(daemon):
    """Learn, then run the query stream on one connection; returns responses."""
    responses = []
    with daemon.connect() as client:
        responses.append(request_on(client, LEARN))
        for req in query_stream():
            responses.append(request_on(client, req))
    return responses


def main():
    if len(sys.argv) != 2:
        fail("usage: test_serve_integration.py /path/to/sgl_serve")
    binary = sys.argv[1]
    check(os.access(binary, os.X_OK), "not executable: " + binary)

    # --- Batched vs serial: byte-identical responses -------------------
    with ServeDaemon(binary) as batched, \
            ServeDaemon(binary, ["--batch-width", "1"]) as serial:
        batched_responses = run_stream(batched)
        serial_responses = run_stream(serial)
        check(len(batched_responses) == len(serial_responses), "stream length")
        for i, (a, b) in enumerate(zip(batched_responses, serial_responses)):
            check(a == b, "response %d differs:\n  batched: %r\n  serial:  %r"
                  % (i, a[:400], b[:400]))
        for resp in batched_responses:
            check(json.loads(resp).get("ok") is True,
                  "stream response not ok: %r" % resp[:400])

        # --- Typed errors over the wire --------------------------------
        code = error_code(batched.request({"op": "frobnicate"}))
        check(code == "unknown-operation", "got code %r" % code)
        code = error_code(batched.request({"op": "resistance", "s": 0, "t": 0}))
        check(code == "bad-request", "got code %r" % code)
        code = error_code(batched.request({"op": "resistance"}))
        check(code == "bad-request", "missing field: got code %r" % code)
        with batched.connect() as client:
            client.sendall(b"this is not json\n")
            code = error_code(recv_line(client))
        check(code == "parse-error", "got code %r" % code)

        # --- Concurrent clients still match the serial bytes -----------
        expected = {}
        for i in range(24):
            req = {"op": "resistance", "s": i, "t": 99 - i, "id": i}
            expected[i] = serial.request(req)

        results = {}
        lock = threading.Lock()

        def worker(ids):
            with batched.connect() as client:
                for i in ids:
                    req = {"op": "resistance", "s": i, "t": 99 - i, "id": i}
                    resp = request_on(client, req)
                    with lock:
                        results[i] = resp

        threads = [threading.Thread(target=worker,
                                    args=(range(w, 24, 8),))
                   for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(24):
            check(results[i] == expected[i],
                  "concurrent response %d differs:\n  batched: %r\n  serial:  %r"
                  % (i, results[i][:400], expected[i][:400]))

        stats = json.loads(batched.request({"op": "stats"}))
        check(stats["batched_columns"] >= 24, "stats lost columns: %r" % stats)
        # Only engine-level failures count (s == t); parse/protocol errors
        # are rejected before the engine sees them.
        check(stats["errors"] == 1, "typed errors not counted: %r" % stats)

    # Both daemons exited via shutdown inside __exit__.
    print("OK: batched and serial servers byte-identical; typed errors stable")
    return 0


if __name__ == "__main__":
    sys.exit(main())
