#!/usr/bin/env python3
"""Self-tests for tools/determinism_lint.py.

Run directly (`python3 tools/tests/test_determinism_lint.py`) or via the
`lint.determinism_selftest` ctest registered in tools/CMakeLists.txt.

Each lint rule is exercised against a committed fixture pair under
tools/tests/fixtures/: a *_positive.snippet that must produce exactly the
expected findings, and a *_waived.snippet (legitimate shapes plus
`// sgl-lint: allow(...)` waivers) that must lint clean. Fixtures use the
.snippet extension so the clang-format CI leg, which only formats
*.cpp/*.hpp, leaves their deliberate rule-breaking layout alone.
"""

import collections
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, TOOLS_DIR)

import determinism_lint as dl  # noqa: E402

FIXTURES = os.path.join(TOOLS_DIR, "tests", "fixtures")
LINT = os.path.join(TOOLS_DIR, "determinism_lint.py")


def lint_fixture(name, rel_path):
    with open(os.path.join(FIXTURES, name), encoding="utf-8") as fh:
        return dl.lint_text(fh.read(), rel_path)


def rule_counts(findings):
    return collections.Counter(rule for _, rule, _ in findings)


class StripCommentsAndStrings(unittest.TestCase):
    def test_preserves_line_structure(self):
        text = "a /* multi\nline */ b\n// tail\nc\n"
        stripped = dl.strip_comments_and_strings(text)
        self.assertEqual(stripped.count("\n"), text.count("\n"))
        self.assertEqual(stripped.splitlines()[3], "c")
        self.assertNotIn("multi", stripped)
        self.assertNotIn("tail", stripped)

    def test_blanks_strings_and_chars(self):
        stripped = dl.strip_comments_and_strings(
            's = "std::rand()"; c = \'x\';')
        self.assertNotIn("rand", stripped)
        self.assertNotIn("x", stripped.replace("x = ", ""))

    def test_digit_separators_are_not_char_literals(self):
        stripped = dl.strip_comments_and_strings("int n = 1'000'000; f();")
        self.assertIn("f()", stripped)

    def test_escaped_quote_inside_string(self):
        stripped = dl.strip_comments_and_strings('s = "a\\"b"; g();')
        self.assertIn("g()", stripped)


class Waivers(unittest.TestCase):
    def test_single_and_multi_rule_waivers(self):
        text = ("x;\n"
                "// sgl-lint: allow(raw-threading, nondeterministic-rng) why\n"
                "y;  // sgl-lint: allow(reciprocal-multiply) reason\n")
        waivers = dl.waived_lines(text)
        self.assertEqual(waivers[2],
                         {"raw-threading", "nondeterministic-rng"})
        self.assertEqual(waivers[3], {"reciprocal-multiply"})
        self.assertNotIn(1, waivers)


class RuleFixtures(unittest.TestCase):
    def test_nondeterministic_rng_positive(self):
        findings = lint_fixture("nondeterministic_rng_positive.snippet",
                                "src/core/fixture.cpp")
        self.assertEqual(rule_counts(findings),
                         {"nondeterministic-rng": 4})

    def test_nondeterministic_rng_waived(self):
        self.assertEqual(lint_fixture("nondeterministic_rng_waived.snippet",
                                      "src/core/fixture.cpp"), [])

    def test_raw_threading_positive(self):
        findings = lint_fixture("raw_threading_positive.snippet",
                                "src/graph/fixture.cpp")
        self.assertEqual(rule_counts(findings), {"raw-threading": 3})

    def test_raw_threading_waived(self):
        self.assertEqual(lint_fixture("raw_threading_waived.snippet",
                                      "src/graph/fixture.cpp"), [])

    def test_raw_threading_exempt_in_parallel_impl(self):
        # The pool implementation itself owns the raw primitives.
        for exempt in ("src/common/parallel.cpp", "src/common/parallel.hpp"):
            self.assertEqual(
                lint_fixture("raw_threading_positive.snippet", exempt), [],
                exempt)

    def test_unordered_iteration_positive(self):
        findings = lint_fixture("unordered_iteration_positive.snippet",
                                "src/la/fixture.cpp")
        self.assertEqual(rule_counts(findings), {"unordered-iteration": 2})

    def test_unordered_iteration_waived(self):
        self.assertEqual(lint_fixture("unordered_iteration_waived.snippet",
                                      "src/la/fixture.cpp"), [])

    def test_unordered_iteration_scoped_to_numeric_modules(self):
        # graph/ uses unordered containers for topology bookkeeping; the
        # rule only bites in la / solver / spectral / eig.
        self.assertEqual(
            lint_fixture("unordered_iteration_positive.snippet",
                         "src/graph/fixture.cpp"), [])

    def test_shared_mutation_positive(self):
        findings = lint_fixture("shared_mutation_positive.snippet",
                                "src/spectral/fixture.cpp")
        self.assertEqual(rule_counts(findings),
                         {"shared-mutation-in-parallel": 2})

    def test_shared_mutation_waived(self):
        self.assertEqual(lint_fixture("shared_mutation_waived.snippet",
                                      "src/spectral/fixture.cpp"), [])

    def test_warm_start_accumulator_positive(self):
        # The incremental-relearning bookkeeping shape (DESIGN.md §8):
        # warm-start/update accumulators folded inside a parallel body
        # must be flagged like any captured accumulator.
        findings = lint_fixture("warm_start_accumulator_positive.snippet",
                                "src/solver/fixture.cpp")
        self.assertEqual(rule_counts(findings),
                         {"shared-mutation-in-parallel": 2})

    def test_warm_start_accumulator_waived(self):
        # ... while the SERIAL accumulation SolverContext actually uses
        # (appended-weight loop on the rank-1 update path) lints clean.
        self.assertEqual(
            lint_fixture("warm_start_accumulator_waived.snippet",
                         "src/solver/fixture.cpp"), [])

    def test_solver_context_sources_in_scope_and_clean(self):
        # The real SolverContext sources sit in src/solver, so every
        # numeric-module rule applies to them; they must lint clean.
        repo_root = os.path.dirname(TOOLS_DIR)
        for rel in ("src/solver/solver_context.hpp",
                    "src/solver/solver_context.cpp"):
            with open(os.path.join(repo_root, rel), encoding="utf-8") as fh:
                self.assertEqual(dl.lint_text(fh.read(), rel), [], rel)

    def test_panel_accumulation_positive(self):
        # The supernodal dense-panel shapes (DESIGN.md §9) gone wrong: a
        # reciprocal pivot scale and a captured cross-panel accumulator
        # inside the level-parallel body.
        findings = lint_fixture("panel_accumulation_positive.snippet",
                                "src/solver/fixture.cpp")
        self.assertEqual(rule_counts(findings),
                         {"reciprocal-multiply": 1,
                          "shared-mutation-in-parallel": 1})

    def test_panel_accumulation_waived(self):
        # ... while the dividing pivot scale and element-wise panel
        # updates the kernels actually use lint clean.
        self.assertEqual(
            lint_fixture("panel_accumulation_waived.snippet",
                         "src/solver/fixture.cpp"), [])

    def test_panel_and_hnsw_sources_in_scope_and_clean(self):
        # The PR-9 hot-path sources (panel factorization kernels, the
        # generation-batched HNSW build, and the SIMD helpers) must lint
        # clean under every rule that applies to their module.
        repo_root = os.path.dirname(TOOLS_DIR)
        for rel in ("src/solver/cholesky.hpp",
                    "src/solver/cholesky.cpp",
                    "src/knn/hnsw.hpp",
                    "src/knn/hnsw.cpp",
                    "src/common/simd.hpp"):
            with open(os.path.join(repo_root, rel), encoding="utf-8") as fh:
                self.assertEqual(dl.lint_text(fh.read(), rel), [], rel)

    def test_reciprocal_multiply_positive(self):
        findings = lint_fixture("reciprocal_multiply_positive.snippet",
                                "src/solver/fixture.cpp")
        self.assertEqual(rule_counts(findings), {"reciprocal-multiply": 2})

    def test_reciprocal_multiply_waived(self):
        self.assertEqual(lint_fixture("reciprocal_multiply_waived.snippet",
                                      "src/solver/fixture.cpp"), [])

    def test_reciprocal_multiply_scoped_to_solver_and_la(self):
        self.assertEqual(
            lint_fixture("reciprocal_multiply_positive.snippet",
                         "src/graph/fixture.cpp"), [])

    def test_findings_carry_line_numbers(self):
        findings = lint_fixture("reciprocal_multiply_positive.snippet",
                                "src/solver/fixture.cpp")
        lines = [line for line, _, _ in findings]
        self.assertEqual(lines, sorted(lines))
        self.assertTrue(all(line > 0 for line in lines))


class BaselineRoundTrip(unittest.TestCase):
    def test_write_then_load(self):
        counts = collections.Counter({
            ("src/solver/a.cpp", "reciprocal-multiply"): 2,
            ("src/la/b.hpp", "unordered-iteration"): 1,
        })
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "baseline.txt")
            dl.write_baseline(path, counts)
            self.assertEqual(dl.load_baseline(path), counts)

    def test_missing_baseline_is_empty(self):
        self.assertEqual(
            dl.load_baseline("/nonexistent/baseline.txt"),
            collections.Counter())


class CommandLineGate(unittest.TestCase):
    """End-to-end: the gate fails on new findings, --update accepts them,
    and the gate passes afterwards."""

    def run_lint(self, cwd, *args):
        return subprocess.run(
            [sys.executable, LINT, "--baseline", "baseline.txt", "src",
             *args],
            cwd=cwd, capture_output=True, text=True, check=False)

    def test_gate_update_cycle(self):
        with tempfile.TemporaryDirectory() as tmp:
            solver_dir = os.path.join(tmp, "src", "solver")
            os.makedirs(solver_dir)
            bad = os.path.join(solver_dir, "sweep.cpp")
            with open(bad, "w", encoding="utf-8") as fh:
                fh.write("void f(double* x, double d, int n) {\n"
                         "  for (int i = 0; i < n; ++i) x[i] *= 1.0 / d;\n"
                         "}\n")

            gate = self.run_lint(tmp)
            self.assertEqual(gate.returncode, 1, gate.stdout)
            self.assertIn("reciprocal-multiply", gate.stdout)
            self.assertIn("src/solver/sweep.cpp:2", gate.stdout)

            update = self.run_lint(tmp, "--update")
            self.assertEqual(update.returncode, 0, update.stdout)

            gate = self.run_lint(tmp)
            self.assertEqual(gate.returncode, 0, gate.stdout)
            self.assertIn("PASS", gate.stdout)

            # Fixing the finding keeps the gate green and reports the
            # ratchet opportunity.
            with open(bad, "w", encoding="utf-8") as fh:
                fh.write("void f(double* x, double d, int n) {\n"
                         "  for (int i = 0; i < n; ++i) x[i] /= d;\n"
                         "}\n")
            gate = self.run_lint(tmp)
            self.assertEqual(gate.returncode, 0, gate.stdout)
            self.assertIn("improved", gate.stdout)


if __name__ == "__main__":
    unittest.main()
