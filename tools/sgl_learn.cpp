// sgl_learn — command-line front end for the SGL library.
//
// Modes:
//   (a) learn from measurement files:
//         sgl_learn --voltages X.mtx [--currents Y.mtx] --out learned.mtx
//       X (and Y) are MatrixMarket dense array files, N×M; the learned
//       graph's Laplacian is written in MatrixMarket coordinate format.
//   (b) end-to-end simulation from a graph file (handy for trying the
//       algorithm on the paper's SuiteSparse matrices):
//         sgl_learn --graph g2_circuit.mtx --measurements 100 --out learned.mtx
//
// Common knobs: --k, --r, --beta, --tol, --noise, --refine, --seed.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <map>
#include <string>

#include "measure/matrix_io.hpp"
#include "sgl.hpp"

namespace {

using namespace sgl;

struct CliArgs {
  std::map<std::string, std::string> kv;

  [[nodiscard]] bool has(const std::string& key) const {
    return kv.count(key) > 0;
  }
  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
};

void usage() {
  std::puts(
      "sgl_learn: learn an ultra-sparse resistor network from measurements\n"
      "\n"
      "  from measurements:  sgl_learn --voltages X.mtx [--currents Y.mtx]\n"
      "                                --out learned.mtx\n"
      "  from a graph file:  sgl_learn --graph G.mtx [--measurements 100]\n"
      "                                --out learned.mtx\n"
      "\n"
      "options:\n"
      "  --k <int>       kNN parameter              (default 5)\n"
      "  --r <int>       embedding order            (default 5)\n"
      "  --beta <real>   edge sampling ratio        (default 1e-3)\n"
      "  --tol <real>    sensitivity tolerance      (default 1e-12)\n"
      "  --noise <real>  relative voltage noise     (default 0)\n"
      "  --refine        stagewise weight polish    (off by default)\n"
      "  --seed <int>    measurement RNG seed       (default 2021)\n"
      "  --engine <name> embedding engine: auto, exact, solver-free\n"
      "                  (default auto: solver-free on large graphs)\n"
      "  --incremental <name> incremental relearning: auto, on, off\n"
      "                  (default off: rebuild every solver from scratch,\n"
      "                  byte-identical to historical output; on/auto keep\n"
      "                  one warm factorization across iterations and apply\n"
      "                  added edges as rank-1 updates)\n"
      "  --solver <name> Laplacian solver: auto, cholesky, pcg-jacobi,\n"
      "                  pcg-ic0, pcg-tree, pcg-amg  (default auto)\n"
      "  --ordering <name> factorization ordering: auto, amd, rcm, nd,\n"
      "                  natural                     (default auto)\n"
      "  --threads <int> worker threads; 0 = SGL_NUM_THREADS or hardware\n"
      "                  (results are identical for any thread count)\n"
      "  --verbose       print solver/factorization statistics\n"
      "  --quiet         suppress per-iteration log");
}

}  // namespace

int main(int argc, char** argv) {
  static constexpr const char* kValueOptions[] = {
      "voltages", "currents", "graph",   "measurements", "out",
      "k",        "r",        "beta",    "tol",          "noise",
      "seed",     "threads",  "solver",  "ordering",     "engine",
      "incremental"};
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", argv[i]);
      usage();
      return 2;
    }
    key.erase(0, 2);
    if (key == "refine" || key == "quiet" || key == "verbose" ||
        key == "help") {
      args.kv[key] = "1";
      continue;
    }
    const bool known =
        std::find_if(std::begin(kValueOptions), std::end(kValueOptions),
                     [&key](const char* opt) { return key == opt; }) !=
        std::end(kValueOptions);
    if (!known) {
      std::fprintf(stderr, "unknown option '--%s'\n", key.c_str());
      usage();
      return 2;
    }
    // A following "--word" is the next option, not this one's value.
    if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
      std::fprintf(stderr, "missing value for --%s\n", key.c_str());
      return 2;
    }
    args.kv[key] = argv[++i];
  }
  if (args.has("help") || argc == 1) {
    usage();
    return 0;
  }

  // Strict option policy (PR 1): unknown --solver/--ordering/--engine
  // values are rejected up front (with the valid names) instead of being
  // silently mapped to a default.
  const auto method = solver::parse_laplacian_method(args.str("solver", "auto"));
  if (!method) {
    std::fprintf(stderr, "unknown --solver '%s' (valid: %s)\n",
                 args.str("solver").c_str(),
                 solver::laplacian_method_name_list().c_str());
    usage();
    return 2;
  }
  const auto ordering =
      solver::parse_ordering_method(args.str("ordering", "auto"));
  if (!ordering) {
    std::fprintf(stderr, "unknown --ordering '%s' (valid: %s)\n",
                 args.str("ordering").c_str(),
                 solver::ordering_method_name_list().c_str());
    usage();
    return 2;
  }
  const auto engine =
      spectral::parse_embedding_engine(args.str("engine", "auto"));
  if (!engine) {
    std::fprintf(stderr, "unknown --engine '%s' (valid: %s)\n",
                 args.str("engine").c_str(),
                 spectral::embedding_engine_name_list().c_str());
    usage();
    return 2;
  }
  const auto incremental =
      solver::parse_incremental_mode(args.str("incremental", "off"));
  if (!incremental) {
    std::fprintf(stderr, "unknown --incremental '%s' (valid: %s)\n",
                 args.str("incremental").c_str(),
                 solver::incremental_mode_name_list().c_str());
    usage();
    return 2;
  }

  try {
    la::DenseMatrix x;
    la::DenseMatrix y;
    bool have_currents = false;

    if (args.has("graph")) {
      const graph::Graph g = graph::read_graph_matrix_market(args.str("graph"));
      std::printf("loaded graph: %d nodes, %d edges\n", g.num_nodes(),
                  g.num_edges());
      measure::MeasurementOptions mopt;
      mopt.num_measurements =
          static_cast<Index>(args.num("measurements", 100));
      mopt.seed = static_cast<std::uint64_t>(args.num("seed", 2021));
      mopt.num_threads = static_cast<Index>(args.num("threads", 0));
      mopt.solver.method = *method;
      mopt.solver.ordering = *ordering;
      const measure::Measurements data = measure::generate_measurements(g, mopt);
      x = data.voltages;
      y = data.currents;
      have_currents = true;
    } else if (args.has("voltages")) {
      x = measure::read_dense_matrix_market(args.str("voltages"));
      if (args.has("currents")) {
        y = measure::read_dense_matrix_market(args.str("currents"));
        have_currents = true;
      }
    } else {
      std::fputs("need --voltages or --graph\n", stderr);
      usage();
      return 2;
    }
    std::printf("measurements: %d nodes x %d vectors%s\n", x.rows(), x.cols(),
                have_currents ? " (+currents)" : " (voltage-only)");

    const double noise = args.num("noise", 0.0);
    if (noise > 0.0) {
      measure::add_noise(x, noise,
                         static_cast<std::uint64_t>(args.num("seed", 2021)) + 1);
      std::printf("applied %.0f%% relative measurement noise\n", noise * 100.0);
    }

    core::SglConfig config;
    config.k = static_cast<Index>(args.num("k", 5));
    config.embedding.r = static_cast<Index>(args.num("r", 5));
    config.embedding.engine = *engine;
    config.beta = args.num("beta", 1e-3);
    config.tolerance = args.num("tol", 1e-12);
    config.num_threads = static_cast<Index>(args.num("threads", 0));
    config.embedding.solver.method = *method;
    config.embedding.solver.ordering = *ordering;
    config.incremental = *incremental;
    // The learner inherits this internally, but the --verbose stats
    // factorization below uses config.embedding.solver directly, so wire
    // the thread knob here too.
    config.embedding.solver.num_threads = config.num_threads;
    if (!args.has("quiet")) {
      config.observer = [](Index it, Real smax, Index added) {
        std::printf("  iter %3d  smax %.3e  +%d edges\n", it, smax, added);
      };
    }

    core::SglLearner learner(x, config);
    const core::SglResult result =
        learner.run(have_currents ? &y : nullptr);
    std::printf("learned: %d edges (density %.3f), %d iterations, "
                "converged=%s, knn %.2fs + learn %.2fs\n",
                result.learned.num_edges(), result.learned.density(),
                result.iterations, result.converged ? "yes" : "no",
                result.knn_seconds, result.learn_seconds);

    if (args.has("verbose")) {
      // Engine diagnostics of the learning loop: which engine computed
      // the per-iteration embeddings and, on the solver-free path, how
      // much smoothing/hierarchy work each one ran.
      if (!result.history.empty()) {
        const core::SglIterationStats& last = result.history.back();
        std::printf("engine: %s (requested %s)",
                    spectral::embedding_engine_name(last.engine),
                    spectral::embedding_engine_name(*engine));
        if (last.engine == spectral::EmbeddingEngine::kSolverFree) {
          std::printf(", %d smoother sweeps over %d hierarchy levels",
                      last.smoother_sweeps, last.hierarchy_levels);
        }
        std::printf("\n");
      }
      // Incremental-relearning counters of the learner's SolverContext:
      // how often the warm solver was reused vs rebuilt, and how many
      // added edges were absorbed as rank-1 updates (DESIGN.md §8).
      {
        const solver::SolverContext& ctx = learner.solver_context();
        const solver::SolverContextStats& cs = ctx.stats();
        std::printf(
            "incremental: mode=%s acquisitions=%d rebuilds=%d "
            "refactorizations=%d updates=%d pattern-misses=%d "
            "ordering-reuses=%d\n",
            solver::incremental_mode_name(ctx.mode()), cs.acquisitions,
            cs.rebuilds, cs.refactorizations, cs.updates_applied,
            cs.pattern_misses, cs.ordering_reuses);
      }
      // Surface the solver the learned graph's Laplacian resolves to,
      // plus the factorization statistics of the refactored backbone.
      const solver::LaplacianPinvSolver pinv(result.learned,
                                             config.embedding.solver);
      std::printf("solver: %s (requested %s, ordering %s)\n",
                  solver::laplacian_method_name(pinv.method()),
                  solver::laplacian_method_name(*method),
                  solver::ordering_method_name(*ordering));
      if (const solver::FactorStats* fs = pinv.factor_stats()) {
        std::printf(
            "factor: n=%d nnz=%d supernodes=%d levels=%d "
            "(widest level %d) in %.4fs, updates=%d refactorizations=%d\n",
            fs->n, fs->factor_nnz, fs->num_supernodes, fs->num_levels,
            fs->max_level_supernodes, fs->factor_seconds, fs->updates_applied,
            fs->refactorizations);
      } else {
        // Iterative path: drive one two-column probe block through the
        // block-PCG solve so the per-block iteration stats are populated.
        // Purely diagnostic — a stalled probe must not fail the run.
        try {
          const Index n = result.learned.num_nodes();
          la::DenseMatrix probe(n, 2);
          probe(0, 0) = 1.0;
          probe(n - 1, 0) = -1.0;
          probe(0, 1) = 1.0;
          probe(n / 2, 1) = -1.0;
          (void)pinv.apply_block(probe, 1);
        } catch (const NumericalError& e) {
          std::printf("pcg: probe solve stalled (%s)\n", e.what());
        }
        const solver::PcgBlockStats ps = pinv.pcg_block_stats();
        std::printf(
            "pcg: probe block of %d columns, iterations max=%d total=%d, "
            "converged %d/%d\n",
            ps.columns, ps.max_iterations, ps.total_iterations,
            ps.converged_columns, ps.columns);
      }
    }

    graph::Graph learned = result.learned;
    if (args.has("refine")) {
      const core::RefineResult r = core::refine_edge_weights(learned, x);
      std::printf("refined weights: %d iterations, max |log ratio| %.3f\n",
                  r.iterations, r.max_log_ratio);
    }

    const std::string out = args.str("out", "learned.mtx");
    graph::write_laplacian_matrix_market(learned, out);
    std::printf("wrote Laplacian to %s\n", out.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
