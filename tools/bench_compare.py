#!/usr/bin/env python3
"""Diff two Google-Benchmark JSON artifacts and flag regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]
                     [--metric real_time] [--strict] [--filter REGEX]
    bench_compare.py --baseline-file BENCH_solver.json CURRENT.json ...

Benchmarks are matched by name. A benchmark whose current time exceeds
the baseline by more than the threshold (default 15%) is flagged as a
regression; one that is faster by more than the threshold is reported as
an improvement. Output is a Markdown table (suitable for
$GITHUB_STEP_SUMMARY). Exit status is 0 unless --strict is given and at
least one regression was found.

The two artifacts must come from the same library_build_type (the
`context` block Google Benchmark records): timings from a debug library
are meaningless against a release library, so a mismatch is reported as
a warning — and, under --strict, fails the comparison outright rather
than gating on garbage ratios.

--filter restricts the comparison to benchmark names matching the given
regex (re.search semantics). CI uses it to run a BLOCKING pass over the
solver families only (BM_Solve*/BM_Pcg*/BM_BlockPcg/BM_Embed*/BM_SfSgl*,
generous threshold) while the full comparison stays advisory —
shared-runner timings are too noisy to gate every benchmark on.

--baseline-file names the baseline explicitly instead of the first
positional argument. It exists for the committed repo-root baseline
(BENCH_solver.json): when CI cannot download a benchmark artifact from a
previous run on main (fresh fork, expired artifacts), the blocking leg
falls back to the committed snapshot rather than failing open. A
baseline must come from exactly one of the two sources.
"""

from __future__ import annotations

import argparse
import json
import re
import sys


def load_benchmarks(path: str, metric: str) -> tuple[dict[str, float], str]:
    """Returns ({benchmark name: metric value}, library_build_type),
    skipping aggregate rows."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out: dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        # Repetition aggregates (mean/median/stddev) would double-count.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        value = bench.get(metric)
        if name is None or not isinstance(value, (int, float)):
            continue
        out[name] = float(value)
    build_type = str(doc.get("context", {}).get("library_build_type", ""))
    return out, build_type


def format_time(value: float, unit: str) -> str:
    return f"{value:,.3f} {unit}"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="baseline benchmark JSON (or use --baseline-file)",
    )
    parser.add_argument("current", help="current benchmark JSON")
    parser.add_argument(
        "--baseline-file",
        default=None,
        metavar="PATH",
        help="baseline benchmark JSON named by flag; exactly one of the "
        "positional baseline or this flag must be given (CI uses it for "
        "the committed repo-root BENCH_solver.json fallback)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative slowdown that counts as a regression (default 0.15)",
    )
    parser.add_argument(
        "--metric",
        default="real_time",
        choices=["real_time", "cpu_time"],
        help="which benchmark field to compare (default real_time)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when regressions are found (default: report only)",
    )
    parser.add_argument(
        "--filter",
        default=None,
        metavar="REGEX",
        help="only compare benchmarks whose name matches this regex",
    )
    args = parser.parse_args()

    if (args.baseline is None) == (args.baseline_file is None):
        parser.error(
            "give a baseline exactly once: either the positional argument "
            "or --baseline-file"
        )
    baseline_path = args.baseline or args.baseline_file

    try:
        base, base_build = load_benchmarks(baseline_path, args.metric)
        curr, curr_build = load_benchmarks(args.current, args.metric)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_compare: cannot read input: {exc}", file=sys.stderr)
        return 0 if not args.strict else 1

    build_mismatch = (
        bool(base_build) and bool(curr_build) and base_build != curr_build
    )

    if args.filter is not None:
        pattern = re.compile(args.filter)
        base = {k: v for k, v in base.items() if pattern.search(k)}
        curr = {k: v for k, v in curr.items() if pattern.search(k)}

    with open(args.current, "r", encoding="utf-8") as fh:
        unit = "ns"
        for bench in json.load(fh).get("benchmarks", []):
            unit = bench.get("time_unit", "ns")
            break

    shared = sorted(set(base) & set(curr))
    only_base = sorted(set(base) - set(curr))
    only_curr = sorted(set(curr) - set(base))

    regressions: list[str] = []
    improvements: list[str] = []
    rows: list[str] = []
    for name in shared:
        b = base[name]
        c = curr[name]
        if b <= 0.0:
            continue
        ratio = c / b
        delta = (ratio - 1.0) * 100.0
        marker = ""
        if ratio > 1.0 + args.threshold:
            marker = " ⚠️ regression"
            regressions.append(name)
        elif ratio < 1.0 - args.threshold:
            marker = " ✅ improvement"
            improvements.append(name)
        rows.append(
            f"| `{name}` | {format_time(b, unit)} | {format_time(c, unit)} "
            f"| {delta:+.1f}%{marker} |"
        )

    scope = f", filter `{args.filter}`" if args.filter else ""
    mode = ", strict" if args.strict else ""
    print(f"### Benchmark comparison ({args.metric}, threshold "
          f"{args.threshold:.0%}{scope}{mode})")
    print()
    if not shared:
        print("No overlapping benchmarks between the two artifacts.")
    else:
        print("| benchmark | baseline | current | delta |")
        print("|---|---:|---:|---:|")
        for row in rows:
            print(row)
    print()
    print(
        f"**{len(regressions)} regression(s), {len(improvements)} "
        f"improvement(s) across {len(shared)} shared benchmark(s).**"
    )
    if only_curr:
        print(f"\nNew benchmarks (no baseline): {len(only_curr)}")
        for name in only_curr:
            print(f"- `{name}`")
    if only_base:
        print(f"\nRemoved benchmarks (baseline only): {len(only_base)}")
        for name in only_base:
            print(f"- `{name}`")

    if build_mismatch:
        print(
            f"\n**⚠️ library_build_type mismatch: baseline is "
            f"`{base_build}`, current is `{curr_build}` — timings are not "
            f"comparable. Recapture the baseline with a matching build.**"
        )
        if args.strict:
            print("\n**FAIL (strict): build-type mismatch.**")
            return 1

    if args.strict and not shared:
        # A blocking pass that matches nothing gates nothing: renamed
        # benchmark families or an empty/corrupt artifact must fail
        # loudly, not fail open.
        print("\n**FAIL (strict): no overlapping benchmarks to compare.**")
        return 1
    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
