#!/usr/bin/env python3
"""Determinism lint: machine-checks for the DESIGN.md determinism rules.

Usage:
    determinism_lint.py [--baseline tools/determinism_baseline.txt]
                        [--update] [--list-rules] [PATH...]

Walks the given paths (default: src/) and enforces the written rules of
the repo's determinism contract (DESIGN.md §§1,4-7) as static checks —
the properties the bit-equality test suite asserts at runtime, caught at
review time instead:

  nondeterministic-rng       std::rand / srand / std::random_device /
                             time()-seeded randomness. All randomness
                             must flow through sgl::Rng with an explicit
                             seed (common/rng.hpp).
  raw-threading              std::thread / std::jthread / std::async /
                             #pragma omp outside src/common/parallel.*.
                             All parallelism must go through the pool
                             primitives, whose chunking is what makes
                             results thread-count-invariant.
  unordered-iteration        iteration over std::unordered_{map,set} in
                             the numeric modules (la, solver, spectral,
                             eig). Hash-order iteration feeding
                             floating-point arithmetic breaks bitwise
                             reproducibility across libraries/runs.
  shared-mutation-in-parallel
                             `x += ...` on a plain captured variable
                             inside a parallel_for / parallel_for_slots
                             body. Cross-iteration accumulation belongs
                             in parallel_reduce (deterministic fixed
                             chunks); in-place element updates (x[i] +=)
                             are fine and not flagged.
  reciprocal-multiply        `*= 1.0 / d`-style diagonal scaling in
                             src/solver and src/la. Sweeps must DIVIDE:
                             x/d and x*(1/d) differ in the last ulp, and
                             the scalar/block paths must agree bitwise
                             (DESIGN.md §4).

Checks run on comment- and string-stripped source, so documentation may
mention the banned constructs freely. A deliberate exception is waived
in the code with a comment on the same or the preceding line:

    // sgl-lint: allow(raw-threading)  <why this use is sound>

The gate architecture mirrors tools/clang_tidy_gate.py: findings are
normalized to (repo-relative file, rule) counts and the gate FAILS
(exit 1) only when a pair appears more often than the committed baseline
records. Regenerate the baseline after a deliberate change:

    python3 tools/determinism_lint.py --update

Baseline format: `count<TAB>file<TAB>rule` lines, sorted; `#` comments
and blank lines ignored.
"""

from __future__ import annotations

import argparse
import collections
import dataclasses
import os
import re
import sys
from typing import Callable

Finding = tuple[int, str, str]  # (line, rule id, message)

SOURCE_EXTENSIONS = (".hpp", ".cpp", ".h", ".cc")

WAIVER = re.compile(r"//\s*sgl-lint:\s*allow\(\s*([\w\s,-]+?)\s*\)")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string and char literals, preserving newlines
    and column positions so line/offset arithmetic stays valid."""
    out: list[str] = []
    i, n = 0, len(text)
    state = None  # None | "str" | "chr"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                j = text.find("\n", i)
                j = n if j == -1 else j
                out.append(" " * (j - i))
                i = j
            elif c == "/" and nxt == "*":
                j = text.find("*/", i + 2)
                end = n if j == -1 else j + 2
                out.append("".join(ch if ch == "\n" else " "
                                   for ch in text[i:end]))
                i = end
            elif c == '"':
                out.append('"')
                i += 1
                state = "str"
            elif c == "'":
                prev = out[-1] if out else ""
                if prev.isalnum() or prev == "_":
                    out.append(c)  # digit separator (1'000) — not a literal
                    i += 1
                else:
                    out.append("'")
                    i += 1
                    state = "chr"
            else:
                out.append(c)
                i += 1
        else:
            close = '"' if state == "str" else "'"
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
            elif c == close or c == "\n":  # lenient on unterminated
                out.append(c)
                i += 1
                state = None
            else:
                out.append(" " if c != "\n" else "\n")
                i += 1
    return "".join(out)


def _simple_pattern_check(pattern: str, message: str) -> Callable:
    rx = re.compile(pattern)

    def check(stripped: str, _rel: str) -> list[Finding]:
        findings = []
        for ln, line in enumerate(stripped.splitlines(), 1):
            findings.extend((ln, "", message) for _ in rx.finditer(line))
        return findings

    return check


UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s*[&*]?\s*(\w+)")


def _unordered_iteration_check(stripped: str, _rel: str) -> list[Finding]:
    names = {m.group(1) for m in UNORDERED_DECL.finditer(stripped)}
    findings: list[Finding] = []
    for ln, line in enumerate(stripped.splitlines(), 1):
        for name in names:
            range_for = re.search(
                r"\bfor\s*\([^;)]*:\s*(?:\w+\.)*" + name + r"\s*\)", line)
            explicit = re.search(r"\b" + name + r"\s*\.\s*c?begin\s*\(", line)
            if range_for or explicit:
                findings.append((
                    ln, "",
                    f"iteration over unordered container '{name}' in a "
                    "numeric module: hash order is unspecified; iterate a "
                    "sorted copy or switch containers"))
    return findings


PARALLEL_CALL = re.compile(r"\bparallel_for(?:_slots)?\s*\(")
# Local declarations inside the call region (incl. lambda parameters and
# for-init declarations): a trailing '=', '(', '{', ':', ',' or ')' all
# count, erring toward treating names as local (fewer false positives).
LOCAL_DECL = re.compile(
    r"\b(?:const\s+)?(?:Real|double|float|auto|Index|int|long|short|bool|"
    r"(?:std::)?size_t|unsigned(?:\s+\w+)?|std::u?int\d+_t)\s*[&*]?\s+"
    r"(\w+)\s*[=({:,)\[]")
ACCUMULATE = re.compile(r"(?<![\w.>])([A-Za-z_]\w*)\s*\+=")


def _matching_paren(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def _shared_mutation_check(stripped: str, _rel: str) -> list[Finding]:
    findings: list[Finding] = []
    seen: set[tuple[int, str]] = set()
    for call in PARALLEL_CALL.finditer(stripped):
        open_idx = stripped.index("(", call.start())
        close_idx = _matching_paren(stripped, open_idx)
        region = stripped[open_idx:close_idx]
        local = set(m.group(1) for m in LOCAL_DECL.finditer(region))
        base_line = stripped.count("\n", 0, open_idx) + 1
        for m in ACCUMULATE.finditer(region):
            name = m.group(1)
            if name in local:
                continue
            ln = base_line + region.count("\n", 0, m.start())
            if (ln, name) in seen:
                continue
            seen.add((ln, name))
            findings.append((
                ln, "",
                f"'{name} +=' on a captured variable inside a parallel_for "
                "body: cross-iteration accumulation must use "
                "parallel_reduce (deterministic fixed-chunk combine)"))
    return findings


@dataclasses.dataclass(frozen=True)
class Rule:
    id: str
    summary: str
    scope: str  # regex over the repo-relative posix path
    check: Callable  # (stripped_text, rel_path) -> list[Finding]


RULES: tuple[Rule, ...] = (
    Rule(
        id="nondeterministic-rng",
        summary="std::rand/srand/random_device/time()-seeded randomness "
                "(use sgl::Rng with an explicit seed)",
        scope=r"^src/",
        check=_simple_pattern_check(
            r"std::rand\b|\bs?rand\s*\(|\brandom_device\b|\btime\s*\(",
            "non-deterministic randomness source: seed an sgl::Rng "
            "explicitly (common/rng.hpp)"),
    ),
    Rule(
        id="raw-threading",
        summary="std::thread/std::async/#pragma omp outside "
                "src/common/parallel.*",
        scope=r"^src/(?!common/parallel\.(?:hpp|cpp))",
        check=_simple_pattern_check(
            r"\bstd::(?:thread|jthread|async)\b|#\s*pragma\s+omp\b",
            "raw threading primitive: route parallelism through "
            "sgl::parallel (common/parallel.hpp) so chunking stays "
            "thread-count-invariant"),
    ),
    Rule(
        id="unordered-iteration",
        summary="iteration over std::unordered_{map,set} in numeric "
                "modules (la, solver, spectral, eig)",
        scope=r"^src/(?:la|solver|spectral|eig)/",
        check=_unordered_iteration_check,
    ),
    Rule(
        id="shared-mutation-in-parallel",
        summary="'x +=' on captured shared state inside parallel_for "
                "bodies (use parallel_reduce)",
        scope=r"^src/(?!common/parallel\.(?:hpp|cpp))",
        check=_shared_mutation_check,
    ),
    Rule(
        id="reciprocal-multiply",
        summary="*= 1.0/d-style reciprocal scaling in src/solver and "
                "src/la (divide instead; DESIGN.md §4)",
        scope=r"^src/(?:solver|la)/",
        check=_simple_pattern_check(
            r"\*=\s*1(?:\.\d*)?\s*/|\*\s*\(\s*1(?:\.\d*)?\s*/",
            "reciprocal-multiply scaling: scalar and block sweeps must "
            "DIVIDE by the diagonal — x*(1/d) differs from x/d in the "
            "last ulp (DESIGN.md §4)"),
    ),
)


def waived_lines(text: str) -> dict[int, set[str]]:
    """Maps line number -> rule ids waived on that line (by comment)."""
    waivers: dict[int, set[str]] = {}
    for ln, line in enumerate(text.splitlines(), 1):
        m = WAIVER.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            waivers.setdefault(ln, set()).update(rules)
    return waivers


def lint_text(text: str, rel_path: str) -> list[Finding]:
    """All unwaived findings for one file's contents. `rel_path` is the
    repo-relative posix path used for rule scoping."""
    stripped = strip_comments_and_strings(text)
    waivers = waived_lines(text)

    def is_waived(line: int, rule_id: str) -> bool:
        return (rule_id in waivers.get(line, set())
                or rule_id in waivers.get(line - 1, set()))

    findings: list[Finding] = []
    for rule in RULES:
        if not re.search(rule.scope, rel_path):
            continue
        for line, _, message in rule.check(stripped, rel_path):
            if not is_waived(line, rule.id):
                findings.append((line, rule.id, message))
    return sorted(findings)


def iter_source_files(paths: list[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for root, dirs, names in os.walk(path):
            dirs.sort()
            for name in sorted(names):
                if name.endswith(SOURCE_EXTENSIONS):
                    files.append(os.path.join(root, name))
    return files


def normalize_path(path: str) -> str:
    path = os.path.normpath(path)
    if os.path.isabs(path):
        try:
            path = os.path.relpath(path, os.getcwd())
        except ValueError:
            pass
    return path.replace(os.sep, "/")


def load_baseline(path: str) -> collections.Counter:
    counts: collections.Counter = collections.Counter()
    if not os.path.exists(path):
        return counts
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                continue
            counts[(parts[1], parts[2])] = int(parts[0])
    return counts


def write_baseline(path: str, counts: collections.Counter) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# Determinism-lint finding baseline — maintained by\n")
        fh.write("# tools/determinism_lint.py --update (see its "
                 "docstring).\n")
        fh.write("# The gate fails only on findings beyond these counts;\n")
        fh.write("# an empty baseline means src/ is lint-clean.\n")
        fh.write("# count\tfile\trule\n")
        for (file, rule), count in sorted(counts.items()):
            fh.write(f"{count}\t{file}\t{rule}\n")


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--baseline", default="tools/determinism_baseline.txt",
                        help="committed finding baseline (default "
                             "%(default)s)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current "
                             "findings instead of gating")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}\n    scope: {rule.scope}\n    "
                  f"{rule.summary}")
        return 0

    paths = args.paths or ["src"]
    per_file: dict[str, list[Finding]] = {}
    counts: collections.Counter = collections.Counter()
    for path in iter_source_files(paths):
        rel = normalize_path(path)
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        findings = lint_text(text, rel)
        if findings:
            per_file[rel] = findings
            for _, rule_id, _ in findings:
                counts[(rel, rule_id)] += 1

    if args.update:
        write_baseline(args.baseline, counts)
        print(f"determinism_lint: wrote {sum(counts.values())} finding(s) "
              f"across {len(counts)} (file, rule) pair(s) to "
              f"{args.baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    new = {
        key: (count, baseline.get(key, 0))
        for key, count in sorted(counts.items())
        if count > baseline.get(key, 0)
    }
    fixed = {
        key
        for key, count in baseline.items()
        if counts.get(key, 0) < count
    }

    print("### determinism lint")
    print()
    print(f"{sum(counts.values())} finding(s) now, "
          f"{sum(baseline.values())} in the baseline.")
    for rel in sorted(per_file):
        for line, rule_id, message in per_file[rel]:
            print(f"{rel}:{line}: [{rule_id}] {message}")
    if new:
        print()
        print("| file | rule | now | baseline |")
        print("|---|---|---:|---:|")
        for (file, rule), (count, base) in new.items():
            print(f"| `{file}` | `{rule}` | {count} | {base} |")
        print()
        print("**FAIL: new determinism-lint findings.** Fix them, waive a "
              "deliberate exception with `// sgl-lint: allow(<rule>)` "
              "plus a justification, or — if accepted — regenerate the "
              "baseline (tools/determinism_lint.py --update).")
        return 1
    if fixed:
        print()
        print(f"{len(fixed)} (file, rule) pair(s) improved on the baseline "
              "— consider ratcheting it down with --update.")
    print()
    print("**PASS: no new findings.**")
    return 0


if __name__ == "__main__":
    sys.exit(main())
