// sgl_serve — long-lived serving daemon for the SGL library.
//
// Speaks the newline-delimited JSON protocol (src/serve/protocol.hpp,
// DESIGN.md §10) over a unix-domain stream socket. One thread per
// connection; concurrent single-RHS queries from different connections
// coalesce in the ServeEngine's micro-batching combiner into shared
// apply_block calls, and every response is bitwise identical to what a
// serial server would have sent (solver block bit-equality contract).
//
//   sgl_serve --socket /tmp/sgl.sock [--batch-width 16] [--deadline-us 200]
//             [--cache 4] [--threads 0] [--solver auto] [--engine auto]
//
// Stop it with the {"op": "shutdown"} request (or SIGINT/SIGTERM).
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "sgl.hpp"

namespace {

using namespace sgl;

struct CliArgs {
  std::map<std::string, std::string> kv;

  [[nodiscard]] bool has(const std::string& key) const {
    return kv.count(key) > 0;
  }
  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
};

void usage() {
  std::puts(
      "sgl_serve: serve spectral-graph queries over a unix socket\n"
      "\n"
      "  sgl_serve --socket PATH [options]\n"
      "\n"
      "options:\n"
      "  --socket <path>      unix socket path      (default sgl_serve.sock)\n"
      "  --batch-width <int>  coalesce up to b queries per block solve\n"
      "                       (default 16; 1 disables batching)\n"
      "  --deadline-us <int>  batch fill deadline in microseconds\n"
      "                       (default 200)\n"
      "  --cache <int>        factorization LRU capacity (default 4)\n"
      "  --threads <int>      solver threads, 0 = library default\n"
      "  --solver <name>      cholesky|pcg-jacobi|pcg-ic0|pcg-tree|pcg-amg|"
      "auto\n"
      "  --engine <name>      embedding engine: exact|solver-free|auto\n"
      "\n"
      "protocol: one JSON request per line, one JSON response per line\n"
      "  {\"op\":\"learn_synthetic\",\"graph\":\"grid2d\",\"nx\":12,"
      "\"ny\":12}\n"
      "  {\"op\":\"resistance\",\"s\":0,\"t\":5}\n"
      "  {\"op\":\"stats\"}   {\"op\":\"shutdown\"}\n"
      "errors: {\"ok\":false,\"error\":{\"code\":\"<stable-code>\",...}}");
}

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

/// send() until the whole buffer is written; false on a dead peer.
bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void handle_connection(int fd, serve::ServeEngine& engine) {
  std::string buffer;
  char chunk[4096];
  while (!g_stop.load()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) break;
    if (ready == 0) continue;  // timeout: re-check the stop flag
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // peer closed (or error)
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos; nl = buffer.find('\n', start)) {
      const std::string_view line(buffer.data() + start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      const serve::ProtocolResult result =
          serve::handle_request(engine, line);
      if (!send_all(fd, result.response + "\n")) {
        ::close(fd);
        return;
      }
      if (result.shutdown) g_stop.store(true);
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key == "--help" || key == "-h") {
      usage();
      return 0;
    }
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "sgl_serve: unexpected argument '%s'\n",
                   key.c_str());
      return 2;
    }
    key = key.substr(2);
    std::string value = "1";
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    args.kv[key] = value;
  }

  serve::ServeOptions options;
  options.batch_width = static_cast<Index>(args.num("batch-width", 16));
  options.flush_deadline_us = static_cast<Index>(args.num("deadline-us", 200));
  options.cache_capacity = static_cast<Index>(args.num("cache", 4));
  options.num_threads = static_cast<Index>(args.num("threads", 0));
  options.solver.num_threads = options.num_threads;
  if (args.has("solver")) {
    const auto method = solver::parse_laplacian_method(args.str("solver"));
    if (!method.has_value()) {
      std::fprintf(stderr, "sgl_serve: unknown --solver '%s' (valid: %s)\n",
                   args.str("solver").c_str(),
                   solver::laplacian_method_name_list().c_str());
      return 2;
    }
    options.solver.method = *method;
  }
  if (args.has("engine")) {
    const auto engine = spectral::parse_embedding_engine(args.str("engine"));
    if (!engine.has_value()) {
      std::fprintf(stderr, "sgl_serve: unknown --engine '%s'\n",
                   args.str("engine").c_str());
      return 2;
    }
    options.embedding.engine = *engine;
  }
  if (options.batch_width < 1 || options.flush_deadline_us < 0 ||
      options.cache_capacity < 1) {
    std::fprintf(stderr, "sgl_serve: invalid batching/cache options\n");
    return 2;
  }
  options.embedding.solver = options.solver;

  const std::string socket_path = args.str("socket", "sgl_serve.sock");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "sgl_serve: socket path too long\n");
    return 2;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("sgl_serve: socket");
    return 1;
  }
  ::unlink(socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    std::perror("sgl_serve: bind");
    return 1;
  }
  if (::listen(listen_fd, 64) != 0) {
    std::perror("sgl_serve: listen");
    return 1;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  serve::ServeEngine engine(options);
  std::printf("sgl_serve: listening on %s (batch width %d, deadline %d us, "
              "cache %d)\n",
              socket_path.c_str(), static_cast<int>(options.batch_width),
              static_cast<int>(options.flush_deadline_us),
              static_cast<int>(options.cache_capacity));
  std::fflush(stdout);

  std::vector<std::thread> workers;
  while (!g_stop.load()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) break;
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    workers.emplace_back(handle_connection, fd, std::ref(engine));
  }

  ::close(listen_fd);
  for (std::thread& t : workers) t.join();
  ::unlink(socket_path.c_str());

  const serve::ServeStats stats = engine.stats();
  std::printf("sgl_serve: shut down after %d requests in %d batches "
              "(%d cache hits, %d misses, %d evictions, %d errors)\n",
              static_cast<int>(stats.requests), static_cast<int>(stats.batches),
              static_cast<int>(stats.cache_hits),
              static_cast<int>(stats.cache_misses),
              static_cast<int>(stats.cache_evictions),
              static_cast<int>(stats.errors));
  return 0;
}
