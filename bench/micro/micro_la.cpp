// Block linear-algebra microbenchmarks: CSR SpMM versus b sequential
// SpMVs (the blocked apply must win at b ≥ 8 by streaming A's nonzeros
// once), plus the block Lanczos eigensolver at 1/2/4/8 threads.
#include <benchmark/benchmark.h>

#include "sgl.hpp"

namespace {

using namespace sgl;

la::CsrMatrix mesh_laplacian(Index side) {
  return graph::make_grid2d(side, side).graph.laplacian();
}

la::MultiVector random_block(Index rows, Index cols, std::uint64_t seed) {
  Rng rng(seed);
  la::MultiVector x(rows, cols);
  for (Index j = 0; j < cols; ++j)
    for (Real& v : x.col(j)) v = rng.normal();
  return x;
}

/// Y = A X in one SpMM pass; args: block width b, threads.
void BM_SpMM(benchmark::State& state) {
  const la::CsrMatrix a = mesh_laplacian(192);
  const Index b = static_cast<Index>(state.range(0));
  const Index threads = static_cast<Index>(state.range(1));
  const la::MultiVector x = random_block(a.cols(), b, 11);
  la::MultiVector y(a.rows(), b);
  for (auto _ : state) {
    la::spmm(a, x.view(), y.view(), threads);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.counters["nnz"] = static_cast<double>(a.nnz());
  state.counters["threads"] = static_cast<double>(threads);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          a.nnz() * b);
}
BENCHMARK(BM_SpMM)
    ->ArgsProduct({{4, 8, 16}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The unbatched baseline: b sequential SpMVs over the same operand.
void BM_SpMVSequentialColumns(benchmark::State& state) {
  const la::CsrMatrix a = mesh_laplacian(192);
  const Index b = static_cast<Index>(state.range(0));
  const la::MultiVector x = random_block(a.cols(), b, 11);
  la::Vector xj(static_cast<std::size_t>(a.cols()));
  la::Vector yj(static_cast<std::size_t>(a.rows()));
  for (auto _ : state) {
    for (Index j = 0; j < b; ++j) {
      const auto col = x.col(j);
      std::copy(col.begin(), col.end(), xj.begin());
      a.multiply(xj, yj, 1);
      benchmark::DoNotOptimize(yj.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          a.nnz() * b);
}
BENCHMARK(BM_SpMVSequentialColumns)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// Parallel single-vector SpMV (the PCG inner kernel).
void BM_SpMVThreaded(benchmark::State& state) {
  const la::CsrMatrix a = mesh_laplacian(256);
  const Index threads = static_cast<Index>(state.range(0));
  const la::MultiVector x = random_block(a.cols(), 1, 13);
  la::Vector xv(x.col(0).begin(), x.col(0).end());
  la::Vector y(static_cast<std::size_t>(a.rows()));
  for (auto _ : state) {
    a.multiply(xv, y, threads);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_SpMVThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Block Lanczos on an SGL-shaped ultra-sparse graph; args: threads.
void BM_BlockLanczos(benchmark::State& state) {
  const graph::Graph mesh = graph::make_grid2d(96, 96).graph;
  const auto tree_ids = graph::maximum_spanning_forest(mesh);
  graph::Graph g = graph::subgraph_from_edges(mesh, tree_ids);
  Rng rng(7);
  for (Index i = 0; i < mesh.num_nodes() / 100 + 1; ++i) {
    const Index s = rng.uniform_int(mesh.num_nodes());
    const Index t = rng.uniform_int(mesh.num_nodes());
    if (s != t) g.add_edge(std::min(s, t), std::max(s, t), 1.0);
  }
  const solver::LaplacianPinvSolver pinv(g);
  eig::LanczosOptions options;
  options.num_threads = static_cast<Index>(state.range(0));
  Index steps = 0;
  for (auto _ : state) {
    const eig::EigenPairs pairs =
        eig::smallest_laplacian_eigenpairs(pinv, 5, options);
    steps = pairs.lanczos_steps;
    benchmark::DoNotOptimize(pairs.eigenvalues.data());
  }
  state.counters["basis"] = static_cast<double>(steps);
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BlockLanczos)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Grounded Laplacian of the 192² mesh — the SPD system behind the
/// factorization benchmarks.
///
/// Shared-fixture thread-safety contract (here and in mesh_factor):
/// magic-static initialization is thread-safe, and the returned objects
/// are const/immutable afterwards, so benchmark repetitions may share
/// them freely without locks. Mutable shared state in bench helpers
/// would need the annotated common/mutex.hpp wrappers (DESIGN.md §7).
const la::CsrMatrix& grounded_mesh_laplacian() {
  static const la::CsrMatrix a =
      solver::grounded_laplacian(graph::make_grid2d(192, 192).graph);
  return a;
}

const solver::CholeskySolver& mesh_factor() {
  static const solver::CholeskySolver chol(grounded_mesh_laplacian());
  return chol;
}

/// Block triangular sweeps: one forward/backward pass over the factor per
/// b right-hand sides; args: block width b, threads.
void BM_SolveBlock(benchmark::State& state) {
  const solver::CholeskySolver& chol = mesh_factor();
  const Index b = static_cast<Index>(state.range(0));
  const Index threads = static_cast<Index>(state.range(1));
  const la::MultiVector rhs = random_block(chol.size(), b, 19);
  la::MultiVector x(chol.size(), b);
  for (auto _ : state) {
    x.data() = rhs.data();
    chol.solve_in_place_block(x.view(), threads);
    benchmark::DoNotOptimize(x.data().data());
  }
  state.counters["factor_nnz"] = static_cast<double>(chol.stats().factor_nnz);
  state.counters["threads"] = static_cast<double>(threads);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          chol.stats().factor_nnz * b);
}
BENCHMARK(BM_SolveBlock)
    ->ArgsProduct({{1, 4, 16}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The unbatched baseline the block sweep must beat: b scalar solves
/// streaming the factor once per column.
void BM_SolvePerColumn(benchmark::State& state) {
  const solver::CholeskySolver& chol = mesh_factor();
  const Index b = static_cast<Index>(state.range(0));
  const la::MultiVector rhs = random_block(chol.size(), b, 19);
  la::Vector xj(static_cast<std::size_t>(chol.size()));
  for (auto _ : state) {
    for (Index j = 0; j < b; ++j) {
      const auto col = rhs.col(j);
      std::copy(col.begin(), col.end(), xj.begin());
      chol.solve_in_place(xj);
      benchmark::DoNotOptimize(xj.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          chol.stats().factor_nnz * b);
}
BENCHMARK(BM_SolvePerColumn)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// Level-scheduled numeric factorization of the grounded mesh; args:
/// threads (the symbolic phase and ordering are included).
void BM_FactorLevelScheduled(benchmark::State& state) {
  const la::CsrMatrix& a = grounded_mesh_laplacian();
  const Index threads = static_cast<Index>(state.range(0));
  Index levels = 0;
  for (auto _ : state) {
    const solver::CholeskySolver chol(a, solver::OrderingMethod::kAuto,
                                      threads);
    levels = chol.stats().num_levels;
    benchmark::DoNotOptimize(levels);
  }
  state.counters["levels"] = static_cast<double>(levels);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_FactorLevelScheduled)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Multi-RHS pseudo-inverse solve (measurement generation hot path).
void BM_ApplyBlockMultiRhs(benchmark::State& state) {
  const graph::Graph g = graph::make_grid2d(64, 64).graph;
  const solver::LaplacianPinvSolver pinv(g);
  const Index threads = static_cast<Index>(state.range(0));
  const la::MultiVector y = random_block(g.num_nodes(), 16, 17);
  la::MultiVector x(g.num_nodes(), 16);
  for (auto _ : state) {
    pinv.apply_block(y.view(), x.view(), threads);
    benchmark::DoNotOptimize(x.data().data());
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ApplyBlockMultiRhs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
