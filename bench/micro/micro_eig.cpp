// Eigensolver microbenchmarks: shift-invert Lanczos on SGL-shaped graphs
// (r sweep — the paper's claim that r < 5 suffices makes r the key cost
// knob) and the dense reference solver.
#include <benchmark/benchmark.h>

#include "sgl.hpp"

namespace {

using namespace sgl;

graph::Graph ultra_sparse_graph(Index side) {
  const graph::Graph mesh = graph::make_grid2d(side, side).graph;
  const auto tree_ids = graph::maximum_spanning_forest(mesh);
  graph::Graph g = graph::subgraph_from_edges(mesh, tree_ids);
  Rng rng(7);
  for (Index i = 0; i < mesh.num_nodes() / 100 + 1; ++i) {
    const Index s = rng.uniform_int(mesh.num_nodes());
    const Index t = rng.uniform_int(mesh.num_nodes());
    if (s != t) g.add_edge(std::min(s, t), std::max(s, t), 1.0);
  }
  return g;
}

void BM_LanczosUltraSparseRSweep(benchmark::State& state) {
  const graph::Graph g = ultra_sparse_graph(64);
  const solver::LaplacianPinvSolver pinv(g);
  const Index r = static_cast<Index>(state.range(0));
  Index steps = 0;
  for (auto _ : state) {
    const eig::EigenPairs pairs = eig::smallest_laplacian_eigenpairs(pinv, r);
    steps = pairs.lanczos_steps;
    benchmark::DoNotOptimize(pairs.eigenvalues.data());
  }
  state.counters["lanczos_steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_LanczosUltraSparseRSweep)
    ->Arg(3)
    ->Arg(5)
    ->Arg(10)
    ->Arg(25)
    ->Unit(benchmark::kMillisecond);

void BM_LanczosMeshSizeSweep(benchmark::State& state) {
  const Index side = static_cast<Index>(state.range(0));
  const graph::Graph g = graph::make_grid2d(side, side).graph;
  const solver::LaplacianPinvSolver pinv(g);
  for (auto _ : state) {
    const eig::EigenPairs pairs = eig::smallest_laplacian_eigenpairs(pinv, 4);
    benchmark::DoNotOptimize(pairs.eigenvalues.data());
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_LanczosMeshSizeSweep)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_DenseSymmetricEig(benchmark::State& state) {
  const Index n = static_cast<Index>(state.range(0));
  Rng rng(9);
  la::DenseMatrix a(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j <= i; ++j) {
      const Real v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  for (auto _ : state) {
    const eig::DenseEigResult r = eig::dense_symmetric_eig(a);
    benchmark::DoNotOptimize(r.eigenvalues.data());
  }
}
BENCHMARK(BM_DenseSymmetricEig)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_EmbeddingComputation(benchmark::State& state) {
  // The actual Step-2 kernel: embedding of an ultra-sparse iterate.
  const graph::Graph g = ultra_sparse_graph(static_cast<Index>(state.range(0)));
  spectral::EmbeddingOptions options;
  options.r = 5;
  for (auto _ : state) {
    const spectral::Embedding e = spectral::compute_embedding(g, options);
    benchmark::DoNotOptimize(e.u.data().data());
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_EmbeddingComputation)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
