// SGL core microbenchmarks and design ablations: per-step cost, the r
// knob (embedding order), and the β knob (edges admitted per iteration) —
// the design-choice sweeps DESIGN.md calls out.
#include <benchmark/benchmark.h>

#include "sgl.hpp"

namespace {

using namespace sgl;

const measure::Measurements& mesh_measurements() {
  static const measure::Measurements data = [] {
    const graph::Graph g = graph::make_grid2d(40, 40, true).graph;
    measure::MeasurementOptions options;
    options.num_measurements = 50;
    return measure::generate_measurements(g, options);
  }();
  return data;
}

const measure::Measurements& mesh192_measurements() {
  static const measure::Measurements data = [] {
    const graph::Graph g = graph::make_grid2d(192, 192).graph;
    measure::MeasurementOptions options;
    options.num_measurements = 100;
    return measure::generate_measurements(g, options);
  }();
  return data;
}

/// Shared body of the incremental-relearning A/B pair: steady-state
/// step() cost on the 192² mesh (exact engine, single thread) after a
/// warm-up, differing only in SglConfig::incremental. The acceptance
/// ratio of DESIGN.md §8 — incremental ≥3× faster per step — is the
/// quotient of these two benchmarks.
void learner_step_benchmark(benchmark::State& state,
                            solver::IncrementalMode mode) {
  const measure::Measurements& data = mesh192_measurements();
  core::SglConfig config;
  config.incremental = mode;
  config.embedding.engine = spectral::EmbeddingEngine::kExact;
  config.num_threads = 1;
  core::SglLearner learner(data.voltages, config);
  for (int i = 0; i < 3; ++i) learner.step();  // past the cold start
  for (auto _ : state) {
    const core::SglIterationStats s = learner.step();
    benchmark::DoNotOptimize(s.smax);
  }
  state.counters["edges"] =
      static_cast<double>(learner.current_graph().num_edges());
}

void BM_LearnerStepIncremental(benchmark::State& state) {
  learner_step_benchmark(state, solver::IncrementalMode::kAuto);
}
BENCHMARK(BM_LearnerStepIncremental)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

void BM_LearnerStepRefactor(benchmark::State& state) {
  learner_step_benchmark(state, solver::IncrementalMode::kOff);
}
BENCHMARK(BM_LearnerStepRefactor)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

void BM_SglFullRunRSweep(benchmark::State& state) {
  const measure::Measurements& data = mesh_measurements();
  core::SglConfig config;
  config.embedding.r = static_cast<Index>(state.range(0));
  Index iterations = 0;
  Index edges = 0;
  for (auto _ : state) {
    core::SglLearner learner(data.voltages, config);
    const core::SglResult result = learner.run(&data.currents);
    iterations = result.iterations;
    edges = result.learned.num_edges();
    benchmark::DoNotOptimize(result.learned.num_edges());
  }
  state.counters["iterations"] = static_cast<double>(iterations);
  state.counters["edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_SglFullRunRSweep)
    ->Arg(3)
    ->Arg(5)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void BM_SglFullRunBetaSweep(benchmark::State& state) {
  const measure::Measurements& data = mesh_measurements();
  core::SglConfig config;
  config.beta = 1.0 / static_cast<Real>(state.range(0));
  Index iterations = 0;
  Index edges = 0;
  for (auto _ : state) {
    core::SglLearner learner(data.voltages, config);
    const core::SglResult result = learner.run(&data.currents);
    iterations = result.iterations;
    edges = result.learned.num_edges();
    benchmark::DoNotOptimize(result.learned.num_edges());
  }
  state.counters["iterations"] = static_cast<double>(iterations);
  state.counters["edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_SglFullRunBetaSweep)
    ->Arg(1000)   // β = 1e-3 (paper default)
    ->Arg(100)    // β = 1e-2
    ->Arg(10)     // β = 1e-1
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void BM_SglSingleStep(benchmark::State& state) {
  // Cost of one Step-2/3/4 iteration on a fresh spanning-tree learner.
  const measure::Measurements& data = mesh_measurements();
  core::SglConfig config;
  for (auto _ : state) {
    state.PauseTiming();
    core::SglLearner learner(data.voltages, config);
    state.ResumeTiming();
    const core::SglIterationStats s = learner.step();
    benchmark::DoNotOptimize(s.smax);
  }
}
BENCHMARK(BM_SglSingleStep)->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_SensitivityScan(benchmark::State& state) {
  // Step-3 kernel in isolation: candidate sensitivities from an embedding.
  const measure::Measurements& data = mesh_measurements();
  core::SglConfig config;
  core::SglLearner learner(data.voltages, config);
  spectral::EmbeddingOptions eopt;
  eopt.r = 5;
  const spectral::Embedding emb =
      spectral::compute_embedding(learner.current_graph(), eopt);
  const graph::Graph& knn_graph = learner.knn_graph();
  const Real m = static_cast<Real>(data.voltages.cols());
  for (auto _ : state) {
    Real smax = -1e300;
    for (const graph::Edge& e : knn_graph.edges()) {
      const Real z_emb = emb.u.row_distance_squared(e.s, e.t);
      const Real z_data = data.voltages.row_distance_squared(e.s, e.t);
      smax = std::max(smax, z_emb - z_data / m);
    }
    benchmark::DoNotOptimize(smax);
  }
  state.counters["candidates"] = static_cast<double>(knn_graph.num_edges());
}
BENCHMARK(BM_SensitivityScan)->Unit(benchmark::kMicrosecond);

void BM_SensitivityScanThreaded(benchmark::State& state) {
  // The Step-3 kernel exactly as SglLearner::step() runs it: parallel
  // fill + deterministic chunk-ordered max reduction. Larger mesh than
  // BM_SensitivityScan so the per-candidate work dominates scheduling.
  const Index threads = static_cast<Index>(state.range(0));
  static const measure::Measurements data = [] {
    const graph::Graph g = graph::make_grid2d(96, 96, true).graph;
    measure::MeasurementOptions options;
    options.num_measurements = 50;
    return measure::generate_measurements(g, options);
  }();
  static const core::SglLearner learner(data.voltages, core::SglConfig{});
  static const spectral::Embedding emb = [] {
    spectral::EmbeddingOptions eopt;
    eopt.r = 5;
    return spectral::compute_embedding(learner.current_graph(), eopt);
  }();
  const graph::Graph& knn_graph = learner.knn_graph();
  const Real m = static_cast<Real>(data.voltages.cols());
  for (auto _ : state) {
    const Real smax = parallel::parallel_reduce(
        0, knn_graph.num_edges(), threads, -1e300,
        [&](Index lo, Index hi) {
          Real local = -1e300;
          for (Index e = lo; e < hi; ++e) {
            const graph::Edge& edge = knn_graph.edge(e);
            const Real z_emb = emb.u.row_distance_squared(edge.s, edge.t);
            const Real z_data =
                data.voltages.row_distance_squared(edge.s, edge.t);
            local = std::max(local, z_emb - z_data / m);
          }
          return local;
        },
        [](Real a, Real b) { return std::max(a, b); });
    benchmark::DoNotOptimize(smax);
  }
  state.counters["candidates"] = static_cast<double>(knn_graph.num_edges());
}
BENCHMARK(BM_SensitivityScanThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_EdgeScalingThreaded(benchmark::State& state) {
  // Step-5 multi-RHS solves: one factorization, M independent columns.
  const Index threads = static_cast<Index>(state.range(0));
  const measure::Measurements& data = mesh_measurements();
  core::SglConfig config;
  core::SglLearner learner(data.voltages, config);
  const core::SglResult result = learner.run(nullptr);
  for (auto _ : state) {
    const Real factor = core::spectral_edge_scale_factor(
        result.learned, data.voltages, data.currents, {}, threads);
    benchmark::DoNotOptimize(factor);
  }
}
BENCHMARK(BM_EdgeScalingThreaded)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_EdgeScaling(benchmark::State& state) {
  // Step-5 kernel: eq. 21-23 scaling solves.
  const measure::Measurements& data = mesh_measurements();
  core::SglConfig config;
  core::SglLearner learner(data.voltages, config);
  const core::SglResult result = learner.run(nullptr);
  for (auto _ : state) {
    graph::Graph g = result.learned;
    const Real factor =
        core::apply_spectral_edge_scaling(g, data.voltages, data.currents);
    benchmark::DoNotOptimize(factor);
  }
}
BENCHMARK(BM_EdgeScaling)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
