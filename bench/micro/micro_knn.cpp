// kNN microbenchmarks: exact scan vs HNSW build/query — the Step-1
// scalability ablation (the paper leans on HNSW [8] for large N).
#include <benchmark/benchmark.h>

#include "sgl.hpp"

namespace {

using namespace sgl;

la::DenseMatrix random_points(Index n, Index dim, std::uint64_t seed) {
  Rng rng(seed);
  la::DenseMatrix x(n, dim);
  for (Index j = 0; j < dim; ++j)
    for (Index i = 0; i < n; ++i) x(i, j) = rng.normal();
  return x;
}

void BM_BruteForceKnn(benchmark::State& state) {
  const Index n = static_cast<Index>(state.range(0));
  const la::DenseMatrix x = random_points(n, 50, 3);
  for (auto _ : state) {
    const knn::KnnResult r = knn::brute_force_knn(x, 5);
    benchmark::DoNotOptimize(r.neighbor.data());
  }
}
BENCHMARK(BM_BruteForceKnn)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_HnswBuildAndQueryAll(benchmark::State& state) {
  const Index n = static_cast<Index>(state.range(0));
  const la::DenseMatrix x = random_points(n, 50, 3);
  for (auto _ : state) {
    const knn::KnnResult r = knn::hnsw_knn(x, 5);
    benchmark::DoNotOptimize(r.neighbor.data());
  }
}
BENCHMARK(BM_HnswBuildAndQueryAll)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond);

void BM_KnnGraphBuild(benchmark::State& state) {
  // End-to-end Step 1 (neighbor search + symmetrize + connectivity).
  const Index n = static_cast<Index>(state.range(0));
  const la::DenseMatrix x = random_points(n, 50, 5);
  for (auto _ : state) {
    const graph::Graph g = knn::build_knn_graph(x, {});
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_KnnGraphBuild)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_HnswQueryOnly(benchmark::State& state) {
  const Index n = 8192;
  const la::DenseMatrix x = random_points(n, 50, 7);
  const knn::HnswIndex index(x);
  Index q = 0;
  for (auto _ : state) {
    const auto found = index.search_point(q, 5);
    benchmark::DoNotOptimize(found.data());
    q = (q + 1) % n;
  }
}
BENCHMARK(BM_HnswQueryOnly)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
