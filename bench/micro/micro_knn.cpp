// kNN microbenchmarks: exact scan vs HNSW build/query — the Step-1
// scalability ablation (the paper leans on HNSW [8] for large N).
#include <benchmark/benchmark.h>

#include "sgl.hpp"

namespace {

using namespace sgl;

la::DenseMatrix random_points(Index n, Index dim, std::uint64_t seed) {
  Rng rng(seed);
  la::DenseMatrix x(n, dim);
  for (Index j = 0; j < dim; ++j)
    for (Index i = 0; i < n; ++i) x(i, j) = rng.normal();
  return x;
}

void BM_BruteForceKnn(benchmark::State& state) {
  const Index n = static_cast<Index>(state.range(0));
  const la::DenseMatrix x = random_points(n, 50, 3);
  for (auto _ : state) {
    const knn::KnnResult r = knn::brute_force_knn(x, 5);
    benchmark::DoNotOptimize(r.neighbor.data());
  }
}
BENCHMARK(BM_BruteForceKnn)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_HnswBuildAndQueryAll(benchmark::State& state) {
  const Index n = static_cast<Index>(state.range(0));
  const la::DenseMatrix x = random_points(n, 50, 3);
  for (auto _ : state) {
    const knn::KnnResult r = knn::hnsw_knn(x, 5);
    benchmark::DoNotOptimize(r.neighbor.data());
  }
}
BENCHMARK(BM_HnswBuildAndQueryAll)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond);

void BM_HnswBuildParallel(benchmark::State& state) {
  // Index construction alone (no queries) at the bench's thread count.
  // The generation-batched build produces the identical graph at every
  // arg, so this measures pure scheduling/speedup; Arg(1) IS the serial
  // baseline the ≥2×@4-threads acceptance gate compares against.
  const Index threads = static_cast<Index>(state.range(0));
  const la::DenseMatrix x = random_points(4096, 50, 3);
  Index committed = 0;
  for (auto _ : state) {
    const knn::HnswIndex index(x, {}, threads);
    committed = index.build_stats().committed_speculative;
    benchmark::DoNotOptimize(index.entry_point());
  }
  state.counters["batched_inserts"] = static_cast<double>(committed);
}
BENCHMARK(BM_HnswBuildParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_KnnGraphBuild(benchmark::State& state) {
  // End-to-end Step 1 (neighbor search + symmetrize + connectivity).
  const Index n = static_cast<Index>(state.range(0));
  const la::DenseMatrix x = random_points(n, 50, 5);
  for (auto _ : state) {
    const graph::Graph g = knn::build_knn_graph(x, {});
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_KnnGraphBuild)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_BruteForceKnnThreaded(benchmark::State& state) {
  // Thread-scaling of the exact scan at the N ≥ 4096 regime (wall-clock:
  // the work happens on pool threads, so real time is the honest metric).
  // The result is bit-identical to the serial scan for every thread count.
  const Index threads = static_cast<Index>(state.range(0));
  const Index n = 4096;
  const la::DenseMatrix x = random_points(n, 50, 3);
  for (auto _ : state) {
    const knn::KnnResult r = knn::brute_force_knn(x, 5, threads);
    benchmark::DoNotOptimize(r.neighbor.data());
  }
}
BENCHMARK(BM_BruteForceKnnThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_HnswKnnAllThreaded(benchmark::State& state) {
  // Batched HNSW queries with per-worker search scratch; construction
  // (serial, seeded) is excluded via a shared one-time index.
  const Index threads = static_cast<Index>(state.range(0));
  static const la::DenseMatrix x = random_points(8192, 50, 7);
  static const knn::HnswIndex index(x);
  for (auto _ : state) {
    const knn::KnnResult r = index.knn_all(5, threads);
    benchmark::DoNotOptimize(r.neighbor.data());
  }
}
BENCHMARK(BM_HnswKnnAllThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_HnswQueryOnly(benchmark::State& state) {
  const Index n = 8192;
  const la::DenseMatrix x = random_points(n, 50, 7);
  const knn::HnswIndex index(x);
  Index q = 0;
  for (auto _ : state) {
    const auto found = index.search_point(q, 5);
    benchmark::DoNotOptimize(found.data());
    q = (q + 1) % n;
  }
}
BENCHMARK(BM_HnswQueryOnly)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
