// Serving-layer microbenchmarks (DESIGN.md §10): the batching win. One
// coalesced apply_block answering b resistance queries vs b sequential
// single-RHS solves through the same engine. Identical bits either way —
// the delta is pure batching (one matrix traversal per sweep amortized
// across all columns). The acceptance bar is ≥1.5× at b=16, 1 thread, on
// the 192² mesh.
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "sgl.hpp"

namespace {

using namespace sgl;

serve::ServeOptions bench_options(Index batch_width) {
  serve::ServeOptions options;
  options.batch_width = batch_width;
  options.num_threads = 1;
  // The serving engine's whole point is the warm cached factorization, so
  // pin the direct method rather than letting kAuto route the 192² mesh
  // to AMG-PCG: block triangular sweeps traverse the factor once for all
  // b columns, which is where coalescing pays.
  options.solver.method = solver::LaplacianMethod::kCholesky;
  return options;
}

std::vector<std::pair<Index, Index>> probe_pairs(Index n, Index count) {
  // Spread source/sink pairs across the mesh so every column is a
  // distinct right-hand side.
  std::vector<std::pair<Index, Index>> pairs;
  for (Index i = 0; i < count; ++i) {
    pairs.emplace_back(i * (n / (2 * count) + 1), n - 1 - i * 3);
  }
  return pairs;
}

/// b resistance queries answered by ONE apply_block of width b.
void BM_ServeBatchedResistance(benchmark::State& state) {
  const Index b = static_cast<Index>(state.range(0));
  serve::ServeEngine engine(bench_options(b));
  (void)engine.load_graph(graph::make_grid2d(192, 192).graph);
  const auto pairs = probe_pairs(engine.active_num_nodes(), b);
  for (auto _ : state) {
    const std::vector<Real> values = engine.effective_resistance_batch(pairs);
    benchmark::DoNotOptimize(values.data());
  }
  const serve::ServeStats stats = engine.stats();
  // The receipt: one apply_block per iteration, width b.
  state.counters["batches_per_iter"] =
      static_cast<double>(stats.batches) /
      static_cast<double>(state.iterations());
  state.counters["max_batch_width"] =
      static_cast<double>(stats.max_batch_width);
}
BENCHMARK(BM_ServeBatchedResistance)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The unbatched baseline: the same b queries as b sequential
/// single-column solves through a width-1 engine.
void BM_ServePerQuery(benchmark::State& state) {
  const Index b = static_cast<Index>(state.range(0));
  serve::ServeEngine engine(bench_options(1));
  (void)engine.load_graph(graph::make_grid2d(192, 192).graph);
  const auto pairs = probe_pairs(engine.active_num_nodes(), b);
  for (auto _ : state) {
    for (const auto& [s, t] : pairs) {
      const Real value = engine.effective_resistance(s, t);
      benchmark::DoNotOptimize(value);
    }
  }
  const serve::ServeStats stats = engine.stats();
  state.counters["batches_per_iter"] =
      static_cast<double>(stats.batches) /
      static_cast<double>(state.iterations());
  state.counters["max_batch_width"] =
      static_cast<double>(stats.max_batch_width);
}
BENCHMARK(BM_ServePerQuery)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
