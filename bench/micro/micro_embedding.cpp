// Embedding-engine microbenchmarks: the per-iteration embedding cost of
// the learning loop on the 192² mesh (36 864 nodes — the scale where the
// kAuto policy switches to the solver-free engine), exact vs solver-free.
// BM_Embedding and BM_SfSglEmbedding are the acceptance pair recorded in
// the repo-root BENCH_solver.json baseline and gated by the blocking
// bench leg in CI.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "spectral/embedding.hpp"

namespace {

using namespace sgl;

const graph::Graph& mesh192() {
  static const graph::Graph g = graph::make_grid2d(192, 192).graph;
  return g;
}

// Exact engine (Lanczos over the Laplacian pseudoinverse), single thread:
// the pre-redesign per-iteration embedding path, eq. 12 verbatim.
void BM_Embedding(benchmark::State& state) {
  const graph::Graph& g = mesh192();
  spectral::EmbeddingOptions options;
  options.r = 5;
  options.engine = spectral::EmbeddingEngine::kExact;
  options.lanczos.num_threads = 1;
  options.solver.num_threads = 1;
  for (auto _ : state) {
    const spectral::Embedding e = spectral::compute_embedding(g, options);
    benchmark::DoNotOptimize(e.u.data().data());
    state.counters["lanczos_steps"] = static_cast<double>(e.lanczos_steps);
  }
}
BENCHMARK(BM_Embedding)->Unit(benchmark::kMillisecond)->Iterations(2);

// Solver-free engine (SF-SGL multilevel smoothed test vectors), thread
// sweep. The Arg(1) row against BM_Embedding is the ≥3× per-iteration
// speedup acceptance of the engine redesign; results are bit-identical
// for every thread count, so the sweep measures scheduling only.
void BM_SfSglEmbedding(benchmark::State& state) {
  const graph::Graph& g = mesh192();
  spectral::EmbeddingOptions options;
  options.r = 5;
  options.engine = spectral::EmbeddingEngine::kSolverFree;
  options.sf.num_threads = static_cast<Index>(state.range(0));
  for (auto _ : state) {
    const spectral::Embedding e = spectral::compute_embedding(g, options);
    benchmark::DoNotOptimize(e.u.data().data());
    state.counters["hierarchy_levels"] =
        static_cast<double>(e.hierarchy_levels);
    state.counters["smoother_sweeps"] = static_cast<double>(e.smoother_sweeps);
  }
}
BENCHMARK(BM_SfSglEmbedding)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace

BENCHMARK_MAIN();
