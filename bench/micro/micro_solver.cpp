// Substrate microbenchmarks: sparse LDLᵀ across fill-reducing orderings
// and PCG across preconditioners — the ablation behind the solver choices
// documented in DESIGN.md (direct factorization for ultra-sparse learned
// graphs, AMG-PCG for large original meshes).
#include <benchmark/benchmark.h>

#include "sgl.hpp"

namespace {

using namespace sgl;
using solver::grounded_laplacian;

la::CsrMatrix mesh_matrix(Index side) {
  return grounded_laplacian(graph::make_grid2d(side, side).graph);
}

/// Tree + 1% extra edges: the shape of an SGL iterate.
la::CsrMatrix ultra_sparse_matrix(Index side) {
  const graph::Graph mesh = graph::make_grid2d(side, side).graph;
  const auto tree_ids = graph::maximum_spanning_forest(mesh);
  graph::Graph g = graph::subgraph_from_edges(mesh, tree_ids);
  Rng rng(7);
  const Index extras = mesh.num_nodes() / 100 + 1;
  for (Index i = 0; i < extras; ++i) {
    const Index s = rng.uniform_int(mesh.num_nodes());
    const Index t = rng.uniform_int(mesh.num_nodes());
    if (s != t) g.add_edge(std::min(s, t), std::max(s, t), 1.0);
  }
  return grounded_laplacian(g);
}

void BM_CholeskyFactorMesh(benchmark::State& state) {
  const auto ordering = static_cast<solver::OrderingMethod>(state.range(0));
  const la::CsrMatrix a = mesh_matrix(64);
  Index fill = 0;
  for (auto _ : state) {
    const solver::CholeskySolver chol(a, ordering);
    fill = chol.stats().factor_nnz;
    benchmark::DoNotOptimize(fill);
  }
  state.counters["factor_nnz"] = static_cast<double>(fill);
}
BENCHMARK(BM_CholeskyFactorMesh)
    ->Arg(static_cast<int>(solver::OrderingMethod::kNatural))
    ->Arg(static_cast<int>(solver::OrderingMethod::kRcm))
    ->Arg(static_cast<int>(solver::OrderingMethod::kMinimumDegree))
    ->Arg(static_cast<int>(solver::OrderingMethod::kNestedDissection))
    ->Unit(benchmark::kMillisecond);

void BM_CholeskyFactorUltraSparse(benchmark::State& state) {
  const la::CsrMatrix a = ultra_sparse_matrix(static_cast<Index>(state.range(0)));
  Index fill = 0;
  for (auto _ : state) {
    const solver::CholeskySolver chol(a, solver::OrderingMethod::kMinimumDegree);
    fill = chol.stats().factor_nnz;
    benchmark::DoNotOptimize(fill);
  }
  state.counters["factor_nnz"] = static_cast<double>(fill);
  state.counters["n"] = static_cast<double>(a.rows());
}
BENCHMARK(BM_CholeskyFactorUltraSparse)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

// --- Supernodal dense-panel kernels vs the PR4 scalar path ------------
// Same 192² mesh, same nested-dissection ordering and level schedule;
// only the numeric kernel differs. Symbolic analysis runs once outside
// the loop (refactorize keeps it), so the timing isolates exactly the
// phase the panel kernels rewrote. The factors are bitwise-identical —
// the delta is pure arithmetic/layout.

void BM_FactorLevelScheduled(benchmark::State& state) {
  const la::CsrMatrix a = mesh_matrix(192);
  const Index threads = static_cast<Index>(state.range(0));
  solver::CholeskySolver chol(a, solver::OrderingMethod::kNestedDissection,
                              threads, solver::FactorKernel::kScalar);
  for (auto _ : state) {
    chol.refactorize(a, threads);
    benchmark::DoNotOptimize(chol.stats().factor_nnz);
  }
  state.counters["factor_nnz"] = static_cast<double>(chol.stats().factor_nnz);
}
BENCHMARK(BM_FactorLevelScheduled)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_FactorSupernodal(benchmark::State& state) {
  const la::CsrMatrix a = mesh_matrix(192);
  const Index threads = static_cast<Index>(state.range(0));
  solver::CholeskySolver chol(a, solver::OrderingMethod::kNestedDissection,
                              threads, solver::FactorKernel::kSupernodal);
  for (auto _ : state) {
    chol.refactorize(a, threads);
    benchmark::DoNotOptimize(chol.stats().factor_nnz);
  }
  state.counters["factor_nnz"] = static_cast<double>(chol.stats().factor_nnz);
  state.counters["panel_columns"] =
      static_cast<double>(chol.stats().panel_columns);
  state.counters["panel_max_width"] =
      static_cast<double>(chol.stats().panel_max_width);
}
BENCHMARK(BM_FactorSupernodal)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SolveBlockPanel(benchmark::State& state) {
  // Block forward/backward sweeps on the 192² mesh factor: arg 0 picks
  // the kernel (0 = scalar entry-wise CSC gathers, 1 = contiguous panel
  // runs). Eight right-hand sides, one thread — the run-gather delta.
  const la::CsrMatrix a = mesh_matrix(192);
  const auto kernel = state.range(0) == 0 ? solver::FactorKernel::kScalar
                                          : solver::FactorKernel::kSupernodal;
  const solver::CholeskySolver chol(
      a, solver::OrderingMethod::kNestedDissection, 1, kernel);
  Rng rng(5);
  la::MultiVector b(a.rows(), 8);
  for (Index j = 0; j < 8; ++j)
    for (Real& v : b.col(j)) v = rng.normal();
  for (auto _ : state) {
    la::MultiVector x = chol.solve_block(b, 1);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SolveBlockPanel)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_CholeskySolveMesh(benchmark::State& state) {
  const la::CsrMatrix a = mesh_matrix(64);
  const solver::CholeskySolver chol(a, solver::OrderingMethod::kMinimumDegree);
  Rng rng(3);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  for (auto _ : state) {
    la::Vector x = chol.solve(b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_CholeskySolveMesh)->Unit(benchmark::kMicrosecond);

void BM_CholeskyUpdateEdge(benchmark::State& state) {
  // Rank-1 update/downdate along the elimination-tree path (DESIGN.md
  // §8): the in-place alternative to refactoring after one edge change.
  // Alternating +w/−w stamps keep the factor at its starting values, so
  // every iteration exercises the same path length.
  const la::CsrMatrix a =
      ultra_sparse_matrix(static_cast<Index>(state.range(0)));
  solver::CholeskySolver chol(a, solver::OrderingMethod::kMinimumDegree);
  // First off-diagonal entry at mid-matrix: an existing edge (always in
  // pattern) whose etree path is representative, not a leaf stub.
  Index u = kInvalidIndex;
  Index v = kInvalidIndex;
  for (Index i = a.rows() / 2; i < a.rows() && u == kInvalidIndex; ++i)
    for (Index p = a.row_ptr()[static_cast<std::size_t>(i)];
         p < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++p)
      if (a.col_idx()[static_cast<std::size_t>(p)] > i) {
        u = i;
        v = a.col_idx()[static_cast<std::size_t>(p)];
        break;
      }
  const Real w = 0.5;
  bool add = true;
  for (auto _ : state) {
    chol.update_edge(u, v, add ? w : -w);
    add = !add;
    benchmark::DoNotOptimize(chol.stats().updates_applied);
  }
  state.counters["n"] = static_cast<double>(a.rows());
}
BENCHMARK(BM_CholeskyUpdateEdge)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_PcgMesh(benchmark::State& state) {
  const la::CsrMatrix a = mesh_matrix(64);
  Rng rng(4);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();

  const graph::Graph mesh_graph = graph::make_grid2d(64, 64).graph;
  std::unique_ptr<solver::Preconditioner> m;
  switch (state.range(0)) {
    case 0: m = std::make_unique<solver::IdentityPreconditioner>(a.rows()); break;
    case 1: m = std::make_unique<solver::JacobiPreconditioner>(a); break;
    case 2: m = std::make_unique<solver::SgsPreconditioner>(a); break;
    case 3: m = std::make_unique<solver::Ic0Preconditioner>(a); break;
    case 4: m = std::make_unique<solver::TreePreconditioner>(mesh_graph); break;
    default: m = std::make_unique<solver::AmgPreconditioner>(a); break;
  }
  Index iterations = 0;
  for (auto _ : state) {
    la::Vector x;
    const solver::PcgResult r = solver::pcg_solve(a, b, x, *m);
    iterations = r.iterations;
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["pcg_iterations"] = static_cast<double>(iterations);
}
BENCHMARK(BM_PcgMesh)
    ->Arg(0)   // identity
    ->Arg(1)   // Jacobi
    ->Arg(2)   // symmetric Gauss-Seidel
    ->Arg(3)   // IC(0)
    ->Arg(4)   // spanning tree
    ->Arg(5)   // aggregation AMG
    ->Unit(benchmark::kMillisecond);

/// Block PCG over the preconditioner apply_block seam: one SpMM and one
/// block factor sweep per iteration for all b right-hand sides. Args:
/// block width b, threads. The acceptance bar (vs BM_PcgPerColumn) is
/// ≥1.3× at b=16, 1 thread, on the 192² mesh.
void BM_BlockPcg(benchmark::State& state) {
  const Index b = static_cast<Index>(state.range(0));
  const Index threads = static_cast<Index>(state.range(1));
  const la::CsrMatrix a = mesh_matrix(192);
  const solver::Ic0Preconditioner ic0(a);
  Rng rng(6);
  la::MultiVector rhs(a.rows(), b);
  for (Index j = 0; j < b; ++j)
    for (Real& v : rhs.col(j)) v = rng.normal();
  solver::PcgOptions options;
  options.rel_tolerance = 1e-8;
  options.num_threads = threads;
  Index iterations = 0;
  for (auto _ : state) {
    la::MultiVector x(a.rows(), b);
    const solver::PcgBlockResult r =
        solver::pcg_solve_block(a, rhs.view(), x.view(), ic0, options);
    iterations = r.max_iterations();
    benchmark::DoNotOptimize(x.data().data());
  }
  state.counters["pcg_iterations"] = static_cast<double>(iterations);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_BlockPcg)
    ->ArgsProduct({{1, 4, 16}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The unbatched baseline: b sequential scalar PCG solves over the same
/// right-hand sides (b SpMVs and b factor sweeps per iteration).
void BM_PcgPerColumn(benchmark::State& state) {
  const Index b = static_cast<Index>(state.range(0));
  const la::CsrMatrix a = mesh_matrix(192);
  const solver::Ic0Preconditioner ic0(a);
  Rng rng(6);
  la::MultiVector rhs(a.rows(), b);
  for (Index j = 0; j < b; ++j)
    for (Real& v : rhs.col(j)) v = rng.normal();
  solver::PcgOptions options;
  options.rel_tolerance = 1e-8;
  options.num_threads = 1;
  Index iterations = 0;
  for (auto _ : state) {
    for (Index j = 0; j < b; ++j) {
      la::Vector bj(rhs.col(j).begin(), rhs.col(j).end());
      la::Vector x;
      const solver::PcgResult r = solver::pcg_solve(a, bj, x, ic0, options);
      iterations = r.iterations;
      benchmark::DoNotOptimize(x.data());
    }
  }
  state.counters["pcg_iterations"] = static_cast<double>(iterations);
}
BENCHMARK(BM_PcgPerColumn)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_AmgSetup(benchmark::State& state) {
  const la::CsrMatrix a = mesh_matrix(static_cast<Index>(state.range(0)));
  double complexity = 0.0;
  for (auto _ : state) {
    const solver::AmgHierarchy h(a);
    complexity = h.operator_complexity();
    benchmark::DoNotOptimize(complexity);
  }
  state.counters["operator_complexity"] = complexity;
}
BENCHMARK(BM_AmgSetup)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_LaplacianPinvApply(benchmark::State& state) {
  const graph::Graph g = graph::make_grid2d(64, 64).graph;
  solver::LaplacianSolverOptions options;
  options.method = static_cast<solver::LaplacianMethod>(state.range(0));
  const solver::LaplacianPinvSolver pinv(g, options);
  Rng rng(5);
  la::Vector y(static_cast<std::size_t>(g.num_nodes()));
  for (auto& v : y) v = rng.normal();
  la::center(y);
  for (auto _ : state) {
    la::Vector x = pinv.apply(y);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_LaplacianPinvApply)
    ->Arg(static_cast<int>(solver::LaplacianMethod::kCholesky))
    ->Arg(static_cast<int>(solver::LaplacianMethod::kPcgJacobi))
    ->Arg(static_cast<int>(solver::LaplacianMethod::kPcgAmg))
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
