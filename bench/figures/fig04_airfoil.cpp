// Figure 4: learning the "airfoil" graph.
//
// Paper: |V| = 4,253, |E| = 12,289 with 100 noiseless measurements; the
// objective climbs over the iterations, the learned graph has density
// 1.04 (original 2.89), eigenvalues match along the diagonal, and the
// spectral drawings of original and learned graphs look alike.
#include <fstream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sgl;
  const bench::Args args(argc, argv);
  const Index m = static_cast<Index>(args.get_int("measurements", 100));
  const Index k_eigs = static_cast<Index>(args.get_int("eigs", 50));
  const std::string layout_out = args.get_string("layout-out", "");

  bench::banner("fig04_airfoil",
                "airfoil (4,253/12,289), 100 noiseless measurements: "
                "density 2.89 -> 1.04, eigenvalues on the diagonal, "
                "matching spectral drawings");

  const graph::MeshGraph mesh =
      args.quick() ? bench::quick_trimesh(30, 26)
                   : graph::make_airfoil_surrogate();
  std::printf("# graph: %d nodes, %d edges (density %.3f); M=%d\n",
              mesh.graph.num_nodes(), mesh.graph.num_edges(),
              mesh.graph.density(), m);

  measure::MeasurementOptions mopt;
  mopt.num_measurements = m;
  const measure::Measurements data =
      measure::generate_measurements(mesh.graph, mopt);

  core::SglConfig config;
  std::vector<std::pair<Index, Real>> curve;
  config.observer = [&curve](Index it, Real smax, Index) {
    curve.emplace_back(it, smax);
  };
  core::SglLearner learner(data.voltages, config);
  const core::SglResult result = learner.run(&data.currents);

  std::printf("iteration,smax\n");
  for (const auto& [it, smax] : curve)
    std::printf("%d,%.6e\n", it, smax);

  const spectral::SpectrumComparison cmp =
      spectral::compare_spectra(mesh.graph, result.learned, k_eigs);
  bench::print_eigen_scatter(cmp.reference, cmp.approx);
  std::printf("# density: original=%.3f learned=%.3f (paper: 2.89 -> 1.04)\n",
              mesh.graph.density(), result.learned.density());
  std::printf("# eig corr=%.5f mean_rel_err=%.4f iterations=%d\n",
              cmp.correlation, cmp.mean_rel_error, result.iterations);

  if (!layout_out.empty()) {
    // Spectral drawings (u2, u3) of original and learned graphs with
    // spectral-cluster colors, one row per node.
    spectral::EmbeddingOptions eopt;
    eopt.r = 3;
    const auto orig_xy = spectral::spectral_layout(mesh.graph, eopt);
    const auto learned_xy = spectral::spectral_layout(result.learned, eopt);
    const auto clusters = spectral::spectral_clusters(mesh.graph, 4);
    std::ofstream out(layout_out);
    out << "node,orig_x,orig_y,learned_x,learned_y,cluster\n";
    for (Index i = 0; i < mesh.graph.num_nodes(); ++i) {
      const auto& o = orig_xy[static_cast<std::size_t>(i)];
      const auto& l = learned_xy[static_cast<std::size_t>(i)];
      out << i << ',' << o[0] << ',' << o[1] << ',' << l[0] << ',' << l[1]
          << ',' << clusters[static_cast<std::size_t>(i)] << '\n';
    }
    std::printf("# layout written to %s\n", layout_out.c_str());
  }
  return 0;
}
