// Figure 6: learning the "G2 circuit" graph.
//
// Paper: |V| = 150,102, |E| = 288,286 with 100 noiseless measurements;
// the objective climbs over ~20 iterations and the learned ultra-sparse
// graph's first eigenvalues track the original's along the diagonal.
// This is the scalability showcase: the per-iteration eigensolver runs on
// the ultra-sparse learned graph (direct LDLᵀ), while the original-graph
// solves (measurement generation, true spectrum) use PCG-AMG.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sgl;
  const bench::Args args(argc, argv);
  const Index m = static_cast<Index>(args.get_int("measurements", 100));
  const Index k_eigs = static_cast<Index>(args.get_int("eigs", 30));

  bench::banner("fig06_g2circuit",
                "G2_circuit (150,102/288,286), 100 measurements: objective "
                "rises over ~20 iterations; eigenvalues on the diagonal");

  const graph::MeshGraph mesh =
      args.quick() ? graph::make_circuit_grid(60, 60, 6900, 0.5, 5.0, 11)
                   : graph::make_g2_circuit_surrogate();
  std::printf("# graph: %d nodes, %d edges (density %.3f); M=%d\n",
              mesh.graph.num_nodes(), mesh.graph.num_edges(),
              mesh.graph.density(), m);

  WallTimer timer;
  measure::MeasurementOptions mopt;
  mopt.num_measurements = m;
  const measure::Measurements data =
      measure::generate_measurements(mesh.graph, mopt);
  std::printf("# measurement generation: %.1fs\n", timer.seconds());

  core::SglConfig config;
  // HNSW candidate search at this scale.
  config.knn.hnsw.ef_construction = 120;
  config.knn.hnsw.ef_search = 96;
  std::vector<std::pair<Index, Real>> curve;
  config.observer = [&curve](Index it, Real smax, Index) {
    curve.emplace_back(it, smax);
  };
  timer.reset();
  core::SglLearner learner(data.voltages, config);
  const core::SglResult result = learner.run(&data.currents);
  std::printf("# learning: knn=%.1fs steps2to5=%.1fs iterations=%d\n",
              result.knn_seconds, result.learn_seconds, result.iterations);

  std::printf("iteration,smax\n");
  for (const auto& [it, smax] : curve) std::printf("%d,%.6e\n", it, smax);

  timer.reset();
  const spectral::SpectrumComparison cmp =
      spectral::compare_spectra(mesh.graph, result.learned, k_eigs);
  std::printf("# spectrum comparison: %.1fs\n", timer.seconds());
  bench::print_eigen_scatter(cmp.reference, cmp.approx);
  std::printf("# density: original=%.3f learned=%.3f (paper: 1.92 -> ~1.0)\n",
              mesh.graph.density(), result.learned.density());
  std::printf("# eig corr=%.5f mean_rel_err=%.4f\n", cmp.correlation,
              cmp.mean_rel_error);
  return 0;
}
