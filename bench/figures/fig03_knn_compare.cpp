// Figure 3: SGL versus the 5NN graph on "fe_4elt2".
//
// Paper: eigenvalue scatter of learned-vs-true for both methods; the SGL
// graph tracks the true spectrum closely at density 1.09 while the 5NN
// graph (density 2.89) shows visibly distorted eigenvalues.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sgl;
  const bench::Args args(argc, argv);
  const Index m = static_cast<Index>(args.get_int("measurements", 50));
  const Index k_eigs = static_cast<Index>(args.get_int("eigs", 50));

  bench::banner("fig03_knn_compare",
                "fe_4elt2: SGL (density 1.09) matches the true spectrum "
                "better than the eq-23-scaled 5NN graph (density 2.89)");

  const graph::MeshGraph mesh =
      args.quick() ? bench::quick_trimesh(40, 40)
                   : graph::make_fe4elt2_surrogate();
  std::printf("# graph: %d nodes, %d edges (density %.3f); M=%d\n",
              mesh.graph.num_nodes(), mesh.graph.num_edges(),
              mesh.graph.density(), m);

  measure::MeasurementOptions mopt;
  mopt.num_measurements = m;
  const measure::Measurements data =
      measure::generate_measurements(mesh.graph, mopt);

  const core::SglResult sgl = core::learn_graph(data.voltages, data.currents);
  const baseline::KnnBaselineResult knn =
      baseline::learn_knn_baseline(data.voltages, &data.currents, {});

  const spectral::SpectrumComparison cmp_sgl =
      spectral::compare_spectra(mesh.graph, sgl.learned, k_eigs);
  const spectral::SpectrumComparison cmp_knn =
      spectral::compare_spectra(mesh.graph, knn.graph, k_eigs);

  std::printf("idx,lambda_true,lambda_sgl,lambda_5nn\n");
  for (std::size_t i = 0; i < cmp_sgl.reference.size(); ++i)
    std::printf("%zu,%.8e,%.8e,%.8e\n", i + 2, cmp_sgl.reference[i],
                cmp_sgl.approx[i], cmp_knn.approx[i]);

  std::printf("# density: sgl=%.3f 5nn=%.3f (paper: 1.09 vs 2.89)\n",
              sgl.learned.density(), knn.graph.density());
  std::printf("# eig corr: sgl=%.5f 5nn=%.5f | mean rel err: sgl=%.4f "
              "5nn=%.4f\n",
              cmp_sgl.correlation, cmp_knn.correlation,
              cmp_sgl.mean_rel_error, cmp_knn.mean_rel_error);
  return 0;
}
