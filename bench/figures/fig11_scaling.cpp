// Figure 11: runtime scalability of SGL.
//
// Paper: total runtime of Steps 2–5 (spectral embedding, edge
// identification, convergence checking, edge scaling) versus node count,
// excluding kNN construction — near-linear growth.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sgl;
  const bench::Args args(argc, argv);
  const Index m = static_cast<Index>(args.get_int("measurements", 50));
  const bool full = args.get_int("full", 0) != 0;

  bench::banner("fig11_scaling",
                "runtime of Steps 2-5 vs node count (kNN excluded): "
                "near-linear scaling");

  std::vector<Index> sides;
  if (args.quick()) sides = {16, 32, 64};
  else if (full) sides = {32, 64, 128, 256, 512};
  else sides = {32, 64, 128, 256};

  std::printf("nodes,edges,iterations,knn_seconds,learn_seconds,"
              "microseconds_per_node\n");
  for (const Index side : sides) {
    const graph::MeshGraph mesh = graph::make_grid2d(side, side, true);
    measure::MeasurementOptions mopt;
    mopt.num_measurements = m;
    const measure::Measurements data =
        measure::generate_measurements(mesh.graph, mopt);

    core::SglConfig config;
    config.knn.hnsw.ef_construction = 120;
    const core::SglResult result =
        core::learn_graph(data.voltages, data.currents, config);

    const Real us_per_node = 1e6 * result.learn_seconds /
                             static_cast<Real>(mesh.graph.num_nodes());
    std::printf("%d,%d,%d,%.2f,%.3f,%.2f\n", mesh.graph.num_nodes(),
                mesh.graph.num_edges(), result.iterations, result.knn_seconds,
                result.learn_seconds, us_per_node);
  }
  std::printf("# near-linear scaling <=> microseconds_per_node roughly flat "
              "(mild log factor expected)\n");
  return 0;
}
