// Figure 9: graphs learned with noisy voltage measurements ("2D mesh").
//
// Paper: x̃ = x + ζ‖x‖ε with unit-norm Gaussian ε; ζ ∈ {0, 10%, 25%, 50%}.
// Rising noise degrades the eigenvalue match, but even ζ = 0.5 preserves
// the first few (structural) Laplacian eigenvalues.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sgl;
  const bench::Args args(argc, argv);
  const Index side =
      static_cast<Index>(args.get_int("side", args.quick() ? 40 : 100));
  const Index m = static_cast<Index>(args.get_int("measurements", 50));
  const Index k_eigs = static_cast<Index>(args.get_int("eigs", 50));

  bench::banner("fig09_noise",
                "2D mesh, noise 0/10/25/50%: degradation grows with noise "
                "but the leading eigenvalues survive even 50%");

  const graph::MeshGraph mesh = graph::make_grid2d(side, side, true);
  std::printf("# graph: %d nodes, %d edges; M=%d\n", mesh.graph.num_nodes(),
              mesh.graph.num_edges(), m);

  measure::MeasurementOptions mopt;
  mopt.num_measurements = m;
  const measure::Measurements data =
      measure::generate_measurements(mesh.graph, mopt);

  for (const Real zeta : {0.0, 0.10, 0.25, 0.50}) {
    la::DenseMatrix noisy = data.voltages;
    measure::add_noise(noisy, zeta, 1234 + static_cast<std::uint64_t>(zeta * 100));

    const core::SglResult result = core::learn_graph(noisy, data.currents);
    const spectral::SpectrumComparison cmp =
        spectral::compare_spectra(mesh.graph, result.learned, k_eigs);

    std::printf("noise_level,%.2f\n", zeta);
    std::printf("idx,lambda_true,lambda_learned\n");
    for (std::size_t i = 0; i < cmp.reference.size(); ++i)
      std::printf("%zu,%.8e,%.8e\n", i + 2, cmp.reference[i], cmp.approx[i]);
    std::printf("# zeta=%.2f density=%.3f eig_corr=%.5f mean_rel_err=%.4f "
                "(first 5 err=%.4f)\n",
                zeta, result.learned.density(), cmp.correlation,
                cmp.mean_rel_error,
                spectral::mean_relative_error(
                    la::Vector(cmp.reference.begin(), cmp.reference.begin() + 5),
                    la::Vector(cmp.approx.begin(), cmp.approx.begin() + 5)));
  }
  return 0;
}
