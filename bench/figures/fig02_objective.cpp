// Figure 2: objective function value versus SGL iterations ("fe_4elt2").
//
// Paper: fe_4elt2 (|V| = 11,143, |E| = 32,818); SGL converges in ~90
// iterations; the objective F (eq. 2, first 50 nonzero eigenvalues)
// increases monotonically toward the optimum, plotted against the
// eq-23-scaled 5NN baseline as a horizontal reference.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sgl;
  const bench::Args args(argc, argv);
  const Index m = static_cast<Index>(args.get_int("measurements", 50));
  const Index k_eigs = static_cast<Index>(args.get_int("objective-eigs", 50));
  const Index every = static_cast<Index>(
      args.get_int("objective-every", args.quick() ? 10 : 2));

  bench::banner("fig02_objective",
                "fe_4elt2 (11,143/32,818): F rises monotonically over ~90 "
                "iterations; SGL density 1.09 vs 5NN 2.89");

  const graph::MeshGraph mesh =
      args.quick() ? bench::quick_trimesh(40, 40)
                   : graph::make_fe4elt2_surrogate();
  std::printf("# graph: %d nodes, %d edges (density %.3f); M=%d\n",
              mesh.graph.num_nodes(), mesh.graph.num_edges(),
              mesh.graph.density(), m);

  measure::MeasurementOptions mopt;
  mopt.num_measurements = m;
  const measure::Measurements data =
      measure::generate_measurements(mesh.graph, mopt);

  spectral::ObjectiveOptions oopt;
  oopt.num_eigenvalues = k_eigs;
  const auto scaled_objective = [&](const graph::Graph& g) {
    graph::Graph scaled = g;
    core::apply_spectral_edge_scaling(scaled, data.voltages, data.currents);
    return spectral::graphical_lasso_objective(scaled, data.voltages, oopt)
        .value();
  };

  // Baseline: eq-23-scaled 5NN graph (the paper's horizontal line).
  baseline::KnnBaselineOptions bopt;
  const baseline::KnnBaselineResult knn =
      baseline::learn_knn_baseline(data.voltages, &data.currents, bopt);
  const Real f_knn =
      spectral::graphical_lasso_objective(knn.graph, data.voltages, oopt)
          .value();
  const Real f_knn_opt =
      spectral::optimal_scale_objective(knn.graph, data.voltages, oopt)
          .objective.value();
  const Real f_truth_opt =
      spectral::optimal_scale_objective(mesh.graph, data.voltages, oopt)
          .objective.value();
  std::printf("# 5NN baseline: density=%.3f F=%.4f F_opt_scale=%.4f\n",
              knn.graph.density(), f_knn, f_knn_opt);
  std::printf("# ground truth: F_opt_scale=%.4f (upper reference)\n",
              f_truth_opt);

  core::SglConfig config;
  core::SglLearner learner(data.voltages, config);
  std::printf("iteration,smax,objective_sgl,objective_5nn,density\n");
  // Iteration 0 = the initial spanning tree.
  std::printf("0,,%.6f,%.6f,%.4f\n", scaled_objective(learner.current_graph()),
              f_knn, learner.current_graph().density());
  while (!learner.converged() && !learner.exhausted() &&
         learner.iteration() < config.max_iterations) {
    const core::SglIterationStats s = learner.step();
    if (s.iteration % every == 0 || learner.converged() ||
        learner.exhausted()) {
      std::printf("%d,%.6e,%.6f,%.6f,%.4f\n", s.iteration, s.smax,
                  scaled_objective(learner.current_graph()), f_knn,
                  learner.current_graph().density());
    }
  }
  const core::SglResult result = learner.finalize(&data.currents);
  const Real f_sgl =
      spectral::graphical_lasso_objective(result.learned, data.voltages, oopt)
          .value();
  const Real f_sgl_opt =
      spectral::optimal_scale_objective(result.learned, data.voltages, oopt)
          .objective.value();
  std::printf(
      "# final: iterations=%d density=%.3f F_sgl=%.4f F_5nn=%.4f "
      "F_sgl_opt=%.4f F_5nn_opt=%.4f F_truth_opt=%.4f\n",
      result.iterations, result.learned.density(), f_sgl, f_knn, f_sgl_opt,
      f_knn_opt, f_truth_opt);
  std::printf(
      "# (paper shape: F increases monotonically; SGL much sparser; at "
      "optimal uniform scale truth/5NN land near the paper's plotted "
      "values)\n");
  return 0;
}
