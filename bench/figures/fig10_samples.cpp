// Figure 10: effect of the number of measurements ("fe_4elt2").
//
// Paper: M ∈ {5, 10, 25, 50}; more measurements give substantially better
// approximation of the graph spectral properties (the O(log N) sample
// complexity of §II-D in action).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sgl;
  const bench::Args args(argc, argv);
  const Index k_eigs = static_cast<Index>(args.get_int("eigs", 50));

  bench::banner("fig10_samples",
                "fe_4elt2, M in {5,10,25,50}: eigenvalue match improves "
                "with the number of measurements");

  const graph::MeshGraph mesh =
      args.quick() ? bench::quick_trimesh(40, 40)
                   : graph::make_fe4elt2_surrogate();
  std::printf("# graph: %d nodes, %d edges\n", mesh.graph.num_nodes(),
              mesh.graph.num_edges());

  for (const Index m : {5, 10, 25, 50}) {
    measure::MeasurementOptions mopt;
    mopt.num_measurements = m;
    mopt.seed = 2021;  // shared stream: smaller M uses a prefix-like sample
    const measure::Measurements data =
        measure::generate_measurements(mesh.graph, mopt);

    const core::SglResult result =
        core::learn_graph(data.voltages, data.currents);
    const spectral::SpectrumComparison cmp =
        spectral::compare_spectra(mesh.graph, result.learned, k_eigs);

    std::printf("measurements,%d\n", m);
    std::printf("idx,lambda_true,lambda_learned\n");
    for (std::size_t i = 0; i < cmp.reference.size(); ++i)
      std::printf("%zu,%.8e,%.8e\n", i + 2, cmp.reference[i], cmp.approx[i]);
    std::printf("# M=%d density=%.3f eig_corr=%.5f mean_rel_err=%.4f\n", m,
                result.learned.density(), cmp.correlation, cmp.mean_rel_error);
  }
  return 0;
}
