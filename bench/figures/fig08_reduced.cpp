// Figure 8: reduced networks learned from partial node voltages.
//
// Paper: G2_circuit with 100 measurements; learning from a random 20%
// (resp. 10%) subset of the node voltages — no current measurements —
// yields 5× (resp. 10×) smaller resistor networks (30K nodes / 31K edges
// and 15K/16K) whose first eigenvalues correlate with the original's at
// 0.999 and 0.994.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sgl;
  const bench::Args args(argc, argv);
  const Index m = static_cast<Index>(args.get_int("measurements", 100));
  const Index k_eigs = static_cast<Index>(args.get_int("eigs", 30));

  bench::banner("fig08_reduced",
                "G2_circuit, 100 measurements of 20%/10% node voltages: "
                "5x/10x smaller graphs, eigenvalue corr 0.999/0.994");

  const graph::MeshGraph mesh =
      args.quick() ? graph::make_circuit_grid(60, 60, 6900, 0.5, 5.0, 11)
                   : graph::make_g2_circuit_surrogate();
  std::printf("# graph: %d nodes, %d edges; M=%d\n", mesh.graph.num_nodes(),
              mesh.graph.num_edges(), m);

  measure::MeasurementOptions mopt;
  mopt.num_measurements = m;
  const measure::Measurements data =
      measure::generate_measurements(mesh.graph, mopt);

  // True spectrum of the full graph, computed once.
  const solver::LaplacianPinvSolver pinv_truth(mesh.graph);
  eig::LanczosOptions lopt;
  lopt.max_subspace = eig::spectrum_subspace_cap(mesh.graph.num_nodes(),
                                                 k_eigs, lopt.block_size);
  const la::Vector lambda_truth =
      eig::smallest_laplacian_eigenpairs(pinv_truth, k_eigs, lopt).eigenvalues;

  for (const Real fraction : {0.2, 0.1}) {
    const Index subset = static_cast<Index>(
        fraction * static_cast<Real>(mesh.graph.num_nodes()));
    const auto nodes =
        measure::sample_nodes(mesh.graph.num_nodes(), subset, 31);
    const la::DenseMatrix x_sub = measure::take_rows(data.voltages, nodes);

    core::SglConfig config;
    config.knn.hnsw.ef_construction = 120;
    const core::SglResult result = core::learn_graph(x_sub, config);

    const solver::LaplacianPinvSolver pinv_small(result.learned);
    const la::Vector lambda_small =
        eig::smallest_laplacian_eigenpairs(pinv_small, k_eigs, lopt)
            .eigenvalues;
    const Real corr =
        spectral::pearson_correlation(lambda_truth, lambda_small);

    // Single least-squares scale for the scatter (the voltage-only run has
    // no current data to pin absolute conductance, and correlation is
    // scale-free anyway).
    Real num = 0.0;
    Real den = 0.0;
    for (std::size_t i = 0; i < lambda_truth.size(); ++i) {
      num += lambda_truth[i] * lambda_small[i];
      den += lambda_small[i] * lambda_small[i];
    }
    const Real scale = den > 0.0 ? num / den : 1.0;

    std::printf("fraction,%0.2f\n", fraction);
    std::printf("idx,lambda_true,lambda_reduced_scaled\n");
    for (std::size_t i = 0; i < lambda_truth.size(); ++i)
      std::printf("%zu,%.8e,%.8e\n", i + 2, lambda_truth[i],
                  scale * lambda_small[i]);
    std::printf("# fraction=%.2f reduced: %d nodes, %d edges (%.1fx smaller) "
                "eig_corr=%.5f (paper: %.3f)\n",
                fraction, result.learned.num_nodes(),
                result.learned.num_edges(),
                static_cast<Real>(mesh.graph.num_nodes()) /
                    static_cast<Real>(result.learned.num_nodes()),
                corr, fraction > 0.15 ? 0.999 : 0.994);
  }
  return 0;
}
