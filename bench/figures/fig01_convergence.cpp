// Figure 1: decreasing maximum sensitivities on the "2D mesh" graph.
//
// Paper: |V| = 10,000, |E| = 20,000 (a 100×100 torus); starting from the
// MST of a 5NN graph, SGL converges to smax ≤ 1e-12 in about 40
// iterations, with log10(smax) decreasing roughly linearly.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sgl;
  const bench::Args args(argc, argv);
  const Index side = static_cast<Index>(
      args.get_int("side", args.quick() ? 40 : 100));
  const Index m = static_cast<Index>(args.get_int("measurements", 50));

  bench::banner("fig01_convergence",
                "2D mesh (100x100 torus, 10k nodes / 20k edges): log10 smax "
                "decreases ~linearly; ~40 iterations to tol=1e-12");

  const graph::MeshGraph mesh = graph::make_grid2d(side, side, true);
  std::printf("# graph: %d nodes, %d edges; M=%d, k=5, r=5, beta=1e-3\n",
              mesh.graph.num_nodes(), mesh.graph.num_edges(), m);

  measure::MeasurementOptions mopt;
  mopt.num_measurements = m;
  mopt.seed = 2021;
  const measure::Measurements data =
      measure::generate_measurements(mesh.graph, mopt);

  core::SglConfig config;
  config.tolerance = 1e-12;
  core::SglLearner learner(data.voltages, config);

  std::printf("iteration,smax,log10_smax,edges_added,total_edges\n");
  while (!learner.converged() && !learner.exhausted() &&
         learner.iteration() < config.max_iterations) {
    const core::SglIterationStats s = learner.step();
    std::printf("%d,%.6e,%.3f,%d,%d\n", s.iteration, s.smax,
                bench::log10_clamped(s.smax), s.edges_added, s.total_edges);
  }
  const core::SglResult result = learner.finalize(&data.currents);
  std::printf("# converged=%d exhausted=%d iterations=%d final_density=%.3f "
              "learn_seconds=%.2f\n",
              result.converged, result.exhausted, result.iterations,
              result.learned.density(), result.learn_seconds);
  return 0;
}
