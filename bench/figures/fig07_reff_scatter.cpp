// Figure 7: effective-resistance correlation scatter plots.
//
// Paper: for "2D mesh", "airfoil", "fe_4elt2" and "crack" (100 noiseless
// measurements each), effective resistances computed on the SGL-learned
// graphs correlate highly with those on the original graphs.
//
// Two measurement modes are reproduced:
//   - spherical: §III-A random unit current vectors. Here (1/M)‖Xᵀe_st‖²
//     concentrates on ‖L⁺e_st‖²/(N−1) — a biharmonic distance — so the
//     learned graph encodes a smoothed relative of Reff and the scatter is
//     correlated but dispersed.
//   - jl_sketch: the §II-D construction Y = C W^{1/2} B, for which
//     ‖Xᵀe_st‖² is a (1±ε) estimate of Reff itself; the learned graph
//     then reproduces effective resistances tightly along the diagonal —
//     the shape of the paper's figure.
#include <functional>

#include "bench_common.hpp"

namespace {

struct Case {
  const char* name;
  std::function<sgl::graph::MeshGraph()> make;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sgl;
  const bench::Args args(argc, argv);
  const Index m = static_cast<Index>(args.get_int("measurements", 100));
  const Index pairs_per_graph =
      static_cast<Index>(args.get_int("pairs", args.quick() ? 60 : 150));

  bench::banner("fig07_reff_scatter",
                "2D mesh / airfoil / fe_4elt2 / crack: learned-graph "
                "effective resistances correlate highly with the originals");

  std::vector<Case> cases;
  if (args.quick()) {
    cases = {{"2d_mesh", [] { return graph::make_grid2d(40, 40, true); }},
             {"airfoil", [] { return bench::quick_trimesh(30, 26); }}};
  } else {
    cases = {{"2d_mesh", [] { return graph::make_grid2d(100, 100, true); }},
             {"airfoil", [] { return graph::make_airfoil_surrogate(); }},
             {"fe_4elt2", [] { return graph::make_fe4elt2_surrogate(); }},
             {"crack", [] { return graph::make_crack_surrogate(); }}};
  }

  std::printf("graph,mode,pair,reff_original,reff_learned\n");
  for (const Case& c : cases) {
    const graph::MeshGraph mesh = c.make();
    const auto pairs =
        spectral::sample_node_pairs_by_hops(mesh.graph, pairs_per_graph, 17);

    for (const bool sketch : {false, true}) {
      measure::Measurements data;
      if (sketch) {
        measure::SketchOptions sopt;
        sopt.num_projections = m;
        data = measure::sketch_measurements(mesh.graph, sopt);
      } else {
        measure::MeasurementOptions mopt;
        mopt.num_measurements = m;
        data = measure::generate_measurements(mesh.graph, mopt);
      }
      const core::SglResult result =
          core::learn_graph(data.voltages, data.currents);
      const spectral::ResistanceComparison cmp =
          spectral::compare_effective_resistances(mesh.graph, result.learned,
                                                  pairs);
      const char* mode = sketch ? "jl_sketch" : "spherical";
      for (std::size_t i = 0; i < cmp.reference.size(); ++i)
        std::printf("%s,%s,%zu,%.6e,%.6e\n", c.name, mode, i,
                    cmp.reference[i], cmp.approx[i]);
      std::printf("# %s[%s]: nodes=%d density %.3f->%.3f reff_corr=%.5f\n",
                  c.name, mode, mesh.graph.num_nodes(), mesh.graph.density(),
                  result.learned.density(), cmp.correlation);
    }
  }
  return 0;
}
