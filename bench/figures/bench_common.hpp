// Shared helpers for the figure-reproduction harnesses.
//
// Every figure binary prints a self-documenting header (what the paper
// shows, what this run reproduces) followed by CSV rows, so the combined
// bench output can be diffed against EXPERIMENTS.md. All binaries accept
//   --quick            shrink the workload for smoke runs
//   --<name> <value>   integer/real overrides (per-figure)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "sgl.hpp"

namespace sgl::bench {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (key == "quick") {
        quick_ = true;
      } else if (i + 1 < argc) {
        values_[key] = argv[++i];
      }
    }
  }

  [[nodiscard]] bool quick() const noexcept { return quick_; }

  [[nodiscard]] long get_int(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
  }

  [[nodiscard]] double get_real(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

 private:
  bool quick_ = false;
  std::map<std::string, std::string> values_;
};

/// Standard banner: figure id, paper claim, run configuration.
inline void banner(const char* figure, const char* paper_claim) {
  std::printf("# %s\n", figure);
  std::printf("# paper: %s\n", paper_claim);
}

/// Small triangulated mesh for --quick runs.
inline graph::MeshGraph quick_trimesh(Index nx, Index ny) {
  graph::TriMeshOptions options;
  options.nx = nx;
  options.ny = ny;
  return graph::make_triangulated_mesh(options);
}

/// log10 clamped away from -inf for converged (≤0) sensitivities.
inline Real log10_clamped(Real x, Real floor_value = 1e-16) {
  return std::log10(std::max(x, floor_value));
}

/// Eigenvalue scatter rows: "i, lambda_reference, lambda_approx".
inline void print_eigen_scatter(const la::Vector& reference,
                                const la::Vector& approx,
                                const char* prefix = "") {
  std::printf("%sidx,lambda_true,lambda_learned\n", prefix);
  const std::size_t k = std::min(reference.size(), approx.size());
  for (std::size_t i = 0; i < k; ++i)
    std::printf("%s%zu,%.8e,%.8e\n", prefix, i + 2, reference[i], approx[i]);
}

}  // namespace sgl::bench
