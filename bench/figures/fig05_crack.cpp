// Figure 5: learning the "crack" graph.
//
// Paper: |V| = 10,240, |E| = 30,380 with 100 noiseless measurements;
// density 2.97 → 1.03 and eigenvalues on the diagonal.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sgl;
  const bench::Args args(argc, argv);
  const Index m = static_cast<Index>(args.get_int("measurements", 100));
  const Index k_eigs = static_cast<Index>(args.get_int("eigs", 50));

  bench::banner("fig05_crack",
                "crack (10,240/30,380), 100 noiseless measurements: density "
                "2.97 -> 1.03, eigenvalues on the diagonal");

  const graph::MeshGraph mesh =
      args.quick() ? bench::quick_trimesh(40, 32)
                   : graph::make_crack_surrogate();
  std::printf("# graph: %d nodes, %d edges (density %.3f); M=%d\n",
              mesh.graph.num_nodes(), mesh.graph.num_edges(),
              mesh.graph.density(), m);

  measure::MeasurementOptions mopt;
  mopt.num_measurements = m;
  const measure::Measurements data =
      measure::generate_measurements(mesh.graph, mopt);

  core::SglConfig config;
  std::vector<std::pair<Index, Real>> curve;
  config.observer = [&curve](Index it, Real smax, Index) {
    curve.emplace_back(it, smax);
  };
  core::SglLearner learner(data.voltages, config);
  const core::SglResult result = learner.run(&data.currents);

  std::printf("iteration,smax\n");
  for (const auto& [it, smax] : curve) std::printf("%d,%.6e\n", it, smax);

  const spectral::SpectrumComparison cmp =
      spectral::compare_spectra(mesh.graph, result.learned, k_eigs);
  bench::print_eigen_scatter(cmp.reference, cmp.approx);
  std::printf("# density: original=%.3f learned=%.3f (paper: 2.97 -> 1.03)\n",
              mesh.graph.density(), result.learned.density());
  std::printf("# eig corr=%.5f mean_rel_err=%.4f iterations=%d\n",
              cmp.correlation, cmp.mean_rel_error, result.iterations);
  return 0;
}
