# Sanitizer configuration shared by every sgl target.
#
# SGL_SANITIZE is a comma- or semicolon-separated list of sanitizer names
# (e.g. "address;undefined", or "thread"). sgl_apply_sanitizers(<target>)
# turns each into the matching -fsanitize= compile and link flag. Flags
# are PUBLIC on the library target so test/tool executables linking sgl
# inherit them and the whole binary is instrumented consistently.
#
# ThreadSanitizer ("thread") is mutually exclusive with the memory
# sanitizers (address/leak/memory) — the runtimes cannot coexist in one
# process, and mixing them is a configure-time error here rather than an
# obscure link failure. TSan combines fine with "undefined". The ci-tsan
# preset/job runs the concurrency-heavy test labels under a 4-worker pool
# with tools/tsan_suppressions.txt (justified-entry-only); see
# DESIGN.md §7 for the TSan-vs-ASan matrix.

function(sgl_apply_sanitizers target)
  if(NOT SGL_SANITIZE)
    return()
  endif()
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(WARNING "SGL_SANITIZE is only supported with GCC/Clang; ignoring")
    return()
  endif()
  string(REPLACE "," ";" _sanitizers "${SGL_SANITIZE}")
  if("thread" IN_LIST _sanitizers)
    foreach(_incompatible address leak memory)
      if("${_incompatible}" IN_LIST _sanitizers)
        message(FATAL_ERROR
          "SGL_SANITIZE: 'thread' cannot be combined with "
          "'${_incompatible}' (incompatible sanitizer runtimes); "
          "use the tsan preset and the asan preset in separate builds")
      endif()
    endforeach()
  endif()
  foreach(_san IN LISTS _sanitizers)
    target_compile_options(${target} PUBLIC "-fsanitize=${_san}")
    target_link_options(${target} PUBLIC "-fsanitize=${_san}")
  endforeach()
  target_compile_options(${target} PUBLIC -fno-omit-frame-pointer)
endfunction()
