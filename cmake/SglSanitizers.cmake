# Sanitizer configuration shared by every sgl target.
#
# SGL_SANITIZE is a comma- or semicolon-separated list of sanitizer names
# (e.g. "address;undefined"). sgl_apply_sanitizers(<target>) turns each into
# the matching -fsanitize= compile and link flag. Flags are PUBLIC on the
# library target so test/tool executables linking sgl inherit them and the
# whole binary is instrumented consistently.

function(sgl_apply_sanitizers target)
  if(NOT SGL_SANITIZE)
    return()
  endif()
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(WARNING "SGL_SANITIZE is only supported with GCC/Clang; ignoring")
    return()
  endif()
  string(REPLACE "," ";" _sanitizers "${SGL_SANITIZE}")
  foreach(_san IN LISTS _sanitizers)
    target_compile_options(${target} PUBLIC "-fsanitize=${_san}")
    target_link_options(${target} PUBLIC "-fsanitize=${_san}")
  endforeach()
  target_compile_options(${target} PUBLIC -fno-omit-frame-pointer)
endfunction()
