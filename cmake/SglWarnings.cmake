# Warning configuration shared by every sgl target.
#
# sgl_apply_warnings(<target>) attaches the project warning set as PRIVATE
# compile options so they never leak to consumers of the library. SGL_WERROR
# upgrades warnings to errors (used by the CI jobs).

function(sgl_apply_warnings target)
  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    target_compile_options(${target} PRIVATE -Wall -Wextra -Wpedantic)
    if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
      # Thread-safety analysis over the SGL_* annotations
      # (src/common/thread_annotations.hpp). Always an error, not just
      # under SGL_WERROR: a lock-discipline violation is never an
      # acceptable warning to ship past (DESIGN.md §7).
      target_compile_options(${target} PRIVATE
        -Wthread-safety -Wthread-safety-beta
        -Werror=thread-safety -Werror=thread-safety-beta)
    endif()
    if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU"
       AND CMAKE_CXX_COMPILER_VERSION VERSION_LESS 13)
      # GCC 12 emits bogus -Wrestrict warnings from inlined std::string
      # assignment at -O2/-O3 (GCC PR 105329); fixed in GCC 13.
      target_compile_options(${target} PRIVATE -Wno-restrict)
    endif()
    if(SGL_WERROR)
      target_compile_options(${target} PRIVATE -Werror)
    endif()
  elseif(MSVC)
    target_compile_options(${target} PRIVATE /W4)
    if(SGL_WERROR)
      target_compile_options(${target} PRIVATE /WX)
    endif()
  endif()
endfunction()
