#include "serve/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <system_error>

namespace sgl::serve {
namespace {

[[noreturn]] void parse_fail(std::string_view what, std::size_t pos) {
  throw SglError(ErrorCode::kParseError,
                 "json: " + std::string(what) + " at offset " +
                     std::to_string(pos));
}

/// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) parse_fail("trailing characters", pos_);
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) parse_fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      parse_fail(std::string("expected '") + c + "'", pos_);
    }
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      parse_fail("invalid literal", pos_);
    }
    pos_ += lit.size();
  }

  JsonValue parse_value() {
    if (depth_ >= kMaxDepth) parse_fail("nesting too deep", pos_);
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't': expect_literal("true"); return JsonValue(true);
      case 'f': expect_literal("false"); return JsonValue(false);
      case 'n': expect_literal("null"); return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    ++depth_;
    expect('{');
    JsonValue::Object members;
    if (!consume('}')) {
      do {
        if (peek() != '"') parse_fail("expected member key string", pos_);
        std::string key = parse_string();
        expect(':');
        members.emplace_back(std::move(key), parse_value());
      } while (consume(','));
      expect('}');
    }
    --depth_;
    return JsonValue(std::move(members));
  }

  JsonValue parse_array() {
    ++depth_;
    expect('[');
    JsonValue::Array elements;
    if (!consume(']')) {
      do {
        elements.push_back(parse_value());
      } while (consume(','));
      expect(']');
    }
    --depth_;
    return JsonValue(std::move(elements));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) parse_fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        parse_fail("raw control character in string", pos_ - 1);
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) parse_fail("unterminated escape", pos_);
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: parse_fail("unknown escape", pos_ - 1);
      }
    }
  }

  void append_unicode_escape(std::string& out) {
    const std::uint32_t code = parse_hex4();
    // Surrogate pairs are passed through as the replacement-free BMP
    // encoding of each half is invalid; the protocol never emits them,
    // so reject instead of silently corrupting.
    if (code >= 0xD800 && code <= 0xDFFF) {
      parse_fail("surrogate escapes are not supported", pos_);
    }
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) parse_fail("truncated \\u escape", pos_);
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        parse_fail("invalid \\u escape digit", pos_ - 1);
      }
    }
    return code;
  }

  JsonValue parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    double value = 0.0;
    const auto [end, ec] = std::from_chars(
        text_.data() + start, text_.data() + text_.size(), value);
    if (ec != std::errc{} || end == text_.data() + start) {
      parse_fail("invalid number", start);
    }
    if (!std::isfinite(value)) parse_fail("non-finite number", start);
    pos_ = static_cast<std::size_t>(end - text_.data());
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void serialize_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void serialize_number(double v, std::string& out) {
  // Integral values print without a point/exponent (ids, counts); all
  // other doubles use shortest round-trip, so equal bits ⇒ equal bytes
  // and parse(serialize(x)) == x exactly.
  constexpr double kIntLimit = 9007199254740992.0;  // 2^53
  // Negative zero must keep its sign bit (bitwise round trip), so it
  // takes the to_chars path ("-0").
  if (v == std::floor(v) && std::fabs(v) < kIntLimit &&
      !(v == 0.0 && std::signbit(v))) {
    const auto i = static_cast<long long>(v);
    out += std::to_string(i);
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  SGL_ASSERT(ec == std::errc{}, "json: to_chars failed");
  out.append(buf, end);
}

void serialize_value(const JsonValue& v, std::string& out) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      break;
    case JsonValue::Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case JsonValue::Type::kNumber:
      serialize_number(v.as_number(), out);
      break;
    case JsonValue::Type::kString:
      serialize_string(v.as_string(), out);
      break;
    case JsonValue::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& e : v.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        serialize_value(e, out);
      }
      out.push_back(']');
      break;
    }
    case JsonValue::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        serialize_string(key, out);
        out.push_back(':');
        serialize_value(value, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  SGL_EXPECTS(is_object() || is_null(), "JsonValue::set: not an object");
  type_ = Type::kObject;
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::push_back(JsonValue value) {
  SGL_EXPECTS(is_array() || is_null(), "JsonValue::push_back: not an array");
  type_ = Type::kArray;
  array_.push_back(std::move(value));
}

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_serialize(const JsonValue& value) {
  std::string out;
  serialize_value(value, out);
  return out;
}

}  // namespace sgl::serve
