#include "serve/protocol.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "measure/measurements.hpp"

namespace sgl::serve {
namespace {

[[noreturn]] void bad_request(const std::string& what) {
  throw SglError(ErrorCode::kBadRequest, what);
}

const JsonValue& require(const JsonValue& root, std::string_view key) {
  const JsonValue* v = root.find(key);
  if (v == nullptr) bad_request("missing field '" + std::string(key) + "'");
  return *v;
}

/// JSON number → Index, rejecting non-integral values.
Index as_index(const JsonValue& v, std::string_view what) {
  if (!v.is_number()) bad_request("field '" + std::string(what) + "' must be a number");
  const double d = v.as_number();
  if (d != std::floor(d) || std::fabs(d) > 9.0e15) {
    bad_request("field '" + std::string(what) + "' must be an integer");
  }
  return static_cast<Index>(d);
}

Index optional_index(const JsonValue& root, std::string_view key,
                     Index fallback) {
  const JsonValue* v = root.find(key);
  return v == nullptr ? fallback : as_index(*v, key);
}

Real optional_real(const JsonValue& root, std::string_view key,
                   Real fallback) {
  const JsonValue* v = root.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) bad_request("field '" + std::string(key) + "' must be a number");
  return v->as_number();
}

la::Vector vector_from_json(const JsonValue& v, std::string_view what) {
  if (!v.is_array()) bad_request("field '" + std::string(what) + "' must be an array");
  la::Vector out;
  out.reserve(v.as_array().size());
  for (const JsonValue& e : v.as_array()) {
    if (!e.is_number()) {
      bad_request("field '" + std::string(what) + "' must hold numbers");
    }
    out.push_back(e.as_number());
  }
  return out;
}

JsonValue json_from_vector(const la::Vector& v) {
  JsonValue::Array a;
  a.reserve(v.size());
  for (const Real x : v) a.emplace_back(x);
  return JsonValue(std::move(a));
}

/// Column-array-of-arrays → DenseMatrix (columns = measurement vectors).
la::DenseMatrix matrix_from_json(const JsonValue& v, std::string_view what) {
  if (!v.is_array() || v.as_array().empty()) {
    bad_request("field '" + std::string(what) +
                "' must be a non-empty array of columns");
  }
  const auto& cols = v.as_array();
  const la::Vector first = vector_from_json(cols[0], what);
  la::DenseMatrix m(static_cast<Index>(first.size()),
                    static_cast<Index>(cols.size()));
  for (std::size_t j = 0; j < cols.size(); ++j) {
    const la::Vector col = vector_from_json(cols[j], what);
    if (col.size() != first.size()) {
      bad_request("field '" + std::string(what) +
                  "' has ragged columns");
    }
    for (std::size_t i = 0; i < col.size(); ++i) {
      m(static_cast<Index>(i), static_cast<Index>(j)) = col[i];
    }
  }
  return m;
}

std::string to_hex(std::uint64_t v) {
  char buf[17];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v, 16);
  SGL_ASSERT(ec == std::errc{}, "to_hex: to_chars failed");
  return {buf, end};
}

std::uint64_t from_hex(const JsonValue& v, std::string_view what) {
  if (!v.is_string() || v.as_string().empty()) {
    bad_request("field '" + std::string(what) + "' must be a hex string");
  }
  const std::string& s = v.as_string();
  std::uint64_t out = 0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), out, 16);
  if (ec != std::errc{} || end != s.data() + s.size()) {
    bad_request("field '" + std::string(what) + "' is not a valid hex value");
  }
  return out;
}

/// Shared SGL config fields of the learn ops.
core::SglConfig config_from_json(const JsonValue& root) {
  core::SglConfig config;
  config.k = optional_index(root, "k", config.k);
  config.beta = optional_real(root, "beta", config.beta);
  config.tolerance = optional_real(root, "tolerance", config.tolerance);
  config.max_iterations =
      optional_index(root, "max_iterations", config.max_iterations);
  config.embedding.r = optional_index(root, "r", config.embedding.r);
  if (const JsonValue* engine = root.find("engine"); engine != nullptr) {
    if (!engine->is_string()) bad_request("field 'engine' must be a string");
    const auto parsed = spectral::parse_embedding_engine(engine->as_string());
    if (!parsed.has_value()) {
      bad_request("unknown embedding engine '" + engine->as_string() + "'");
    }
    config.embedding.engine = *parsed;
  }
  return config;
}

JsonValue learn_summary_to_json(const LearnSummary& summary) {
  JsonValue payload = JsonValue(JsonValue::Object{});
  payload.set("key", graph_key_to_json(summary.key));
  payload.set("num_nodes", summary.num_nodes);
  payload.set("num_edges", summary.num_edges);
  payload.set("iterations", summary.iterations);
  payload.set("converged", summary.converged);
  payload.set("exhausted", summary.exhausted);
  payload.set("final_smax", summary.final_smax);
  return payload;
}

// --- op handlers (each returns the success payload) ---------------------

JsonValue op_load_graph(ServeEngine& engine, const JsonValue& root) {
  const Index num_nodes = as_index(require(root, "num_nodes"), "num_nodes");
  if (num_nodes <= 0) bad_request("'num_nodes' must be positive");
  const JsonValue& edges = require(root, "edges");
  if (!edges.is_array()) bad_request("field 'edges' must be an array");

  graph::Graph g(num_nodes);
  for (const JsonValue& e : edges.as_array()) {
    if (!e.is_array() || e.as_array().size() < 2 || e.as_array().size() > 3) {
      bad_request("each edge must be [s, t] or [s, t, weight]");
    }
    const auto& triple = e.as_array();
    const Index s = as_index(triple[0], "edge endpoint");
    const Index t = as_index(triple[1], "edge endpoint");
    const Real w = triple.size() == 3 ? triple[2].as_number() : 1.0;
    if (s < 0 || s >= num_nodes || t < 0 || t >= num_nodes || s == t) {
      bad_request("edge (" + std::to_string(s) + ", " + std::to_string(t) +
                  ") is out of range for " + std::to_string(num_nodes) +
                  " nodes");
    }
    if (!(w > 0.0)) bad_request("edge weights must be positive");
    g.add_edge(s, t, w);
  }

  const graph::GraphKey key = engine.load_graph(std::move(g));
  JsonValue payload = JsonValue(JsonValue::Object{});
  payload.set("key", graph_key_to_json(key));
  payload.set("num_nodes", key.num_nodes);
  payload.set("num_edges", key.num_edges);
  return payload;
}

JsonValue op_learn(ServeEngine& engine, const JsonValue& root) {
  const la::DenseMatrix x = matrix_from_json(require(root, "x"), "x");
  la::DenseMatrix y;
  const bool has_y = root.find("y") != nullptr;
  if (has_y) {
    y = matrix_from_json(require(root, "y"), "y");
    if (y.rows() != x.rows() || y.cols() != x.cols()) {
      bad_request("'y' must have the same shape as 'x'");
    }
  }
  const LearnSummary summary =
      engine.learn(x, has_y ? &y : nullptr, config_from_json(root));
  return learn_summary_to_json(summary);
}

JsonValue op_learn_synthetic(ServeEngine& engine, const JsonValue& root) {
  const JsonValue& kind = require(root, "graph");
  if (!kind.is_string()) bad_request("field 'graph' must be a string");

  graph::Graph truth;
  if (kind.as_string() == "grid2d") {
    const Index nx = optional_index(root, "nx", 10);
    const Index ny = optional_index(root, "ny", 10);
    if (nx < 2 || ny < 2) bad_request("'nx'/'ny' must be at least 2");
    truth = graph::make_grid2d(nx, ny).graph;
  } else if (kind.as_string() == "tri_mesh") {
    graph::TriMeshOptions mesh;
    mesh.nx = optional_index(root, "nx", mesh.nx);
    mesh.ny = optional_index(root, "ny", mesh.ny);
    if (mesh.nx < 2 || mesh.ny < 2) bad_request("'nx'/'ny' must be at least 2");
    truth = graph::make_triangulated_mesh(mesh).graph;
  } else {
    bad_request("unknown synthetic graph '" + kind.as_string() +
                "' (expected 'grid2d' or 'tri_mesh')");
  }

  measure::MeasurementOptions mopt;
  mopt.num_measurements = optional_index(root, "measurements", 50);
  if (mopt.num_measurements < 1) bad_request("'measurements' must be positive");
  mopt.seed = static_cast<std::uint64_t>(optional_index(root, "seed", 2021));
  const measure::Measurements data =
      measure::generate_measurements(truth, mopt);

  const LearnSummary summary =
      engine.learn(data.voltages, &data.currents, config_from_json(root));
  JsonValue payload = learn_summary_to_json(summary);
  payload.set("truth_edges", truth.num_edges());
  return payload;
}

JsonValue op_activate(ServeEngine& engine, const JsonValue& root) {
  const graph::GraphKey key = graph_key_from_json(require(root, "key"));
  engine.activate(key);
  JsonValue payload = JsonValue(JsonValue::Object{});
  payload.set("key", graph_key_to_json(key));
  return payload;
}

/// Optional "key" member of the query ops: pins the request to a
/// registered graph instead of the (racy, mutable) active one.
std::optional<graph::GraphKey> optional_key(const JsonValue& root) {
  const JsonValue* key = root.find("key");
  if (key == nullptr) return std::nullopt;
  return graph_key_from_json(*key);
}

JsonValue op_solve(ServeEngine& engine, const JsonValue& root) {
  const la::Vector rhs = vector_from_json(require(root, "rhs"), "rhs");
  const la::Vector x = engine.solve(rhs, optional_key(root));
  JsonValue payload = JsonValue(JsonValue::Object{});
  payload.set("x", json_from_vector(x));
  return payload;
}

JsonValue op_resistance(ServeEngine& engine, const JsonValue& root) {
  const Index s = as_index(require(root, "s"), "s");
  const Index t = as_index(require(root, "t"), "t");
  const Real value = engine.effective_resistance(s, t, optional_key(root));
  JsonValue payload = JsonValue(JsonValue::Object{});
  payload.set("s", s);
  payload.set("t", t);
  payload.set("value", value);
  return payload;
}

JsonValue op_resistance_batch(ServeEngine& engine, const JsonValue& root) {
  const JsonValue& pairs_json = require(root, "pairs");
  if (!pairs_json.is_array()) bad_request("field 'pairs' must be an array");
  std::vector<std::pair<Index, Index>> pairs;
  pairs.reserve(pairs_json.as_array().size());
  for (const JsonValue& e : pairs_json.as_array()) {
    if (!e.is_array() || e.as_array().size() != 2) {
      bad_request("each pair must be [s, t]");
    }
    pairs.emplace_back(as_index(e.as_array()[0], "pair endpoint"),
                       as_index(e.as_array()[1], "pair endpoint"));
  }
  const std::vector<Real> values =
      engine.effective_resistance_batch(pairs, optional_key(root));
  JsonValue payload = JsonValue(JsonValue::Object{});
  JsonValue::Array out;
  out.reserve(values.size());
  for (const Real v : values) out.emplace_back(v);
  payload.set("values", JsonValue(std::move(out)));
  return payload;
}

JsonValue op_embedding(ServeEngine& engine, const JsonValue& root) {
  const spectral::Embedding emb = engine.embedding();
  JsonValue payload = JsonValue(JsonValue::Object{});
  payload.set("eigenvalues", json_from_vector(emb.eigenvalues));
  payload.set("num_nodes", emb.u.rows());
  payload.set("dims", emb.u.cols());
  payload.set("engine", spectral::embedding_engine_name(emb.engine_used));
  payload.set("eig_converged", emb.eig_converged);
  const JsonValue* include_u = root.find("include_u");
  if (include_u != nullptr && include_u->is_bool() && include_u->as_bool()) {
    JsonValue::Array cols;
    cols.reserve(static_cast<std::size_t>(emb.u.cols()));
    for (Index j = 0; j < emb.u.cols(); ++j) {
      JsonValue::Array col;
      col.reserve(static_cast<std::size_t>(emb.u.rows()));
      for (Index i = 0; i < emb.u.rows(); ++i) col.emplace_back(emb.u(i, j));
      cols.emplace_back(std::move(col));
    }
    payload.set("u", JsonValue(std::move(cols)));
  }
  return payload;
}

JsonValue op_stats(ServeEngine& engine) {
  const ServeStats s = engine.stats();
  JsonValue payload = JsonValue(JsonValue::Object{});
  payload.set("requests", s.requests);
  payload.set("batches", s.batches);
  payload.set("batched_columns", s.batched_columns);
  payload.set("max_batch_width", s.max_batch_width);
  payload.set("width_flushes", s.width_flushes);
  payload.set("deadline_flushes", s.deadline_flushes);
  payload.set("serial_fallbacks", s.serial_fallbacks);
  payload.set("cache_hits", s.cache_hits);
  payload.set("cache_misses", s.cache_misses);
  payload.set("cache_evictions", s.cache_evictions);
  payload.set("graph_loads", s.graph_loads);
  payload.set("learns", s.learns);
  payload.set("embeddings", s.embeddings);
  payload.set("errors", s.errors);
  return payload;
}

JsonValue op_info(ServeEngine& engine) {
  JsonValue payload = JsonValue(JsonValue::Object{});
  const bool active = engine.has_active_graph();
  payload.set("active", active);
  if (active) {
    payload.set("key", graph_key_to_json(engine.active_key()));
    payload.set("num_nodes", engine.active_num_nodes());
  }
  payload.set("batch_width", engine.options().batch_width);
  payload.set("flush_deadline_us", engine.options().flush_deadline_us);
  payload.set("cache_capacity", engine.options().cache_capacity);
  return payload;
}

}  // namespace

JsonValue graph_key_to_json(const graph::GraphKey& key) {
  JsonValue v = JsonValue(JsonValue::Object{});
  v.set("num_nodes", key.num_nodes);
  v.set("num_edges", key.num_edges);
  v.set("endpoints", to_hex(key.endpoints));
  v.set("weights", to_hex(key.weights));
  return v;
}

graph::GraphKey graph_key_from_json(const JsonValue& value) {
  if (!value.is_object()) bad_request("'key' must be an object");
  graph::GraphKey key;
  key.num_nodes = as_index(require(value, "num_nodes"), "key.num_nodes");
  key.num_edges = as_index(require(value, "num_edges"), "key.num_edges");
  key.endpoints = from_hex(require(value, "endpoints"), "key.endpoints");
  key.weights = from_hex(require(value, "weights"), "key.weights");
  return key;
}

ProtocolResult handle_request(ServeEngine& engine, std::string_view line) {
  // The envelope is assembled member-by-member so ok/op/id always lead
  // and serialize in a fixed order (deterministic bytes).
  JsonValue response = JsonValue(JsonValue::Object{});
  std::string op;
  JsonValue request_id;  // kNull until the request names one
  bool shutdown = false;
  try {
    const JsonValue root = json_parse(line);
    if (!root.is_object()) bad_request("request must be a JSON object");
    if (const JsonValue* id = root.find("id"); id != nullptr) {
      request_id = *id;
    }
    const JsonValue& op_json = require(root, "op");
    if (!op_json.is_string()) bad_request("field 'op' must be a string");
    op = op_json.as_string();
    response.set("ok", true);
    response.set("op", op);
    if (!request_id.is_null()) response.set("id", request_id);

    JsonValue payload;
    if (op == "load_graph") {
      payload = op_load_graph(engine, root);
    } else if (op == "learn") {
      payload = op_learn(engine, root);
    } else if (op == "learn_synthetic") {
      payload = op_learn_synthetic(engine, root);
    } else if (op == "activate") {
      payload = op_activate(engine, root);
    } else if (op == "solve") {
      payload = op_solve(engine, root);
    } else if (op == "resistance") {
      payload = op_resistance(engine, root);
    } else if (op == "resistance_batch") {
      payload = op_resistance_batch(engine, root);
    } else if (op == "embedding") {
      payload = op_embedding(engine, root);
    } else if (op == "stats") {
      payload = op_stats(engine);
    } else if (op == "info") {
      payload = op_info(engine);
    } else if (op == "shutdown") {
      shutdown = true;
      payload = JsonValue(JsonValue::Object{});
    } else {
      throw SglError(ErrorCode::kUnknownOperation, "unknown op '" + op + "'");
    }
    for (auto& [key, value] : payload.as_object()) {
      response.set(key, std::move(value));
    }
  } catch (const SglError& e) {
    response = JsonValue(JsonValue::Object{});
    response.set("ok", false);
    if (!op.empty()) response.set("op", op);
    if (!request_id.is_null()) response.set("id", request_id);
    JsonValue error = JsonValue(JsonValue::Object{});
    error.set("code", e.status().code_name());
    error.set("message", e.what());
    response.set("error", std::move(error));
  } catch (const std::exception& e) {
    response = JsonValue(JsonValue::Object{});
    response.set("ok", false);
    if (!op.empty()) response.set("op", op);
    if (!request_id.is_null()) response.set("id", request_id);
    JsonValue error = JsonValue(JsonValue::Object{});
    error.set("code", error_code_name(ErrorCode::kInternal));
    error.set("message", e.what());
    response.set("error", std::move(error));
  }
  return {json_serialize(response), shutdown};
}

}  // namespace sgl::serve
