// Long-lived serving engine (DESIGN.md §10).
//
// A ServeEngine holds the warm, expensive state a request/response loop
// needs to answer spectral queries fast: the loaded graphs, an LRU of
// LaplacianPinvSolver factorizations keyed by graph fingerprint
// (graph::GraphKey), and a cached spectral embedding — so a `solve`
// after a `learn` costs two triangular sweeps, not a factorization.
//
// Batching. Single-RHS queries (solve / effective_resistance) that
// arrive concurrently are coalesced by a leader/follower combiner: the
// first thread to enqueue becomes the batch leader, waits until either
// `batch_width` requests are pending or `flush_deadline_us` has elapsed,
// then executes ONE apply_block over the gathered right-hand sides and
// scatters per-request results. Followers sleep on a condition variable
// until their slot is filled.
//
// Determinism. apply_block is documented bit-identical to per-column
// apply() for every thread count and block width, and each request's
// column depends only on its own right-hand side — so every response is
// bitwise equal to the response a serial, unbatched server would have
// produced, regardless of how requests interleave into batches. Batch
// COMPOSITION is timing-dependent; batch RESULTS are not. That is the
// guarantee the stress tests and the protocol integration test assert.
#pragma once

#include <condition_variable>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "core/sgl.hpp"
#include "graph/fingerprint.hpp"
#include "graph/graph.hpp"
#include "la/multi_vector.hpp"
#include "solver/laplacian_solver.hpp"
#include "spectral/embedding.hpp"

namespace sgl::serve {

struct ServeOptions {
  /// Flush a pending batch as soon as this many requests are queued.
  /// 1 disables coalescing (every request is its own apply_block) —
  /// the serial reference configuration.
  Index batch_width = 16;
  /// Microseconds a batch leader waits for the batch to fill before
  /// flushing whatever is queued. 0 flushes immediately (coalescing
  /// still happens when requests are already waiting in the queue).
  Index flush_deadline_us = 200;
  /// Factorization LRU capacity (entries, ≥ 1). Loaded graphs are kept
  /// for the engine's lifetime — edge lists are cheap; factorizations
  /// are the expensive state this bound protects. An evicted graph's
  /// next query transparently re-factorizes (a cache miss, not an
  /// error).
  Index cache_capacity = 4;
  /// Solver configuration used for every factorization.
  solver::LaplacianSolverOptions solver;
  /// Embedding configuration for embedding() requests.
  spectral::EmbeddingOptions embedding;
  /// Threads for block solves (0 = library default). Results are
  /// bit-identical for every value (solver contract).
  Index num_threads = 0;
};

/// Monotonic counters; snapshot via ServeEngine::stats(). `batches`
/// counts apply_block calls, so `batches == 1` after a width-16
/// coalesced flush is the "one block solve, not sixteen" receipt the
/// benchmarks and tests check.
struct ServeStats {
  Index requests = 0;         ///< solve/resistance requests accepted.
  Index batches = 0;          ///< apply_block flushes executed.
  Index batched_columns = 0;  ///< total width across all flushes.
  Index max_batch_width = 0;
  Index width_flushes = 0;     ///< flushed because the batch filled.
  Index deadline_flushes = 0;  ///< flushed because the deadline passed.
  /// Batches re-run column-by-column after a NumericalError, isolating
  /// the failing request so its neighbors still get their answers.
  Index serial_fallbacks = 0;
  Index cache_hits = 0;
  Index cache_misses = 0;
  Index cache_evictions = 0;
  Index graph_loads = 0;
  Index learns = 0;
  Index embeddings = 0;  ///< embedding() calls served from scratch.
  Index errors = 0;      ///< requests that completed with an error.
};

/// Outcome of a learn request (the SglResult fields a client acts on;
/// the learned graph itself stays warm inside the engine).
struct LearnSummary {
  graph::GraphKey key;
  Index num_nodes = 0;
  Index num_edges = 0;
  Index iterations = 0;
  bool converged = false;
  bool exhausted = false;
  Real final_smax = 0.0;
};

class ServeEngine {
 public:
  explicit ServeEngine(ServeOptions options = {});

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Registers `g` and makes it the active graph. Throws SglError with
  /// kGraphNotConnected for disconnected graphs (the pseudo-inverse
  /// semantics need one component), kBadRequest for empty ones. Loading
  /// a graph whose key is already registered just re-activates it.
  /// Factorization is lazy — the first query pays it (a cache miss).
  graph::GraphKey load_graph(graph::Graph g);

  /// Runs SGL on a measurement matrix (columns = measurement vectors)
  /// and activates the learned graph. `y` (currents) enables the
  /// eq. 21–23 scaling step; pass nullptr for voltage-only learning.
  LearnSummary learn(const la::DenseMatrix& x, const la::DenseMatrix* y,
                     const core::SglConfig& config);

  /// Re-activates a previously loaded/learned graph by key. Throws
  /// kBadRequest if the key was never registered.
  void activate(const graph::GraphKey& key);

  /// x = L⁺ rhs. Batched with concurrent callers (one apply_block per
  /// flush); the result is bitwise the serial answer. `key` pins the
  /// query to a specific registered graph — the race-free form for
  /// concurrent multi-graph clients (activate() + query is two steps;
  /// another client's activate can land in between). No key = the
  /// active graph.
  [[nodiscard]] la::Vector solve(
      const la::Vector& rhs,
      const std::optional<graph::GraphKey>& key = std::nullopt);

  /// Effective resistance (e_s − e_t)ᵀ L⁺ (e_s − e_t), batched and
  /// key-pinnable like solve().
  [[nodiscard]] Real effective_resistance(
      Index s, Index t,
      const std::optional<graph::GraphKey>& key = std::nullopt);

  /// Answers many resistance queries in ONE apply_block without waiting
  /// on the combiner (the block is already full by construction). The
  /// wire protocol's array form and the throughput benchmark use this.
  [[nodiscard]] std::vector<Real> effective_resistance_batch(
      const std::vector<std::pair<Index, Index>>& pairs,
      const std::optional<graph::GraphKey>& key = std::nullopt);

  /// Spectral embedding of the active graph (cached per graph key).
  [[nodiscard]] spectral::Embedding embedding();

  [[nodiscard]] bool has_active_graph() const;
  /// Key of the active graph; throws kNoActiveGraph when none is set.
  [[nodiscard]] graph::GraphKey active_key() const;
  /// Node count of the active graph; throws kNoActiveGraph.
  [[nodiscard]] Index active_num_nodes() const;

  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] const ServeOptions& options() const noexcept {
    return options_;
  }

 private:
  /// One queued single-RHS query. Results are published by the batch
  /// leader under queue_mutex_ (done flips last), so a follower that
  /// observes done == true under the lock owns its result outright.
  struct Pending {
    const solver::LaplacianPinvSolver* solver = nullptr;
    la::Vector rhs;
    bool pair_probe = false;  ///< true: answer is x[s] − x[t].
    Index s = 0;
    Index t = 0;
    la::Vector solution;  ///< full L⁺ rhs (solve requests).
    Real value = 0.0;     ///< scalar answer (pair probes).
    bool done = false;
    std::exception_ptr error;
  };

  /// Key plus the shared factorization. shared_ptr, so a batch holding
  /// a solver keeps it alive across an eviction happening mid-flight.
  using CacheEntry =
      std::pair<graph::GraphKey,
                std::shared_ptr<const solver::LaplacianPinvSolver>>;

  /// Registers `g` under `key` and activates it (shared tail of
  /// load_graph/learn). Caller has validated connectivity.
  void adopt_graph(const graph::GraphKey& key, graph::Graph g)
      SGL_EXCLUDES(state_mutex_);

  /// Returns the factorization of `key` (or of the active graph when
  /// nullopt), building (and LRU-inserting/evicting) on a miss.
  [[nodiscard]] std::shared_ptr<const solver::LaplacianPinvSolver>
  acquire_solver(const std::optional<graph::GraphKey>& key)
      SGL_EXCLUDES(state_mutex_);

  /// Enqueues `p`, participates in the combiner (leader or follower),
  /// and returns once p.done; rethrows p.error.
  void enqueue_and_wait(Pending& p) SGL_EXCLUDES(queue_mutex_);

  /// Runs one apply_block over `batch` (all entries share p.solver),
  /// scattering per-request results. On NumericalError with width > 1,
  /// falls back to per-request apply() so one poisoned right-hand side
  /// does not fail its batchmates.
  void execute_batch(const std::vector<Pending*>& batch, bool width_flush);

  /// Solves one request into its result slot (scalar path; also the
  /// serial-fallback worker). Sets error instead of throwing.
  static void solve_one(Pending& p);

  ServeOptions options_;

  mutable common::Mutex state_mutex_;
  /// Every graph ever loaded, keyed by fingerprint (std::map: ordered,
  /// deterministic iteration).
  std::map<graph::GraphKey, graph::Graph> graphs_ SGL_GUARDED_BY(state_mutex_);
  std::optional<graph::GraphKey> active_ SGL_GUARDED_BY(state_mutex_);
  /// Factorization LRU: front = most recent. Linear scan — capacities
  /// are single digits.
  std::list<CacheEntry> lru_ SGL_GUARDED_BY(state_mutex_);
  /// Embedding cache for the (single) most recently embedded graph.
  std::optional<std::pair<graph::GraphKey, spectral::Embedding>>
      embedding_cache_ SGL_GUARDED_BY(state_mutex_);

  mutable common::Mutex queue_mutex_;
  std::condition_variable_any queue_cv_;
  std::vector<Pending*> queue_ SGL_GUARDED_BY(queue_mutex_);
  /// True while some thread is collecting the current batch; its
  /// enqueuers become followers.
  bool leader_active_ SGL_GUARDED_BY(queue_mutex_) = false;

  mutable common::Mutex stats_mutex_;
  ServeStats stats_ SGL_GUARDED_BY(stats_mutex_);
};

}  // namespace sgl::serve
