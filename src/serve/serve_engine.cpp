#include "serve/serve_engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "graph/components.hpp"

namespace sgl::serve {

ServeEngine::ServeEngine(ServeOptions options) : options_(options) {
  SGL_EXPECTS(options_.batch_width >= 1, "ServeEngine: batch_width < 1");
  SGL_EXPECTS(options_.flush_deadline_us >= 0,
              "ServeEngine: negative flush deadline");
  SGL_EXPECTS(options_.cache_capacity >= 1, "ServeEngine: cache_capacity < 1");
}

graph::GraphKey ServeEngine::load_graph(graph::Graph g) {
  if (g.num_nodes() <= 0) {
    const common::MutexLock lock(stats_mutex_);
    ++stats_.errors;
    throw SglError(ErrorCode::kBadRequest, "load_graph: graph has no nodes");
  }
  if (!graph::is_connected(g)) {
    const common::MutexLock lock(stats_mutex_);
    ++stats_.errors;
    throw SglError(ErrorCode::kGraphNotConnected,
                   "load_graph: graph is not connected (L⁺ semantics need "
                   "one component)");
  }
  const graph::GraphKey key = graph::graph_key(g);
  adopt_graph(key, std::move(g));
  {
    const common::MutexLock lock(stats_mutex_);
    ++stats_.graph_loads;
  }
  return key;
}

LearnSummary ServeEngine::learn(const la::DenseMatrix& x,
                                const la::DenseMatrix* y,
                                const core::SglConfig& config) {
  core::SglResult result;
  try {
    result = y != nullptr ? core::learn_graph(x, *y, config)
                          : core::learn_graph(x, config);
  } catch (...) {
    const common::MutexLock lock(stats_mutex_);
    ++stats_.errors;
    throw;
  }

  LearnSummary summary;
  summary.key = graph::graph_key(result.learned);
  summary.num_nodes = result.learned.num_nodes();
  summary.num_edges = result.learned.num_edges();
  summary.iterations = result.iterations;
  summary.converged = result.converged;
  summary.exhausted = result.exhausted;
  summary.final_smax = result.final_smax;

  adopt_graph(summary.key, std::move(result.learned));
  {
    const common::MutexLock lock(stats_mutex_);
    ++stats_.learns;
  }
  return summary;
}

void ServeEngine::activate(const graph::GraphKey& key) {
  const common::MutexLock lock(state_mutex_);
  if (graphs_.find(key) == graphs_.end()) {
    const common::MutexLock stats_lock(stats_mutex_);
    ++stats_.errors;
    throw SglError(ErrorCode::kBadRequest,
                   "activate: unknown graph key (load_graph or learn first)");
  }
  active_ = key;
}

void ServeEngine::adopt_graph(const graph::GraphKey& key, graph::Graph g) {
  const common::MutexLock lock(state_mutex_);
  graphs_.insert_or_assign(key, std::move(g));
  active_ = key;
}

std::shared_ptr<const solver::LaplacianPinvSolver>
ServeEngine::acquire_solver(const std::optional<graph::GraphKey>& key_opt) {
  const common::MutexLock lock(state_mutex_);
  graph::GraphKey key;
  if (key_opt.has_value()) {
    if (graphs_.find(*key_opt) == graphs_.end()) {
      const common::MutexLock stats_lock(stats_mutex_);
      ++stats_.errors;
      throw SglError(ErrorCode::kBadRequest,
                     "unknown graph key (load_graph or learn first)");
    }
    key = *key_opt;
  } else {
    if (!active_.has_value()) {
      const common::MutexLock stats_lock(stats_mutex_);
      ++stats_.errors;
      throw SglError(ErrorCode::kNoActiveGraph,
                     "no active graph: load_graph or learn first");
    }
    key = *active_;
  }

  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->first == key) {
      lru_.splice(lru_.begin(), lru_, it);  // move to MRU position
      const common::MutexLock stats_lock(stats_mutex_);
      ++stats_.cache_hits;
      return lru_.front().second;
    }
  }

  // Miss: factorize the active graph, then insert at MRU, evicting from
  // the LRU end. The evicted shared_ptr may stay alive while an
  // in-flight batch still holds it — eviction only drops the cache's
  // reference, never a solver under a live solve.
  {
    const common::MutexLock stats_lock(stats_mutex_);
    ++stats_.cache_misses;
  }
  const graph::Graph& g = graphs_.at(key);
  auto solver_ptr =
      std::make_shared<const solver::LaplacianPinvSolver>(g, options_.solver);
  while (static_cast<Index>(lru_.size()) >= options_.cache_capacity) {
    lru_.pop_back();
    const common::MutexLock stats_lock(stats_mutex_);
    ++stats_.cache_evictions;
  }
  lru_.emplace_front(key, solver_ptr);
  return solver_ptr;
}

la::Vector ServeEngine::solve(const la::Vector& rhs,
                              const std::optional<graph::GraphKey>& key) {
  {
    const common::MutexLock lock(stats_mutex_);
    ++stats_.requests;
  }
  const auto solver_ptr = acquire_solver(key);
  if (static_cast<Index>(rhs.size()) != solver_ptr->num_nodes()) {
    const common::MutexLock lock(stats_mutex_);
    ++stats_.errors;
    throw SglError(ErrorCode::kBadRequest,
                   "solve: rhs has " + std::to_string(rhs.size()) +
                       " entries, active graph has " +
                       std::to_string(solver_ptr->num_nodes()) + " nodes");
  }

  Pending p;
  p.solver = solver_ptr.get();
  p.rhs = rhs;
  enqueue_and_wait(p);
  return std::move(p.solution);
}

Real ServeEngine::effective_resistance(
    Index s, Index t, const std::optional<graph::GraphKey>& key) {
  {
    const common::MutexLock lock(stats_mutex_);
    ++stats_.requests;
  }
  const auto solver_ptr = acquire_solver(key);
  const Index n = solver_ptr->num_nodes();
  if (s < 0 || s >= n || t < 0 || t >= n || s == t) {
    const common::MutexLock lock(stats_mutex_);
    ++stats_.errors;
    throw SglError(ErrorCode::kBadRequest,
                   "effective_resistance: invalid node pair (" +
                       std::to_string(s) + ", " + std::to_string(t) +
                       ") for " + std::to_string(n) + " nodes");
  }

  Pending p;
  p.solver = solver_ptr.get();
  p.pair_probe = true;
  p.s = s;
  p.t = t;
  p.rhs.assign(static_cast<std::size_t>(n), 0.0);
  p.rhs[static_cast<std::size_t>(s)] = 1.0;
  p.rhs[static_cast<std::size_t>(t)] = -1.0;
  enqueue_and_wait(p);
  return p.value;
}

std::vector<Real> ServeEngine::effective_resistance_batch(
    const std::vector<std::pair<Index, Index>>& pairs,
    const std::optional<graph::GraphKey>& key) {
  {
    const common::MutexLock lock(stats_mutex_);
    stats_.requests += static_cast<Index>(pairs.size());
  }
  const auto solver_ptr = acquire_solver(key);
  const Index n = solver_ptr->num_nodes();
  for (const auto& [s, t] : pairs) {
    if (s < 0 || s >= n || t < 0 || t >= n || s == t) {
      const common::MutexLock lock(stats_mutex_);
      ++stats_.errors;
      throw SglError(ErrorCode::kBadRequest,
                     "effective_resistance_batch: invalid node pair (" +
                         std::to_string(s) + ", " + std::to_string(t) +
                         ") for " + std::to_string(n) + " nodes");
    }
  }
  if (pairs.empty()) return {};

  // The block is full by construction, so skip the combiner and run one
  // apply_block directly. Same scatter arithmetic as the batched queue
  // path: value_j = x_j[s] − x_j[t].
  const Index w = static_cast<Index>(pairs.size());
  la::MultiVector y(n, w);
  for (Index j = 0; j < w; ++j) {
    y(pairs[static_cast<std::size_t>(j)].first, j) = 1.0;
    y(pairs[static_cast<std::size_t>(j)].second, j) = -1.0;
  }
  la::MultiVector x(n, w);
  try {
    solver_ptr->apply_block(std::as_const(y).view(), x.view(),
                            options_.num_threads);
  } catch (...) {
    const common::MutexLock lock(stats_mutex_);
    ++stats_.errors;
    throw;
  }
  {
    const common::MutexLock lock(stats_mutex_);
    ++stats_.batches;
    ++stats_.width_flushes;
    stats_.batched_columns += w;
    stats_.max_batch_width = std::max(stats_.max_batch_width, w);
  }

  std::vector<Real> values(pairs.size());
  for (Index j = 0; j < w; ++j) {
    const auto& [s, t] = pairs[static_cast<std::size_t>(j)];
    values[static_cast<std::size_t>(j)] = x(s, j) - x(t, j);
  }
  return values;
}

spectral::Embedding ServeEngine::embedding() {
  graph::GraphKey key;
  const graph::Graph* g = nullptr;
  {
    const common::MutexLock lock(state_mutex_);
    if (!active_.has_value()) {
      const common::MutexLock stats_lock(stats_mutex_);
      ++stats_.errors;
      throw SglError(ErrorCode::kNoActiveGraph,
                     "embedding: no active graph");
    }
    key = *active_;
    if (embedding_cache_.has_value() && embedding_cache_->first == key) {
      return embedding_cache_->second;
    }
    // std::map nodes are pointer-stable and graphs are never erased, so
    // the computation below can run outside the lock.
    g = &graphs_.at(key);
  }

  spectral::Embedding emb;
  try {
    emb = spectral::compute_embedding(*g, options_.embedding);
  } catch (...) {
    const common::MutexLock lock(stats_mutex_);
    ++stats_.errors;
    throw;
  }
  {
    const common::MutexLock lock(state_mutex_);
    embedding_cache_ = std::make_pair(key, emb);
  }
  {
    const common::MutexLock lock(stats_mutex_);
    ++stats_.embeddings;
  }
  return emb;
}

bool ServeEngine::has_active_graph() const {
  const common::MutexLock lock(state_mutex_);
  return active_.has_value();
}

graph::GraphKey ServeEngine::active_key() const {
  const common::MutexLock lock(state_mutex_);
  if (!active_.has_value()) {
    throw SglError(ErrorCode::kNoActiveGraph, "active_key: no active graph");
  }
  return *active_;
}

Index ServeEngine::active_num_nodes() const {
  const common::MutexLock lock(state_mutex_);
  if (!active_.has_value()) {
    throw SglError(ErrorCode::kNoActiveGraph,
                   "active_num_nodes: no active graph");
  }
  return graphs_.at(*active_).num_nodes();
}

ServeStats ServeEngine::stats() const {
  const common::MutexLock lock(stats_mutex_);
  return stats_;
}

void ServeEngine::enqueue_and_wait(Pending& p) {
  // Leader/follower combiner. The first waiter becomes the leader,
  // collects until the batch fills or the deadline passes, then takes AT
  // MOST batch_width requests (a hard cap on block width) and executes
  // them with leadership released — so the next batch forms while this
  // one solves. Any request still queued after a partial take is woken
  // to lead its own batch; a request thread may therefore end up
  // executing a batch that no longer contains its own request (its slot
  // was taken by an earlier leader) — it serves its batchmates, loops,
  // and finds its result published.
  bool in_queue = false;
  for (;;) {
    std::vector<Pending*> batch;
    bool width_flush = false;
    {
      const common::MutexLock lock(queue_mutex_);
      if (!in_queue) {
        queue_.push_back(&p);
        in_queue = true;
      }
      if (p.done) break;
      if (leader_active_) {
        // Follower: maybe wake the leader early, then sleep until this
        // request's result is published or leadership frees up.
        if (static_cast<Index>(queue_.size()) >= options_.batch_width) {
          queue_cv_.notify_all();
        }
        while (!p.done && leader_active_) queue_cv_.wait(queue_mutex_);
        if (p.done) break;
        continue;  // promoted: re-enter as a leader candidate
      }
      leader_active_ = true;
      if (options_.batch_width > 1 && options_.flush_deadline_us > 0 &&
          !p.done) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(options_.flush_deadline_us);
        while (static_cast<Index>(queue_.size()) < options_.batch_width) {
          if (queue_cv_.wait_until(queue_mutex_, deadline) ==
              std::cv_status::timeout) {
            break;
          }
        }
      }
      const auto take =
          std::min(queue_.size(), static_cast<std::size_t>(options_.batch_width));
      batch.assign(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(take));
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(take));
      width_flush = static_cast<Index>(take) >= options_.batch_width;
      leader_active_ = false;
      // Leftover requests need a new leader; their threads are asleep.
      if (!queue_.empty()) queue_cv_.notify_all();
    }

    if (!batch.empty()) {
      execute_batch(batch, width_flush);
      {
        const common::MutexLock lock(queue_mutex_);
        for (Pending* q : batch) q->done = true;
      }
      queue_cv_.notify_all();
    }
    {
      const common::MutexLock lock(queue_mutex_);
      if (p.done) break;
    }
  }

  if (p.error != nullptr) {
    {
      const common::MutexLock lock(stats_mutex_);
      ++stats_.errors;
    }
    std::rethrow_exception(p.error);
  }
}

void ServeEngine::execute_batch(const std::vector<Pending*>& batch,
                                bool width_flush) {
  {
    const common::MutexLock lock(stats_mutex_);
    if (width_flush) {
      ++stats_.width_flushes;
    } else {
      ++stats_.deadline_flushes;
    }
  }

  // Group by solver in first-arrival order: a flush normally holds one
  // group, but an activate() racing the queue can interleave requests
  // against different graphs.
  std::vector<std::pair<const solver::LaplacianPinvSolver*,
                        std::vector<Pending*>>>
      groups;
  for (Pending* p : batch) {
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == p->solver; });
    if (it == groups.end()) {
      groups.emplace_back(p->solver, std::vector<Pending*>{p});
    } else {
      it->second.push_back(p);
    }
  }

  for (auto& [sv, reqs] : groups) {
    const Index w = static_cast<Index>(reqs.size());
    {
      const common::MutexLock lock(stats_mutex_);
      ++stats_.batches;
      stats_.batched_columns += w;
      stats_.max_batch_width = std::max(stats_.max_batch_width, w);
    }
    if (w == 1) {
      solve_one(*reqs.front());
      continue;
    }

    const Index n = sv->num_nodes();
    la::MultiVector y(n, w);
    for (Index j = 0; j < w; ++j) {
      const la::Vector& rhs = reqs[static_cast<std::size_t>(j)]->rhs;
      std::copy(rhs.begin(), rhs.end(), y.col(j).begin());
    }
    la::MultiVector x(n, w);
    try {
      sv->apply_block(std::as_const(y).view(), x.view(), options_.num_threads);
    } catch (...) {
      // One poisoned column fails the whole block (PCG stall reports the
      // first stalled column). Re-run per request so each gets its own
      // answer or its own error — and, per the solver's bit-equality
      // contract, the per-column reruns reproduce exactly what the block
      // would have produced for the healthy columns.
      {
        const common::MutexLock lock(stats_mutex_);
        ++stats_.serial_fallbacks;
      }
      for (Pending* p : reqs) solve_one(*p);
      continue;
    }
    for (Index j = 0; j < w; ++j) {
      Pending* p = reqs[static_cast<std::size_t>(j)];
      const auto col = x.col(j);
      if (p->pair_probe) {
        p->value = col[static_cast<std::size_t>(p->s)] -
                   col[static_cast<std::size_t>(p->t)];
      } else {
        p->solution.assign(col.begin(), col.end());
      }
    }
  }
}

void ServeEngine::solve_one(Pending& p) {
  try {
    la::Vector x = p.solver->apply(p.rhs);
    if (p.pair_probe) {
      p.value = x[static_cast<std::size_t>(p.s)] -
                x[static_cast<std::size_t>(p.t)];
    } else {
      p.solution = std::move(x);
    }
  } catch (...) {
    p.error = std::current_exception();
  }
}

}  // namespace sgl::serve
