// Newline-delimited JSON request/response protocol over a ServeEngine
// (DESIGN.md §10). One request line in, one response line out; the
// transport (tools/sgl_serve's unix socket, a test harness, a pipe) only
// moves lines.
//
// Request:  {"op": "<name>", ...op fields..., "id": <echoed back>}
// Success:  {"ok": true, "op": "<name>", ["id": ...,] ...payload...}
// Failure:  {"ok": false, ["op": ...,] ["id": ...,]
//            "error": {"code": "<stable ErrorCode name>", "message": ...}}
//
// Every failure carries the machine-readable ErrorCode wire name
// (common/contracts.hpp) — clients branch on `error.code`, never on
// message text. Ops: load_graph, learn, learn_synthetic, activate,
// solve, resistance, resistance_batch, embedding, stats, info, shutdown.
#pragma once

#include <string>
#include <string_view>

#include "graph/fingerprint.hpp"
#include "serve/json.hpp"
#include "serve/serve_engine.hpp"

namespace sgl::serve {

struct ProtocolResult {
  /// One JSON document, no trailing newline (the transport appends it).
  std::string response;
  /// True after a `shutdown` request: the server should stop accepting.
  bool shutdown = false;
};

/// Handles one request line against `engine`. Never throws: every error
/// — parse failure, unknown op, engine-side SglError — becomes an
/// {"ok": false, "error": {...}} response with a stable code.
[[nodiscard]] ProtocolResult handle_request(ServeEngine& engine,
                                            std::string_view line);

/// GraphKey ⇄ JSON. The two 64-bit fingerprints are hex STRINGS on the
/// wire (doubles only carry 53 bits), so keys round-trip exactly.
[[nodiscard]] JsonValue graph_key_to_json(const graph::GraphKey& key);

/// Inverse of graph_key_to_json; throws SglError(kBadRequest) on
/// malformed keys.
[[nodiscard]] graph::GraphKey graph_key_from_json(const JsonValue& value);

}  // namespace sgl::serve
