// Minimal JSON value / parser / serializer for the serving wire protocol
// (DESIGN.md §10). Self-contained on purpose: the container bakes no JSON
// library, and the protocol needs only the scalar/array/object subset.
//
// Determinism contract: objects preserve member insertion order (they are
// stored as ordered member vectors, never hash maps), and numbers
// serialize via std::to_chars shortest round-trip — so a given JsonValue
// always serializes to the same bytes, and two bitwise-equal doubles
// always print identically. That is what makes "batched responses are
// byte-identical to serially-served responses" a checkable guarantee.
#pragma once

#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace sgl::serve {

/// One JSON value: null, bool, number (double), string, array, or object.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  /// Ordered member list — insertion order is serialization order.
  using Object = std::vector<Member>;

  JsonValue() = default;
  // NOLINTBEGIN(google-explicit-constructor): value types convert freely,
  // mirroring JSON's untyped literals.
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  /// Any arithmetic type (Index, std::size_t, Real, …) is a number.
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonValue(T v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  JsonValue(Object o) : type_(Type::kObject), object_(std::move(o)) {}
  // NOLINTEND(google-explicit-constructor)

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  [[nodiscard]] bool as_bool() const {
    SGL_EXPECTS(is_bool(), "JsonValue: not a bool");
    return bool_;
  }
  [[nodiscard]] double as_number() const {
    SGL_EXPECTS(is_number(), "JsonValue: not a number");
    return number_;
  }
  [[nodiscard]] const std::string& as_string() const {
    SGL_EXPECTS(is_string(), "JsonValue: not a string");
    return string_;
  }
  [[nodiscard]] const Array& as_array() const {
    SGL_EXPECTS(is_array(), "JsonValue: not an array");
    return array_;
  }
  [[nodiscard]] const Object& as_object() const {
    SGL_EXPECTS(is_object(), "JsonValue: not an object");
    return object_;
  }
  [[nodiscard]] Object& as_object() {
    SGL_EXPECTS(is_object(), "JsonValue: not an object");
    return object_;
  }

  /// Member lookup on an object; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Appends (or overwrites) an object member, keeping insertion order.
  void set(std::string key, JsonValue value);

  /// Appends an array element.
  void push_back(JsonValue value);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document (the whole string must be consumed, modulo
/// trailing whitespace). Throws SglError with ErrorCode::kParseError on
/// malformed input.
[[nodiscard]] JsonValue json_parse(std::string_view text);

/// Serializes compactly (no whitespace). Numbers use std::to_chars
/// shortest round-trip (integral values without an exponent/point), so
/// parse(serialize(v)) reproduces every double bit-for-bit.
[[nodiscard]] std::string json_serialize(const JsonValue& value);

}  // namespace sgl::serve
