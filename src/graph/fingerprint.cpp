#include "graph/fingerprint.hpp"

#include <bit>

namespace sgl::graph {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffULL;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t endpoint_fingerprint(const Graph& g, std::size_t count) {
  SGL_EXPECTS(count <= g.edges().size(),
              "endpoint_fingerprint: count exceeds edge list");
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < count; ++i) {
    const Edge& e = g.edges()[i];
    fnv_mix(h, static_cast<std::uint64_t>(e.s));
    fnv_mix(h, static_cast<std::uint64_t>(e.t));
  }
  return h;
}

std::uint64_t weight_fingerprint(const Graph& g, std::size_t count) {
  SGL_EXPECTS(count <= g.edges().size(),
              "weight_fingerprint: count exceeds edge list");
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < count; ++i) {
    const Edge& e = g.edges()[i];
    fnv_mix(h, static_cast<std::uint64_t>(e.s));
    fnv_mix(h, static_cast<std::uint64_t>(e.t));
    fnv_mix(h, std::bit_cast<std::uint64_t>(e.weight));
  }
  return h;
}

GraphKey graph_key(const Graph& g) {
  const std::size_t count = g.edges().size();
  return {g.num_nodes(), g.num_edges(), endpoint_fingerprint(g, count),
          weight_fingerprint(g, count)};
}

}  // namespace sgl::graph
