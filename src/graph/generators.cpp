#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "graph/components.hpp"
#include "graph/mst.hpp"
#include "graph/union_find.hpp"

namespace sgl::graph {

Graph make_path(Index n, Real weight) {
  SGL_EXPECTS(n >= 1, "make_path: need at least one node");
  Graph g(n);
  for (Index i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, weight);
  return g;
}

Graph make_cycle(Index n, Real weight) {
  SGL_EXPECTS(n >= 3, "make_cycle: need at least three nodes");
  Graph g = make_path(n, weight);
  g.add_edge(n - 1, 0, weight);
  return g;
}

Graph make_star(Index n, Real weight) {
  SGL_EXPECTS(n >= 2, "make_star: need at least two nodes");
  Graph g(n);
  for (Index i = 1; i < n; ++i) g.add_edge(0, i, weight);
  return g;
}

Graph make_complete(Index n, Real weight) {
  SGL_EXPECTS(n >= 1, "make_complete: need at least one node");
  Graph g(n);
  for (Index i = 0; i < n; ++i)
    for (Index j = i + 1; j < n; ++j) g.add_edge(i, j, weight);
  return g;
}

MeshGraph make_grid2d(Index nx, Index ny, bool periodic, Real weight) {
  SGL_EXPECTS(nx >= 1 && ny >= 1, "make_grid2d: degenerate size");
  SGL_EXPECTS(!periodic || (nx >= 3 && ny >= 3),
              "make_grid2d: periodic grid needs nx, ny >= 3");
  MeshGraph mesh;
  mesh.graph = Graph(nx * ny);
  mesh.coords.resize(static_cast<std::size_t>(nx) * ny);
  const auto id = [nx](Index x, Index y) { return y * nx + x; };
  for (Index y = 0; y < ny; ++y) {
    for (Index x = 0; x < nx; ++x) {
      mesh.coords[static_cast<std::size_t>(id(x, y))] = {
          static_cast<Real>(x), static_cast<Real>(y)};
      if (x + 1 < nx) mesh.graph.add_edge(id(x, y), id(x + 1, y), weight);
      else if (periodic) mesh.graph.add_edge(id(x, y), id(0, y), weight);
      if (y + 1 < ny) mesh.graph.add_edge(id(x, y), id(x, y + 1), weight);
      else if (periodic) mesh.graph.add_edge(id(x, y), id(x, 0), weight);
    }
  }
  return mesh;
}

Graph make_grid3d(Index nx, Index ny, Index nz, Real weight) {
  SGL_EXPECTS(nx >= 1 && ny >= 1 && nz >= 1, "make_grid3d: degenerate size");
  Graph g(nx * ny * nz);
  const auto id = [nx, ny](Index x, Index y, Index z) {
    return (z * ny + y) * nx + x;
  };
  for (Index z = 0; z < nz; ++z)
    for (Index y = 0; y < ny; ++y)
      for (Index x = 0; x < nx; ++x) {
        if (x + 1 < nx) g.add_edge(id(x, y, z), id(x + 1, y, z), weight);
        if (y + 1 < ny) g.add_edge(id(x, y, z), id(x, y + 1, z), weight);
        if (z + 1 < nz) g.add_edge(id(x, y, z), id(x, y, z + 1), weight);
      }
  return g;
}

Graph make_erdos_renyi(Index n, Real p, Rng& rng) {
  SGL_EXPECTS(n >= 1, "make_erdos_renyi: need at least one node");
  SGL_EXPECTS(p >= 0.0 && p <= 1.0, "make_erdos_renyi: p out of [0,1]");
  Graph g(n);
  for (Index i = 0; i < n; ++i)
    for (Index j = i + 1; j < n; ++j)
      if (rng.uniform() < p) g.add_edge(i, j, 1.0);
  return g;
}

MeshGraph make_random_geometric(Index n, Real radius, Rng& rng) {
  SGL_EXPECTS(n >= 1, "make_random_geometric: need at least one node");
  SGL_EXPECTS(radius > 0.0, "make_random_geometric: radius must be positive");
  MeshGraph mesh;
  mesh.graph = Graph(n);
  mesh.coords.resize(static_cast<std::size_t>(n));
  for (auto& c : mesh.coords) c = {rng.uniform(), rng.uniform()};
  const Real r2 = radius * radius;
  for (Index i = 0; i < n; ++i)
    for (Index j = i + 1; j < n; ++j) {
      const Real dx = mesh.coords[static_cast<std::size_t>(i)][0] -
                      mesh.coords[static_cast<std::size_t>(j)][0];
      const Real dy = mesh.coords[static_cast<std::size_t>(i)][1] -
                      mesh.coords[static_cast<std::size_t>(j)][1];
      if (dx * dx + dy * dy <= r2) mesh.graph.add_edge(i, j, 1.0);
    }
  return mesh;
}

namespace {

/// Keeps only the largest connected component of a mesh and relabels
/// nodes contiguously (coords follow).
MeshGraph largest_component(const MeshGraph& mesh) {
  const Components comp = connected_components(mesh.graph);
  std::vector<Index> size(static_cast<std::size_t>(comp.count), 0);
  for (const Index c : comp.label) ++size[static_cast<std::size_t>(c)];
  const Index best = to_index(static_cast<std::size_t>(
      std::max_element(size.begin(), size.end()) - size.begin()));

  std::vector<Index> new_id(static_cast<std::size_t>(mesh.graph.num_nodes()),
                            kInvalidIndex);
  MeshGraph out;
  Index next = 0;
  for (Index v = 0; v < mesh.graph.num_nodes(); ++v) {
    if (comp.label[static_cast<std::size_t>(v)] == best) {
      new_id[static_cast<std::size_t>(v)] = next++;
      out.coords.push_back(mesh.coords[static_cast<std::size_t>(v)]);
    }
  }
  out.graph = Graph(next);
  for (const Edge& e : mesh.graph.edges()) {
    const Index s = new_id[static_cast<std::size_t>(e.s)];
    const Index t = new_id[static_cast<std::size_t>(e.t)];
    if (s != kInvalidIndex && t != kInvalidIndex)
      out.graph.add_edge(s, t, e.weight);
  }
  return out;
}

bool inside_any_hole(Real x, Real y,
                     const std::vector<std::array<Real, 4>>& holes) {
  for (const auto& h : holes) {
    const Real dx = (x - h[0]) / h[2];
    const Real dy = (y - h[1]) / h[3];
    if (dx * dx + dy * dy < 1.0) return true;
  }
  return false;
}

}  // namespace

MeshGraph make_triangulated_mesh(const TriMeshOptions& options) {
  const Index nx = options.nx;
  const Index ny = options.ny;
  SGL_EXPECTS(nx >= 2 && ny >= 2, "make_triangulated_mesh: degenerate size");
  SGL_EXPECTS(options.weight_jitter >= 1.0,
              "make_triangulated_mesh: jitter must be >= 1");
  Rng rng(options.seed);

  MeshGraph mesh;
  mesh.graph = Graph(nx * ny);
  mesh.coords.resize(static_cast<std::size_t>(nx) * ny);
  std::vector<bool> keep(static_cast<std::size_t>(nx) * ny, true);
  const auto id = [nx](Index x, Index y) { return y * nx + x; };
  for (Index y = 0; y < ny; ++y)
    for (Index x = 0; x < nx; ++x) {
      mesh.coords[static_cast<std::size_t>(id(x, y))] = {
          static_cast<Real>(x), static_cast<Real>(y)};
      keep[static_cast<std::size_t>(id(x, y))] = !inside_any_hole(
          static_cast<Real>(x), static_cast<Real>(y), options.holes);
    }

  const auto weight = [&rng, &options]() {
    if (options.weight_jitter == 1.0) return Real{1.0};
    const Real lo = std::log(1.0 / options.weight_jitter);
    const Real hi = std::log(options.weight_jitter);
    return std::exp(rng.uniform(lo, hi));
  };
  const auto add = [&](Index a, Index b) {
    if (keep[static_cast<std::size_t>(a)] && keep[static_cast<std::size_t>(b)])
      mesh.graph.add_edge(a, b, weight());
  };

  for (Index y = 0; y < ny; ++y)
    for (Index x = 0; x < nx; ++x) {
      if (x + 1 < nx) add(id(x, y), id(x + 1, y));
      if (y + 1 < ny) add(id(x, y), id(x, y + 1));
      // Alternating diagonals produce the classic "union jack"-free
      // triangulation with average interior degree 6.
      if (x + 1 < nx && y + 1 < ny) {
        if ((x + y) % 2 == 0) add(id(x, y), id(x + 1, y + 1));
        else add(id(x + 1, y), id(x, y + 1));
      }
    }
  return largest_component(mesh);
}

MeshGraph make_airfoil_surrogate() {
  TriMeshOptions opt;
  opt.nx = 76;
  opt.ny = 64;
  // One elongated elliptical cut-out mimicking the airfoil void.
  opt.holes = {{37.5, 31.5, 24.0, 8.5}};
  opt.seed = 101;
  return make_triangulated_mesh(opt);
}

MeshGraph make_crack_surrogate() {
  TriMeshOptions opt;
  opt.nx = 116;
  opt.ny = 90;
  // A thin horizontal slit: the crack.
  opt.holes = {{57.5, 44.5, 40.0, 1.2}};
  opt.seed = 102;
  return make_triangulated_mesh(opt);
}

MeshGraph make_fe4elt2_surrogate() {
  TriMeshOptions opt;
  opt.nx = 112;
  opt.ny = 102;
  // Four holes, nodding to the "4elt" family of FE meshes.
  opt.holes = {{28.0, 25.0, 9.0, 7.0},
               {84.0, 25.0, 9.0, 7.0},
               {28.0, 76.0, 9.0, 7.0},
               {84.0, 76.0, 9.0, 7.0}};
  opt.seed = 103;
  return make_triangulated_mesh(opt);
}

MeshGraph make_circuit_grid(Index nx, Index ny, Index target_edges,
                            Real weight_lo, Real weight_hi,
                            std::uint64_t seed) {
  SGL_EXPECTS(nx >= 2 && ny >= 2, "make_circuit_grid: degenerate size");
  SGL_EXPECTS(weight_lo > 0.0 && weight_hi >= weight_lo,
              "make_circuit_grid: bad weight range");
  Rng rng(seed);
  MeshGraph grid = make_grid2d(nx, ny, /*periodic=*/false);

  // Re-draw conductances log-uniformly in [weight_lo, weight_hi], the
  // standard model for power-grid resistor variation.
  MeshGraph mesh;
  mesh.coords = grid.coords;
  mesh.graph = Graph(grid.graph.num_nodes());
  const Real llo = std::log(weight_lo);
  const Real lhi = std::log(weight_hi);
  for (const Edge& e : grid.graph.edges())
    mesh.graph.add_edge(e.s, e.t, std::exp(rng.uniform(llo, lhi)));

  const Index full_edges = mesh.graph.num_edges();
  if (target_edges <= 0 || target_edges >= full_edges) return mesh;
  SGL_EXPECTS(target_edges >= mesh.graph.num_nodes() - 1,
              "make_circuit_grid: target below spanning-tree size");

  // Thin to the target edge count while preserving connectivity: protect a
  // spanning tree, then drop a random subset of the remaining edges.
  const std::vector<Index> tree = maximum_spanning_forest(mesh.graph);
  std::vector<bool> in_tree(static_cast<std::size_t>(full_edges), false);
  for (const Index id : tree) in_tree[static_cast<std::size_t>(id)] = true;
  std::vector<Index> removable;
  for (Index e = 0; e < full_edges; ++e)
    if (!in_tree[static_cast<std::size_t>(e)]) removable.push_back(e);
  shuffle(removable, rng);

  const Index to_remove = full_edges - target_edges;
  SGL_EXPECTS(to_remove <= to_index(removable.size()),
              "make_circuit_grid: cannot reach target while staying connected");
  std::vector<bool> drop(static_cast<std::size_t>(full_edges), false);
  for (Index i = 0; i < to_remove; ++i)
    drop[static_cast<std::size_t>(removable[static_cast<std::size_t>(i)])] = true;

  MeshGraph out;
  out.coords = mesh.coords;
  out.graph = Graph(mesh.graph.num_nodes());
  for (Index e = 0; e < full_edges; ++e) {
    if (drop[static_cast<std::size_t>(e)]) continue;
    const Edge& ed = mesh.graph.edge(e);
    out.graph.add_edge(ed.s, ed.t, ed.weight);
  }
  return out;
}

MeshGraph make_g2_circuit_surrogate(std::uint64_t seed) {
  // 388 × 387 = 150,156 nodes (paper: 150,102), thinned to the paper's
  // exact |E| = 288,286 with conductances spread over one decade.
  return make_circuit_grid(388, 387, 288286, 0.5, 5.0, seed);
}

}  // namespace sgl::graph
