// Connectivity queries: BFS, connected components, component labeling.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace sgl::graph {

/// Component label (0-based, contiguous) for every node.
struct Components {
  std::vector<Index> label;   // size num_nodes
  Index count = 0;            // number of components
};

/// Labels connected components via BFS over the adjacency list.
[[nodiscard]] Components connected_components(const Graph& g);

/// True if the graph has exactly one connected component (and ≥1 node).
[[nodiscard]] bool is_connected(const Graph& g);

/// BFS distances (hop counts) from a source; kInvalidIndex (−1) marks
/// unreachable nodes.
[[nodiscard]] std::vector<Index> bfs_distances(const Graph& g, Index source);

/// A node of (approximately) maximum eccentricity found by repeated BFS —
/// the classic pseudo-peripheral starting point for RCM orderings.
[[nodiscard]] Index pseudo_peripheral_node(const AdjacencyList& adj,
                                           Index start);

}  // namespace sgl::graph
