// MatrixMarket I/O.
//
// Lets users run the library on the paper's original SuiteSparse matrices
// (fe_4elt2, airfoil, crack, G2_circuit, ...) when those files are
// available locally, and exports learned graphs for external tooling.
#pragma once

#include <string>

#include "graph/graph.hpp"
#include "la/sparse.hpp"

namespace sgl::graph {

/// How to turn a square matrix into a graph.
enum class MatrixInterpretation {
  /// Off-diagonal entries are edge weights; values ≤ 0 use |value|,
  /// pattern files use weight 1. Diagonal ignored.
  kAdjacency,
  /// The matrix is a (possibly Laplacian-like) M-matrix: edge weight for
  /// (i, j) is −a_ij when a_ij < 0; nonnegative off-diagonals are ignored.
  kLaplacian,
};

/// Reads a MatrixMarket "matrix coordinate real|integer|pattern
/// general|symmetric" file. Symmetric storage is expanded. Throws
/// ContractViolation on malformed input.
[[nodiscard]] la::CsrMatrix read_matrix_market(const std::string& path);

/// Converts a square sparse matrix into an undirected graph, deduplicating
/// (i, j)/(j, i) pairs.
[[nodiscard]] Graph graph_from_matrix(const la::CsrMatrix& matrix,
                                      MatrixInterpretation interpretation);

/// Convenience: read + interpret in one call.
[[nodiscard]] Graph read_graph_matrix_market(
    const std::string& path,
    MatrixInterpretation interpretation = MatrixInterpretation::kLaplacian);

/// Writes the graph's Laplacian in MatrixMarket symmetric coordinate
/// format (lower triangle).
void write_laplacian_matrix_market(const Graph& g, const std::string& path);

}  // namespace sgl::graph
