#include "graph/graph.hpp"

namespace sgl::graph {

la::Vector Graph::weighted_degrees() const {
  la::Vector d(static_cast<std::size_t>(num_nodes_), 0.0);
  for (const Edge& e : edges_) {
    d[static_cast<std::size_t>(e.s)] += e.weight;
    d[static_cast<std::size_t>(e.t)] += e.weight;
  }
  return d;
}

la::CsrMatrix Graph::laplacian() const {
  std::vector<la::Triplet> triplets;
  triplets.reserve(edges_.size() * 4);
  for (const Edge& e : edges_) {
    triplets.push_back({e.s, e.s, e.weight});
    triplets.push_back({e.t, e.t, e.weight});
    triplets.push_back({e.s, e.t, -e.weight});
    triplets.push_back({e.t, e.s, -e.weight});
  }
  // Isolated nodes still need an (empty) diagonal slot for factorization
  // codes; a structural zero keeps the pattern square and complete.
  for (Index i = 0; i < num_nodes_; ++i) triplets.push_back({i, i, 0.0});
  return la::CsrMatrix::from_triplets(num_nodes_, num_nodes_, triplets);
}

la::CsrMatrix Graph::adjacency() const {
  std::vector<la::Triplet> triplets;
  triplets.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    triplets.push_back({e.s, e.t, e.weight});
    triplets.push_back({e.t, e.s, e.weight});
  }
  return la::CsrMatrix::from_triplets(num_nodes_, num_nodes_, triplets);
}

AdjacencyList Graph::adjacency_list() const {
  AdjacencyList adj;
  adj.row_ptr.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (const Edge& e : edges_) {
    ++adj.row_ptr[static_cast<std::size_t>(e.s) + 1];
    ++adj.row_ptr[static_cast<std::size_t>(e.t) + 1];
  }
  for (std::size_t i = 1; i < adj.row_ptr.size(); ++i)
    adj.row_ptr[i] += adj.row_ptr[i - 1];

  adj.neighbor.resize(edges_.size() * 2);
  adj.weight.resize(edges_.size() * 2);
  adj.edge_id.resize(edges_.size() * 2);
  std::vector<Index> cursor(adj.row_ptr.begin(), adj.row_ptr.end() - 1);
  for (Index id = 0; id < num_edges(); ++id) {
    const Edge& e = edges_[static_cast<std::size_t>(id)];
    Index p = cursor[static_cast<std::size_t>(e.s)]++;
    adj.neighbor[static_cast<std::size_t>(p)] = e.t;
    adj.weight[static_cast<std::size_t>(p)] = e.weight;
    adj.edge_id[static_cast<std::size_t>(p)] = id;
    p = cursor[static_cast<std::size_t>(e.t)]++;
    adj.neighbor[static_cast<std::size_t>(p)] = e.s;
    adj.weight[static_cast<std::size_t>(p)] = e.weight;
    adj.edge_id[static_cast<std::size_t>(p)] = id;
  }
  return adj;
}

}  // namespace sgl::graph
