// FNV-1a graph fingerprints (DESIGN.md §8, §10).
//
// Two 64-bit digests over a graph's (append-only) edge list identify a
// graph without storing it: the endpoint fingerprint hashes the edge
// pattern, the weight fingerprint additionally hashes every weight's bit
// pattern (numeric identity — two graphs with equal weight fingerprints
// produce bitwise-identical Laplacians). SolverContext uses prefix
// fingerprints to recognize "edges appended" / "weights rescaled"; the
// serving tier keys its factorization LRU on the full-graph GraphKey.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>

#include "graph/graph.hpp"

namespace sgl::graph {

/// FNV-1a over the endpoints of the first `count` edges (pattern
/// identity). `count` must not exceed g.num_edges().
[[nodiscard]] std::uint64_t endpoint_fingerprint(const Graph& g,
                                                 std::size_t count);

/// FNV-1a over endpoints AND weight bit patterns of the first `count`
/// edges (numeric identity).
[[nodiscard]] std::uint64_t weight_fingerprint(const Graph& g,
                                               std::size_t count);

/// Full identity of one graph state: node/edge counts plus both digests.
/// Totally ordered so deterministic containers (std::map) can key on it.
struct GraphKey {
  Index num_nodes = 0;
  Index num_edges = 0;
  std::uint64_t endpoints = 0;
  std::uint64_t weights = 0;

  friend auto operator<=>(const GraphKey&, const GraphKey&) = default;
};

/// Key of the CURRENT state of `g` (fingerprints over all edges).
[[nodiscard]] GraphKey graph_key(const Graph& g);

}  // namespace sgl::graph
