// Undirected weighted graph type used across the library.
//
// A Graph is a node count plus an edge list; Laplacian/adjacency matrices
// and CSR-style adjacency structures are derived on demand. Edge weights
// are conductances in the resistor-network interpretation: the Laplacian
// L = D − W is exactly the nodal admittance matrix of the network.
#pragma once

#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"
#include "la/sparse.hpp"

namespace sgl::graph {

/// One undirected weighted edge. Stored with s < t canonically when built
/// through Graph::add_edge.
struct Edge {
  Index s = 0;
  Index t = 0;
  Real weight = 1.0;
};

/// CSR-style adjacency: for node u, neighbors are
/// neighbor[row_ptr[u] .. row_ptr[u+1]) with matching weight/edge ids.
struct AdjacencyList {
  std::vector<Index> row_ptr;
  std::vector<Index> neighbor;
  std::vector<Real> weight;
  std::vector<Index> edge_id;

  [[nodiscard]] Index num_nodes() const noexcept {
    return to_index(row_ptr.size()) - 1;
  }
  [[nodiscard]] Index degree(Index u) const {
    return row_ptr[static_cast<std::size_t>(u) + 1] -
           row_ptr[static_cast<std::size_t>(u)];
  }
};

class Graph {
 public:
  Graph() = default;

  /// Graph with n isolated nodes.
  explicit Graph(Index num_nodes) : num_nodes_(num_nodes) {
    SGL_EXPECTS(num_nodes >= 0, "Graph: negative node count");
  }

  [[nodiscard]] Index num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] Index num_edges() const noexcept {
    return to_index(edges_.size());
  }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] const Edge& edge(Index e) const {
    SGL_EXPECTS(e >= 0 && e < num_edges(), "edge: index out of range");
    return edges_[static_cast<std::size_t>(e)];
  }

  /// Adds edge {s, t} with positive weight; stores endpoints as (min, max).
  /// Self-loops are rejected; parallel edges are allowed and their weights
  /// sum in the Laplacian (circuit stamping semantics).
  void add_edge(Index s, Index t, Real weight = 1.0) {
    SGL_EXPECTS(s >= 0 && s < num_nodes_ && t >= 0 && t < num_nodes_,
                "add_edge: endpoint out of range");
    SGL_EXPECTS(s != t, "add_edge: self-loops are not representable");
    SGL_EXPECTS(weight > 0.0, "add_edge: weight must be positive");
    if (s > t) std::swap(s, t);
    edges_.push_back({s, t, weight});
  }

  /// Multiplies every edge weight by alpha > 0 (paper eq. 23 scaling).
  void scale_weights(Real alpha) {
    SGL_EXPECTS(alpha > 0.0, "scale_weights: alpha must be positive");
    for (Edge& e : edges_) e.weight *= alpha;
  }

  /// Overwrites the weight of edge e.
  void set_weight(Index e, Real weight) {
    SGL_EXPECTS(e >= 0 && e < num_edges(), "set_weight: index out of range");
    SGL_EXPECTS(weight > 0.0, "set_weight: weight must be positive");
    edges_[static_cast<std::size_t>(e)].weight = weight;
  }

  /// |E| / |V| — the "density" the paper reports (≈1 for trees).
  [[nodiscard]] Real density() const {
    SGL_EXPECTS(num_nodes_ > 0, "density: empty graph");
    return static_cast<Real>(num_edges()) / static_cast<Real>(num_nodes_);
  }

  /// Sum of all edge weights.
  [[nodiscard]] Real total_weight() const {
    Real acc = 0.0;
    for (const Edge& e : edges_) acc += e.weight;
    return acc;
  }

  /// Weighted degree (sum of incident conductances) of every node.
  [[nodiscard]] la::Vector weighted_degrees() const;

  /// Graph Laplacian L = D − W as CSR (paper eq. 3).
  [[nodiscard]] la::CsrMatrix laplacian() const;

  /// Weighted adjacency matrix W as CSR.
  [[nodiscard]] la::CsrMatrix adjacency() const;

  /// CSR adjacency structure with edge ids (for traversals and MST).
  [[nodiscard]] AdjacencyList adjacency_list() const;

 private:
  Index num_nodes_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace sgl::graph
