#include "graph/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

namespace sgl::graph {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

la::CsrMatrix read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  SGL_EXPECTS(in.good(), "read_matrix_market: cannot open '" + path + "'");

  std::string line;
  SGL_EXPECTS(static_cast<bool>(std::getline(in, line)),
              "read_matrix_market: empty file");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  SGL_EXPECTS(banner == "%%MatrixMarket", "read_matrix_market: bad banner");
  SGL_EXPECTS(lower(object) == "matrix" && lower(format) == "coordinate",
              "read_matrix_market: only coordinate matrices are supported");
  const std::string f = lower(field);
  SGL_EXPECTS(f == "real" || f == "integer" || f == "pattern",
              "read_matrix_market: unsupported field type '" + field + "'");
  const std::string sym = lower(symmetry);
  SGL_EXPECTS(sym == "general" || sym == "symmetric",
              "read_matrix_market: unsupported symmetry '" + symmetry + "'");
  const bool pattern = (f == "pattern");
  const bool symmetric = (sym == "symmetric");

  // Skip comments / blank lines up to the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long rows = 0, cols = 0, nnz = 0;
  size_line >> rows >> cols >> nnz;
  SGL_EXPECTS(rows > 0 && cols > 0 && nnz >= 0,
              "read_matrix_market: bad size line");

  std::vector<la::Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(nnz) * (symmetric ? 2 : 1));
  for (long k = 0; k < nnz; ++k) {
    long i = 0, j = 0;
    Real v = 1.0;
    in >> i >> j;
    if (!pattern) in >> v;
    SGL_EXPECTS(in.good() || in.eof(),
                "read_matrix_market: truncated entry list");
    SGL_EXPECTS(i >= 1 && i <= rows && j >= 1 && j <= cols,
                "read_matrix_market: entry out of range");
    triplets.push_back({static_cast<Index>(i - 1), static_cast<Index>(j - 1), v});
    if (symmetric && i != j)
      triplets.push_back({static_cast<Index>(j - 1), static_cast<Index>(i - 1), v});
  }
  return la::CsrMatrix::from_triplets(static_cast<Index>(rows),
                                      static_cast<Index>(cols), triplets);
}

Graph graph_from_matrix(const la::CsrMatrix& matrix,
                        MatrixInterpretation interpretation) {
  SGL_EXPECTS(matrix.rows() == matrix.cols(),
              "graph_from_matrix: matrix must be square");
  const Index n = matrix.rows();
  // Deduplicate (i, j) / (j, i): keep the canonical i < j pair, averaging
  // over however many directed entries the file stored (1 for one-triangle
  // general files, 2 for expanded symmetric storage).
  std::map<std::pair<Index, Index>, std::pair<Real, int>> weights;
  const auto& rp = matrix.row_ptr();
  const auto& ci = matrix.col_idx();
  const auto& vv = matrix.values();
  for (Index i = 0; i < n; ++i) {
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      const Index j = ci[static_cast<std::size_t>(k)];
      if (i == j) continue;
      const Real a = vv[static_cast<std::size_t>(k)];
      Real w = 0.0;
      if (interpretation == MatrixInterpretation::kAdjacency) {
        w = std::abs(a);
      } else {
        if (a >= 0.0) continue;  // Laplacian off-diagonals are negative
        w = -a;
      }
      if (w <= 0.0) continue;
      const auto key = std::minmax(i, j);
      auto& slot = weights[{key.first, key.second}];
      slot.first += w;
      slot.second += 1;
    }
  }
  Graph g(n);
  for (const auto& [key, acc] : weights) {
    g.add_edge(key.first, key.second, acc.first / acc.second);
  }
  return g;
}

Graph read_graph_matrix_market(const std::string& path,
                               MatrixInterpretation interpretation) {
  return graph_from_matrix(read_matrix_market(path), interpretation);
}

void write_laplacian_matrix_market(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  SGL_EXPECTS(out.good(),
              "write_laplacian_matrix_market: cannot open '" + path + "'");
  const la::CsrMatrix lap = g.laplacian();
  const auto& rp = lap.row_ptr();
  const auto& ci = lap.col_idx();
  const auto& vv = lap.values();
  long nnz_lower = 0;
  for (Index i = 0; i < lap.rows(); ++i)
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k)
      if (ci[static_cast<std::size_t>(k)] <= i) ++nnz_lower;

  out << "%%MatrixMarket matrix coordinate real symmetric\n";
  out << "% graph Laplacian exported by sgl\n";
  out << lap.rows() << ' ' << lap.cols() << ' ' << nnz_lower << '\n';
  out.precision(17);
  for (Index i = 0; i < lap.rows(); ++i)
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k)
      if (ci[static_cast<std::size_t>(k)] <= i)
        out << (i + 1) << ' ' << (ci[static_cast<std::size_t>(k)] + 1) << ' '
            << vv[static_cast<std::size_t>(k)] << '\n';
  SGL_ENSURES(out.good(), "write_laplacian_matrix_market: write failed");
}

}  // namespace sgl::graph
