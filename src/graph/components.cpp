#include "graph/components.hpp"

#include <queue>

namespace sgl::graph {

Components connected_components(const Graph& g) {
  const AdjacencyList adj = g.adjacency_list();
  Components comp;
  comp.label.assign(static_cast<std::size_t>(g.num_nodes()), kInvalidIndex);
  std::vector<Index> queue;
  for (Index root = 0; root < g.num_nodes(); ++root) {
    if (comp.label[static_cast<std::size_t>(root)] != kInvalidIndex) continue;
    const Index c = comp.count++;
    queue.clear();
    queue.push_back(root);
    comp.label[static_cast<std::size_t>(root)] = c;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Index u = queue[head];
      for (Index k = adj.row_ptr[static_cast<std::size_t>(u)];
           k < adj.row_ptr[static_cast<std::size_t>(u) + 1]; ++k) {
        const Index v = adj.neighbor[static_cast<std::size_t>(k)];
        if (comp.label[static_cast<std::size_t>(v)] == kInvalidIndex) {
          comp.label[static_cast<std::size_t>(v)] = c;
          queue.push_back(v);
        }
      }
    }
  }
  return comp;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return false;
  return connected_components(g).count == 1;
}

std::vector<Index> bfs_distances(const Graph& g, Index source) {
  SGL_EXPECTS(source >= 0 && source < g.num_nodes(),
              "bfs_distances: source out of range");
  const AdjacencyList adj = g.adjacency_list();
  std::vector<Index> dist(static_cast<std::size_t>(g.num_nodes()),
                          kInvalidIndex);
  std::vector<Index> queue{source};
  dist[static_cast<std::size_t>(source)] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Index u = queue[head];
    for (Index k = adj.row_ptr[static_cast<std::size_t>(u)];
         k < adj.row_ptr[static_cast<std::size_t>(u) + 1]; ++k) {
      const Index v = adj.neighbor[static_cast<std::size_t>(k)];
      if (dist[static_cast<std::size_t>(v)] == kInvalidIndex) {
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

Index pseudo_peripheral_node(const AdjacencyList& adj, Index start) {
  const Index n = adj.num_nodes();
  SGL_EXPECTS(start >= 0 && start < n, "pseudo_peripheral_node: bad start");
  Index current = start;
  Index best_ecc = -1;
  std::vector<Index> dist(static_cast<std::size_t>(n));
  std::vector<Index> queue;
  for (int round = 0; round < 8; ++round) {  // converges in 2-3 in practice
    std::fill(dist.begin(), dist.end(), kInvalidIndex);
    queue.clear();
    queue.push_back(current);
    dist[static_cast<std::size_t>(current)] = 0;
    Index far_node = current;
    Index far_dist = 0;
    Index far_degree = adj.degree(current);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Index u = queue[head];
      for (Index k = adj.row_ptr[static_cast<std::size_t>(u)];
           k < adj.row_ptr[static_cast<std::size_t>(u) + 1]; ++k) {
        const Index v = adj.neighbor[static_cast<std::size_t>(k)];
        if (dist[static_cast<std::size_t>(v)] == kInvalidIndex) {
          dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
          const Index dv = dist[static_cast<std::size_t>(v)];
          const Index degv = adj.degree(v);
          // Prefer the farthest node; break ties toward low degree, the
          // standard heuristic for good RCM starting points.
          if (dv > far_dist || (dv == far_dist && degv < far_degree)) {
            far_dist = dv;
            far_node = v;
            far_degree = degv;
          }
        }
      }
    }
    if (far_dist <= best_ecc) break;
    best_ecc = far_dist;
    current = far_node;
  }
  return current;
}

}  // namespace sgl::graph
