#include "graph/mst.hpp"

#include <algorithm>
#include <numeric>

#include "graph/union_find.hpp"

namespace sgl::graph {

namespace {

std::vector<Index> spanning_forest_impl(const Graph& g, bool maximize) {
  std::vector<Index> order(static_cast<std::size_t>(g.num_edges()));
  std::iota(order.begin(), order.end(), Index{0});
  const auto& edges = g.edges();
  std::stable_sort(order.begin(), order.end(), [&](Index a, Index b) {
    const Real wa = edges[static_cast<std::size_t>(a)].weight;
    const Real wb = edges[static_cast<std::size_t>(b)].weight;
    return maximize ? wa > wb : wa < wb;
  });

  UnionFind uf(g.num_nodes());
  std::vector<Index> picked;
  picked.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (const Index id : order) {
    const Edge& e = edges[static_cast<std::size_t>(id)];
    if (uf.unite(e.s, e.t)) picked.push_back(id);
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace

std::vector<Index> maximum_spanning_forest(const Graph& g) {
  return spanning_forest_impl(g, /*maximize=*/true);
}

std::vector<Index> minimum_spanning_forest(const Graph& g) {
  return spanning_forest_impl(g, /*maximize=*/false);
}

Graph subgraph_from_edges(const Graph& g, const std::vector<Index>& edge_ids) {
  Graph sub(g.num_nodes());
  for (const Index id : edge_ids) {
    const Edge& e = g.edge(id);
    sub.add_edge(e.s, e.t, e.weight);
  }
  return sub;
}

}  // namespace sgl::graph
