#include "graph/coarsening.hpp"

#include <numeric>

#include "common/rng.hpp"
#include "la/sparse.hpp"

namespace sgl::graph {

CoarseningResult coarsen_heavy_edge_matching(const Graph& g,
                                             std::uint64_t seed) {
  SGL_EXPECTS(g.num_nodes() >= 1, "coarsen: empty graph");
  const Index n = g.num_nodes();
  const AdjacencyList adj = g.adjacency_list();

  std::vector<Index> visit_order(static_cast<std::size_t>(n));
  std::iota(visit_order.begin(), visit_order.end(), Index{0});
  Rng rng(seed);
  shuffle(visit_order, rng);

  std::vector<Index> match(static_cast<std::size_t>(n), kInvalidIndex);
  for (const Index u : visit_order) {
    if (match[static_cast<std::size_t>(u)] != kInvalidIndex) continue;
    Real best_weight = -1.0;
    Index best = kInvalidIndex;
    for (Index k = adj.row_ptr[static_cast<std::size_t>(u)];
         k < adj.row_ptr[static_cast<std::size_t>(u) + 1]; ++k) {
      const Index v = adj.neighbor[static_cast<std::size_t>(k)];
      if (v == u || match[static_cast<std::size_t>(v)] != kInvalidIndex)
        continue;
      if (adj.weight[static_cast<std::size_t>(k)] > best_weight) {
        best_weight = adj.weight[static_cast<std::size_t>(k)];
        best = v;
      }
    }
    if (best != kInvalidIndex) {
      match[static_cast<std::size_t>(u)] = best;
      match[static_cast<std::size_t>(best)] = u;
    } else {
      match[static_cast<std::size_t>(u)] = u;  // singleton aggregate
    }
  }

  // Assign coarse ids: the smaller endpoint of each matched pair owns it.
  CoarseningResult result;
  result.fine_to_coarse.assign(static_cast<std::size_t>(n), kInvalidIndex);
  Index next = 0;
  for (Index u = 0; u < n; ++u) {
    const Index mate = match[static_cast<std::size_t>(u)];
    if (mate >= u) {
      result.fine_to_coarse[static_cast<std::size_t>(u)] = next;
      if (mate != u) result.fine_to_coarse[static_cast<std::size_t>(mate)] = next;
      ++next;
    }
  }

  // Galerkin edges: sum fine weights between distinct aggregates. Assemble
  // through triplets so parallel contributions accumulate.
  std::vector<la::Triplet> triplets;
  triplets.reserve(g.edges().size());
  for (const Edge& e : g.edges()) {
    const Index cs = result.fine_to_coarse[static_cast<std::size_t>(e.s)];
    const Index ct = result.fine_to_coarse[static_cast<std::size_t>(e.t)];
    if (cs == ct) continue;
    triplets.push_back({std::min(cs, ct), std::max(cs, ct), e.weight});
  }
  const la::CsrMatrix acc = la::CsrMatrix::from_triplets(next, next, triplets);
  result.coarse = Graph(next);
  const auto& rp = acc.row_ptr();
  const auto& ci = acc.col_idx();
  const auto& vv = acc.values();
  for (Index i = 0; i < next; ++i)
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k)
      result.coarse.add_edge(i, ci[static_cast<std::size_t>(k)],
                             vv[static_cast<std::size_t>(k)]);
  return result;
}

CoarseningHierarchy build_coarsening_hierarchy(const Graph& g,
                                               Index coarsest_nodes,
                                               std::uint64_t seed) {
  SGL_EXPECTS(coarsest_nodes >= 1,
              "build_coarsening_hierarchy: target must be positive");
  CoarseningHierarchy hierarchy;
  Rng rng(seed);
  const Graph* current = &g;
  while (current->num_nodes() > coarsest_nodes) {
    CoarseningResult level = coarsen_heavy_edge_matching(*current, rng());
    if (level.coarse.num_nodes() == current->num_nodes()) break;  // stall
    hierarchy.levels.push_back(
        {std::move(level.coarse), std::move(level.fine_to_coarse)});
    current = &hierarchy.levels.back().graph;
  }
  return hierarchy;
}

CoarseningResult coarsen_to_size(const Graph& g, Index target_nodes,
                                 std::uint64_t seed) {
  SGL_EXPECTS(target_nodes >= 1, "coarsen_to_size: target must be positive");
  CoarseningResult result;
  result.coarse = g;
  result.fine_to_coarse.resize(static_cast<std::size_t>(g.num_nodes()));
  std::iota(result.fine_to_coarse.begin(), result.fine_to_coarse.end(),
            Index{0});

  Rng rng(seed);
  while (result.coarse.num_nodes() > target_nodes) {
    const CoarseningResult level =
        coarsen_heavy_edge_matching(result.coarse, rng());
    if (level.coarse.num_nodes() == result.coarse.num_nodes()) break;  // stall
    for (Index v = 0; v < g.num_nodes(); ++v) {
      result.fine_to_coarse[static_cast<std::size_t>(v)] =
          level.fine_to_coarse[static_cast<std::size_t>(
              result.fine_to_coarse[static_cast<std::size_t>(v)])];
    }
    result.coarse = level.coarse;
  }
  return result;
}

}  // namespace sgl::graph
