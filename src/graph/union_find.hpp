// Disjoint-set forest with union by rank and path halving.
#pragma once

#include <numeric>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace sgl::graph {

class UnionFind {
 public:
  explicit UnionFind(Index n)
      : parent_(static_cast<std::size_t>(n)),
        rank_(static_cast<std::size_t>(n), 0),
        num_sets_(n) {
    SGL_EXPECTS(n >= 0, "UnionFind: negative size");
    std::iota(parent_.begin(), parent_.end(), Index{0});
  }

  /// Representative of x's set (with path halving).
  [[nodiscard]] Index find(Index x) {
    SGL_EXPECTS(x >= 0 && x < to_index(parent_.size()),
                "UnionFind::find out of range");
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  /// Merges the sets of a and b; returns true if they were distinct.
  bool unite(Index a, Index b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (rank_[static_cast<std::size_t>(a)] < rank_[static_cast<std::size_t>(b)])
      std::swap(a, b);
    parent_[static_cast<std::size_t>(b)] = a;
    if (rank_[static_cast<std::size_t>(a)] == rank_[static_cast<std::size_t>(b)])
      ++rank_[static_cast<std::size_t>(a)];
    --num_sets_;
    return true;
  }

  [[nodiscard]] bool connected(Index a, Index b) { return find(a) == find(b); }

  /// Number of disjoint sets currently represented.
  [[nodiscard]] Index num_sets() const noexcept { return num_sets_; }

 private:
  std::vector<Index> parent_;
  std::vector<Index> rank_;
  Index num_sets_;
};

}  // namespace sgl::graph
