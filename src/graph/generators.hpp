// Synthetic graph generators.
//
// The paper evaluates on SuiteSparse circuit / finite-element matrices
// ("2D mesh", fe_4elt2, airfoil, crack, G2_circuit). Those files are not
// redistributable here, so this module provides generators that match each
// test case's size, average degree, and mesh topology — the properties that
// drive Laplacian spectra, effective resistances, and SGL behaviour. See
// DESIGN.md §2 ("Substitutions relative to the paper") for the rationale.
// A MatrixMarket loader (graph/matrix_market.hpp) lets the original files
// be dropped in.
#pragma once

#include <array>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace sgl::graph {

/// Graph plus 2D node coordinates (for mesh generators and drawing).
struct MeshGraph {
  Graph graph;
  std::vector<std::array<Real, 2>> coords;  // per-node (x, y)
};

/// Path graph 0—1—…—(n−1).
[[nodiscard]] Graph make_path(Index n, Real weight = 1.0);

/// Cycle graph on n ≥ 3 nodes.
[[nodiscard]] Graph make_cycle(Index n, Real weight = 1.0);

/// Star graph: node 0 joined to 1..n−1.
[[nodiscard]] Graph make_star(Index n, Real weight = 1.0);

/// Complete graph on n nodes.
[[nodiscard]] Graph make_complete(Index n, Real weight = 1.0);

/// nx × ny 4-neighbor grid. With periodic=true both directions wrap,
/// giving exactly 2·nx·ny edges — the paper's "2D mesh" has |V| = 10,000
/// and |E| = 20,000, i.e. a 100×100 torus.
[[nodiscard]] MeshGraph make_grid2d(Index nx, Index ny, bool periodic = false,
                                    Real weight = 1.0);

/// nx × ny × nz 6-neighbor grid (open boundary).
[[nodiscard]] Graph make_grid3d(Index nx, Index ny, Index nz,
                                Real weight = 1.0);

/// Erdős–Rényi G(n, p); parallel edges never produced.
[[nodiscard]] Graph make_erdos_renyi(Index n, Real p, Rng& rng);

/// Random geometric graph: n uniform points in the unit square, edges
/// between pairs closer than radius.
[[nodiscard]] MeshGraph make_random_geometric(Index n, Real radius, Rng& rng);

/// Options for the triangulated finite-element-style mesh generator.
struct TriMeshOptions {
  Index nx = 10;
  Index ny = 10;
  /// Elliptical holes: {cx, cy, rx, ry} in node-index units; nodes strictly
  /// inside any ellipse are removed (and the largest component kept).
  std::vector<std::array<Real, 4>> holes;
  /// Multiplicative log-uniform weight jitter in [1/jitter, jitter]
  /// (1.0 = unit weights).
  Real weight_jitter = 1.0;
  std::uint64_t seed = 7;
};

/// Triangulated structured mesh (grid + alternating diagonals ⇒ average
/// degree ≈ 6, |E| ≈ 3|V| like 2D FE triangulations), with optional holes.
/// Only the largest connected component is returned, with nodes relabeled
/// contiguously.
[[nodiscard]] MeshGraph make_triangulated_mesh(const TriMeshOptions& options);

/// Surrogate for the paper's "airfoil" mesh (|V| = 4,253, |E| = 12,289,
/// density 2.89): triangulated mesh with an elliptical cut-out.
[[nodiscard]] MeshGraph make_airfoil_surrogate();

/// Surrogate for "crack" (|V| = 10,240, |E| = 30,380, density 2.97):
/// triangulated mesh with a thin interior slit.
[[nodiscard]] MeshGraph make_crack_surrogate();

/// Surrogate for "fe_4elt2" (|V| = 11,143, |E| = 32,818, density 2.945):
/// triangulated mesh with four holes.
[[nodiscard]] MeshGraph make_fe4elt2_surrogate();

/// Surrogate for "G2_circuit" (|V| = 150,102, |E| = 288,286, density 1.92):
/// power-grid-style 2D grid with log-uniform conductances, thinned by
/// removing random non-tree edges until the paper's edge count is matched.
[[nodiscard]] MeshGraph make_g2_circuit_surrogate(std::uint64_t seed = 11);

/// Grid-with-randomized-conductances circuit generator used by the G2
/// surrogate and the scaling experiments.
[[nodiscard]] MeshGraph make_circuit_grid(Index nx, Index ny,
                                          Index target_edges,
                                          Real weight_lo, Real weight_hi,
                                          std::uint64_t seed);

}  // namespace sgl::graph
