// Graph coarsening by heavy-edge matching.
//
// The building block of multilevel spectral methods (the paper's
// references [13], [15], [16]): pairs of nodes joined by heavy edges are
// merged, and the coarse graph is the Galerkin restriction Pᵀ L P with a
// piecewise-constant prolongation P — so coarse quadratic forms agree
// exactly with fine ones on aggregate-constant vectors, and the coarse
// spectrum tracks the fine low-frequency spectrum. Useful for multilevel
// embeddings and as a cheap structural reducer next to SGL's
// measurement-driven reduction (Fig. 8).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sgl::graph {

struct CoarseningResult {
  Graph coarse;
  /// fine node → coarse node (surjective onto 0..coarse.num_nodes()−1).
  std::vector<Index> fine_to_coarse;
};

/// One level of heavy-edge matching: visits nodes in random order, merges
/// each unmatched node with its heaviest unmatched neighbor (singletons
/// survive as their own coarse node). Parallel fine edges between the
/// same aggregates accumulate; intra-aggregate edges vanish.
/// The coarse node count is at least half the fine count.
[[nodiscard]] CoarseningResult coarsen_heavy_edge_matching(
    const Graph& g, std::uint64_t seed = 17);

/// Repeats heavy-edge matching until the graph has at most `target_nodes`
/// nodes or a level stalls. The returned map composes all levels.
[[nodiscard]] CoarseningResult coarsen_to_size(const Graph& g,
                                               Index target_nodes,
                                               std::uint64_t seed = 17);

/// One level of a multilevel hierarchy: the coarse graph plus the map from
/// the NEXT-FINER level's nodes onto it (level 0 maps the input graph).
struct HierarchyLevel {
  Graph graph;
  std::vector<Index> fine_to_coarse;
};

/// Full coarsening hierarchy, ordered fine → coarse. Unlike
/// coarsen_to_size (which composes the maps and keeps only the coarsest
/// graph), every intermediate level is retained — the structure a
/// multilevel embedding walks back down, prolonging and smoothing test
/// vectors level by level (DESIGN.md §6).
struct CoarseningHierarchy {
  /// levels[k].fine_to_coarse maps levels[k−1].graph's nodes (the input
  /// graph for k = 0) onto levels[k].graph. Empty when the input already
  /// has at most `coarsest_nodes` nodes.
  std::vector<HierarchyLevel> levels;

  [[nodiscard]] Index num_levels() const noexcept {
    return to_index(levels.size());
  }
  /// The coarsest graph (the input graph is NOT stored; callers keep it).
  [[nodiscard]] const Graph& coarsest(const Graph& fine) const noexcept {
    return levels.empty() ? fine : levels.back().graph;
  }
};

/// Builds the hierarchy by repeated heavy-edge matching until the coarse
/// graph has at most `coarsest_nodes` nodes or a level stalls. Each level
/// draws its visit-order seed from one seeded Rng, so the hierarchy is a
/// pure function of (g, coarsest_nodes, seed) — the determinism anchor of
/// the solver-free embedding engine.
[[nodiscard]] CoarseningHierarchy build_coarsening_hierarchy(
    const Graph& g, Index coarsest_nodes, std::uint64_t seed = 17);

}  // namespace sgl::graph
