// Graph coarsening by heavy-edge matching.
//
// The building block of multilevel spectral methods (the paper's
// references [13], [15], [16]): pairs of nodes joined by heavy edges are
// merged, and the coarse graph is the Galerkin restriction Pᵀ L P with a
// piecewise-constant prolongation P — so coarse quadratic forms agree
// exactly with fine ones on aggregate-constant vectors, and the coarse
// spectrum tracks the fine low-frequency spectrum. Useful for multilevel
// embeddings and as a cheap structural reducer next to SGL's
// measurement-driven reduction (Fig. 8).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sgl::graph {

struct CoarseningResult {
  Graph coarse;
  /// fine node → coarse node (surjective onto 0..coarse.num_nodes()−1).
  std::vector<Index> fine_to_coarse;
};

/// One level of heavy-edge matching: visits nodes in random order, merges
/// each unmatched node with its heaviest unmatched neighbor (singletons
/// survive as their own coarse node). Parallel fine edges between the
/// same aggregates accumulate; intra-aggregate edges vanish.
/// The coarse node count is at least half the fine count.
[[nodiscard]] CoarseningResult coarsen_heavy_edge_matching(
    const Graph& g, std::uint64_t seed = 17);

/// Repeats heavy-edge matching until the graph has at most `target_nodes`
/// nodes or a level stalls. The returned map composes all levels.
[[nodiscard]] CoarseningResult coarsen_to_size(const Graph& g,
                                               Index target_nodes,
                                               std::uint64_t seed = 17);

}  // namespace sgl::graph
