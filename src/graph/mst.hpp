// Spanning tree / forest extraction (Kruskal).
//
// SGL initializes from the *maximum* spanning tree of the kNN graph
// (paper Alg. 1 step 2): kNN edge weights are similarities (M / distance²)
// so the maximum tree keeps the strongest-affinity backbone.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace sgl::graph {

/// Edge ids (into g.edges()) of a maximum-weight spanning forest.
/// For a connected graph this is a spanning tree with n−1 edges.
[[nodiscard]] std::vector<Index> maximum_spanning_forest(const Graph& g);

/// Edge ids of a minimum-weight spanning forest.
[[nodiscard]] std::vector<Index> minimum_spanning_forest(const Graph& g);

/// Builds a subgraph of g containing exactly the given edge ids.
[[nodiscard]] Graph subgraph_from_edges(const Graph& g,
                                        const std::vector<Index>& edge_ids);

}  // namespace sgl::graph
