#include "knn/brute_force.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/parallel.hpp"

namespace sgl::knn {

std::vector<Real> to_row_major(const la::DenseMatrix& points) {
  const Index n = points.rows();
  const Index dim = points.cols();
  std::vector<Real> data(static_cast<std::size_t>(n) * dim);
  for (Index j = 0; j < dim; ++j) {
    const auto cj = points.col(j);
    for (Index i = 0; i < n; ++i)
      data[static_cast<std::size_t>(i) * dim + j] = cj[i];
  }
  return data;
}

KnnResult brute_force_knn(const la::DenseMatrix& points, Index k,
                          Index num_threads) {
  const Index n = points.rows();
  const Index dim = points.cols();
  SGL_EXPECTS(n >= 2, "brute_force_knn: need at least two points");
  SGL_EXPECTS(k >= 1 && k < n, "brute_force_knn: need 1 <= k < N");

  const std::vector<Real> data = to_row_major(points);
  KnnResult result;
  result.k = k;
  result.neighbor.resize(static_cast<std::size_t>(n) * k);
  result.distance_squared.resize(static_cast<std::size_t>(n) * k);

  // Each row's scan is independent and writes its own k result slots, so
  // the parallel result is identical to the serial one for any thread
  // count. Candidate buffers are kept per worker slot to avoid reallocating
  // n-1 pairs for every row.
  const Index threads = parallel::resolve_num_threads(num_threads);
  std::vector<std::vector<std::pair<Real, Index>>> buffers(
      static_cast<std::size_t>(threads));
  parallel::parallel_for_slots(
      0, n, threads, [&](Index lo, Index hi, Index slot) {
        auto& candidates = buffers[static_cast<std::size_t>(slot)];
        candidates.reserve(static_cast<std::size_t>(n) - 1);
        for (Index i = lo; i < hi; ++i) {
          candidates.clear();
          for (Index j = 0; j < n; ++j) {
            if (j == i) continue;
            candidates.emplace_back(point_distance_squared(data, dim, i, j), j);
          }
          std::partial_sort(candidates.begin(), candidates.begin() + k,
                            candidates.end());
          for (Index j = 0; j < k; ++j) {
            result.neighbor[static_cast<std::size_t>(i) * k + j] =
                candidates[static_cast<std::size_t>(j)].second;
            result.distance_squared[static_cast<std::size_t>(i) * k + j] =
                candidates[static_cast<std::size_t>(j)].first;
          }
        }
      });
  return result;
}

}  // namespace sgl::knn
