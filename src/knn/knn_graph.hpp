// kNN graph construction from measurement data (SGL Step 1 substrate).
//
// Nodes are rows of the voltage measurement matrix X ∈ R^{N×M}; the graph
// connects each node to its k nearest rows with the paper's similarity
// weight w_st = M / ‖X(s,:) − X(t,:)‖² (eq. 15), so that low data distance
// means high conductance. Neighbor lists are symmetrized by union, and the
// graph is optionally repaired to a single connected component (SGL needs
// a connected candidate graph to extract a spanning tree).
#pragma once

#include "graph/graph.hpp"
#include "knn/brute_force.hpp"
#include "knn/hnsw.hpp"

namespace sgl::knn {

enum class KnnBackend {
  kBruteForce,
  kHnsw,
  /// Brute force below 4,096 points, HNSW above.
  kAuto,
};

struct KnnGraphOptions {
  Index k = 5;
  KnnBackend backend = KnnBackend::kAuto;
  HnswOptions hnsw;
  /// Join components with their nearest cross-component pairs until the
  /// graph is connected.
  bool ensure_connected = true;
  /// Floor for distances when converting to weights, relative to the
  /// median neighbor distance (guards duplicate points). Purely relative,
  /// so uniformly rescaling the data rescales every weight by the same
  /// factor; a tiny absolute epsilon kicks in only when the median itself
  /// is zero (all points coincident).
  Real distance_floor_rel = 1e-12;
  /// Worker threads for neighbor search and the connectivity repair scan
  /// (0 = library default from SGL_NUM_THREADS/hardware, 1 = serial).
  /// Results are identical for every thread count.
  Index num_threads = 0;
};

/// Builds the weighted kNN graph over the rows of `x`.
[[nodiscard]] graph::Graph build_knn_graph(const la::DenseMatrix& x,
                                           const KnnGraphOptions& options = {});

}  // namespace sgl::knn
