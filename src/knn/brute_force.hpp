// Exact k-nearest-neighbor search by exhaustive scan.
//
// Points are the rows of an N×M matrix (node measurement vectors). The
// scan is O(N²M) — the reference answer for tests and the right choice for
// small N; large instances use the HNSW index (knn/hnsw.hpp).
#pragma once

#include <vector>

#include "la/dense_matrix.hpp"

namespace sgl::knn {

/// Neighbor lists for every point: neighbor/distance_squared are k entries
/// per point, flattened row-major (point i's j-th neighbor at i*k + j),
/// sorted by increasing distance. Self-matches are excluded.
struct KnnResult {
  Index k = 0;
  std::vector<Index> neighbor;
  std::vector<Real> distance_squared;

  [[nodiscard]] Index num_points() const {
    return k > 0 ? to_index(neighbor.size()) / k : 0;
  }
};

/// Exact kNN over the rows of `points`. Requires 1 ≤ k < N. Rows are
/// scanned in parallel (`num_threads` 0 = library default, 1 = serial);
/// the result is identical for every thread count.
[[nodiscard]] KnnResult brute_force_knn(const la::DenseMatrix& points, Index k,
                                        Index num_threads = 0);

/// Row-major copy of a matrix's rows (points), the layout both kNN
/// backends use for cache-friendly distance evaluation.
[[nodiscard]] std::vector<Real> to_row_major(const la::DenseMatrix& points);

/// Squared L2 distance between two length-`dim` points in a row-major
/// buffer.
[[nodiscard]] inline Real point_distance_squared(const std::vector<Real>& data,
                                                 Index dim, Index a, Index b) {
  const Real* pa = data.data() + static_cast<std::size_t>(a) * dim;
  const Real* pb = data.data() + static_cast<std::size_t>(b) * dim;
  Real acc = 0.0;
  for (Index d = 0; d < dim; ++d) {
    const Real diff = pa[d] - pb[d];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace sgl::knn
