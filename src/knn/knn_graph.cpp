#include "knn/knn_graph.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "common/parallel.hpp"
#include "graph/components.hpp"

namespace sgl::knn {

namespace {

/// Closest cross-component pair found by one scan chunk.
struct CrossPair {
  Real distance = std::numeric_limits<Real>::infinity();
  Index s = kInvalidIndex;
  Index t = kInvalidIndex;
};

/// Adds the minimum-distance edge between every smaller component and the
/// rest until one component remains. Each pass scans all cross pairs from
/// the smallest component, so the repair is O(components · N² · M) in the
/// worst case — components are rare for mesh-like measurement manifolds,
/// so the exact scan is fine; its rows are searched in parallel with a
/// deterministic chunk-ordered reduction (strict < keeps the earliest
/// minimum, exactly like the serial scan).
void connect_components(graph::Graph& g, const std::vector<Real>& data,
                        Index dim, Real weight_numerator, Real floor2,
                        Index num_threads) {
  for (;;) {
    const graph::Components comp = graph::connected_components(g);
    if (comp.count <= 1) return;

    // Pick the smallest component and link it to its nearest outside node.
    std::vector<Index> size(static_cast<std::size_t>(comp.count), 0);
    for (const Index c : comp.label) ++size[static_cast<std::size_t>(c)];
    const Index smallest = to_index(static_cast<std::size_t>(
        std::min_element(size.begin(), size.end()) - size.begin()));

    const CrossPair best = parallel::parallel_reduce(
        0, g.num_nodes(), num_threads, CrossPair{},
        [&](Index lo, Index hi) {
          CrossPair local;
          for (Index s = lo; s < hi; ++s) {
            if (comp.label[static_cast<std::size_t>(s)] != smallest) continue;
            for (Index t = 0; t < g.num_nodes(); ++t) {
              if (comp.label[static_cast<std::size_t>(t)] == smallest) continue;
              const Real d = point_distance_squared(data, dim, s, t);
              if (d < local.distance) local = {d, s, t};
            }
          }
          return local;
        },
        [](const CrossPair& a, const CrossPair& b) {
          return b.distance < a.distance ? b : a;
        });
    SGL_ASSERT(best.s != kInvalidIndex, "connect_components: no cross pair");
    g.add_edge(best.s, best.t,
               weight_numerator / std::max(best.distance, floor2));
  }
}

}  // namespace

graph::Graph build_knn_graph(const la::DenseMatrix& x,
                             const KnnGraphOptions& options) {
  const Index n = x.rows();
  const Index m = x.cols();
  SGL_EXPECTS(n >= 2, "build_knn_graph: need at least two points");
  SGL_EXPECTS(options.k >= 1 && options.k < n,
              "build_knn_graph: need 1 <= k < N");

  KnnBackend backend = options.backend;
  if (backend == KnnBackend::kAuto) {
    backend = (n <= 4096) ? KnnBackend::kBruteForce : KnnBackend::kHnsw;
  }
  const KnnResult knn =
      (backend == KnnBackend::kBruteForce)
          ? brute_force_knn(x, options.k, options.num_threads)
          : hnsw_knn(x, options.k, options.hnsw, options.num_threads);

  // Median neighbor distance defines the duplicate-point floor. The floor
  // is purely relative to the median so that rescaling the data rescales
  // every weight uniformly; the absolute epsilon only matters when the
  // median itself is zero (all points coincident) and is small enough
  // never to clamp a genuine distance.
  std::vector<Real> dists = knn.distance_squared;
  std::sort(dists.begin(), dists.end());
  const Real median = dists.empty() ? 0.0 : dists[dists.size() / 2];
  const Real floor2 =
      std::max(options.distance_floor_rel * median, Real{1e-300});

  // Symmetrize by union; keep the smaller distance if both directions hit.
  const Real weight_numerator = static_cast<Real>(m);
  std::map<std::pair<Index, Index>, Real> pair_dist;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < knn.k; ++j) {
      const Index nb = knn.neighbor[static_cast<std::size_t>(i) * knn.k + j];
      if (nb == i || nb == kInvalidIndex) continue;
      const Real d =
          knn.distance_squared[static_cast<std::size_t>(i) * knn.k + j];
      const auto key = std::minmax(i, nb);
      auto [it, inserted] = pair_dist.try_emplace({key.first, key.second}, d);
      if (!inserted) it->second = std::min(it->second, d);
    }
  }

  graph::Graph g(n);
  for (const auto& [key, d] : pair_dist) {
    g.add_edge(key.first, key.second, weight_numerator / std::max(d, floor2));
  }

  if (options.ensure_connected) {
    const std::vector<Real> data = to_row_major(x);
    connect_components(g, data, m, weight_numerator, floor2,
                       options.num_threads);
  }
  return g;
}

}  // namespace sgl::knn
