#include "knn/hnsw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/contracts.hpp"
#include "common/parallel.hpp"

namespace sgl::knn {

namespace {

/// Point count below which construction is plain live insertion:
/// generation scheduling costs more than the searches it batches. The
/// threshold depends only on N, so the graph is still a pure function of
/// the inputs at every thread count.
constexpr Index kSerialBuildPoints = 512;

/// Generation size for a committed prefix of `committed` nodes: grows
/// with the prefix (early searches are cheap and their graph snapshot
/// would go stale over a wide batch; late ones are expensive and a
/// recent-generation snapshot is already a good search surface), capped
/// so a generation never searches a snapshot more than 256 commits old.
[[nodiscard]] Index generation_size(Index committed) {
  if (committed == 0) return 1;  // the entry point must exist first
  return std::max<Index>(8, std::min<Index>(256, committed / 4));
}

}  // namespace

HnswIndex::HnswIndex(const la::DenseMatrix& points, const HnswOptions& options,
                     Index num_threads)
    : num_points_(points.rows()),
      dim_(points.cols()),
      data_(to_row_major(points)),
      options_(options),
      rng_(options.seed) {
  SGL_EXPECTS(num_points_ >= 1, "HnswIndex: need at least one point");
  SGL_EXPECTS(options.max_connections >= 2,
              "HnswIndex: max_connections must be at least 2");
  SGL_EXPECTS(options.ef_construction >= options.max_connections,
              "HnswIndex: ef_construction below max_connections");
  level_multiplier_ = 1.0 / std::log(static_cast<Real>(options.max_connections));
  // Level draws up front, in serial insertion order — one rng_ call per
  // node, the exact call sequence of per-insert draws — so each node's
  // level is a pure function of its index and the seed, independent of
  // construction scheduling.
  node_level_.resize(static_cast<std::size_t>(num_points_));
  for (Index i = 0; i < num_points_; ++i) {
    node_level_[static_cast<std::size_t>(i)] = static_cast<Index>(
        -std::log(std::max(rng_.uniform(), 1e-18)) * level_multiplier_);
  }
  links_.resize(static_cast<std::size_t>(num_points_));
  common::MutexLock lock(build_mutex_);
  build_all(num_threads);
}

Index HnswIndex::greedy_closest(Index query, Index start, Index level) const {
  Index current = start;
  Real current_dist = distance(query, current);
  bool improved = true;
  while (improved) {
    improved = false;
    for (const Index nb : neighbors(current, level)) {
      const Real d = distance(query, nb);
      if (d < current_dist) {
        current = nb;
        current_dist = d;
        improved = true;
      }
    }
  }
  return current;
}

std::vector<HnswIndex::SearchCandidate> HnswIndex::search_layer(
    Index query, Index start, Index ef, Index level,
    SearchScratch& scratch) const {
  ++scratch.visit_epoch;
  // Min-heap of frontier candidates; max-heap of current best ef results.
  std::priority_queue<SearchCandidate, std::vector<SearchCandidate>,
                      std::greater<>>
      frontier;
  std::priority_queue<SearchCandidate> best;

  const Real d0 = distance(query, start);
  frontier.push({d0, start});
  best.push({d0, start});
  scratch.visit_mark[static_cast<std::size_t>(start)] = scratch.visit_epoch;

  while (!frontier.empty()) {
    const SearchCandidate candidate = frontier.top();
    if (candidate.distance > best.top().distance &&
        to_index(best.size()) >= ef)
      break;
    frontier.pop();
    for (const Index nb : neighbors(candidate.node, level)) {
      if (scratch.visit_mark[static_cast<std::size_t>(nb)] ==
          scratch.visit_epoch)
        continue;
      scratch.visit_mark[static_cast<std::size_t>(nb)] = scratch.visit_epoch;
      const Real d = distance(query, nb);
      if (to_index(best.size()) < ef || d < best.top().distance) {
        frontier.push({d, nb});
        best.push({d, nb});
        if (to_index(best.size()) > ef) best.pop();
      }
    }
  }

  std::vector<SearchCandidate> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(best.top());
    best.pop();
  }
  return out;  // descending distance; callers sort as needed
}

std::vector<Index> HnswIndex::select_neighbors(
    [[maybe_unused]] Index query, std::vector<SearchCandidate> candidates,
    Index m) const {
  std::sort(candidates.begin(), candidates.end());
  std::vector<Index> selected;
  selected.reserve(static_cast<std::size_t>(m));
  // Diversity heuristic: keep a candidate only if it is closer to the
  // query than to every neighbor kept so far.
  for (const SearchCandidate& c : candidates) {
    if (to_index(selected.size()) >= m) break;
    bool keep = true;
    for (const Index s : selected) {
      if (distance(c.node, s) < c.distance) {
        keep = false;
        break;
      }
    }
    if (keep) selected.push_back(c.node);
  }
  // Backfill with closest rejected candidates if diversity left slots empty.
  if (to_index(selected.size()) < m) {
    for (const SearchCandidate& c : candidates) {
      if (to_index(selected.size()) >= m) break;
      if (std::find(selected.begin(), selected.end(), c.node) ==
          selected.end())
        selected.push_back(c.node);
    }
  }
  return selected;
}

void HnswIndex::insert(Index node, SearchScratch& scratch) {
  const Index level = node_level_[static_cast<std::size_t>(node)];
  links_[static_cast<std::size_t>(node)].assign(
      static_cast<std::size_t>(level) + 1, {});

  if (entry_point_ == kInvalidIndex) {
    entry_point_ = node;
    max_level_ = level;
    return;
  }

  Index current = entry_point_;
  // Phase 1: greedy descent through layers above the node's level.
  for (Index l = max_level_; l > level; --l)
    current = greedy_closest(node, current, l);

  // Phase 2: beam search + linking from min(level, max_level_) down to 0.
  for (Index l = std::min(level, max_level_); l >= 0; --l) {
    std::vector<SearchCandidate> candidates =
        search_layer(node, current, options_.ef_construction, l, scratch);
    const Index m_max =
        (l == 0) ? 2 * options_.max_connections : options_.max_connections;
    std::vector<Index> chosen =
        select_neighbors(node, candidates, options_.max_connections);

    links_[static_cast<std::size_t>(node)][static_cast<std::size_t>(l)] = chosen;
    for (const Index nb : chosen) {
      auto& back = links_[static_cast<std::size_t>(nb)][static_cast<std::size_t>(l)];
      back.push_back(node);
      if (to_index(back.size()) > m_max) {
        // Re-select to shrink the over-full list.
        std::vector<SearchCandidate> all;
        all.reserve(back.size());
        for (const Index x : back) all.push_back({distance(nb, x), x});
        back = select_neighbors(nb, std::move(all), m_max);
      }
    }
    if (!candidates.empty()) {
      // Closest candidate seeds the next (lower) layer's search.
      current = std::min_element(candidates.begin(), candidates.end())->node;
    }
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = node;
  }
}

void HnswIndex::speculate(Index node, Index snap_entry, Index snap_max,
                          SearchScratch& scratch, Speculation& spec) const {
  // The exact search phases of insert(), run against the frozen
  // start-of-generation graph: generation members are absent from every
  // frozen adjacency list, so the traversal only sees committed nodes
  // and is independent of the worker count and of how the generation is
  // sliced across workers.
  const Index level = node_level_[static_cast<std::size_t>(node)];
  Index current = snap_entry;
  for (Index l = snap_max; l > level; --l)
    current = greedy_closest(node, current, l);

  const Index lmin = std::min(level, snap_max);
  spec.layers.resize(static_cast<std::size_t>(lmin) + 1);
  for (Index l = lmin; l >= 0; --l) {
    spec.layers[static_cast<std::size_t>(l)] =
        search_layer(node, current, options_.ef_construction, l, scratch);
    const auto& candidates = spec.layers[static_cast<std::size_t>(l)];
    if (!candidates.empty()) {
      current = std::min_element(candidates.begin(), candidates.end())->node;
    }
  }
  spec.has = true;
}

void HnswIndex::commit(Index node, Index snap_max, const Speculation& spec,
                       SearchScratch& scratch) {
  // Size-1 generations (and an empty graph) skip the batched search: a
  // frozen-graph search with no earlier commits in the generation IS the
  // live search, so the cheaper live insert produces the same links.
  if (!spec.has) {
    insert(node, scratch);
    ++build_stats_.fallback_serial;
    return;
  }

  // The link phase of insert() driven by the recorded candidates.
  // Neighbor selection depends only on point distances, and backlink
  // shrinking only on the live lists commits maintain serially — both
  // pure functions of the commit order, which is the index order.
  const Index level = node_level_[static_cast<std::size_t>(node)];
  links_[static_cast<std::size_t>(node)].assign(
      static_cast<std::size_t>(level) + 1, {});
  for (Index l = std::min(level, snap_max); l >= 0; --l) {
    const Index m_max =
        (l == 0) ? 2 * options_.max_connections : options_.max_connections;
    std::vector<Index> chosen = select_neighbors(
        node, spec.layers[static_cast<std::size_t>(l)],
        options_.max_connections);
    links_[static_cast<std::size_t>(node)][static_cast<std::size_t>(l)] =
        chosen;
    for (const Index nb : chosen) {
      auto& back =
          links_[static_cast<std::size_t>(nb)][static_cast<std::size_t>(l)];
      back.push_back(node);
      if (to_index(back.size()) > m_max) {
        std::vector<SearchCandidate> all;
        all.reserve(back.size());
        for (const Index x : back) all.push_back({distance(nb, x), x});
        back = select_neighbors(nb, std::move(all), m_max);
      }
    }
  }
  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = node;
  }
  ++build_stats_.committed_speculative;
}

void HnswIndex::insert_batch(Index g0, Index g1, Index threads,
                             std::vector<SearchScratch>& worker_scratch,
                             std::vector<Speculation>& specs,
                             SearchScratch& scratch) {
  ++build_stats_.num_generations;
  const Index snap_entry = entry_point_;
  const Index snap_max = max_level_;

  specs.assign(static_cast<std::size_t>(g1 - g0), Speculation{});
  if (snap_entry != kInvalidIndex && g1 - g0 > 1) {
    // Pool-parallel searches against the frozen graph. The orchestrator
    // holds build_mutex_ and is blocked here, so workers read a
    // quiescent structure (the post-construction query contract). With
    // one thread this runs inline — same searches, same results.
    parallel::parallel_for_slots(
        g0, g1, threads, [&](Index lo, Index hi, Index slot) {
          SearchScratch& ws = worker_scratch[static_cast<std::size_t>(slot)];
          if (ws.visit_mark.empty()) ws = make_search_scratch();
          for (Index node = lo; node < hi; ++node)
            speculate(node, snap_entry, snap_max, ws,
                      specs[static_cast<std::size_t>(node - g0)]);
        });
  }

  // Serial commits in index order.
  for (Index node = g0; node < g1; ++node)
    commit(node, snap_max, specs[static_cast<std::size_t>(node - g0)],
           scratch);
}

void HnswIndex::build_all(Index num_threads) {
  SearchScratch scratch = make_search_scratch();
  if (num_points_ < kSerialBuildPoints) {
    // Small builds: plain live insertion. The threshold depends only on
    // N, so every thread count takes the same path.
    for (Index i = 0; i < num_points_; ++i) insert(i, scratch);
    build_stats_.fallback_serial += num_points_;
    return;
  }

  // The generation schedule is fixed by N alone; `threads` only decides
  // how each generation's searches are executed, never what they see.
  const Index threads = parallel::resolve_num_threads(num_threads);
  std::vector<SearchScratch> worker_scratch(static_cast<std::size_t>(threads));
  std::vector<Speculation> specs;
  Index g0 = 0;
  while (g0 < num_points_) {
    const Index g1 = std::min(num_points_, g0 + generation_size(g0));
    insert_batch(g0, g1, threads, worker_scratch, specs, scratch);
    g0 = g1;
  }
}

std::vector<std::pair<Real, Index>> HnswIndex::search_point(
    Index query, Index k, SearchScratch& scratch) const {
  SGL_EXPECTS(query >= 0 && query < num_points_,
              "HnswIndex::search_point: query out of range");
  SGL_EXPECTS(k >= 1, "HnswIndex::search_point: k must be positive");

  Index current = entry_point_;
  for (Index l = max_level_; l > 0; --l)
    current = greedy_closest(query, current, l);

  const Index ef = std::max(options_.ef_search, k + 1);
  std::vector<SearchCandidate> found =
      search_layer(query, current, ef, 0, scratch);
  std::sort(found.begin(), found.end());

  std::vector<std::pair<Real, Index>> out;
  out.reserve(static_cast<std::size_t>(k));
  for (const SearchCandidate& c : found) {
    if (c.node == query) continue;  // exclude self
    out.emplace_back(c.distance, c.node);
    if (to_index(out.size()) == k) break;
  }
  return out;
}

std::vector<std::pair<Real, Index>> HnswIndex::search_point(Index query,
                                                            Index k) const {
  // Reused thread-local scratch keeps repeated single queries O(1) in
  // setup (the epoch trick) instead of re-initializing an N-sized buffer
  // per call. Grow-only: marks are always ≤ the persistent epoch counter,
  // so carrying the buffer across same-thread indices stays correct.
  thread_local SearchScratch scratch;
  if (to_index(scratch.visit_mark.size()) < num_points_)
    scratch.visit_mark.resize(static_cast<std::size_t>(num_points_), -1);
  if (scratch.visit_epoch == std::numeric_limits<Index>::max()) {
    std::fill(scratch.visit_mark.begin(), scratch.visit_mark.end(), Index{-1});
    scratch.visit_epoch = 0;
  }
  return search_point(query, k, scratch);
}

KnnResult HnswIndex::knn_all(Index k, Index num_threads) const {
  SGL_EXPECTS(k >= 1 && k < num_points_, "HnswIndex::knn_all: need 1 <= k < N");
  KnnResult result;
  result.k = k;
  result.neighbor.assign(static_cast<std::size_t>(num_points_) * k,
                         kInvalidIndex);
  result.distance_squared.assign(static_cast<std::size_t>(num_points_) * k,
                                 0.0);
  // Queries are read-only on the index and each one writes its own k
  // result slots; each worker slot owns its visit scratch, so concurrent
  // queries return exactly what serial ones would.
  const Index threads = parallel::resolve_num_threads(num_threads);
  std::vector<SearchScratch> scratch(static_cast<std::size_t>(threads));
  parallel::parallel_for_slots(
      0, num_points_, threads, [&](Index lo, Index hi, Index slot) {
        SearchScratch& s = scratch[static_cast<std::size_t>(slot)];
        if (s.visit_mark.empty()) s = make_search_scratch();
        for (Index i = lo; i < hi; ++i) {
          const auto found = search_point(i, k, s);
          // A search can come back empty only on a pathological graph
          // (e.g. an unreachable entry point); check before the fill loop —
          // found.size() - 1 would wrap to SIZE_MAX on an empty result.
          SGL_ENSURES(!found.empty(),
                      "HnswIndex::knn_all: empty search result");
          // HNSW may return fewer than k hits; duplicate the last hit
          // rather than leaving holes (callers dedup via Graph edges).
          for (Index j = 0; j < k; ++j) {
            const std::size_t src =
                std::min<std::size_t>(static_cast<std::size_t>(j),
                                      found.size() - 1);
            result.neighbor[static_cast<std::size_t>(i) * k + j] =
                found[src].second;
            result.distance_squared[static_cast<std::size_t>(i) * k + j] =
                found[src].first;
          }
        }
      });
  return result;
}

KnnResult hnsw_knn(const la::DenseMatrix& points, Index k,
                   const HnswOptions& options, Index num_threads) {
  const HnswIndex index(points, options, num_threads);
  return index.knn_all(k, num_threads);
}

}  // namespace sgl::knn
