// Hierarchical Navigable Small World approximate nearest-neighbor index.
//
// From-scratch implementation of Malkov & Yashunin's HNSW (the paper's
// reference [8] for scalable kNN construction): an exponential hierarchy
// of proximity graphs searched greedily from the top layer, with
// beam-search insertion and the distance-diversified neighbor-selection
// heuristic. Deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "knn/brute_force.hpp"
#include "la/dense_matrix.hpp"

namespace sgl::knn {

struct HnswOptions {
  /// Target out-degree per layer (layer 0 allows 2·max_connections).
  Index max_connections = 16;
  /// Beam width during construction.
  Index ef_construction = 200;
  /// Beam width during queries (raised automatically to k when smaller).
  Index ef_search = 64;
  std::uint64_t seed = 42;
};

class HnswIndex {
 public:
  /// Builds the index over the rows of `points`.
  HnswIndex(const la::DenseMatrix& points, const HnswOptions& options = {});

  /// k approximate nearest neighbors of the already-indexed point `query`
  /// (self excluded), sorted by increasing distance.
  [[nodiscard]] std::vector<std::pair<Real, Index>> search_point(
      Index query, Index k) const;

  /// kNN lists for every indexed point (the kNN-graph building block).
  /// Queries run in parallel (`num_threads` 0 = library default, 1 =
  /// serial) with per-worker visit scratch; every query is independent of
  /// the others, so the result is identical for any thread count.
  [[nodiscard]] KnnResult knn_all(Index k, Index num_threads = 0) const;

  [[nodiscard]] Index num_points() const noexcept { return num_points_; }
  [[nodiscard]] Index max_level() const noexcept { return max_level_; }

 private:
  struct SearchCandidate {
    Real distance;
    Index node;
    bool operator<(const SearchCandidate& o) const {
      return distance < o.distance;
    }
    bool operator>(const SearchCandidate& o) const {
      return distance > o.distance;
    }
  };

  /// Epoch-marked visited set for one beam search. Each concurrent query
  /// owns its own scratch — thread_local in the single-query entry point,
  /// one instance per worker slot in knn_all — which is what makes
  /// search_layer (and therefore batched knn_all queries) safe to run in
  /// parallel. There is deliberately no mutex here: the concurrency
  /// contract is exclusive ownership, exercised under TSan by the
  /// `stress`-labeled hammer tests (DESIGN.md §7).
  struct SearchScratch {
    std::vector<Index> visit_mark;  // last epoch each node was visited in
    Index visit_epoch = 0;
  };

  /// Fresh scratch sized for this index (all marks unvisited).
  [[nodiscard]] SearchScratch make_search_scratch() const {
    return {std::vector<Index>(static_cast<std::size_t>(num_points_), -1), 0};
  }

  [[nodiscard]] Real distance(Index a, Index b) const {
    return point_distance_squared(data_, dim_, a, b);
  }

  /// Neighbor slice of `node` at `level`.
  [[nodiscard]] const std::vector<Index>& neighbors(Index node,
                                                    Index level) const {
    return links_[static_cast<std::size_t>(node)][static_cast<std::size_t>(level)];
  }

  /// Greedy descent at one level: returns the local minimum from `start`.
  [[nodiscard]] Index greedy_closest(Index query, Index start,
                                     Index level) const;

  /// Beam search at one level; returns up to `ef` closest candidates
  /// (max-heap order not guaranteed). Mutates only `scratch`.
  [[nodiscard]] std::vector<SearchCandidate> search_layer(
      Index query, Index start, Index ef, Index level,
      SearchScratch& scratch) const;

  /// search_point against caller-owned scratch (the concurrent variant).
  [[nodiscard]] std::vector<std::pair<Real, Index>> search_point(
      Index query, Index k, SearchScratch& scratch) const;

  /// Neighbor-selection heuristic (keep candidates closer to the query
  /// than to any already-kept neighbor).
  [[nodiscard]] std::vector<Index> select_neighbors(
      Index query, std::vector<SearchCandidate> candidates, Index m) const;

  void insert(Index node);

  Index num_points_ = 0;
  Index dim_ = 0;
  std::vector<Real> data_;  // row-major points
  HnswOptions options_;
  Real level_multiplier_ = 0.0;
  Index entry_point_ = kInvalidIndex;
  Index max_level_ = -1;
  std::vector<Index> node_level_;
  // links_[node][level] = neighbor list.
  std::vector<std::vector<std::vector<Index>>> links_;
  Rng rng_;
  // Mutated only during the (serial, single-threaded) construction phase;
  // after the constructor returns the index is immutable and every member
  // is safe to read concurrently.
  SearchScratch insert_scratch_;
};

/// Convenience wrapper mirroring brute_force_knn. Construction is serial
/// (deterministic given the seed); the batched queries use `num_threads`.
[[nodiscard]] KnnResult hnsw_knn(const la::DenseMatrix& points, Index k,
                                 const HnswOptions& options = {},
                                 Index num_threads = 0);

}  // namespace sgl::knn
