// Hierarchical Navigable Small World approximate nearest-neighbor index.
//
// From-scratch implementation of Malkov & Yashunin's HNSW (the paper's
// reference [8] for scalable kNN construction): an exponential hierarchy
// of proximity graphs searched greedily from the top layer, with
// beam-search insertion and the distance-diversified neighbor-selection
// heuristic. Deterministic given the seed.
//
// Construction is generation-batched (DESIGN.md §9): points are
// partitioned into generations by insertion order (a pure function of N
// alone); a generation's candidate searches run on the pool against the
// frozen previous-generation graph (per-worker scratch), then links are
// committed serially in index order. Because the generation schedule,
// the frozen-graph searches, and the commit order never depend on the
// worker count, the constructed graph is bitwise-identical — edge for
// edge — for every thread count, including 1. Level draws are a pure
// function of the point index and the seed (precomputed in one pass).
#pragma once

#include <cstdint>
#include <vector>

#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "knn/brute_force.hpp"
#include "la/dense_matrix.hpp"

namespace sgl::knn {

struct HnswOptions {
  /// Target out-degree per layer (layer 0 allows 2·max_connections).
  Index max_connections = 16;
  /// Beam width during construction.
  Index ef_construction = 200;
  /// Beam width during queries (raised automatically to k when smaller).
  Index ef_search = 64;
  std::uint64_t seed = 42;
};

/// Construction-phase statistics (benchmarks, tests, --verbose).
struct HnswBuildStats {
  /// Insertion generations the build was partitioned into.
  Index num_generations = 0;
  /// Inserts whose candidate searches ran batched against the frozen
  /// previous-generation graph (the pool-parallel path).
  Index committed_speculative = 0;
  /// Inserts performed live against the current graph (the whole build
  /// below the batch threshold, plus size-1 generations, where a live
  /// insert and a frozen-graph one coincide).
  Index fallback_serial = 0;
};

class HnswIndex {
 public:
  /// Builds the index over the rows of `points`. `num_threads` workers
  /// run the generation-batched construction (0 = library default); the
  /// graph is bitwise-identical for every value, including 1.
  HnswIndex(const la::DenseMatrix& points, const HnswOptions& options = {},
            Index num_threads = 1);

  /// k approximate nearest neighbors of the already-indexed point `query`
  /// (self excluded), sorted by increasing distance.
  [[nodiscard]] std::vector<std::pair<Real, Index>> search_point(
      Index query, Index k) const;

  /// kNN lists for every indexed point (the kNN-graph building block).
  /// Queries run in parallel (`num_threads` 0 = library default, 1 =
  /// serial) with per-worker visit scratch; every query is independent of
  /// the others, so the result is identical for any thread count.
  [[nodiscard]] KnnResult knn_all(Index k, Index num_threads = 0) const;

  [[nodiscard]] Index num_points() const noexcept { return num_points_; }
  [[nodiscard]] Index max_level() const noexcept { return max_level_; }
  [[nodiscard]] Index entry_point() const noexcept { return entry_point_; }
  [[nodiscard]] const HnswBuildStats& build_stats() const noexcept {
    return build_stats_;
  }
  /// Hierarchy level of an indexed node (a pure function of the node
  /// index and the seed).
  [[nodiscard]] Index level_of(Index node) const {
    return node_level_[static_cast<std::size_t>(node)];
  }
  /// Adjacency list of `node` at `level` — the constructed graph's
  /// edges, exposed for edge-for-edge determinism tests and tooling.
  [[nodiscard]] const std::vector<Index>& links(Index node,
                                                Index level) const {
    return links_[static_cast<std::size_t>(node)][static_cast<std::size_t>(level)];
  }

 private:
  struct SearchCandidate {
    Real distance;
    Index node;
    bool operator<(const SearchCandidate& o) const {
      return distance < o.distance;
    }
    bool operator>(const SearchCandidate& o) const {
      return distance > o.distance;
    }
  };

  /// Epoch-marked visited set for one beam search. Each concurrent
  /// caller owns its own scratch — thread_local in the single-query
  /// entry point, one instance per worker slot in knn_all and in the
  /// parallel construction's speculation phase (there is no shared
  /// insert scratch on the object; insertion takes its scratch as a
  /// parameter, so it is reentrant) — which is what makes search_layer
  /// safe to run in parallel. There is deliberately no mutex here: the
  /// concurrency contract is exclusive ownership, exercised under TSan
  /// by the `stress`-labeled hammer tests (DESIGN.md §7).
  struct SearchScratch {
    std::vector<Index> visit_mark;  // last epoch each node was visited in
    Index visit_epoch = 0;
  };

  /// Fresh scratch sized for this index (all marks unvisited).
  [[nodiscard]] SearchScratch make_search_scratch() const {
    return {std::vector<Index>(static_cast<std::size_t>(num_points_), -1), 0};
  }

  [[nodiscard]] Real distance(Index a, Index b) const {
    return point_distance_squared(data_, dim_, a, b);
  }

  /// Neighbor slice of `node` at `level`.
  [[nodiscard]] const std::vector<Index>& neighbors(Index node,
                                                    Index level) const {
    return links_[static_cast<std::size_t>(node)][static_cast<std::size_t>(level)];
  }

  /// Greedy descent at one level: returns the local minimum from `start`.
  [[nodiscard]] Index greedy_closest(Index query, Index start,
                                     Index level) const;

  /// Beam search at one level; returns up to `ef` closest candidates
  /// (max-heap order not guaranteed). Mutates only `scratch`.
  [[nodiscard]] std::vector<SearchCandidate> search_layer(
      Index query, Index start, Index ef, Index level,
      SearchScratch& scratch) const;

  /// search_point against caller-owned scratch (the concurrent variant).
  [[nodiscard]] std::vector<std::pair<Real, Index>> search_point(
      Index query, Index k, SearchScratch& scratch) const;

  /// Neighbor-selection heuristic (keep candidates closer to the query
  /// than to any already-kept neighbor).
  [[nodiscard]] std::vector<Index> select_neighbors(
      Index query, std::vector<SearchCandidate> candidates, Index m) const;

  /// One batched insert: the candidate sets of the link phase, computed
  /// against the frozen start-of-generation graph.
  struct Speculation {
    /// layers[l] = search_layer result for layer l (0..min(level, the
    /// frozen max level)).
    std::vector<std::vector<SearchCandidate>> layers;
    bool has = false;  // batched search ran (graph was non-empty)
  };

  // --- Construction (DESIGN.md §9). --------------------------------------
  // All graph mutation happens under build_mutex_, which the constructor
  // holds for the whole build; the speculation phases read the frozen
  // graph from pool workers WITHOUT the mutex (the orchestrator is
  // blocked, so nothing mutates concurrently — the same lock-free-read
  // contract the post-construction query path relies on). links_,
  // entry_point_ and max_level_ are therefore deliberately NOT
  // GUARDED_BY: annotating them would poison every unlocked reader.

  /// Live-inserts `node` into the current graph (level already drawn in
  /// node_level_).
  void insert(Index node, SearchScratch& scratch) SGL_REQUIRES(build_mutex_);
  /// Runs `node`'s candidate searches against the frozen graph into
  /// `spec` (the generation-batched search phase).
  void speculate(Index node, Index snap_entry, Index snap_max,
                 SearchScratch& scratch, Speculation& spec) const;
  /// Links one batched insert in serial index order from its recorded
  /// candidates (neighbor selection, backlinks, shrink, entry update) —
  /// the same link phase as insert(), minus the searches.
  void commit(Index node, Index snap_max, const Speculation& spec,
              SearchScratch& scratch) SGL_REQUIRES(build_mutex_);
  /// One generation [g0, g1): pool-parallel frozen-graph searches, then
  /// serial commits.
  void insert_batch(Index g0, Index g1, Index threads,
                    std::vector<SearchScratch>& worker_scratch,
                    std::vector<Speculation>& specs, SearchScratch& scratch)
      SGL_REQUIRES(build_mutex_);
  /// Whole-index build: live serial insertion below the batch threshold,
  /// otherwise the generation schedule — identical at every thread count
  /// (generation sizes grow with the committed prefix, so early inserts,
  /// whose searches are cheap, stay near-serial while the expensive tail
  /// batches widely).
  void build_all(Index num_threads) SGL_REQUIRES(build_mutex_);

  Index num_points_ = 0;
  Index dim_ = 0;
  std::vector<Real> data_;  // row-major points
  HnswOptions options_;
  Real level_multiplier_ = 0.0;
  Index entry_point_ = kInvalidIndex;
  Index max_level_ = -1;
  std::vector<Index> node_level_;
  // links_[node][level] = neighbor list.
  std::vector<std::vector<std::vector<Index>>> links_;
  Rng rng_;
  /// Serializes graph mutation during construction. After the
  /// constructor returns the index is immutable and every member is safe
  /// to read concurrently without it.
  common::Mutex build_mutex_;
  HnswBuildStats build_stats_;
};

/// Convenience wrapper mirroring brute_force_knn. Construction and the
/// batched queries both use `num_threads`; the result is identical for
/// any thread count.
[[nodiscard]] KnnResult hnsw_knn(const la::DenseMatrix& points, Index k,
                                 const HnswOptions& options = {},
                                 Index num_threads = 0);

}  // namespace sgl::knn
