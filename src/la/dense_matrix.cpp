#include "la/dense_matrix.hpp"

namespace sgl::la {

DenseMatrix gram(const DenseMatrix& a) {
  const Index n = a.cols();
  DenseMatrix c(n, n);
  for (Index j = 0; j < n; ++j) {
    const auto cj = a.col(j);
    for (Index i = 0; i <= j; ++i) {
      const auto ci = a.col(i);
      Real acc = 0.0;
      for (Index k = 0; k < a.rows(); ++k) acc += ci[k] * cj[k];
      c(i, j) = acc;
      c(j, i) = acc;
    }
  }
  return c;
}

DenseMatrix matmul(const DenseMatrix& a, const DenseMatrix& b) {
  SGL_EXPECTS(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  DenseMatrix c(a.rows(), b.cols());
  for (Index j = 0; j < b.cols(); ++j) {
    auto cj = c.col(j);
    const auto bj = b.col(j);
    for (Index k = 0; k < a.cols(); ++k) {
      const Real bkj = bj[k];
      if (bkj == 0.0) continue;
      const auto ak = a.col(k);
      for (Index i = 0; i < a.rows(); ++i) cj[i] += ak[i] * bkj;
    }
  }
  return c;
}

}  // namespace sgl::la
