// Dense vector type and BLAS-1 style helpers.
//
// A vector is simply std::vector<Real>; the free functions below provide
// the handful of kernels the rest of the library needs (dot products,
// norms, axpy, centering). Keeping the type a plain std::vector makes the
// public API trivially interoperable with user code.
#pragma once

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace sgl::la {

using Vector = std::vector<Real>;

/// Dot product <x, y>. Sizes must match.
[[nodiscard]] inline Real dot(const Vector& x, const Vector& y) {
  SGL_EXPECTS(x.size() == y.size(), "dot: size mismatch");
  Real acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

/// Squared Euclidean norm.
[[nodiscard]] inline Real norm2_squared(const Vector& x) {
  Real acc = 0.0;
  for (const Real v : x) acc += v * v;
  return acc;
}

/// Euclidean norm.
[[nodiscard]] inline Real norm2(const Vector& x) {
  return std::sqrt(norm2_squared(x));
}

/// Infinity norm.
[[nodiscard]] inline Real norm_inf(const Vector& x) {
  Real acc = 0.0;
  for (const Real v : x) acc = std::max(acc, std::abs(v));
  return acc;
}

/// y += alpha * x.
inline void axpy(Real alpha, const Vector& x, Vector& y) {
  SGL_EXPECTS(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// x *= alpha.
inline void scale(Vector& x, Real alpha) {
  for (Real& v : x) v *= alpha;
}

/// Arithmetic mean of the entries (0 for empty input).
[[nodiscard]] inline Real mean(const Vector& x) {
  if (x.empty()) return 0.0;
  Real acc = 0.0;
  for (const Real v : x) acc += v;
  return acc / static_cast<Real>(x.size());
}

/// Subtracts the mean so the result is orthogonal to the all-ones vector.
inline void center(Vector& x) {
  const Real m = mean(x);
  for (Real& v : x) v -= m;
}

/// Normalizes to unit Euclidean length; returns the original norm.
/// A zero vector is left unchanged and 0 is returned.
inline Real normalize(Vector& x) {
  const Real n = norm2(x);
  if (n > 0.0) scale(x, 1.0 / n);
  return n;
}

/// Squared Euclidean distance between two vectors.
[[nodiscard]] inline Real distance_squared(const Vector& x, const Vector& y) {
  SGL_EXPECTS(x.size() == y.size(), "distance_squared: size mismatch");
  Real acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const Real d = x[i] - y[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace sgl::la
