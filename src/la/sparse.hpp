// Sparse matrix storage: triplet (COO) assembly and CSR kernels.
//
// CsrMatrix is the workhorse for Laplacians, preconditioners and Galerkin
// coarse operators. Duplicate triplets are summed during assembly, matching
// finite-element / circuit-stamping conventions.
#pragma once

#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"
#include "la/vector_ops.hpp"

namespace sgl::la {

class CsrMatrix;

namespace detail {

/// Row count below which the SpMV kernels stay serial (pool dispatch costs
/// more than the loop). A scheduling threshold only for the gather kernel;
/// for the transposed scatter it also selects between the serial per-entry
/// sum and the fixed-chunk combine.
inline constexpr Index kSpmvSerialRows = 4096;

/// Fixed chunk count for the transposed-scatter reduction; depends on
/// nothing but this constant so results never vary with the thread count.
inline constexpr Index kSpmvTransposeChunks = 32;

/// Y = Aᵀ X for a block of b columns packed ROW-major (one contiguous
/// b-strip per row: x is rows×b, y is cols×b and is overwritten). Each
/// column runs the EXACT CsrMatrix::multiply_transposed algorithm —
/// per-row zero skip, ascending-row scatter, and above kSpmvSerialRows
/// the fixed-chunk ordered combine — so column c of the result is
/// bitwise equal to multiply_transposed on that column alone, for every
/// thread count and block width. Lives here (not in multi_vector) so the
/// scalar and block scatters evolve in lockstep; the AMG block V-cycle's
/// restriction relies on that for its bitwise contract.
void spmm_transposed_row_major(const CsrMatrix& a, const Real* x, Real* y,
                               Index b, Index num_threads);

}  // namespace detail

/// One (row, col, value) entry of a matrix under assembly.
struct Triplet {
  Index row = 0;
  Index col = 0;
  Real value = 0.0;
};

/// Compressed-sparse-row matrix with sorted column indices per row.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Assembles from triplets; duplicates are summed, rows end up with
  /// strictly increasing column indices. Entries that sum to exactly zero
  /// are kept (structural nonzeros), which factorization codes rely on.
  static CsrMatrix from_triplets(Index rows, Index cols,
                                 const std::vector<Triplet>& triplets);

  /// Identity matrix of order n.
  static CsrMatrix identity(Index n);

  [[nodiscard]] Index rows() const noexcept { return rows_; }
  [[nodiscard]] Index cols() const noexcept { return cols_; }
  [[nodiscard]] Index nnz() const noexcept { return to_index(values_.size()); }

  [[nodiscard]] const std::vector<Index>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<Index>& col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<Real>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::vector<Real>& values() noexcept { return values_; }

  /// Value at (i, j); 0 if the entry is not stored. O(log nnz(i)).
  [[nodiscard]] Real at(Index i, Index j) const;

  /// y = A x. `num_threads` follows the library convention (0 = default,
  /// 1 = serial); rows are chunked across workers and every y[i] is a
  /// fixed-order sum over the row's nonzeros, so the result is
  /// bit-identical for every thread count. Small matrices stay serial.
  void multiply(const Vector& x, Vector& y, Index num_threads = 1) const;
  [[nodiscard]] Vector multiply(const Vector& x, Index num_threads = 1) const {
    Vector y(static_cast<std::size_t>(rows_));
    multiply(x, y, num_threads);
    return y;
  }

  /// y = Aᵀ x. Row-chunked scatter with chunk partials combined in fixed
  /// chunk order: the chunk boundaries depend only on the matrix size,
  /// never on `num_threads`, so the result is bit-identical for every
  /// thread count (though the large-matrix chunked sum may differ from the
  /// small-matrix serial sum by rounding, the crossover depends only on
  /// the matrix shape).
  [[nodiscard]] Vector multiply_transposed(const Vector& x,
                                           Index num_threads = 1) const;

  /// xᵀ A x (A symmetric or not — plain quadratic form).
  [[nodiscard]] Real quadratic_form(const Vector& x) const;

  /// Diagonal entries as a vector (0 where absent).
  [[nodiscard]] Vector diagonal() const;

  /// Aᵀ in CSR form.
  [[nodiscard]] CsrMatrix transposed() const;

  /// Scales all stored values by alpha.
  void scale(Real alpha) {
    for (Real& v : values_) v *= alpha;
  }

  /// True if the sparsity pattern and values are symmetric to tolerance.
  [[nodiscard]] bool is_symmetric(Real tol = 1e-12) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> row_ptr_;  // size rows_ + 1
  std::vector<Index> col_idx_;  // size nnz
  std::vector<Real> values_;    // size nnz

  friend CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b);
  friend CsrMatrix add(const CsrMatrix& a, const CsrMatrix& b, Real alpha,
                       Real beta);
};

/// C = A B (row-wise gather SpGEMM with a dense accumulator).
[[nodiscard]] CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b);

/// C = alpha A + beta B (same shape).
[[nodiscard]] CsrMatrix add(const CsrMatrix& a, const CsrMatrix& b,
                            Real alpha = 1.0, Real beta = 1.0);

}  // namespace sgl::la
