// Small dense symmetric solves (used for AMG coarsest grids and tests).
#pragma once

#include "la/dense_matrix.hpp"
#include "la/vector_ops.hpp"

namespace sgl::la {

/// In-place LDLᵀ factorization of a symmetric positive-(semi)definite
/// matrix stored densely. Returns the factor packed into `a` (unit lower
/// triangle of L below the diagonal, D on the diagonal).
///
/// Pivots smaller than `shift_floor * max_diag` are clamped to that value,
/// which regularizes semidefinite inputs (e.g. grounded Laplacians of
/// barely-connected coarse grids) instead of failing.
void dense_ldlt_factor(DenseMatrix& a, Real shift_floor = 1e-14);

/// Solves L D Lᵀ x = b given a factor from dense_ldlt_factor.
[[nodiscard]] Vector dense_ldlt_solve(const DenseMatrix& factor,
                                      const Vector& b);

}  // namespace sgl::la
