#include "la/multi_vector.hpp"

#include <algorithm>
#include <cmath>

#include "common/parallel.hpp"
#include "common/simd.hpp"

namespace sgl::la {

namespace {

/// Row count below which the row-chunked kernels stay serial: pool
/// dispatch costs more than the loop for small blocks. Purely a scheduling
/// threshold — the computed values are identical either way.
constexpr Index kSerialRows = 256;

}  // namespace

void spmm(const CsrMatrix& a, ConstBlockView x, BlockView y,
          Index num_threads) {
  SGL_EXPECTS(x.rows == a.cols(), "spmm: inner dimension mismatch");
  SGL_EXPECTS(y.rows == a.rows() && y.cols == x.cols,
              "spmm: output shape mismatch");
  const Index b = x.cols;
  if (b == 0 || a.rows() == 0) return;
  const std::vector<Index>& row_ptr = a.row_ptr();
  const std::vector<Index>& col_idx = a.col_idx();
  const std::vector<Real>& values = a.values();

  // Columns are processed in groups of ≤ kGroup. Within a group the
  // operands are packed row-major (group-width contiguous strips per
  // matrix row), so every gathered nonzero touches one ≤64-byte strip
  // instead of b cache lines strided by the leading dimension — that,
  // plus streaming A's nonzeros once per group instead of once per
  // column, is what makes the blocked apply beat b sequential SpMVs.
  // Wider groups would stride the packed rows past a cache line and lose
  // the gather locality again (measured ~2× slower at width 16). The
  // packing passes are O(n·group), negligible against the O(nnz·group)
  // kernel.
  constexpr Index kGroup = 8;
  const Index threads = a.rows() < kSerialRows ? 1 : num_threads;
  // Cache-line-aligned packing buffers: an 8-wide Real strip is exactly
  // one 64-byte line, so the kernel's strip loads are single aligned
  // vector accesses (DESIGN.md §9).
  Storage x_rm(static_cast<std::size_t>(x.rows) * kGroup);
  Storage y_rm(static_cast<std::size_t>(y.rows) * kGroup);

  for (Index g0 = 0; g0 < b; g0 += kGroup) {
    const Index gw = std::min<Index>(kGroup, b - g0);
    const std::size_t gs = static_cast<std::size_t>(gw);

    parallel::parallel_for_slots(
        0, x.rows, threads, [&](Index lo, Index hi, Index /*slot*/) {
          // i-outer: contiguous writes, gw strided read streams.
          for (Index i = lo; i < hi; ++i) {
            Real* dst = x_rm.data() + static_cast<std::size_t>(i) * gs;
            for (Index j = 0; j < gw; ++j)
              dst[j] = x.data[static_cast<std::size_t>(g0 + j) * x.rows +
                              static_cast<std::size_t>(i)];
          }
        });

    // Every y(i, j) is a fixed-order sum over the row's nonzeros, so
    // chunking cannot change the result. The tile width is a compile-time
    // constant (8, then 4/2/1 for the tail) so the accumulators live in
    // registers and the inner loop vectorizes — with a runtime trip count
    // they spill to the stack and the kernel runs ~3× slower than the
    // per-column SpMV it must beat.
    const auto kernel_pass = [&]<int TILE>(Index j0, Index lo, Index hi) {
      // The restrict qualifiers assert what the packing pass guarantees
      // (x_rm and y_rm are distinct buffers), letting the accumulators
      // stay in registers across the gather loop.
      const Real* SGL_RESTRICT xp = x_rm.data();
      Real* SGL_RESTRICT yp = y_rm.data();
      for (Index i = lo; i < hi; ++i) {
        const Index k_lo = row_ptr[static_cast<std::size_t>(i)];
        const Index k_hi = row_ptr[static_cast<std::size_t>(i) + 1];
        Real acc[TILE] = {};
        for (Index k = k_lo; k < k_hi; ++k) {
          const Real av = values[static_cast<std::size_t>(k)];
          const Real* SGL_RESTRICT xr =
              xp +
              static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)]) *
                  gs +
              static_cast<std::size_t>(j0);
          for (int jj = 0; jj < TILE; ++jj) acc[jj] += av * xr[jj];
        }
        Real* SGL_RESTRICT yr =
            yp + static_cast<std::size_t>(i) * gs + static_cast<std::size_t>(j0);
        for (int jj = 0; jj < TILE; ++jj) yr[jj] = acc[jj];
      }
    };
    parallel::parallel_for_slots(
        0, a.rows(), threads, [&](Index lo, Index hi, Index /*slot*/) {
          Index j0 = 0;
          for (; j0 + 8 <= gw; j0 += 8) kernel_pass.operator()<8>(j0, lo, hi);
          if (j0 + 4 <= gw) {
            kernel_pass.operator()<4>(j0, lo, hi);
            j0 += 4;
          }
          if (j0 + 2 <= gw) {
            kernel_pass.operator()<2>(j0, lo, hi);
            j0 += 2;
          }
          if (j0 < gw) kernel_pass.operator()<1>(j0, lo, hi);
        });

    parallel::parallel_for_slots(
        0, y.rows, threads, [&](Index lo, Index hi, Index /*slot*/) {
          // i-outer: contiguous reads, gw strided write streams.
          for (Index i = lo; i < hi; ++i) {
            const Real* src = y_rm.data() + static_cast<std::size_t>(i) * gs;
            for (Index j = 0; j < gw; ++j)
              y.data[static_cast<std::size_t>(g0 + j) * y.rows +
                     static_cast<std::size_t>(i)] = src[j];
          }
        });
  }
}

DenseMatrix block_inner(ConstBlockView v, ConstBlockView w, Index num_threads) {
  SGL_EXPECTS(v.rows == w.rows, "block_inner: row count mismatch");
  DenseMatrix c(v.cols, w.cols);
  const Index entries = v.cols * w.cols;
  if (entries == 0) return c;
  const Index n = v.rows;
  const Index threads = n < kSerialRows ? 1 : num_threads;
  parallel::parallel_for(0, entries, threads, [&](Index e) {
    const Index j = e / v.cols;  // column of W
    const Index i = e % v.cols;  // column of V
    const std::span<const Real> vi = v.col(i);
    const std::span<const Real> wj = w.col(j);
    Real acc = 0.0;
    for (Index k = 0; k < n; ++k)
      acc += vi[static_cast<std::size_t>(k)] * wj[static_cast<std::size_t>(k)];
    c(i, j) = acc;
  });
  return c;
}

void block_product(ConstBlockView v, const DenseMatrix& c, BlockView out,
                   Index num_threads) {
  SGL_EXPECTS(v.cols == c.rows(), "block_product: inner dimension mismatch");
  SGL_EXPECTS(out.rows == v.rows && out.cols == c.cols(),
              "block_product: output shape mismatch");
  if (out.rows == 0 || out.cols == 0) return;
  const Index threads = v.rows < kSerialRows ? 1 : num_threads;
  // Row-chunked; within a chunk the k-loop runs column-contiguously over V
  // and in a fixed order per output element.
  parallel::parallel_for_slots(
      0, v.rows, threads, [&](Index lo, Index hi, Index /*slot*/) {
        for (Index j = 0; j < c.cols(); ++j) {
          const std::span<Real> oj = out.col(j);
          for (Index i = lo; i < hi; ++i) oj[static_cast<std::size_t>(i)] = 0.0;
          for (Index k = 0; k < v.cols; ++k) {
            const Real ckj = c(k, j);
            if (ckj == 0.0) continue;
            const std::span<const Real> vk = v.col(k);
            for (Index i = lo; i < hi; ++i)
              oj[static_cast<std::size_t>(i)] +=
                  vk[static_cast<std::size_t>(i)] * ckj;
          }
        }
      });
}

void block_subtract(BlockView w, ConstBlockView v, const DenseMatrix& c,
                    Index num_threads) {
  SGL_EXPECTS(v.cols == c.rows(), "block_subtract: inner dimension mismatch");
  SGL_EXPECTS(w.rows == v.rows && w.cols == c.cols(),
              "block_subtract: output shape mismatch");
  if (w.rows == 0 || w.cols == 0 || v.cols == 0) return;
  const Index threads = v.rows < kSerialRows ? 1 : num_threads;
  parallel::parallel_for_slots(
      0, v.rows, threads, [&](Index lo, Index hi, Index /*slot*/) {
        for (Index j = 0; j < c.cols(); ++j) {
          const std::span<Real> wj = w.col(j);
          for (Index k = 0; k < v.cols; ++k) {
            const Real ckj = c(k, j);
            if (ckj == 0.0) continue;
            const std::span<const Real> vk = v.col(k);
            for (Index i = lo; i < hi; ++i)
              wj[static_cast<std::size_t>(i)] -=
                  vk[static_cast<std::size_t>(i)] * ckj;
          }
        }
      });
}

void block_axpy(const Vector& alpha, ConstBlockView x, BlockView y,
                Index num_threads) {
  SGL_EXPECTS(to_index(alpha.size()) == x.cols,
              "block_axpy: coefficient count mismatch");
  SGL_EXPECTS(x.rows == y.rows && x.cols == y.cols,
              "block_axpy: shape mismatch");
  const Index threads = x.rows < kSerialRows ? 1 : num_threads;
  parallel::parallel_for(0, x.cols, threads, [&](Index j) {
    const Real a = alpha[static_cast<std::size_t>(j)];
    const std::span<const Real> xj = x.col(j);
    const std::span<Real> yj = y.col(j);
    for (Index i = 0; i < x.rows; ++i)
      yj[static_cast<std::size_t>(i)] += a * xj[static_cast<std::size_t>(i)];
  });
}

void block_xpby(ConstBlockView x, const Vector& beta, BlockView y,
                Index num_threads) {
  SGL_EXPECTS(to_index(beta.size()) == x.cols,
              "block_xpby: coefficient count mismatch");
  SGL_EXPECTS(x.rows == y.rows && x.cols == y.cols,
              "block_xpby: shape mismatch");
  const Index threads = x.rows < kSerialRows ? 1 : num_threads;
  parallel::parallel_for(0, x.cols, threads, [&](Index j) {
    const Real b = beta[static_cast<std::size_t>(j)];
    const std::span<const Real> xj = x.col(j);
    const std::span<Real> yj = y.col(j);
    for (Index i = 0; i < x.rows; ++i)
      yj[static_cast<std::size_t>(i)] =
          xj[static_cast<std::size_t>(i)] + b * yj[static_cast<std::size_t>(i)];
  });
}

Vector column_dots(ConstBlockView x, ConstBlockView y, Index num_threads) {
  SGL_EXPECTS(x.rows == y.rows && x.cols == y.cols,
              "column_dots: shape mismatch");
  Vector d(static_cast<std::size_t>(x.cols), 0.0);
  const Index threads = x.rows < kSerialRows ? 1 : num_threads;
  parallel::parallel_for(0, x.cols, threads, [&](Index j) {
    const std::span<const Real> xj = x.col(j);
    const std::span<const Real> yj = y.col(j);
    Real acc = 0.0;
    for (Index i = 0; i < x.rows; ++i)
      acc += xj[static_cast<std::size_t>(i)] * yj[static_cast<std::size_t>(i)];
    d[static_cast<std::size_t>(j)] = acc;
  });
  return d;
}

Vector column_norms(ConstBlockView x, Index num_threads) {
  Vector d = column_dots(x, x, num_threads);
  for (Real& v : d) v = std::sqrt(v);
  return d;
}

void center_columns(BlockView x, Index num_threads) {
  if (x.rows == 0) return;
  const Index threads = x.rows < kSerialRows ? 1 : num_threads;
  parallel::parallel_for(0, x.cols, threads, [&](Index j) {
    const std::span<Real> xj = x.col(j);
    Real acc = 0.0;
    for (Index i = 0; i < x.rows; ++i) acc += xj[static_cast<std::size_t>(i)];
    const Real m = acc / static_cast<Real>(x.rows);
    for (Index i = 0; i < x.rows; ++i) xj[static_cast<std::size_t>(i)] -= m;
  });
}

Vector column_means(ConstBlockView x, Index num_threads) {
  SGL_EXPECTS(x.rows > 0, "column_means: need at least one row");
  Vector m(static_cast<std::size_t>(x.cols), 0.0);
  const Index threads = x.rows < kSerialRows ? 1 : num_threads;
  parallel::parallel_for(0, x.cols, threads, [&](Index j) {
    const std::span<const Real> xj = x.col(j);
    Real acc = 0.0;
    for (Index i = 0; i < x.rows; ++i) acc += xj[static_cast<std::size_t>(i)];
    m[static_cast<std::size_t>(j)] = acc / static_cast<Real>(x.rows);
  });
  return m;
}

void shift_columns(BlockView x, const Vector& delta, Index num_threads) {
  SGL_EXPECTS(to_index(delta.size()) == x.cols,
              "shift_columns: delta count mismatch");
  const Index threads = x.rows < kSerialRows ? 1 : num_threads;
  parallel::parallel_for(0, x.cols, threads, [&](Index j) {
    const Real d = delta[static_cast<std::size_t>(j)];
    const std::span<Real> xj = x.col(j);
    for (Index i = 0; i < x.rows; ++i) xj[static_cast<std::size_t>(i)] -= d;
  });
}

void gather_rows(ConstBlockView x, std::span<const Index> rows, BlockView out,
                 Index num_threads) {
  SGL_EXPECTS(to_index(rows.size()) == out.rows,
              "gather_rows: row map size mismatch");
  SGL_EXPECTS(x.cols == out.cols, "gather_rows: column count mismatch");
  const Index threads = out.rows < kSerialRows ? 1 : num_threads;
  parallel::parallel_for(0, out.cols, threads, [&](Index j) {
    const std::span<const Real> xj = x.col(j);
    const std::span<Real> oj = out.col(j);
    for (Index i = 0; i < out.rows; ++i) {
      oj[static_cast<std::size_t>(i)] =
          xj[static_cast<std::size_t>(rows[static_cast<std::size_t>(i)])];
    }
  });
}

void scatter_rows(ConstBlockView x, std::span<const Index> rows, BlockView out,
                  Index num_threads) {
  SGL_EXPECTS(to_index(rows.size()) == x.rows,
              "scatter_rows: row map size mismatch");
  SGL_EXPECTS(x.cols == out.cols, "scatter_rows: column count mismatch");
  const Index threads = x.rows < kSerialRows ? 1 : num_threads;
  parallel::parallel_for(0, x.cols, threads, [&](Index j) {
    const std::span<const Real> xj = x.col(j);
    const std::span<Real> oj = out.col(j);
    for (Index i = 0; i < x.rows; ++i) {
      oj[static_cast<std::size_t>(rows[static_cast<std::size_t>(i)])] =
          xj[static_cast<std::size_t>(i)];
    }
  });
}

}  // namespace sgl::la
