// Column-major dense matrix.
//
// DenseMatrix stores measurement matrices (X, Y ∈ R^{N×M}), eigenvector
// blocks, and small dense systems. Column-major layout makes "one
// measurement = one contiguous column" and keeps per-column solves
// cache-friendly.
#pragma once

#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "common/simd.hpp"
#include "common/types.hpp"
#include "la/vector_ops.hpp"

namespace sgl::la {

/// Backing storage of the dense block types (DenseMatrix, MultiVector)
/// and the factor panels: a std::vector with 64-byte (cache-line /
/// AVX-512) aligned data, so the row-major 8-wide strips the tiled
/// kernels stream are single aligned vector loads (DESIGN.md §9).
/// la::Vector deliberately stays a plain std::vector<Real> — the scalar
/// paths gain nothing from alignment and the type is pervasive.
using Storage = std::vector<Real, common::AlignedAllocator<Real>>;

class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows × cols matrix, zero-initialized.
  DenseMatrix(Index rows, Index cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              0.0) {
    SGL_EXPECTS(rows >= 0 && cols >= 0, "DenseMatrix: negative dimension");
  }

  /// Adopts existing column-major storage without initializing it (the
  /// MultiVector conversions use this to move buffers instead of
  /// zero-filling one that is immediately overwritten).
  static DenseMatrix from_storage(Index rows, Index cols, Storage data) {
    SGL_EXPECTS(rows >= 0 && cols >= 0, "from_storage: negative dimension");
    SGL_EXPECTS(data.size() == static_cast<std::size_t>(rows) *
                                   static_cast<std::size_t>(cols),
                "from_storage: storage size mismatch");
    DenseMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = std::move(data);
    return m;
  }

  [[nodiscard]] Index rows() const noexcept { return rows_; }
  [[nodiscard]] Index cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] Real& operator()(Index i, Index j) {
    SGL_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
               "DenseMatrix: index out of range");
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }
  [[nodiscard]] Real operator()(Index i, Index j) const {
    SGL_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
               "DenseMatrix: index out of range");
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }

  /// Contiguous view of column j.
  [[nodiscard]] std::span<Real> col(Index j) {
    SGL_ASSERT(j >= 0 && j < cols_, "DenseMatrix::col out of range");
    return {data_.data() + static_cast<std::size_t>(j) * rows_,
            static_cast<std::size_t>(rows_)};
  }
  [[nodiscard]] std::span<const Real> col(Index j) const {
    SGL_ASSERT(j >= 0 && j < cols_, "DenseMatrix::col out of range");
    return {data_.data() + static_cast<std::size_t>(j) * rows_,
            static_cast<std::size_t>(rows_)};
  }

  /// Copies column j into a Vector.
  [[nodiscard]] Vector col_vector(Index j) const {
    const auto c = col(j);
    return Vector(c.begin(), c.end());
  }

  /// Overwrites column j from a vector of matching length.
  void set_col(Index j, const Vector& v) {
    SGL_EXPECTS(to_index(v.size()) == rows_, "set_col: length mismatch");
    auto c = col(j);
    for (Index i = 0; i < rows_; ++i) c[i] = v[i];
  }

  /// Copies row i into a Vector (strided gather).
  [[nodiscard]] Vector row_vector(Index i) const {
    SGL_EXPECTS(i >= 0 && i < rows_, "row_vector: out of range");
    Vector r(static_cast<std::size_t>(cols_));
    for (Index j = 0; j < cols_; ++j) r[j] = (*this)(i, j);
    return r;
  }

  /// Squared Euclidean distance between rows s and t:
  /// ‖Xᵀ(e_s − e_t)‖² — the z_data term of paper eq. (13).
  [[nodiscard]] Real row_distance_squared(Index s, Index t) const {
    SGL_ASSERT(s >= 0 && s < rows_ && t >= 0 && t < rows_,
               "row_distance_squared: out of range");
    Real acc = 0.0;
    const Real* base = data_.data();
    const std::size_t stride = static_cast<std::size_t>(rows_);
    for (Index j = 0; j < cols_; ++j) {
      const Real d = base[stride * j + s] - base[stride * j + t];
      acc += d * d;
    }
    return acc;
  }

  /// Frobenius inner product with another matrix of identical shape.
  [[nodiscard]] Real frobenius_dot(const DenseMatrix& other) const {
    SGL_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_,
                "frobenius_dot: shape mismatch");
    Real acc = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i) acc += data_[i] * other.data_[i];
    return acc;
  }

  /// Sum of squared entries: Tr(XᵀX).
  [[nodiscard]] Real frobenius_norm_squared() const {
    Real acc = 0.0;
    for (const Real v : data_) acc += v * v;
    return acc;
  }

  /// y = A x (A is this matrix).
  [[nodiscard]] Vector multiply(const Vector& x) const {
    SGL_EXPECTS(to_index(x.size()) == cols_, "multiply: size mismatch");
    Vector y(static_cast<std::size_t>(rows_), 0.0);
    for (Index j = 0; j < cols_; ++j) {
      const auto cj = col(j);
      const Real xj = x[j];
      if (xj == 0.0) continue;
      for (Index i = 0; i < rows_; ++i) y[i] += cj[i] * xj;
    }
    return y;
  }

  /// y = Aᵀ x.
  [[nodiscard]] Vector multiply_transposed(const Vector& x) const {
    SGL_EXPECTS(to_index(x.size()) == rows_, "multiply_transposed: size mismatch");
    Vector y(static_cast<std::size_t>(cols_), 0.0);
    for (Index j = 0; j < cols_; ++j) {
      const auto cj = col(j);
      Real acc = 0.0;
      for (Index i = 0; i < rows_; ++i) acc += cj[i] * x[i];
      y[j] = acc;
    }
    return y;
  }

  /// Returns the transposed matrix.
  [[nodiscard]] DenseMatrix transposed() const {
    DenseMatrix t(cols_, rows_);
    for (Index j = 0; j < cols_; ++j)
      for (Index i = 0; i < rows_; ++i) t(j, i) = (*this)(i, j);
    return t;
  }

  /// Raw storage access (column-major, rows() * cols() entries).
  [[nodiscard]] const Storage& data() const noexcept { return data_; }
  [[nodiscard]] Storage& data() noexcept { return data_; }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  Storage data_;
};

/// C = Aᵀ A (Gram matrix), used by small dense subproblems.
[[nodiscard]] DenseMatrix gram(const DenseMatrix& a);

/// C = A B.
[[nodiscard]] DenseMatrix matmul(const DenseMatrix& a, const DenseMatrix& b);

}  // namespace sgl::la
