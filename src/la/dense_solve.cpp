#include "la/dense_solve.hpp"

#include <cmath>

namespace sgl::la {

void dense_ldlt_factor(DenseMatrix& a, Real shift_floor) {
  SGL_EXPECTS(a.rows() == a.cols(), "dense_ldlt_factor: matrix must be square");
  const Index n = a.rows();
  Real max_diag = 0.0;
  for (Index i = 0; i < n; ++i) max_diag = std::max(max_diag, std::abs(a(i, i)));
  const Real floor_value = std::max(shift_floor * max_diag, 1e-300);

  for (Index j = 0; j < n; ++j) {
    Real d = a(j, j);
    for (Index k = 0; k < j; ++k) {
      const Real l = a(j, k);
      d -= l * l * a(k, k);
    }
    if (d < floor_value) d = floor_value;
    a(j, j) = d;
    for (Index i = j + 1; i < n; ++i) {
      Real v = a(i, j);
      for (Index k = 0; k < j; ++k) v -= a(i, k) * a(j, k) * a(k, k);
      a(i, j) = v / d;
    }
  }
}

Vector dense_ldlt_solve(const DenseMatrix& factor, const Vector& b) {
  const Index n = factor.rows();
  SGL_EXPECTS(to_index(b.size()) == n, "dense_ldlt_solve: size mismatch");
  Vector x = b;
  for (Index i = 0; i < n; ++i) {
    Real v = x[static_cast<std::size_t>(i)];
    for (Index k = 0; k < i; ++k) v -= factor(i, k) * x[static_cast<std::size_t>(k)];
    x[static_cast<std::size_t>(i)] = v;
  }
  for (Index i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] /= factor(i, i);
  for (Index i = n - 1; i >= 0; --i) {
    Real v = x[static_cast<std::size_t>(i)];
    for (Index k = i + 1; k < n; ++k) v -= factor(k, i) * x[static_cast<std::size_t>(k)];
    x[static_cast<std::size_t>(i)] = v;
  }
  return x;
}

}  // namespace sgl::la
