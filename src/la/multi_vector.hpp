// MultiVector: an n × b block of column vectors with parallel kernels.
//
// The block linear-algebra backbone (DESIGN.md §1) moves the numerical
// core from one-vector-at-a-time calls to batched block operations:
// multi-RHS solves, CSR SpMM, block inner products and blocked
// orthogonalization. MultiVector owns column-major storage (identical
// layout to DenseMatrix, so conversions just move the buffer) and the
// kernels below operate on contiguous column-range *views*, which lets
// callers address a growing basis (Lanczos) or a whole measurement matrix
// without copies.
//
// Determinism: every kernel computes each output element as a fixed-order
// serial sum (or combines fixed-size chunk partials in chunk order), so
// results are bit-identical for every thread count — the same contract as
// common/parallel.hpp.
#pragma once

#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"
#include "la/dense_matrix.hpp"
#include "la/sparse.hpp"
#include "la/vector_ops.hpp"

namespace sgl::la {

/// Mutable view of a contiguous column range (column-major, leading
/// dimension == rows). Cheap to copy; does not own storage.
struct BlockView {
  Real* data = nullptr;
  Index rows = 0;
  Index cols = 0;

  [[nodiscard]] std::span<Real> col(Index j) const {
    SGL_ASSERT(j >= 0 && j < cols, "BlockView::col out of range");
    return {data + static_cast<std::size_t>(j) * rows,
            static_cast<std::size_t>(rows)};
  }
  [[nodiscard]] Real& at(Index i, Index j) const {
    SGL_ASSERT(i >= 0 && i < rows && j >= 0 && j < cols,
               "BlockView::at out of range");
    return data[static_cast<std::size_t>(j) * rows + i];
  }
};

/// Read-only counterpart of BlockView.
struct ConstBlockView {
  const Real* data = nullptr;
  Index rows = 0;
  Index cols = 0;

  ConstBlockView() = default;
  ConstBlockView(const Real* d, Index r, Index c) : data(d), rows(r), cols(c) {}
  // NOLINTNEXTLINE(google-explicit-constructor): views convert like spans.
  ConstBlockView(const BlockView& v) : data(v.data), rows(v.rows), cols(v.cols) {}

  [[nodiscard]] std::span<const Real> col(Index j) const {
    SGL_ASSERT(j >= 0 && j < cols, "ConstBlockView::col out of range");
    return {data + static_cast<std::size_t>(j) * rows,
            static_cast<std::size_t>(rows)};
  }
  [[nodiscard]] Real at(Index i, Index j) const {
    SGL_ASSERT(i >= 0 && i < rows && j >= 0 && j < cols,
               "ConstBlockView::at out of range");
    return data[static_cast<std::size_t>(j) * rows + i];
  }
};

/// Owning n × b block of column vectors.
class MultiVector {
 public:
  MultiVector() = default;

  /// rows × cols block, zero-initialized.
  MultiVector(Index rows, Index cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              0.0) {
    SGL_EXPECTS(rows >= 0 && cols >= 0, "MultiVector: negative dimension");
  }

  /// Adopts a DenseMatrix's storage (same column-major layout, no copy).
  explicit MultiVector(DenseMatrix m)
      : rows_(m.rows()), cols_(m.cols()), data_(std::move(m.data())) {}

  /// Copies out into a DenseMatrix.
  [[nodiscard]] DenseMatrix to_dense() const {
    return DenseMatrix::from_storage(rows_, cols_, data_);
  }

  /// Moves the storage out into a DenseMatrix; this block becomes empty.
  [[nodiscard]] DenseMatrix release_dense() {
    DenseMatrix d = DenseMatrix::from_storage(rows_, cols_, std::move(data_));
    rows_ = 0;
    cols_ = 0;
    data_.clear();
    return d;
  }

  [[nodiscard]] Index rows() const noexcept { return rows_; }
  [[nodiscard]] Index cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] Real& operator()(Index i, Index j) {
    SGL_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
               "MultiVector: index out of range");
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }
  [[nodiscard]] Real operator()(Index i, Index j) const {
    SGL_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
               "MultiVector: index out of range");
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }

  [[nodiscard]] std::span<Real> col(Index j) {
    SGL_ASSERT(j >= 0 && j < cols_, "MultiVector::col out of range");
    return {data_.data() + static_cast<std::size_t>(j) * rows_,
            static_cast<std::size_t>(rows_)};
  }
  [[nodiscard]] std::span<const Real> col(Index j) const {
    SGL_ASSERT(j >= 0 && j < cols_, "MultiVector::col out of range");
    return {data_.data() + static_cast<std::size_t>(j) * rows_,
            static_cast<std::size_t>(rows_)};
  }

  /// View of columns [col_lo, col_hi).
  [[nodiscard]] BlockView block(Index col_lo, Index col_hi) {
    SGL_ASSERT(col_lo >= 0 && col_lo <= col_hi && col_hi <= cols_,
               "MultiVector::block: bad column range");
    return {data_.data() + static_cast<std::size_t>(col_lo) * rows_, rows_,
            col_hi - col_lo};
  }
  [[nodiscard]] ConstBlockView block(Index col_lo, Index col_hi) const {
    SGL_ASSERT(col_lo >= 0 && col_lo <= col_hi && col_hi <= cols_,
               "MultiVector::block: bad column range");
    return {data_.data() + static_cast<std::size_t>(col_lo) * rows_, rows_,
            col_hi - col_lo};
  }

  [[nodiscard]] BlockView view() { return block(0, cols_); }
  [[nodiscard]] ConstBlockView view() const { return block(0, cols_); }

  [[nodiscard]] const Storage& data() const noexcept { return data_; }
  [[nodiscard]] Storage& data() noexcept { return data_; }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  Storage data_;  // column-major
};

/// Views over DenseMatrix storage (same layout), so the block kernels and
/// multi-RHS solver APIs work on measurement matrices without copies.
[[nodiscard]] inline BlockView view_of(DenseMatrix& m) {
  return {m.data().data(), m.rows(), m.cols()};
}
[[nodiscard]] inline ConstBlockView view_of(const DenseMatrix& m) {
  return {m.data().data(), m.rows(), m.cols()};
}

// ---------------------------------------------------------------------------
// Block kernels. `num_threads`: 0 = library default (SGL_NUM_THREADS /
// hardware), 1 = serial; results are bit-identical for every value.
// ---------------------------------------------------------------------------

/// Y = A X — CSR sparse matrix times block (SpMM). Row-chunked in
/// parallel; A's nonzeros are streamed once per row instead of once per
/// column, which is what makes the blocked apply beat b sequential SpMVs.
void spmm(const CsrMatrix& a, ConstBlockView x, BlockView y,
          Index num_threads = 0);

/// C = Vᵀ W (V.cols × W.cols). Entry-parallel; each entry is a
/// fixed-order dot over the rows.
[[nodiscard]] DenseMatrix block_inner(ConstBlockView v, ConstBlockView w,
                                      Index num_threads = 0);

/// Gram matrix XᵀX of a block.
[[nodiscard]] inline DenseMatrix block_gram(ConstBlockView x,
                                            Index num_threads = 0) {
  return block_inner(x, x, num_threads);
}

/// Out = V C (dense tall-skinny times small dense). Row-chunked.
void block_product(ConstBlockView v, const DenseMatrix& c, BlockView out,
                   Index num_threads = 0);

/// W -= V C — the blocked Gram–Schmidt update. Row-chunked.
void block_subtract(BlockView w, ConstBlockView v, const DenseMatrix& c,
                    Index num_threads = 0);

/// y_j += alpha_j x_j for every column j (block AXPY with per-column
/// coefficients). Column-parallel.
void block_axpy(const Vector& alpha, ConstBlockView x, BlockView y,
                Index num_threads = 0);

/// y_j = x_j + beta_j y_j for every column j — the PCG search-direction
/// update (p ← z + β p) batched over a live column set. Each element is
/// one multiply-add in the same order as the scalar loop, so a column's
/// result is bitwise independent of the block composition. Column-parallel.
void block_xpby(ConstBlockView x, const Vector& beta, BlockView y,
                Index num_threads = 0);

/// Columnwise dot products <x_j, y_j>.
[[nodiscard]] Vector column_dots(ConstBlockView x, ConstBlockView y,
                                 Index num_threads = 0);

/// Euclidean norms of the columns.
[[nodiscard]] Vector column_norms(ConstBlockView x, Index num_threads = 0);

/// Subtracts each column's mean (orthogonalizes every column against the
/// all-ones vector). Column-parallel.
void center_columns(BlockView x, Index num_threads = 0);

/// Per-column means, each a fixed-order ascending sum (the same order as
/// center_columns and la::mean, so block and per-column paths agree
/// bitwise). Column-parallel.
[[nodiscard]] Vector column_means(ConstBlockView x, Index num_threads = 0);

/// x(:, j) -= delta[j] for every column j. Column-parallel.
void shift_columns(BlockView x, const Vector& delta, Index num_threads = 0);

/// Strided block row gather: out(i, :) = x(rows[i], :). The row map lets
/// solver consumers drop a grounded row (or apply a permutation) for a
/// whole block in one pass. Column-parallel.
void gather_rows(ConstBlockView x, std::span<const Index> rows, BlockView out,
                 Index num_threads = 0);

/// Inverse scatter: out(rows[i], :) = x(i, :). Rows of `out` absent from
/// the map are left untouched. Column-parallel.
void scatter_rows(ConstBlockView x, std::span<const Index> rows, BlockView out,
                  Index num_threads = 0);

}  // namespace sgl::la
