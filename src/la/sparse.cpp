#include "la/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/parallel.hpp"

namespace sgl::la {

CsrMatrix CsrMatrix::from_triplets(Index rows, Index cols,
                                   const std::vector<Triplet>& triplets) {
  SGL_EXPECTS(rows >= 0 && cols >= 0, "from_triplets: negative dimension");
  for (const auto& t : triplets) {
    SGL_EXPECTS(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
                "from_triplets: triplet out of range");
  }

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);

  // Counting sort by row, then sort/dedup each row by column.
  for (const auto& t : triplets) ++m.row_ptr_[static_cast<std::size_t>(t.row) + 1];
  for (std::size_t i = 1; i < m.row_ptr_.size(); ++i)
    m.row_ptr_[i] += m.row_ptr_[i - 1];

  std::vector<Index> cursor(m.row_ptr_.begin(), m.row_ptr_.end() - 1);
  std::vector<Index> cols_tmp(triplets.size());
  std::vector<Real> vals_tmp(triplets.size());
  for (const auto& t : triplets) {
    const Index pos = cursor[static_cast<std::size_t>(t.row)]++;
    cols_tmp[static_cast<std::size_t>(pos)] = t.col;
    vals_tmp[static_cast<std::size_t>(pos)] = t.value;
  }

  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  std::vector<Index> perm;
  std::vector<Index> new_row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  for (Index r = 0; r < rows; ++r) {
    const Index lo = m.row_ptr_[static_cast<std::size_t>(r)];
    const Index hi = m.row_ptr_[static_cast<std::size_t>(r) + 1];
    perm.resize(static_cast<std::size_t>(hi - lo));
    std::iota(perm.begin(), perm.end(), lo);
    std::sort(perm.begin(), perm.end(), [&](Index a, Index b) {
      return cols_tmp[static_cast<std::size_t>(a)] <
             cols_tmp[static_cast<std::size_t>(b)];
    });
    for (std::size_t k = 0; k < perm.size(); ++k) {
      const Index src = perm[k];
      const Index c = cols_tmp[static_cast<std::size_t>(src)];
      const Real v = vals_tmp[static_cast<std::size_t>(src)];
      if (!m.col_idx_.empty() &&
          to_index(m.col_idx_.size()) > new_row_ptr[static_cast<std::size_t>(r)] &&
          m.col_idx_.back() == c) {
        m.values_.back() += v;  // duplicate stamp: accumulate
      } else {
        m.col_idx_.push_back(c);
        m.values_.push_back(v);
      }
    }
    new_row_ptr[static_cast<std::size_t>(r) + 1] = to_index(m.col_idx_.size());
  }
  m.row_ptr_ = std::move(new_row_ptr);
  return m;
}

CsrMatrix CsrMatrix::identity(Index n) {
  std::vector<Triplet> t;
  t.reserve(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) t.push_back({i, i, 1.0});
  return from_triplets(n, n, t);
}

Real CsrMatrix::at(Index i, Index j) const {
  SGL_EXPECTS(i >= 0 && i < rows_ && j >= 0 && j < cols_, "at: out of range");
  const auto begin = col_idx_.begin() + row_ptr_[static_cast<std::size_t>(i)];
  const auto end = col_idx_.begin() + row_ptr_[static_cast<std::size_t>(i) + 1];
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

using detail::kSpmvSerialRows;
using detail::kSpmvTransposeChunks;

void CsrMatrix::multiply(const Vector& x, Vector& y, Index num_threads) const {
  SGL_EXPECTS(to_index(x.size()) == cols_, "multiply: size mismatch");
  y.assign(static_cast<std::size_t>(rows_), 0.0);
  const Index threads = rows_ < kSpmvSerialRows ? 1 : num_threads;
  parallel::parallel_for_slots(
      0, rows_, threads, [&](Index lo, Index hi, Index /*slot*/) {
        for (Index i = lo; i < hi; ++i) {
          Real acc = 0.0;
          for (Index k = row_ptr_[static_cast<std::size_t>(i)];
               k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
            acc += values_[static_cast<std::size_t>(k)] *
                   x[static_cast<std::size_t>(
                       col_idx_[static_cast<std::size_t>(k)])];
          }
          y[static_cast<std::size_t>(i)] = acc;
        }
      });
}

Vector CsrMatrix::multiply_transposed(const Vector& x, Index num_threads) const {
  SGL_EXPECTS(to_index(x.size()) == rows_, "multiply_transposed: size mismatch");
  Vector y(static_cast<std::size_t>(cols_), 0.0);
  const auto scatter_rows = [&](Index lo, Index hi, Vector& out) {
    for (Index i = lo; i < hi; ++i) {
      const Real xi = x[static_cast<std::size_t>(i)];
      if (xi == 0.0) continue;
      for (Index k = row_ptr_[static_cast<std::size_t>(i)];
           k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
        out[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] +=
            values_[static_cast<std::size_t>(k)] * xi;
      }
    }
  };

  if (rows_ < kSpmvSerialRows) {
    scatter_rows(0, rows_, y);
    return y;
  }
  // Chunked scatter: each fixed row chunk scatters into its own partial,
  // partials are summed in chunk order. Within each output entry the
  // additions happen in global row order, matching the serial scatter's
  // per-entry order chunk by chunk.
  const Index chunk = (rows_ + kSpmvTransposeChunks - 1) / kSpmvTransposeChunks;
  const Index num_chunks = (rows_ + chunk - 1) / chunk;
  std::vector<Vector> partial(static_cast<std::size_t>(num_chunks));
  parallel::parallel_for(0, num_chunks, num_threads, [&](Index c) {
    Vector& local = partial[static_cast<std::size_t>(c)];
    local.assign(static_cast<std::size_t>(cols_), 0.0);
    const Index lo = c * chunk;
    scatter_rows(lo, std::min(rows_, lo + chunk), local);
  });
  for (Index c = 0; c < num_chunks; ++c) {
    const Vector& local = partial[static_cast<std::size_t>(c)];
    for (std::size_t j = 0; j < y.size(); ++j) y[j] += local[j];
  }
  return y;
}

namespace detail {

void spmm_transposed_row_major(const CsrMatrix& a, const Real* x, Real* y,
                               Index b, Index num_threads) {
  const Index rows = a.rows();
  const Index cols = a.cols();
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  const std::size_t sb = static_cast<std::size_t>(b);
  std::fill(y, y + static_cast<std::size_t>(cols) * sb, 0.0);

  // b-wide mirror of CsrMatrix::multiply_transposed's scatter_rows: rows
  // ascending, per-(row, column) zero skip, additions per output entry in
  // global row order.
  const auto scatter_rows = [&](Index lo, Index hi, Real* out) {
    for (Index i = lo; i < hi; ++i) {
      const Real* xi = x + static_cast<std::size_t>(i) * sb;
      for (Index k = row_ptr[static_cast<std::size_t>(i)];
           k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const Real v = values[static_cast<std::size_t>(k)];
        Real* oc =
            out + static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)]) * sb;
        for (Index c = 0; c < b; ++c) {
          const Real xic = xi[static_cast<std::size_t>(c)];
          if (xic == 0.0) continue;
          oc[static_cast<std::size_t>(c)] += v * xic;
        }
      }
    }
  };

  if (rows < kSpmvSerialRows) {
    scatter_rows(0, rows, y);
    return;
  }
  // Chunked scatter, combined in fixed chunk order — the same chunk
  // boundaries as the scalar path, so block ≡ scalar per column bitwise.
  const Index chunk = (rows + kSpmvTransposeChunks - 1) / kSpmvTransposeChunks;
  const Index num_chunks = (rows + chunk - 1) / chunk;
  std::vector<std::vector<Real>> partial(static_cast<std::size_t>(num_chunks));
  parallel::parallel_for(0, num_chunks, num_threads, [&](Index ck) {
    std::vector<Real>& local = partial[static_cast<std::size_t>(ck)];
    local.assign(static_cast<std::size_t>(cols) * sb, 0.0);
    const Index lo = ck * chunk;
    scatter_rows(lo, std::min(rows, lo + chunk), local.data());
  });
  for (Index ck = 0; ck < num_chunks; ++ck) {
    const std::vector<Real>& local = partial[static_cast<std::size_t>(ck)];
    for (std::size_t e = 0; e < local.size(); ++e) y[e] += local[e];
  }
}

}  // namespace detail

Real CsrMatrix::quadratic_form(const Vector& x) const {
  SGL_EXPECTS(rows_ == cols_, "quadratic_form: matrix must be square");
  SGL_EXPECTS(to_index(x.size()) == cols_, "quadratic_form: size mismatch");
  Real acc = 0.0;
  for (Index i = 0; i < rows_; ++i) {
    Real row_acc = 0.0;
    for (Index k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      row_acc += values_[static_cast<std::size_t>(k)] *
                 x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
    }
    acc += x[static_cast<std::size_t>(i)] * row_acc;
  }
  return acc;
}

Vector CsrMatrix::diagonal() const {
  const Index n = std::min(rows_, cols_);
  Vector d(static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i < n; ++i) d[static_cast<std::size_t>(i)] = at(i, i);
  return d;
}

CsrMatrix CsrMatrix::transposed() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(static_cast<std::size_t>(cols_) + 1, 0);
  for (const Index c : col_idx_) ++t.row_ptr_[static_cast<std::size_t>(c) + 1];
  for (std::size_t i = 1; i < t.row_ptr_.size(); ++i)
    t.row_ptr_[i] += t.row_ptr_[i - 1];

  t.col_idx_.resize(col_idx_.size());
  t.values_.resize(values_.size());
  std::vector<Index> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (Index i = 0; i < rows_; ++i) {
    for (Index k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      const Index c = col_idx_[static_cast<std::size_t>(k)];
      const Index pos = cursor[static_cast<std::size_t>(c)]++;
      t.col_idx_[static_cast<std::size_t>(pos)] = i;
      t.values_[static_cast<std::size_t>(pos)] = values_[static_cast<std::size_t>(k)];
    }
  }
  // Rows of the transpose are produced in increasing original-row order,
  // so column indices are already sorted.
  return t;
}

bool CsrMatrix::is_symmetric(Real tol) const {
  if (rows_ != cols_) return false;
  const CsrMatrix t = transposed();
  if (t.col_idx_.size() != col_idx_.size()) return false;
  for (Index i = 0; i < rows_; ++i) {
    const Index lo = row_ptr_[static_cast<std::size_t>(i)];
    const Index hi = row_ptr_[static_cast<std::size_t>(i) + 1];
    if (t.row_ptr_[static_cast<std::size_t>(i)] != lo ||
        t.row_ptr_[static_cast<std::size_t>(i) + 1] != hi)
      return false;
    for (Index k = lo; k < hi; ++k) {
      if (t.col_idx_[static_cast<std::size_t>(k)] !=
          col_idx_[static_cast<std::size_t>(k)])
        return false;
      if (std::abs(t.values_[static_cast<std::size_t>(k)] -
                   values_[static_cast<std::size_t>(k)]) > tol)
        return false;
    }
  }
  return true;
}

CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b) {
  SGL_EXPECTS(a.cols() == b.rows(), "spgemm: inner dimension mismatch");
  CsrMatrix c;
  c.rows_ = a.rows();
  c.cols_ = b.cols();
  c.row_ptr_.assign(static_cast<std::size_t>(c.rows_) + 1, 0);

  // Row-wise gather with a dense accumulator + touched-column list.
  std::vector<Real> acc(static_cast<std::size_t>(b.cols()), 0.0);
  std::vector<bool> touched(static_cast<std::size_t>(b.cols()), false);
  std::vector<Index> cols_in_row;

  for (Index i = 0; i < a.rows(); ++i) {
    cols_in_row.clear();
    for (Index ka = a.row_ptr_[static_cast<std::size_t>(i)];
         ka < a.row_ptr_[static_cast<std::size_t>(i) + 1]; ++ka) {
      const Index j = a.col_idx_[static_cast<std::size_t>(ka)];
      const Real av = a.values_[static_cast<std::size_t>(ka)];
      for (Index kb = b.row_ptr_[static_cast<std::size_t>(j)];
           kb < b.row_ptr_[static_cast<std::size_t>(j) + 1]; ++kb) {
        const Index col = b.col_idx_[static_cast<std::size_t>(kb)];
        if (!touched[static_cast<std::size_t>(col)]) {
          touched[static_cast<std::size_t>(col)] = true;
          cols_in_row.push_back(col);
        }
        acc[static_cast<std::size_t>(col)] +=
            av * b.values_[static_cast<std::size_t>(kb)];
      }
    }
    std::sort(cols_in_row.begin(), cols_in_row.end());
    for (const Index col : cols_in_row) {
      c.col_idx_.push_back(col);
      c.values_.push_back(acc[static_cast<std::size_t>(col)]);
      acc[static_cast<std::size_t>(col)] = 0.0;
      touched[static_cast<std::size_t>(col)] = false;
    }
    c.row_ptr_[static_cast<std::size_t>(i) + 1] = to_index(c.col_idx_.size());
  }
  return c;
}

CsrMatrix add(const CsrMatrix& a, const CsrMatrix& b, Real alpha, Real beta) {
  SGL_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols(),
              "add: shape mismatch");
  CsrMatrix c;
  c.rows_ = a.rows();
  c.cols_ = a.cols();
  c.row_ptr_.assign(static_cast<std::size_t>(c.rows_) + 1, 0);
  for (Index i = 0; i < a.rows(); ++i) {
    Index ka = a.row_ptr_[static_cast<std::size_t>(i)];
    Index kb = b.row_ptr_[static_cast<std::size_t>(i)];
    const Index ea = a.row_ptr_[static_cast<std::size_t>(i) + 1];
    const Index eb = b.row_ptr_[static_cast<std::size_t>(i) + 1];
    while (ka < ea || kb < eb) {
      Index col;
      Real val = 0.0;
      const Index ca = ka < ea ? a.col_idx_[static_cast<std::size_t>(ka)]
                               : std::numeric_limits<Index>::max();
      const Index cb = kb < eb ? b.col_idx_[static_cast<std::size_t>(kb)]
                               : std::numeric_limits<Index>::max();
      if (ca < cb) {
        col = ca;
        val = alpha * a.values_[static_cast<std::size_t>(ka++)];
      } else if (cb < ca) {
        col = cb;
        val = beta * b.values_[static_cast<std::size_t>(kb++)];
      } else {
        col = ca;
        val = alpha * a.values_[static_cast<std::size_t>(ka++)] +
              beta * b.values_[static_cast<std::size_t>(kb++)];
      }
      c.col_idx_.push_back(col);
      c.values_.push_back(val);
    }
    c.row_ptr_[static_cast<std::size_t>(i) + 1] = to_index(c.col_idx_.size());
  }
  return c;
}

}  // namespace sgl::la
