// LinearOperator: the abstract "apply a matrix" interface of the block
// linear-algebra backbone (DESIGN.md §1).
//
// Consumers that only need matrix–vector / matrix–block products (Lanczos,
// power iterations, residual checks) program against this interface; the
// concrete operator decides how the apply is computed — a CSR SpMV/SpMM
// here, a grounded Laplacian pseudo-inverse solve in
// solver/operators.hpp, a preconditioned composition, or any user-supplied
// subclass. apply_block is the hot entry point: backends batch the b
// right-hand sides through shared state (one streaming pass over the CSR
// nonzeros, one shared factorization) instead of b independent calls.
#pragma once

#include "la/multi_vector.hpp"
#include "la/sparse.hpp"
#include "la/vector_ops.hpp"

namespace sgl::la {

class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  [[nodiscard]] virtual Index rows() const noexcept = 0;
  [[nodiscard]] virtual Index cols() const noexcept = 0;

  /// y = A x. `y` is resized/overwritten.
  virtual void apply(const Vector& x, Vector& y) const = 0;

  /// Y = A X, column by column unless the backend has a batched kernel.
  /// Shapes must already match (x: cols()×b, y: rows()×b).
  virtual void apply_block(ConstBlockView x, BlockView y) const;
};

/// CSR-matrix-backed operator: parallel SpMV / SpMM with a fixed thread
/// knob (0 = library default, 1 = serial; results are identical).
class CsrOperator final : public LinearOperator {
 public:
  /// Keeps a reference to `a`; the matrix must outlive the operator.
  explicit CsrOperator(const CsrMatrix& a, Index num_threads = 0)
      : a_(a), num_threads_(num_threads) {}

  [[nodiscard]] Index rows() const noexcept override { return a_.rows(); }
  [[nodiscard]] Index cols() const noexcept override { return a_.cols(); }

  void apply(const Vector& x, Vector& y) const override {
    a_.multiply(x, y, num_threads_);
  }

  void apply_block(ConstBlockView x, BlockView y) const override {
    spmm(a_, x, y, num_threads_);
  }

 private:
  const CsrMatrix& a_;
  Index num_threads_;
};

}  // namespace sgl::la
