#include "la/linear_operator.hpp"

#include <algorithm>

namespace sgl::la {

void LinearOperator::apply_block(ConstBlockView x, BlockView y) const {
  SGL_EXPECTS(x.rows == cols() && y.rows == rows() && x.cols == y.cols,
              "LinearOperator::apply_block: shape mismatch");
  Vector xi(static_cast<std::size_t>(x.rows));
  Vector yi;
  for (Index j = 0; j < x.cols; ++j) {
    const std::span<const Real> src = x.col(j);
    std::copy(src.begin(), src.end(), xi.begin());
    apply(xi, yi);
    SGL_ENSURES(to_index(yi.size()) == y.rows,
                "LinearOperator::apply: result dimension mismatch");
    const std::span<Real> dst = y.col(j);
    std::copy(yi.begin(), yi.end(), dst.begin());
  }
}

}  // namespace sgl::la
