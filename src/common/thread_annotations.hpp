// Clang thread-safety annotation macros (no-ops on other compilers).
//
// These wrap Clang's `-Wthread-safety` attribute vocabulary
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so the
// concurrency contracts of the library — which mutex guards which member,
// which functions must (or must not) be called with a lock held — are
// machine-checked instead of comment-only. The clang CI legs compile with
// `-Wthread-safety -Wthread-safety-beta` promoted to errors (see
// cmake/SglWarnings.cmake and DESIGN.md §7); GCC and MSVC see empty
// macros and are unaffected.
//
// The annotated capability types live in common/mutex.hpp (`sgl::common::
// Mutex`, `MutexLock`); raw `std::mutex` is deliberately not used outside
// that wrapper because the analysis cannot see through libstdc++'s
// unannotated types.
#pragma once

#if defined(__clang__) && !defined(SGL_NO_THREAD_SAFETY_ANNOTATIONS)
#define SGL_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SGL_THREAD_ANNOTATION__(x)
#endif

/// Marks a type as a capability (lockable). The string names the
/// capability kind in diagnostics ("mutex").
#define SGL_CAPABILITY(x) SGL_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability.
#define SGL_SCOPED_CAPABILITY SGL_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define SGL_GUARDED_BY(x) SGL_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose pointee is guarded by `x` (the pointer itself is
/// not).
#define SGL_PT_GUARDED_BY(x) SGL_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and
/// does not release them).
#define SGL_REQUIRES(...) \
  SGL_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on exit).
#define SGL_ACQUIRE(...) \
  SGL_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry).
#define SGL_RELEASE(...) \
  SGL_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns `true_value`.
#define SGL_TRY_ACQUIRE(true_value, ...) \
  SGL_THREAD_ANNOTATION__(try_acquire_capability(true_value, __VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (deadlock guard for functions that acquire them internally).
#define SGL_EXCLUDES(...) SGL_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Declares lock acquisition order (deadlock prevention).
#define SGL_ACQUIRED_BEFORE(...) \
  SGL_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define SGL_ACQUIRED_AFTER(...) \
  SGL_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define SGL_RETURN_CAPABILITY(x) SGL_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the analysis cannot see the invariant.
#define SGL_NO_THREAD_SAFETY_ANALYSIS \
  SGL_THREAD_ANNOTATION__(no_thread_safety_analysis)
