// Contract checking in the spirit of the C++ Core Guidelines (I.6 / E.12):
// SGL_EXPECTS guards public-API preconditions and always throws on
// violation; SGL_ASSERT guards internal invariants and compiles out in
// NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sgl {

/// Exception thrown on precondition violations of public API entry points.
class ContractViolation : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Exception thrown when a numerical routine cannot proceed (singular
/// factorization, non-convergence past hard iteration caps, ...).
class NumericalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace sgl

/// Precondition on a public entry point; always checked.
#define SGL_EXPECTS(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::sgl::detail::contract_failure("precondition", #cond, __FILE__,      \
                                      __LINE__, (msg));                     \
    }                                                                       \
  } while (false)

/// Postcondition; always checked (cheap by construction where used).
#define SGL_ENSURES(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::sgl::detail::contract_failure("postcondition", #cond, __FILE__,     \
                                      __LINE__, (msg));                     \
    }                                                                       \
  } while (false)

/// Suppresses -Wdeprecated-declarations around intentional uses of
/// deprecated compat aliases (e.g. the merge step that honors an old-name
/// knob a caller may still set). Builds with -Werror need this to keep
/// the aliases usable during their one-release grace period.
#if defined(__GNUC__) || defined(__clang__)
#define SGL_SUPPRESS_DEPRECATED_BEGIN                            \
  _Pragma("GCC diagnostic push")                                 \
  _Pragma("GCC diagnostic ignored \"-Wdeprecated-declarations\"")
#define SGL_SUPPRESS_DEPRECATED_END _Pragma("GCC diagnostic pop")
#else
#define SGL_SUPPRESS_DEPRECATED_BEGIN
#define SGL_SUPPRESS_DEPRECATED_END
#endif

/// Internal invariant; checked only in debug builds.
#ifdef NDEBUG
#define SGL_ASSERT(cond, msg) \
  do {                        \
  } while (false)
#else
#define SGL_ASSERT(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::sgl::detail::contract_failure("invariant", #cond, __FILE__,         \
                                      __LINE__, (msg));                     \
    }                                                                       \
  } while (false)
#endif
