// Contract checking in the spirit of the C++ Core Guidelines (I.6 / E.12),
// plus the library's typed error surface.
//
// SGL_EXPECTS guards public-API preconditions and always throws on
// violation; SGL_ASSERT guards internal invariants and compiles out in
// NDEBUG builds.
//
// Every exception the library throws derives from SglError and carries a
// stable ErrorCode. Boundary layers (the sgl_serve daemon, language
// bindings) map exceptions to wire-level error responses by switching on
// code() — never by parsing what() strings, which exist for humans and may
// change wording freely.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sgl {

/// Stable machine-readable error identity. Values are append-only: codes
/// are part of the serving wire protocol (README "Serving", DESIGN.md
/// §10), so existing entries never change meaning or name.
enum class ErrorCode {
  kOk = 0,
  /// A public-API precondition was violated (SGL_EXPECTS/SGL_ENSURES).
  kInvalidArgument,
  /// A serve request was malformed or referenced out-of-range entities.
  kBadRequest,
  /// A serve request line was not valid JSON / not a JSON object.
  kParseError,
  /// A serve request named an operation the engine does not implement.
  kUnknownOperation,
  /// A query arrived before any graph was loaded or learned.
  kNoActiveGraph,
  /// The graph of a request is disconnected (no pseudo-inverse semantics).
  kGraphNotConnected,
  /// LDLᵀ hit a non-positive pivot — the matrix is not positive definite.
  kNonPositivePivot,
  /// A preconditioner/factorization setup failed past its retry budget.
  kFactorizationFailed,
  /// PCG stalled before reaching its residual tolerance.
  kPcgStalled,
  /// An eigensolver did not converge within its subspace/iteration cap.
  kEigNotConverged,
  /// A numerical routine failed for a reason without a dedicated code.
  kNumericalBreakdown,
  /// Catch-all for unexpected internal failures at a serving boundary.
  kInternal,
};

/// Stable kebab-case wire name of a code ("non-positive-pivot", ...).
[[nodiscard]] constexpr const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kParseError: return "parse-error";
    case ErrorCode::kUnknownOperation: return "unknown-operation";
    case ErrorCode::kNoActiveGraph: return "no-active-graph";
    case ErrorCode::kGraphNotConnected: return "graph-not-connected";
    case ErrorCode::kNonPositivePivot: return "non-positive-pivot";
    case ErrorCode::kFactorizationFailed: return "factorization-failed";
    case ErrorCode::kPcgStalled: return "pcg-stalled";
    case ErrorCode::kEigNotConverged: return "eig-not-converged";
    case ErrorCode::kNumericalBreakdown: return "numerical-breakdown";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

/// Code + human-readable message, the value boundary layers serialize.
struct Status {
  ErrorCode code = ErrorCode::kOk;
  std::string message;

  [[nodiscard]] bool ok() const noexcept { return code == ErrorCode::kOk; }
  [[nodiscard]] const char* code_name() const noexcept {
    return error_code_name(code);
  }
};

/// Base of every exception this library throws: a runtime_error whose
/// what() is the human-readable message, plus the stable ErrorCode that
/// boundary layers branch on.
class SglError : public std::runtime_error {
 public:
  SglError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] Status status() const { return {code_, what()}; }

 private:
  ErrorCode code_;
};

/// Exception thrown on precondition violations of public API entry points.
class ContractViolation : public SglError {
 public:
  explicit ContractViolation(const std::string& message,
                             ErrorCode code = ErrorCode::kInvalidArgument)
      : SglError(code, message) {}
};

/// Exception thrown when a numerical routine cannot proceed (singular
/// factorization, non-convergence past hard iteration caps, ...). Throw
/// sites pass the specific code (kNonPositivePivot, kPcgStalled, ...);
/// the default covers ad-hoc breakdowns without a dedicated code.
class NumericalError : public SglError {
 public:
  explicit NumericalError(const std::string& message,
                          ErrorCode code = ErrorCode::kNumericalBreakdown)
      : SglError(code, message) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace sgl

/// Precondition on a public entry point; always checked.
#define SGL_EXPECTS(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::sgl::detail::contract_failure("precondition", #cond, __FILE__,      \
                                      __LINE__, (msg));                     \
    }                                                                       \
  } while (false)

/// Postcondition; always checked (cheap by construction where used).
#define SGL_ENSURES(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::sgl::detail::contract_failure("postcondition", #cond, __FILE__,     \
                                      __LINE__, (msg));                     \
    }                                                                       \
  } while (false)

/// Internal invariant; checked only in debug builds.
#ifdef NDEBUG
#define SGL_ASSERT(cond, msg) \
  do {                        \
  } while (false)
#else
#define SGL_ASSERT(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::sgl::detail::contract_failure("invariant", #cond, __FILE__,         \
                                      __LINE__, (msg));                     \
    }                                                                       \
  } while (false)
#endif
