#include "common/parallel.hpp"

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <thread>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace sgl::parallel {

namespace {

using common::Mutex;
using common::MutexLock;

thread_local bool tls_in_worker = false;

/// Lazily grown worker pool behind detail::run_on_pool. Workers idle on a
/// condition variable between parallel regions; the pool lives for the
/// process lifetime and joins everything on static destruction. All
/// shared state is SGL_GUARDED_BY(mutex_) and checked by the clang
/// `-Wthread-safety` CI legs (DESIGN.md §7).
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  void run(Index slots, const std::function<void(Index)>& job)
      SGL_EXCLUDES(mutex_) {
    // Per-region completion state. `remaining`/`error` are shared with
    // the workers executing this region's tasks, so they get their own
    // capability; `mutex` is always acquired after the pool's `mutex_`
    // is released (never nested inside it).
    struct Sync {
      Mutex mutex;
      std::condition_variable_any done;
      Index remaining SGL_GUARDED_BY(mutex) = 0;
      std::exception_ptr error SGL_GUARDED_BY(mutex);
    };

    if (slots <= 1 || tls_in_worker) {
      for (Index s = 0; s < slots; ++s) job(s);
      return;
    }

    ensure_workers(slots - 1);
    Sync sync;
    {
      // Locked for the analysis' benefit only: the workers that will
      // observe `remaining` are enqueued below, after this write.
      const MutexLock lock(sync.mutex);
      sync.remaining = slots - 1;
    }
    const auto record_error = [&sync] {
      const MutexLock lock(sync.mutex);
      if (!sync.error) sync.error = std::current_exception();
    };

    {
      const MutexLock lock(mutex_);
      for (Index s = 1; s < slots; ++s) {
        queue_.emplace_back([&sync, &job, &record_error, s] {
          try {
            job(s);
          } catch (...) {
            record_error();
          }
          // Notify under the lock: once the caller observes remaining == 0
          // it may destroy `sync`, so the worker must not touch it after
          // releasing the mutex.
          const MutexLock lock(sync.mutex);
          --sync.remaining;
          sync.done.notify_one();
        });
      }
    }
    wake_.notify_all();

    try {
      job(0);
    } catch (...) {
      record_error();
    }

    const MutexLock lock(sync.mutex);
    while (sync.remaining != 0) sync.done.wait(sync.mutex);
    if (sync.error) std::rethrow_exception(sync.error);
  }

  ~ThreadPool() SGL_EXCLUDES(mutex_) {
    // Swap the worker handles out under the lock, then join without it:
    // joining while holding mutex_ would deadlock against workers that
    // need it to observe stop_.
    std::vector<std::thread> workers;
    {
      const MutexLock lock(mutex_);
      stop_ = true;
      workers.swap(workers_);
    }
    wake_.notify_all();
    for (std::thread& t : workers) t.join();
  }

 private:
  ThreadPool() = default;

  void ensure_workers(Index count) SGL_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    const auto target =
        std::min<std::size_t>(static_cast<std::size_t>(count), kMaxThreads - 1);
    while (workers_.size() < target)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void worker_loop() SGL_EXCLUDES(mutex_) {
    tls_in_worker = true;
    for (;;) {
      std::function<void()> task;
      {
        const MutexLock lock(mutex_);
        while (!stop_ && queue_.empty()) wake_.wait(mutex_);
        if (queue_.empty()) return;  // stop_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  Mutex mutex_;
  std::condition_variable_any wake_;
  std::deque<std::function<void()>> queue_ SGL_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_ SGL_GUARDED_BY(mutex_);
  bool stop_ SGL_GUARDED_BY(mutex_) = false;
};

}  // namespace

Index default_num_threads() {
  static const Index cached = [] {
    if (const char* env = std::getenv("SGL_NUM_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1)
        return static_cast<Index>(std::min<long>(v, kMaxThreads));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) return Index{1};
    return std::min(static_cast<Index>(hw), kMaxThreads);
  }();
  return cached;
}

Index resolve_num_threads(Index requested) {
  if (requested <= 0) return default_num_threads();
  return std::min(requested, kMaxThreads);
}

namespace detail {

void run_on_pool(Index slots, const std::function<void(Index)>& job) {
  ThreadPool::instance().run(slots, job);
}

}  // namespace detail

}  // namespace sgl::parallel
