#include "common/parallel.hpp"

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace sgl::parallel {

namespace {

thread_local bool tls_in_worker = false;

/// Lazily grown worker pool behind detail::run_on_pool. Workers idle on a
/// condition variable between parallel regions; the pool lives for the
/// process lifetime and joins everything on static destruction.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  void run(Index slots, const std::function<void(Index)>& job) {
    struct Sync {
      std::mutex mutex;
      std::condition_variable done;
      Index remaining = 0;
      std::exception_ptr error;
    };

    if (slots <= 1 || tls_in_worker) {
      for (Index s = 0; s < slots; ++s) job(s);
      return;
    }

    ensure_workers(slots - 1);
    Sync sync;
    sync.remaining = slots - 1;
    const auto record_error = [&sync] {
      const std::lock_guard<std::mutex> lock(sync.mutex);
      if (!sync.error) sync.error = std::current_exception();
    };

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (Index s = 1; s < slots; ++s) {
        queue_.emplace_back([&sync, &job, &record_error, s] {
          try {
            job(s);
          } catch (...) {
            record_error();
          }
          // Notify under the lock: once the caller observes remaining == 0
          // it may destroy `sync`, so the worker must not touch it after
          // releasing the mutex.
          const std::lock_guard<std::mutex> lock(sync.mutex);
          --sync.remaining;
          sync.done.notify_one();
        });
      }
    }
    wake_.notify_all();

    try {
      job(0);
    } catch (...) {
      record_error();
    }

    std::unique_lock<std::mutex> lock(sync.mutex);
    sync.done.wait(lock, [&sync] { return sync.remaining == 0; });
    if (sync.error) std::rethrow_exception(sync.error);
  }

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

 private:
  ThreadPool() = default;

  void ensure_workers(Index count) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto target =
        std::min<std::size_t>(static_cast<std::size_t>(count), kMaxThreads - 1);
    while (workers_.size() < target)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void worker_loop() {
    tls_in_worker = true;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace

Index default_num_threads() {
  static const Index cached = [] {
    if (const char* env = std::getenv("SGL_NUM_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1)
        return static_cast<Index>(std::min<long>(v, kMaxThreads));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) return Index{1};
    return std::min(static_cast<Index>(hw), kMaxThreads);
  }();
  return cached;
}

Index resolve_num_threads(Index requested) {
  if (requested <= 0) return default_num_threads();
  return std::min(requested, kMaxThreads);
}

namespace detail {

void run_on_pool(Index slots, const std::function<void(Index)>& job) {
  ThreadPool::instance().run(slots, job);
}

}  // namespace detail

}  // namespace sgl::parallel
