// Minimal wall-clock timer for benchmarks and iteration statistics.
#pragma once

#include <chrono>

namespace sgl {

/// Monotonic wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double milliseconds() const noexcept {
    return seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sgl
