// Parallel execution primitives shared by every hot path.
//
// A single process-wide thread pool (grown lazily, capped at kMaxThreads)
// backs three building blocks:
//
//   parallel_for        — fn(i) per index, dynamically chunked;
//   parallel_for_slots  — fn(chunk_begin, chunk_end, slot) with a stable
//                         slot id < num_threads, so callers can keep
//                         per-worker scratch state (e.g. HNSW visit marks);
//   parallel_reduce     — deterministic chunked reduction: the range is
//                         split into chunks whose boundaries depend only on
//                         the range size (never on the thread count), chunk
//                         partials are combined serially in chunk order, so
//                         the result is bit-identical for every thread
//                         count, including the serial path.
//
// Thread-count resolution: a per-call request of 0 means "library
// default", which is the SGL_NUM_THREADS environment variable when set to
// a positive integer and std::thread::hardware_concurrency() otherwise.
// Passing 1 (or SGL_NUM_THREADS=1) runs everything on the calling thread;
// no pool threads are ever touched in that case. Nested parallel regions
// degrade to serial execution on the calling worker instead of
// deadlocking the pool.
//
// Exceptions thrown by worker bodies are captured and the first one is
// rethrown on the calling thread after the region completes.
//
// This is the only translation unit allowed to touch raw threading
// primitives (std::thread & friends) — the determinism lint
// (tools/determinism_lint.py, rule raw-threading) enforces that, and the
// pool internals carry clang thread-safety annotations via the
// common/mutex.hpp capability wrappers (DESIGN.md §7).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace sgl::parallel {

/// Hard upper bound on pool threads (runaway-env-var guard).
inline constexpr Index kMaxThreads = 64;

/// Library default thread count: SGL_NUM_THREADS when set to a positive
/// integer, else std::thread::hardware_concurrency(), clamped to
/// [1, kMaxThreads]. Cached after the first call.
[[nodiscard]] Index default_num_threads();

/// Resolves a per-call request: 0 → default_num_threads(), otherwise the
/// request clamped to [1, kMaxThreads].
[[nodiscard]] Index resolve_num_threads(Index requested);

namespace detail {

/// Runs job(slot) for every slot in [0, slots): slot 0 on the calling
/// thread, the rest on pool workers. Blocks until all slots finish;
/// rethrows the first exception. Falls back to a serial loop when called
/// from inside a pool worker (nested region) or when slots <= 1.
void run_on_pool(Index slots, const std::function<void(Index)>& job);

}  // namespace detail

/// Chunked parallel loop with worker-slot ids: fn(chunk_begin, chunk_end,
/// slot) over disjoint chunks covering [begin, end), slot < resolved
/// thread count. Chunks are handed out dynamically, so per-slot scratch
/// must not carry order-dependent state across chunks.
template <typename F>
void parallel_for_slots(Index begin, Index end, Index num_threads, F&& fn) {
  const Index n = end - begin;
  if (n <= 0) return;
  const Index threads = std::min(resolve_num_threads(num_threads), n);
  if (threads <= 1) {
    fn(begin, end, Index{0});
    return;
  }
  // Oversplit 8× for load balance; the counter is 64-bit so the final
  // overshooting fetch_add cannot wrap Index.
  const Index chunk = std::max(Index{1}, n / (threads * 8));
  std::atomic<std::int64_t> next{begin};
  detail::run_on_pool(threads, [&](Index slot) {
    for (;;) {
      const std::int64_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) break;
      const Index clo = static_cast<Index>(lo);
      fn(clo, std::min<Index>(end, clo + chunk), slot);
    }
  });
}

/// Element-wise parallel loop: fn(i) for every i in [begin, end). Results
/// must be written to disjoint locations; iteration order is unspecified.
template <typename F>
void parallel_for(Index begin, Index end, Index num_threads, F&& fn) {
  parallel_for_slots(begin, end, num_threads,
                     [&fn](Index lo, Index hi, Index /*slot*/) {
                       for (Index i = lo; i < hi; ++i) fn(i);
                     });
}

/// Number of fixed chunks a parallel_reduce splits its range into. The
/// boundaries depend only on the range size, which is what makes the
/// reduction deterministic across thread counts.
inline constexpr Index kReduceChunks = 64;

/// Deterministic chunked reduction. map(chunk_begin, chunk_end) produces a
/// partial T per fixed chunk; partials are combined left-to-right in chunk
/// order starting from `identity`. Bit-identical for every thread count.
template <typename T, typename MapF, typename CombineF>
[[nodiscard]] T parallel_reduce(Index begin, Index end, Index num_threads,
                                T identity, MapF&& map, CombineF&& combine) {
  const Index n = end - begin;
  if (n <= 0) return identity;
  const Index chunk = (n + kReduceChunks - 1) / kReduceChunks;
  const Index num_chunks = (n + chunk - 1) / chunk;
  std::vector<T> partial(static_cast<std::size_t>(num_chunks), identity);
  parallel_for(0, num_chunks, num_threads, [&](Index c) {
    const Index lo = begin + c * chunk;
    partial[static_cast<std::size_t>(c)] = map(lo, std::min(end, lo + chunk));
  });
  T acc = identity;
  for (Index c = 0; c < num_chunks; ++c)
    acc = combine(acc, partial[static_cast<std::size_t>(c)]);
  return acc;
}

}  // namespace sgl::parallel
