// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (measurement generation, HNSW
// level sampling, k-means++ seeding, graph generators, ...) draws from an
// explicitly seeded sgl::Rng so that experiments are reproducible
// bit-for-bit on a given platform. The engine is xoshiro256** 1.0
// (Blackman & Vigna, public domain), which is fast, has a 256-bit state,
// and passes BigCrush.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace sgl {

/// xoshiro256** engine with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a single 64-bit seed via splitmix64,
  /// the initialization recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] Real uniform() noexcept {
    return static_cast<Real>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] Real uniform(Real lo, Real hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept {
    SGL_ASSERT(n > 0, "uniform_index needs a nonempty range");
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform Index in [0, n).
  [[nodiscard]] Index uniform_int(Index n) noexcept {
    return static_cast<Index>(uniform_index(static_cast<std::uint64_t>(n)));
  }

  /// Standard normal deviate (Marsaglia polar method, cached pair).
  [[nodiscard]] Real normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    Real u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const Real factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * factor;
    has_cached_ = true;
    return u * factor;
  }

  /// Random sign, ±1 with equal probability.
  [[nodiscard]] Real rademacher() noexcept {
    return ((*this)() & 1u) ? 1.0 : -1.0;
  }

  /// Splits off an independently seeded child stream; used to give each
  /// subcomponent its own reproducible stream.
  [[nodiscard]] Rng split() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  Real cached_ = 0.0;
  bool has_cached_ = false;
};

/// Fisher–Yates shuffle of an index-addressable container.
template <typename Container>
void shuffle(Container& c, Rng& rng) {
  for (std::size_t i = c.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_index(i);
    std::swap(c[i - 1], c[j]);
  }
}

}  // namespace sgl
