// SIMD-friendliness primitives shared by the dense hot-path kernels.
//
// Two small tools back the vectorization contract of DESIGN.md §9:
//
//   - SGL_RESTRICT marks pointers that the surrounding kernel guarantees
//     not to alias, so the compiler can keep register-blocked tile
//     accumulators live across the inner loop instead of reloading them
//     per iteration (the 8-wide tiles in la::spmm and the factor panels
//     only vectorize cleanly with the aliasing barrier removed).
//   - AlignedAllocator<T, kCacheLineBytes> gives std::vector storage a
//     64-byte alignment guarantee, so an 8-wide Real strip is one cache
//     line and an aligned vector load instead of two split lines.
//
// Alignment and restrict qualifiers change neither values nor evaluation
// order — every kernel keeps its fixed per-element accumulation order, so
// the bitwise determinism contract is unaffected.
#pragma once

#include <cstddef>
#include <new>

#if defined(__GNUC__) || defined(__clang__)
#define SGL_RESTRICT __restrict__
#elif defined(_MSC_VER)
#define SGL_RESTRICT __restrict
#else
#define SGL_RESTRICT
#endif

// Read-prefetch hint for gather loops whose index stream is known ahead
// of the data stream (the block-sweep strip gathers): a hint only — no
// loads, stores, or faults — so values and evaluation order are
// untouched and the determinism contract holds trivially.
#if defined(__GNUC__) || defined(__clang__)
#define SGL_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define SGL_PREFETCH(addr) ((void)0)
#endif

namespace sgl::common {

/// One x86/ARM cache line; also the widest vector register (AVX-512) in
/// bytes, so line-aligned storage is vector-aligned for every ISA tier.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal C++17-style aligned allocator: storage from operator
/// new(align_val_t), propagating the usual vector semantics. All
/// instances are interchangeable (stateless), so vectors move freely
/// across allocator copies.
template <typename T, std::size_t Alignment = kCacheLineBytes>
class AlignedAllocator {
  static_assert(Alignment >= alignof(T), "alignment below natural");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment not a power of 2");

 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  // NOLINTNEXTLINE(google-explicit-constructor): allocator rebind idiom.
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

}  // namespace sgl::common
