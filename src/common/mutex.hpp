// Annotated mutual-exclusion primitives.
//
// `Mutex` is a std::mutex carrying Clang thread-safety capability
// attributes, and `MutexLock` its RAII guard (a SCOPED_CAPABILITY). All
// lock-protected state in the library uses these instead of raw
// std::mutex / std::lock_guard: libstdc++'s types are unannotated, so
// the `-Wthread-safety` analysis (see common/thread_annotations.hpp and
// DESIGN.md §7) cannot track them — with the wrapper, a member declared
// `SGL_GUARDED_BY(mutex_)` is statically checked to be touched only
// while `mutex_` is held.
//
// Condition-variable waits use std::condition_variable_any with the
// Mutex itself as the Lockable (`cv.wait(mutex_)` inside a held
// MutexLock region): the wait's internal unlock/relock happens inside
// unanalyzed library code, so the analysis sees the capability as held
// across the wait — which is exactly the invariant the surrounding code
// relies on (guarded state is only read between waits, with the lock
// held).
#pragma once

#include <mutex>

#include "common/thread_annotations.hpp"

namespace sgl::common {

/// std::mutex annotated as a thread-safety capability.
class SGL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SGL_ACQUIRE() { mutex_.lock(); }
  void unlock() SGL_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() SGL_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  std::mutex mutex_;
};

/// RAII guard over Mutex; the analysis treats construction as acquiring
/// and destruction as releasing the capability.
class SGL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SGL_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SGL_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace sgl::common
