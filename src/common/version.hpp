// Library version constants.
#pragma once

namespace sgl {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;

/// "major.minor.patch" string of this library build.
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace sgl
