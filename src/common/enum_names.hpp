// One generic name↔enum table for every CLI-facing option enum.
//
// Each option module (solver method, factorization ordering, embedding
// engine) declares a constexpr table of {value, name} pairs and derives
// its three public functions from it — the printable name, the strict
// parser, and the joined valid-name list the CLI prints on rejection.
// Before this header the name/parse pair was hand-rolled per enum
// (switch + loop), and the valid-name list did not exist at all, so
// `sgl_learn` could reject a value without saying what it accepts.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>

namespace sgl::common {

/// One row of an enum name table. `name` must be a string literal (the
/// lookup returns it as a `const char*`).
template <typename Enum>
struct EnumName {
  Enum value;
  const char* name;
};

/// Printable name of `value`, or "unknown" for a value missing from the
/// table (unreachable for exhaustive tables; kept as a safe fallback).
template <typename Enum, std::size_t N>
[[nodiscard]] constexpr const char* enum_name(
    const std::array<EnumName<Enum>, N>& table, Enum value) noexcept {
  for (const EnumName<Enum>& row : table)
    if (row.value == value) return row.name;
  return "unknown";
}

/// Strict inverse of enum_name: exact-match lookup, nullopt for unknown
/// names (callers reject, they never default).
template <typename Enum, std::size_t N>
[[nodiscard]] constexpr std::optional<Enum> parse_enum(
    const std::array<EnumName<Enum>, N>& table, std::string_view name) noexcept {
  for (const EnumName<Enum>& row : table)
    if (name == row.name) return row.value;
  return std::nullopt;
}

/// Comma-joined list of every valid name, in table order — what the CLI
/// prints next to "unknown --option" before exiting 2.
template <typename Enum, std::size_t N>
[[nodiscard]] std::string enum_name_list(
    const std::array<EnumName<Enum>, N>& table) {
  std::string out;
  for (const EnumName<Enum>& row : table) {
    if (!out.empty()) out += ", ";
    out += row.name;
  }
  return out;
}

}  // namespace sgl::common
