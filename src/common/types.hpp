// Fundamental scalar and index types shared by every sgl module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace sgl {

/// Node / edge index type. Graphs in this library are bounded by 2^31-1
/// vertices and edges, which comfortably covers the paper's largest test
/// case (150k nodes) with headroom for ~2e9-element meshes.
using Index = std::int32_t;

/// Floating-point scalar used throughout (measurements, weights, spectra).
using Real = double;

/// Sentinel for "no index" (e.g. unvisited BFS nodes, absent parents).
inline constexpr Index kInvalidIndex = -1;

/// Converts a container size to Index, used where sizes are known to fit.
[[nodiscard]] constexpr Index to_index(std::size_t n) noexcept {
  return static_cast<Index>(n);
}

/// Machine epsilon shorthand for tolerance defaults.
inline constexpr Real kEps = std::numeric_limits<Real>::epsilon();

}  // namespace sgl
