#include "core/refine.hpp"

#include <algorithm>
#include <cmath>

#include "spectral/embedding.hpp"

namespace sgl::core {

RefineResult refine_edge_weights(graph::Graph& g, const la::DenseMatrix& x,
                                 const RefineOptions& options) {
  SGL_EXPECTS(x.rows() == g.num_nodes(),
              "refine_edge_weights: measurement rows must match nodes");
  SGL_EXPECTS(x.cols() >= 1, "refine_edge_weights: empty measurements");
  SGL_EXPECTS(options.step > 0.0 && options.step <= 1.0,
              "refine_edge_weights: step must lie in (0, 1]");
  SGL_EXPECTS(options.max_change > 1.0,
              "refine_edge_weights: max_change must exceed 1");

  const Real m = static_cast<Real>(x.cols());
  // z_data is independent of the weights: compute once.
  la::Vector z_data(static_cast<std::size_t>(g.num_edges()));
  for (Index e = 0; e < g.num_edges(); ++e) {
    const graph::Edge& edge = g.edge(e);
    z_data[static_cast<std::size_t>(e)] =
        std::max(x.row_distance_squared(edge.s, edge.t), Real{1e-300}) / m;
  }

  RefineResult result;
  const Real log_clamp = std::log(options.max_change);
  for (Index it = 0; it < options.max_iterations; ++it) {
    const spectral::Embedding embedding =
        spectral::compute_embedding(g, options.embedding);
    Real max_log_ratio = 0.0;
    for (Index e = 0; e < g.num_edges(); ++e) {
      const graph::Edge& edge = g.edge(e);
      const Real z_emb = std::max(
          embedding.u.row_distance_squared(edge.s, edge.t), Real{1e-300});
      const Real log_ratio =
          std::log(z_emb) - std::log(z_data[static_cast<std::size_t>(e)]);
      max_log_ratio = std::max(max_log_ratio, std::abs(log_ratio));
      const Real update =
          std::clamp(options.step * log_ratio, -log_clamp, log_clamp);
      g.set_weight(e, edge.weight * std::exp(update));
    }
    result.iterations = it + 1;
    result.max_log_ratio = max_log_ratio;
    if (max_log_ratio < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace sgl::core
