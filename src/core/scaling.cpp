#include "core/scaling.hpp"

#include <cmath>

#include "common/parallel.hpp"

namespace sgl::core {

Real spectral_edge_scale_factor(const graph::Graph& g, const la::DenseMatrix& x,
                                const la::DenseMatrix& y,
                                const solver::LaplacianSolverOptions& solver,
                                Index num_threads) {
  SGL_EXPECTS(x.rows() == g.num_nodes() && y.rows() == g.num_nodes(),
              "spectral_edge_scale_factor: measurement row count mismatch");
  SGL_EXPECTS(x.cols() == y.cols() && x.cols() >= 1,
              "spectral_edge_scale_factor: X and Y must pair up");

  // The M solves are multi-RHS block applies of a shared factorization
  // (eq. 22: x̃_i = L⁺ y_i), issued per fixed column chunk inside the
  // deterministic reduction so only one n×chunk scratch block lives per
  // worker (the solutions collapse to column norms immediately — a full
  // n×M block would be dead weight). Chunk boundaries depend only on M,
  // so the factor is bit-identical for every thread count.
  const solver::LaplacianPinvSolver pinv(g, solver);
  const Index n = g.num_nodes();
  const Index m = x.cols();
  const Real ratio_sum = parallel::parallel_reduce(
      0, m, num_threads, Real{0.0},
      [&](Index lo, Index hi) {
        la::DenseMatrix xt(n, hi - lo);
        const la::ConstBlockView rhs{
            y.data().data() + static_cast<std::size_t>(lo) * n, n, hi - lo};
        pinv.apply_block(rhs, la::view_of(xt), 1);
        Real local = 0.0;
        for (Index i = lo; i < hi; ++i) {
          Real xt_norm2 = 0.0;
          for (const Real v : xt.col(i - lo)) xt_norm2 += v * v;
          Real x_norm2 = 0.0;
          for (const Real v : x.col(i)) x_norm2 += v * v;
          SGL_EXPECTS(x_norm2 > 0.0,
                      "spectral_edge_scale_factor: zero voltage measurement");
          local += xt_norm2 / x_norm2;
        }
        return local;
      },
      [](Real a, Real b) { return a + b; });
  return std::sqrt(ratio_sum / static_cast<Real>(m));
}

Real apply_spectral_edge_scaling(graph::Graph& g, const la::DenseMatrix& x,
                                 const la::DenseMatrix& y,
                                 const solver::LaplacianSolverOptions& solver,
                                 Index num_threads) {
  const Real factor = spectral_edge_scale_factor(g, x, y, solver, num_threads);
  if (factor > 0.0) g.scale_weights(factor);
  return factor;
}

}  // namespace sgl::core
