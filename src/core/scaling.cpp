#include "core/scaling.hpp"

#include <cmath>

#include "common/parallel.hpp"

namespace sgl::core {

Real spectral_edge_scale_factor(const graph::Graph& g, const la::DenseMatrix& x,
                                const la::DenseMatrix& y,
                                const solver::LaplacianSolverOptions& solver,
                                Index num_threads) {
  SGL_EXPECTS(x.rows() == g.num_nodes() && y.rows() == g.num_nodes(),
              "spectral_edge_scale_factor: measurement row count mismatch");
  SGL_EXPECTS(x.cols() == y.cols() && x.cols() >= 1,
              "spectral_edge_scale_factor: X and Y must pair up");

  // The M solves share one factorization and are independent; the ratio
  // sum is a deterministic chunk-ordered reduction, so the factor is
  // bit-identical for every thread count.
  const solver::LaplacianPinvSolver pinv(g, solver);
  const Index m = x.cols();
  const Real ratio_sum = parallel::parallel_reduce(
      0, m, num_threads, Real{0.0},
      [&](Index lo, Index hi) {
        Real local = 0.0;
        for (Index i = lo; i < hi; ++i) {
          const la::Vector xt = pinv.apply(y.col_vector(i));  // x̃_i (eq. 22)
          const Real x_norm2 = la::norm2_squared(x.col_vector(i));
          SGL_EXPECTS(x_norm2 > 0.0,
                      "spectral_edge_scale_factor: zero voltage measurement");
          local += la::norm2_squared(xt) / x_norm2;
        }
        return local;
      },
      [](Real a, Real b) { return a + b; });
  return std::sqrt(ratio_sum / static_cast<Real>(m));
}

Real apply_spectral_edge_scaling(graph::Graph& g, const la::DenseMatrix& x,
                                 const la::DenseMatrix& y,
                                 const solver::LaplacianSolverOptions& solver,
                                 Index num_threads) {
  const Real factor = spectral_edge_scale_factor(g, x, y, solver, num_threads);
  if (factor > 0.0) g.scale_weights(factor);
  return factor;
}

}  // namespace sgl::core
