#include "core/scaling.hpp"

#include <cmath>

#include "common/parallel.hpp"

namespace sgl::core {
namespace {

/// Eq.-23 energy-ratio sweep against an already-built solver. The M
/// solves are multi-RHS block applies of the shared factorization
/// (eq. 22: x̃_i = L⁺ y_i), issued per fixed column chunk inside the
/// deterministic reduction so only one n×chunk scratch block lives per
/// worker (the solutions collapse to column norms immediately — a full
/// n×M block would be dead weight). Chunk boundaries depend only on M,
/// so the factor is bit-identical for every thread count.
Real scale_factor_with(const solver::LaplacianPinvSolver& pinv,
                       const la::DenseMatrix& x, const la::DenseMatrix& y,
                       Index num_threads) {
  const Index n = x.rows();
  const Index m = x.cols();
  const Real ratio_sum = parallel::parallel_reduce(
      0, m, num_threads, Real{0.0},
      [&](Index lo, Index hi) {
        la::DenseMatrix xt(n, hi - lo);
        const la::ConstBlockView rhs{
            y.data().data() + static_cast<std::size_t>(lo) * n, n, hi - lo};
        pinv.apply_block(rhs, la::view_of(xt), 1);
        Real local = 0.0;
        for (Index i = lo; i < hi; ++i) {
          Real xt_norm2 = 0.0;
          for (const Real v : xt.col(i - lo)) xt_norm2 += v * v;
          Real x_norm2 = 0.0;
          for (const Real v : x.col(i)) x_norm2 += v * v;
          SGL_EXPECTS(x_norm2 > 0.0,
                      "spectral_edge_scale_factor: zero voltage measurement");
          local += xt_norm2 / x_norm2;
        }
        return local;
      },
      [](Real a, Real b) { return a + b; });
  return std::sqrt(ratio_sum / static_cast<Real>(m));
}

void check_scale_inputs(const graph::Graph& g, const la::DenseMatrix& x,
                        const la::DenseMatrix& y) {
  SGL_EXPECTS(x.rows() == g.num_nodes() && y.rows() == g.num_nodes(),
              "spectral_edge_scale_factor: measurement row count mismatch");
  SGL_EXPECTS(x.cols() == y.cols() && x.cols() >= 1,
              "spectral_edge_scale_factor: X and Y must pair up");
}

}  // namespace

Real spectral_edge_scale_factor(const graph::Graph& g, const la::DenseMatrix& x,
                                const la::DenseMatrix& y,
                                const solver::LaplacianSolverOptions& solver,
                                Index num_threads) {
  check_scale_inputs(g, x, y);
  const solver::LaplacianPinvSolver pinv(g, solver);
  return scale_factor_with(pinv, x, y, num_threads);
}

Real spectral_edge_scale_factor(const graph::Graph& g, const la::DenseMatrix& x,
                                const la::DenseMatrix& y,
                                solver::SolverContext& context,
                                Index num_threads) {
  check_scale_inputs(g, x, y);
  return scale_factor_with(context.acquire(g), x, y, num_threads);
}

Real apply_spectral_edge_scaling(graph::Graph& g, const la::DenseMatrix& x,
                                 const la::DenseMatrix& y,
                                 const solver::LaplacianSolverOptions& solver,
                                 Index num_threads) {
  const Real factor = spectral_edge_scale_factor(g, x, y, solver, num_threads);
  if (factor > 0.0) g.scale_weights(factor);
  return factor;
}

Real apply_spectral_edge_scaling(graph::Graph& g, const la::DenseMatrix& x,
                                 const la::DenseMatrix& y,
                                 solver::SolverContext& context,
                                 Index num_threads) {
  const Real factor = spectral_edge_scale_factor(g, x, y, context, num_threads);
  if (factor > 0.0) g.scale_weights(factor);
  return factor;
}

}  // namespace sgl::core
