// SGL: spectral graph learning from measurements (paper Algorithm 1).
//
// Given voltage measurements X ∈ R^{N×M} (and optionally the matching
// current excitations Y), SGL learns an ultra-sparse resistor network
// whose spectral-embedding distances encode the measurement distances:
//
//   1. build a kNN candidate graph Go over the rows of X
//      (weights w = M/‖X(s,:)−X(t,:)‖², eq. 15);
//   2. initialize the learned graph G as the maximum spanning tree of Go;
//   3. iterate: spectral embedding Ur of G (eq. 12) → edge sensitivities
//      s_st = ‖Urᵀe_st‖² − (1/M)‖Xᵀe_st‖² for off-tree candidates
//      (eq. 13) → include the top ⌈Nβ⌉ candidates with s_st > tol;
//   4. stop when smax < tol (the distortion certificate of §II-C);
//   5. spectral edge scaling against Y (eqs. 21–23).
//
// SglLearner exposes the loop step by step (for per-iteration objective
// tracking); learn_graph() is the one-shot convenience entry point.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/contracts.hpp"
#include "eig/lanczos.hpp"
#include "graph/graph.hpp"
#include "knn/knn_graph.hpp"
#include "la/dense_matrix.hpp"
#include "solver/laplacian_solver.hpp"
#include "solver/solver_context.hpp"
#include "spectral/embedding.hpp"

namespace sgl::core {

struct SglConfig {
  /// kNN parameter for the candidate graph (paper default k = 5).
  Index k = 5;
  /// Sensitivity tolerance (paper: iterations stop at smax < 1e-12).
  Real tolerance = 1e-12;
  /// Edge sampling ratio β: at most ⌈Nβ⌉ edges join per iteration.
  Real beta = 1e-3;
  Index max_iterations = 1000;
  /// Apply eq. 21–23 scaling in finalize() when currents are available.
  bool edge_scaling = true;
  /// Worker threads for the hot paths (kNN build, sensitivity scan, edge
  /// scaling solves): 0 = library default (SGL_NUM_THREADS/hardware),
  /// 1 = serial. Results are bit-identical for every thread count. A
  /// nonzero knn.num_threads takes precedence for the kNN stage.
  Index num_threads = 0;
  /// kNN backend/connectivity knobs (k above overrides knn.k).
  knn::KnnGraphOptions knn;
  /// Every per-iteration embedding knob in one place: the order r, the
  /// prior variance σ², the engine selection (exact / solver-free / auto)
  /// and the engine-specific options (lanczos + solver for exact, sf for
  /// solver-free). embedding.solver also serves the edge-scaling solves.
  /// Before this struct existed the r/sigma2/lanczos/solver knobs were
  /// duplicated here and copied field-by-field each iteration.
  spectral::EmbeddingOptions embedding;
  /// Incremental-relearning mode of the learner's SolverContext
  /// (DESIGN.md §8). kOff (the default) rebuilds every solver from
  /// scratch exactly as before this knob existed — bitwise-identical
  /// results. kOn/kAuto keep ONE warm factorization across step() calls,
  /// apply each added edge as a rank-1 update, and warm-start the exact
  /// engine's Lanczos from the previous iteration's eigenvectors; kAuto
  /// additionally renumerates on the context's accumulation thresholds.
  /// Determinism is per mode: an incremental run is bitwise-reproducible
  /// across thread counts, but may differ from a kOff run in floating
  /// point. CLI: `sgl_learn --incremental {auto,on,off}`.
  solver::IncrementalMode incremental = solver::IncrementalMode::kOff;
  /// Optional per-iteration observer (progress logging in benches).
  std::function<void(Index iteration, Real smax, Index edges_added)> observer;
};

struct SglIterationStats {
  Index iteration = 0;      // 1-based
  Real smax = 0.0;          // max candidate sensitivity before additions
  Index edges_added = 0;
  Index total_edges = 0;    // learned-graph edges after this iteration
  double seconds = 0.0;     // wall time of this iteration
  /// The block eigensolver behind this iteration's embedding met its
  /// residual tolerance. False means the sensitivities were computed from
  /// the best available (unconverged) Ritz pairs — raise
  /// SglConfig::embedding.lanczos.max_subspace if this persists. Always
  /// true for the solver-free engine (fixed-work projection).
  bool eig_converged = true;
  /// Engine that computed this iteration's embedding (kAuto resolved).
  spectral::EmbeddingEngine engine = spectral::EmbeddingEngine::kExact;
  /// Total weighted-Jacobi sweeps of the solver-free engine (0 for exact).
  Index smoother_sweeps = 0;
  /// Coarsening levels of the solver-free hierarchy (0 for exact).
  Index hierarchy_levels = 0;
};

struct SglResult {
  graph::Graph learned;               // final learned graph
  graph::Graph knn_graph;             // candidate graph Go
  std::vector<Index> tree_edge_ids;   // MST edge ids into knn_graph
  std::vector<SglIterationStats> history;
  Index iterations = 0;
  /// The smax < tolerance distortion certificate was reached (§II-C).
  bool converged = false;
  /// The candidate pool drained before the certificate was reached: every
  /// off-tree kNN edge was added, yet final_smax may still exceed the
  /// tolerance. Distinct from `converged` — an exhausted run has no
  /// distortion guarantee (consider a larger k).
  bool exhausted = false;
  Real final_smax = 0.0;
  Real scale_factor = 1.0;            // eq. 23 factor (1 if not applied)
  double knn_seconds = 0.0;           // Step 1 (excluded from Fig. 11 runtime)
  double learn_seconds = 0.0;         // Steps 2–5
};

class SglLearner {
 public:
  /// Builds the candidate graph and the initial spanning tree (Step 1).
  SglLearner(const la::DenseMatrix& x, SglConfig config);

  /// Runs one SGL iteration (Steps 2–4). No-op once converged() or
  /// exhausted(). Returns the iteration's statistics.
  SglIterationStats step();

  /// smax fell below tolerance — the paper's distortion certificate.
  /// Candidate exhaustion does NOT imply convergence; check exhausted().
  [[nodiscard]] bool converged() const noexcept { return converged_; }
  /// All candidate edges have been added (possibly with smax ≥ tolerance).
  [[nodiscard]] bool exhausted() const noexcept { return candidates_.empty(); }
  [[nodiscard]] Index iteration() const noexcept { return iteration_; }
  [[nodiscard]] Real last_smax() const noexcept { return last_smax_; }
  [[nodiscard]] const graph::Graph& current_graph() const noexcept {
    return learned_;
  }
  [[nodiscard]] const graph::Graph& knn_graph() const noexcept { return knn_; }
  [[nodiscard]] const std::vector<SglIterationStats>& history() const noexcept {
    return history_;
  }

  /// Step 5 + result assembly. Pass the currents Y to enable edge scaling
  /// (nullptr skips it, as in the voltage-only reduced-network setting).
  [[nodiscard]] SglResult finalize(const la::DenseMatrix* y) const;

  /// Drives step() to convergence (or max_iterations), then finalizes.
  [[nodiscard]] SglResult run(const la::DenseMatrix* y);

  /// The learner's solver context (mode = SglConfig::incremental):
  /// rebuild/update/refactorization counters for diagnostics, and the
  /// warm solver for metric consumers that want to reuse it.
  [[nodiscard]] const solver::SolverContext& solver_context() const noexcept {
    return *context_;
  }
  [[nodiscard]] solver::SolverContext& solver_context() noexcept {
    return *context_;
  }

 private:
  struct Candidate {
    Index s = 0;
    Index t = 0;
    Real z_data = 0.0;  // ‖X(s,:)−X(t,:)‖² (clamped as in the kNN weights)
  };

  SglConfig config_;
  const la::DenseMatrix& x_;
  /// Warm solver state shared by every solver consumer of the loop
  /// (embedding, finalize scaling; DESIGN.md §8). Mutable because
  /// finalize() is const yet legitimately reuses/refreshes the cache —
  /// the classic mutable-cache case; results are independent of the
  /// cache state within a mode.
  mutable std::unique_ptr<solver::SolverContext> context_;
  graph::Graph knn_;
  graph::Graph learned_;
  std::vector<Index> tree_edge_ids_;
  std::vector<Candidate> candidates_;
  std::vector<SglIterationStats> history_;
  Index iteration_ = 0;
  Real last_smax_ = 0.0;
  bool converged_ = false;
  double knn_seconds_ = 0.0;
  double learn_seconds_ = 0.0;
};

/// One-shot SGL with measurement pair (X, Y): learns and scales.
[[nodiscard]] SglResult learn_graph(const la::DenseMatrix& x,
                                    const la::DenseMatrix& y,
                                    const SglConfig& config = {});

/// Voltage-only SGL (no scaling step), e.g. for reduced-network learning.
[[nodiscard]] SglResult learn_graph(const la::DenseMatrix& x,
                                    const SglConfig& config = {});

}  // namespace sgl::core
