// Spectral edge scaling (paper Step 5, eqs. 21–23).
//
// After the topology is learned, one global factor matches the learned
// graph's response magnitude to the measurements: voltages x̃_i are solved
// on the learned graph for every measured current y_i, and all edge
// weights are multiplied by √((1/M) Σ ‖x̃_i‖²/‖x_i‖²). Scaling every
// conductance by c divides voltages by c, so this choice makes the mean
// energy ratio exactly 1. Shared by the SGL core and the kNN baseline
// (the paper applies the same scaling to both).
#pragma once

#include "graph/graph.hpp"
#include "la/dense_matrix.hpp"
#include "solver/laplacian_solver.hpp"
#include "solver/solver_context.hpp"

namespace sgl::core {

/// Returns the eq.-23 scale factor for `g` given measurement pairs (X, Y).
/// Columns of Y are centered internally (pseudo-inverse semantics). The M
/// independent solves run in parallel (`num_threads` 0 = library default,
/// 1 = serial); the energy-ratio sum uses a deterministic chunk-ordered
/// reduction, so the factor is bit-identical for every thread count.
[[nodiscard]] Real spectral_edge_scale_factor(
    const graph::Graph& g, const la::DenseMatrix& x, const la::DenseMatrix& y,
    const solver::LaplacianSolverOptions& solver = {}, Index num_threads = 0);

/// Applies the factor in place; returns it.
Real apply_spectral_edge_scaling(
    graph::Graph& g, const la::DenseMatrix& x, const la::DenseMatrix& y,
    const solver::LaplacianSolverOptions& solver = {}, Index num_threads = 0);

/// Context-aware overloads (DESIGN.md §8): the M solves reuse
/// `context.acquire(g)` — for the learner, the warm factorization the
/// last iteration's embedding used — instead of building a fresh
/// LaplacianPinvSolver for the one-shot scaling step.
[[nodiscard]] Real spectral_edge_scale_factor(const graph::Graph& g,
                                              const la::DenseMatrix& x,
                                              const la::DenseMatrix& y,
                                              solver::SolverContext& context,
                                              Index num_threads = 0);
Real apply_spectral_edge_scaling(graph::Graph& g, const la::DenseMatrix& x,
                                 const la::DenseMatrix& y,
                                 solver::SolverContext& context,
                                 Index num_threads = 0);

}  // namespace sgl::core
