#include "core/sgl.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/scaling.hpp"
#include "graph/mst.hpp"
#include "spectral/embedding.hpp"

namespace sgl::core {

SglLearner::SglLearner(const la::DenseMatrix& x, SglConfig config)
    : config_(std::move(config)), x_(x) {
  SGL_EXPECTS(x.rows() >= 3, "SglLearner: need at least three nodes");
  SGL_EXPECTS(x.cols() >= 1, "SglLearner: need at least one measurement");
  SGL_EXPECTS(config_.k >= 1 && config_.k < x.rows(),
              "SglLearner: need 1 <= k < N");

  SGL_EXPECTS(config_.embedding.r >= 2, "SglLearner: r must be at least 2");
  SGL_EXPECTS(config_.embedding.sigma2 > 0.0,
              "SglLearner: sigma2 must be positive");
  SGL_EXPECTS(config_.beta > 0.0 && config_.beta <= 1.0,
              "SglLearner: beta must lie in (0, 1]");
  SGL_EXPECTS(config_.tolerance >= 0.0,
              "SglLearner: tolerance must be nonnegative");

  // Every embedding backend inherits the learner's thread knob unless its
  // options pin their own (results are identical either way).
  if (config_.embedding.solver.num_threads == 0)
    config_.embedding.solver.num_threads = config_.num_threads;
  if (config_.embedding.lanczos.num_threads == 0)
    config_.embedding.lanczos.num_threads = config_.num_threads;
  if (config_.embedding.sf.num_threads == 0)
    config_.embedding.sf.num_threads = config_.num_threads;

  // The loop-wide solver context (DESIGN.md §8): every solver consumer of
  // this learner goes through it. Created after the thread-knob merge so
  // it inherits the effective solver options. In kOff it rebuilds on
  // every acquire — the historical per-consumer behavior, bitwise.
  solver::SolverContextOptions context_options;
  context_options.mode = config_.incremental;
  context_options.solver = config_.embedding.solver;
  context_ = std::make_unique<solver::SolverContext>(context_options);

  // Step 1: candidate kNN graph and its maximum spanning tree.
  WallTimer knn_timer;
  knn::KnnGraphOptions knn_options = config_.knn;
  knn_options.k = config_.k;
  knn_options.ensure_connected = true;  // MST initialization needs it
  if (knn_options.num_threads == 0) knn_options.num_threads = config_.num_threads;
  knn_ = knn::build_knn_graph(x_, knn_options);
  knn_seconds_ = knn_timer.seconds();

  const WallTimer init_timer;
  tree_edge_ids_ = graph::maximum_spanning_forest(knn_);
  learned_ = graph::subgraph_from_edges(knn_, tree_edge_ids_);

  // Off-tree edges become the candidate pool; z_data is recovered from the
  // kNN weight (w = M / z_data, eq. 15) so clamping stays consistent.
  std::vector<bool> in_tree(static_cast<std::size_t>(knn_.num_edges()), false);
  for (const Index id : tree_edge_ids_) in_tree[static_cast<std::size_t>(id)] = true;
  const Real m = static_cast<Real>(x_.cols());
  candidates_.reserve(static_cast<std::size_t>(knn_.num_edges()) -
                      tree_edge_ids_.size());
  for (Index id = 0; id < knn_.num_edges(); ++id) {
    if (in_tree[static_cast<std::size_t>(id)]) continue;
    const graph::Edge& e = knn_.edge(id);
    candidates_.push_back({e.s, e.t, m / e.weight});
  }
  learn_seconds_ += init_timer.seconds();
}

SglIterationStats SglLearner::step() {
  SglIterationStats stats;
  if (converged_ || candidates_.empty()) {
    // An empty candidate pool is exhaustion, not convergence: the last
    // observed smax may still exceed the tolerance, so the distortion
    // certificate does not hold. Both states make step() a no-op.
    stats.iteration = iteration_;
    stats.total_edges = learned_.num_edges();
    return stats;
  }

  const WallTimer timer;
  ++iteration_;

  // Step 2: spectral embedding of the current learned graph through the
  // engine seam — exact, solver-free, or auto per config_.embedding.engine
  // (thread knobs were merged in the constructor).
  const spectral::Embedding embedding =
      spectral::compute_embedding(learned_, config_.embedding, context_.get());
  stats.eig_converged = embedding.eig_converged;
  stats.engine = embedding.engine_used;
  stats.smoother_sweeps = embedding.smoother_sweeps;
  stats.hierarchy_levels = embedding.hierarchy_levels;

  // Step 3: candidate sensitivities s_st = z_emb − z_data / M (eq. 13).
  // Each candidate's sensitivity is independent, so the scan fills the
  // array in parallel; the running maximum is a chunk-ordered reduction,
  // bit-identical to the serial scan for every thread count.
  const Real m = static_cast<Real>(x_.cols());
  const std::size_t num_candidates = candidates_.size();
  std::vector<Real> sensitivity(num_candidates);
  const Real smax = parallel::parallel_reduce(
      0, to_index(num_candidates), config_.num_threads,
      -std::numeric_limits<Real>::infinity(),
      [&](Index lo, Index hi) {
        Real local = -std::numeric_limits<Real>::infinity();
        for (Index c = lo; c < hi; ++c) {
          const Candidate& cand = candidates_[static_cast<std::size_t>(c)];
          const Real z_emb = embedding.u.row_distance_squared(cand.s, cand.t);
          sensitivity[static_cast<std::size_t>(c)] = z_emb - cand.z_data / m;
          local = std::max(local, sensitivity[static_cast<std::size_t>(c)]);
        }
        return local;
      },
      [](Real a, Real b) { return std::max(a, b); });
  last_smax_ = smax;
  stats.iteration = iteration_;
  stats.smax = smax;

  // Step 4: convergence check.
  if (smax < config_.tolerance) {
    converged_ = true;
    stats.total_edges = learned_.num_edges();
    stats.seconds = timer.seconds();
    learn_seconds_ += stats.seconds;
    history_.push_back(stats);
    if (config_.observer) config_.observer(iteration_, smax, 0);
    return stats;
  }

  // Include the top ⌈Nβ⌉ candidates whose sensitivity exceeds tolerance.
  // Ranking uses sensitivities quantized to kTieResolution relative to
  // smax, with candidate order as the canonical tie-break: symmetric
  // graphs produce exactly tied candidates whose float images differ only
  // by eigensolver rounding, and without quantization the selection (and
  // thus the learned graph) would depend on sub-tolerance noise of
  // whichever eigensolver backend computed the embedding.
  const Index budget = static_cast<Index>(std::ceil(
      static_cast<Real>(learned_.num_nodes()) * config_.beta));
  std::vector<Index> order(num_candidates);
  std::iota(order.begin(), order.end(), Index{0});
  const Index take = std::min<Index>(budget, to_index(num_candidates));
  constexpr Real kTieResolution = 1e-6;
  const Real quantum = std::abs(smax) * kTieResolution;
  const auto rank = [&sensitivity, quantum](Index c) {
    const Real s = sensitivity[static_cast<std::size_t>(c)];
    return quantum > 0.0 ? std::floor(s / quantum) : s;
  };
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&rank](Index a, Index b) {
                      const Real ra = rank(a);
                      const Real rb = rank(b);
                      if (ra != rb) return ra > rb;
                      return a < b;
                    });

  std::vector<bool> remove(num_candidates, false);
  Index added = 0;
  for (Index i = 0; i < take; ++i) {
    const Index idx = order[static_cast<std::size_t>(i)];
    if (sensitivity[static_cast<std::size_t>(idx)] <= config_.tolerance) break;
    const Candidate& cand = candidates_[static_cast<std::size_t>(idx)];
    learned_.add_edge(cand.s, cand.t, m / cand.z_data);
    remove[static_cast<std::size_t>(idx)] = true;
    ++added;
  }
  if (added > 0) {
    std::vector<Candidate> kept;
    kept.reserve(num_candidates - static_cast<std::size_t>(added));
    for (std::size_t c = 0; c < num_candidates; ++c)
      if (!remove[c]) kept.push_back(candidates_[c]);
    candidates_.swap(kept);
  } else {
    // added == 0 with smax ≥ tol is the boundary case: step 4 did not
    // fire, yet the top-ranked candidate is not strictly above the
    // tolerance (smax == tol exactly, or within one quantization bucket
    // of it — a ≤ kTieResolution·smax margin). Treat the certificate as
    // satisfied so the loop terminates; off-by-a-rounding-unit is the
    // strongest guarantee available here.
    converged_ = true;
  }

  stats.edges_added = added;
  stats.total_edges = learned_.num_edges();
  stats.seconds = timer.seconds();
  learn_seconds_ += stats.seconds;
  history_.push_back(stats);
  if (config_.observer) config_.observer(iteration_, smax, added);
  return stats;
}

SglResult SglLearner::finalize(const la::DenseMatrix* y) const {
  SglResult result;
  result.learned = learned_;
  result.knn_graph = knn_;
  result.tree_edge_ids = tree_edge_ids_;
  result.history = history_;
  result.iterations = iteration_;
  result.converged = converged_;
  result.exhausted = !converged_ && candidates_.empty();
  result.final_smax = last_smax_;
  result.knn_seconds = knn_seconds_;
  result.learn_seconds = learn_seconds_;

  if (y != nullptr && config_.edge_scaling) {
    const WallTimer timer;
    // Routed through the learner's context: in the incremental modes the
    // scaling solves reuse the warm factorization of the last iteration's
    // embedding (updated in place for any edges added since); in kOff the
    // context builds fresh, exactly as this call always did.
    result.scale_factor = apply_spectral_edge_scaling(
        result.learned, x_, *y, *context_, config_.num_threads);
    result.learn_seconds += timer.seconds();
  }
  return result;
}

SglResult SglLearner::run(const la::DenseMatrix* y) {
  while (!converged_ && !candidates_.empty() &&
         iteration_ < config_.max_iterations) {
    step();
  }
  return finalize(y);
}

SglResult learn_graph(const la::DenseMatrix& x, const la::DenseMatrix& y,
                      const SglConfig& config) {
  SGL_EXPECTS(x.rows() == y.rows() && x.cols() == y.cols(),
              "learn_graph: X and Y must have identical shape");
  SglLearner learner(x, config);
  return learner.run(&y);
}

SglResult learn_graph(const la::DenseMatrix& x, const SglConfig& config) {
  SglLearner learner(x, config);
  return learner.run(nullptr);
}

}  // namespace sgl::core
