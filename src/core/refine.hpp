// Stagewise per-edge weight refinement (extension).
//
// SGL's Algorithm 1 fixes each edge's weight at M/z_data when the edge is
// admitted and only rescales globally (eq. 23). The objective's gradient
// (paper eq. 4 with β = 0) is available per edge, though:
//   ∂F/∂w_e = ‖Urᵀe_st‖² − (1/M)‖Xᵀe_st‖² = z_emb(e) − z_data(e)/M,
// so the graph's weights can be polished after topology learning with the
// multiplicative stagewise scheme the paper points to via Tibshirani's
// framework [11]:
//   w_e ← w_e · ρ_e^step,  ρ_e = z_emb(e) / (z_data(e)/M),
// whose fixed point is exactly the per-edge stationarity z_emb = z_data/M.
// Increasing w_e decreases z_emb(e) (Rayleigh monotonicity), so the
// iteration is self-correcting; steps are clamped for stability.
#pragma once

#include "graph/graph.hpp"
#include "la/dense_matrix.hpp"
#include "spectral/embedding.hpp"

namespace sgl::core {

struct RefineOptions {
  Index max_iterations = 30;
  /// Exponent applied to the ratio per update (0 < step ≤ 1).
  Real step = 0.5;
  /// Per-iteration clamp on the multiplicative change of any weight.
  Real max_change = 2.0;
  /// Stop when every edge's |log ρ| falls below this.
  Real tolerance = 0.05;
  /// Gradient-estimate embedding (engine seam included). embedding.r
  /// defaults to 20 here — richer than the learning loop's r = 5, since
  /// refinement is a one-off post-pass.
  spectral::EmbeddingOptions embedding = [] {
    spectral::EmbeddingOptions o;
    o.r = 20;
    return o;
  }();
};

struct RefineResult {
  Index iterations = 0;
  bool converged = false;
  /// max |log ρ_e| at the last iteration (0 at the fixed point).
  Real max_log_ratio = 0.0;
};

/// Polishes the weights of `g` in place against measurements `x`.
/// Topology is untouched; weights stay strictly positive.
RefineResult refine_edge_weights(graph::Graph& g, const la::DenseMatrix& x,
                                 const RefineOptions& options = {});

}  // namespace sgl::core
