#include "eig/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "eig/dense_eig.hpp"

namespace sgl::eig {

namespace {

/// Removes the components of w along all columns of v (classical
/// Gram–Schmidt, two passes for stability) and along the deflated
/// all-ones direction. Re-centering inside every pass matters: when w
/// shrinks by many orders of magnitude during orthogonalization, a
/// rounding-level ones-component would otherwise be amplified back to
/// O(1) by the subsequent normalization and hand Lanczos a spurious
/// near-zero Ritz value.
void reorthogonalize(const std::vector<la::Vector>& v, la::Vector& w) {
  for (int pass = 0; pass < 2; ++pass) {
    la::center(w);
    for (const la::Vector& q : v) {
      const Real c = la::dot(w, q);
      if (c != 0.0) la::axpy(-c, q, w);
    }
  }
  la::center(w);
}

/// Fresh centered random direction orthogonal to the current basis.
/// Returns the norm after orthogonalization (≈0 once the 1-perp subspace
/// is exhausted).
Real fresh_direction(Rng& rng, const std::vector<la::Vector>& v, Index n,
                     la::Vector& out) {
  out.assign(static_cast<std::size_t>(n), 0.0);
  for (Real& x : out) x = rng.normal();
  la::center(out);
  reorthogonalize(v, out);
  const Real norm = la::norm2(out);
  if (norm > 0.0) la::scale(out, 1.0 / norm);
  return norm;
}

}  // namespace

EigenPairs largest_operator_eigenpairs(
    const std::function<la::Vector(const la::Vector&)>& apply, Index n,
    Index r, const LanczosOptions& options) {
  SGL_EXPECTS(n >= 2, "largest_operator_eigenpairs: n must be at least 2");
  SGL_EXPECTS(r >= 1 && r <= n - 1,
              "largest_operator_eigenpairs: need 1 <= r <= n-1");

  const Index m_cap = options.max_subspace > 0
                          ? std::min(options.max_subspace, n - 1)
                          : std::min(n - 1, std::max<Index>(3 * r + 16, 40));
  SGL_EXPECTS(m_cap >= r, "largest_operator_eigenpairs: subspace cap below r");

  // Degenerate eigenvalues surface one copy per Lanczos block: after a
  // breakdown the iteration restarts on a fresh random direction (a β = 0
  // block boundary), and after the top-r Ritz values first converge the
  // iteration keeps going for a short settling window so that duplicate
  // copies can still displace spurious trailing values.
  constexpr Index kSettleSteps = 6;
  // Relative threshold below which a new Lanczos direction is pure
  // rounding noise; √ε-scale is the classical safe choice (normalizing a
  // smaller w would promote noise to a basis vector).
  constexpr Real kBreakdownTol = 1e-8;

  Rng rng(options.seed);
  std::vector<la::Vector> v;  // Lanczos basis: centered, orthonormal
  v.reserve(static_cast<std::size_t>(m_cap));
  la::Vector alpha;  // diagonal of T
  la::Vector beta;   // sub-diagonal of T (0 at block boundaries)

  {
    la::Vector start;
    const Real norm = fresh_direction(rng, v, n, start);
    SGL_ENSURES(norm > 0.0, "largest_operator_eigenpairs: empty start vector");
    v.push_back(std::move(start));
  }

  EigenPairs out;
  la::Vector top_values;       // best-r operator Ritz values, descending
  la::DenseMatrix top_vectors; // matching T-eigenvector columns
  la::Vector settle_reference;
  Index settle_remaining = -1;

  for (Index j = 0; j < m_cap; ++j) {
    la::Vector w = apply(v[static_cast<std::size_t>(j)]);
    SGL_EXPECTS(to_index(w.size()) == n,
                "largest_operator_eigenpairs: operator changed dimension");
    la::center(w);  // deflate the known nullspace direction
    const Real a = la::dot(w, v[static_cast<std::size_t>(j)]);
    alpha.push_back(a);
    reorthogonalize(v, w);
    const Real b = la::norm2(w);

    const Index steps = j + 1;
    Real alpha_scale = 1.0;
    for (const Real x : alpha) alpha_scale = std::max(alpha_scale, std::abs(x));
    const bool breakdown = (b <= kBreakdownTol * alpha_scale);
    const bool exhausted = (steps == m_cap) || (steps == n - 1);

    bool finalize = false;
    bool all_done = false;
    if (steps >= r) {
      la::Vector sub(beta.begin(), beta.end());
      const DenseEigResult t_eig =
          tridiagonal_eig(alpha, sub, /*want_vectors=*/true);

      // Residual bound ‖A u_i − θ_i u_i‖ = β_j |y_i(j)|; pairs from frozen
      // blocks have y_i(j) = 0 and are exact.
      const Real b_eff = breakdown ? 0.0 : b;
      const Real theta_max =
          std::abs(t_eig.eigenvalues[static_cast<std::size_t>(steps - 1)]);
      Index converged_count = 0;
      for (Index i = 0; i < r && i < steps; ++i) {
        const Index col = steps - 1 - i;
        const Real resid = b_eff * std::abs(t_eig.eigenvectors(steps - 1, col));
        if (resid <= options.tolerance * std::max(theta_max, Real{1e-300}))
          ++converged_count;
        else
          break;
      }
      all_done = (converged_count >= r);

      // Snapshot the current best-r pairs.
      top_values.assign(static_cast<std::size_t>(r), 0.0);
      top_vectors = la::DenseMatrix(steps, r);
      for (Index i = 0; i < r; ++i) {
        const Index col = steps - 1 - i;
        if (col < 0) break;
        top_values[static_cast<std::size_t>(i)] =
            t_eig.eigenvalues[static_cast<std::size_t>(col)];
        for (Index k = 0; k < steps; ++k)
          top_vectors(k, i) = t_eig.eigenvectors(k, col);
      }

      if (all_done) {
        bool stable = (to_index(settle_reference.size()) == r);
        if (stable) {
          for (Index i = 0; i < r; ++i) {
            const Real ref = settle_reference[static_cast<std::size_t>(i)];
            const Real now = top_values[static_cast<std::size_t>(i)];
            if (std::abs(now - ref) >
                1e-9 * std::max(std::abs(ref), Real{1e-300})) {
              stable = false;
              break;
            }
          }
        }
        if (stable && settle_remaining >= 0) {
          --settle_remaining;
        } else {
          settle_remaining = kSettleSteps;
        }
        settle_reference = top_values;
        if (settle_remaining <= 0) finalize = true;
      } else {
        settle_remaining = -1;
        settle_reference.clear();
      }
      if (exhausted) finalize = true;

      if (finalize) {
        out.lanczos_steps = steps;
        out.converged = all_done;
        break;
      }
    }

    if (breakdown) {
      // Invariant subspace hit: open a new block on a fresh direction.
      la::Vector fresh;
      const Real norm = fresh_direction(rng, v, n, fresh);
      if (norm <= 1e-8) {
        // The whole 1-perp subspace is spanned: everything is exact.
        out.lanczos_steps = steps;
        out.converged = true;
        break;
      }
      beta.push_back(0.0);
      v.push_back(std::move(fresh));
    } else {
      beta.push_back(b);
      la::scale(w, 1.0 / b);
      v.push_back(std::move(w));
    }
  }

  if (out.lanczos_steps == 0) {
    // Loop ended without an explicit finalize (possible only via the
    // breakdown-exhaustion path before steps >= r, which contracts above
    // exclude) — treat defensively.
    out.lanczos_steps = to_index(alpha.size());
    if (top_values.empty()) {
      la::Vector sub(beta.begin(), beta.end());
      const DenseEigResult t_eig = tridiagonal_eig(alpha, sub, true);
      const Index steps = to_index(alpha.size());
      const Index take = std::min(r, steps);
      top_values.assign(static_cast<std::size_t>(take), 0.0);
      top_vectors = la::DenseMatrix(steps, take);
      for (Index i = 0; i < take; ++i) {
        const Index col = steps - 1 - i;
        top_values[static_cast<std::size_t>(i)] =
            t_eig.eigenvalues[static_cast<std::size_t>(col)];
        for (Index k = 0; k < steps; ++k)
          top_vectors(k, i) = t_eig.eigenvectors(k, col);
      }
      out.converged = true;
    }
  }

  // Assemble Ritz vectors u_i = V y_i.
  const Index steps = out.lanczos_steps;
  const Index got = to_index(top_values.size());
  out.eigenvalues = top_values;  // descending operator eigenvalues
  out.eigenvectors = la::DenseMatrix(n, got);
  for (Index i = 0; i < got; ++i) {
    auto dst = out.eigenvectors.col(i);
    for (Index k = 0; k < steps && k < top_vectors.rows(); ++k) {
      const Real c = top_vectors(k, i);
      if (c == 0.0) continue;
      const la::Vector& vk = v[static_cast<std::size_t>(k)];
      for (Index row = 0; row < n; ++row)
        dst[row] += c * vk[static_cast<std::size_t>(row)];
    }
  }
  return out;
}

EigenPairs smallest_laplacian_eigenpairs(const solver::LaplacianPinvSolver& pinv,
                                         Index r, const LanczosOptions& options,
                                         bool require_converged) {
  const Index n = pinv.num_nodes();
  EigenPairs op = largest_operator_eigenpairs(
      [&pinv](const la::Vector& x) { return pinv.apply(x); }, n, r, options);
  if (require_converged && !op.converged) {
    throw NumericalError(
        "smallest_laplacian_eigenpairs: Lanczos did not converge within the "
        "subspace cap; raise max_subspace");
  }

  // Map operator eigenvalues θ (descending) to Laplacian eigenvalues
  // λ = 1/θ (ascending) — same order, so columns already line up.
  EigenPairs out;
  out.lanczos_steps = op.lanczos_steps;
  out.converged = op.converged;
  const Index got = to_index(op.eigenvalues.size());
  out.eigenvalues.resize(static_cast<std::size_t>(got));
  for (Index i = 0; i < got; ++i) {
    const Real theta = op.eigenvalues[static_cast<std::size_t>(i)];
    SGL_ENSURES(theta > 0.0,
                "smallest_laplacian_eigenpairs: nonpositive Ritz value — "
                "operator is not positive definite on 1-perp");
    out.eigenvalues[static_cast<std::size_t>(i)] = 1.0 / theta;
  }
  out.eigenvectors = std::move(op.eigenvectors);
  return out;
}

}  // namespace sgl::eig
