#include "eig/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "eig/dense_eig.hpp"
#include "la/multi_vector.hpp"
#include "solver/operators.hpp"

namespace sgl::eig {

namespace {

/// Relative threshold below which an orthogonalized direction is pure
/// rounding noise; √ε-scale is the classical safe choice (normalizing a
/// smaller residual would promote noise to a basis vector).
constexpr Real kRankTol = 1e-8;

/// Attempts at replacing a rank-deficient candidate with a fresh random
/// direction before declaring the 1-perp subspace exhausted.
constexpr int kFreshAttempts = 3;

/// Block Lanczos driver. The basis V and the operator images AV grow in
/// blocks; the projected matrix T = Vᵀ(AV) is extended incrementally and
/// a Rayleigh–Ritz step with *exact* residual norms ‖A u − θ u‖ decides
/// convergence — no settle-window heuristics, because with full
/// reorthogonalization and blocked iterates a small residual certifies
/// the pair. Every kernel used here is deterministic across thread
/// counts, and all random draws happen serially on the calling thread,
/// so the result is bit-identical for every `num_threads`.
class BlockLanczos {
 public:
  BlockLanczos(const la::LinearOperator& op, Index r,
               const LanczosOptions& options)
      : op_(op),
        n_(op.rows()),
        r_(r),
        nt_(options.num_threads),
        tol_(options.tolerance),
        m_cap_(options.max_subspace > 0
                   ? std::min(options.max_subspace, n_ - 1)
                   : default_subspace_cap(
                         n_, r,
                         options.block_size > 0 ? options.block_size : 0)),
        b_(std::min(options.block_size > 0 ? options.block_size
                                           : default_block_size(r),
                    m_cap_)),
        rng_(options.seed),
        warm_(options.initial_block),
        v_(n_, m_cap_),
        av_(n_, m_cap_),
        t_(m_cap_, m_cap_),
        scratch_(n_, b_) {
    SGL_EXPECTS(op.cols() == n_, "largest_operator_eigenpairs: operator not square");
    SGL_EXPECTS(n_ >= 2, "largest_operator_eigenpairs: n must be at least 2");
    SGL_EXPECTS(r >= 1 && r <= n_ - 1,
                "largest_operator_eigenpairs: need 1 <= r <= n-1");
    SGL_EXPECTS(m_cap_ >= r, "largest_operator_eigenpairs: subspace cap below r");
  }

  EigenPairs run() {
    // Start block, centered and orthonormalized: warm columns first
    // (LanczosOptions::initial_block — e.g. the previous iteration's
    // eigenvectors, which put the converged subspace into the basis
    // before the first operator apply), random draws for the rest. With
    // no warm block this is the classical random start, bitwise.
    const Index warm_cols =
        (warm_.data != nullptr && warm_.rows == n_) ? std::min(warm_.cols, b_)
                                                    : 0;
    for (Index j = 0; j < b_; ++j) {
      const std::span<Real> col = scratch_.col(j);
      if (j < warm_cols) {
        const std::span<const Real> src = warm_.col(j);
        std::copy(src.begin(), src.end(), col.begin());
      } else {
        for (Real& x : col) x = rng_.normal();
      }
    }
    Index appended = append_block(scratch_.block(0, b_));
    SGL_ENSURES(appended > 0, "largest_operator_eigenpairs: empty start block");
    Index blk_lo = 0;
    m_ = appended;

    EigenPairs out;
    while (true) {
      const Index blk_hi = m_;
      // Batched operator apply on the newest block, then nullspace
      // deflation (centering) of the images.
      op_.apply_block(v_.block(blk_lo, blk_hi), av_.block(blk_lo, blk_hi));
      center_columns(av_.block(blk_lo, blk_hi), nt_);
      extend_projection(blk_lo, blk_hi);

      // Rayleigh–Ritz on the current basis.
      const Index m = blk_hi;
      const Index avail = std::min(r_, m);
      la::DenseMatrix tm(m, m);
      for (Index j = 0; j < m; ++j)
        for (Index i = 0; i < m; ++i) tm(i, j) = t_(i, j);
      const DenseEigResult te = dense_symmetric_eig(tm);  // ascending
      la::Vector theta(static_cast<std::size_t>(avail));
      la::DenseMatrix ytop(m, avail);
      for (Index i = 0; i < avail; ++i) {
        const Index col = m - 1 - i;
        theta[static_cast<std::size_t>(i)] =
            te.eigenvalues[static_cast<std::size_t>(col)];
        for (Index k = 0; k < m; ++k) ytop(k, i) = te.eigenvectors(k, col);
      }

      // Ritz vectors U = V y and exact residuals ‖AV y − θ V y‖.
      la::MultiVector ritz(n_, avail);
      la::MultiVector residual(n_, avail);
      block_product(v_.block(0, m), ytop, ritz.view(), nt_);
      block_product(av_.block(0, m), ytop, residual.view(), nt_);
      la::Vector neg_theta(theta);
      for (Real& x : neg_theta) x = -x;
      block_axpy(neg_theta, ritz.view(), residual.view(), nt_);
      const la::Vector resid = column_norms(residual.view(), nt_);

      Real theta_scale = 1e-300;
      for (const Real x : theta) theta_scale = std::max(theta_scale, std::abs(x));
      bool all_done = (avail >= r_);
      for (Index i = 0; i < avail; ++i) {
        if (resid[static_cast<std::size_t>(i)] > tol_ * theta_scale) {
          all_done = false;
          break;
        }
      }

      if (all_done || m >= m_cap_) {
        finalize(out, theta, ritz, m, all_done);
        return out;
      }

      // Next candidate block: the newest operator images (their
      // components outside span(V) are exactly the block-Lanczos
      // residual directions), capacity-clamped.
      const Index want = std::min(blk_hi - blk_lo, m_cap_ - m);
      for (Index j = 0; j < want; ++j) {
        const std::span<const Real> src = av_.col(blk_lo + j);
        const std::span<Real> dst = scratch_.col(j);
        std::copy(src.begin(), src.end(), dst.begin());
      }
      appended = append_block(scratch_.block(0, want));
      if (appended == 0) {
        // The whole 1-perp subspace is spanned: the Ritz pairs above are
        // exact (their residuals live inside span(V), which is
        // invariant), so report them as converged.
        finalize(out, theta, ritz, m, true);
        return out;
      }
      blk_lo = m_;
      m_ += appended;
    }
  }

 private:
  /// Extends T = Vᵀ(AV) with the columns of the newest block, mirroring
  /// across the diagonal (the operator contract is symmetric-on-1-perp)
  /// and averaging the doubly-computed diagonal-block entries.
  void extend_projection(Index blk_lo, Index blk_hi) {
    const la::DenseMatrix tc = la::block_inner(
        v_.block(0, blk_hi), av_.block(blk_lo, blk_hi), nt_);
    const Index nc = blk_hi - blk_lo;
    for (Index j = 0; j < nc; ++j) {
      const Index col = blk_lo + j;
      for (Index i = 0; i < blk_lo; ++i) {
        t_(i, col) = tc(i, j);
        t_(col, i) = tc(i, j);
      }
      for (Index j2 = 0; j2 < nc; ++j2) {
        const Index row = blk_lo + j2;
        const Real s = 0.5 * (tc(row, j) + tc(blk_lo + j, j2));
        t_(row, col) = s;
        t_(col, row) = s;
      }
    }
  }

  /// Two-pass projection of one column (a basis slot) against the first
  /// `k` columns of this block's appended set plus the old basis is
  /// handled by append_block; this helper removes components along basis
  /// columns [0, upto) from the single column `x` (two passes, serial
  /// dots — upto is small only for the within-block part, but the block
  /// part is done with the blocked kernels before we get here).
  void project_column(std::span<Real> x, Index lo, Index upto) {
    for (int pass = 0; pass < 2; ++pass) {
      Real mean = 0.0;
      for (const Real val : x) mean += val;
      mean /= static_cast<Real>(n_);
      for (Real& val : x) val -= mean;
      for (Index k = lo; k < upto; ++k) {
        const std::span<const Real> vk = v_.col(k);
        Real c = 0.0;
        for (Index i = 0; i < n_; ++i)
          c += x[static_cast<std::size_t>(i)] * vk[static_cast<std::size_t>(i)];
        if (c == 0.0) continue;
        for (Index i = 0; i < n_; ++i)
          x[static_cast<std::size_t>(i)] -= c * vk[static_cast<std::size_t>(i)];
      }
    }
  }

  /// Fills `dst` with a fresh centered random direction orthogonal to
  /// basis columns [0, upto). Returns false once no meaningful direction
  /// remains (1-perp subspace exhausted).
  bool fresh_direction(std::span<Real> dst, Index upto) {
    for (int attempt = 0; attempt < kFreshAttempts; ++attempt) {
      for (Real& x : dst) x = rng_.normal();
      Real draw_norm = 0.0;
      for (const Real x : dst) draw_norm += x * x;
      draw_norm = std::sqrt(draw_norm);
      project_column(dst, 0, upto);
      Real norm = 0.0;
      for (const Real x : dst) norm += x * x;
      norm = std::sqrt(norm);
      if (norm > kRankTol * std::max(draw_norm, Real{1e-300})) {
        for (Real& x : dst) x /= norm;
        return true;
      }
    }
    return false;
  }

  /// Orthonormalizes the candidate block against the basis (two-pass
  /// blocked Gram–Schmidt with centering) and internally (modified
  /// Gram–Schmidt with rank repair: deficient columns are replaced by
  /// fresh random directions). Survivors are written to basis columns
  /// [m_, m_ + appended); returns appended (0 ⇒ subspace exhausted).
  Index append_block(la::BlockView w) {
    const la::Vector pre = la::column_norms(w, nt_);
    for (int pass = 0; pass < 2; ++pass) {
      la::center_columns(w, nt_);
      if (m_ > 0) {
        const la::DenseMatrix c = la::block_inner(v_.block(0, m_), w, nt_);
        la::block_subtract(w, v_.block(0, m_), c, nt_);
      }
    }
    la::center_columns(w, nt_);

    Index appended = 0;
    for (Index j = 0; j < w.cols; ++j) {
      const Index slot = m_ + appended;
      const std::span<const Real> src = w.col(j);
      const std::span<Real> dst = v_.col(slot);
      std::copy(src.begin(), src.end(), dst.begin());
      // Within-block MGS against the columns appended so far.
      project_column(dst, m_, slot);
      Real norm = 0.0;
      for (const Real x : dst) norm += x * x;
      norm = std::sqrt(norm);
      if (norm > kRankTol * std::max(pre[static_cast<std::size_t>(j)],
                                     Real{1e-300})) {
        for (Real& x : dst) x /= norm;
        ++appended;
        continue;
      }
      // Rank-deficient candidate (invariant-subspace hit): open a new
      // direction at random, as in classical Lanczos restarting.
      if (fresh_direction(dst, slot)) {
        ++appended;
      } else {
        break;  // 1-perp subspace exhausted
      }
    }
    return appended;
  }

  void finalize(EigenPairs& out, const la::Vector& theta, la::MultiVector& ritz,
                Index m, bool converged) {
    out.eigenvalues = theta;  // descending operator eigenvalues
    out.eigenvectors = ritz.release_dense();
    out.lanczos_steps = m;
    out.converged = converged;
  }

  const la::LinearOperator& op_;
  Index n_;
  Index r_;
  Index nt_;
  Real tol_;
  Index m_cap_;
  Index b_;
  Rng rng_;
  la::ConstBlockView warm_;  // optional warm start columns (may be null)
  la::MultiVector v_;   // basis: centered, orthonormal columns [0, m_)
  la::MultiVector av_;  // operator images of the basis columns
  la::DenseMatrix t_;   // projected operator, leading m_ × m_ valid
  la::MultiVector scratch_;
  Index m_ = 0;
};

}  // namespace

EigenPairs largest_operator_eigenpairs(const la::LinearOperator& op, Index r,
                                       const LanczosOptions& options) {
  return BlockLanczos(op, r, options).run();
}

EigenPairs smallest_laplacian_eigenpairs(const solver::LaplacianPinvSolver& pinv,
                                         Index r, const LanczosOptions& options,
                                         bool require_converged) {
  const solver::LaplacianPinvOperator op(pinv, options.num_threads);
  EigenPairs op_pairs = largest_operator_eigenpairs(op, r, options);
  if (require_converged && !op_pairs.converged) {
    throw NumericalError(
        "smallest_laplacian_eigenpairs: block Lanczos did not converge within "
        "the subspace cap; raise max_subspace",
        ErrorCode::kEigNotConverged);
  }

  // Map operator eigenvalues θ (descending) to Laplacian eigenvalues
  // λ = 1/θ (ascending) — same order, so columns already line up.
  EigenPairs out;
  out.lanczos_steps = op_pairs.lanczos_steps;
  out.converged = op_pairs.converged;
  const Index got = to_index(op_pairs.eigenvalues.size());
  out.eigenvalues.resize(static_cast<std::size_t>(got));
  for (Index i = 0; i < got; ++i) {
    const Real theta = op_pairs.eigenvalues[static_cast<std::size_t>(i)];
    SGL_ENSURES(theta > 0.0,
                "smallest_laplacian_eigenpairs: nonpositive Ritz value — "
                "operator is not positive definite on 1-perp");
    out.eigenvalues[static_cast<std::size_t>(i)] = 1.0 / theta;
  }
  out.eigenvectors = std::move(op_pairs.eigenvectors);
  return out;
}

}  // namespace sgl::eig
