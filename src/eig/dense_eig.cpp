#include "eig/dense_eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.hpp"

namespace sgl::eig {

namespace {

/// Householder reduction of a symmetric matrix (stored in z) to
/// tridiagonal form; z accumulates the orthogonal transform.
void tred2(la::DenseMatrix& z, la::Vector& d, la::Vector& e) {
  const Index n = z.rows();
  d.assign(static_cast<std::size_t>(n), 0.0);
  e.assign(static_cast<std::size_t>(n), 0.0);

  for (Index i = n - 1; i >= 1; --i) {
    const Index l = i - 1;
    Real h = 0.0;
    Real scale = 0.0;
    if (l > 0) {
      for (Index k = 0; k <= l; ++k) scale += std::abs(z(i, k));
      if (scale == 0.0) {
        e[static_cast<std::size_t>(i)] = z(i, l);
      } else {
        for (Index k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        Real f = z(i, l);
        Real g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[static_cast<std::size_t>(i)] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (Index j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (Index k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (Index k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[static_cast<std::size_t>(j)] = g / h;
          f += e[static_cast<std::size_t>(j)] * z(i, j);
        }
        const Real hh = f / (h + h);
        for (Index j = 0; j <= l; ++j) {
          f = z(i, j);
          e[static_cast<std::size_t>(j)] = g =
              e[static_cast<std::size_t>(j)] - hh * f;
          for (Index k = 0; k <= j; ++k)
            z(j, k) -= f * e[static_cast<std::size_t>(k)] + g * z(i, k);
        }
      }
    } else {
      e[static_cast<std::size_t>(i)] = z(i, l);
    }
    d[static_cast<std::size_t>(i)] = h;
  }

  d[0] = 0.0;
  e[0] = 0.0;
  for (Index i = 0; i < n; ++i) {
    const Index l = i - 1;
    if (d[static_cast<std::size_t>(i)] != 0.0) {
      for (Index j = 0; j <= l; ++j) {
        Real g = 0.0;
        for (Index k = 0; k <= l; ++k) g += z(i, k) * z(k, j);
        for (Index k = 0; k <= l; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[static_cast<std::size_t>(i)] = z(i, i);
    z(i, i) = 1.0;
    for (Index j = 0; j <= l; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

Real sign_with(Real a, Real b) { return b >= 0.0 ? std::abs(a) : -std::abs(a); }

/// Implicit-shift QL on a tridiagonal (d, e); z accumulates eigenvectors
/// (pass an empty matrix to skip accumulation).
void tql2(la::Vector& d, la::Vector& e, la::DenseMatrix& z) {
  const Index n = to_index(d.size());
  const bool with_vectors = !z.empty();
  for (Index i = 1; i < n; ++i) e[static_cast<std::size_t>(i - 1)] = e[static_cast<std::size_t>(i)];
  e[static_cast<std::size_t>(n - 1)] = 0.0;

  for (Index l = 0; l < n; ++l) {
    Index iterations = 0;
    Index m;
    do {
      for (m = l; m < n - 1; ++m) {
        const Real dd = std::abs(d[static_cast<std::size_t>(m)]) +
                        std::abs(d[static_cast<std::size_t>(m + 1)]);
        if (std::abs(e[static_cast<std::size_t>(m)]) <= kEps * dd) break;
      }
      if (m != l) {
        if (iterations++ == 50) {
          throw NumericalError("tql2: QL iteration failed to converge",
                               ErrorCode::kEigNotConverged);
        }
        Real g = (d[static_cast<std::size_t>(l + 1)] -
                  d[static_cast<std::size_t>(l)]) /
                 (2.0 * e[static_cast<std::size_t>(l)]);
        Real r = std::hypot(g, 1.0);
        g = d[static_cast<std::size_t>(m)] - d[static_cast<std::size_t>(l)] +
            e[static_cast<std::size_t>(l)] / (g + sign_with(r, g));
        Real s = 1.0;
        Real c = 1.0;
        Real p = 0.0;
        Index i;
        for (i = m - 1; i >= l; --i) {
          Real f = s * e[static_cast<std::size_t>(i)];
          const Real b = c * e[static_cast<std::size_t>(i)];
          r = std::hypot(f, g);
          e[static_cast<std::size_t>(i + 1)] = r;
          if (r == 0.0) {
            d[static_cast<std::size_t>(i + 1)] -= p;
            e[static_cast<std::size_t>(m)] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[static_cast<std::size_t>(i + 1)] - p;
          r = (d[static_cast<std::size_t>(i)] - g) * s + 2.0 * c * b;
          p = s * r;
          d[static_cast<std::size_t>(i + 1)] = g + p;
          g = c * r - b;
          if (with_vectors) {
            for (Index k = 0; k < z.rows(); ++k) {
              f = z(k, i + 1);
              z(k, i + 1) = s * z(k, i) + c * f;
              z(k, i) = c * z(k, i) - s * f;
            }
          }
        }
        if (r == 0.0 && i >= l) continue;
        d[static_cast<std::size_t>(l)] -= p;
        e[static_cast<std::size_t>(l)] = g;
        e[static_cast<std::size_t>(m)] = 0.0;
      }
    } while (m != l);
  }
}

/// Sorts (eigenvalue, eigenvector-column) pairs ascending.
void sort_ascending(la::Vector& d, la::DenseMatrix& z) {
  const Index n = to_index(d.size());
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(), [&d](Index a, Index b) {
    return d[static_cast<std::size_t>(a)] < d[static_cast<std::size_t>(b)];
  });

  la::Vector d_sorted(d.size());
  for (Index i = 0; i < n; ++i)
    d_sorted[static_cast<std::size_t>(i)] =
        d[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
  d = std::move(d_sorted);

  if (!z.empty()) {
    la::DenseMatrix z_sorted(z.rows(), z.cols());
    for (Index i = 0; i < n; ++i) {
      const auto src = z.col(order[static_cast<std::size_t>(i)]);
      auto dst = z_sorted.col(i);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    z = std::move(z_sorted);
  }
}

}  // namespace

DenseEigResult dense_symmetric_eig(const la::DenseMatrix& a) {
  SGL_EXPECTS(a.rows() == a.cols(), "dense_symmetric_eig: square matrix");
  SGL_EXPECTS(a.rows() >= 1, "dense_symmetric_eig: empty matrix");
  DenseEigResult result;
  result.eigenvectors = a;
  la::Vector e;
  tred2(result.eigenvectors, result.eigenvalues, e);
  tql2(result.eigenvalues, e, result.eigenvectors);
  sort_ascending(result.eigenvalues, result.eigenvectors);
  return result;
}

DenseEigResult tridiagonal_eig(const la::Vector& d, const la::Vector& e,
                               bool want_vectors) {
  const Index n = to_index(d.size());
  SGL_EXPECTS(n >= 1, "tridiagonal_eig: empty matrix");
  SGL_EXPECTS(e.size() + 1 == d.size(), "tridiagonal_eig: e must have n-1 entries");

  DenseEigResult result;
  result.eigenvalues = d;
  la::Vector ee(static_cast<std::size_t>(n), 0.0);
  // tql2 expects the sub-diagonal in slots 1..n−1 before its own shift.
  for (Index i = 1; i < n; ++i)
    ee[static_cast<std::size_t>(i)] = e[static_cast<std::size_t>(i - 1)];

  if (want_vectors) {
    result.eigenvectors = la::DenseMatrix(n, n);
    for (Index i = 0; i < n; ++i) result.eigenvectors(i, i) = 1.0;
  }
  tql2(result.eigenvalues, ee, result.eigenvectors);
  sort_ascending(result.eigenvalues, result.eigenvectors);
  return result;
}

}  // namespace sgl::eig
