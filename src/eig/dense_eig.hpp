// Dense symmetric eigensolver: Householder tridiagonalization followed by
// the implicit-shift QL iteration (EISPACK tred2/tql2 lineage). Used for
// verification, Lanczos projected problems, LOBPCG Rayleigh–Ritz steps and
// small-graph exact spectra.
#pragma once

#include "la/dense_matrix.hpp"
#include "la/vector_ops.hpp"

namespace sgl::eig {

struct DenseEigResult {
  /// Eigenvalues in ascending order.
  la::Vector eigenvalues;
  /// Column i is the orthonormal eigenvector for eigenvalues[i].
  la::DenseMatrix eigenvectors;
};

/// Full eigendecomposition of a symmetric matrix. Symmetry is assumed (the
/// strictly-upper triangle is read). Throws NumericalError if the QL
/// iteration fails to converge (50-iteration cap per eigenvalue).
[[nodiscard]] DenseEigResult dense_symmetric_eig(const la::DenseMatrix& a);

/// Eigendecomposition of a symmetric tridiagonal matrix given its diagonal
/// d (size n) and sub-diagonal e (size n−1). When `want_vectors` is false
/// the eigenvector matrix is empty.
[[nodiscard]] DenseEigResult tridiagonal_eig(const la::Vector& d,
                                             const la::Vector& e,
                                             bool want_vectors = true);

}  // namespace sgl::eig
