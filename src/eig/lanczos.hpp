// Shift-invert Lanczos for the smallest nontrivial Laplacian eigenpairs.
//
// Running Lanczos on the pseudo-inverse operator L⁺ (applied exactly via
// the grounded factorization in LaplacianPinvSolver) turns the smallest
// nontrivial eigenvalues of L into the *largest* — and best separated —
// eigenvalues of the operator, which Lanczos finds in a handful of steps.
// The constant nullspace vector is deflated explicitly by centering every
// iterate, and full reorthogonalization keeps the basis clean. This plays
// the role of the paper's fast multilevel eigensolver [16] (substitution
// documented in DESIGN.md §2).
#pragma once

#include <cstdint>
#include <functional>

#include "la/dense_matrix.hpp"
#include "la/vector_ops.hpp"
#include "solver/laplacian_solver.hpp"

namespace sgl::eig {

struct LanczosOptions {
  /// Maximum Krylov subspace dimension; 0 = auto (min(n−1, max(3r+16, 40))).
  Index max_subspace = 0;
  /// Relative residual tolerance on the operator eigenproblem.
  Real tolerance = 1e-9;
  /// Seed for the random start vector.
  std::uint64_t seed = 12345;
};

/// Eigenpairs of a graph Laplacian, ascending and excluding the trivial
/// (λ = 0, constant vector) pair: eigenvalues[0] is λ2.
struct EigenPairs {
  la::Vector eigenvalues;        // size r, ascending
  la::DenseMatrix eigenvectors;  // n × r, orthonormal, each ⊥ 1
  Index lanczos_steps = 0;
  bool converged = false;
};

/// Computes the r smallest nontrivial Laplacian eigenpairs of the graph
/// behind `pinv`. Requires r ≤ n − 1. Throws NumericalError if the
/// subspace cap is reached with unconverged Ritz pairs and `require_converged`.
[[nodiscard]] EigenPairs smallest_laplacian_eigenpairs(
    const solver::LaplacianPinvSolver& pinv, Index r,
    const LanczosOptions& options = {}, bool require_converged = false);

/// Generic Lanczos on a user-supplied SPD operator restricted to the
/// subspace orthogonal to the all-ones vector; returns the r *largest*
/// operator eigenpairs (descending). Building block for the Laplacian
/// wrapper above and usable with approximate inverses.
[[nodiscard]] EigenPairs largest_operator_eigenpairs(
    const std::function<la::Vector(const la::Vector&)>& apply, Index n,
    Index r, const LanczosOptions& options = {});

}  // namespace sgl::eig
