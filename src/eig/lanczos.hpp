// Block shift-invert Lanczos for the smallest nontrivial Laplacian
// eigenpairs.
//
// Running Lanczos on the pseudo-inverse operator L⁺ (applied exactly via
// the grounded factorization in LaplacianPinvSolver) turns the smallest
// nontrivial eigenvalues of L into the *largest* — and best separated —
// eigenvalues of the operator, which Lanczos finds in a handful of steps.
// The iteration is *blocked* (DESIGN.md §1): the operator is applied to b
// vectors at a time through LinearOperator::apply_block (multi-RHS solves
// sharing one factorization — on the Cholesky path each batched apply is
// one pair of block triangular sweeps streaming the factor once per
// block, DESIGN.md §4), the basis is kept orthonormal by blocked
// full reorthogonalization, and eigenvalue multiplicities up to the block
// size are resolved structurally instead of through rounding noise. The
// constant nullspace vector is deflated explicitly by centering every
// iterate. This plays the role of the paper's fast multilevel eigensolver
// [16] (substitution documented in DESIGN.md §2).
#pragma once

#include <algorithm>
#include <cstdint>

#include "la/dense_matrix.hpp"
#include "la/linear_operator.hpp"
#include "la/multi_vector.hpp"
#include "la/vector_ops.hpp"
#include "solver/laplacian_solver.hpp"

namespace sgl::eig {

struct LanczosOptions {
  /// Maximum basis dimension; 0 = auto (default_subspace_cap below).
  Index max_subspace = 0;
  /// Relative residual tolerance on the operator eigenproblem.
  Real tolerance = 1e-9;
  /// Seed for the random start block.
  std::uint64_t seed = 12345;
  /// Block size b: vectors per batched operator apply, and the largest
  /// eigenvalue multiplicity resolved structurally. 0 = auto
  /// (min(r, 8), clamped by the subspace cap).
  Index block_size = 0;
  /// Worker threads for the block kernels and batched applies (0 =
  /// library default, 1 = serial). Results are bit-identical for every
  /// thread count.
  Index num_threads = 0;
  /// Optional warm-start block (DESIGN.md §8): when non-null and row-
  /// compatible, the first min(cols, block size) start columns are taken
  /// from this view (e.g. the previous iteration's eigenvectors) instead
  /// of random draws; remaining columns are drawn as usual. Warm columns
  /// go through the same centering/orthonormalization as random ones, so
  /// any block is safe to pass. A null view (the default) keeps the
  /// classical random start bitwise.
  la::ConstBlockView initial_block{};
};

/// Auto block size: multiplicities up to min(r, 8) are resolved
/// structurally, and eight RHS amortize one batched apply well.
[[nodiscard]] constexpr Index default_block_size(Index r) noexcept {
  return std::min<Index>(r, 8);
}

/// Auto sizing for the Krylov basis cap when LanczosOptions::max_subspace
/// is 0 — shared by the eigensolver and its consumers so the policy lives
/// in exactly one place. A block iteration reaches polynomial degree
/// m/b instead of m, so the cap grows with the block size ((b−1)·8 extra
/// basis vectors); at b = 1 this is exactly the classical single-vector
/// default min(n−1, max(3r+16, 40)).
[[nodiscard]] constexpr Index default_subspace_cap(
    Index n, Index r, Index block_size = 0) noexcept {
  const Index b = block_size > 0 ? block_size : default_block_size(r);
  return std::min<Index>(n - 1, std::max<Index>(3 * r + 16, 40) + (b - 1) * 8);
}

/// Roomier cap for full-spectrum consumers (log-det objective, spectrum
/// comparison), where r itself is large and 3r+16 would overshoot.
[[nodiscard]] constexpr Index spectrum_subspace_cap(
    Index n, Index r, Index block_size = 0) noexcept {
  const Index b = block_size > 0 ? block_size : default_block_size(r);
  return std::min<Index>(n - 1, 2 * r + 40 + (b - 1) * 8);
}

/// Eigenpairs of a graph Laplacian, ascending and excluding the trivial
/// (λ = 0, constant vector) pair: eigenvalues[0] is λ2.
struct EigenPairs {
  la::Vector eigenvalues;        // size r, ascending
  la::DenseMatrix eigenvectors;  // n × r, orthonormal, each ⊥ 1
  /// Final Lanczos basis dimension (number of operator applies).
  Index lanczos_steps = 0;
  bool converged = false;
};

/// Computes the r smallest nontrivial Laplacian eigenpairs of the graph
/// behind `pinv`. Requires r ≤ n − 1. Throws NumericalError if the
/// subspace cap is reached with unconverged Ritz pairs and
/// `require_converged` is set; otherwise the best available pairs are
/// returned with EigenPairs::converged == false.
[[nodiscard]] EigenPairs smallest_laplacian_eigenpairs(
    const solver::LaplacianPinvSolver& pinv, Index r,
    const LanczosOptions& options = {}, bool require_converged = false);

/// Block Lanczos on a symmetric positive definite LinearOperator
/// restricted to the subspace orthogonal to the all-ones vector; returns
/// the r *largest* operator eigenpairs (descending). Building block for
/// the Laplacian wrapper above and usable with approximate inverses. The
/// operator must be symmetric on that subspace — the projected problem is
/// symmetrized, so a non-symmetric operator yields garbage, not an error.
[[nodiscard]] EigenPairs largest_operator_eigenpairs(
    const la::LinearOperator& op, Index r, const LanczosOptions& options = {});

}  // namespace sgl::eig
