#include "baseline/knn_baseline.hpp"

#include "common/timer.hpp"

namespace sgl::baseline {

KnnBaselineResult learn_knn_baseline(const la::DenseMatrix& x,
                                     const la::DenseMatrix* y,
                                     const KnnBaselineOptions& options) {
  const WallTimer timer;
  knn::KnnGraphOptions knn_options = options.knn;
  knn_options.k = options.k;
  knn_options.ensure_connected = true;

  KnnBaselineResult result;
  result.graph = knn::build_knn_graph(x, knn_options);
  if (y != nullptr && options.edge_scaling) {
    result.scale_factor =
        core::apply_spectral_edge_scaling(result.graph, x, *y, options.solver);
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace sgl::baseline
