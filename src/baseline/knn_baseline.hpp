// kNN-graph baseline (the comparison method in the paper's Figures 2–3).
//
// Builds the plain k-nearest-neighbor graph over the measurement rows with
// the same similarity weights SGL uses, then applies the identical
// spectral edge scaling (eqs. 21–23) — exactly how the paper treats the
// "5NN" competitor. The baseline's density (≈ 2.9 for k = 5 meshes)
// contrasts with SGL's near-tree density (≈ 1.05).
#pragma once

#include <optional>

#include "core/scaling.hpp"
#include "graph/graph.hpp"
#include "knn/knn_graph.hpp"
#include "la/dense_matrix.hpp"

namespace sgl::baseline {

struct KnnBaselineResult {
  graph::Graph graph;
  Real scale_factor = 1.0;
  double seconds = 0.0;
};

struct KnnBaselineOptions {
  Index k = 5;
  knn::KnnGraphOptions knn;  // k above overrides knn.k
  bool edge_scaling = true;
  solver::LaplacianSolverOptions solver;
};

/// Learns the baseline graph from voltages X; pass the currents Y to
/// enable scaling (nullptr skips it).
[[nodiscard]] KnnBaselineResult learn_knn_baseline(
    const la::DenseMatrix& x, const la::DenseMatrix* y,
    const KnnBaselineOptions& options = {});

}  // namespace sgl::baseline
