#include "measure/matrix_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/contracts.hpp"

namespace sgl::measure {

la::DenseMatrix read_dense_matrix_market(const std::string& path) {
  std::ifstream in(path);
  SGL_EXPECTS(in.good(), "read_dense_matrix_market: cannot open '" + path + "'");

  std::string line;
  SGL_EXPECTS(static_cast<bool>(std::getline(in, line)),
              "read_dense_matrix_market: empty file");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  const auto lower = [](std::string s) {
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
    return s;
  };
  SGL_EXPECTS(banner == "%%MatrixMarket" && lower(object) == "matrix" &&
                  lower(format) == "array",
              "read_dense_matrix_market: expected an array-format file");
  SGL_EXPECTS(lower(field) == "real" || lower(field) == "integer",
              "read_dense_matrix_market: unsupported field");
  SGL_EXPECTS(lower(symmetry) == "general",
              "read_dense_matrix_market: only general symmetry supported");

  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long rows = 0, cols = 0;
  size_line >> rows >> cols;
  SGL_EXPECTS(rows > 0 && cols > 0, "read_dense_matrix_market: bad size line");

  la::DenseMatrix m(static_cast<Index>(rows), static_cast<Index>(cols));
  for (Index j = 0; j < m.cols(); ++j) {
    for (Index i = 0; i < m.rows(); ++i) {
      Real v = 0.0;
      in >> v;
      SGL_EXPECTS(!in.fail(), "read_dense_matrix_market: truncated data");
      m(i, j) = v;
    }
  }
  return m;
}

void write_dense_matrix_market(const la::DenseMatrix& m,
                               const std::string& path) {
  std::ofstream out(path);
  SGL_EXPECTS(out.good(),
              "write_dense_matrix_market: cannot open '" + path + "'");
  out << "%%MatrixMarket matrix array real general\n";
  out << "% measurement matrix exported by sgl\n";
  out << m.rows() << ' ' << m.cols() << '\n';
  out.precision(17);
  for (Index j = 0; j < m.cols(); ++j)
    for (Index i = 0; i < m.rows(); ++i) out << m(i, j) << '\n';
  SGL_ENSURES(out.good(), "write_dense_matrix_market: write failed");
}

}  // namespace sgl::measure
