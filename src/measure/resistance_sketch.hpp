// Johnson–Lindenstrauss effective-resistance sketch (paper §II-D).
//
// Implements the exact construction of the paper's sample-complexity
// argument (the Spielman–Srivastava sketch): with C a random ±1/√M matrix
// of shape M×|E| and Y = C W^{1/2} B, solving L x_i = y_i for every row of
// Y yields a voltage matrix X whose column space compresses all pairwise
// effective resistances:
//   (1−ε) Reff(s,t) ≤ ‖Xᵀ e_st‖² ≤ (1+ε) Reff(s,t)  w.h.p. for
//   M = 24 ln N / ε².
// These (X, Y) pairs are also valid SGL measurement inputs, giving the
// theory-mode generator used in the sample-complexity experiments.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "la/dense_matrix.hpp"
#include "measure/measurements.hpp"
#include "solver/laplacian_solver.hpp"

namespace sgl::measure {

struct SketchOptions {
  /// Number of random projections M; 0 derives M = ⌈24 ln N / ε²⌉.
  Index num_projections = 0;
  Real epsilon = 0.5;
  std::uint64_t seed = 99;
  solver::LaplacianSolverOptions solver;
  /// Worker threads for the M-column multi-RHS solve (0 = library
  /// default, 1 = serial; the sketch values never depend on it).
  Index num_threads = 0;
};

class ResistanceSketch {
 public:
  ResistanceSketch(const graph::Graph& g, const SketchOptions& options = {});

  /// (1±ε)-approximate effective resistance ‖Xᵀ e_st‖².
  [[nodiscard]] Real estimate(Index s, Index t) const;

  [[nodiscard]] Index num_projections() const noexcept {
    return sketch_.cols();
  }

  /// The underlying voltage matrix X (column i solves L x_i = y_i).
  [[nodiscard]] const la::DenseMatrix& voltages() const noexcept {
    return sketch_;
  }

 private:
  la::DenseMatrix sketch_;  // N × M, rows indexed by node
};

/// Builds the paper's theory-mode measurement pair: X from the JL sketch
/// and Y the matching current excitations (rows of C W^{1/2} B).
[[nodiscard]] Measurements sketch_measurements(const graph::Graph& g,
                                               const SketchOptions& options = {});

}  // namespace sgl::measure
