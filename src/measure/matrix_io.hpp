// Dense measurement-matrix I/O (MatrixMarket array format).
//
// Lets the CLI and user pipelines exchange X/Y measurement matrices with
// Matlab/NumPy tooling: `mmwrite(X)` there, `read_dense_matrix_market`
// here, and vice versa.
#pragma once

#include <string>

#include "la/dense_matrix.hpp"

namespace sgl::measure {

/// Reads a "%%MatrixMarket matrix array real general" file (column-major
/// entry order, as the format prescribes).
[[nodiscard]] la::DenseMatrix read_dense_matrix_market(const std::string& path);

/// Writes in the same format with full double precision.
void write_dense_matrix_market(const la::DenseMatrix& m,
                               const std::string& path);

}  // namespace sgl::measure
