// Voltage/current measurement generation (paper §III-A experimental setup)
// and the noise / subsampling models used by the evaluation figures.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "la/dense_matrix.hpp"
#include "solver/laplacian_solver.hpp"

namespace sgl::measure {

/// Paired measurement matrices: column i of `voltages` is the response of
/// the resistor network to the current excitation in column i of
/// `currents` (L* x_i = y_i).
struct Measurements {
  la::DenseMatrix voltages;  // X ∈ R^{N×M}
  la::DenseMatrix currents;  // Y ∈ R^{N×M}
};

struct MeasurementOptions {
  Index num_measurements = 50;  // M
  std::uint64_t seed = 2021;
  solver::LaplacianSolverOptions solver;
  /// Worker threads for the M independent voltage solves (0 = library
  /// default, 1 = serial). Current vectors are always drawn serially from
  /// the seeded RNG, so the measurements are identical for every thread
  /// count.
  Index num_threads = 0;
};

/// Generates M measurement pairs exactly as the paper's setup prescribes:
/// standard-normal current vectors, centered (orthogonal to the all-ones
/// vector) and normalized to unit length, with voltages from Laplacian
/// solves on the ground-truth graph.
[[nodiscard]] Measurements generate_measurements(
    const graph::Graph& ground_truth, const MeasurementOptions& options = {});

/// Paper §III-B(e) noise model: per column x̃ = x + ζ‖x‖₂ ε with ε a
/// unit-norm Gaussian direction; ζ is the relative noise level.
void add_noise(la::DenseMatrix& voltages, Real zeta, std::uint64_t seed);

/// Random node subset of the given size (Fig. 8 reduced-network setting);
/// returned indices are sorted and unique.
[[nodiscard]] std::vector<Index> sample_nodes(Index num_nodes, Index subset,
                                              std::uint64_t seed);

/// Row-submatrix X(S, :) for a sorted node subset.
[[nodiscard]] la::DenseMatrix take_rows(const la::DenseMatrix& x,
                                        const std::vector<Index>& rows);

}  // namespace sgl::measure
