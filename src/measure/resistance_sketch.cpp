#include "measure/resistance_sketch.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace sgl::measure {

namespace {

Index resolve_projections(const graph::Graph& g, const SketchOptions& options) {
  if (options.num_projections > 0) return options.num_projections;
  SGL_EXPECTS(options.epsilon > 0.0 && options.epsilon < 1.0,
              "ResistanceSketch: epsilon must lie in (0, 1)");
  const Real n = static_cast<Real>(g.num_nodes());
  return static_cast<Index>(
      std::ceil(24.0 * std::log(n) / (options.epsilon * options.epsilon)));
}

/// Computes Y = C W^{1/2} B row by row without materializing C: row i of Y
/// accumulates ±√(w_e/M) into the endpoints of every edge e.
la::DenseMatrix sketch_currents(const graph::Graph& g, Index m,
                                std::uint64_t seed) {
  Rng rng(seed);
  la::DenseMatrix y(g.num_nodes(), m);
  const Real inv_sqrt_m = 1.0 / std::sqrt(static_cast<Real>(m));
  for (Index i = 0; i < m; ++i) {
    auto yi = y.col(i);
    for (const graph::Edge& e : g.edges()) {
      const Real c = rng.rademacher() * inv_sqrt_m * std::sqrt(e.weight);
      yi[e.s] += c;
      yi[e.t] -= c;
    }
  }
  return y;
}

}  // namespace

ResistanceSketch::ResistanceSketch(const graph::Graph& g,
                                   const SketchOptions& options) {
  const Index m = resolve_projections(g, options);
  const la::DenseMatrix y = sketch_currents(g, m, options.seed);
  const solver::LaplacianPinvSolver pinv(g, options.solver);
  // Rows of C W^{1/2} B are orthogonal to 1 by construction (each edge
  // contributes +c and −c), so the multi-RHS pseudo-inverse solve is exact.
  sketch_ = pinv.apply_block(y, options.num_threads);
}

Real ResistanceSketch::estimate(Index s, Index t) const {
  SGL_EXPECTS(s >= 0 && s < sketch_.rows() && t >= 0 && t < sketch_.rows(),
              "ResistanceSketch::estimate: node out of range");
  SGL_EXPECTS(s != t, "ResistanceSketch::estimate: distinct nodes required");
  return sketch_.row_distance_squared(s, t);
}

Measurements sketch_measurements(const graph::Graph& g,
                                 const SketchOptions& options) {
  const Index m = resolve_projections(g, options);
  Measurements out;
  out.currents = sketch_currents(g, m, options.seed);
  const solver::LaplacianPinvSolver pinv(g, options.solver);
  out.voltages = pinv.apply_block(out.currents, options.num_threads);
  return out;
}

}  // namespace sgl::measure
