#include "measure/measurements.hpp"

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "la/multi_vector.hpp"

namespace sgl::measure {

Measurements generate_measurements(const graph::Graph& ground_truth,
                                   const MeasurementOptions& options) {
  const Index n = ground_truth.num_nodes();
  const Index m = options.num_measurements;
  SGL_EXPECTS(m >= 1, "generate_measurements: need at least one measurement");
  SGL_EXPECTS(n >= 3, "generate_measurements: graph too small");

  // The factorization inherits the measurement thread knob unless the
  // solver options pin their own (results are identical either way).
  solver::LaplacianSolverOptions solver_options = options.solver;
  if (solver_options.num_threads == 0)
    solver_options.num_threads = options.num_threads;
  const solver::LaplacianPinvSolver pinv(ground_truth, solver_options);
  Rng rng(options.seed);

  Measurements out;
  out.voltages = la::DenseMatrix(n, m);
  out.currents = la::DenseMatrix(n, m);

  // Current vectors are drawn serially so the RNG stream (and therefore
  // every measurement) is independent of the thread count.
  la::Vector y(static_cast<std::size_t>(n));
  for (Index i = 0; i < m; ++i) {
    for (Real& v : y) v = rng.normal();
    la::center(y);     // current conservation: Σ y = 0
    la::normalize(y);  // unit excitation
    out.currents.set_col(i, y);
  }

  // The M voltage solves are one multi-RHS block apply of the shared
  // factorization (the same per-column arithmetic for every thread
  // count, so measurements never depend on the knob).
  pinv.apply_block(la::view_of(out.currents), la::view_of(out.voltages),
                   options.num_threads);
  return out;
}

void add_noise(la::DenseMatrix& voltages, Real zeta, std::uint64_t seed) {
  SGL_EXPECTS(zeta >= 0.0, "add_noise: negative noise level");
  if (zeta == 0.0) return;
  Rng rng(seed);
  la::Vector eps(static_cast<std::size_t>(voltages.rows()));
  for (Index j = 0; j < voltages.cols(); ++j) {
    for (Real& v : eps) v = rng.normal();
    la::normalize(eps);
    auto col = voltages.col(j);
    Real norm = 0.0;
    for (const Real v : col) norm += v * v;
    norm = std::sqrt(norm);
    for (Index i = 0; i < voltages.rows(); ++i)
      col[i] += zeta * norm * eps[static_cast<std::size_t>(i)];
  }
}

std::vector<Index> sample_nodes(Index num_nodes, Index subset,
                                std::uint64_t seed) {
  SGL_EXPECTS(subset >= 1 && subset <= num_nodes,
              "sample_nodes: subset size out of range");
  Rng rng(seed);
  std::vector<Index> all(static_cast<std::size_t>(num_nodes));
  std::iota(all.begin(), all.end(), Index{0});
  shuffle(all, rng);
  all.resize(static_cast<std::size_t>(subset));
  std::sort(all.begin(), all.end());
  return all;
}

la::DenseMatrix take_rows(const la::DenseMatrix& x,
                          const std::vector<Index>& rows) {
  la::DenseMatrix out(to_index(rows.size()), x.cols());
  for (Index j = 0; j < x.cols(); ++j) {
    const auto src = x.col(j);
    auto dst = out.col(j);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      SGL_EXPECTS(rows[i] >= 0 && rows[i] < x.rows(),
                  "take_rows: row index out of range");
      dst[to_index(i)] = src[rows[i]];
    }
  }
  return out;
}

}  // namespace sgl::measure
