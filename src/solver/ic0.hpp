// Incomplete Cholesky IC(0) preconditioner.
//
// Factors A ≈ L Lᵀ keeping exactly the sparsity pattern of A's lower
// triangle (no fill). For M-matrices such as grounded Laplacians the
// factorization exists and PCG-IC(0) is the classic workhorse of circuit
// and FE solvers — the natural midpoint of the Jacobi / tree / AMG
// preconditioner ablation.
#pragma once

#include "la/sparse.hpp"
#include "solver/preconditioner.hpp"

namespace sgl::solver {

class Ic0Preconditioner final : public Preconditioner {
 public:
  /// Factors the SPD matrix `a` (full symmetric storage). Pivots that
  /// lose positivity (possible for general SPD inputs under dropping) are
  /// repaired by a diagonal boost, restarting at most a few times — the
  /// standard shifted-IC fallback.
  explicit Ic0Preconditioner(const la::CsrMatrix& a);

  void apply(const la::Vector& r, la::Vector& z) const override;

  /// Block application: both triangular sweeps stream the IC(0) factor
  /// once per block of b right-hand sides (row-major scratch, b-wide
  /// updates) instead of once per column. Each column's sums run in the
  /// same order as apply(), so the block matches b apply() calls bitwise.
  void apply_block(la::ConstBlockView r, la::BlockView z,
                   Index num_threads = 0) const override;

  [[nodiscard]] Index size() const noexcept override { return n_; }

  /// Diagonal shift that was needed for the factorization (0 for clean
  /// M-matrices).
  [[nodiscard]] Real shift() const noexcept { return shift_; }

 private:
  bool try_factor(const la::CsrMatrix& a, Real shift);

  Index n_ = 0;
  Real shift_ = 0.0;
  // L in CSR by rows (lower triangle including diagonal).
  std::vector<Index> row_ptr_;
  std::vector<Index> col_idx_;
  std::vector<Real> values_;
  std::vector<Index> diag_pos_;  // position of L(i, i) within row i
};

}  // namespace sgl::solver
