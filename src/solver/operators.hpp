// Solver-backed LinearOperator adapters (DESIGN.md §1).
//
// These bridge the solver layer into the block linear-algebra backbone:
// the Laplacian pseudo-inverse becomes an operator the block Lanczos
// eigensolver can apply batched, and a preconditioned composition exposes
// the M⁻¹A operator PCG effectively iterates on (useful for spectrum /
// condition-number diagnostics of a preconditioner).
#pragma once

#include "la/linear_operator.hpp"
#include "solver/laplacian_solver.hpp"
#include "solver/preconditioner.hpp"

namespace sgl::solver {

/// L⁺ as a LinearOperator. apply_block batches the right-hand sides
/// through the solver's shared factorization (multi-RHS solve) — on the
/// Cholesky path, one pair of block triangular sweeps per batch
/// (DESIGN.md §4), which is what makes the eigensolver's batched applies
/// fast.
class LaplacianPinvOperator final : public la::LinearOperator {
 public:
  /// Keeps a reference to `solver`; it must outlive the operator.
  explicit LaplacianPinvOperator(const LaplacianPinvSolver& solver,
                                 Index num_threads = 0)
      : solver_(solver), num_threads_(num_threads) {}

  [[nodiscard]] Index rows() const noexcept override {
    return solver_.num_nodes();
  }
  [[nodiscard]] Index cols() const noexcept override {
    return solver_.num_nodes();
  }

  void apply(const la::Vector& x, la::Vector& y) const override {
    y = solver_.apply(x);
  }

  void apply_block(la::ConstBlockView x, la::BlockView y) const override {
    solver_.apply_block(x, y, num_threads_);
  }

 private:
  const LaplacianPinvSolver& solver_;
  Index num_threads_;
};

/// y = M⁻¹ (A x): the left-preconditioned operator whose spectrum governs
/// PCG convergence. Note M⁻¹A is similar to (not equal to) the symmetric
/// M^{-1/2} A M^{-1/2}, so its eigenvalues are real and positive for SPD
/// A, M — but the operator itself is not symmetric; it is a diagnostics /
/// composition adapter, not a Lanczos input.
class PreconditionedOperator final : public la::LinearOperator {
 public:
  /// Keeps references to `a` and `m`; both must outlive the operator.
  PreconditionedOperator(const la::CsrMatrix& a, const Preconditioner& m,
                         Index num_threads = 0)
      : a_(a), m_(m), num_threads_(num_threads) {
    SGL_EXPECTS(a.rows() == a.cols(),
                "PreconditionedOperator: matrix must be square");
    SGL_EXPECTS(m.size() == a.rows(),
                "PreconditionedOperator: preconditioner size mismatch");
  }

  [[nodiscard]] Index rows() const noexcept override { return a_.rows(); }
  [[nodiscard]] Index cols() const noexcept override { return a_.cols(); }

  void apply(const la::Vector& x, la::Vector& y) const override;

  void apply_block(la::ConstBlockView x, la::BlockView y) const override;

 private:
  const la::CsrMatrix& a_;
  const Preconditioner& m_;
  Index num_threads_;
};

}  // namespace sgl::solver
