// Spanning-tree (Vaidya-style) preconditioner for graph Laplacians.
//
// The preconditioner is the grounded Laplacian of a maximum-weight
// spanning tree of the graph. Tree Laplacians factor with zero fill in
// leaf-elimination order, so setup and each application are exactly O(N).
// Support-graph theory bounds the condition number by the total stretch
// of the off-tree edges; on mesh-like graphs this gives a practical
// middle ground between Jacobi (cheap, slow) and AMG (richer, costlier) —
// the lineage behind the paper's reference [7] (KMP solvers).
#pragma once

#include "graph/graph.hpp"
#include "solver/preconditioner.hpp"

namespace sgl::solver {

class TreePreconditioner final : public Preconditioner {
 public:
  /// Builds the preconditioner for the *grounded* Laplacian of `g`
  /// (ground = node 0, reduced indices shifted by −1, matching
  /// LaplacianPinvSolver's convention). The tree is the maximum-weight
  /// spanning tree, which minimizes total stretch greedily.
  explicit TreePreconditioner(const graph::Graph& g);

  /// z = T⁻¹ r via one leaf-to-root and one root-to-leaf sweep.
  void apply(const la::Vector& r, la::Vector& z) const override;

  /// Block application: one leaf-to-root and one root-to-leaf sweep over
  /// the elimination list per block of b right-hand sides (b-wide
  /// updates on row-major scratch), bitwise equal to b apply() calls.
  void apply_block(la::ConstBlockView r, la::BlockView z,
                   Index num_threads = 0) const override;

  [[nodiscard]] Index size() const noexcept override { return n_; }

  /// Number of tree edges (n − 1 for connected graphs).
  [[nodiscard]] Index tree_edges() const noexcept {
    return to_index(elimination_.size());
  }

 private:
  struct Elimination {
    Index node = 0;    // reduced index being eliminated
    Index parent = 0;  // reduced parent index (kInvalidIndex → ground)
    Real weight = 0.0; // the factor entry L(parent, node)
  };

  Index n_ = 0;                          // grounded dimension (nodes − 1)
  std::vector<Elimination> elimination_; // leaf-first order
  la::Vector diag_;                      // D of the tree LDLᵀ
};

}  // namespace sgl::solver
