// Exact application of the Laplacian pseudo-inverse L⁺.
//
// For a connected graph, grounding one node makes the reduced system SPD;
// solving the grounded system and re-centering the result gives exactly
// L⁺y whenever the right-hand side is orthogonal to the all-ones vector —
// the situation everywhere in SGL (current vectors sum to zero, e_s − e_t
// probes, Lanczos iterates). This facade hides the grounding bookkeeping
// and picks between a direct LDLᵀ factorization and PCG (Jacobi- or
// AMG-preconditioned), mirroring how a circuit simulator grounds a node
// of the admittance matrix.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "graph/graph.hpp"
#include "la/multi_vector.hpp"
#include "solver/amg.hpp"
#include "solver/cholesky.hpp"
#include "solver/ic0.hpp"
#include "solver/pcg.hpp"
#include "solver/tree_preconditioner.hpp"

namespace sgl::solver {

enum class LaplacianMethod {
  kCholesky,
  kPcgJacobi,
  kPcgIc0,
  kPcgTree,
  kPcgAmg,
  /// Cholesky for small or ultra-sparse graphs, PCG-AMG for large meshes.
  kAuto,
};

/// Reduced Laplacian of `g` with the `ground` row/column deleted (node
/// i > ground maps to i − 1) — SPD for connected graphs. The exact matrix
/// LaplacianPinvSolver factors; exported so tests and benchmarks build
/// their SPD systems with the production grounding convention.
[[nodiscard]] la::CsrMatrix grounded_laplacian(const graph::Graph& g,
                                               Index ground = 0);

/// CLI-facing name of a method ("cholesky", "pcg-jacobi", …, "auto").
[[nodiscard]] const char* laplacian_method_name(LaplacianMethod method);

/// Inverse of laplacian_method_name; nullopt for unknown names.
[[nodiscard]] std::optional<LaplacianMethod> parse_laplacian_method(
    std::string_view name);

/// Comma-joined valid names for CLI error messages.
[[nodiscard]] std::string laplacian_method_name_list();

struct LaplacianSolverOptions {
  LaplacianMethod method = LaplacianMethod::kAuto;
  OrderingMethod ordering = OrderingMethod::kAuto;
  /// Worker threads for the numeric factorization (0 = library default,
  /// 1 = serial). The factor is bit-identical for every value.
  Index num_threads = 0;
  PcgOptions pcg;
  AmgOptions amg;
};

/// Iteration statistics of the most recent block solve on a PCG method —
/// the iterative-path counterpart of FactorStats (all zero on the
/// Cholesky path, which runs no iterations).
struct PcgBlockStats {
  /// Block width of the last apply_block (1 after a scalar apply()).
  Index columns = 0;
  /// Max per-column iteration count — the block iterations actually run.
  Index max_iterations = 0;
  /// Sum over columns — the work a per-column solver would have streamed.
  Index total_iterations = 0;
  Index converged_columns = 0;
};

class LaplacianPinvSolver {
 public:
  /// Builds a solver for the Laplacian of `g`. The graph must be connected
  /// (checked; required for pseudo-inverse semantics).
  explicit LaplacianPinvSolver(const graph::Graph& g,
                               const LaplacianSolverOptions& options = {});

  /// Same, but a non-empty `ordering_hint` (a permutation of the grounded
  /// system returned by cholesky_permutation() on a previous solver of a
  /// same-node-count graph) replaces the ordering heuristic on the
  /// Cholesky path — the dominant rebuild cost on near-tree graphs, and a
  /// permutation computed a few edges ago is still a good fill reducer
  /// (DESIGN.md §8). An empty hint, or a non-Cholesky resolved method,
  /// behaves exactly like the plain constructor.
  LaplacianPinvSolver(const graph::Graph& g,
                      const LaplacianSolverOptions& options,
                      std::vector<Index> ordering_hint);

  /// x = L⁺ y. `y` is centered internally, so any vector may be passed;
  /// the component along the all-ones nullspace is ignored, exactly as the
  /// pseudo-inverse prescribes. Safe to call concurrently from multiple
  /// threads (the factorization/preconditioner is read-only after
  /// construction), which is what apply_block relies on.
  [[nodiscard]] la::Vector apply(const la::Vector& y) const;

  /// X = L⁺ Y for an n × b block of right-hand sides — the multi-RHS hot
  /// path. All b solves share this solver's factorization/preconditioner
  /// (built once at construction). On the Cholesky path the whole block
  /// goes through ONE pair of level-parallel triangular sweeps (the
  /// factor's nonzeros are streamed once per block, not once per column),
  /// with grounding gather/scatter and centering hoisted into MultiVector
  /// kernels; PCG methods run block PCG (pcg_solve_block): one CSR SpMM
  /// and one Preconditioner::apply_block per iteration, with converged
  /// columns deflated. Every output element is computed in the same fixed
  /// order as apply(), so the block result is bit-identical to b
  /// sequential apply() calls for every thread count and block width.
  /// PCG convergence is checked per RHS; if any column stalls, the whole
  /// block finishes and a NumericalError naming the first stalled column
  /// (by its index in Y) is thrown. `num_threads`: 0 = library default,
  /// 1 = serial.
  void apply_block(la::ConstBlockView y, la::BlockView x,
                   Index num_threads = 0) const;

  /// apply_block with explicit per-call PCG options, the warm-start entry
  /// point (DESIGN.md §8): on the PCG methods `pcg.initial_guess` seeds
  /// the internal grounded iterate (an (n−1) × b block in grounded
  /// coordinates) and `pcg.final_iterate` receives the converged grounded
  /// iterate for the caller to feed back next time. Null views — the
  /// default PcgOptions — reproduce the zero-guess solve bitwise; the
  /// Cholesky path ignores both (a direct solve has no iterate).
  void apply_block(la::ConstBlockView y, la::BlockView x,
                   const PcgOptions& pcg, Index num_threads = 0) const;

  /// Convenience overload for measurement-matrix callers.
  [[nodiscard]] la::DenseMatrix apply_block(const la::DenseMatrix& y,
                                            Index num_threads = 0) const {
    la::DenseMatrix x(y.rows(), y.cols());
    apply_block(la::view_of(y), la::view_of(x), num_threads);
    return x;
  }

  /// Effective resistance between s and t: (e_s − e_t)ᵀ L⁺ (e_s − e_t).
  [[nodiscard]] Real effective_resistance(Index s, Index t) const;

  // --- Incremental maintenance (DESIGN.md §8) ----------------------------

  /// Applies the Laplacian stamp of graph edge (s, t) with weight delta
  /// `w` directly to the warm factor (rank-1 update/downdate along the
  /// elimination-tree path). Returns false — with the solver unchanged —
  /// when there is no in-place path: the resolved method is not Cholesky,
  /// or the stamp falls outside the analyzed factor pattern; the caller
  /// rebuilds or renumerates instead. Throws NumericalError on a downdate
  /// that would lose positive definiteness (factor unchanged). NOTE: only
  /// the factor is updated; the cached reduced Laplacian goes stale,
  /// which is harmless on the Cholesky path (solves never read it) and is
  /// re-synced by the next refactorize(). Not thread-safe against
  /// concurrent apply() calls — update between solve batches, as the
  /// learner does.
  bool update_edge(Index s, Index t, Real w);

  /// Rebuilds the reduced Laplacian from the CURRENT state of `g` and
  /// renumerates the warm factor with the kept symbolic analysis
  /// (Cholesky: numeric-only phase, bit-identical to a fresh same-ordering
  /// factorization; precondition — `g`'s grounded pattern is contained in
  /// the analyzed pattern, e.g. only weights changed or every new edge
  /// passed update_edge). On the PCG methods the preconditioner setup is
  /// deliberately KEPT: with an unchanged pattern it remains a valid SPD
  /// approximate inverse, trading a few extra iterations for the setup
  /// cost. `g` must have the node count this solver was built for.
  void refactorize(const graph::Graph& g);

  [[nodiscard]] Index num_nodes() const noexcept { return n_; }

  /// Method actually selected after kAuto resolution.
  [[nodiscard]] LaplacianMethod method() const noexcept { return method_; }

  /// Factorization statistics (nnz, supernodes, levels, seconds) when the
  /// resolved method is Cholesky; nullptr for the PCG methods, which hold
  /// no factor.
  [[nodiscard]] const FactorStats* factor_stats() const noexcept {
    return cholesky_ ? &cholesky_->stats() : nullptr;
  }

  /// The grounded-system fill-reducing permutation of the Cholesky factor
  /// (empty on the PCG methods) — feed it to the ordering-hint constructor
  /// to rebuild over a grown pattern without re-running the ordering
  /// heuristic.
  [[nodiscard]] const std::vector<Index>& cholesky_permutation() const {
    static const std::vector<Index> kEmpty;
    return cholesky_ ? cholesky_->permutation() : kEmpty;
  }

  /// PCG iterations spent in the most recent apply() or — max over the
  /// block's columns — apply_block() (0 on the Cholesky path, which
  /// resets the counter). Under concurrent calls this reports whichever
  /// solve recorded last; the value is always from ONE solve, never a
  /// mix.
  [[nodiscard]] Index last_pcg_iterations() const noexcept
      SGL_EXCLUDES(stats_mutex_) {
    const common::MutexLock lock(stats_mutex_);
    return pcg_stats_.max_iterations;
  }

  /// Per-block iteration statistics of the most recent apply()/
  /// apply_block() on a PCG method — the iterative-path counterpart of
  /// factor_stats(). All zero on the Cholesky path. The whole struct is
  /// written and read under one lock, so the snapshot is always
  /// internally consistent (it describes exactly one solve, even under
  /// concurrent applies — which one is unspecified).
  [[nodiscard]] PcgBlockStats pcg_block_stats() const noexcept
      SGL_EXCLUDES(stats_mutex_) {
    const common::MutexLock lock(stats_mutex_);
    return pcg_stats_;
  }

 private:
  /// One grounded solve: the shared per-column kernel behind apply() and
  /// apply_block(). `y` and `x` may alias.
  void apply_column(std::span<const Real> y, std::span<Real> x) const;

  Index n_ = 0;
  Index ground_ = 0;  // grounded node (index 0 by convention)
  Index factor_num_threads_ = 0;  // construction thread knob, for refactorize
  LaplacianMethod method_ = LaplacianMethod::kCholesky;
  la::CsrMatrix grounded_;  // (n−1)×(n−1) SPD reduced Laplacian
  std::vector<Index> live_rows_;  // the n−1 non-ground node indices
  std::unique_ptr<CholeskySolver> cholesky_;
  std::unique_ptr<Preconditioner> preconditioner_;
  PcgOptions pcg_options_;
  /// Records one solve's statistics (block width, per-column iteration
  /// counts) into the guarded diagnostic snapshot. Once per apply()/
  /// apply_block() call, so the lock is nowhere near a hot loop.
  void record_pcg_stats(Index columns, Index max_iters, Index total_iters,
                        Index converged) const noexcept
      SGL_EXCLUDES(stats_mutex_);

  // Diagnostic counters shared by concurrent apply() calls (multi-RHS
  // solves issue them from pool workers). Guarded by one mutex — not
  // per-field relaxed atomics — so readers can never observe a snapshot
  // torn across two racing solves; the thread-safety analysis enforces
  // the locking discipline (DESIGN.md §7).
  mutable common::Mutex stats_mutex_;
  mutable PcgBlockStats pcg_stats_ SGL_GUARDED_BY(stats_mutex_);
};

}  // namespace sgl::solver
