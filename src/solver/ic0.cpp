#include "solver/ic0.hpp"

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/parallel.hpp"

namespace sgl::solver {

bool Ic0Preconditioner::try_factor(const la::CsrMatrix& a, Real shift) {
  const Index n = a.rows();
  const auto& arp = a.row_ptr();
  const auto& aci = a.col_idx();
  const auto& avv = a.values();

  // Lower-triangle pattern of A (including the diagonal).
  row_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  col_idx_.clear();
  values_.clear();
  diag_pos_.assign(static_cast<std::size_t>(n), kInvalidIndex);
  for (Index i = 0; i < n; ++i) {
    for (Index k = arp[static_cast<std::size_t>(i)];
         k < arp[static_cast<std::size_t>(i) + 1]; ++k) {
      const Index j = aci[static_cast<std::size_t>(k)];
      if (j > i) continue;
      if (j == i) diag_pos_[static_cast<std::size_t>(i)] = to_index(col_idx_.size());
      col_idx_.push_back(j);
      Real v = avv[static_cast<std::size_t>(k)];
      if (j == i) v += shift;
      values_.push_back(v);
    }
    row_ptr_[static_cast<std::size_t>(i) + 1] = to_index(col_idx_.size());
    if (diag_pos_[static_cast<std::size_t>(i)] == kInvalidIndex) return false;
  }

  // Row-oriented IC(0): for each row i, update entries from previously
  // factored rows restricted to the existing pattern.
  for (Index i = 0; i < n; ++i) {
    const Index row_begin = row_ptr_[static_cast<std::size_t>(i)];
    const Index row_diag = diag_pos_[static_cast<std::size_t>(i)];
    for (Index k = row_begin; k <= row_diag; ++k) {
      const Index j = col_idx_[static_cast<std::size_t>(k)];
      Real sum = values_[static_cast<std::size_t>(k)];
      // Dot product of rows i and j over columns < j (pattern-restricted
      // two-pointer merge; both rows are sorted).
      Index pi = row_begin;
      Index pj = row_ptr_[static_cast<std::size_t>(j)];
      const Index j_diag = diag_pos_[static_cast<std::size_t>(j)];
      while (pi < k && pj < j_diag) {
        const Index ci = col_idx_[static_cast<std::size_t>(pi)];
        const Index cj = col_idx_[static_cast<std::size_t>(pj)];
        if (ci == cj) {
          sum -= values_[static_cast<std::size_t>(pi)] *
                 values_[static_cast<std::size_t>(pj)];
          ++pi;
          ++pj;
        } else if (ci < cj) {
          ++pi;
        } else {
          ++pj;
        }
      }
      if (j == i) {
        if (!(sum > 0.0)) return false;
        values_[static_cast<std::size_t>(k)] = std::sqrt(sum);
      } else {
        values_[static_cast<std::size_t>(k)] =
            sum / values_[static_cast<std::size_t>(j_diag)];
      }
    }
  }
  return true;
}

Ic0Preconditioner::Ic0Preconditioner(const la::CsrMatrix& a) {
  SGL_EXPECTS(a.rows() == a.cols(), "Ic0Preconditioner: matrix must be square");
  n_ = a.rows();

  // Shifted-IC fallback: boost the diagonal until the factorization
  // succeeds. Grounded Laplacians succeed with shift 0.
  Real max_diag = 0.0;
  for (const Real d : a.diagonal()) max_diag = std::max(max_diag, std::abs(d));
  shift_ = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (try_factor(a, shift_)) return;
    shift_ = (shift_ == 0.0) ? 1e-3 * max_diag : 2.0 * shift_;
  }
  throw NumericalError(
      "Ic0Preconditioner: factorization failed even with diagonal shifts",
      ErrorCode::kFactorizationFailed);
}

void Ic0Preconditioner::apply(const la::Vector& r, la::Vector& z) const {
  SGL_EXPECTS(to_index(r.size()) == n_, "Ic0Preconditioner: size mismatch");
  z = r;
  // Forward solve L y = r (rows are sorted; diagonal is last ≤ i entry).
  for (Index i = 0; i < n_; ++i) {
    Real acc = z[static_cast<std::size_t>(i)];
    const Index diag = diag_pos_[static_cast<std::size_t>(i)];
    for (Index k = row_ptr_[static_cast<std::size_t>(i)]; k < diag; ++k) {
      acc -= values_[static_cast<std::size_t>(k)] *
             z[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
    }
    z[static_cast<std::size_t>(i)] = acc / values_[static_cast<std::size_t>(diag)];
  }
  // Backward solve Lᵀ z = y using column access = transposed row sweep.
  for (Index i = n_ - 1; i >= 0; --i) {
    const Index diag = diag_pos_[static_cast<std::size_t>(i)];
    const Real zi = z[static_cast<std::size_t>(i)] /
                    values_[static_cast<std::size_t>(diag)];
    z[static_cast<std::size_t>(i)] = zi;
    for (Index k = row_ptr_[static_cast<std::size_t>(i)]; k < diag; ++k) {
      z[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] -=
          values_[static_cast<std::size_t>(k)] * zi;
    }
  }
}

void Ic0Preconditioner::apply_block(la::ConstBlockView r, la::BlockView z,
                                    Index num_threads) const {
  SGL_EXPECTS(r.rows == n_ && z.rows == n_,
              "Ic0Preconditioner::apply_block: row count mismatch");
  SGL_EXPECTS(r.cols == z.cols,
              "Ic0Preconditioner::apply_block: column count mismatch");
  const Index b = r.cols;
  if (b == 0 || n_ == 0) return;
  const std::size_t sb = static_cast<std::size_t>(b);

  // Row-major scratch: one contiguous b-strip per matrix row, so each
  // factor entry streamed below touches a single strip. The sweeps mirror
  // apply() exactly (same per-column operation order), b-wide.
  std::vector<Real> w(static_cast<std::size_t>(n_) * sb);
  parallel::parallel_for(0, n_, num_threads, [&](Index i) {
    Real* wi = w.data() + static_cast<std::size_t>(i) * sb;
    for (Index c = 0; c < b; ++c) wi[c] = r.at(i, c);
  });

  for (Index i = 0; i < n_; ++i) {
    Real* wi = w.data() + static_cast<std::size_t>(i) * sb;
    const Index diag = diag_pos_[static_cast<std::size_t>(i)];
    for (Index k = row_ptr_[static_cast<std::size_t>(i)]; k < diag; ++k) {
      const Real v = values_[static_cast<std::size_t>(k)];
      const Real* wj =
          w.data() +
          static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)]) * sb;
      for (Index c = 0; c < b; ++c) wi[c] -= v * wj[c];
    }
    const Real dv = values_[static_cast<std::size_t>(diag)];
    for (Index c = 0; c < b; ++c) wi[c] /= dv;
  }
  for (Index i = n_ - 1; i >= 0; --i) {
    Real* wi = w.data() + static_cast<std::size_t>(i) * sb;
    const Index diag = diag_pos_[static_cast<std::size_t>(i)];
    const Real dv = values_[static_cast<std::size_t>(diag)];
    for (Index c = 0; c < b; ++c) wi[c] /= dv;
    for (Index k = row_ptr_[static_cast<std::size_t>(i)]; k < diag; ++k) {
      const Real v = values_[static_cast<std::size_t>(k)];
      Real* wj =
          w.data() +
          static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)]) * sb;
      for (Index c = 0; c < b; ++c) wj[c] -= v * wi[c];
    }
  }

  parallel::parallel_for(0, n_, num_threads, [&](Index i) {
    const Real* wi = w.data() + static_cast<std::size_t>(i) * sb;
    for (Index c = 0; c < b; ++c) z.at(i, c) = wi[c];
  });
}

}  // namespace sgl::solver
