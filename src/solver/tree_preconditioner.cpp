#include "solver/tree_preconditioner.hpp"

#include <vector>

#include "common/parallel.hpp"
#include "graph/components.hpp"
#include "graph/mst.hpp"

namespace sgl::solver {

TreePreconditioner::TreePreconditioner(const graph::Graph& g) {
  SGL_EXPECTS(g.num_nodes() >= 2, "TreePreconditioner: need >= 2 nodes");
  SGL_EXPECTS(graph::is_connected(g),
              "TreePreconditioner: graph must be connected");
  n_ = g.num_nodes() - 1;

  const std::vector<Index> tree_ids = graph::maximum_spanning_forest(g);
  const graph::Graph tree = graph::subgraph_from_edges(g, tree_ids);
  const graph::AdjacencyList adj = tree.adjacency_list();

  // Root the tree at the ground (node 0) by BFS; eliminating nodes in
  // reverse BFS order (leaves first) is a perfect zero-fill order.
  const Index ground = 0;
  std::vector<Index> order{ground};
  std::vector<Index> parent(static_cast<std::size_t>(g.num_nodes()),
                            kInvalidIndex);
  std::vector<Real> parent_weight(static_cast<std::size_t>(g.num_nodes()), 0.0);
  std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
  seen[static_cast<std::size_t>(ground)] = true;
  for (std::size_t head = 0; head < order.size(); ++head) {
    const Index u = order[head];
    for (Index k = adj.row_ptr[static_cast<std::size_t>(u)];
         k < adj.row_ptr[static_cast<std::size_t>(u) + 1]; ++k) {
      const Index v = adj.neighbor[static_cast<std::size_t>(k)];
      if (seen[static_cast<std::size_t>(v)]) continue;
      seen[static_cast<std::size_t>(v)] = true;
      parent[static_cast<std::size_t>(v)] = u;
      parent_weight[static_cast<std::size_t>(v)] =
          adj.weight[static_cast<std::size_t>(k)];
      order.push_back(v);
    }
  }
  SGL_ENSURES(to_index(order.size()) == g.num_nodes(),
              "TreePreconditioner: spanning tree does not span");

  // Grounded-tree diagonal (node v > 0 → reduced index v − 1; edges into
  // the ground contribute only to the surviving endpoint's diagonal).
  diag_.assign(static_cast<std::size_t>(n_), 0.0);
  for (const graph::Edge& e : tree.edges()) {
    if (e.s != ground) diag_[static_cast<std::size_t>(e.s - 1)] += e.weight;
    if (e.t != ground) diag_[static_cast<std::size_t>(e.t - 1)] += e.weight;
  }

  // LDLᵀ on the tree, computed once: eliminating leaf v with tree-edge
  // weight w to parent p gives L(p, v) = −w / D(v) and the Schur update
  // D(p) ← D(p) − w² / D(v). One off-diagonal entry per node: zero fill.
  elimination_.reserve(static_cast<std::size_t>(n_));
  for (std::size_t i = order.size(); i-- > 1;) {  // skip the ground itself
    const Index v = order[i];
    const Index p = parent[static_cast<std::size_t>(v)];
    Elimination e;
    e.node = v - 1;
    e.parent = (p == ground) ? kInvalidIndex : p - 1;
    const Real w = parent_weight[static_cast<std::size_t>(v)];
    e.weight = -w / diag_[static_cast<std::size_t>(e.node)];  // L(p, v)
    if (e.parent != kInvalidIndex) {
      diag_[static_cast<std::size_t>(e.parent)] -=
          w * w / diag_[static_cast<std::size_t>(e.node)];
    }
    elimination_.push_back(e);
  }
}

void TreePreconditioner::apply(const la::Vector& r, la::Vector& z) const {
  SGL_EXPECTS(to_index(r.size()) == n_, "TreePreconditioner: size mismatch");
  z = r;
  // Forward solve L y = r (children are eliminated before their parent).
  for (const Elimination& e : elimination_) {
    if (e.parent != kInvalidIndex) {
      z[static_cast<std::size_t>(e.parent)] -=
          e.weight * z[static_cast<std::size_t>(e.node)];
    }
  }
  // Diagonal solve D y = y.
  for (Index i = 0; i < n_; ++i)
    z[static_cast<std::size_t>(i)] /= diag_[static_cast<std::size_t>(i)];
  // Backward solve Lᵀ z = y (root to leaves).
  for (std::size_t i = elimination_.size(); i-- > 0;) {
    const Elimination& e = elimination_[i];
    if (e.parent != kInvalidIndex) {
      z[static_cast<std::size_t>(e.node)] -=
          e.weight * z[static_cast<std::size_t>(e.parent)];
    }
  }
}

void TreePreconditioner::apply_block(la::ConstBlockView r, la::BlockView z,
                                     Index num_threads) const {
  SGL_EXPECTS(r.rows == n_ && z.rows == n_,
              "TreePreconditioner::apply_block: row count mismatch");
  SGL_EXPECTS(r.cols == z.cols,
              "TreePreconditioner::apply_block: column count mismatch");
  const Index b = r.cols;
  if (b == 0 || n_ == 0) return;
  const std::size_t sb = static_cast<std::size_t>(b);

  // Row-major scratch so each elimination entry updates one contiguous
  // b-strip; the three passes mirror apply() exactly, b-wide.
  std::vector<Real> w(static_cast<std::size_t>(n_) * sb);
  parallel::parallel_for(0, n_, num_threads, [&](Index i) {
    Real* wi = w.data() + static_cast<std::size_t>(i) * sb;
    for (Index c = 0; c < b; ++c) wi[c] = r.at(i, c);
  });

  for (const Elimination& e : elimination_) {
    if (e.parent == kInvalidIndex) continue;
    Real* wp = w.data() + static_cast<std::size_t>(e.parent) * sb;
    const Real* wn = w.data() + static_cast<std::size_t>(e.node) * sb;
    for (Index c = 0; c < b; ++c) wp[c] -= e.weight * wn[c];
  }
  for (Index i = 0; i < n_; ++i) {
    Real* wi = w.data() + static_cast<std::size_t>(i) * sb;
    const Real d = diag_[static_cast<std::size_t>(i)];
    for (Index c = 0; c < b; ++c) wi[c] /= d;
  }
  for (std::size_t i = elimination_.size(); i-- > 0;) {
    const Elimination& e = elimination_[i];
    if (e.parent == kInvalidIndex) continue;
    Real* wn = w.data() + static_cast<std::size_t>(e.node) * sb;
    const Real* wp = w.data() + static_cast<std::size_t>(e.parent) * sb;
    for (Index c = 0; c < b; ++c) wn[c] -= e.weight * wp[c];
  }

  parallel::parallel_for(0, n_, num_threads, [&](Index i) {
    const Real* wi = w.data() + static_cast<std::size_t>(i) * sb;
    for (Index c = 0; c < b; ++c) z.at(i, c) = wi[c];
  });
}

}  // namespace sgl::solver
