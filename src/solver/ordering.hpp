// Fill-reducing orderings for sparse symmetric factorization.
//
// A permutation is represented as perm[new_position] = old_index; the
// factorization works on P A Pᵀ. Three families are provided:
//   - RCM: bandwidth-reducing, cheap (O(|E|)), good for long thin meshes;
//   - minimum degree: the classic greedy elimination-graph heuristic,
//     excellent on the ultra-sparse (tree + εN) graphs SGL produces;
//   - BFS nested dissection: level-set separators, recursion; the right
//     choice for large 2D meshes where MD's fill grows.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "la/sparse.hpp"

namespace sgl::solver {

enum class OrderingMethod {
  kNatural,
  kRcm,
  kMinimumDegree,
  kNestedDissection,
  /// Heuristic pick: MD below ~30k rows or when the matrix is very sparse,
  /// nested dissection otherwise.
  kAuto,
};

/// CLI-facing name: "natural", "rcm", "amd" (minimum degree), "nd"
/// (nested dissection), "auto".
[[nodiscard]] const char* ordering_method_name(OrderingMethod method);

/// Inverse of ordering_method_name; nullopt for unknown names.
[[nodiscard]] std::optional<OrderingMethod> parse_ordering_method(
    std::string_view name);

/// Comma-joined valid names for CLI error messages.
[[nodiscard]] std::string ordering_method_name_list();

/// Identity permutation.
[[nodiscard]] std::vector<Index> natural_ordering(Index n);

/// Reverse Cuthill–McKee on the symmetric pattern of a.
[[nodiscard]] std::vector<Index> rcm_ordering(const la::CsrMatrix& a);

/// Greedy minimum-degree on the elimination graph.
[[nodiscard]] std::vector<Index> minimum_degree_ordering(const la::CsrMatrix& a);

/// Recursive BFS level-set nested dissection.
[[nodiscard]] std::vector<Index> nested_dissection_ordering(
    const la::CsrMatrix& a);

/// Dispatches on method (resolving kAuto as documented above).
[[nodiscard]] std::vector<Index> compute_ordering(const la::CsrMatrix& a,
                                                  OrderingMethod method);

/// inverse[perm[i]] = i.
[[nodiscard]] std::vector<Index> invert_permutation(
    const std::vector<Index>& perm);

/// Symmetric permutation: returns P A Pᵀ for perm[new] = old.
[[nodiscard]] la::CsrMatrix permute_symmetric(const la::CsrMatrix& a,
                                              const std::vector<Index>& perm);

}  // namespace sgl::solver
