// Preconditioner interface and the simple point preconditioners.
//
// A preconditioner approximates A⁻¹ with a fixed symmetric positive
// definite operator z = M⁻¹ r — the contract PCG requires. The batched
// apply_block is the seam for a future block-PCG: the default routes
// column by column through apply(), and the sweep-based preconditioners
// (IC(0), spanning tree) override it with true block sweeps that stream
// their factors once per block.
#pragma once

#include <memory>

#include "la/multi_vector.hpp"
#include "la/sparse.hpp"
#include "la/vector_ops.hpp"

namespace sgl::solver {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// z = M⁻¹ r. `z` is resized as needed.
  virtual void apply(const la::Vector& r, la::Vector& z) const = 0;

  /// Z = M⁻¹ R for an n × b block. The base implementation runs the b
  /// columns through apply() column-parallel (`num_threads`: 0 = library
  /// default, 1 = serial); every override must keep each column bitwise
  /// equal to apply() for every thread count.
  virtual void apply_block(la::ConstBlockView r, la::BlockView z,
                           Index num_threads = 0) const;

  /// Problem dimension.
  [[nodiscard]] virtual Index size() const noexcept = 0;
};

/// M = I (plain conjugate gradient).
class IdentityPreconditioner final : public Preconditioner {
 public:
  explicit IdentityPreconditioner(Index n) : n_(n) {}
  void apply(const la::Vector& r, la::Vector& z) const override { z = r; }
  [[nodiscard]] Index size() const noexcept override { return n_; }

 private:
  Index n_;
};

/// M = diag(A). Cheap, modest acceleration.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const la::CsrMatrix& a);
  void apply(const la::Vector& r, la::Vector& z) const override;

  /// Block application: one elementwise diagonal scaling over the whole
  /// block (no per-column scratch or virtual dispatch), the same multiply
  /// per element as apply() — bitwise equal to b apply() calls.
  void apply_block(la::ConstBlockView r, la::BlockView z,
                   Index num_threads = 0) const override;

  [[nodiscard]] Index size() const noexcept override {
    return to_index(inv_diag_.size());
  }

 private:
  la::Vector inv_diag_;
};

/// Symmetric Gauss–Seidel: M = (D + L) D⁻¹ (D + U); one forward plus one
/// backward sweep, symmetric by construction.
class SgsPreconditioner final : public Preconditioner {
 public:
  /// Keeps a reference to `a`; the matrix must outlive the preconditioner.
  explicit SgsPreconditioner(const la::CsrMatrix& a);
  void apply(const la::Vector& r, la::Vector& z) const override;
  [[nodiscard]] Index size() const noexcept override { return a_.rows(); }

 private:
  const la::CsrMatrix& a_;
  la::Vector diag_;
};

}  // namespace sgl::solver
