#include "solver/preconditioner.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/parallel.hpp"

namespace sgl::solver {

void Preconditioner::apply_block(la::ConstBlockView r, la::BlockView z,
                                 Index num_threads) const {
  SGL_EXPECTS(r.rows == size() && z.rows == size(),
              "Preconditioner::apply_block: row count mismatch");
  SGL_EXPECTS(r.cols == z.cols,
              "Preconditioner::apply_block: column count mismatch");
  // Column-parallel fallback: each column runs the exact apply() kernel
  // into per-column scratch, so the block is bit-identical to b
  // sequential apply() calls for every thread count.
  parallel::parallel_for(0, r.cols, num_threads, [&](Index j) {
    const std::span<const Real> rj = r.col(j);
    la::Vector rv(rj.begin(), rj.end());
    la::Vector zv;
    apply(rv, zv);
    const std::span<Real> zj = z.col(j);
    std::copy(zv.begin(), zv.end(), zj.begin());
  });
}

JacobiPreconditioner::JacobiPreconditioner(const la::CsrMatrix& a) {
  SGL_EXPECTS(a.rows() == a.cols(), "JacobiPreconditioner: square matrix");
  inv_diag_ = a.diagonal();
  for (Real& d : inv_diag_) {
    SGL_EXPECTS(d > 0.0, "JacobiPreconditioner: nonpositive diagonal");
    d = 1.0 / d;
  }
}

void JacobiPreconditioner::apply(const la::Vector& r, la::Vector& z) const {
  SGL_EXPECTS(r.size() == inv_diag_.size(), "Jacobi::apply: size mismatch");
  z.resize(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i] * inv_diag_[i];
}

void JacobiPreconditioner::apply_block(la::ConstBlockView r, la::BlockView z,
                                       Index num_threads) const {
  const Index n = size();
  SGL_EXPECTS(r.rows == n && z.rows == n,
              "JacobiPreconditioner::apply_block: row count mismatch");
  SGL_EXPECTS(r.cols == z.cols,
              "JacobiPreconditioner::apply_block: column count mismatch");
  parallel::parallel_for(0, r.cols, num_threads, [&](Index j) {
    const std::span<const Real> rj = r.col(j);
    const std::span<Real> zj = z.col(j);
    for (std::size_t i = 0; i < rj.size(); ++i) zj[i] = rj[i] * inv_diag_[i];
  });
}

SgsPreconditioner::SgsPreconditioner(const la::CsrMatrix& a) : a_(a) {
  SGL_EXPECTS(a.rows() == a.cols(), "SgsPreconditioner: square matrix");
  diag_ = a.diagonal();
  for (const Real d : diag_)
    SGL_EXPECTS(d > 0.0, "SgsPreconditioner: nonpositive diagonal");
}

void SgsPreconditioner::apply(const la::Vector& r, la::Vector& z) const {
  const Index n = a_.rows();
  SGL_EXPECTS(to_index(r.size()) == n, "Sgs::apply: size mismatch");
  z.assign(r.size(), 0.0);
  const auto& rp = a_.row_ptr();
  const auto& ci = a_.col_idx();
  const auto& vv = a_.values();

  // Forward sweep: (D + L) y = r.
  for (Index i = 0; i < n; ++i) {
    Real acc = r[static_cast<std::size_t>(i)];
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      const Index j = ci[static_cast<std::size_t>(k)];
      if (j < i) acc -= vv[static_cast<std::size_t>(k)] * z[static_cast<std::size_t>(j)];
    }
    z[static_cast<std::size_t>(i)] = acc / diag_[static_cast<std::size_t>(i)];
  }
  // Scale by D: y ← D y.
  for (Index i = 0; i < n; ++i)
    z[static_cast<std::size_t>(i)] *= diag_[static_cast<std::size_t>(i)];
  // Backward sweep: (D + U) z = y.
  for (Index i = n - 1; i >= 0; --i) {
    Real acc = z[static_cast<std::size_t>(i)];
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      const Index j = ci[static_cast<std::size_t>(k)];
      if (j > i) acc -= vv[static_cast<std::size_t>(k)] * z[static_cast<std::size_t>(j)];
    }
    z[static_cast<std::size_t>(i)] = acc / diag_[static_cast<std::size_t>(i)];
  }
}

}  // namespace sgl::solver
