// SolverContext: a warm factorization that tracks a changing graph
// (DESIGN.md §8).
//
// The SGL learner appends a handful of edges per iteration, yet every
// solver consumer (embedding, objective, edge scaling, resistance
// metrics) historically built its own LaplacianPinvSolver from scratch —
// 3–4 fresh factorizations per step. SolverContext owns ONE solver plus
// the graph version it was built for, and `acquire()` reconciles it with
// the caller's current graph:
//
//   - unchanged graph        → hand back the warm solver (free);
//   - appended edges         → rank-1 update_edge per edge when the stamps
//                              stay inside the analyzed factor pattern
//                              (Cholesky method only);
//   - weights-only change    → numeric refactorization with the KEPT
//                              symbolic analysis (Cholesky), or a matrix
//                              refresh that reuses the preconditioner
//                              setup (PCG methods — same pattern, so the
//                              setup is still a valid approximate
//                              inverse);
//   - anything else          → full rebuild.
//
// Modes (CLI: `sgl_learn --incremental {auto,on,off}`):
//   kOff   — acquire() rebuilds unconditionally: exactly the historical
//            per-consumer cost and BITWISE the historical results.
//   kOn    — always update in place; numeric renumeration only when a
//            weights-only change forces it.
//   kAuto  — like kOn, plus a refactorization policy: after
//            max_updates_between_refactor accumulated updates, or once the
//            accumulated |Δw| exceeds growth_refactor_threshold × the
//            base edge weight mass, the factor is renumerated to shed
//            accumulated rounding (an updated factor drifts from a fresh
//            one at rounding scale per update).
//
// Determinism contract (per mode, DESIGN.md §8): an updated factor may
// differ from a fresh factorization of the same matrix in floating point,
// so incremental runs only promise to equal OTHER incremental runs — and
// they do, bitwise, for every thread count (the update path is serial,
// and every bulk kernel underneath is thread-count invariant). kOff runs
// remain bitwise equal to the pre-context code paths.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "la/dense_matrix.hpp"
#include "solver/laplacian_solver.hpp"

namespace sgl::solver {

enum class IncrementalMode {
  kAuto,  ///< incremental with a periodic refactorization safety net
  kOn,    ///< always incremental; renumerate only on weights-only changes
  kOff,   ///< rebuild on every acquire (historical behavior, bitwise)
};

/// CLI name of a mode ("auto", "on", "off").
[[nodiscard]] const char* incremental_mode_name(IncrementalMode mode);

/// Strict inverse of incremental_mode_name; nullopt on unknown names.
[[nodiscard]] std::optional<IncrementalMode> parse_incremental_mode(
    std::string_view name);

/// Comma-joined valid names for CLI error messages.
[[nodiscard]] std::string incremental_mode_name_list();

struct SolverContextOptions {
  IncrementalMode mode = IncrementalMode::kOff;
  /// Options for the owned LaplacianPinvSolver (method, ordering, threads).
  LaplacianSolverOptions solver;
  /// kAuto: renumerate after this many rank-1 updates since the last
  /// full/numeric factorization.
  Index max_updates_between_refactor = 64;
  /// kAuto: renumerate once the accumulated |Δw| of applied updates
  /// exceeds this fraction of the total edge weight mass at the last
  /// factorization (conditioning guard for weight-heavy update streams).
  Real growth_refactor_threshold = 0.5;
  /// Incremental modes: a rebuild forced by a pattern miss reuses the
  /// outgoing factor's fill-reducing permutation instead of re-running the
  /// ordering heuristic (the dominant rebuild cost on near-tree graphs —
  /// a permutation computed a few edges ago is still a good fill
  /// reducer). In kAuto a fresh ordering is computed after this many
  /// consecutive reuses, shedding fill drift as the pattern grows; kOn
  /// reuses without limit.
  Index max_ordering_reuses = 16;
};

/// Lifetime counters of one context (CLI --verbose, tests).
struct SolverContextStats {
  Index acquisitions = 0;       ///< acquire() calls
  Index rebuilds = 0;           ///< full solver constructions
  Index refactorizations = 0;   ///< numeric-only renumerations / refreshes
  Index updates_applied = 0;    ///< rank-1 edge updates applied in place
  Index pattern_misses = 0;     ///< rebuilds forced by out-of-pattern edges
  Index ordering_reuses = 0;    ///< rebuilds that reused the cached ordering
};

class SolverContext {
 public:
  explicit SolverContext(SolverContextOptions options = {});

  /// Returns a solver valid for the CURRENT state of `g`, reusing or
  /// incrementally updating the warm one per the mode policy above. The
  /// reference stays valid until the next acquire()/invalidate(). Graphs
  /// are tracked by their append-only edge list: the context fingerprints
  /// the known edge prefix, so it recognizes "edges appended" and
  /// "weights rescaled" without storing the graph.
  [[nodiscard]] const LaplacianPinvSolver& acquire(const graph::Graph& g);

  /// Drops the warm solver and all warm-start state; the next acquire()
  /// rebuilds from scratch.
  void invalidate();

  [[nodiscard]] IncrementalMode mode() const noexcept {
    return options_.mode;
  }
  /// True for the modes that reuse state across acquires (kOn / kAuto).
  [[nodiscard]] bool incremental() const noexcept {
    return options_.mode != IncrementalMode::kOff;
  }
  [[nodiscard]] const SolverContextOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const SolverContextStats& stats() const noexcept {
    return stats_;
  }

  /// Warm-start subspace slot for the consumers' eigensolver: the exact
  /// embedding stores its converged eigenvector block here and seeds the
  /// next iteration's Lanczos start block from it
  /// (eig::LanczosOptions::initial_block). Empty until the first store;
  /// always empty in kOff (store_warm_subspace is a no-op there, keeping
  /// kOff bitwise-historical).
  [[nodiscard]] const la::DenseMatrix& warm_subspace() const noexcept {
    return warm_subspace_;
  }
  void store_warm_subspace(la::DenseMatrix basis);

 private:
  /// Tries to reconcile the warm solver with `g` in place (updates /
  /// renumeration). False ⇒ caller must rebuild.
  bool try_incremental_reuse(const graph::Graph& g);
  void rebuild(const graph::Graph& g);
  /// Renumerates the warm solver for the current graph and resets the
  /// kAuto accumulators.
  void refactorize(const graph::Graph& g);

  SolverContextOptions options_;
  std::unique_ptr<LaplacianPinvSolver> solver_;
  SolverContextStats stats_;
  la::DenseMatrix warm_subspace_;

  // Graph version: how much of the (append-only) edge list the warm
  // solver reflects, with FNV-1a fingerprints to detect in-place changes
  // of that prefix — endpoints only (pattern identity) and endpoints +
  // weight bits (numeric identity).
  Index known_nodes_ = 0;
  std::size_t known_edges_ = 0;
  std::uint64_t endpoint_fingerprint_ = 0;
  std::uint64_t weight_fingerprint_ = 0;

  // kAuto refactorization accumulators (since the last rebuild /
  // renumeration).
  Index updates_since_refactor_ = 0;
  Real accumulated_update_weight_ = 0.0;
  Real base_weight_mass_ = 0.0;
  /// Consecutive rebuilds that reused the cached ordering (kAuto policy).
  Index ordering_reuses_in_a_row_ = 0;
};

}  // namespace sgl::solver
