// Aggregation-based algebraic multigrid.
//
// Plays the role of the paper's near-linear SDD solvers ([7] KMP, [14]
// SAMG): a V-cycle over a hierarchy built by greedy strength-based
// aggregation with piecewise-constant prolongation and Galerkin coarse
// operators, smoothed by symmetric Gauss–Seidel. One V-cycle is a fixed
// SPD operator, so AmgPreconditioner plugs directly into PCG.
#pragma once

#include <memory>
#include <vector>

#include "la/dense_matrix.hpp"
#include "la/sparse.hpp"
#include "solver/preconditioner.hpp"

namespace sgl::solver {

struct AmgOptions {
  /// Strength threshold: j is a strong neighbor of i when
  /// |a_ij| ≥ theta · max_{k≠i} |a_ik|.
  Real theta = 0.25;
  /// Stop coarsening below this size and solve densely.
  Index coarse_size = 64;
  Index max_levels = 25;
  Index pre_smooth = 1;
  Index post_smooth = 1;
};

/// Multigrid hierarchy for one SPD matrix.
class AmgHierarchy {
 public:
  explicit AmgHierarchy(const la::CsrMatrix& a, const AmgOptions& options = {});

  /// One V-cycle approximating A⁻¹ r (zero initial guess).
  void v_cycle(const la::Vector& r, la::Vector& z) const;

  [[nodiscard]] Index num_levels() const noexcept {
    return to_index(levels_.size());
  }
  [[nodiscard]] Index size() const noexcept;

  /// Total stored nonzeros across all level operators divided by the fine
  /// operator's nonzeros (grid complexity; small = cheap cycles).
  [[nodiscard]] Real operator_complexity() const;

 private:
  struct Level {
    la::CsrMatrix a;
    la::Vector diag;
    la::CsrMatrix p;   // prolongation to this level from the next-coarser
    std::vector<Index> aggregate;  // fine node -> aggregate id
  };

  void smooth(const Level& level, const la::Vector& rhs, la::Vector& x,
              bool forward) const;
  void cycle(std::size_t depth, const la::Vector& rhs, la::Vector& x) const;

  AmgOptions options_;
  std::vector<Level> levels_;
  la::DenseMatrix coarse_factor_;  // dense LDLᵀ of the coarsest operator
};

/// Preconditioner adapter: z = one V-cycle applied to r.
class AmgPreconditioner final : public Preconditioner {
 public:
  explicit AmgPreconditioner(const la::CsrMatrix& a,
                             const AmgOptions& options = {})
      : hierarchy_(a, options) {}

  void apply(const la::Vector& r, la::Vector& z) const override {
    hierarchy_.v_cycle(r, z);
  }
  [[nodiscard]] Index size() const noexcept override {
    return hierarchy_.size();
  }
  [[nodiscard]] const AmgHierarchy& hierarchy() const noexcept {
    return hierarchy_;
  }

 private:
  AmgHierarchy hierarchy_;
};

}  // namespace sgl::solver
