// Aggregation-based algebraic multigrid.
//
// Plays the role of the paper's near-linear SDD solvers ([7] KMP, [14]
// SAMG): a V-cycle over a hierarchy built by greedy strength-based
// aggregation with piecewise-constant prolongation and Galerkin coarse
// operators, smoothed by symmetric Gauss–Seidel. One V-cycle is a fixed
// SPD operator, so AmgPreconditioner plugs directly into PCG.
#pragma once

#include <memory>
#include <vector>

#include "la/dense_matrix.hpp"
#include "la/sparse.hpp"
#include "solver/preconditioner.hpp"

namespace sgl::solver {

struct AmgOptions {
  /// Strength threshold: j is a strong neighbor of i when
  /// |a_ij| ≥ theta · max_{k≠i} |a_ik|.
  Real theta = 0.25;
  /// Stop coarsening below this size and solve densely.
  Index coarse_size = 64;
  Index max_levels = 25;
  Index pre_smooth = 1;
  Index post_smooth = 1;
};

/// Multigrid hierarchy for one SPD matrix.
class AmgHierarchy {
 public:
  explicit AmgHierarchy(const la::CsrMatrix& a, const AmgOptions& options = {});

  /// One V-cycle approximating A⁻¹ r (zero initial guess).
  void v_cycle(const la::Vector& r, la::Vector& z) const;

  /// One V-cycle per column of an n × b block (zero initial guesses). The
  /// smoothing sweeps, residuals, and grid transfers run b-wide on
  /// row-major scratch — every level operator is streamed once per block
  /// instead of once per column — while each column's operations mirror
  /// v_cycle() op-for-op (the restriction reproduces multiply_transposed's
  /// zero-skip and fixed-chunk combine), so column j of the result is
  /// bitwise equal to v_cycle(r_j) for every thread count and block width.
  void v_cycle_block(la::ConstBlockView r, la::BlockView z,
                     Index num_threads = 0) const;

  [[nodiscard]] Index num_levels() const noexcept {
    return to_index(levels_.size());
  }
  [[nodiscard]] Index size() const noexcept;

  /// Total stored nonzeros across all level operators divided by the fine
  /// operator's nonzeros (grid complexity; small = cheap cycles).
  [[nodiscard]] Real operator_complexity() const;

 private:
  struct Level {
    la::CsrMatrix a;
    la::Vector diag;
    la::CsrMatrix p;   // prolongation to this level from the next-coarser
    std::vector<Index> aggregate;  // fine node -> aggregate id
  };

  void smooth(const Level& level, const la::Vector& rhs, la::Vector& x,
              bool forward) const;
  void cycle(std::size_t depth, const la::Vector& rhs, la::Vector& x) const;
  /// Gauss–Seidel sweep over b columns packed row-major in `x`.
  void smooth_block(const Level& level, const std::vector<Real>& rhs,
                    std::vector<Real>& x, Index b, bool forward) const;
  /// Recursive block cycle; `rhs`/`x` are level-sized row-major n × b.
  void cycle_block(std::size_t depth, const std::vector<Real>& rhs,
                   std::vector<Real>& x, Index b, Index num_threads) const;

  AmgOptions options_;
  std::vector<Level> levels_;
  la::DenseMatrix coarse_factor_;  // dense LDLᵀ of the coarsest operator
};

/// Preconditioner adapter: z = one V-cycle applied to r.
class AmgPreconditioner final : public Preconditioner {
 public:
  explicit AmgPreconditioner(const la::CsrMatrix& a,
                             const AmgOptions& options = {})
      : hierarchy_(a, options) {}

  void apply(const la::Vector& r, la::Vector& z) const override {
    hierarchy_.v_cycle(r, z);
  }

  /// Block application: one block V-cycle (hierarchy operators streamed
  /// once per block of b right-hand sides), bitwise equal to b apply()
  /// calls — the real override the block-PCG seam needs instead of the
  /// column-parallel fallback.
  void apply_block(la::ConstBlockView r, la::BlockView z,
                   Index num_threads = 0) const override {
    hierarchy_.v_cycle_block(r, z, num_threads);
  }

  [[nodiscard]] Index size() const noexcept override {
    return hierarchy_.size();
  }
  [[nodiscard]] const AmgHierarchy& hierarchy() const noexcept {
    return hierarchy_;
  }

 private:
  AmgHierarchy hierarchy_;
};

}  // namespace sgl::solver
