// Sparse LDLᵀ factorization subsystem for symmetric positive definite
// systems (DESIGN.md §4).
//
// The factorization is split into an explicit symbolic phase and a
// level-scheduled numeric phase:
//
//   - Symbolic analysis builds the elimination tree of P A Pᵀ (orderings
//     from ordering.hpp), the full column pattern of L, a row-major
//     mirror of that pattern for gather-based sweeps, chain-coalesced
//     column blocks (supernodes: maximal single-child parent chains, so a
//     tridiagonal chain or the dense trailing triangle of a mesh factor
//     becomes one block), and level sets over the block tree — blocks in
//     the same level set share no ancestor/descendant relation and can be
//     factored or swept concurrently.
//   - Symbolic analysis additionally refines each chain block into
//     *fundamental panels*: maximal runs of consecutive columns with
//     pattern(j) = {j+1} ∪ pattern(j+1). A panel's columns share one
//     below-diagonal row set and a dense diagonal triangle, so the panel
//     packs into a contiguous row-major dense block with ZERO fill —
//     every panel slot is a structural factor entry (plus one diagonal
//     accumulator slot per column).
//   - Numeric factorization comes in two bit-identical kernels
//     (FactorKernel): the retained scalar reference (left-looking one
//     column at a time, the PR 4 path) and the default supernodal
//     dense-panel kernel (DESIGN.md §9), which applies external updates
//     per DESCENDANT PANEL in ascending order — each descendant's columns
//     share one contiguous CSC row tail, so the update is a small dense
//     outer-product block restricted to exactly the touched rows ×
//     columns, streamed through register-blocked GEMM-style microkernels
//     (compile-time tile widths 8/4/2/1, the la::spmm idiom) straight
//     from factor storage — then factors the panel right-looking. Both
//     kernels subtract every per-element term in ascending updater order
//     with identical operand association, so the factor is bit-identical
//     across kernels and for every thread count.
//   - Triangular solves come in a scalar flavour (solve / solve_in_place,
//     the per-column reference path) and a block flavour (solve_block /
//     solve_in_place_block) that streams the factor's nonzeros ONCE per
//     block of b right-hand sides with level-parallel sweeps. Under the
//     supernodal kernel the forward sweep streams the retained dense
//     panels via precomputed contiguous gather runs instead of per-entry
//     CSC indirections. All flavours gather every output element in the
//     same fixed order, so the block result equals the scalar result
//     bitwise, column by column, for every thread count.
//
// On the ultra-sparse graphs SGL produces (spanning tree + εN extra
// edges) the factor is essentially linear in N; on 2D meshes nested
// dissection keeps fill near O(N log N).
#pragma once

#include <cstddef>
#include <vector>

#include "la/dense_matrix.hpp"
#include "la/multi_vector.hpp"
#include "la/sparse.hpp"
#include "la/vector_ops.hpp"
#include "solver/ordering.hpp"

namespace sgl::solver {

/// Numeric-phase kernel selector (both produce bit-identical factors).
enum class FactorKernel {
  /// Left-looking one column at a time over CSC scratch — the PR 4
  /// reference path, retained for bitwise cross-checks and as the
  /// fallback semantics specification.
  kScalar,
  /// Dense-panel supernodal kernel (DESIGN.md §9): batched GEMM-style
  /// microkernel external updates + right-looking in-panel
  /// factorization over contiguous row-major panels. The default.
  kSupernodal,
};

/// Factorization statistics (benchmarks, regression tests, --verbose).
struct FactorStats {
  Index n = 0;
  Index input_nnz = 0;   // nnz of the (full symmetric) input
  Index factor_nnz = 0;  // nnz of L (strictly lower part)
  /// Chain-coalesced column blocks (supernodes) of the elimination tree.
  Index num_supernodes = 0;
  /// Level sets of the block tree; blocks within a level are independent.
  Index num_levels = 0;
  /// Widest level (upper bound on exploitable factor/sweep parallelism).
  Index max_level_supernodes = 0;
  double factor_seconds = 0.0;
  /// Rank-1 update_edge() calls applied in place since construction
  /// (cumulative; a refactorize() does not reset it).
  Index updates_applied = 0;
  /// Numeric-only renumerations (refactorize() with kept symbolic
  /// analysis) since construction.
  Index refactorizations = 0;
  /// Fundamental dense panels (width ≥ 1; a refinement of the chain
  /// blocks — every column belongs to exactly one panel).
  Index num_panels = 0;
  /// Columns living in panels of width ≥ 2 (the dense-kernel coverage;
  /// the rest run the width-1 panel path, equivalent to a CSC column).
  Index panel_columns = 0;
  /// Widest panel (dense triangle size of the best supernode).
  Index panel_max_width = 0;
};

/// Historical name from when the struct lived inside the scalar solver.
using CholeskyStats = FactorStats;

class CholeskySolver {
 public:
  /// Factors the SPD matrix `a` (full symmetric storage) as
  /// P a Pᵀ = L D Lᵀ. Throws NumericalError if a pivot is ≤ 0 (matrix not
  /// positive definite). `num_threads` workers factor the level sets
  /// (0 = library default, 1 = serial); the factor is bit-identical for
  /// every value and for both kernels.
  explicit CholeskySolver(const la::CsrMatrix& a,
                          OrderingMethod ordering = OrderingMethod::kAuto,
                          Index num_threads = 0,
                          FactorKernel kernel = FactorKernel::kSupernodal);

  /// Factors `a` with a caller-provided fill-reducing permutation instead
  /// of running an ordering heuristic (DESIGN.md §8: a SolverContext
  /// reuses the cached ordering across pattern-growth rebuilds — the
  /// ordering is the dominant analysis cost on near-tree graphs, and a
  /// permutation computed a few edges ago is still a good fill reducer).
  /// `perm[new] = old`; any permutation is valid (fill may differ).
  CholeskySolver(const la::CsrMatrix& a, std::vector<Index> perm,
                 Index num_threads = 0,
                 FactorKernel kernel = FactorKernel::kSupernodal);

  /// Solves a x = b (scalar reference path).
  [[nodiscard]] la::Vector solve(const la::Vector& b) const;

  /// In-place variant reusing caller storage.
  void solve_in_place(la::Vector& x) const;

  /// Solves a X = B for an n × b column block in place: one forward and
  /// one backward sweep over the factor per block (not per column), with
  /// level-parallel gathers. Bit-identical to b scalar solve() calls for
  /// every thread count.
  void solve_in_place_block(la::BlockView x, Index num_threads = 0) const;

  /// Convenience overload: returns the solved block.
  [[nodiscard]] la::MultiVector solve_block(la::MultiVector b,
                                            Index num_threads = 0) const {
    solve_in_place_block(b.view(), num_threads);
    return b;
  }

  [[nodiscard]] Index size() const noexcept { return n_; }
  [[nodiscard]] const FactorStats& stats() const noexcept { return stats_; }
  /// The fill-reducing permutation in use (`perm[new] = old`) — feed it
  /// back into the explicit-permutation constructor to rebuild over a
  /// grown pattern without re-running the ordering heuristic.
  [[nodiscard]] const std::vector<Index>& permutation() const noexcept {
    return perm_;
  }

  // --- Incremental maintenance (DESIGN.md §8) ----------------------------
  //
  // The factor can track a matrix that changes by Laplacian edge stamps
  // without paying a fresh symbolic + numeric factorization:
  //
  //   update_edge   — sparse rank-1 update/downdate along the elimination-
  //                   tree path (Davis/Hager style): O(path pattern) work.
  //   refactorize   — numeric-only renumeration with the KEPT symbolic
  //                   analysis (etree, pattern, supernodes, level sets):
  //                   O(factor flops) but no analysis cost.
  //
  // An updated factor is a factorization of the updated matrix to rounding
  // accuracy, but its floats may differ from a from-scratch factorization
  // of the same matrix; determinism is per-mode (see DESIGN.md §8).

  /// True when the Laplacian edge stamp on rows {u, v} of the ORIGINAL
  /// (unpermuted) matrix stays inside the analyzed factor pattern, so
  /// update_edge can apply it in place. `v == kInvalidIndex` queries the
  /// single-diagonal stamp w·e_u e_uᵀ (a grounded-endpoint edge), which is
  /// always representable. By the etree pattern-containment invariant it
  /// suffices that L(b, a) is a structural nonzero for the permuted
  /// endpoints a < b.
  [[nodiscard]] bool edge_in_pattern(Index u, Index v) const;

  /// Applies the rank-1 Laplacian edge stamp
  ///   A ← A + w·(e_u − e_v)(e_u − e_v)ᵀ        (two live endpoints), or
  ///   A ← A + w·e_u e_uᵀ                       (v == kInvalidIndex)
  /// directly to the factor: w > 0 is an update (always succeeds), w < 0 a
  /// downdate. Indices are in the ORIGINAL matrix ordering. Precondition:
  /// edge_in_pattern(u, v). Serial and deterministic. A downdate that
  /// would make the matrix non-positive-definite throws NumericalError and
  /// leaves the factor unchanged (downdates run a validation pass over the
  /// path before committing).
  void update_edge(Index u, Index v, Real w);

  /// Renumerates the factor for `a` with the kept symbolic analysis: same
  /// ordering, etree, pattern, supernodes and level sets; only the numeric
  /// level-parallel phase runs. Precondition: the sparsity pattern of `a`
  /// is contained in the analyzed pattern (checked; SGL_EXPECTS). The
  /// result is bit-identical to a fresh CholeskySolver built with the same
  /// ordering decision for every thread count.
  void refactorize(const la::CsrMatrix& a, Index num_threads = 0);

 private:
  void analyze(const la::CsrMatrix& pa);
  /// Refines the chain blocks into fundamental panels, sizes the panel
  /// storage, and precomputes the per-panel descendant-updater lists
  /// shared by the numeric phase and the block sweeps (from analyze()).
  void build_panels();
  void factorize(const la::CsrMatrix& pa, Index num_threads);
  /// Level-parallel left-looking numeric phase (needs r_val_pos_ alive).
  /// Dispatches per supernode to the scalar or panel kernel.
  void run_numeric_phase(const la::CsrMatrix& pa, Index num_threads);
  /// Scratch one worker slot owns across its supernodes of a level.
  /// Sized once per numeric phase; every panel leaves map reset so the
  /// next panel on the slot starts clean.
  struct PanelWorkspace {
    la::Storage column;              // dense n-scratch (width-1 path)
    la::Storage panel;               // dense panel under construction
    la::Storage cvec;                // update scalars d_k·L(j,k)
    std::vector<Index> map;          // global row → panel-local below slot
    std::vector<Index> lrow;         // descendant tail row → panel slot
    std::vector<const Real*> tails;  // descendant tail column pointers
  };
  /// Factors panel p (columns [c0, c1), width ≥ 2) in ws.panel —
  /// descendant-panel outer-product updates through the register-tiled
  /// microkernel, then a right-looking in-panel factorization — and
  /// scatters the finished columns into l_values_ / d_. Bit-identical to
  /// calling factor_column on each column in turn (same per-element
  /// update order, association, and pivot checks).
  void factor_panel(const la::CsrMatrix& pa, Index p, PanelWorkspace& ws);
  /// (Re)builds r_val_pos_ — the row-mirror → CSC position map released
  /// after each numeric phase — from the symbolic structures.
  void rebuild_row_positions();
  /// Lazily builds the in-place-update support structures (csc_to_row_).
  void ensure_update_support();
  /// One pass of the rank-1 recurrence along the etree path from column
  /// `j0` for the stamp vector already scattered into scratch (entries of
  /// √|w|·b_uv in permuted coordinates). `commit` writes L, D and the
  /// row-mirror; a non-commit pass only validates pivots. Returns false
  /// when a pivot would become non-positive (only possible for σ = −1).
  /// Both passes run the identical float sequence, so a committed
  /// downdate reproduces its validation pass bitwise.
  bool rank1_pass(Index j0, Real sigma, bool commit,
                  std::vector<Real>& work, std::vector<Index>& touched);
  /// Left-looking update of one column onto the dense scratch `w`
  /// (zeroed outside the column's pattern; restored to zero on return).
  void factor_column(const la::CsrMatrix& pa, Index j, Real* w);
  /// Full solve pipeline (gather → L → D → Lᵀ → scatter) for the TILE
  /// columns [col0, col0 + TILE) of x. The tile width is a compile-time
  /// constant so the b-wide updates vectorize (same trick as la::spmm).
  template <int TILE>
  void solve_block_tile(la::BlockView x, Index col0, Index num_threads,
                        la::Storage& w) const;

  Index n_ = 0;
  std::vector<Index> perm_;      // perm_[new] = old
  std::vector<Index> inv_perm_;  // inv_perm_[old] = new
  std::vector<Index> parent_;    // elimination tree (kInvalidIndex = root)
  // L in compressed-column form (unit diagonal implicit, rows ascending).
  std::vector<Index> l_col_ptr_;
  std::vector<Index> l_row_idx_;
  std::vector<Real> l_values_;
  // Row-major mirror of L's pattern: row i lists its columns k < i in
  // ascending order (the updaters of column i / the gather list of the
  // forward sweep). r_val_pos_[q] is the CSC position of the same entry,
  // used (and then released) by the numeric phase; r_values_[q] caches
  // its value so sweeps stream contiguously.
  std::vector<Index> r_row_ptr_;
  std::vector<Index> r_col_idx_;
  std::vector<Index> r_val_pos_;
  std::vector<Real> r_values_;
  // Chain-coalesced column blocks: block s = columns
  // [super_ptr_[s], super_ptr_[s+1]), and their level sets: level l =
  // level_supers_[level_ptr_[l] .. level_ptr_[l+1]) (ascending block ids
  // within a level — the deterministic combine order of the level).
  std::vector<Index> super_ptr_;
  std::vector<Index> level_ptr_;
  std::vector<Index> level_supers_;
  // Fundamental panels (DESIGN.md §9): panel p = columns
  // [panel_ptr_[p], panel_ptr_[p+1]), a refinement of the chain blocks —
  // supernode s owns panels [super_panel_ptr_[s], super_panel_ptr_[s+1]).
  // Every column of a panel shares the below-diagonal row set of the
  // panel's LAST column (= pattern of that column), so the panel packs
  // into a dense row-major block with zero fill.
  std::vector<Index> panel_ptr_;
  std::vector<Index> super_panel_ptr_;
  std::vector<Index> panel_of_;        // column → owning panel id
  std::size_t max_panel_entries_ = 0;  // rows × width of the biggest panel
  Index max_panel_rows_ = 0;
  // Per-panel descendant updaters, hoisted to the symbolic phase: panel p
  // is updated by the descendant panels panel_upd_[panel_upd_ptr_[p] ..
  // panel_upd_ptr_[p+1]), ascending. For one record, the updater columns
  // are [k0, k0+w); the last m entries of each of those CSC columns are
  // the shared ascending row tail, of which the first mt rows land inside
  // p (as update columns) and all m inside p's row set. Consumed by both
  // the numeric phase (factor_panel) and the panel-structured block
  // sweeps, so neither recollects or sorts updaters at run time.
  struct PanelUpdater {
    Index k0;  // first updater column
    Index w;   // updater panel width
    Index m;   // shared tail length at/after the target's first column
    Index mt;  // tail rows inside the target panel (update columns)
  };
  std::vector<PanelUpdater> panel_upd_;
  std::vector<Index> panel_upd_ptr_;  // per panel, into panel_upd_
  // CSC position p → row-mirror position q, so update_edge can refresh
  // r_values_ alongside l_values_. Built lazily by the first update (one
  // Index per factor nonzero; solve-only instances never pay for it).
  std::vector<Index> csc_to_row_;
  la::Vector d_;  // diagonal of D
  FactorKernel kernel_ = FactorKernel::kSupernodal;
  FactorStats stats_;
};

}  // namespace sgl::solver
