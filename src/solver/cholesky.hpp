// Sparse LDLᵀ factorization subsystem for symmetric positive definite
// systems (DESIGN.md §4).
//
// The factorization is split into an explicit symbolic phase and a
// level-scheduled numeric phase:
//
//   - Symbolic analysis builds the elimination tree of P A Pᵀ (orderings
//     from ordering.hpp), the full column pattern of L, a row-major
//     mirror of that pattern for gather-based sweeps, chain-coalesced
//     column blocks (supernodes: maximal single-child parent chains, so a
//     tridiagonal chain or the dense trailing triangle of a mesh factor
//     becomes one block), and level sets over the block tree — blocks in
//     the same level set share no ancestor/descendant relation and can be
//     factored or swept concurrently.
//   - Numeric factorization is left-looking per column, parallel across
//     the blocks of each level on the common/parallel pool. Each column's
//     updates are applied in ascending updater order, so the factor is
//     bit-identical for every thread count.
//   - Triangular solves come in a scalar flavour (solve / solve_in_place,
//     the per-column reference path) and a block flavour (solve_block /
//     solve_in_place_block) that streams the factor's nonzeros ONCE per
//     block of b right-hand sides with level-parallel sweeps. Both
//     flavours gather every output element in the same fixed order, so
//     the block result equals the scalar result bitwise, column by
//     column, for every thread count.
//
// On the ultra-sparse graphs SGL produces (spanning tree + εN extra
// edges) the factor is essentially linear in N; on 2D meshes nested
// dissection keeps fill near O(N log N).
#pragma once

#include <vector>

#include "la/multi_vector.hpp"
#include "la/sparse.hpp"
#include "la/vector_ops.hpp"
#include "solver/ordering.hpp"

namespace sgl::solver {

/// Factorization statistics (benchmarks, regression tests, --verbose).
struct FactorStats {
  Index n = 0;
  Index input_nnz = 0;   // nnz of the (full symmetric) input
  Index factor_nnz = 0;  // nnz of L (strictly lower part)
  /// Chain-coalesced column blocks (supernodes) of the elimination tree.
  Index num_supernodes = 0;
  /// Level sets of the block tree; blocks within a level are independent.
  Index num_levels = 0;
  /// Widest level (upper bound on exploitable factor/sweep parallelism).
  Index max_level_supernodes = 0;
  double factor_seconds = 0.0;
};

/// Historical name from when the struct lived inside the scalar solver.
using CholeskyStats = FactorStats;

class CholeskySolver {
 public:
  /// Factors the SPD matrix `a` (full symmetric storage) as
  /// P a Pᵀ = L D Lᵀ. Throws NumericalError if a pivot is ≤ 0 (matrix not
  /// positive definite). `num_threads` workers factor the level sets
  /// (0 = library default, 1 = serial); the factor is bit-identical for
  /// every value.
  explicit CholeskySolver(const la::CsrMatrix& a,
                          OrderingMethod ordering = OrderingMethod::kAuto,
                          Index num_threads = 0);

  /// Solves a x = b (scalar reference path).
  [[nodiscard]] la::Vector solve(const la::Vector& b) const;

  /// In-place variant reusing caller storage.
  void solve_in_place(la::Vector& x) const;

  /// Solves a X = B for an n × b column block in place: one forward and
  /// one backward sweep over the factor per block (not per column), with
  /// level-parallel gathers. Bit-identical to b scalar solve() calls for
  /// every thread count.
  void solve_in_place_block(la::BlockView x, Index num_threads = 0) const;

  /// Convenience overload: returns the solved block.
  [[nodiscard]] la::MultiVector solve_block(la::MultiVector b,
                                            Index num_threads = 0) const {
    solve_in_place_block(b.view(), num_threads);
    return b;
  }

  [[nodiscard]] Index size() const noexcept { return n_; }
  [[nodiscard]] const FactorStats& stats() const noexcept { return stats_; }

 private:
  void analyze(const la::CsrMatrix& pa);
  void factorize(const la::CsrMatrix& pa, Index num_threads);
  /// Left-looking update of one column onto the dense scratch `w`
  /// (zeroed outside the column's pattern; restored to zero on return).
  void factor_column(const la::CsrMatrix& pa, Index j, Real* w);
  /// Full solve pipeline (gather → L → D → Lᵀ → scatter) for the TILE
  /// columns [col0, col0 + TILE) of x. The tile width is a compile-time
  /// constant so the b-wide updates vectorize (same trick as la::spmm).
  template <int TILE>
  void solve_block_tile(la::BlockView x, Index col0, Index num_threads,
                        std::vector<Real>& w) const;

  Index n_ = 0;
  std::vector<Index> perm_;  // perm_[new] = old
  // L in compressed-column form (unit diagonal implicit, rows ascending).
  std::vector<Index> l_col_ptr_;
  std::vector<Index> l_row_idx_;
  std::vector<Real> l_values_;
  // Row-major mirror of L's pattern: row i lists its columns k < i in
  // ascending order (the updaters of column i / the gather list of the
  // forward sweep). r_val_pos_[q] is the CSC position of the same entry,
  // used (and then released) by the numeric phase; r_values_[q] caches
  // its value so sweeps stream contiguously.
  std::vector<Index> r_row_ptr_;
  std::vector<Index> r_col_idx_;
  std::vector<Index> r_val_pos_;
  std::vector<Real> r_values_;
  // Chain-coalesced column blocks: block s = columns
  // [super_ptr_[s], super_ptr_[s+1]), and their level sets: level l =
  // level_supers_[level_ptr_[l] .. level_ptr_[l+1]) (ascending block ids
  // within a level — the deterministic combine order of the level).
  std::vector<Index> super_ptr_;
  std::vector<Index> level_ptr_;
  std::vector<Index> level_supers_;
  la::Vector d_;  // diagonal of D
  FactorStats stats_;
};

}  // namespace sgl::solver
