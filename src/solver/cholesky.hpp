// Sparse LDLᵀ factorization subsystem for symmetric positive definite
// systems (DESIGN.md §4).
//
// The factorization is split into an explicit symbolic phase and a
// level-scheduled numeric phase:
//
//   - Symbolic analysis builds the elimination tree of P A Pᵀ (orderings
//     from ordering.hpp), the full column pattern of L, a row-major
//     mirror of that pattern for gather-based sweeps, chain-coalesced
//     column blocks (supernodes: maximal single-child parent chains, so a
//     tridiagonal chain or the dense trailing triangle of a mesh factor
//     becomes one block), and level sets over the block tree — blocks in
//     the same level set share no ancestor/descendant relation and can be
//     factored or swept concurrently.
//   - Numeric factorization is left-looking per column, parallel across
//     the blocks of each level on the common/parallel pool. Each column's
//     updates are applied in ascending updater order, so the factor is
//     bit-identical for every thread count.
//   - Triangular solves come in a scalar flavour (solve / solve_in_place,
//     the per-column reference path) and a block flavour (solve_block /
//     solve_in_place_block) that streams the factor's nonzeros ONCE per
//     block of b right-hand sides with level-parallel sweeps. Both
//     flavours gather every output element in the same fixed order, so
//     the block result equals the scalar result bitwise, column by
//     column, for every thread count.
//
// On the ultra-sparse graphs SGL produces (spanning tree + εN extra
// edges) the factor is essentially linear in N; on 2D meshes nested
// dissection keeps fill near O(N log N).
#pragma once

#include <vector>

#include "la/multi_vector.hpp"
#include "la/sparse.hpp"
#include "la/vector_ops.hpp"
#include "solver/ordering.hpp"

namespace sgl::solver {

/// Factorization statistics (benchmarks, regression tests, --verbose).
struct FactorStats {
  Index n = 0;
  Index input_nnz = 0;   // nnz of the (full symmetric) input
  Index factor_nnz = 0;  // nnz of L (strictly lower part)
  /// Chain-coalesced column blocks (supernodes) of the elimination tree.
  Index num_supernodes = 0;
  /// Level sets of the block tree; blocks within a level are independent.
  Index num_levels = 0;
  /// Widest level (upper bound on exploitable factor/sweep parallelism).
  Index max_level_supernodes = 0;
  double factor_seconds = 0.0;
  /// Rank-1 update_edge() calls applied in place since construction
  /// (cumulative; a refactorize() does not reset it).
  Index updates_applied = 0;
  /// Numeric-only renumerations (refactorize() with kept symbolic
  /// analysis) since construction.
  Index refactorizations = 0;
};

/// Historical name from when the struct lived inside the scalar solver.
using CholeskyStats = FactorStats;

class CholeskySolver {
 public:
  /// Factors the SPD matrix `a` (full symmetric storage) as
  /// P a Pᵀ = L D Lᵀ. Throws NumericalError if a pivot is ≤ 0 (matrix not
  /// positive definite). `num_threads` workers factor the level sets
  /// (0 = library default, 1 = serial); the factor is bit-identical for
  /// every value.
  explicit CholeskySolver(const la::CsrMatrix& a,
                          OrderingMethod ordering = OrderingMethod::kAuto,
                          Index num_threads = 0);

  /// Factors `a` with a caller-provided fill-reducing permutation instead
  /// of running an ordering heuristic (DESIGN.md §8: a SolverContext
  /// reuses the cached ordering across pattern-growth rebuilds — the
  /// ordering is the dominant analysis cost on near-tree graphs, and a
  /// permutation computed a few edges ago is still a good fill reducer).
  /// `perm[new] = old`; any permutation is valid (fill may differ).
  CholeskySolver(const la::CsrMatrix& a, std::vector<Index> perm,
                 Index num_threads = 0);

  /// Solves a x = b (scalar reference path).
  [[nodiscard]] la::Vector solve(const la::Vector& b) const;

  /// In-place variant reusing caller storage.
  void solve_in_place(la::Vector& x) const;

  /// Solves a X = B for an n × b column block in place: one forward and
  /// one backward sweep over the factor per block (not per column), with
  /// level-parallel gathers. Bit-identical to b scalar solve() calls for
  /// every thread count.
  void solve_in_place_block(la::BlockView x, Index num_threads = 0) const;

  /// Convenience overload: returns the solved block.
  [[nodiscard]] la::MultiVector solve_block(la::MultiVector b,
                                            Index num_threads = 0) const {
    solve_in_place_block(b.view(), num_threads);
    return b;
  }

  [[nodiscard]] Index size() const noexcept { return n_; }
  [[nodiscard]] const FactorStats& stats() const noexcept { return stats_; }
  /// The fill-reducing permutation in use (`perm[new] = old`) — feed it
  /// back into the explicit-permutation constructor to rebuild over a
  /// grown pattern without re-running the ordering heuristic.
  [[nodiscard]] const std::vector<Index>& permutation() const noexcept {
    return perm_;
  }

  // --- Incremental maintenance (DESIGN.md §8) ----------------------------
  //
  // The factor can track a matrix that changes by Laplacian edge stamps
  // without paying a fresh symbolic + numeric factorization:
  //
  //   update_edge   — sparse rank-1 update/downdate along the elimination-
  //                   tree path (Davis/Hager style): O(path pattern) work.
  //   refactorize   — numeric-only renumeration with the KEPT symbolic
  //                   analysis (etree, pattern, supernodes, level sets):
  //                   O(factor flops) but no analysis cost.
  //
  // An updated factor is a factorization of the updated matrix to rounding
  // accuracy, but its floats may differ from a from-scratch factorization
  // of the same matrix; determinism is per-mode (see DESIGN.md §8).

  /// True when the Laplacian edge stamp on rows {u, v} of the ORIGINAL
  /// (unpermuted) matrix stays inside the analyzed factor pattern, so
  /// update_edge can apply it in place. `v == kInvalidIndex` queries the
  /// single-diagonal stamp w·e_u e_uᵀ (a grounded-endpoint edge), which is
  /// always representable. By the etree pattern-containment invariant it
  /// suffices that L(b, a) is a structural nonzero for the permuted
  /// endpoints a < b.
  [[nodiscard]] bool edge_in_pattern(Index u, Index v) const;

  /// Applies the rank-1 Laplacian edge stamp
  ///   A ← A + w·(e_u − e_v)(e_u − e_v)ᵀ        (two live endpoints), or
  ///   A ← A + w·e_u e_uᵀ                       (v == kInvalidIndex)
  /// directly to the factor: w > 0 is an update (always succeeds), w < 0 a
  /// downdate. Indices are in the ORIGINAL matrix ordering. Precondition:
  /// edge_in_pattern(u, v). Serial and deterministic. A downdate that
  /// would make the matrix non-positive-definite throws NumericalError and
  /// leaves the factor unchanged (downdates run a validation pass over the
  /// path before committing).
  void update_edge(Index u, Index v, Real w);

  /// Renumerates the factor for `a` with the kept symbolic analysis: same
  /// ordering, etree, pattern, supernodes and level sets; only the numeric
  /// level-parallel phase runs. Precondition: the sparsity pattern of `a`
  /// is contained in the analyzed pattern (checked; SGL_EXPECTS). The
  /// result is bit-identical to a fresh CholeskySolver built with the same
  /// ordering decision for every thread count.
  void refactorize(const la::CsrMatrix& a, Index num_threads = 0);

 private:
  void analyze(const la::CsrMatrix& pa);
  void factorize(const la::CsrMatrix& pa, Index num_threads);
  /// Level-parallel left-looking numeric phase (needs r_val_pos_ alive).
  void run_numeric_phase(const la::CsrMatrix& pa, Index num_threads);
  /// (Re)builds r_val_pos_ — the row-mirror → CSC position map released
  /// after each numeric phase — from the symbolic structures.
  void rebuild_row_positions();
  /// Lazily builds the in-place-update support structures (csc_to_row_).
  void ensure_update_support();
  /// One pass of the rank-1 recurrence along the etree path from column
  /// `j0` for the stamp vector already scattered into scratch (entries of
  /// √|w|·b_uv in permuted coordinates). `commit` writes L, D and the
  /// row-mirror; a non-commit pass only validates pivots. Returns false
  /// when a pivot would become non-positive (only possible for σ = −1).
  /// Both passes run the identical float sequence, so a committed
  /// downdate reproduces its validation pass bitwise.
  bool rank1_pass(Index j0, Real sigma, bool commit,
                  std::vector<Real>& work, std::vector<Index>& touched);
  /// Left-looking update of one column onto the dense scratch `w`
  /// (zeroed outside the column's pattern; restored to zero on return).
  void factor_column(const la::CsrMatrix& pa, Index j, Real* w);
  /// Full solve pipeline (gather → L → D → Lᵀ → scatter) for the TILE
  /// columns [col0, col0 + TILE) of x. The tile width is a compile-time
  /// constant so the b-wide updates vectorize (same trick as la::spmm).
  template <int TILE>
  void solve_block_tile(la::BlockView x, Index col0, Index num_threads,
                        std::vector<Real>& w) const;

  Index n_ = 0;
  std::vector<Index> perm_;      // perm_[new] = old
  std::vector<Index> inv_perm_;  // inv_perm_[old] = new
  std::vector<Index> parent_;    // elimination tree (kInvalidIndex = root)
  // L in compressed-column form (unit diagonal implicit, rows ascending).
  std::vector<Index> l_col_ptr_;
  std::vector<Index> l_row_idx_;
  std::vector<Real> l_values_;
  // Row-major mirror of L's pattern: row i lists its columns k < i in
  // ascending order (the updaters of column i / the gather list of the
  // forward sweep). r_val_pos_[q] is the CSC position of the same entry,
  // used (and then released) by the numeric phase; r_values_[q] caches
  // its value so sweeps stream contiguously.
  std::vector<Index> r_row_ptr_;
  std::vector<Index> r_col_idx_;
  std::vector<Index> r_val_pos_;
  std::vector<Real> r_values_;
  // Chain-coalesced column blocks: block s = columns
  // [super_ptr_[s], super_ptr_[s+1]), and their level sets: level l =
  // level_supers_[level_ptr_[l] .. level_ptr_[l+1]) (ascending block ids
  // within a level — the deterministic combine order of the level).
  std::vector<Index> super_ptr_;
  std::vector<Index> level_ptr_;
  std::vector<Index> level_supers_;
  // CSC position p → row-mirror position q, so update_edge can refresh
  // r_values_ alongside l_values_. Built lazily by the first update (one
  // Index per factor nonzero; solve-only instances never pay for it).
  std::vector<Index> csc_to_row_;
  la::Vector d_;  // diagonal of D
  FactorStats stats_;
};

}  // namespace sgl::solver
