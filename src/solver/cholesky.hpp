// Sparse LDLᵀ factorization for symmetric positive definite systems.
//
// Up-looking factorization in the style of the classic LDL algorithm
// (elimination-tree symbolic analysis + one sparse triangular solve per
// column), combined with the fill-reducing orderings in ordering.hpp.
// On the ultra-sparse graphs SGL produces (spanning tree + εN extra
// edges) the factor is essentially linear in N; on 2D meshes nested
// dissection keeps fill near O(N log N).
#pragma once

#include <vector>

#include "la/sparse.hpp"
#include "la/vector_ops.hpp"
#include "solver/ordering.hpp"

namespace sgl::solver {

/// Factorization statistics (for benchmarks and regression tests).
struct CholeskyStats {
  Index n = 0;
  Index input_nnz = 0;     // nnz of the (full symmetric) input
  Index factor_nnz = 0;    // nnz of L (strictly lower part)
  double factor_seconds = 0.0;
};

class CholeskySolver {
 public:
  /// Factors the SPD matrix `a` (full symmetric storage) as
  /// P a Pᵀ = L D Lᵀ. Throws NumericalError if a pivot is ≤ 0
  /// (matrix not positive definite).
  explicit CholeskySolver(const la::CsrMatrix& a,
                          OrderingMethod ordering = OrderingMethod::kAuto);

  /// Solves a x = b.
  [[nodiscard]] la::Vector solve(const la::Vector& b) const;

  /// In-place variant reusing caller storage.
  void solve_in_place(la::Vector& x) const;

  [[nodiscard]] Index size() const noexcept { return n_; }
  [[nodiscard]] const CholeskyStats& stats() const noexcept { return stats_; }

 private:
  Index n_ = 0;
  std::vector<Index> perm_;      // perm_[new] = old
  std::vector<Index> inv_perm_;  // inv_perm_[old] = new
  // L in compressed-column form (unit diagonal implicit).
  std::vector<Index> l_col_ptr_;
  std::vector<Index> l_row_idx_;
  std::vector<Real> l_values_;
  la::Vector d_;  // diagonal of D
  CholeskyStats stats_;
};

}  // namespace sgl::solver
