#include "solver/solver_context.hpp"

#include <array>
#include <cmath>
#include <utility>

#include "common/enum_names.hpp"
#include "graph/fingerprint.hpp"

namespace sgl::solver {
namespace {

constexpr std::array<common::EnumName<IncrementalMode>, 3> kModeNames{{
    {IncrementalMode::kAuto, "auto"},
    {IncrementalMode::kOn, "on"},
    {IncrementalMode::kOff, "off"},
}};

// Prefix fingerprints come from graph/fingerprint.hpp (shared with the
// serving tier's factorization LRU, which keys on the same digests).
using graph::endpoint_fingerprint;
using graph::weight_fingerprint;

Real total_weight_mass(const graph::Graph& g) {
  Real mass = 0.0;
  for (const graph::Edge& e : g.edges()) mass += std::abs(e.weight);
  return mass;
}

}  // namespace

const char* incremental_mode_name(IncrementalMode mode) {
  return common::enum_name(kModeNames, mode);
}

std::optional<IncrementalMode> parse_incremental_mode(std::string_view name) {
  return common::parse_enum(kModeNames, name);
}

std::string incremental_mode_name_list() {
  return common::enum_name_list(kModeNames);
}

SolverContext::SolverContext(SolverContextOptions options)
    : options_(std::move(options)) {
  SGL_EXPECTS(options_.max_updates_between_refactor >= 1,
              "SolverContext: max_updates_between_refactor must be positive");
  SGL_EXPECTS(options_.growth_refactor_threshold > 0.0,
              "SolverContext: growth_refactor_threshold must be positive");
  SGL_EXPECTS(options_.max_ordering_reuses >= 0,
              "SolverContext: max_ordering_reuses must be non-negative");
}

void SolverContext::invalidate() {
  solver_.reset();
  ordering_reuses_in_a_row_ = 0;
  warm_subspace_ = la::DenseMatrix();
  known_nodes_ = 0;
  known_edges_ = 0;
  endpoint_fingerprint_ = 0;
  weight_fingerprint_ = 0;
  updates_since_refactor_ = 0;
  accumulated_update_weight_ = 0.0;
  base_weight_mass_ = 0.0;
}

void SolverContext::store_warm_subspace(la::DenseMatrix basis) {
  // kOff promises bitwise-historical behavior for every consumer, so the
  // warm-start slot stays empty there (a seeded Lanczos run would change
  // the float stream even when it converges to the same pairs).
  if (!incremental()) return;
  warm_subspace_ = std::move(basis);
}

const LaplacianPinvSolver& SolverContext::acquire(const graph::Graph& g) {
  ++stats_.acquisitions;
  if (!incremental()) {
    // Historical behavior: every consumer builds its own solver.
    rebuild(g);
    return *solver_;
  }
  if (!solver_ || g.num_nodes() != known_nodes_ || !try_incremental_reuse(g)) {
    rebuild(g);
  }
  return *solver_;
}

bool SolverContext::try_incremental_reuse(const graph::Graph& g) {
  const std::size_t now = g.edges().size();
  if (now < known_edges_) return false;  // edges removed: not append-only
  if (endpoint_fingerprint(g, known_edges_) != endpoint_fingerprint_) {
    // The known prefix changed shape under us (not the learner's
    // append-only usage) — the symbolic analysis no longer matches.
    return false;
  }

  const bool weights_changed =
      weight_fingerprint(g, known_edges_) != weight_fingerprint_;
  const bool cholesky = solver_->method() == LaplacianMethod::kCholesky;

  if (weights_changed) {
    // Same pattern, new numbers (scale_weights / set_weight): renumerate
    // with the kept symbolic analysis (Cholesky) or refresh the matrix
    // and keep the preconditioner setup (PCG — same pattern, so the
    // setup remains a valid SPD approximate inverse). A combined
    // weight-change + append is not a learner shape; rebuild rather than
    // risk renumerating over unverified new-edge patterns.
    if (now != known_edges_) return false;
    refactorize(g);
  } else if (now > known_edges_) {
    if (!cholesky) {
      // Appended edges change the pattern: the PCG matrix and
      // preconditioner setup are both stale, and there is no rank-1
      // shortcut on that path.
      return false;
    }
    Real appended_weight = 0.0;
    for (std::size_t i = known_edges_; i < now; ++i) {
      const graph::Edge& e = g.edges()[i];
      if (!solver_->update_edge(e.s, e.t, e.weight)) {
        ++stats_.pattern_misses;
        return false;  // stamp outside the factor pattern
      }
      ++stats_.updates_applied;
      ++updates_since_refactor_;
      appended_weight += std::abs(e.weight);
    }
    accumulated_update_weight_ += appended_weight;

    if (options_.mode == IncrementalMode::kAuto &&
        (updates_since_refactor_ >= options_.max_updates_between_refactor ||
         accumulated_update_weight_ >
             options_.growth_refactor_threshold * base_weight_mass_)) {
      // Updated factors drift from fresh ones at rounding scale per
      // update; shed the accumulation before it becomes visible.
      refactorize(g);
    }
  }

  known_edges_ = now;
  endpoint_fingerprint_ = endpoint_fingerprint(g, now);
  weight_fingerprint_ = weight_fingerprint(g, now);
  return true;
}

void SolverContext::rebuild(const graph::Graph& g) {
  // In the incremental modes a rebuild forced by pattern growth reuses
  // the outgoing factor's fill-reducing permutation: the ordering
  // heuristic dominates rebuild cost on near-tree graphs, and a
  // permutation computed a few edges ago still reduces fill well. kAuto
  // computes a fresh ordering after max_ordering_reuses consecutive
  // reuses to shed the slow fill drift; kOff never reuses (bitwise the
  // historical from-scratch build).
  std::vector<Index> ordering_hint;
  if (incremental() && solver_ && g.num_nodes() == known_nodes_ &&
      (options_.mode == IncrementalMode::kOn ||
       ordering_reuses_in_a_row_ < options_.max_ordering_reuses)) {
    ordering_hint = solver_->cholesky_permutation();
  }
  const bool reused_ordering = !ordering_hint.empty();
  solver_ = std::make_unique<LaplacianPinvSolver>(g, options_.solver,
                                                  std::move(ordering_hint));
  if (reused_ordering) {
    ++stats_.ordering_reuses;
    ++ordering_reuses_in_a_row_;
  } else {
    ordering_reuses_in_a_row_ = 0;
  }
  ++stats_.rebuilds;
  known_nodes_ = g.num_nodes();
  known_edges_ = g.edges().size();
  endpoint_fingerprint_ = endpoint_fingerprint(g, known_edges_);
  weight_fingerprint_ = weight_fingerprint(g, known_edges_);
  updates_since_refactor_ = 0;
  accumulated_update_weight_ = 0.0;
  base_weight_mass_ = total_weight_mass(g);
}

void SolverContext::refactorize(const graph::Graph& g) {
  solver_->refactorize(g);
  ++stats_.refactorizations;
  updates_since_refactor_ = 0;
  accumulated_update_weight_ = 0.0;
  base_weight_mass_ = total_weight_mass(g);
}

}  // namespace sgl::solver
