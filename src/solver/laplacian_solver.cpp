#include "solver/laplacian_solver.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <span>
#include <string>
#include <utility>

#include "common/enum_names.hpp"
#include "graph/components.hpp"

namespace sgl::solver {

la::CsrMatrix grounded_laplacian(const graph::Graph& g, Index ground) {
  const Index n = g.num_nodes();
  SGL_EXPECTS(n >= 2, "grounded_laplacian: need at least two nodes");
  SGL_EXPECTS(ground >= 0 && ground < n,
              "grounded_laplacian: ground node out of range");
  std::vector<la::Triplet> triplets;
  triplets.reserve(g.edges().size() * 4);
  const auto reduced = [ground](Index v) { return v > ground ? v - 1 : v; };
  for (const graph::Edge& e : g.edges()) {
    const bool s_live = (e.s != ground);
    const bool t_live = (e.t != ground);
    if (s_live) triplets.push_back({reduced(e.s), reduced(e.s), e.weight});
    if (t_live) triplets.push_back({reduced(e.t), reduced(e.t), e.weight});
    if (s_live && t_live) {
      triplets.push_back({reduced(e.s), reduced(e.t), -e.weight});
      triplets.push_back({reduced(e.t), reduced(e.s), -e.weight});
    }
  }
  return la::CsrMatrix::from_triplets(n - 1, n - 1, triplets);
}

namespace {
constexpr std::array<common::EnumName<LaplacianMethod>, 6> kMethodNames{{
    {LaplacianMethod::kCholesky, "cholesky"},
    {LaplacianMethod::kPcgJacobi, "pcg-jacobi"},
    {LaplacianMethod::kPcgIc0, "pcg-ic0"},
    {LaplacianMethod::kPcgTree, "pcg-tree"},
    {LaplacianMethod::kPcgAmg, "pcg-amg"},
    {LaplacianMethod::kAuto, "auto"},
}};
}  // namespace

const char* laplacian_method_name(LaplacianMethod method) {
  return common::enum_name(kMethodNames, method);
}

std::optional<LaplacianMethod> parse_laplacian_method(std::string_view name) {
  return common::parse_enum(kMethodNames, name);
}

std::string laplacian_method_name_list() {
  return common::enum_name_list(kMethodNames);
}

LaplacianPinvSolver::LaplacianPinvSolver(const graph::Graph& g,
                                         const LaplacianSolverOptions& options)
    : LaplacianPinvSolver(g, options, {}) {}

LaplacianPinvSolver::LaplacianPinvSolver(const graph::Graph& g,
                                         const LaplacianSolverOptions& options,
                                         std::vector<Index> ordering_hint)
    : n_(g.num_nodes()),
      factor_num_threads_(options.num_threads),
      pcg_options_(options.pcg) {
  SGL_EXPECTS(n_ >= 2, "LaplacianPinvSolver: need at least two nodes");
  SGL_EXPECTS(graph::is_connected(g),
              "LaplacianPinvSolver: graph must be connected");

  grounded_ = grounded_laplacian(g, ground_);

  method_ = options.method;
  if (method_ == LaplacianMethod::kAuto) {
    const Real avg_degree =
        2.0 * static_cast<Real>(g.num_edges()) / static_cast<Real>(n_);
    // Ultra-sparse learned graphs and small meshes factor in near-linear
    // time; large denser meshes go to AMG-preconditioned CG.
    method_ = (n_ <= 30000 || avg_degree <= 3.0) ? LaplacianMethod::kCholesky
                                                 : LaplacianMethod::kPcgAmg;
  }

  live_rows_.reserve(static_cast<std::size_t>(n_) - 1);
  for (Index i = 0; i < n_; ++i)
    if (i != ground_) live_rows_.push_back(i);

  switch (method_) {
    case LaplacianMethod::kCholesky:
      if (!ordering_hint.empty()) {
        SGL_EXPECTS(to_index(ordering_hint.size()) == n_ - 1,
                    "LaplacianPinvSolver: ordering hint size mismatch "
                    "(need a grounded-system permutation)");
        cholesky_ = std::make_unique<CholeskySolver>(
            grounded_, std::move(ordering_hint), options.num_threads);
      } else {
        cholesky_ = std::make_unique<CholeskySolver>(
            grounded_, options.ordering, options.num_threads);
      }
      break;
    case LaplacianMethod::kPcgJacobi:
      preconditioner_ = std::make_unique<JacobiPreconditioner>(grounded_);
      break;
    case LaplacianMethod::kPcgIc0:
      preconditioner_ = std::make_unique<Ic0Preconditioner>(grounded_);
      break;
    case LaplacianMethod::kPcgTree:
      preconditioner_ = std::make_unique<TreePreconditioner>(g);
      break;
    case LaplacianMethod::kPcgAmg:
      preconditioner_ = std::make_unique<AmgPreconditioner>(grounded_, options.amg);
      break;
    case LaplacianMethod::kAuto:
      SGL_ASSERT(false, "kAuto must be resolved above");
      break;
  }
}

void LaplacianPinvSolver::apply_column(std::span<const Real> y,
                                       std::span<Real> x) const {
  // Project out the nullspace component, then drop the grounded entry.
  Real mean_acc = 0.0;
  for (const Real v : y) mean_acc += v;
  const Real mean = mean_acc / static_cast<Real>(n_);
  la::Vector b(static_cast<std::size_t>(n_ - 1));
  for (Index i = 0, j = 0; i < n_; ++i) {
    if (i == ground_) continue;
    b[static_cast<std::size_t>(j++)] = y[static_cast<std::size_t>(i)] - mean;
  }

  la::Vector xg;
  if (method_ == LaplacianMethod::kCholesky) {
    xg = cholesky_->solve(b);
    record_pcg_stats(0, 0, 0, 0);
  } else {
    xg.assign(b.size(), 0.0);
    const PcgResult res = pcg_solve(grounded_, b, xg, *preconditioner_,
                                    pcg_options_);
    record_pcg_stats(1, res.iterations, res.iterations, res.converged ? 1 : 0);
    if (!res.converged) {
      throw NumericalError(
          "LaplacianPinvSolver: PCG stalled at relative residual " +
              std::to_string(res.relative_residual),
          ErrorCode::kPcgStalled);
    }
  }

  // Re-insert the grounded node and center: for a connected graph the
  // grounded solution differs from L⁺y by a multiple of the ones vector.
  for (Index i = 0, j = 0; i < n_; ++i) {
    x[static_cast<std::size_t>(i)] =
        (i == ground_) ? 0.0 : xg[static_cast<std::size_t>(j++)];
  }
  Real out_mean = 0.0;
  for (const Real v : x) out_mean += v;
  out_mean /= static_cast<Real>(n_);
  for (Real& v : x) v -= out_mean;
}

la::Vector LaplacianPinvSolver::apply(const la::Vector& y) const {
  SGL_EXPECTS(to_index(y.size()) == n_, "LaplacianPinvSolver: size mismatch");
  la::Vector x(static_cast<std::size_t>(n_));
  apply_column(std::span<const Real>(y), std::span<Real>(x));
  return x;
}

bool LaplacianPinvSolver::update_edge(Index s, Index t, Real w) {
  SGL_EXPECTS(s >= 0 && s < n_ && t >= 0 && t < n_ && s != t,
              "LaplacianPinvSolver::update_edge: bad edge");
  if (!cholesky_) return false;  // no in-place path on the PCG methods
  // Map graph nodes to grounded indices: the ground node drops out of the
  // reduced system, so a ground-incident edge stamps only the other
  // endpoint's diagonal (kInvalidIndex marks the dropped endpoint).
  const auto reduced = [this](Index v) { return v > ground_ ? v - 1 : v; };
  Index u = kInvalidIndex;
  Index v = kInvalidIndex;
  if (s == ground_) {
    u = reduced(t);
  } else if (t == ground_) {
    u = reduced(s);
  } else {
    u = reduced(s);
    v = reduced(t);
  }
  if (!cholesky_->edge_in_pattern(u, v)) return false;
  cholesky_->update_edge(u, v, w);
  return true;
}

void LaplacianPinvSolver::refactorize(const graph::Graph& g) {
  SGL_EXPECTS(g.num_nodes() == n_,
              "LaplacianPinvSolver::refactorize: node count mismatch");
  grounded_ = grounded_laplacian(g, ground_);
  if (cholesky_) cholesky_->refactorize(grounded_, factor_num_threads_);
  // PCG methods: the preconditioner setup is kept on purpose — see the
  // header contract.
}

void LaplacianPinvSolver::apply_block(la::ConstBlockView y, la::BlockView x,
                                      Index num_threads) const {
  apply_block(y, x, pcg_options_, num_threads);
}

void LaplacianPinvSolver::apply_block(la::ConstBlockView y, la::BlockView x,
                                      const PcgOptions& pcg,
                                      Index num_threads) const {
  SGL_EXPECTS(y.rows == n_ && x.rows == n_,
              "LaplacianPinvSolver::apply_block: row count mismatch");
  SGL_EXPECTS(y.cols == x.cols,
              "LaplacianPinvSolver::apply_block: column count mismatch");
  if (y.cols == 0) return;

  // Both paths hoist the nullspace projection and grounding into
  // MultiVector kernels. Every step sums in the same fixed order as
  // apply_column, so the block equals b sequential apply() calls bitwise.
  const la::Vector means = la::column_means(y, num_threads);
  la::MultiVector bg(n_ - 1, y.cols);
  la::gather_rows(y, live_rows_, bg.view(), num_threads);
  la::shift_columns(bg.view(), means, num_threads);

  if (method_ == LaplacianMethod::kCholesky) {
    // Stream the factor once for the whole block: one pair of
    // level-parallel triangular sweeps.
    cholesky_->solve_in_place_block(bg.view(), num_threads);
    record_pcg_stats(0, 0, 0, 0);
  } else {
    // Block PCG: one SpMM and one Preconditioner::apply_block per
    // iteration, per-column convergence with deflation. The iterate
    // starts at pcg.initial_guess when provided (warm start, DESIGN.md
    // §8), otherwise at zero — exactly like apply_column's per-RHS
    // solves.
    la::MultiVector xg(n_ - 1, y.cols);
    if (pcg.initial_guess.data != nullptr) {
      SGL_EXPECTS(pcg.initial_guess.rows == n_ - 1 &&
                      pcg.initial_guess.cols == y.cols,
                  "LaplacianPinvSolver::apply_block: initial_guess shape "
                  "mismatch (need (n-1) x cols, grounded coordinates)");
      for (Index j = 0; j < y.cols; ++j) {
        const auto src = pcg.initial_guess.col(j);
        const auto dst = xg.col(j);
        std::copy(src.begin(), src.end(), dst.begin());
      }
    }
    PcgOptions options = pcg;
    if (num_threads != 0) options.num_threads = num_threads;
    const PcgBlockResult res =
        pcg_solve_block(grounded_, bg.view(), xg.view(), *preconditioner_,
                        options);
    Index converged = 0;
    for (const PcgResult& c : res.columns) converged += c.converged ? 1 : 0;
    record_pcg_stats(y.cols, res.max_iterations(), res.total_iterations(),
                     converged);
    if (!res.all_converged()) {
      const Index j = res.first_unconverged();
      const PcgResult& c = res.columns[static_cast<std::size_t>(j)];
      throw NumericalError(
          "LaplacianPinvSolver: PCG stalled on block column " +
              std::to_string(j) + " at relative residual " +
              std::to_string(c.relative_residual),
          ErrorCode::kPcgStalled);
    }
    if (pcg.final_iterate.data != nullptr) {
      SGL_EXPECTS(pcg.final_iterate.rows == n_ - 1 &&
                      pcg.final_iterate.cols == y.cols,
                  "LaplacianPinvSolver::apply_block: final_iterate shape "
                  "mismatch (need (n-1) x cols, grounded coordinates)");
      for (Index j = 0; j < y.cols; ++j) {
        const auto src = xg.col(j);
        const auto dst = pcg.final_iterate.col(j);
        std::copy(src.begin(), src.end(), dst.begin());
      }
    }
    bg = std::move(xg);
  }

  // Re-insert the grounded node (zero row) and center: the grounded
  // solution differs from L⁺y by a multiple of the ones vector.
  for (Index j = 0; j < x.cols; ++j) x.at(ground_, j) = 0.0;
  la::scatter_rows(bg.view(), live_rows_, x, num_threads);
  la::center_columns(x, num_threads);
}

void LaplacianPinvSolver::record_pcg_stats(Index columns, Index max_iters,
                                           Index total_iters,
                                           Index converged) const noexcept {
  // One locked write per solve: the snapshot readers hand out is always
  // the four fields of a single solve, never a torn mix of two racing
  // applies (the pre-lock relaxed-atomic version could interleave).
  const common::MutexLock lock(stats_mutex_);
  pcg_stats_.columns = columns;
  pcg_stats_.max_iterations = max_iters;
  pcg_stats_.total_iterations = total_iters;
  pcg_stats_.converged_columns = converged;
}

Real LaplacianPinvSolver::effective_resistance(Index s, Index t) const {
  SGL_EXPECTS(s >= 0 && s < n_ && t >= 0 && t < n_,
              "effective_resistance: node out of range");
  SGL_EXPECTS(s != t, "effective_resistance: distinct nodes required");
  la::Vector e(static_cast<std::size_t>(n_), 0.0);
  e[static_cast<std::size_t>(s)] = 1.0;
  e[static_cast<std::size_t>(t)] = -1.0;
  const la::Vector x = apply(e);
  return x[static_cast<std::size_t>(s)] - x[static_cast<std::size_t>(t)];
}

}  // namespace sgl::solver
