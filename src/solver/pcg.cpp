#include "solver/pcg.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace sgl::solver {

PcgResult pcg_solve(const la::CsrMatrix& a, const la::Vector& b, la::Vector& x,
                    const Preconditioner& m, const PcgOptions& options) {
  const Index n = a.rows();
  SGL_EXPECTS(a.rows() == a.cols(), "pcg_solve: matrix must be square");
  SGL_EXPECTS(to_index(b.size()) == n, "pcg_solve: rhs size mismatch");
  SGL_EXPECTS(m.size() == n, "pcg_solve: preconditioner size mismatch");
  if (x.size() != b.size()) x.assign(b.size(), 0.0);

  const Real b_norm = la::norm2(b);
  PcgResult result;
  if (b_norm == 0.0) {
    x.assign(b.size(), 0.0);
    result.converged = true;
    return result;
  }

  la::Vector r(b.size());
  la::Vector ap(b.size());
  a.multiply(x, ap, options.num_threads);
  for (std::size_t i = 0; i < b.size(); ++i) r[i] = b[i] - ap[i];

  la::Vector z;
  m.apply(r, z);
  la::Vector p = z;
  Real rz = la::dot(r, z);

  for (Index it = 0; it < options.max_iterations; ++it) {
    a.multiply(p, ap, options.num_threads);
    const Real p_ap = la::dot(p, ap);
    if (!(p_ap > 0.0)) {
      // Loss of positive definiteness (or exact convergence): stop.
      break;
    }
    const Real alpha = rz / p_ap;
    la::axpy(alpha, p, x);
    la::axpy(-alpha, ap, r);
    result.iterations = it + 1;

    const Real rel = la::norm2(r) / b_norm;
    result.relative_residual = rel;
    if (rel <= options.rel_tolerance) {
      result.converged = true;
      return result;
    }

    m.apply(r, z);
    const Real rz_new = la::dot(r, z);
    const Real beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = z[i] + beta * p[i];
  }
  result.relative_residual = la::norm2(r) / b_norm;
  result.converged = result.relative_residual <= options.rel_tolerance;
  return result;
}

}  // namespace sgl::solver
