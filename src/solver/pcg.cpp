#include "solver/pcg.hpp"

#include <algorithm>
#include <cmath>
#include <initializer_list>

#include "common/contracts.hpp"

namespace sgl::solver {

PcgResult pcg_solve(const la::CsrMatrix& a, const la::Vector& b, la::Vector& x,
                    const Preconditioner& m, const PcgOptions& options) {
  const Index n = a.rows();
  SGL_EXPECTS(a.rows() == a.cols(), "pcg_solve: matrix must be square");
  SGL_EXPECTS(to_index(b.size()) == n, "pcg_solve: rhs size mismatch");
  SGL_EXPECTS(m.size() == n, "pcg_solve: preconditioner size mismatch");
  if (x.size() != b.size()) x.assign(b.size(), 0.0);

  const Real b_norm = la::norm2(b);
  PcgResult result;
  if (b_norm == 0.0) {
    x.assign(b.size(), 0.0);
    result.converged = true;
    return result;
  }

  la::Vector r(b.size());
  la::Vector ap(b.size());
  a.multiply(x, ap, options.num_threads);
  for (std::size_t i = 0; i < b.size(); ++i) r[i] = b[i] - ap[i];

  la::Vector z;
  m.apply(r, z);
  la::Vector p = z;
  Real rz = la::dot(r, z);

  for (Index it = 0; it < options.max_iterations; ++it) {
    a.multiply(p, ap, options.num_threads);
    const Real p_ap = la::dot(p, ap);
    if (!(p_ap > 0.0)) {
      // Loss of positive definiteness (or exact convergence): stop.
      break;
    }
    const Real alpha = rz / p_ap;
    la::axpy(alpha, p, x);
    la::axpy(-alpha, ap, r);
    result.iterations = it + 1;

    const Real rel = la::norm2(r) / b_norm;
    result.relative_residual = rel;
    if (rel <= options.rel_tolerance) {
      result.converged = true;
      return result;
    }

    m.apply(r, z);
    const Real rz_new = la::dot(r, z);
    const Real beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = z[i] + beta * p[i];
  }
  result.relative_residual = la::norm2(r) / b_norm;
  result.converged = result.relative_residual <= options.rel_tolerance;
  return result;
}

Index PcgBlockResult::max_iterations() const noexcept {
  Index m = 0;
  for (const PcgResult& c : columns) m = std::max(m, c.iterations);
  return m;
}

Index PcgBlockResult::total_iterations() const noexcept {
  Index total = 0;
  for (const PcgResult& c : columns) total += c.iterations;
  return total;
}

bool PcgBlockResult::all_converged() const noexcept {
  for (const PcgResult& c : columns)
    if (!c.converged) return false;
  return true;
}

Index PcgBlockResult::first_unconverged() const noexcept {
  for (std::size_t j = 0; j < columns.size(); ++j)
    if (!columns[j].converged) return to_index(j);
  return kInvalidIndex;
}

namespace {

/// ‖v‖₂ of one packed column, in the exact ascending-sum order of
/// la::norm2 / la::column_dots — so a residual norm computed here is
/// bitwise equal to the scalar path's check on the same data.
Real column_norm2(std::span<const Real> v) {
  Real acc = 0.0;
  for (const Real e : v) acc += e * e;
  return std::sqrt(acc);
}

}  // namespace

PcgBlockResult pcg_solve_block(const la::CsrMatrix& a, la::ConstBlockView b,
                               la::BlockView x, const Preconditioner& m,
                               const PcgOptions& options) {
  const Index n = a.rows();
  SGL_EXPECTS(a.rows() == a.cols(), "pcg_solve_block: matrix must be square");
  SGL_EXPECTS(b.rows == n && x.rows == n,
              "pcg_solve_block: rhs/solution row count mismatch");
  SGL_EXPECTS(b.cols == x.cols, "pcg_solve_block: column count mismatch");
  SGL_EXPECTS(m.size() == n, "pcg_solve_block: preconditioner size mismatch");

  const Index total = b.cols;
  PcgBlockResult result;
  result.columns.assign(static_cast<std::size_t>(total), PcgResult{});
  if (total == 0) return result;
  const Index threads = options.num_threads;

  if (total == 1) {
    // Single column: the block iteration is bitwise equal to the scalar
    // one, so skip its packing/SpMM scaffolding and run the scalar kernel
    // directly (the same free fast path the Cholesky block sweeps take).
    la::Vector bj(b.col(0).begin(), b.col(0).end());
    la::Vector xj(x.col(0).begin(), x.col(0).end());
    result.columns[0] = pcg_solve(a, bj, xj, m, options);
    std::copy(xj.begin(), xj.end(), x.col(0).begin());
    return result;
  }

  // The live set: columns still iterating, packed into the leading slots
  // of the work blocks. orig[s] maps packed slot s back to its column in
  // b/x; deflation compacts slots but never reorders survivors, and every
  // kernel below computes each column independently in a fixed order, so
  // a column's trajectory cannot depend on which other columns are live.
  std::vector<Index> orig;
  orig.reserve(static_cast<std::size_t>(total));
  const la::Vector b_norm_all = la::column_norms(b, threads);
  for (Index j = 0; j < total; ++j) {
    if (b_norm_all[static_cast<std::size_t>(j)] == 0.0) {
      // Mirror pcg_solve: zero rhs → zero solution, converged at once.
      const std::span<Real> xj = x.col(j);
      std::fill(xj.begin(), xj.end(), 0.0);
      result.columns[static_cast<std::size_t>(j)].converged = true;
    } else {
      orig.push_back(j);
    }
  }
  Index live = to_index(orig.size());
  if (live == 0) return result;

  la::MultiVector xw(n, live);  // packed iterates (live columns of x)
  la::MultiVector r(n, live);
  la::MultiVector z(n, live);
  la::MultiVector p(n, live);
  la::MultiVector ap(n, live);
  la::Vector b_norm(static_cast<std::size_t>(live));
  std::vector<Index> iters(static_cast<std::size_t>(live), 0);
  for (Index s = 0; s < live; ++s) {
    b_norm[static_cast<std::size_t>(s)] =
        b_norm_all[static_cast<std::size_t>(orig[static_cast<std::size_t>(s)])];
    const std::span<const Real> src = x.col(orig[static_cast<std::size_t>(s)]);
    std::copy(src.begin(), src.end(), xw.col(s).begin());
  }

  // R = B − A X: one SpMM for the whole block, then the same elementwise
  // subtraction the scalar path performs.
  la::spmm(a, xw.view(), ap.view(), threads);
  for (Index s = 0; s < live; ++s) {
    const std::span<const Real> bs = b.col(orig[static_cast<std::size_t>(s)]);
    const std::span<const Real> aps = ap.col(s);
    const std::span<Real> rs = r.col(s);
    for (std::size_t i = 0; i < bs.size(); ++i) rs[i] = bs[i] - aps[i];
  }

  m.apply_block(r.view(), z.view(), threads);
  std::copy(z.data().begin(), z.data().end(), p.data().begin());  // P = Z
  la::Vector rz = la::column_dots(r.view(), z.view(), threads);

  // Freezes slot s with the given relative residual: records the result
  // under the original column index and writes the iterate out.
  const auto finalize_slot = [&](Index s, Real rel) {
    const Index col = orig[static_cast<std::size_t>(s)];
    PcgResult& res = result.columns[static_cast<std::size_t>(col)];
    res.iterations = iters[static_cast<std::size_t>(s)];
    res.relative_residual = rel;
    res.converged = rel <= options.rel_tolerance;
    const std::span<const Real> src = xw.col(s);
    std::copy(src.begin(), src.end(), x.col(col).begin());
  };

  // Deflation: drop finished slots by sliding survivors down (relative
  // order preserved — the "deflation ordering rule" of DESIGN.md §5).
  const auto compact = [&](const std::vector<char>& finished,
                           std::initializer_list<la::MultiVector*> blocks,
                           std::initializer_list<la::Vector*> scalars) {
    Index w = 0;
    for (Index s = 0; s < live; ++s) {
      if (finished[static_cast<std::size_t>(s)]) continue;
      if (w != s) {
        for (la::MultiVector* mv : blocks) {
          const std::span<const Real> src =
              static_cast<const la::MultiVector*>(mv)->col(s);
          std::copy(src.begin(), src.end(), mv->col(w).begin());
        }
        for (la::Vector* v : scalars)
          (*v)[static_cast<std::size_t>(w)] = (*v)[static_cast<std::size_t>(s)];
        orig[static_cast<std::size_t>(w)] = orig[static_cast<std::size_t>(s)];
        iters[static_cast<std::size_t>(w)] = iters[static_cast<std::size_t>(s)];
      }
      ++w;
    }
    live = w;
  };

  for (Index it = 0; it < options.max_iterations && live > 0; ++it) {
    la::spmm(a, p.block(0, live), ap.block(0, live), threads);
    la::Vector pap =
        la::column_dots(p.block(0, live), ap.block(0, live), threads);

    // Per-column breakdown (loss of positive definiteness, or exact
    // convergence with a zero search direction): mirror the scalar
    // loop's break, classifying by the current residual.
    {
      std::vector<char> finished(static_cast<std::size_t>(live), 0);
      bool any = false;
      for (Index s = 0; s < live; ++s) {
        if (!(pap[static_cast<std::size_t>(s)] > 0.0)) {
          const Real rel =
              column_norm2(r.col(s)) / b_norm[static_cast<std::size_t>(s)];
          finalize_slot(s, rel);
          finished[static_cast<std::size_t>(s)] = 1;
          any = true;
        }
      }
      if (any) compact(finished, {&xw, &r, &p, &ap}, {&b_norm, &rz, &pap});
      if (live == 0) break;
    }

    la::Vector alpha(static_cast<std::size_t>(live));
    la::Vector neg_alpha(static_cast<std::size_t>(live));
    for (Index s = 0; s < live; ++s) {
      const Real as =
          rz[static_cast<std::size_t>(s)] / pap[static_cast<std::size_t>(s)];
      alpha[static_cast<std::size_t>(s)] = as;
      neg_alpha[static_cast<std::size_t>(s)] = -as;
    }
    la::block_axpy(alpha, p.block(0, live), xw.block(0, live), threads);
    la::block_axpy(neg_alpha, ap.block(0, live), r.block(0, live), threads);
    for (Index s = 0; s < live; ++s) iters[static_cast<std::size_t>(s)] = it + 1;

    // Per-column convergence: freeze columns that meet the tolerance and
    // keep iterating the rest.
    const la::Vector r_norm = la::column_norms(r.block(0, live), threads);
    {
      std::vector<char> finished(static_cast<std::size_t>(live), 0);
      bool any = false;
      for (Index s = 0; s < live; ++s) {
        const Real rel = r_norm[static_cast<std::size_t>(s)] /
                         b_norm[static_cast<std::size_t>(s)];
        if (rel <= options.rel_tolerance) {
          finalize_slot(s, rel);
          finished[static_cast<std::size_t>(s)] = 1;
          any = true;
        }
      }
      if (any) compact(finished, {&xw, &r, &p}, {&b_norm, &rz});
      if (live == 0) break;
    }
    if (it + 1 == options.max_iterations) break;

    m.apply_block(r.block(0, live), z.block(0, live), threads);
    const la::Vector rz_new =
        la::column_dots(r.block(0, live), z.block(0, live), threads);
    la::Vector beta(static_cast<std::size_t>(live));
    for (Index s = 0; s < live; ++s) {
      const std::size_t us = static_cast<std::size_t>(s);
      beta[us] = rz_new[us] / rz[us];
      rz[us] = rz_new[us];
    }
    la::block_xpby(z.block(0, live), beta, p.block(0, live), threads);
  }

  // Iteration cap exhausted: mirror the scalar epilogue — recompute the
  // relative residual from the final iterate and classify.
  for (Index s = 0; s < live; ++s) {
    const Real rel =
        column_norm2(r.col(s)) / b_norm[static_cast<std::size_t>(s)];
    finalize_slot(s, rel);
  }
  return result;
}

}  // namespace sgl::solver
