#include "solver/ordering.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <queue>

#include "common/contracts.hpp"
#include "common/enum_names.hpp"

namespace sgl::solver {

namespace {

/// Pattern adjacency (diagonal stripped) of a square symmetric matrix.
struct Pattern {
  std::vector<Index> row_ptr;
  std::vector<Index> col;

  [[nodiscard]] Index n() const noexcept { return to_index(row_ptr.size()) - 1; }
  [[nodiscard]] Index degree(Index i) const {
    return row_ptr[static_cast<std::size_t>(i) + 1] -
           row_ptr[static_cast<std::size_t>(i)];
  }
};

Pattern strip_diagonal(const la::CsrMatrix& a) {
  SGL_EXPECTS(a.rows() == a.cols(), "ordering: matrix must be square");
  Pattern p;
  const Index n = a.rows();
  p.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  p.col.reserve(a.values().size());
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  for (Index i = 0; i < n; ++i) {
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      const Index j = ci[static_cast<std::size_t>(k)];
      if (j != i) p.col.push_back(j);
    }
    p.row_ptr[static_cast<std::size_t>(i) + 1] = to_index(p.col.size());
  }
  return p;
}

/// BFS returning nodes of one component in visit order, starting from the
/// lowest-degree endpoint of a pseudo-peripheral search.
Index pseudo_peripheral(const Pattern& p, Index start,
                        std::vector<Index>& dist_scratch) {
  Index current = start;
  Index best_ecc = -1;
  std::vector<Index> queue;
  for (int round = 0; round < 6; ++round) {
    std::fill(dist_scratch.begin(), dist_scratch.end(), kInvalidIndex);
    queue.clear();
    queue.push_back(current);
    dist_scratch[static_cast<std::size_t>(current)] = 0;
    Index far_node = current;
    Index far_dist = 0;
    Index far_deg = p.degree(current);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Index u = queue[head];
      for (Index k = p.row_ptr[static_cast<std::size_t>(u)];
           k < p.row_ptr[static_cast<std::size_t>(u) + 1]; ++k) {
        const Index v = p.col[static_cast<std::size_t>(k)];
        if (dist_scratch[static_cast<std::size_t>(v)] != kInvalidIndex) continue;
        dist_scratch[static_cast<std::size_t>(v)] =
            dist_scratch[static_cast<std::size_t>(u)] + 1;
        queue.push_back(v);
        const Index dv = dist_scratch[static_cast<std::size_t>(v)];
        const Index degv = p.degree(v);
        if (dv > far_dist || (dv == far_dist && degv < far_deg)) {
          far_dist = dv;
          far_node = v;
          far_deg = degv;
        }
      }
    }
    if (far_dist <= best_ecc) break;
    best_ecc = far_dist;
    current = far_node;
  }
  return current;
}

}  // namespace

std::vector<Index> natural_ordering(Index n) {
  std::vector<Index> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), Index{0});
  return perm;
}

std::vector<Index> rcm_ordering(const la::CsrMatrix& a) {
  const Pattern p = strip_diagonal(a);
  const Index n = p.n();
  std::vector<Index> perm;
  perm.reserve(static_cast<std::size_t>(n));
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<Index> dist(static_cast<std::size_t>(n));
  std::vector<Index> nbrs;

  for (Index seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    const Index root = pseudo_peripheral(p, seed, dist);
    // Cuthill–McKee BFS: neighbors appended in increasing-degree order.
    std::vector<Index> queue{root};
    visited[static_cast<std::size_t>(root)] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Index u = queue[head];
      perm.push_back(u);
      nbrs.clear();
      for (Index k = p.row_ptr[static_cast<std::size_t>(u)];
           k < p.row_ptr[static_cast<std::size_t>(u) + 1]; ++k) {
        const Index v = p.col[static_cast<std::size_t>(k)];
        if (!visited[static_cast<std::size_t>(v)]) {
          visited[static_cast<std::size_t>(v)] = true;
          nbrs.push_back(v);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(), [&p](Index x, Index y) {
        return p.degree(x) < p.degree(y);
      });
      for (const Index v : nbrs) queue.push_back(v);
    }
  }
  std::reverse(perm.begin(), perm.end());
  return perm;
}

std::vector<Index> minimum_degree_ordering(const la::CsrMatrix& a) {
  const Pattern p = strip_diagonal(a);
  const Index n = p.n();

  // Evolving elimination-graph adjacency as sorted vectors.
  std::vector<std::vector<Index>> adj(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    adj[static_cast<std::size_t>(i)].assign(
        p.col.begin() + p.row_ptr[static_cast<std::size_t>(i)],
        p.col.begin() + p.row_ptr[static_cast<std::size_t>(i) + 1]);
    std::sort(adj[static_cast<std::size_t>(i)].begin(),
              adj[static_cast<std::size_t>(i)].end());
  }

  using Entry = std::pair<Index, Index>;  // (degree, node), lazy heap
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  std::vector<bool> eliminated(static_cast<std::size_t>(n), false);
  for (Index i = 0; i < n; ++i)
    heap.emplace(to_index(adj[static_cast<std::size_t>(i)].size()), i);

  std::vector<Index> perm;
  perm.reserve(static_cast<std::size_t>(n));
  std::vector<Index> merged;
  while (!heap.empty()) {
    const auto [deg, v] = heap.top();
    heap.pop();
    if (eliminated[static_cast<std::size_t>(v)]) continue;
    if (deg != to_index(adj[static_cast<std::size_t>(v)].size())) continue;

    eliminated[static_cast<std::size_t>(v)] = true;
    perm.push_back(v);
    auto& nv = adj[static_cast<std::size_t>(v)];
    // Connect the neighborhood of v into a clique; each neighbor u gets
    // (N(v) ∪ N(u)) \ {u, v, eliminated}.
    for (const Index u : nv) {
      auto& nu = adj[static_cast<std::size_t>(u)];
      merged.clear();
      merged.reserve(nu.size() + nv.size());
      std::set_union(nu.begin(), nu.end(), nv.begin(), nv.end(),
                     std::back_inserter(merged));
      merged.erase(std::remove_if(merged.begin(), merged.end(),
                                  [&](Index x) {
                                    return x == u || x == v ||
                                           eliminated[static_cast<std::size_t>(x)];
                                  }),
                   merged.end());
      nu.swap(merged);
      heap.emplace(to_index(nu.size()), u);
    }
    nv.clear();
    nv.shrink_to_fit();
  }
  SGL_ENSURES(to_index(perm.size()) == n,
              "minimum_degree_ordering: incomplete permutation");
  return perm;
}

namespace {

/// Orders the node set `nodes` (a connected or disconnected induced
/// subgraph) by recursive level-set dissection, appending to `out`.
/// `next_tag` hands out globally unique membership tags so stale tags from
/// already-processed subtrees can never alias the current subset.
void dissect(const Pattern& p, std::vector<Index>& nodes,
             std::vector<Index>& membership, Index& next_tag,
             std::vector<Index>& out) {
  constexpr Index kLeafSize = 48;
  if (to_index(nodes.size()) <= kLeafSize) {
    // Leaf: small enough that elimination order barely matters.
    std::sort(nodes.begin(), nodes.end());
    out.insert(out.end(), nodes.begin(), nodes.end());
    return;
  }

  const Index tag = next_tag++;
  for (const Index v : nodes) membership[static_cast<std::size_t>(v)] = tag;

  // BFS from an arbitrary member; levels define the separator.
  // Local indices come from binary search over the sorted node list.
  std::vector<Index> dist(nodes.size(), kInvalidIndex);
  std::sort(nodes.begin(), nodes.end());
  const auto local_index = [&nodes](Index v) {
    return to_index(static_cast<std::size_t>(
        std::lower_bound(nodes.begin(), nodes.end(), v) - nodes.begin()));
  };

  std::vector<Index> queue{nodes.front()};
  dist[0] = 0;
  Index max_level = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Index u = queue[head];
    const Index lu = local_index(u);
    for (Index k = p.row_ptr[static_cast<std::size_t>(u)];
         k < p.row_ptr[static_cast<std::size_t>(u) + 1]; ++k) {
      const Index v = p.col[static_cast<std::size_t>(k)];
      if (membership[static_cast<std::size_t>(v)] != tag) continue;
      const Index lv = local_index(v);
      if (dist[static_cast<std::size_t>(lv)] != kInvalidIndex) continue;
      dist[static_cast<std::size_t>(lv)] = dist[static_cast<std::size_t>(lu)] + 1;
      max_level = std::max(max_level, dist[static_cast<std::size_t>(lv)]);
      queue.push_back(v);
    }
  }

  // Disconnected subset: nodes unreached by the BFS form their own part.
  // Split into (reached, unreached) and recurse on each.
  if (to_index(queue.size()) < to_index(nodes.size())) {
    std::vector<Index> reached, unreached;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (dist[i] == kInvalidIndex) unreached.push_back(nodes[i]);
      else reached.push_back(nodes[i]);
    }
    dissect(p, unreached, membership, next_tag, out);
    dissect(p, reached, membership, next_tag, out);
    return;
  }

  if (max_level < 2) {
    // Graph too tight to bisect by levels (e.g. near-clique): fall back to
    // degree order to guarantee progress.
    out.insert(out.end(), nodes.begin(), nodes.end());
    return;
  }

  // Median level by cumulative counts.
  std::vector<Index> level_count(static_cast<std::size_t>(max_level) + 1, 0);
  for (const Index d : dist) ++level_count[static_cast<std::size_t>(d)];
  Index half = to_index(nodes.size()) / 2;
  Index sep_level = 0;
  Index acc = 0;
  for (Index l = 0; l <= max_level; ++l) {
    acc += level_count[static_cast<std::size_t>(l)];
    if (acc >= half) {
      sep_level = l;
      break;
    }
  }
  // Keep the separator strictly interior so both sides are nonempty.
  sep_level = std::clamp(sep_level, Index{1}, max_level - 1);

  std::vector<Index> left, right, sep;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (dist[i] < sep_level) left.push_back(nodes[i]);
    else if (dist[i] == sep_level) sep.push_back(nodes[i]);
    else right.push_back(nodes[i]);
  }
  dissect(p, left, membership, next_tag, out);
  dissect(p, right, membership, next_tag, out);
  // Separator is ordered last (eliminated last = appears last in perm).
  out.insert(out.end(), sep.begin(), sep.end());
}

}  // namespace

std::vector<Index> nested_dissection_ordering(const la::CsrMatrix& a) {
  const Pattern p = strip_diagonal(a);
  const Index n = p.n();
  std::vector<Index> nodes(static_cast<std::size_t>(n));
  std::iota(nodes.begin(), nodes.end(), Index{0});
  std::vector<Index> membership(static_cast<std::size_t>(n), -1);
  std::vector<Index> perm;
  perm.reserve(static_cast<std::size_t>(n));
  Index next_tag = 0;
  dissect(p, nodes, membership, next_tag, perm);
  SGL_ENSURES(to_index(perm.size()) == n,
              "nested_dissection_ordering: incomplete permutation");
  return perm;
}

namespace {
constexpr std::array<common::EnumName<OrderingMethod>, 5> kOrderingNames{{
    {OrderingMethod::kNatural, "natural"},
    {OrderingMethod::kRcm, "rcm"},
    {OrderingMethod::kMinimumDegree, "amd"},
    {OrderingMethod::kNestedDissection, "nd"},
    {OrderingMethod::kAuto, "auto"},
}};
}  // namespace

const char* ordering_method_name(OrderingMethod method) {
  return common::enum_name(kOrderingNames, method);
}

std::optional<OrderingMethod> parse_ordering_method(std::string_view name) {
  return common::parse_enum(kOrderingNames, name);
}

std::string ordering_method_name_list() {
  return common::enum_name_list(kOrderingNames);
}

std::vector<Index> compute_ordering(const la::CsrMatrix& a,
                                    OrderingMethod method) {
  switch (method) {
    case OrderingMethod::kNatural:
      return natural_ordering(a.rows());
    case OrderingMethod::kRcm:
      return rcm_ordering(a);
    case OrderingMethod::kMinimumDegree:
      return minimum_degree_ordering(a);
    case OrderingMethod::kNestedDissection:
      return nested_dissection_ordering(a);
    case OrderingMethod::kAuto: {
      const Index n = a.rows();
      const Real avg_row = n > 0 ? static_cast<Real>(a.nnz()) / n : 0.0;
      // Ultra-sparse graphs (trees + a few edges) and small systems: MD.
      // Large meshes: nested dissection bounds the fill growth.
      if (n <= 30000 || avg_row <= 3.5) return minimum_degree_ordering(a);
      return nested_dissection_ordering(a);
    }
  }
  SGL_EXPECTS(false, "compute_ordering: unknown method");
  return {};
}

std::vector<Index> invert_permutation(const std::vector<Index>& perm) {
  std::vector<Index> inv(perm.size(), kInvalidIndex);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    SGL_EXPECTS(perm[i] >= 0 && perm[i] < to_index(perm.size()),
                "invert_permutation: entry out of range");
    SGL_EXPECTS(inv[static_cast<std::size_t>(perm[i])] == kInvalidIndex,
                "invert_permutation: not a permutation");
    inv[static_cast<std::size_t>(perm[i])] = to_index(i);
  }
  return inv;
}

la::CsrMatrix permute_symmetric(const la::CsrMatrix& a,
                                const std::vector<Index>& perm) {
  SGL_EXPECTS(a.rows() == a.cols(), "permute_symmetric: matrix must be square");
  SGL_EXPECTS(to_index(perm.size()) == a.rows(),
              "permute_symmetric: permutation size mismatch");
  const std::vector<Index> inv = invert_permutation(perm);
  std::vector<la::Triplet> triplets;
  triplets.reserve(a.values().size());
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vv = a.values();
  for (Index i = 0; i < a.rows(); ++i)
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k)
      triplets.push_back({inv[static_cast<std::size_t>(i)],
                          inv[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])],
                          vv[static_cast<std::size_t>(k)]});
  return la::CsrMatrix::from_triplets(a.rows(), a.cols(), triplets);
}

}  // namespace sgl::solver
