#include "solver/operators.hpp"

namespace sgl::solver {

void PreconditionedOperator::apply(const la::Vector& x, la::Vector& y) const {
  la::Vector ax(x.size());
  a_.multiply(x, ax, num_threads_);
  m_.apply(ax, y);
}

void PreconditionedOperator::apply_block(la::ConstBlockView x,
                                         la::BlockView y) const {
  SGL_EXPECTS(x.rows == a_.cols() && y.rows == a_.rows() && x.cols == y.cols,
              "PreconditionedOperator::apply_block: shape mismatch");
  // A is applied to the whole block in one streaming SpMM pass, then the
  // preconditioner's block seam streams its factor/hierarchy once for the
  // block (every Preconditioner keeps apply_block bitwise equal to b
  // apply() calls, so this adapter stays bitwise too).
  la::MultiVector ax(a_.rows(), x.cols);
  spmm(a_, x, ax.view(), num_threads_);
  m_.apply_block(ax.view(), y, num_threads_);
}

}  // namespace sgl::solver
