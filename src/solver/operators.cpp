#include "solver/operators.hpp"

#include <algorithm>

#include "common/parallel.hpp"

namespace sgl::solver {

void PreconditionedOperator::apply(const la::Vector& x, la::Vector& y) const {
  la::Vector ax(x.size());
  a_.multiply(x, ax, num_threads_);
  m_.apply(ax, y);
}

void PreconditionedOperator::apply_block(la::ConstBlockView x,
                                         la::BlockView y) const {
  SGL_EXPECTS(x.rows == a_.cols() && y.rows == a_.rows() && x.cols == y.cols,
              "PreconditionedOperator::apply_block: shape mismatch");
  // A is applied to the whole block in one streaming SpMM pass; the
  // preconditioner interface is vector-valued, so its solves go
  // column-parallel (identical arithmetic per column at any thread count).
  la::MultiVector ax(a_.rows(), x.cols);
  spmm(a_, x, ax.view(), num_threads_);
  parallel::parallel_for(0, x.cols, num_threads_, [&](Index j) {
    const std::span<const Real> src = ax.col(j);
    la::Vector r(src.begin(), src.end());
    la::Vector z;
    m_.apply(r, z);
    const std::span<Real> dst = y.col(j);
    std::copy(z.begin(), z.end(), dst.begin());
  });
}

}  // namespace sgl::solver
