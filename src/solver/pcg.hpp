// Preconditioned conjugate gradient.
#pragma once

#include "la/sparse.hpp"
#include "la/vector_ops.hpp"
#include "solver/preconditioner.hpp"

namespace sgl::solver {

struct PcgOptions {
  Real rel_tolerance = 1e-10;  // on ‖r‖ / ‖b‖
  Index max_iterations = 2000;
};

struct PcgResult {
  Index iterations = 0;
  Real relative_residual = 0.0;
  bool converged = false;
};

/// Solves A x = b for SPD A with preconditioner M. `x` carries the initial
/// guess in and the solution out.
PcgResult pcg_solve(const la::CsrMatrix& a, const la::Vector& b, la::Vector& x,
                    const Preconditioner& m, const PcgOptions& options = {});

}  // namespace sgl::solver
