// Preconditioned conjugate gradient.
#pragma once

#include "la/sparse.hpp"
#include "la/vector_ops.hpp"
#include "solver/preconditioner.hpp"

namespace sgl::solver {

struct PcgOptions {
  Real rel_tolerance = 1e-10;  // on ‖r‖ / ‖b‖
  Index max_iterations = 2000;
  /// Worker threads for the CSR SpMV inside each iteration (0 = library
  /// default, 1 = serial). The SpMV is row-chunked and bit-identical for
  /// every thread count, so this knob never changes the iterates. Nested
  /// parallel regions (e.g. PCG inside a multi-RHS apply_block) degrade
  /// to serial automatically.
  Index num_threads = 0;
};

struct PcgResult {
  Index iterations = 0;
  Real relative_residual = 0.0;
  bool converged = false;
};

/// Solves A x = b for SPD A with preconditioner M. `x` carries the initial
/// guess in and the solution out.
PcgResult pcg_solve(const la::CsrMatrix& a, const la::Vector& b, la::Vector& x,
                    const Preconditioner& m, const PcgOptions& options = {});

}  // namespace sgl::solver
