// Preconditioned conjugate gradient — scalar and block flavours.
#pragma once

#include <vector>

#include "la/multi_vector.hpp"
#include "la/sparse.hpp"
#include "la/vector_ops.hpp"
#include "solver/preconditioner.hpp"

namespace sgl::solver {

struct PcgOptions {
  Real rel_tolerance = 1e-10;  // on ‖r‖ / ‖b‖
  Index max_iterations = 2000;
  /// Worker threads for the CSR SpMV/SpMM inside each iteration (0 =
  /// library default, 1 = serial). The kernels are row-chunked and
  /// bit-identical for every thread count, so this knob never changes the
  /// iterates. Nested parallel regions (e.g. PCG inside a multi-RHS
  /// apply_block) degrade to serial automatically.
  Index num_threads = 0;
  /// Warm-start seam (DESIGN.md §8), consumed by solvers that allocate
  /// the iterate themselves (LaplacianPinvSolver::apply_block seeds its
  /// internal grounded block from this (n−1) × b view instead of zeros).
  /// pcg_solve / pcg_solve_block ignore it — their `x` argument IS the
  /// initial guess. A null view (the default) keeps the zero-guess
  /// behavior bitwise.
  la::ConstBlockView initial_guess{};
  /// Companion copy-out slot: when non-null, the final grounded iterate
  /// is copied here before un-grounding, so the caller can feed it back
  /// as the next solve's initial_guess.
  la::BlockView final_iterate{};
};

struct PcgResult {
  Index iterations = 0;
  Real relative_residual = 0.0;
  bool converged = false;
};

/// Solves A x = b for SPD A with preconditioner M. `x` carries the initial
/// guess in and the solution out.
PcgResult pcg_solve(const la::CsrMatrix& a, const la::Vector& b, la::Vector& x,
                    const Preconditioner& m, const PcgOptions& options = {});

/// Per-column results of a block PCG solve (DESIGN.md §5).
struct PcgBlockResult {
  std::vector<PcgResult> columns;

  /// Max iteration count over the columns (0 for an empty block) — the
  /// number of block iterations the solve actually ran.
  [[nodiscard]] Index max_iterations() const noexcept;

  /// Sum of the per-column iteration counts (the work a per-column solver
  /// would have spent on its SpMVs/preconditioner sweeps).
  [[nodiscard]] Index total_iterations() const noexcept;

  [[nodiscard]] bool all_converged() const noexcept;

  /// Smallest column index that failed to converge; kInvalidIndex if all
  /// converged.
  [[nodiscard]] Index first_unconverged() const noexcept;
};

/// Solves A X = B for all b right-hand sides together: one CSR SpMM and
/// one Preconditioner::apply_block per iteration instead of b SpMVs and b
/// factor sweeps, with per-column α/β/residual bookkeeping. Columns whose
/// residual meets the tolerance are deflated (frozen and removed from the
/// live set) while the iteration continues on the rest, so a column's
/// iterate sequence — and therefore the returned solution — is BITWISE
/// identical to running pcg_solve on that column alone, for every thread
/// count and block width (see DESIGN.md §5 for the ordering argument).
/// `x` carries the per-column initial guesses in and the solutions out.
PcgBlockResult pcg_solve_block(const la::CsrMatrix& a, la::ConstBlockView b,
                               la::BlockView x, const Preconditioner& m,
                               const PcgOptions& options = {});

}  // namespace sgl::solver
