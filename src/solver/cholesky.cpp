#include "solver/cholesky.hpp"

#include "common/contracts.hpp"
#include "common/timer.hpp"

namespace sgl::solver {

CholeskySolver::CholeskySolver(const la::CsrMatrix& a, OrderingMethod ordering) {
  SGL_EXPECTS(a.rows() == a.cols(), "CholeskySolver: matrix must be square");
  const WallTimer timer;
  n_ = a.rows();
  stats_.n = n_;
  stats_.input_nnz = a.nnz();

  perm_ = compute_ordering(a, ordering);
  inv_perm_ = invert_permutation(perm_);
  const la::CsrMatrix pa = permute_symmetric(a, perm_);

  const auto& rp = pa.row_ptr();
  const auto& ci = pa.col_idx();
  const auto& vv = pa.values();
  const std::size_t un = static_cast<std::size_t>(n_);

  // --- Symbolic: elimination tree and per-column factor counts. ---------
  // Row k of the (symmetric) matrix restricted to indices < k is the
  // pattern of column k of the upper factor; walking each entry up the
  // elimination tree enumerates the columns it updates.
  std::vector<Index> parent(un, kInvalidIndex);
  std::vector<Index> flag(un, kInvalidIndex);
  std::vector<Index> l_nnz(un, 0);
  for (Index k = 0; k < n_; ++k) {
    parent[static_cast<std::size_t>(k)] = kInvalidIndex;
    flag[static_cast<std::size_t>(k)] = k;
    for (Index p = rp[static_cast<std::size_t>(k)];
         p < rp[static_cast<std::size_t>(k) + 1]; ++p) {
      Index i = ci[static_cast<std::size_t>(p)];
      if (i >= k) continue;
      for (; flag[static_cast<std::size_t>(i)] != k;
           i = parent[static_cast<std::size_t>(i)]) {
        if (parent[static_cast<std::size_t>(i)] == kInvalidIndex)
          parent[static_cast<std::size_t>(i)] = k;
        ++l_nnz[static_cast<std::size_t>(i)];
        flag[static_cast<std::size_t>(i)] = k;
      }
    }
  }

  l_col_ptr_.assign(un + 1, 0);
  for (Index j = 0; j < n_; ++j)
    l_col_ptr_[static_cast<std::size_t>(j) + 1] =
        l_col_ptr_[static_cast<std::size_t>(j)] + l_nnz[static_cast<std::size_t>(j)];
  const Index total_nnz = l_col_ptr_[un];
  stats_.factor_nnz = total_nnz;
  l_row_idx_.resize(static_cast<std::size_t>(total_nnz));
  l_values_.resize(static_cast<std::size_t>(total_nnz));
  d_.assign(un, 0.0);

  // --- Numeric: up-looking, one sparse triangular solve per row k. ------
  std::vector<Index> next_slot(l_col_ptr_.begin(), l_col_ptr_.end() - 1);
  std::vector<Real> y(un, 0.0);
  std::vector<Index> pattern(un, 0);
  std::vector<Index> stack(un, 0);

  for (Index k = 0; k < n_; ++k) {
    Index top = n_;
    flag[static_cast<std::size_t>(k)] = k;
    d_[static_cast<std::size_t>(k)] = 0.0;
    for (Index p = rp[static_cast<std::size_t>(k)];
         p < rp[static_cast<std::size_t>(k) + 1]; ++p) {
      const Index col = ci[static_cast<std::size_t>(p)];
      if (col > k) continue;
      if (col == k) {
        d_[static_cast<std::size_t>(k)] += vv[static_cast<std::size_t>(p)];
        continue;
      }
      y[static_cast<std::size_t>(col)] += vv[static_cast<std::size_t>(p)];
      Index len = 0;
      for (Index i = col; flag[static_cast<std::size_t>(i)] != k;
           i = parent[static_cast<std::size_t>(i)]) {
        pattern[static_cast<std::size_t>(len++)] = i;
        flag[static_cast<std::size_t>(i)] = k;
      }
      while (len > 0) stack[static_cast<std::size_t>(--top)] = pattern[static_cast<std::size_t>(--len)];
    }

    for (Index s = top; s < n_; ++s) {
      const Index i = stack[static_cast<std::size_t>(s)];
      const Real yi = y[static_cast<std::size_t>(i)];
      y[static_cast<std::size_t>(i)] = 0.0;
      const Index p2 = next_slot[static_cast<std::size_t>(i)];
      for (Index p = l_col_ptr_[static_cast<std::size_t>(i)]; p < p2; ++p) {
        y[static_cast<std::size_t>(l_row_idx_[static_cast<std::size_t>(p)])] -=
            l_values_[static_cast<std::size_t>(p)] * yi;
      }
      const Real l_ki = yi / d_[static_cast<std::size_t>(i)];
      d_[static_cast<std::size_t>(k)] -= l_ki * yi;
      l_row_idx_[static_cast<std::size_t>(p2)] = k;
      l_values_[static_cast<std::size_t>(p2)] = l_ki;
      ++next_slot[static_cast<std::size_t>(i)];
    }
    if (!(d_[static_cast<std::size_t>(k)] > 0.0)) {
      throw NumericalError(
          "CholeskySolver: non-positive pivot at column " + std::to_string(k) +
          " — matrix is not positive definite");
    }
  }
  stats_.factor_seconds = timer.seconds();
}

void CholeskySolver::solve_in_place(la::Vector& x) const {
  SGL_EXPECTS(to_index(x.size()) == n_, "CholeskySolver::solve: size mismatch");
  // Permute, forward solve L y = b, diagonal scale, back solve Lᵀ x = y,
  // un-permute.
  la::Vector b(static_cast<std::size_t>(n_));
  for (Index i = 0; i < n_; ++i)
    b[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])];

  for (Index j = 0; j < n_; ++j) {
    const Real bj = b[static_cast<std::size_t>(j)];
    if (bj == 0.0) continue;
    for (Index p = l_col_ptr_[static_cast<std::size_t>(j)];
         p < l_col_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      b[static_cast<std::size_t>(l_row_idx_[static_cast<std::size_t>(p)])] -=
          l_values_[static_cast<std::size_t>(p)] * bj;
    }
  }
  for (Index j = 0; j < n_; ++j) b[static_cast<std::size_t>(j)] /= d_[static_cast<std::size_t>(j)];
  for (Index j = n_ - 1; j >= 0; --j) {
    Real acc = b[static_cast<std::size_t>(j)];
    for (Index p = l_col_ptr_[static_cast<std::size_t>(j)];
         p < l_col_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      acc -= l_values_[static_cast<std::size_t>(p)] *
             b[static_cast<std::size_t>(l_row_idx_[static_cast<std::size_t>(p)])];
    }
    b[static_cast<std::size_t>(j)] = acc;
  }

  for (Index i = 0; i < n_; ++i)
    x[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])] = b[static_cast<std::size_t>(i)];
}

la::Vector CholeskySolver::solve(const la::Vector& b) const {
  la::Vector x = b;
  solve_in_place(x);
  return x;
}

}  // namespace sgl::solver
