#include "solver/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"

namespace sgl::solver {

namespace {

/// Matrix size below which the numeric phase and the block sweeps stay
/// serial: pool dispatch costs more than the work. Scheduling-only — the
/// values are identical either way.
constexpr Index kSerialCols = 256;

// Relative floor for downdated pivots: a downdate to an exactly singular
// matrix rounds the pivot to ~machine-epsilon × its old value, which can
// land on either side of zero. Any legitimate downdate leaves far more
// than 1e-12 of the pivot behind.
constexpr Real kDowndatePivotFloor = 1e-12;

}  // namespace

CholeskySolver::CholeskySolver(const la::CsrMatrix& a, OrderingMethod ordering,
                               Index num_threads, FactorKernel kernel)
    : kernel_(kernel) {
  SGL_EXPECTS(a.rows() == a.cols(), "CholeskySolver: matrix must be square");
  const WallTimer timer;
  n_ = a.rows();
  stats_.n = n_;
  stats_.input_nnz = a.nnz();

  perm_ = compute_ordering(a, ordering);
  inv_perm_ = invert_permutation(perm_);
  const la::CsrMatrix pa = permute_symmetric(a, perm_);

  analyze(pa);
  factorize(pa, num_threads);
  stats_.factor_seconds = timer.seconds();
}

CholeskySolver::CholeskySolver(const la::CsrMatrix& a, std::vector<Index> perm,
                               Index num_threads, FactorKernel kernel)
    : kernel_(kernel) {
  SGL_EXPECTS(a.rows() == a.cols(), "CholeskySolver: matrix must be square");
  SGL_EXPECTS(to_index(perm.size()) == a.rows(),
              "CholeskySolver: permutation size mismatch");
  const WallTimer timer;
  n_ = a.rows();
  stats_.n = n_;
  stats_.input_nnz = a.nnz();

  perm_ = std::move(perm);
  inv_perm_ = invert_permutation(perm_);
  const la::CsrMatrix pa = permute_symmetric(a, perm_);

  analyze(pa);
  factorize(pa, num_threads);
  stats_.factor_seconds = timer.seconds();
}

void CholeskySolver::analyze(const la::CsrMatrix& pa) {
  const auto& rp = pa.row_ptr();
  const auto& ci = pa.col_idx();
  const std::size_t un = static_cast<std::size_t>(n_);

  // --- Elimination tree and per-column factor counts. -------------------
  // Row k of the (symmetric) matrix restricted to indices < k is the
  // pattern of column k of the upper factor; walking each entry up the
  // elimination tree enumerates the columns it updates. The tree is kept
  // (parent_) for the lifetime of the solver: update_edge walks it.
  parent_.assign(un, kInvalidIndex);
  std::vector<Index> flag(un, kInvalidIndex);
  std::vector<Index> l_nnz(un, 0);
  for (Index k = 0; k < n_; ++k) {
    flag[static_cast<std::size_t>(k)] = k;
    for (Index p = rp[static_cast<std::size_t>(k)];
         p < rp[static_cast<std::size_t>(k) + 1]; ++p) {
      Index i = ci[static_cast<std::size_t>(p)];
      if (i >= k) continue;
      for (; flag[static_cast<std::size_t>(i)] != k;
           i = parent_[static_cast<std::size_t>(i)]) {
        if (parent_[static_cast<std::size_t>(i)] == kInvalidIndex)
          parent_[static_cast<std::size_t>(i)] = k;
        ++l_nnz[static_cast<std::size_t>(i)];
        flag[static_cast<std::size_t>(i)] = k;
      }
    }
  }

  l_col_ptr_.assign(un + 1, 0);
  for (Index j = 0; j < n_; ++j)
    l_col_ptr_[static_cast<std::size_t>(j) + 1] =
        l_col_ptr_[static_cast<std::size_t>(j)] + l_nnz[static_cast<std::size_t>(j)];
  const Index total_nnz = l_col_ptr_[un];
  stats_.factor_nnz = total_nnz;
  l_row_idx_.resize(static_cast<std::size_t>(total_nnz));
  l_values_.assign(static_cast<std::size_t>(total_nnz), 0.0);

  // --- Full column pattern of L. ----------------------------------------
  // Re-run the row-subtree walk with the completed tree; appending row k
  // to every column it updates fills each column's rows in ascending
  // order because k only grows.
  std::vector<Index> next_slot(l_col_ptr_.begin(), l_col_ptr_.end() - 1);
  std::fill(flag.begin(), flag.end(), kInvalidIndex);
  for (Index k = 0; k < n_; ++k) {
    flag[static_cast<std::size_t>(k)] = k;
    for (Index p = rp[static_cast<std::size_t>(k)];
         p < rp[static_cast<std::size_t>(k) + 1]; ++p) {
      Index i = ci[static_cast<std::size_t>(p)];
      if (i >= k) continue;
      for (; flag[static_cast<std::size_t>(i)] != k;
           i = parent_[static_cast<std::size_t>(i)]) {
        l_row_idx_[static_cast<std::size_t>(
            next_slot[static_cast<std::size_t>(i)]++)] = k;
        flag[static_cast<std::size_t>(i)] = k;
      }
    }
  }

  // --- Row-major mirror (the gather lists). -----------------------------
  // Iterating columns in ascending order fills each row's entries with
  // ascending column indices — the fixed gather order of every sweep.
  r_row_ptr_.assign(un + 1, 0);
  for (Index p = 0; p < total_nnz; ++p)
    ++r_row_ptr_[static_cast<std::size_t>(l_row_idx_[static_cast<std::size_t>(p)]) + 1];
  for (Index i = 0; i < n_; ++i)
    r_row_ptr_[static_cast<std::size_t>(i) + 1] += r_row_ptr_[static_cast<std::size_t>(i)];
  r_col_idx_.resize(static_cast<std::size_t>(total_nnz));
  r_val_pos_.resize(static_cast<std::size_t>(total_nnz));
  std::vector<Index> row_next(r_row_ptr_.begin(), r_row_ptr_.end() - 1);
  for (Index j = 0; j < n_; ++j) {
    for (Index p = l_col_ptr_[static_cast<std::size_t>(j)];
         p < l_col_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      const Index i = l_row_idx_[static_cast<std::size_t>(p)];
      const Index q = row_next[static_cast<std::size_t>(i)]++;
      r_col_idx_[static_cast<std::size_t>(q)] = j;
      r_val_pos_[static_cast<std::size_t>(q)] = p;
    }
  }

  // --- Chain-coalesced column blocks (supernodes). ----------------------
  // Column j joins the block of j−1 when j−1 is its only child: every
  // strict descendant of j is then a descendant of j−1, so the block is a
  // self-contained serial task and a tridiagonal chain (or the dense
  // trailing triangle of a mesh factor) never fragments into n levels.
  std::vector<Index> num_children(un, 0);
  for (Index j = 0; j < n_; ++j) {
    if (parent_[static_cast<std::size_t>(j)] != kInvalidIndex)
      ++num_children[static_cast<std::size_t>(parent_[static_cast<std::size_t>(j)])];
  }
  super_ptr_.clear();
  super_ptr_.push_back(0);
  std::vector<Index> super_of(un, 0);
  for (Index j = 1; j < n_; ++j) {
    const bool chains = parent_[static_cast<std::size_t>(j) - 1] == j &&
                        num_children[static_cast<std::size_t>(j)] == 1;
    if (!chains) super_ptr_.push_back(j);
    super_of[static_cast<std::size_t>(j)] = to_index(super_ptr_.size()) - 1;
  }
  super_ptr_.push_back(n_);
  const Index nsuper = to_index(super_ptr_.size()) - 1;
  stats_.num_supernodes = nsuper;

  // --- Level sets over the block tree. ----------------------------------
  // level[s] = 1 + max level over blocks feeding s through a
  // cross-block parent edge. Cross edges always originate below the
  // target block's first column, so one ascending pass suffices.
  std::vector<Index> level(static_cast<std::size_t>(nsuper), 0);
  for (Index j = 0; j < n_; ++j) {
    const Index pj = parent_[static_cast<std::size_t>(j)];
    if (pj == kInvalidIndex) continue;
    const Index s = super_of[static_cast<std::size_t>(j)];
    const Index sp = super_of[static_cast<std::size_t>(pj)];
    if (sp != s) {
      level[static_cast<std::size_t>(sp)] =
          std::max(level[static_cast<std::size_t>(sp)],
                   level[static_cast<std::size_t>(s)] + 1);
    }
  }
  Index num_levels = 0;
  for (Index s = 0; s < nsuper; ++s)
    num_levels = std::max(num_levels, level[static_cast<std::size_t>(s)] + 1);
  stats_.num_levels = num_levels;

  level_ptr_.assign(static_cast<std::size_t>(num_levels) + 1, 0);
  for (Index s = 0; s < nsuper; ++s)
    ++level_ptr_[static_cast<std::size_t>(level[static_cast<std::size_t>(s)]) + 1];
  for (Index l = 0; l < num_levels; ++l)
    level_ptr_[static_cast<std::size_t>(l) + 1] += level_ptr_[static_cast<std::size_t>(l)];
  stats_.max_level_supernodes = 0;
  for (Index l = 0; l < num_levels; ++l) {
    stats_.max_level_supernodes =
        std::max(stats_.max_level_supernodes,
                 level_ptr_[static_cast<std::size_t>(l) + 1] -
                     level_ptr_[static_cast<std::size_t>(l)]);
  }
  level_supers_.resize(static_cast<std::size_t>(nsuper));
  std::vector<Index> level_next(level_ptr_.begin(), level_ptr_.end() - 1);
  for (Index s = 0; s < nsuper; ++s) {
    level_supers_[static_cast<std::size_t>(
        level_next[static_cast<std::size_t>(level[static_cast<std::size_t>(s)])]++)] = s;
  }

  build_panels();
}

void CholeskySolver::build_panels() {
  // --- Fundamental panels (DESIGN.md §9). -------------------------------
  // Within a chain block, columns j−1 and j merge when
  // |pattern(j−1)| == |pattern(j)| + 1: since parent(j−1) = j, etree
  // containment gives pattern(j−1) \ {j} ⊆ pattern(j), so equal counts
  // force pattern(j−1) = {j} ∪ pattern(j). By induction every panel
  // column's below-diagonal rows are exactly the pattern of the panel's
  // last column — a dense block with zero fill. (Full chain blocks do
  // NOT have this property: a tridiagonal chain coalesces into one block
  // whose densification would be O(n²).)
  const Index nsuper = to_index(super_ptr_.size()) - 1;
  panel_ptr_.clear();
  super_panel_ptr_.assign(static_cast<std::size_t>(nsuper) + 1, 0);
  max_panel_entries_ = 0;
  max_panel_rows_ = 0;
  stats_.panel_columns = 0;
  stats_.panel_max_width = 0;
  const auto pat_len = [&](Index j) {
    return l_col_ptr_[static_cast<std::size_t>(j) + 1] -
           l_col_ptr_[static_cast<std::size_t>(j)];
  };
  const auto close_panel = [&](Index c0, Index c1) {
    panel_ptr_.push_back(c0);
    const Index nc = c1 - c0;
    const Index rows = nc + pat_len(c1 - 1);
    max_panel_rows_ = std::max(max_panel_rows_, rows);
    max_panel_entries_ =
        std::max(max_panel_entries_, static_cast<std::size_t>(rows) *
                                         static_cast<std::size_t>(nc));
    if (nc >= 2) stats_.panel_columns += nc;
    stats_.panel_max_width = std::max(stats_.panel_max_width, nc);
  };
  for (Index s = 0; s < nsuper; ++s) {
    super_panel_ptr_[static_cast<std::size_t>(s)] = to_index(panel_ptr_.size());
    const Index lo = super_ptr_[static_cast<std::size_t>(s)];
    const Index hi = super_ptr_[static_cast<std::size_t>(s) + 1];
    Index c0 = lo;
    for (Index j = lo + 1; j < hi; ++j) {
      if (pat_len(j - 1) != pat_len(j) + 1) {
        close_panel(c0, j);
        c0 = j;
      }
    }
    if (hi > lo) close_panel(c0, hi);
  }
  super_panel_ptr_[static_cast<std::size_t>(nsuper)] =
      to_index(panel_ptr_.size());
  stats_.num_panels = to_index(panel_ptr_.size());
  panel_ptr_.push_back(n_);

  // Column → owning panel (the external-update phase groups updaters by
  // panel: a descendant's columns all update the same ancestor rows, so
  // updaters always arrive as whole panels).
  panel_of_.assign(static_cast<std::size_t>(n_), 0);
  for (Index p = 0; p + 1 < to_index(panel_ptr_.size()); ++p) {
    for (Index j = panel_ptr_[static_cast<std::size_t>(p)];
         j < panel_ptr_[static_cast<std::size_t>(p) + 1]; ++j)
      panel_of_[static_cast<std::size_t>(j)] = p;
  }

  // --- Per-panel descendant updaters (symbolic, built once). ------------
  // Every updater k < c0 of a triangle row of panel p arrives as part of
  // a whole descendant panel: all columns of k's panel share one row tail
  // (the pattern of that panel's last column), so either every column
  // updates p or none does. Collect each target's updater panels from the
  // triangle rows' gather-list prefixes (epoch-mark dedupe), sort
  // ascending — panel order is first-column order, i.e. the scalar path's
  // ascending-updater order — and cache the tail split (m, mt) so neither
  // the numeric phase nor the block sweeps recompute it.
  const Index num_panels = stats_.num_panels;
  panel_upd_ptr_.assign(static_cast<std::size_t>(num_panels) + 1, 0);
  panel_upd_.clear();
  std::vector<Index> mark(static_cast<std::size_t>(num_panels), -1);
  std::vector<Index> updaters;
  for (Index p = 0; p < num_panels; ++p) {
    const Index c0 = panel_ptr_[static_cast<std::size_t>(p)];
    const Index c1 = panel_ptr_[static_cast<std::size_t>(p) + 1];
    updaters.clear();
    for (Index j = c0; j < c1; ++j) {
      for (Index q = r_row_ptr_[static_cast<std::size_t>(j)];
           q < r_row_ptr_[static_cast<std::size_t>(j) + 1]; ++q) {
        const Index k = r_col_idx_[static_cast<std::size_t>(q)];
        if (k >= c0) break;  // ascending: the rest are in-panel updaters
        const Index dp = panel_of_[static_cast<std::size_t>(k)];
        if (mark[static_cast<std::size_t>(dp)] != p) {
          mark[static_cast<std::size_t>(dp)] = p;
          updaters.push_back(dp);
        }
      }
    }
    std::sort(updaters.begin(), updaters.end());
    for (const Index dp : updaters) {
      const Index k0 = panel_ptr_[static_cast<std::size_t>(dp)];
      const Index k1 = panel_ptr_[static_cast<std::size_t>(dp) + 1];
      const Index* kl_begin =
          l_row_idx_.data() + l_col_ptr_[static_cast<std::size_t>(k1 - 1)];
      const Index* kl_end =
          l_row_idx_.data() + l_col_ptr_[static_cast<std::size_t>(k1)];
      const Index m =
          to_index(kl_end - std::lower_bound(kl_begin, kl_end, c0));
      const Index* rows = kl_end - m;
      const Index mt = to_index(std::lower_bound(rows, rows + m, c1) - rows);
      panel_upd_.push_back({k0, k1 - k0, m, mt});
    }
    panel_upd_ptr_[static_cast<std::size_t>(p) + 1] =
        to_index(panel_upd_.size());
  }
}

void CholeskySolver::factor_column(const la::CsrMatrix& pa, Index j, Real* w) {
  const auto& rp = pa.row_ptr();
  const auto& ci = pa.col_idx();
  const auto& vv = pa.values();

  // Scatter A's column j (rows ≥ j; by symmetry, row j at columns ≥ j).
  for (Index p = rp[static_cast<std::size_t>(j)];
       p < rp[static_cast<std::size_t>(j) + 1]; ++p) {
    const Index i = ci[static_cast<std::size_t>(p)];
    if (i >= j) w[i] += vv[static_cast<std::size_t>(p)];
  }

  // Left-looking updates from every column k with L(j,k) ≠ 0, in
  // ascending k — the fixed combine order that makes the factor
  // thread-count independent. Column k's rows > j all lie inside column
  // j's pattern, so the scatter stays within entries we reset below.
  for (Index q = r_row_ptr_[static_cast<std::size_t>(j)];
       q < r_row_ptr_[static_cast<std::size_t>(j) + 1]; ++q) {
    const Index k = r_col_idx_[static_cast<std::size_t>(q)];
    const Index p = r_val_pos_[static_cast<std::size_t>(q)];
    const Real ljk = l_values_[static_cast<std::size_t>(p)];
    const Real c = d_[static_cast<std::size_t>(k)] * ljk;
    w[j] -= ljk * c;
    for (Index p2 = p + 1; p2 < l_col_ptr_[static_cast<std::size_t>(k) + 1]; ++p2) {
      w[l_row_idx_[static_cast<std::size_t>(p2)]] -=
          l_values_[static_cast<std::size_t>(p2)] * c;
    }
  }

  const Real dj = w[j];
  w[j] = 0.0;
  if (!(dj > 0.0)) {
    throw NumericalError(
        "CholeskySolver: non-positive pivot at column " +
            std::to_string(perm_[static_cast<std::size_t>(j)]) +
            " — matrix is not positive definite",
        ErrorCode::kNonPositivePivot);
  }
  d_[static_cast<std::size_t>(j)] = dj;
  for (Index p = l_col_ptr_[static_cast<std::size_t>(j)];
       p < l_col_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
    const Index i = l_row_idx_[static_cast<std::size_t>(p)];
    l_values_[static_cast<std::size_t>(p)] = w[i] / dj;
    w[i] = 0.0;
  }
}

void CholeskySolver::run_numeric_phase(const la::CsrMatrix& pa,
                                       Index num_threads) {
  const std::size_t un = static_cast<std::size_t>(n_);
  d_.assign(un, 0.0);

  const Index threads =
      n_ < kSerialCols ? 1 : parallel::resolve_num_threads(num_threads);
  // One workspace per worker slot; each task leaves its scratch zeroed /
  // reset, so any slot can pick up any supernode.
  std::vector<PanelWorkspace> scratch(static_cast<std::size_t>(threads));
  const bool panels = kernel_ == FactorKernel::kSupernodal;
  for (auto& ws : scratch) {
    ws.column.assign(un, 0.0);
    if (panels) {
      ws.panel.assign(max_panel_entries_, 0.0);
      // Two coefficient slabs: the paired-column external kernel keeps
      // d·tail coefficients for both target columns of a pair.
      ws.cvec.assign(static_cast<std::size_t>(stats_.panel_max_width) * 2, 0.0);
      ws.map.assign(un, 0);
      ws.lrow.assign(static_cast<std::size_t>(max_panel_rows_), 0);
      ws.tails.assign(static_cast<std::size_t>(stats_.panel_max_width),
                      nullptr);
    }
  }

  const Index num_levels = to_index(level_ptr_.size()) - 1;
  for (Index l = 0; l < num_levels; ++l) {
    const Index lo = level_ptr_[static_cast<std::size_t>(l)];
    const Index hi = level_ptr_[static_cast<std::size_t>(l) + 1];
    const auto run_supers = [&](Index slo, Index shi, Index slot) {
      PanelWorkspace& ws = scratch[static_cast<std::size_t>(slot)];
      for (Index si = slo; si < shi; ++si) {
        const Index s = level_supers_[static_cast<std::size_t>(si)];
        if (!panels) {
          for (Index j = super_ptr_[static_cast<std::size_t>(s)];
               j < super_ptr_[static_cast<std::size_t>(s) + 1]; ++j) {
            factor_column(pa, j, ws.column.data());
          }
          continue;
        }
        // Panels of the block in ascending column order; width-1 panels
        // run the scalar column kernel (a 1-wide "dense" panel is just a
        // CSC column — the batched gather would only add copies).
        for (Index p = super_panel_ptr_[static_cast<std::size_t>(s)];
             p < super_panel_ptr_[static_cast<std::size_t>(s) + 1]; ++p) {
          if (panel_ptr_[static_cast<std::size_t>(p) + 1] -
                  panel_ptr_[static_cast<std::size_t>(p)] == 1) {
            factor_column(pa, panel_ptr_[static_cast<std::size_t>(p)],
                          ws.column.data());
          } else {
            factor_panel(pa, p, ws);
          }
        }
      }
    };
    if (threads == 1 || hi - lo == 1) {
      run_supers(lo, hi, 0);
    } else {
      parallel::parallel_for_slots(lo, hi, threads, run_supers);
    }
  }
}

void CholeskySolver::factor_panel(const la::CsrMatrix& pa, Index p,
                                  PanelWorkspace& ws) {
  const Index c0 = panel_ptr_[static_cast<std::size_t>(p)];
  const Index c1 = panel_ptr_[static_cast<std::size_t>(p) + 1];
  const Index nc = c1 - c0;
  // Panel rows: the nc triangle rows c0..c1−1, then the shared below-
  // diagonal row set = pattern of the LAST column (ascending, already
  // materialized as that column's CSC row list).
  const Index below_begin = l_col_ptr_[static_cast<std::size_t>(c1 - 1)];
  const Index nb = l_col_ptr_[static_cast<std::size_t>(c1)] - below_begin;
  const Index* below = l_row_idx_.data() + below_begin;
  const Index total_rows = nc + nb;
  // COLUMN-major panel (stride = total_rows): every update, the in-panel
  // factorization, and the CSC scatter walk one column at a time, so the
  // hot loops touch a single contiguous ≤ total_rows·8-byte span (L1)
  // instead of striding a cache line per element across the panel.
  const std::size_t str = static_cast<std::size_t>(total_rows);
  Real* SGL_RESTRICT panel = ws.panel.data();

  // Zero the slots this panel uses, map the below rows, and scatter A's
  // columns (rows ≥ the column index — the same per-element init as the
  // scalar path; entries land in CSR order).
  std::fill(panel, panel + static_cast<std::size_t>(nc) * str, 0.0);
  for (Index m = 0; m < nb; ++m)
    ws.map[static_cast<std::size_t>(below[m])] = nc + m;
  const auto local_row = [&](Index i) {
    return i < c1 ? i - c0 : ws.map[static_cast<std::size_t>(i)];
  };
  const auto& rp = pa.row_ptr();
  const auto& ci = pa.col_idx();
  const auto& vv = pa.values();
  for (Index j = c0; j < c1; ++j) {
    for (Index q = rp[static_cast<std::size_t>(j)];
         q < rp[static_cast<std::size_t>(j) + 1]; ++q) {
      const Index i = ci[static_cast<std::size_t>(q)];
      if (i < j) continue;
      panel[static_cast<std::size_t>(j - c0) * str +
            static_cast<std::size_t>(local_row(i))] +=
          vv[static_cast<std::size_t>(q)];
    }
  }

  // --- External updates, one descendant panel at a time. ----------------
  // The updater panels (ascending — the scalar path's ascending-updater
  // order) and their tail splits come precomputed from the symbolic
  // phase (panel_upd_). For one descendant panel D (columns [k0, k0+w)):
  // the entries of every column of D with row ≥ c0 are the LAST m entries
  // of that column (row lists ascending, shared tail), with shared row
  // list R. Its update touches exactly rows R × columns
  // {R[p] − c0 : R[p] < c1}:
  //   L(R[q], c0+jj) −= Σ_kk L(R[q], k0+kk) · (d_{k0+kk} · L(R[p], k0+kk))
  // — the scalar per-element terms, ascending kk inside D and ascending
  // D outside, with the scalar's c = d_k·l_jk association. The column
  // tails are read in place from factor storage (contiguous, no gather);
  // only the m panel-row slots are mapped, once per descendant.
  Index* SGL_RESTRICT lrow = ws.lrow.data();
  const Real** tails = ws.tails.data();
  Real* SGL_RESTRICT cvec = ws.cvec.data();
  for (Index di = panel_upd_ptr_[static_cast<std::size_t>(p)];
       di < panel_upd_ptr_[static_cast<std::size_t>(p) + 1]; ++di) {
    const PanelUpdater& rec = panel_upd_[static_cast<std::size_t>(di)];
    const Index k0 = rec.k0;
    const Index w = rec.w;
    const Index m = rec.m;
    const Index mt = rec.mt;
    const Index* SGL_RESTRICT rows =
        l_row_idx_.data() + l_col_ptr_[static_cast<std::size_t>(k0 + w)] - m;
    // Local panel-row slots of the shared tail, resolved once per
    // descendant; the kernels index inside one panel column with them.
    for (Index q = 0; q < m; ++q) lrow[q] = local_row(rows[q]);
    for (Index kk = 0; kk < w; ++kk) {
      tails[kk] = l_values_.data() +
                  l_col_ptr_[static_cast<std::size_t>(k0 + kk) + 1] - m;
    }

    if (w == 1) {
      // Width-1 descendant: one term per element, applied to target
      // columns in pairs so each tail value loads once for two columns —
      // distinct panel slots per column, so no element's single term
      // changes. Both streams are small contiguous ranges.
      const Real* SGL_RESTRICT tail = tails[0];
      const Real dk = d_[static_cast<std::size_t>(k0)];
      Index pcol = 0;
      for (; pcol + 1 < mt; pcol += 2) {
        Real* SGL_RESTRICT col_a =
            panel + static_cast<std::size_t>(rows[pcol] - c0) * str;
        Real* SGL_RESTRICT col_b =
            panel + static_cast<std::size_t>(rows[pcol + 1] - c0) * str;
        const Real ca = dk * tail[pcol];
        const Real cb = dk * tail[pcol + 1];
        col_a[static_cast<std::size_t>(lrow[pcol])] -= tail[pcol] * ca;
        for (Index q = pcol + 1; q < m; ++q) {
          const Real tq = tail[q];
          const std::size_t slot = static_cast<std::size_t>(lrow[q]);
          col_a[slot] -= tq * ca;
          col_b[slot] -= tq * cb;
        }
      }
      for (; pcol < mt; ++pcol) {
        Real* SGL_RESTRICT col =
            panel + static_cast<std::size_t>(rows[pcol] - c0) * str;
        const Real c = dk * tail[pcol];
        for (Index q = pcol; q < m; ++q)
          col[static_cast<std::size_t>(lrow[q])] -= tail[q] * c;
      }
      continue;
    }

    // Target columns in PAIRS: one pass over the shared tail rows feeds
    // two columns, halving the tail re-streaming (each tk[t] load does
    // two multiplies). Every element still gets its own accumulator with
    // terms subtracted in ascending kk — pairing touches only distinct
    // panel slots (distinct columns), so no element's term sequence or
    // association changes: bitwise identical to the one-column pass.
    Real* SGL_RESTRICT cvec2 = cvec + stats_.panel_max_width;
    Index pcol = 0;
    for (; pcol + 1 < mt; pcol += 2) {
      Real* SGL_RESTRICT base_a =
          panel + static_cast<std::size_t>(rows[pcol] - c0) * str;
      Real* SGL_RESTRICT base_b =
          panel + static_cast<std::size_t>(rows[pcol + 1] - c0) * str;
      for (Index kk = 0; kk < w; ++kk) {
        const Real dk = d_[static_cast<std::size_t>(k0 + kk)];
        cvec[kk] = dk * tails[kk][pcol];
        cvec2[kk] = dk * tails[kk][pcol + 1];
      }
      // The pair's joint row range starts at pcol+1; the first column's
      // lone leading element (q == pcol) is finished scalar first.
      {
        Real acc = base_a[static_cast<std::size_t>(lrow[pcol])];
        for (Index kk = 0; kk < w; ++kk) acc -= tails[kk][pcol] * cvec[kk];
        base_a[static_cast<std::size_t>(lrow[pcol])] = acc;
      }
      const auto pair_pass = [&]<int T>(Index q0) {
        Real acc_a[T];
        Real acc_b[T];
        for (int t = 0; t < T; ++t) {
          const std::size_t slot = static_cast<std::size_t>(lrow[q0 + t]);
          acc_a[t] = base_a[slot];
          acc_b[t] = base_b[slot];
        }
        for (Index kk = 0; kk < w; ++kk) {
          const Real* SGL_RESTRICT tk = tails[kk] + q0;
          const Real ca = cvec[kk];
          const Real cb = cvec2[kk];
          for (int t = 0; t < T; ++t) {
            const Real tv = tk[t];
            acc_a[t] -= tv * ca;
            acc_b[t] -= tv * cb;
          }
        }
        for (int t = 0; t < T; ++t) {
          const std::size_t slot = static_cast<std::size_t>(lrow[q0 + t]);
          base_a[slot] = acc_a[t];
          base_b[slot] = acc_b[t];
        }
      };
      Index q0 = pcol + 1;
      while (q0 < m) {
        const Index left = m - q0;
        if (left >= 8) {
          pair_pass.operator()<8>(q0);
          q0 += 8;
        } else if (left >= 4) {
          pair_pass.operator()<4>(q0);
          q0 += 4;
        } else if (left >= 2) {
          pair_pass.operator()<2>(q0);
          q0 += 2;
        } else {
          pair_pass.operator()<1>(q0);
          q0 += 1;
        }
      }
    }
    for (; pcol < mt; ++pcol) {
      Real* SGL_RESTRICT pcol_base =
          panel + static_cast<std::size_t>(rows[pcol] - c0) * str;
      for (Index kk = 0; kk < w; ++kk)
        cvec[kk] = d_[static_cast<std::size_t>(k0 + kk)] * tails[kk][pcol];
      // Register-blocked rank-w update of column jj over rows q ≥ pcol,
      // tiled with compile-time widths (the la::spmm idiom). The tail
      // reads stream contiguously; the panel slots are gathered through
      // lrow. Per element, terms are subtracted in ascending kk.
      const auto kernel_pass = [&]<int T>(Index q0) {
        Real acc[T];
        for (int t = 0; t < T; ++t)
          acc[t] = pcol_base[static_cast<std::size_t>(lrow[q0 + t])];
        for (Index kk = 0; kk < w; ++kk) {
          const Real* SGL_RESTRICT tk = tails[kk] + q0;
          const Real c = cvec[kk];
          for (int t = 0; t < T; ++t) acc[t] -= tk[t] * c;
        }
        for (int t = 0; t < T; ++t)
          pcol_base[static_cast<std::size_t>(lrow[q0 + t])] = acc[t];
      };
      Index q0 = pcol;
      while (q0 < m) {
        const Index left = m - q0;
        if (left >= 8) {
          kernel_pass.operator()<8>(q0);
          q0 += 8;
        } else if (left >= 4) {
          kernel_pass.operator()<4>(q0);
          q0 += 4;
        } else if (left >= 2) {
          kernel_pass.operator()<2>(q0);
          q0 += 2;
        } else {
          kernel_pass.operator()<1>(q0);
          q0 += 1;
        }
      }
    }
  }

  // --- Right-looking in-panel factorization. ----------------------------
  // Finalizing column kk then pushing its rank-1 update onto the trailing
  // columns subtracts, for every element, its in-panel terms in ascending
  // k — after all external terms, which is exactly the scalar left-
  // looking order (external updaters are all < c0 < in-panel updaters).
  for (Index kk = 0; kk < nc; ++kk) {
    Real* SGL_RESTRICT colk = panel + static_cast<std::size_t>(kk) * str;
    const Real dj = colk[static_cast<std::size_t>(kk)];
    if (!(dj > 0.0)) {
      // Same failure point and message as the scalar path. Scatter the
      // finished columns first so the partially-written factor matches
      // the scalar path's partial state exactly.
      for (Index jj = 0; jj < kk; ++jj) {
        const Index j = c0 + jj;
        Real* dst = l_values_.data() + l_col_ptr_[static_cast<std::size_t>(j)];
        const Real* src = panel + static_cast<std::size_t>(jj) * str;
        for (Index r = jj + 1; r < total_rows; ++r)
          *dst++ = src[static_cast<std::size_t>(r)];
      }
      throw NumericalError(
          "CholeskySolver: non-positive pivot at column " +
              std::to_string(perm_[static_cast<std::size_t>(c0 + kk)]) +
              " — matrix is not positive definite",
          ErrorCode::kNonPositivePivot);
    }
    d_[static_cast<std::size_t>(c0 + kk)] = dj;
    for (Index r = kk + 1; r < total_rows; ++r)
      colk[static_cast<std::size_t>(r)] /= dj;
    for (Index jj = kk + 1; jj < nc; ++jj)
      cvec[jj] = dj * colk[static_cast<std::size_t>(jj)];
    // Rank-1 trailing update, column at a time: both the multiplier
    // stream (column kk) and the target column are contiguous. Each
    // element takes exactly one term per kk, so the per-element order
    // over ascending kk — and the association — is the scalar's.
    for (Index jj = kk + 1; jj < nc; ++jj) {
      Real* SGL_RESTRICT colj = panel + static_cast<std::size_t>(jj) * str;
      const Real c = cvec[jj];
      for (Index r = jj; r < total_rows; ++r)
        colj[static_cast<std::size_t>(r)] -= colk[static_cast<std::size_t>(r)] * c;
    }
  }

  // Scatter the finished panel into the CSC factor (column patterns are
  // triangle rows then the shared below rows — both ascending, matching
  // the CSC row order, so each column is one contiguous copy).
  for (Index jj = 0; jj < nc; ++jj) {
    const Index j = c0 + jj;
    Real* dst = l_values_.data() + l_col_ptr_[static_cast<std::size_t>(j)];
    const Real* src = panel + static_cast<std::size_t>(jj) * str;
    for (Index r = jj + 1; r < total_rows; ++r)
      *dst++ = src[static_cast<std::size_t>(r)];
  }
}

void CholeskySolver::factorize(const la::CsrMatrix& pa, Index num_threads) {
  run_numeric_phase(pa, num_threads);

  // Contiguous row-major value mirror so the forward sweeps stream
  // instead of chasing r_val_pos_ indirections. The position map is only
  // needed during the numeric phase, so its memory (one Index per factor
  // nonzero) is released rather than carried for the solver's lifetime
  // (refactorize rebuilds it on demand).
  r_values_.resize(l_values_.size());
  for (std::size_t q = 0; q < r_values_.size(); ++q)
    r_values_[q] = l_values_[static_cast<std::size_t>(r_val_pos_[q])];
  std::vector<Index>().swap(r_val_pos_);
}

void CholeskySolver::rebuild_row_positions() {
  // Same fill loop as analyze(): ascending columns give each row its
  // entries in ascending column order, matching r_col_idx_ exactly.
  r_val_pos_.resize(l_row_idx_.size());
  std::vector<Index> row_next(r_row_ptr_.begin(), r_row_ptr_.end() - 1);
  for (Index j = 0; j < n_; ++j) {
    for (Index p = l_col_ptr_[static_cast<std::size_t>(j)];
         p < l_col_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      const Index i = l_row_idx_[static_cast<std::size_t>(p)];
      r_val_pos_[static_cast<std::size_t>(
          row_next[static_cast<std::size_t>(i)]++)] = p;
    }
  }
}

void CholeskySolver::ensure_update_support() {
  if (!csc_to_row_.empty() || l_row_idx_.empty()) return;
  // Inverse of r_val_pos_ (p → q): lets update_edge refresh the streamed
  // row-mirror values in place for each CSC entry it touches.
  csc_to_row_.resize(l_row_idx_.size());
  std::vector<Index> row_next(r_row_ptr_.begin(), r_row_ptr_.end() - 1);
  for (Index j = 0; j < n_; ++j) {
    for (Index p = l_col_ptr_[static_cast<std::size_t>(j)];
         p < l_col_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      const Index i = l_row_idx_[static_cast<std::size_t>(p)];
      csc_to_row_[static_cast<std::size_t>(p)] =
          row_next[static_cast<std::size_t>(i)]++;
    }
  }
}

bool CholeskySolver::edge_in_pattern(Index u, Index v) const {
  SGL_EXPECTS(u >= 0 && u < n_, "edge_in_pattern: u out of range");
  if (v == kInvalidIndex) return true;  // diagonal stamp: no off-diagonal
  SGL_EXPECTS(v >= 0 && v < n_ && v != u, "edge_in_pattern: bad v");
  Index a = inv_perm_[static_cast<std::size_t>(u)];
  Index b = inv_perm_[static_cast<std::size_t>(v)];
  if (a > b) std::swap(a, b);
  // By the etree containment invariant pattern(L_{:,j}) \ {parent(j)} ⊆
  // pattern(L_{:,parent(j)}), L(b,a) ≠ 0 structurally implies the whole
  // update path from a toward the root stays inside the pattern.
  const auto begin = l_row_idx_.begin() + l_col_ptr_[static_cast<std::size_t>(a)];
  const auto end = l_row_idx_.begin() + l_col_ptr_[static_cast<std::size_t>(a) + 1];
  return std::binary_search(begin, end, b);
}

bool CholeskySolver::rank1_pass(Index j0, Real sigma, bool commit,
                                std::vector<Real>& work,
                                std::vector<Index>& touched) {
  // Bennett/Gill-style rank-1 LDLᵀ modification restricted to the etree
  // path: Ā = LDLᵀ + σ x xᵀ with x scattered in `work`. Every iterate
  // uses OLD L values to advance the x-vector and writes NEW L values
  // from it, so the non-commit pass can run the identical float sequence
  // against a scratch copy of nothing but the path values.
  Real alpha = 1.0;
  bool ok = true;
  for (Index j = j0; j != kInvalidIndex;
       j = parent_[static_cast<std::size_t>(j)]) {
    const Real p = work[static_cast<std::size_t>(j)];
    if (p == 0.0) continue;
    work[static_cast<std::size_t>(j)] = 0.0;
    const Real dj = d_[static_cast<std::size_t>(j)];
    const Real d_new = dj + sigma * alpha * p * p;
    // An update (σ = +1) keeps every pivot positive; a downdate that makes
    // the matrix exactly singular leaves only cancellation residue in the
    // pivot — a few ulps of d_j of either sign — so downdates use a
    // relative floor instead of a sign test.
    const Real pivot_floor = sigma < 0.0 ? dj * kDowndatePivotFloor : 0.0;
    if (!(d_new > pivot_floor)) {
      ok = false;
      break;
    }
    const Real beta = sigma * alpha * p / d_new;
    alpha = alpha * dj / d_new;
    if (commit) d_[static_cast<std::size_t>(j)] = d_new;
    for (Index q = l_col_ptr_[static_cast<std::size_t>(j)];
         q < l_col_ptr_[static_cast<std::size_t>(j) + 1]; ++q) {
      const Index i = l_row_idx_[static_cast<std::size_t>(q)];
      const Real lij = l_values_[static_cast<std::size_t>(q)];
      const Real wi = work[static_cast<std::size_t>(i)] - p * lij;
      work[static_cast<std::size_t>(i)] = wi;
      touched.push_back(i);
      if (commit) {
        const Real l_new = lij + beta * wi;
        l_values_[static_cast<std::size_t>(q)] = l_new;
        r_values_[static_cast<std::size_t>(
            csc_to_row_[static_cast<std::size_t>(q)])] = l_new;
      }
    }
  }
  // Reset the scratch to all-zero for the next pass/caller. `touched` may
  // hold duplicates; zeroing twice is harmless.
  for (const Index i : touched) work[static_cast<std::size_t>(i)] = 0.0;
  touched.clear();
  return ok;
}

void CholeskySolver::update_edge(Index u, Index v, Real w) {
  SGL_EXPECTS(w != 0.0, "update_edge: zero weight");
  SGL_EXPECTS(u >= 0 && u < n_, "update_edge: u out of range");
  SGL_EXPECTS(v == kInvalidIndex || (v >= 0 && v < n_ && v != u),
              "update_edge: bad v");
  SGL_EXPECTS(edge_in_pattern(u, v),
              "update_edge: edge outside the analyzed factor pattern");
  ensure_update_support();

  const Real sigma = w > 0.0 ? 1.0 : -1.0;
  const Real scale = std::sqrt(std::abs(w));
  const Index a = inv_perm_[static_cast<std::size_t>(u)];
  const Index b =
      v == kInvalidIndex ? kInvalidIndex : inv_perm_[static_cast<std::size_t>(v)];

  std::vector<Real> work(static_cast<std::size_t>(n_), 0.0);
  std::vector<Index> touched;
  const auto scatter = [&] {
    work[static_cast<std::size_t>(a)] = scale;
    touched.push_back(a);
    if (b != kInvalidIndex) {
      work[static_cast<std::size_t>(b)] = -scale;
      touched.push_back(b);
    }
  };
  const Index j0 = (b != kInvalidIndex && b < a) ? b : a;

  if (sigma < 0.0) {
    // Downdates can drive a pivot non-positive mid-path; validate the
    // whole path first so a failure never leaves a half-updated factor.
    scatter();
    if (!rank1_pass(j0, sigma, /*commit=*/false, work, touched)) {
      throw NumericalError(
          "CholeskySolver::update_edge: downdate at edge (" +
              std::to_string(u) + ", " + std::to_string(v) +
              ") makes the matrix non-positive-definite — factor unchanged",
          ErrorCode::kNonPositivePivot);
    }
  }
  scatter();
  const bool committed = rank1_pass(j0, sigma, /*commit=*/true, work, touched);
  SGL_ASSERT(committed,
             "update_edge: commit pass diverged from validation pass");
  static_cast<void>(committed);
  ++stats_.updates_applied;
}

void CholeskySolver::refactorize(const la::CsrMatrix& a, Index num_threads) {
  SGL_EXPECTS(a.rows() == n_ && a.cols() == n_,
              "CholeskySolver::refactorize: size mismatch");
  const WallTimer timer;
  const la::CsrMatrix pa = permute_symmetric(a, perm_);

  // Pattern containment check: every subdiagonal entry of the permuted
  // input must lie inside the analyzed factor pattern, otherwise
  // factor_column's scatter would leak outside the scratch reset range.
  for (Index j = 0; j < n_; ++j) {
    const auto begin =
        l_row_idx_.begin() + l_col_ptr_[static_cast<std::size_t>(j)];
    const auto end =
        l_row_idx_.begin() + l_col_ptr_[static_cast<std::size_t>(j) + 1];
    for (Index p = pa.row_ptr()[static_cast<std::size_t>(j)];
         p < pa.row_ptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      const Index i = pa.col_idx()[static_cast<std::size_t>(p)];
      if (i <= j) continue;  // upper entries mirror subdiagonal columns
      SGL_EXPECTS(std::binary_search(begin, end, i),
                  "CholeskySolver::refactorize: input pattern outside the "
                  "analyzed factor pattern — a full analysis is required");
    }
  }

  stats_.input_nnz = a.nnz();
  if (r_val_pos_.empty()) rebuild_row_positions();
  run_numeric_phase(pa, num_threads);
  r_values_.resize(l_values_.size());
  for (std::size_t q = 0; q < r_values_.size(); ++q)
    r_values_[q] = l_values_[static_cast<std::size_t>(r_val_pos_[q])];
  std::vector<Index>().swap(r_val_pos_);
  ++stats_.refactorizations;
  stats_.factor_seconds = timer.seconds();
}

void CholeskySolver::solve_in_place(la::Vector& x) const {
  SGL_EXPECTS(to_index(x.size()) == n_, "CholeskySolver::solve: size mismatch");
  // Permute, forward solve L y = b (row gather, ascending columns — the
  // same per-element order as the block sweep), diagonal scale, back
  // solve Lᵀ x = y (column gather), un-permute.
  la::Vector b(static_cast<std::size_t>(n_));
  for (Index i = 0; i < n_; ++i)
    b[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])];

  for (Index i = 0; i < n_; ++i) {
    Real acc = b[static_cast<std::size_t>(i)];
    for (Index q = r_row_ptr_[static_cast<std::size_t>(i)];
         q < r_row_ptr_[static_cast<std::size_t>(i) + 1]; ++q) {
      acc -= r_values_[static_cast<std::size_t>(q)] *
             b[static_cast<std::size_t>(r_col_idx_[static_cast<std::size_t>(q)])];
    }
    b[static_cast<std::size_t>(i)] = acc;
  }
  for (Index j = 0; j < n_; ++j) b[static_cast<std::size_t>(j)] /= d_[static_cast<std::size_t>(j)];
  for (Index j = n_ - 1; j >= 0; --j) {
    Real acc = b[static_cast<std::size_t>(j)];
    for (Index p = l_col_ptr_[static_cast<std::size_t>(j)];
         p < l_col_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      acc -= l_values_[static_cast<std::size_t>(p)] *
             b[static_cast<std::size_t>(l_row_idx_[static_cast<std::size_t>(p)])];
    }
    b[static_cast<std::size_t>(j)] = acc;
  }

  for (Index i = 0; i < n_; ++i)
    x[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])] = b[static_cast<std::size_t>(i)];
}

la::Vector CholeskySolver::solve(const la::Vector& b) const {
  la::Vector x = b;
  solve_in_place(x);
  return x;
}

template <int TILE>
void CholeskySolver::solve_block_tile(la::BlockView x, Index col0,
                                      Index num_threads, la::Storage& w) const {
  constexpr std::size_t sb = static_cast<std::size_t>(TILE);
  // How many gather entries ahead of the FMA stream to issue strip
  // prefetches. The index stream is available well before the data is
  // needed, so a short fixed distance hides most of the L2 latency of
  // the scattered strip loads without thrashing L1.
  constexpr Index kPrefetchAhead = 8;
  const Index threads =
      n_ < kSerialCols ? 1 : parallel::resolve_num_threads(num_threads);
  const bool panels = kernel_ == FactorKernel::kSupernodal;
  // Last valid slot of the gather index arrays (r_col_idx_ and
  // l_row_idx_ are both factor_nnz long): prefetch indices are clamped
  // here so lookahead never reads past the arrays.
  const Index qmax =
      l_row_idx_.empty() ? 0 : to_index(l_row_idx_.size()) - 1;

  // Row-major scratch (64-byte aligned la::Storage): the TILE right-hand-
  // side values of one (permuted) row sit contiguously, so every gathered
  // factor entry touches one strip; the compile-time tile width keeps the
  // strip updates in registers and vectorized.
  w.resize(static_cast<std::size_t>(n_) * sb);
  parallel::parallel_for(0, n_, threads, [&](Index i) {
    Real* dst = w.data() + static_cast<std::size_t>(i) * sb;
    const Index src = perm_[static_cast<std::size_t>(i)];
    for (int c = 0; c < TILE; ++c) dst[c] = x.at(src, col0 + c);
  });

  // Both sweeps apply, for every output element, the same terms in the
  // same fixed order as the scalar path, so scheduling never changes a
  // bit. Within a level the blocks touch disjoint rows; across levels
  // the level loop is the barrier. Under the supernodal kernel the
  // sweeps route through the panels (DESIGN.md §9): each gather list
  // splits at the panel boundary into a scattered external part —
  // software-prefetched kPrefetchAhead entries ahead — and a dense
  // in-panel segment whose strips are CONTIGUOUS in the scratch, so the
  // segment streams pointer-incremented cache lines with no index
  // loads. Per element the terms still arrive in the scalar order on a
  // single register accumulator chain — bitwise identical.
  const Index num_levels = to_index(level_ptr_.size()) - 1;
  // Forward: L Y = B, levels ascending, block columns ascending.
  for (Index l = 0; l < num_levels; ++l) {
    const Index lo = level_ptr_[static_cast<std::size_t>(l)];
    const Index hi = level_ptr_[static_cast<std::size_t>(l) + 1];
    const auto sweep = [&](Index slo, Index shi, Index /*slot*/) {
      for (Index si = slo; si < shi; ++si) {
        const Index s = level_supers_[static_cast<std::size_t>(si)];
        if (panels) {
          for (Index p = super_panel_ptr_[static_cast<std::size_t>(s)];
               p < super_panel_ptr_[static_cast<std::size_t>(s) + 1]; ++p) {
            const Index c0 = panel_ptr_[static_cast<std::size_t>(p)];
            const Index c1 = panel_ptr_[static_cast<std::size_t>(p) + 1];
            for (Index i = c0; i < c1; ++i) {
              Real* SGL_RESTRICT wi =
                  w.data() + static_cast<std::size_t>(i) * sb;
              Real acc[TILE];
              for (int c = 0; c < TILE; ++c) acc[c] = wi[c];
              // Row i's ascending gather list ends with its dense
              // in-panel segment (columns c0..i−1 — the fundamental-
              // panel pattern), so the scattered external gathers stop
              // at qsplit and the tail streams contiguous strips with
              // no index loads. Same terms, same order, same single
              // accumulator chain as the scalar path — bitwise equal.
              const Index dense = i - c0;
              const Index qsplit =
                  r_row_ptr_[static_cast<std::size_t>(i) + 1] - dense;
              for (Index q = r_row_ptr_[static_cast<std::size_t>(i)];
                   q < qsplit; ++q) {
                const Index qq =
                    q + kPrefetchAhead < qmax ? q + kPrefetchAhead : qmax;
                SGL_PREFETCH(
                    w.data() +
                    static_cast<std::size_t>(
                        r_col_idx_[static_cast<std::size_t>(qq)]) *
                        sb);
                const Real v = r_values_[static_cast<std::size_t>(q)];
                const Real* wk =
                    w.data() +
                    static_cast<std::size_t>(
                        r_col_idx_[static_cast<std::size_t>(q)]) *
                        sb;
                for (int c = 0; c < TILE; ++c) acc[c] -= v * wk[c];
              }
              const Real* SGL_RESTRICT rv =
                  r_values_.data() + static_cast<std::size_t>(qsplit);
              const Real* SGL_RESTRICT ws =
                  w.data() + static_cast<std::size_t>(c0) * sb;
              for (Index t = 0; t < dense; ++t) {
                const Real v = rv[t];
                const Real* wk = ws + static_cast<std::size_t>(t) * sb;
                for (int c = 0; c < TILE; ++c) acc[c] -= v * wk[c];
              }
              for (int c = 0; c < TILE; ++c) wi[c] = acc[c];
            }
          }
          continue;
        }
        for (Index i = super_ptr_[static_cast<std::size_t>(s)];
             i < super_ptr_[static_cast<std::size_t>(s) + 1]; ++i) {
          Real* SGL_RESTRICT wi = w.data() + static_cast<std::size_t>(i) * sb;
          for (Index q = r_row_ptr_[static_cast<std::size_t>(i)];
               q < r_row_ptr_[static_cast<std::size_t>(i) + 1]; ++q) {
            const Real v = r_values_[static_cast<std::size_t>(q)];
            const Real* wk =
                w.data() +
                static_cast<std::size_t>(r_col_idx_[static_cast<std::size_t>(q)]) * sb;
            for (int c = 0; c < TILE; ++c) wi[c] -= v * wk[c];
          }
        }
      }
    };
    if (threads == 1 || hi - lo == 1) {
      sweep(lo, hi, 0);
    } else {
      parallel::parallel_for_slots(lo, hi, threads, sweep);
    }
  }

  // Diagonal: D Z = Y. Divides (not multiply-by-reciprocal) to stay
  // bitwise equal to the scalar path.
  parallel::parallel_for(0, n_, threads, [&](Index i) {
    Real* wi = w.data() + static_cast<std::size_t>(i) * sb;
    const Real dv = d_[static_cast<std::size_t>(i)];
    for (int c = 0; c < TILE; ++c) wi[c] /= dv;
  });

  // Backward: Lᵀ X = Z, levels descending, block columns descending
  // (ancestors inside a block come later in column order).
  for (Index l = num_levels - 1; l >= 0; --l) {
    const Index lo = level_ptr_[static_cast<std::size_t>(l)];
    const Index hi = level_ptr_[static_cast<std::size_t>(l) + 1];
    const auto sweep = [&](Index slo, Index shi, Index /*slot*/) {
      for (Index si = slo; si < shi; ++si) {
        const Index s = level_supers_[static_cast<std::size_t>(si)];
        if (panels) {
          // Panels descending; inside one, columns descending. A
          // column's CSC gather splits at the panel boundary: the dense
          // triangle prefix (rows j+1..c1−1, just-finalized CONTIGUOUS
          // strips — streamed with no index loads) and the shared below
          // tail (scattered gathers, prefetched ahead). The term
          // sequence per column is the CSC gather order — triangle rows
          // ascending, then below rows ascending — exactly the
          // scalar's, on the same accumulator chain.
          for (Index p = super_panel_ptr_[static_cast<std::size_t>(s) + 1] - 1;
               p >= super_panel_ptr_[static_cast<std::size_t>(s)]; --p) {
            const Index c0 = panel_ptr_[static_cast<std::size_t>(p)];
            const Index c1 = panel_ptr_[static_cast<std::size_t>(p) + 1];
            for (Index j = c1 - 1; j >= c0; --j) {
              Real* SGL_RESTRICT wj =
                  w.data() + static_cast<std::size_t>(j) * sb;
              Real acc[TILE];
              for (int c = 0; c < TILE; ++c) acc[c] = wj[c];
              const Real* SGL_RESTRICT lv =
                  l_values_.data() +
                  static_cast<std::size_t>(
                      l_col_ptr_[static_cast<std::size_t>(j)]);
              const Index tri = c1 - 1 - j;
              const Real* SGL_RESTRICT wt =
                  w.data() + static_cast<std::size_t>(j + 1) * sb;
              for (Index r = 0; r < tri; ++r) {
                const Real v = lv[r];
                for (int c = 0; c < TILE; ++c)
                  acc[c] -= v * wt[static_cast<std::size_t>(r) * sb + c];
              }
              const Index qb = l_col_ptr_[static_cast<std::size_t>(j)] + tri;
              const Index qe = l_col_ptr_[static_cast<std::size_t>(j) + 1];
              for (Index q = qb; q < qe; ++q) {
                const Index qq =
                    q + kPrefetchAhead < qmax ? q + kPrefetchAhead : qmax;
                SGL_PREFETCH(
                    w.data() +
                    static_cast<std::size_t>(
                        l_row_idx_[static_cast<std::size_t>(qq)]) *
                        sb);
                const Real v = l_values_[static_cast<std::size_t>(q)];
                const Real* wi =
                    w.data() +
                    static_cast<std::size_t>(
                        l_row_idx_[static_cast<std::size_t>(q)]) *
                        sb;
                for (int c = 0; c < TILE; ++c) acc[c] -= v * wi[c];
              }
              for (int c = 0; c < TILE; ++c) wj[c] = acc[c];
            }
          }
          continue;
        }
        for (Index j = super_ptr_[static_cast<std::size_t>(s) + 1] - 1;
             j >= super_ptr_[static_cast<std::size_t>(s)]; --j) {
          Real* SGL_RESTRICT wj = w.data() + static_cast<std::size_t>(j) * sb;
          for (Index p = l_col_ptr_[static_cast<std::size_t>(j)];
               p < l_col_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
            const Real v = l_values_[static_cast<std::size_t>(p)];
            const Real* wi =
                w.data() +
                static_cast<std::size_t>(l_row_idx_[static_cast<std::size_t>(p)]) * sb;
            for (int c = 0; c < TILE; ++c) wj[c] -= v * wi[c];
          }
        }
      }
    };
    if (threads == 1 || hi - lo == 1) {
      sweep(lo, hi, 0);
    } else {
      parallel::parallel_for_slots(lo, hi, threads, sweep);
    }
  }

  parallel::parallel_for(0, n_, threads, [&](Index i) {
    const Real* src = w.data() + static_cast<std::size_t>(i) * sb;
    const Index dst = perm_[static_cast<std::size_t>(i)];
    for (int c = 0; c < TILE; ++c) x.at(dst, col0 + c) = src[c];
  });
}

void CholeskySolver::solve_in_place_block(la::BlockView x,
                                          Index num_threads) const {
  SGL_EXPECTS(x.rows == n_, "CholeskySolver::solve_in_place_block: size mismatch");
  if (x.cols == 0 || n_ == 0) return;
  // Tile dispatch (8, then 4/2/1 tails — the spmm group pattern): each
  // tile streams the factor once per sweep with a compile-time-width
  // inner loop. Columns never interact, so tiling cannot change a bit.
  la::Storage w;
  Index g0 = 0;
  while (g0 < x.cols) {
    const Index left = x.cols - g0;
    if (left >= 8) {
      solve_block_tile<8>(x, g0, num_threads, w);
      g0 += 8;
    } else if (left >= 4) {
      solve_block_tile<4>(x, g0, num_threads, w);
      g0 += 4;
    } else if (left >= 2) {
      solve_block_tile<2>(x, g0, num_threads, w);
      g0 += 2;
    } else {
      solve_block_tile<1>(x, g0, num_threads, w);
      g0 += 1;
    }
  }
}

}  // namespace sgl::solver
