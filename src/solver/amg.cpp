#include "solver/amg.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "la/dense_solve.hpp"

namespace sgl::solver {

namespace {

/// Greedy Vaněk-style aggregation over the strength graph.
/// Returns aggregate ids (contiguous from 0) for every node.
std::vector<Index> aggregate_nodes(const la::CsrMatrix& a, Real theta,
                                   Index& num_aggregates) {
  const Index n = a.rows();
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vv = a.values();

  // Strong-neighbor test threshold per row.
  la::Vector row_max(static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i < n; ++i) {
    Real m = 0.0;
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      if (ci[static_cast<std::size_t>(k)] != i)
        m = std::max(m, std::abs(vv[static_cast<std::size_t>(k)]));
    }
    row_max[static_cast<std::size_t>(i)] = m;
  }
  const auto strong = [&](Index i, Index k) {
    const Index j = ci[static_cast<std::size_t>(k)];
    return j != i && std::abs(vv[static_cast<std::size_t>(k)]) >=
                         theta * row_max[static_cast<std::size_t>(i)];
  };

  std::vector<Index> agg(static_cast<std::size_t>(n), kInvalidIndex);
  num_aggregates = 0;

  // Pass 1: seed aggregates around nodes whose strong neighborhood is
  // entirely unclaimed.
  for (Index i = 0; i < n; ++i) {
    if (agg[static_cast<std::size_t>(i)] != kInvalidIndex) continue;
    bool free_nbhd = true;
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1] && free_nbhd; ++k) {
      if (strong(i, k) &&
          agg[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])] !=
              kInvalidIndex)
        free_nbhd = false;
    }
    if (!free_nbhd) continue;
    const Index id = num_aggregates++;
    agg[static_cast<std::size_t>(i)] = id;
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      if (strong(i, k))
        agg[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])] = id;
    }
  }

  // Pass 2: attach leftovers to the strongest neighboring aggregate.
  for (Index i = 0; i < n; ++i) {
    if (agg[static_cast<std::size_t>(i)] != kInvalidIndex) continue;
    Real best = -1.0;
    Index best_agg = kInvalidIndex;
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      const Index j = ci[static_cast<std::size_t>(k)];
      if (j == i || agg[static_cast<std::size_t>(j)] == kInvalidIndex) continue;
      const Real s = std::abs(vv[static_cast<std::size_t>(k)]);
      if (s > best) {
        best = s;
        best_agg = agg[static_cast<std::size_t>(j)];
      }
    }
    if (best_agg != kInvalidIndex) {
      agg[static_cast<std::size_t>(i)] = best_agg;
    } else {
      // Isolated node (no neighbors at all): its own aggregate.
      agg[static_cast<std::size_t>(i)] = num_aggregates++;
    }
  }
  return agg;
}

la::CsrMatrix build_prolongation(const std::vector<Index>& agg,
                                 Index num_aggregates) {
  std::vector<la::Triplet> triplets;
  triplets.reserve(agg.size());
  for (std::size_t i = 0; i < agg.size(); ++i)
    triplets.push_back({to_index(i), agg[i], 1.0});
  return la::CsrMatrix::from_triplets(to_index(agg.size()), num_aggregates,
                                      triplets);
}

}  // namespace

AmgHierarchy::AmgHierarchy(const la::CsrMatrix& a, const AmgOptions& options)
    : options_(options) {
  SGL_EXPECTS(a.rows() == a.cols(), "AmgHierarchy: matrix must be square");
  SGL_EXPECTS(options.theta >= 0.0 && options.theta <= 1.0,
              "AmgHierarchy: theta out of [0, 1]");

  levels_.push_back({a, a.diagonal(), {}, {}});
  while (to_index(levels_.size()) < options_.max_levels &&
         levels_.back().a.rows() > options_.coarse_size) {
    const la::CsrMatrix& fine = levels_.back().a;
    Index nc = 0;
    std::vector<Index> agg = aggregate_nodes(fine, options_.theta, nc);
    if (nc >= fine.rows()) break;  // aggregation stalled; stop coarsening
    la::CsrMatrix p = build_prolongation(agg, nc);
    la::CsrMatrix coarse = la::spgemm(p.transposed(), la::spgemm(fine, p));
    levels_.push_back({std::move(coarse), {}, std::move(p), std::move(agg)});
    levels_.back().diag = levels_.back().a.diagonal();
  }

  // Dense factor of the coarsest operator. The shift floor regularizes the
  // near-null constant mode if the input was a barely-grounded Laplacian.
  const la::CsrMatrix& coarsest = levels_.back().a;
  const Index nc = coarsest.rows();
  coarse_factor_ = la::DenseMatrix(nc, nc);
  const auto& rp = coarsest.row_ptr();
  const auto& ci = coarsest.col_idx();
  const auto& vv = coarsest.values();
  for (Index i = 0; i < nc; ++i)
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k)
      coarse_factor_(i, ci[static_cast<std::size_t>(k)]) =
          vv[static_cast<std::size_t>(k)];
  la::dense_ldlt_factor(coarse_factor_, 1e-12);
}

Index AmgHierarchy::size() const noexcept { return levels_.front().a.rows(); }

Real AmgHierarchy::operator_complexity() const {
  Real total = 0.0;
  for (const Level& level : levels_) total += static_cast<Real>(level.a.nnz());
  return total / static_cast<Real>(levels_.front().a.nnz());
}

void AmgHierarchy::smooth(const Level& level, const la::Vector& rhs,
                          la::Vector& x, bool forward) const {
  const la::CsrMatrix& a = level.a;
  const Index n = a.rows();
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vv = a.values();
  const auto relax_row = [&](Index i) {
    Real acc = rhs[static_cast<std::size_t>(i)];
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      const Index j = ci[static_cast<std::size_t>(k)];
      if (j != i)
        acc -= vv[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] =
        acc / level.diag[static_cast<std::size_t>(i)];
  };
  if (forward) {
    for (Index i = 0; i < n; ++i) relax_row(i);
  } else {
    for (Index i = n - 1; i >= 0; --i) relax_row(i);
  }
}

void AmgHierarchy::cycle(std::size_t depth, const la::Vector& rhs,
                         la::Vector& x) const {
  const Level& level = levels_[depth];
  if (depth + 1 == levels_.size()) {
    x = la::dense_ldlt_solve(coarse_factor_, rhs);
    return;
  }

  x.assign(rhs.size(), 0.0);
  // Symmetric smoothing: forward sweeps down-cycle, backward sweeps
  // up-cycle keep the V-cycle a symmetric operator.
  for (Index s = 0; s < options_.pre_smooth; ++s)
    smooth(level, rhs, x, /*forward=*/true);

  la::Vector residual(rhs.size());
  level.a.multiply(x, residual);
  for (std::size_t i = 0; i < rhs.size(); ++i)
    residual[i] = rhs[i] - residual[i];

  const Level& next = levels_[depth + 1];
  la::Vector coarse_rhs = next.p.multiply_transposed(residual);
  la::Vector coarse_x;
  cycle(depth + 1, coarse_rhs, coarse_x);

  la::Vector correction = next.p.multiply(coarse_x);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += correction[i];

  for (Index s = 0; s < options_.post_smooth; ++s)
    smooth(level, rhs, x, /*forward=*/false);
}

void AmgHierarchy::v_cycle(const la::Vector& r, la::Vector& z) const {
  SGL_EXPECTS(to_index(r.size()) == size(), "v_cycle: size mismatch");
  cycle(0, r, z);
}

}  // namespace sgl::solver
