#include "solver/amg.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "la/dense_solve.hpp"

namespace sgl::solver {

namespace {

/// Greedy Vaněk-style aggregation over the strength graph.
/// Returns aggregate ids (contiguous from 0) for every node.
std::vector<Index> aggregate_nodes(const la::CsrMatrix& a, Real theta,
                                   Index& num_aggregates) {
  const Index n = a.rows();
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vv = a.values();

  // Strong-neighbor test threshold per row.
  la::Vector row_max(static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i < n; ++i) {
    Real m = 0.0;
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      if (ci[static_cast<std::size_t>(k)] != i)
        m = std::max(m, std::abs(vv[static_cast<std::size_t>(k)]));
    }
    row_max[static_cast<std::size_t>(i)] = m;
  }
  const auto strong = [&](Index i, Index k) {
    const Index j = ci[static_cast<std::size_t>(k)];
    return j != i && std::abs(vv[static_cast<std::size_t>(k)]) >=
                         theta * row_max[static_cast<std::size_t>(i)];
  };

  std::vector<Index> agg(static_cast<std::size_t>(n), kInvalidIndex);
  num_aggregates = 0;

  // Pass 1: seed aggregates around nodes whose strong neighborhood is
  // entirely unclaimed.
  for (Index i = 0; i < n; ++i) {
    if (agg[static_cast<std::size_t>(i)] != kInvalidIndex) continue;
    bool free_nbhd = true;
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1] && free_nbhd; ++k) {
      if (strong(i, k) &&
          agg[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])] !=
              kInvalidIndex)
        free_nbhd = false;
    }
    if (!free_nbhd) continue;
    const Index id = num_aggregates++;
    agg[static_cast<std::size_t>(i)] = id;
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      if (strong(i, k))
        agg[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])] = id;
    }
  }

  // Pass 2: attach leftovers to the strongest neighboring aggregate.
  for (Index i = 0; i < n; ++i) {
    if (agg[static_cast<std::size_t>(i)] != kInvalidIndex) continue;
    Real best = -1.0;
    Index best_agg = kInvalidIndex;
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      const Index j = ci[static_cast<std::size_t>(k)];
      if (j == i || agg[static_cast<std::size_t>(j)] == kInvalidIndex) continue;
      const Real s = std::abs(vv[static_cast<std::size_t>(k)]);
      if (s > best) {
        best = s;
        best_agg = agg[static_cast<std::size_t>(j)];
      }
    }
    if (best_agg != kInvalidIndex) {
      agg[static_cast<std::size_t>(i)] = best_agg;
    } else {
      // Isolated node (no neighbors at all): its own aggregate.
      agg[static_cast<std::size_t>(i)] = num_aggregates++;
    }
  }
  return agg;
}

la::CsrMatrix build_prolongation(const std::vector<Index>& agg,
                                 Index num_aggregates) {
  std::vector<la::Triplet> triplets;
  triplets.reserve(agg.size());
  for (std::size_t i = 0; i < agg.size(); ++i)
    triplets.push_back({to_index(i), agg[i], 1.0});
  return la::CsrMatrix::from_triplets(to_index(agg.size()), num_aggregates,
                                      triplets);
}

}  // namespace

AmgHierarchy::AmgHierarchy(const la::CsrMatrix& a, const AmgOptions& options)
    : options_(options) {
  SGL_EXPECTS(a.rows() == a.cols(), "AmgHierarchy: matrix must be square");
  SGL_EXPECTS(options.theta >= 0.0 && options.theta <= 1.0,
              "AmgHierarchy: theta out of [0, 1]");

  levels_.push_back({a, a.diagonal(), {}, {}});
  while (to_index(levels_.size()) < options_.max_levels &&
         levels_.back().a.rows() > options_.coarse_size) {
    const la::CsrMatrix& fine = levels_.back().a;
    Index nc = 0;
    std::vector<Index> agg = aggregate_nodes(fine, options_.theta, nc);
    if (nc >= fine.rows()) break;  // aggregation stalled; stop coarsening
    la::CsrMatrix p = build_prolongation(agg, nc);
    la::CsrMatrix coarse = la::spgemm(p.transposed(), la::spgemm(fine, p));
    levels_.push_back({std::move(coarse), {}, std::move(p), std::move(agg)});
    levels_.back().diag = levels_.back().a.diagonal();
  }

  // Dense factor of the coarsest operator. The shift floor regularizes the
  // near-null constant mode if the input was a barely-grounded Laplacian.
  const la::CsrMatrix& coarsest = levels_.back().a;
  const Index nc = coarsest.rows();
  coarse_factor_ = la::DenseMatrix(nc, nc);
  const auto& rp = coarsest.row_ptr();
  const auto& ci = coarsest.col_idx();
  const auto& vv = coarsest.values();
  for (Index i = 0; i < nc; ++i)
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k)
      coarse_factor_(i, ci[static_cast<std::size_t>(k)]) =
          vv[static_cast<std::size_t>(k)];
  la::dense_ldlt_factor(coarse_factor_, 1e-12);
}

Index AmgHierarchy::size() const noexcept { return levels_.front().a.rows(); }

Real AmgHierarchy::operator_complexity() const {
  Real total = 0.0;
  for (const Level& level : levels_) total += static_cast<Real>(level.a.nnz());
  return total / static_cast<Real>(levels_.front().a.nnz());
}

void AmgHierarchy::smooth(const Level& level, const la::Vector& rhs,
                          la::Vector& x, bool forward) const {
  const la::CsrMatrix& a = level.a;
  const Index n = a.rows();
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vv = a.values();
  const auto relax_row = [&](Index i) {
    Real acc = rhs[static_cast<std::size_t>(i)];
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      const Index j = ci[static_cast<std::size_t>(k)];
      if (j != i)
        acc -= vv[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] =
        acc / level.diag[static_cast<std::size_t>(i)];
  };
  if (forward) {
    for (Index i = 0; i < n; ++i) relax_row(i);
  } else {
    for (Index i = n - 1; i >= 0; --i) relax_row(i);
  }
}

void AmgHierarchy::cycle(std::size_t depth, const la::Vector& rhs,
                         la::Vector& x) const {
  const Level& level = levels_[depth];
  if (depth + 1 == levels_.size()) {
    x = la::dense_ldlt_solve(coarse_factor_, rhs);
    return;
  }

  x.assign(rhs.size(), 0.0);
  // Symmetric smoothing: forward sweeps down-cycle, backward sweeps
  // up-cycle keep the V-cycle a symmetric operator.
  for (Index s = 0; s < options_.pre_smooth; ++s)
    smooth(level, rhs, x, /*forward=*/true);

  la::Vector residual(rhs.size());
  level.a.multiply(x, residual);
  for (std::size_t i = 0; i < rhs.size(); ++i)
    residual[i] = rhs[i] - residual[i];

  const Level& next = levels_[depth + 1];
  la::Vector coarse_rhs = next.p.multiply_transposed(residual);
  la::Vector coarse_x;
  cycle(depth + 1, coarse_rhs, coarse_x);

  la::Vector correction = next.p.multiply(coarse_x);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += correction[i];

  for (Index s = 0; s < options_.post_smooth; ++s)
    smooth(level, rhs, x, /*forward=*/false);
}

void AmgHierarchy::v_cycle(const la::Vector& r, la::Vector& z) const {
  SGL_EXPECTS(to_index(r.size()) == size(), "v_cycle: size mismatch");
  cycle(0, r, z);
}

// --- block V-cycle ---------------------------------------------------------
//
// The block flavour keeps b right-hand sides packed row-major (one
// contiguous b-strip per matrix row, like the IC(0)/tree block sweeps) so
// every streamed matrix entry updates one strip. Per column the operation
// order is exactly the scalar cycle()'s: Gauss–Seidel rows in the same
// sequence, residual row sums in nonzero order, the restriction's
// zero-skip and fixed-chunk combine reproduced from
// CsrMatrix::multiply_transposed — that is what makes a block column
// bitwise equal to the scalar V-cycle on that column alone.

void AmgHierarchy::smooth_block(const Level& level, const std::vector<Real>& rhs,
                                std::vector<Real>& x, Index b,
                                bool forward) const {
  const la::CsrMatrix& a = level.a;
  const Index n = a.rows();
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vv = a.values();
  const std::size_t sb = static_cast<std::size_t>(b);
  // Gauss–Seidel is sequential across rows by construction; the j ≠ i
  // guard means row i's strip can accumulate in place.
  const auto relax_row = [&](Index i) {
    Real* xi = x.data() + static_cast<std::size_t>(i) * sb;
    const Real* ri = rhs.data() + static_cast<std::size_t>(i) * sb;
    for (Index c = 0; c < b; ++c) xi[c] = ri[c];
    for (Index k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      const Index j = ci[static_cast<std::size_t>(k)];
      if (j == i) continue;
      const Real v = vv[static_cast<std::size_t>(k)];
      const Real* xj = x.data() + static_cast<std::size_t>(j) * sb;
      for (Index c = 0; c < b; ++c) xi[c] -= v * xj[c];
    }
    const Real d = level.diag[static_cast<std::size_t>(i)];
    for (Index c = 0; c < b; ++c) xi[c] /= d;
  };
  if (forward) {
    for (Index i = 0; i < n; ++i) relax_row(i);
  } else {
    for (Index i = n - 1; i >= 0; --i) relax_row(i);
  }
}

void AmgHierarchy::cycle_block(std::size_t depth, const std::vector<Real>& rhs,
                               std::vector<Real>& x, Index b,
                               Index num_threads) const {
  const Level& level = levels_[depth];
  const Index n = level.a.rows();
  const std::size_t sb = static_cast<std::size_t>(b);

  if (depth + 1 == levels_.size()) {
    // Dense coarse solve per column — the coarsest operator is ≤
    // options_.coarse_size wide, so the per-column solves are negligible
    // and identical to the scalar path's.
    x.assign(static_cast<std::size_t>(n) * sb, 0.0);
    la::Vector rj(static_cast<std::size_t>(n));
    for (Index c = 0; c < b; ++c) {
      for (Index i = 0; i < n; ++i)
        rj[static_cast<std::size_t>(i)] =
            rhs[static_cast<std::size_t>(i) * sb + static_cast<std::size_t>(c)];
      const la::Vector xj = la::dense_ldlt_solve(coarse_factor_, rj);
      for (Index i = 0; i < n; ++i)
        x[static_cast<std::size_t>(i) * sb + static_cast<std::size_t>(c)] =
            xj[static_cast<std::size_t>(i)];
    }
    return;
  }

  x.assign(static_cast<std::size_t>(n) * sb, 0.0);
  for (Index s = 0; s < options_.pre_smooth; ++s)
    smooth_block(level, rhs, x, b, /*forward=*/true);

  // residual = rhs − A x; each row's strip is a fixed-order sum over the
  // row's nonzeros followed by one subtraction, exactly like the scalar
  // multiply-then-subtract.
  std::vector<Real> residual(static_cast<std::size_t>(n) * sb);
  {
    const auto& rp = level.a.row_ptr();
    const auto& ci = level.a.col_idx();
    const auto& vv = level.a.values();
    parallel::parallel_for_slots(
        0, n, num_threads, [&](Index lo, Index hi, Index /*slot*/) {
          for (Index i = lo; i < hi; ++i) {
            Real* res_i = residual.data() + static_cast<std::size_t>(i) * sb;
            for (Index c = 0; c < b; ++c) res_i[c] = 0.0;
            for (Index k = rp[static_cast<std::size_t>(i)];
                 k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
              const Real v = vv[static_cast<std::size_t>(k)];
              const Real* xj =
                  x.data() +
                  static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]) * sb;
              for (Index c = 0; c < b; ++c) res_i[c] += v * xj[c];
            }
            const Real* rhs_i = rhs.data() + static_cast<std::size_t>(i) * sb;
            for (Index c = 0; c < b; ++c) res_i[c] = rhs_i[c] - res_i[c];
          }
        });
  }

  const Level& next = levels_[depth + 1];
  const la::CsrMatrix& p = next.p;
  const Index nc = p.cols();

  // coarse_rhs = Pᵀ residual — the shared b-wide mirror of
  // CsrMatrix::multiply_transposed (zero-skip, ascending-row scatter,
  // fixed-chunk ordered combine), kept next to the scalar kernel so the
  // two cannot drift apart.
  std::vector<Real> coarse_rhs(static_cast<std::size_t>(nc) * sb);
  la::detail::spmm_transposed_row_major(p, residual.data(), coarse_rhs.data(),
                                        b, num_threads);

  std::vector<Real> coarse_x;
  cycle_block(depth + 1, coarse_rhs, coarse_x, b, num_threads);

  // correction = P coarse_x; x += correction (row gather, b-wide).
  {
    const auto& rp = p.row_ptr();
    const auto& ci = p.col_idx();
    const auto& vv = p.values();
    parallel::parallel_for_slots(
        0, n, num_threads, [&](Index lo, Index hi, Index /*slot*/) {
          std::vector<Real> corr(sb);
          for (Index i = lo; i < hi; ++i) {
            for (Index c = 0; c < b; ++c) corr[static_cast<std::size_t>(c)] = 0.0;
            for (Index k = rp[static_cast<std::size_t>(i)];
                 k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
              const Real v = vv[static_cast<std::size_t>(k)];
              const Real* cx =
                  coarse_x.data() +
                  static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]) * sb;
              for (Index c = 0; c < b; ++c)
                corr[static_cast<std::size_t>(c)] += v * cx[c];
            }
            Real* xi = x.data() + static_cast<std::size_t>(i) * sb;
            for (Index c = 0; c < b; ++c)
              xi[c] += corr[static_cast<std::size_t>(c)];
          }
        });
  }

  for (Index s = 0; s < options_.post_smooth; ++s)
    smooth_block(level, rhs, x, b, /*forward=*/false);
}

void AmgHierarchy::v_cycle_block(la::ConstBlockView r, la::BlockView z,
                                 Index num_threads) const {
  const Index n = size();
  SGL_EXPECTS(r.rows == n && z.rows == n,
              "v_cycle_block: row count mismatch");
  SGL_EXPECTS(r.cols == z.cols, "v_cycle_block: column count mismatch");
  const Index b = r.cols;
  if (b == 0 || n == 0) return;
  const std::size_t sb = static_cast<std::size_t>(b);

  std::vector<Real> rhs(static_cast<std::size_t>(n) * sb);
  parallel::parallel_for(0, n, num_threads, [&](Index i) {
    Real* ri = rhs.data() + static_cast<std::size_t>(i) * sb;
    for (Index c = 0; c < b; ++c) ri[c] = r.at(i, c);
  });

  std::vector<Real> x;
  cycle_block(0, rhs, x, b, num_threads);

  parallel::parallel_for(0, n, num_threads, [&](Index i) {
    const Real* xi = x.data() + static_cast<std::size_t>(i) * sb;
    for (Index c = 0; c < b; ++c) z.at(i, c) = xi[c];
  });
}

}  // namespace sgl::solver
