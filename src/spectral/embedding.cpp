#include "spectral/embedding.hpp"

#include <array>
#include <cmath>

#include "common/enum_names.hpp"
#include "common/parallel.hpp"
#include "spectral/sf_embedding.hpp"

namespace sgl::spectral {
namespace {

constexpr std::array<common::EnumName<EmbeddingEngine>, 3> kEngineNames{{
    {EmbeddingEngine::kExact, "exact"},
    {EmbeddingEngine::kSolverFree, "solver-free"},
    {EmbeddingEngine::kAuto, "auto"},
}};

Embedding compute_exact_embedding(const graph::Graph& g,
                                  const EmbeddingOptions& options) {
  const Index dims = std::min(options.r - 1, g.num_nodes() - 1);

  const solver::LaplacianPinvSolver pinv(g, options.solver);
  const eig::EigenPairs pairs =
      eig::smallest_laplacian_eigenpairs(pinv, dims, options.lanczos);

  Embedding out;
  out.eigenvalues = pairs.eigenvalues;
  out.eig_converged = pairs.converged;
  out.lanczos_steps = pairs.lanczos_steps;
  out.engine_used = EmbeddingEngine::kExact;
  out.u = la::DenseMatrix(g.num_nodes(), dims);
  const Real inv_sigma2 = 1.0 / options.sigma2;
  // Column scaling is a block AXPY-style kernel: each column is scaled
  // independently, so the loop parallelizes without changing any value.
  parallel::parallel_for(0, dims, options.lanczos.num_threads, [&](Index c) {
    const Real scale =
        1.0 / std::sqrt(pairs.eigenvalues[static_cast<std::size_t>(c)] +
                        inv_sigma2);
    const auto src = pairs.eigenvectors.col(c);
    auto dst = out.u.col(c);
    for (Index i = 0; i < g.num_nodes(); ++i) dst[i] = scale * src[i];
  });
  return out;
}

}  // namespace

const char* embedding_engine_name(EmbeddingEngine engine) {
  return common::enum_name(kEngineNames, engine);
}

std::optional<EmbeddingEngine> parse_embedding_engine(std::string_view name) {
  return common::parse_enum(kEngineNames, name);
}

std::string embedding_engine_name_list() {
  return common::enum_name_list(kEngineNames);
}

EmbeddingEngine resolve_embedding_engine(EmbeddingEngine engine,
                                         Index num_nodes) {
  if (engine != EmbeddingEngine::kAuto) return engine;
  return num_nodes >= kAutoSolverFreeThreshold ? EmbeddingEngine::kSolverFree
                                               : EmbeddingEngine::kExact;
}

Embedding compute_embedding(const graph::Graph& g,
                            const EmbeddingOptions& options) {
  SGL_EXPECTS(options.r >= 2, "compute_embedding: r must be at least 2");
  SGL_EXPECTS(options.sigma2 > 0.0, "compute_embedding: sigma2 must be positive");
  const EmbeddingEngine engine =
      resolve_embedding_engine(options.engine, g.num_nodes());
  if (engine == EmbeddingEngine::kSolverFree)
    return compute_sf_embedding(g, options);
  return compute_exact_embedding(g, options);
}

}  // namespace sgl::spectral
