#include "spectral/embedding.hpp"

#include <cmath>

namespace sgl::spectral {

Embedding compute_embedding(const graph::Graph& g,
                            const EmbeddingOptions& options) {
  SGL_EXPECTS(options.r >= 2, "compute_embedding: r must be at least 2");
  SGL_EXPECTS(options.sigma2 > 0.0, "compute_embedding: sigma2 must be positive");
  const Index dims = std::min(options.r - 1, g.num_nodes() - 1);

  const solver::LaplacianPinvSolver pinv(g, options.solver);
  const eig::EigenPairs pairs =
      eig::smallest_laplacian_eigenpairs(pinv, dims, options.lanczos);

  Embedding out;
  out.eigenvalues = pairs.eigenvalues;
  out.u = la::DenseMatrix(g.num_nodes(), dims);
  const Real inv_sigma2 = 1.0 / options.sigma2;
  for (Index c = 0; c < dims; ++c) {
    const Real scale =
        1.0 / std::sqrt(pairs.eigenvalues[static_cast<std::size_t>(c)] +
                        inv_sigma2);
    const auto src = pairs.eigenvectors.col(c);
    auto dst = out.u.col(c);
    for (Index i = 0; i < g.num_nodes(); ++i) dst[i] = scale * src[i];
  }
  return out;
}

}  // namespace sgl::spectral
