#include "spectral/embedding.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>

#include "common/enum_names.hpp"
#include "common/parallel.hpp"
#include "solver/solver_context.hpp"
#include "spectral/sf_embedding.hpp"

namespace sgl::spectral {
namespace {

constexpr std::array<common::EnumName<EmbeddingEngine>, 3> kEngineNames{{
    {EmbeddingEngine::kExact, "exact"},
    {EmbeddingEngine::kSolverFree, "solver-free"},
    {EmbeddingEngine::kAuto, "auto"},
}};

Embedding compute_exact_embedding(const graph::Graph& g,
                                  const EmbeddingOptions& options,
                                  solver::SolverContext* context) {
  const Index dims = std::min(options.r - 1, g.num_nodes() - 1);

  // The solver comes from the context when one is threaded through
  // (warm/updated per its incremental mode); otherwise build fresh, as
  // the plain overload always did.
  std::optional<solver::LaplacianPinvSolver> local;
  if (context == nullptr) local.emplace(g, options.solver);
  const solver::LaplacianPinvSolver& pinv =
      context != nullptr ? context->acquire(g) : *local;

  eig::LanczosOptions lanczos = options.lanczos;
  if (context != nullptr && context->incremental()) {
    // Warm-start Lanczos from the previous iteration's eigenvectors: the
    // converged subspace enters the basis before the first operator
    // apply, and the solve refines it only to warm_refinement_tolerance
    // (the ranking-accuracy regime) instead of the cold tolerance — the
    // warm residual sits at the perturbation of the few new edges, and
    // polishing it further is gap-limited cold-cost work (DESIGN.md §8).
    const la::DenseMatrix& warm = context->warm_subspace();
    if (warm.rows() == g.num_nodes() && warm.cols() > 0) {
      lanczos.initial_block = la::view_of(warm);
      lanczos.tolerance =
          std::max(lanczos.tolerance, options.warm_refinement_tolerance);
    }
  }
  const eig::EigenPairs pairs =
      eig::smallest_laplacian_eigenpairs(pinv, dims, lanczos);
  if (context != nullptr && context->incremental())
    context->store_warm_subspace(pairs.eigenvectors);

  Embedding out;
  out.eigenvalues = pairs.eigenvalues;
  out.eig_converged = pairs.converged;
  out.lanczos_steps = pairs.lanczos_steps;
  out.engine_used = EmbeddingEngine::kExact;
  out.u = la::DenseMatrix(g.num_nodes(), dims);
  const Real inv_sigma2 = 1.0 / options.sigma2;
  // Column scaling is a block AXPY-style kernel: each column is scaled
  // independently, so the loop parallelizes without changing any value.
  parallel::parallel_for(0, dims, options.lanczos.num_threads, [&](Index c) {
    const Real scale =
        1.0 / std::sqrt(pairs.eigenvalues[static_cast<std::size_t>(c)] +
                        inv_sigma2);
    const auto src = pairs.eigenvectors.col(c);
    auto dst = out.u.col(c);
    for (Index i = 0; i < g.num_nodes(); ++i) dst[i] = scale * src[i];
  });
  return out;
}

}  // namespace

const char* embedding_engine_name(EmbeddingEngine engine) {
  return common::enum_name(kEngineNames, engine);
}

std::optional<EmbeddingEngine> parse_embedding_engine(std::string_view name) {
  return common::parse_enum(kEngineNames, name);
}

std::string embedding_engine_name_list() {
  return common::enum_name_list(kEngineNames);
}

EmbeddingEngine resolve_embedding_engine(EmbeddingEngine engine,
                                         Index num_nodes) {
  if (engine != EmbeddingEngine::kAuto) return engine;
  return num_nodes >= kAutoSolverFreeThreshold ? EmbeddingEngine::kSolverFree
                                               : EmbeddingEngine::kExact;
}

Embedding compute_embedding(const graph::Graph& g,
                            const EmbeddingOptions& options) {
  return compute_embedding(g, options, nullptr);
}

Embedding compute_embedding(const graph::Graph& g,
                            const EmbeddingOptions& options,
                            solver::SolverContext* context) {
  SGL_EXPECTS(options.r >= 2, "compute_embedding: r must be at least 2");
  SGL_EXPECTS(options.sigma2 > 0.0, "compute_embedding: sigma2 must be positive");
  const EmbeddingEngine engine =
      resolve_embedding_engine(options.engine, g.num_nodes());
  if (engine == EmbeddingEngine::kSolverFree)
    return compute_sf_embedding(g, options);
  return compute_exact_embedding(g, options, context);
}

}  // namespace sgl::spectral
