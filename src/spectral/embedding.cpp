#include "spectral/embedding.hpp"

#include <cmath>

#include "common/parallel.hpp"

namespace sgl::spectral {

Embedding compute_embedding(const graph::Graph& g,
                            const EmbeddingOptions& options) {
  SGL_EXPECTS(options.r >= 2, "compute_embedding: r must be at least 2");
  SGL_EXPECTS(options.sigma2 > 0.0, "compute_embedding: sigma2 must be positive");
  const Index dims = std::min(options.r - 1, g.num_nodes() - 1);

  const solver::LaplacianPinvSolver pinv(g, options.solver);
  const eig::EigenPairs pairs =
      eig::smallest_laplacian_eigenpairs(pinv, dims, options.lanczos);

  Embedding out;
  out.eigenvalues = pairs.eigenvalues;
  out.eig_converged = pairs.converged;
  out.lanczos_steps = pairs.lanczos_steps;
  out.u = la::DenseMatrix(g.num_nodes(), dims);
  const Real inv_sigma2 = 1.0 / options.sigma2;
  // Column scaling is a block AXPY-style kernel: each column is scaled
  // independently, so the loop parallelizes without changing any value.
  parallel::parallel_for(0, dims, options.lanczos.num_threads, [&](Index c) {
    const Real scale =
        1.0 / std::sqrt(pairs.eigenvalues[static_cast<std::size_t>(c)] +
                        inv_sigma2);
    const auto src = pairs.eigenvectors.col(c);
    auto dst = out.u.col(c);
    for (Index i = 0; i < g.num_nodes(); ++i) dst[i] = scale * src[i];
  });
  return out;
}

}  // namespace sgl::spectral
