// Spectral clustering (k-means++ on embedding rows) and spectral drawing
// (u2/u3 coordinates), the visualization tools of the paper's figures.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "spectral/embedding.hpp"

namespace sgl::spectral {

struct KMeansOptions {
  Index max_iterations = 100;
  std::uint64_t seed = 5;
};

/// Lloyd's k-means with k-means++ seeding over the rows of `points`.
/// Returns a cluster label per row.
[[nodiscard]] std::vector<Index> kmeans(const la::DenseMatrix& points, Index k,
                                        const KMeansOptions& options = {});

/// Spectral clustering: k-means on the (r−1)-dimensional embedding.
[[nodiscard]] std::vector<Index> spectral_clusters(
    const graph::Graph& g, Index k, const EmbeddingOptions& embedding = {},
    const KMeansOptions& kmeans_options = {});

/// Spectral drawing (Koren): node coordinates (u2(i), u3(i)).
[[nodiscard]] std::vector<std::array<Real, 2>> spectral_layout(
    const graph::Graph& g, const EmbeddingOptions& embedding = {});

}  // namespace sgl::spectral
