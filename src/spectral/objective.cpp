#include "spectral/objective.hpp"

#include <cmath>
#include <optional>

#include "solver/solver_context.hpp"

namespace sgl::spectral {

Real laplacian_quadratic_trace(const graph::Graph& g,
                               const la::DenseMatrix& x) {
  SGL_EXPECTS(x.rows() == g.num_nodes(),
              "laplacian_quadratic_trace: row count mismatch");
  Real acc = 0.0;
  for (const graph::Edge& e : g.edges())
    acc += e.weight * x.row_distance_squared(e.s, e.t);
  return acc;
}

ObjectiveBreakdown graphical_lasso_objective(const graph::Graph& g,
                                             const la::DenseMatrix& x,
                                             const ObjectiveOptions& options) {
  return graphical_lasso_objective(g, x, options, nullptr);
}

ObjectiveBreakdown graphical_lasso_objective(const graph::Graph& g,
                                             const la::DenseMatrix& x,
                                             const ObjectiveOptions& options,
                                             solver::SolverContext* context) {
  SGL_EXPECTS(x.cols() >= 1, "graphical_lasso_objective: empty measurements");
  SGL_EXPECTS(options.embedding.sigma2 > 0.0,
              "graphical_lasso_objective: sigma2 must be positive");
  const Index k = std::min(options.num_eigenvalues, g.num_nodes() - 1);
  const Real inv_sigma2 = 1.0 / options.embedding.sigma2;

  // Warm solver from the context when available (for the learner, the
  // factorization this iteration's embedding already paid for); fresh
  // construction otherwise.
  std::optional<solver::LaplacianPinvSolver> local;
  if (context == nullptr) local.emplace(g, options.embedding.solver);
  const solver::LaplacianPinvSolver& pinv =
      context != nullptr ? context->acquire(g) : *local;
  eig::LanczosOptions lanczos = options.embedding.lanczos;
  if (lanczos.max_subspace == 0) {
    // The 50-eigenvalue log det needs a roomier subspace than embedding.
    lanczos.max_subspace =
        eig::spectrum_subspace_cap(g.num_nodes(), k, lanczos.block_size);
  }
  const eig::EigenPairs pairs =
      eig::smallest_laplacian_eigenpairs(pinv, k, lanczos);

  ObjectiveBreakdown out;
  out.log_det = std::log(inv_sigma2);  // trivial eigenvalue λ1 = 0
  for (const Real lambda : pairs.eigenvalues)
    out.log_det += std::log(lambda + inv_sigma2);

  const Real m = static_cast<Real>(x.cols());
  out.trace_term = (laplacian_quadratic_trace(g, x) +
                    inv_sigma2 * x.frobenius_norm_squared()) /
                   m;
  return out;
}

ScaledObjective optimal_scale_objective(const graph::Graph& g,
                                        const la::DenseMatrix& x,
                                        const ObjectiveOptions& options) {
  SGL_EXPECTS(x.cols() >= 1, "optimal_scale_objective: empty measurements");
  const Index k = std::min(options.num_eigenvalues, g.num_nodes() - 1);
  const Real m = static_cast<Real>(x.cols());
  const Real t = laplacian_quadratic_trace(g, x) / m;
  SGL_EXPECTS(t > 0.0, "optimal_scale_objective: zero quadratic trace");

  ScaledObjective out;
  out.scale = static_cast<Real>(k) / t;
  graph::Graph scaled = g;
  scaled.scale_weights(out.scale);
  out.objective = graphical_lasso_objective(scaled, x, options);
  return out;
}

}  // namespace sgl::spectral
