// Spectral graph embedding (paper eq. 12): the scaled eigenvector subspace
//   Ur = [ u_2/√(λ_2 + 1/σ²), …, u_r/√(λ_r + 1/σ²) ]
// whose pairwise row distances approximate effective resistances
// (exactly, as r → N and σ² → ∞).
//
// Two engines produce that subspace behind one seam (DESIGN.md §6):
//   exact       — Lanczos on LaplacianPinvSolver applies (the original path;
//                 eigenvalues to solver accuracy, one factorization or PCG
//                 setup per embedding).
//   solver-free — SF-SGL (arXiv 2302.04384): smoothed random test vectors
//                 propagated down a coarsening hierarchy, one Rayleigh–Ritz
//                 projection at the finest level. No Lanczos, no PCG, no
//                 factorization on the hot path.
//   auto        — picks solver-free for large graphs, exact otherwise.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "eig/lanczos.hpp"
#include "graph/graph.hpp"
#include "la/dense_matrix.hpp"

namespace sgl::solver {
class SolverContext;
}  // namespace sgl::solver

namespace sgl::spectral {

/// Which implementation computes the embedding.
enum class EmbeddingEngine {
  kExact,       ///< Lanczos + LaplacianPinvSolver (paper eq. 12 verbatim).
  kSolverFree,  ///< SF-SGL multilevel smoothed test vectors + Rayleigh–Ritz.
  kAuto,        ///< solver-free when the graph is large, exact otherwise.
};

/// CLI name of the engine ("exact", "solver-free", "auto").
[[nodiscard]] const char* embedding_engine_name(EmbeddingEngine engine);

/// Strict inverse of embedding_engine_name; nullptr-free, nullopt on
/// unknown names (callers reject, they never default).
[[nodiscard]] std::optional<EmbeddingEngine> parse_embedding_engine(
    std::string_view name);

/// Comma-joined valid names for CLI error messages.
[[nodiscard]] std::string embedding_engine_name_list();

/// Graphs at or above this node count resolve `auto` to the solver-free
/// engine: by then a factorization/PCG setup per iteration dominates the
/// learning loop, and the multilevel proxy's accuracy (driven by the
/// spectral-ordering fidelity of the smoothed basis, not absolute
/// eigenvalue error) is already sufficient for edge ranking.
inline constexpr Index kAutoSolverFreeThreshold = 10000;

/// Knobs of the solver-free engine. All defaults follow SF-SGL practice:
/// a small oversampled test block, a handful of weighted-Jacobi sweeps per
/// level, and a coarsest graph small enough that the random block spans
/// its low spectrum.
struct SfEmbeddingOptions {
  /// Test vectors t (the Rayleigh–Ritz subspace dimension). 0 = auto:
  /// (r − 1) + 4 oversampling columns, clamped to the graph size.
  Index num_test_vectors = 0;
  /// Weighted-Jacobi sweeps applied per hierarchy level (plus once on the
  /// coarsest level).
  Index smoother_sweeps = 10;
  /// Jacobi damping ω; 2/3 is the classical optimum for Laplacian-like
  /// spectra.
  Real jacobi_weight = 2.0 / 3.0;
  /// Coarsening stops at or below this node count (raised internally if
  /// the test block would not fit).
  Index coarsest_size = 200;
  /// Seed of the whole engine: hierarchy matchings and the coarsest-level
  /// random block both derive from it.
  std::uint64_t seed = 12345;
  /// Threads for the block kernels: 0 = library default (SGL_NUM_THREADS /
  /// hardware), 1 = serial. Results are bit-identical for every value.
  Index num_threads = 0;
};

struct EmbeddingOptions {
  /// Number of eigenvectors r as in the paper: columns u_2 … u_r, so the
  /// embedding has r−1 dimensions.
  Index r = 5;
  Real sigma2 = 1e6;
  /// Engine selection; kAuto resolves per graph (kAutoSolverFreeThreshold).
  EmbeddingEngine engine = EmbeddingEngine::kAuto;
  eig::LanczosOptions lanczos;
  solver::LaplacianSolverOptions solver;
  SfEmbeddingOptions sf;
  /// Residual tolerance of the exact-engine eigensolve when it is
  /// warm-started from a SolverContext's stored eigenvector block
  /// (incremental modes only; DESIGN.md §8). The warm subspace starts at
  /// a relative residual around the last few edges' perturbation (~1e-2)
  /// and the convergence rate is gap-limited, so polishing it to the cold
  /// `lanczos.tolerance` (1e-9) re-pays nearly the full cold cost; the
  /// learner only consumes the embedding through edge RANKINGS, which are
  /// quantized by the tie-resolution grid and already stable at 1e-3 —
  /// the same accuracy regime the paper's multilevel eigensolver targets.
  /// Cold solves (first iteration, kOff, null context) always use
  /// `lanczos.tolerance`. The effective tolerance is
  /// max(lanczos.tolerance, warm_refinement_tolerance), so a caller that
  /// asks for a LOOSER cold tolerance keeps it.
  Real warm_refinement_tolerance = 1e-3;
};

/// Resolves kAuto against the graph size; kExact/kSolverFree pass through.
[[nodiscard]] EmbeddingEngine resolve_embedding_engine(EmbeddingEngine engine,
                                                       Index num_nodes);

struct Embedding {
  la::Vector eigenvalues;  // λ_2 … λ_r (ascending; Ritz values for SF)
  la::DenseMatrix u;       // N × (r−1), column i scaled by 1/√(λ+1/σ²)
  /// Whether the eigensolver met its residual tolerance within the
  /// subspace cap. A false value means the embedding was built from the
  /// best available Ritz pairs; callers that need a guarantee should
  /// check this (SglLearner surfaces it per iteration). The solver-free
  /// engine always reports true — it is a fixed-work projection, not an
  /// iteration with a residual target.
  bool eig_converged = false;
  /// Basis dimension the eigensolver used (exact engine diagnostics).
  Index lanczos_steps = 0;
  /// Engine that actually ran (kAuto resolved; never kAuto here).
  EmbeddingEngine engine_used = EmbeddingEngine::kExact;
  /// Total weighted-Jacobi sweeps applied (solver-free engine; 0 for
  /// exact).
  Index smoother_sweeps = 0;
  /// Coarsening levels beneath the input graph (solver-free engine; 0 for
  /// exact).
  Index hierarchy_levels = 0;
};

/// Computes the embedding of a connected graph via the selected engine.
[[nodiscard]] Embedding compute_embedding(const graph::Graph& g,
                                          const EmbeddingOptions& options = {});

/// Context-aware overload (DESIGN.md §8): on the exact engine the
/// LaplacianPinvSolver comes from `context->acquire(g)` — warm, updated
/// in place, or rebuilt per the context's incremental mode — instead of a
/// fresh construction, and in the incremental modes the Lanczos run is
/// warm-started from the context's stored eigenvector block (the new
/// block is stored back after the solve). A null context, or a context in
/// kOff mode, reproduces the plain overload bitwise. The solver-free
/// engine has no solver to share and ignores the context.
[[nodiscard]] Embedding compute_embedding(const graph::Graph& g,
                                          const EmbeddingOptions& options,
                                          solver::SolverContext* context);

/// ‖Urᵀ(e_s − e_t)‖² — the z_emb term of the sensitivity (eq. 13).
[[nodiscard]] inline Real embedding_distance_squared(const la::DenseMatrix& u,
                                                     Index s, Index t) {
  return u.row_distance_squared(s, t);
}

}  // namespace sgl::spectral
