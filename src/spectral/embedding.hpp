// Spectral graph embedding (paper eq. 12): the scaled eigenvector subspace
//   Ur = [ u_2/√(λ_2 + 1/σ²), …, u_r/√(λ_r + 1/σ²) ]
// whose pairwise row distances approximate effective resistances
// (exactly, as r → N and σ² → ∞).
#pragma once

#include "eig/lanczos.hpp"
#include "graph/graph.hpp"
#include "la/dense_matrix.hpp"

namespace sgl::spectral {

struct EmbeddingOptions {
  /// Number of eigenvectors r as in the paper: columns u_2 … u_r, so the
  /// embedding has r−1 dimensions.
  Index r = 5;
  Real sigma2 = 1e6;
  eig::LanczosOptions lanczos;
  solver::LaplacianSolverOptions solver;
};

struct Embedding {
  la::Vector eigenvalues;  // λ_2 … λ_r (ascending)
  la::DenseMatrix u;       // N × (r−1), column i scaled by 1/√(λ+1/σ²)
  /// Whether the eigensolver met its residual tolerance within the
  /// subspace cap. A false value means the embedding was built from the
  /// best available Ritz pairs; callers that need a guarantee should
  /// check this (SglLearner surfaces it per iteration).
  bool eig_converged = false;
  /// Basis dimension the eigensolver used (diagnostics).
  Index lanczos_steps = 0;
};

/// Computes the embedding of a connected graph.
[[nodiscard]] Embedding compute_embedding(const graph::Graph& g,
                                          const EmbeddingOptions& options = {});

/// ‖Urᵀ(e_s − e_t)‖² — the z_emb term of the sensitivity (eq. 13).
[[nodiscard]] inline Real embedding_distance_squared(const la::DenseMatrix& u,
                                                     Index s, Index t) {
  return u.row_distance_squared(s, t);
}

}  // namespace sgl::spectral
