#include "spectral/sf_embedding.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "eig/dense_eig.hpp"
#include "graph/coarsening.hpp"
#include "la/multi_vector.hpp"

namespace sgl::spectral {
namespace {

/// `sweeps` weighted-Jacobi sweeps X ← X − ω D⁻¹ (L X) on one level.
/// `work` is a scratch block of the same shape. spmm and the column
/// update are both deterministic for every thread count.
void jacobi_smooth(const graph::Graph& g, la::MultiVector& x,
                   la::MultiVector& work, Index sweeps, Real omega,
                   Index num_threads) {
  const la::CsrMatrix lap = g.laplacian();
  const la::Vector deg = g.weighted_degrees();
  const Index n = x.rows();
  for (Index sweep = 0; sweep < sweeps; ++sweep) {
    la::spmm(lap, x.view(), work.view(), num_threads);
    parallel::parallel_for(0, x.cols(), num_threads, [&](Index c) {
      auto xc = x.col(c);
      const auto wc = work.col(c);
      for (Index i = 0; i < n; ++i) {
        const Real d = deg[static_cast<std::size_t>(i)];
        if (d > 0.0) xc[i] -= omega * wc[i] / d;
      }
    });
  }
}

/// Deflates the constant nullspace and orthonormalizes the block by
/// serial modified Gram–Schmidt. Serial on purpose: t is tiny, the
/// O(n·t²) cost is dwarfed by smoothing, and a fixed operation order is
/// the cheapest way to keep the basis bit-identical across thread counts.
void center_and_orthonormalize(la::MultiVector& x, Index num_threads) {
  la::center_columns(x.view(), num_threads);
  const Index n = x.rows();
  const Index t = x.cols();
  for (Index j = 0; j < t; ++j) {
    auto xj = x.col(j);
    for (Index i = 0; i < j; ++i) {
      const auto xi = x.col(i);
      Real dot = 0.0;
      for (Index row = 0; row < n; ++row) dot += xi[row] * xj[row];
      for (Index row = 0; row < n; ++row) xj[row] -= dot * xi[row];
    }
    Real norm2 = 0.0;
    for (Index row = 0; row < n; ++row) norm2 += xj[row] * xj[row];
    const Real norm = std::sqrt(norm2);
    SGL_ENSURES(norm > 0.0,
                "compute_sf_embedding: test block lost rank; lower "
                "smoother_sweeps or num_test_vectors");
    const Real inv = 1.0 / norm;
    for (Index row = 0; row < n; ++row) xj[row] *= inv;
  }
}

}  // namespace

Embedding compute_sf_embedding(const graph::Graph& g,
                               const EmbeddingOptions& options) {
  SGL_EXPECTS(options.r >= 2, "compute_sf_embedding: r must be at least 2");
  SGL_EXPECTS(options.sigma2 > 0.0,
              "compute_sf_embedding: sigma2 must be positive");
  const SfEmbeddingOptions& sf = options.sf;
  SGL_EXPECTS(sf.smoother_sweeps >= 1,
              "compute_sf_embedding: smoother_sweeps must be positive");
  SGL_EXPECTS(sf.jacobi_weight > 0.0 && sf.jacobi_weight <= 1.0,
              "compute_sf_embedding: jacobi_weight must be in (0, 1]");
  SGL_EXPECTS(sf.coarsest_size >= 2,
              "compute_sf_embedding: coarsest_size must be at least 2");
  const Index n = g.num_nodes();
  SGL_EXPECTS(n >= 2, "compute_sf_embedding: graph too small");
  const Index threads = sf.num_threads;

  const Index dims = std::min(options.r - 1, n - 1);
  const Index requested =
      sf.num_test_vectors > 0 ? sf.num_test_vectors : dims + 4;
  // t test vectors span the Rayleigh–Ritz subspace; at least dims, at
  // most n − 1 (the non-constant directions available).
  const Index t = std::min(std::max(requested, dims), n - 1);

  // The coarsest level must hold t non-constant directions, otherwise the
  // prolonged block cannot have full rank. Trim any hierarchy tail that
  // over-coarsened past that floor.
  graph::CoarseningHierarchy hierarchy = graph::build_coarsening_hierarchy(
      g, std::max(sf.coarsest_size, t + 1), sf.seed);
  while (!hierarchy.levels.empty() &&
         hierarchy.levels.back().graph.num_nodes() < t + 1)
    hierarchy.levels.pop_back();

  // Seeded serial fill of the coarsest test block, in column-major order:
  // the RNG stream never sees the thread count. The seed is decorrelated
  // from the hierarchy's matching seeds by a splitmix-style offset.
  const graph::Graph& coarsest = hierarchy.coarsest(g);
  Rng rng(sf.seed ^ 0x9e3779b97f4a7c15ull);
  la::MultiVector x(coarsest.num_nodes(), t);
  for (Real& v : x.data()) v = rng.normal();

  la::MultiVector work(coarsest.num_nodes(), t);
  jacobi_smooth(coarsest, x, work, sf.smoother_sweeps, sf.jacobi_weight,
                threads);
  center_and_orthonormalize(x, threads);
  Index total_sweeps = sf.smoother_sweeps;

  // Walk the hierarchy back to the input graph: prolong, smooth,
  // re-orthonormalize. Re-orthonormalizing at every level keeps the block
  // well-conditioned no matter how aggressively the smoother contracts it
  // toward the low eigenspace.
  for (std::size_t k = hierarchy.levels.size(); k-- > 0;) {
    const graph::Graph& fine = (k == 0) ? g : hierarchy.levels[k - 1].graph;
    const std::vector<Index>& map = hierarchy.levels[k].fine_to_coarse;
    la::MultiVector fine_x(fine.num_nodes(), t);
    la::gather_rows(x.view(), map, fine_x.view(), threads);
    x = std::move(fine_x);
    work = la::MultiVector(fine.num_nodes(), t);
    jacobi_smooth(fine, x, work, sf.smoother_sweeps, sf.jacobi_weight,
                  threads);
    center_and_orthonormalize(x, threads);
    total_sweeps += sf.smoother_sweeps;
  }

  // One Rayleigh–Ritz projection at the finest level: T = Xᵀ L X over the
  // orthonormal basis, a t × t dense eigenproblem. The Ritz values give
  // the eigenvalue scale the eq. 12 column weighting needs — this is what
  // lets the solver-free embedding rank edges interchangeably with the
  // exact engine.
  const la::CsrMatrix lap = g.laplacian();
  la::spmm(lap, x.view(), work.view(), threads);
  la::DenseMatrix t_mat = la::block_inner(x.view(), work.view(), threads);
  for (Index j = 0; j < t; ++j)
    for (Index i = 0; i < j; ++i) {
      const Real avg = 0.5 * (t_mat(i, j) + t_mat(j, i));
      t_mat(i, j) = avg;
      t_mat(j, i) = avg;
    }
  const eig::DenseEigResult ritz = eig::dense_symmetric_eig(t_mat);

  Embedding out;
  out.engine_used = EmbeddingEngine::kSolverFree;
  out.smoother_sweeps = total_sweeps;
  out.hierarchy_levels = hierarchy.num_levels();
  out.eig_converged = true;
  out.lanczos_steps = 0;
  out.eigenvalues.assign(ritz.eigenvalues.begin(),
                         ritz.eigenvalues.begin() + dims);

  // U = X · Y_dims, columns scaled by 1/√(θ + 1/σ²) as in the exact path.
  // The first dims columns of Y are a storage prefix (column-major).
  la::Storage y_store(
      ritz.eigenvectors.data().begin(),
      ritz.eigenvectors.data().begin() +
          static_cast<std::size_t>(t) * static_cast<std::size_t>(dims));
  const la::DenseMatrix y_dims =
      la::DenseMatrix::from_storage(t, dims, std::move(y_store));
  out.u = la::DenseMatrix(n, dims);
  auto u_view = la::view_of(out.u);
  la::block_product(x.view(), y_dims, u_view, threads);
  const Real inv_sigma2 = 1.0 / options.sigma2;
  parallel::parallel_for(0, dims, threads, [&](Index c) {
    const Real theta =
        std::max(out.eigenvalues[static_cast<std::size_t>(c)], Real{0});
    const Real scale = 1.0 / std::sqrt(theta + inv_sigma2);
    auto col = out.u.col(c);
    for (Index i = 0; i < n; ++i) col[i] *= scale;
  });
  return out;
}

}  // namespace sgl::spectral
