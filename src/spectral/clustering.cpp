#include "spectral/clustering.hpp"

#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace sgl::spectral {

namespace {

Real row_to_center_distance(const la::DenseMatrix& points, Index row,
                            const la::DenseMatrix& centers, Index center) {
  Real acc = 0.0;
  for (Index j = 0; j < points.cols(); ++j) {
    const Real d = points(row, j) - centers(center, j);
    acc += d * d;
  }
  return acc;
}

}  // namespace

std::vector<Index> kmeans(const la::DenseMatrix& points, Index k,
                          const KMeansOptions& options) {
  const Index n = points.rows();
  const Index dim = points.cols();
  SGL_EXPECTS(n >= 1 && dim >= 1, "kmeans: empty input");
  SGL_EXPECTS(k >= 1 && k <= n, "kmeans: need 1 <= k <= N");
  Rng rng(options.seed);

  // k-means++ seeding.
  la::DenseMatrix centers(k, dim);
  std::vector<Real> min_dist(static_cast<std::size_t>(n),
                             std::numeric_limits<Real>::infinity());
  Index first = rng.uniform_int(n);
  for (Index j = 0; j < dim; ++j) centers(0, j) = points(first, j);
  for (Index c = 1; c < k; ++c) {
    Real total = 0.0;
    for (Index i = 0; i < n; ++i) {
      const Real d = row_to_center_distance(points, i, centers, c - 1);
      min_dist[static_cast<std::size_t>(i)] =
          std::min(min_dist[static_cast<std::size_t>(i)], d);
      total += min_dist[static_cast<std::size_t>(i)];
    }
    Real target = rng.uniform() * total;
    Index chosen = n - 1;
    for (Index i = 0; i < n; ++i) {
      target -= min_dist[static_cast<std::size_t>(i)];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    for (Index j = 0; j < dim; ++j) centers(c, j) = points(chosen, j);
  }

  // Lloyd iterations.
  std::vector<Index> label(static_cast<std::size_t>(n), 0);
  std::vector<Index> count(static_cast<std::size_t>(k), 0);
  for (Index it = 0; it < options.max_iterations; ++it) {
    bool changed = false;
    for (Index i = 0; i < n; ++i) {
      Real best = std::numeric_limits<Real>::infinity();
      Index best_c = 0;
      for (Index c = 0; c < k; ++c) {
        const Real d = row_to_center_distance(points, i, centers, c);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (label[static_cast<std::size_t>(i)] != best_c) {
        label[static_cast<std::size_t>(i)] = best_c;
        changed = true;
      }
    }
    if (!changed && it > 0) break;

    // Recompute centers; empty clusters re-seed at the farthest point.
    la::DenseMatrix sums(k, dim);
    std::fill(count.begin(), count.end(), Index{0});
    for (Index i = 0; i < n; ++i) {
      const Index c = label[static_cast<std::size_t>(i)];
      ++count[static_cast<std::size_t>(c)];
      for (Index j = 0; j < dim; ++j) sums(c, j) += points(i, j);
    }
    for (Index c = 0; c < k; ++c) {
      if (count[static_cast<std::size_t>(c)] == 0) {
        const Index pick = rng.uniform_int(n);
        for (Index j = 0; j < dim; ++j) centers(c, j) = points(pick, j);
        continue;
      }
      const Real inv = 1.0 / static_cast<Real>(count[static_cast<std::size_t>(c)]);
      for (Index j = 0; j < dim; ++j) centers(c, j) = sums(c, j) * inv;
    }
  }
  return label;
}

std::vector<Index> spectral_clusters(const graph::Graph& g, Index k,
                                     const EmbeddingOptions& embedding,
                                     const KMeansOptions& kmeans_options) {
  const Embedding emb = compute_embedding(g, embedding);
  return kmeans(emb.u, k, kmeans_options);
}

std::vector<std::array<Real, 2>> spectral_layout(
    const graph::Graph& g, const EmbeddingOptions& embedding) {
  EmbeddingOptions opt = embedding;
  opt.r = std::max<Index>(opt.r, 3);  // need u2 and u3
  const Embedding emb = compute_embedding(g, opt);
  std::vector<std::array<Real, 2>> coords(
      static_cast<std::size_t>(g.num_nodes()));
  for (Index i = 0; i < g.num_nodes(); ++i)
    coords[static_cast<std::size_t>(i)] = {emb.u(i, 0), emb.u(i, 1)};
  return coords;
}

}  // namespace sgl::spectral
