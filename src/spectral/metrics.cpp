#include "spectral/metrics.hpp"

#include <cmath>
#include <optional>

#include "common/rng.hpp"

namespace sgl::spectral {

Real pearson_correlation(const la::Vector& a, const la::Vector& b) {
  SGL_EXPECTS(a.size() == b.size() && a.size() >= 2,
              "pearson_correlation: need two equal samples of size >= 2");
  const Real ma = la::mean(a);
  const Real mb = la::mean(b);
  Real cov = 0.0;
  Real va = 0.0;
  Real vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Real da = a[i] - ma;
    const Real db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  const Real denom = std::sqrt(va * vb);
  if (denom == 0.0) return (va == vb) ? 1.0 : 0.0;
  return cov / denom;
}

Real mean_relative_error(const la::Vector& reference, const la::Vector& approx) {
  SGL_EXPECTS(reference.size() == approx.size() && !reference.empty(),
              "mean_relative_error: size mismatch");
  Real acc = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    acc += std::abs(reference[i] - approx[i]) /
           std::max(std::abs(reference[i]), Real{1e-300});
  }
  return acc / static_cast<Real>(reference.size());
}

SpectrumComparison compare_spectra(const graph::Graph& reference,
                                   const graph::Graph& learned, Index k,
                                   const EmbeddingOptions& options,
                                   const ComparisonSolvers& solvers) {
  SGL_EXPECTS(reference.num_nodes() == learned.num_nodes() || k >= 1,
              "compare_spectra: k must be positive");
  const eig::LanczosOptions& lanczos = options.lanczos;
  const Index k_ref = std::min(k, reference.num_nodes() - 1);
  const Index k_learned = std::min(k, learned.num_nodes() - 1);
  const Index kk = std::min(k_ref, k_learned);

  // Each graph sizes its own auto cap: the graphs may differ in node
  // count (reduced-network comparisons), and a shared cap clamped by the
  // smaller graph would starve the larger one's eigensolver.
  eig::LanczosOptions opt_ref = lanczos;
  eig::LanczosOptions opt_learned = lanczos;
  if (lanczos.max_subspace == 0) {
    opt_ref.max_subspace = eig::spectrum_subspace_cap(
        reference.num_nodes(), kk, lanczos.block_size);
    opt_learned.max_subspace = eig::spectrum_subspace_cap(
        learned.num_nodes(), kk, lanczos.block_size);
  }

  // Caller-provided warm solvers are used as-is; missing sides build
  // their own (the historical per-call construction).
  std::optional<solver::LaplacianPinvSolver> local_ref;
  if (solvers.reference == nullptr) local_ref.emplace(reference, options.solver);
  std::optional<solver::LaplacianPinvSolver> local_learned;
  if (solvers.learned == nullptr) local_learned.emplace(learned, options.solver);
  const solver::LaplacianPinvSolver& pinv_ref =
      solvers.reference != nullptr ? *solvers.reference : *local_ref;
  const solver::LaplacianPinvSolver& pinv_learned =
      solvers.learned != nullptr ? *solvers.learned : *local_learned;
  SpectrumComparison out;
  out.reference =
      eig::smallest_laplacian_eigenpairs(pinv_ref, kk, opt_ref).eigenvalues;
  out.approx =
      eig::smallest_laplacian_eigenpairs(pinv_learned, kk, opt_learned)
          .eigenvalues;
  out.correlation = pearson_correlation(out.reference, out.approx);
  out.mean_rel_error = mean_relative_error(out.reference, out.approx);
  return out;
}

std::vector<std::pair<Index, Index>> sample_node_pairs(Index num_nodes,
                                                       Index count,
                                                       std::uint64_t seed) {
  SGL_EXPECTS(num_nodes >= 2, "sample_node_pairs: need at least two nodes");
  SGL_EXPECTS(count >= 1, "sample_node_pairs: count must be positive");
  Rng rng(seed);
  std::vector<std::pair<Index, Index>> pairs;
  pairs.reserve(static_cast<std::size_t>(count));
  while (to_index(pairs.size()) < count) {
    const Index s = rng.uniform_int(num_nodes);
    const Index t = rng.uniform_int(num_nodes);
    if (s != t) pairs.emplace_back(s, t);
  }
  return pairs;
}

std::vector<std::pair<Index, Index>> sample_node_pairs_by_hops(
    const graph::Graph& g, Index count, std::uint64_t seed, Index max_hops) {
  SGL_EXPECTS(g.num_nodes() >= 2, "sample_node_pairs_by_hops: graph too small");
  SGL_EXPECTS(count >= 1, "sample_node_pairs_by_hops: count must be positive");
  SGL_EXPECTS(max_hops >= 1, "sample_node_pairs_by_hops: max_hops must be positive");
  const graph::AdjacencyList adj = g.adjacency_list();
  Rng rng(seed);
  std::vector<std::pair<Index, Index>> pairs;
  pairs.reserve(static_cast<std::size_t>(count));
  Index hops = 1;
  while (to_index(pairs.size()) < count) {
    const Index s = rng.uniform_int(g.num_nodes());
    Index t = s;
    for (Index step = 0; step < hops; ++step) {
      const Index degree = adj.degree(t);
      if (degree == 0) break;
      const Index pick = adj.row_ptr[static_cast<std::size_t>(t)] +
                         rng.uniform_int(degree);
      t = adj.neighbor[static_cast<std::size_t>(pick)];
    }
    if (t != s) pairs.emplace_back(s, t);
    hops *= 2;
    if (hops > max_hops) hops = 1;
  }
  return pairs;
}

ResistanceComparison compare_effective_resistances(
    const graph::Graph& reference, const graph::Graph& learned,
    const std::vector<std::pair<Index, Index>>& pairs,
    const EmbeddingOptions& options, const ComparisonSolvers& solvers) {
  SGL_EXPECTS(reference.num_nodes() == learned.num_nodes(),
              "compare_effective_resistances: node count mismatch");
  std::optional<solver::LaplacianPinvSolver> local_ref;
  if (solvers.reference == nullptr) local_ref.emplace(reference, options.solver);
  std::optional<solver::LaplacianPinvSolver> local_learned;
  if (solvers.learned == nullptr) local_learned.emplace(learned, options.solver);
  const solver::LaplacianPinvSolver& pinv_ref =
      solvers.reference != nullptr ? *solvers.reference : *local_ref;
  const solver::LaplacianPinvSolver& pinv_learned =
      solvers.learned != nullptr ? *solvers.learned : *local_learned;

  // All probe vectors e_s − e_t go through one multi-RHS block solve per
  // graph instead of a solve per pair.
  const Index n = reference.num_nodes();
  la::DenseMatrix probes(n, to_index(pairs.size()));
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const auto& [s, t] = pairs[p];
    SGL_EXPECTS(s >= 0 && s < n && t >= 0 && t < n && s != t,
                "compare_effective_resistances: bad node pair");
    probes(s, to_index(p)) = 1.0;
    probes(t, to_index(p)) = -1.0;
  }
  const la::DenseMatrix x_ref = pinv_ref.apply_block(probes);
  const la::DenseMatrix x_learned = pinv_learned.apply_block(probes);

  ResistanceComparison out;
  out.reference.reserve(pairs.size());
  out.approx.reserve(pairs.size());
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const auto& [s, t] = pairs[p];
    out.reference.push_back(x_ref(s, to_index(p)) - x_ref(t, to_index(p)));
    out.approx.push_back(x_learned(s, to_index(p)) - x_learned(t, to_index(p)));
  }
  out.correlation = pearson_correlation(out.reference, out.approx);
  return out;
}

}  // namespace sgl::spectral
