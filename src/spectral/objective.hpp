// Graphical-Lasso objective evaluation (paper eq. 2 with β = 0):
//   F(Θ) = log det(Θ) − (1/M)·Tr(XᵀΘX),  Θ = L + I/σ².
//
// As in the paper's experiments, log det is approximated with the first K
// nonzero Laplacian eigenvalues (K = 50 by default); the trace term is
// exact and costs O(|E|·M).
#pragma once

#include "graph/graph.hpp"
#include "la/dense_matrix.hpp"
#include "spectral/embedding.hpp"

namespace sgl::spectral {

struct ObjectiveOptions {
  Index num_eigenvalues = 50;  // K nonzero eigenvalues for log det
  /// σ², Lanczos and solver knobs (shared with the embedding seam).
  /// embedding.r and embedding.engine are ignored: the log det spectrum
  /// always comes from the exact eigensolve path.
  EmbeddingOptions embedding;
};

struct ObjectiveBreakdown {
  Real log_det = 0.0;     // Σ log(λ_i + 1/σ²) over the trivial + K pairs
  Real trace_term = 0.0;  // (1/M)·Tr(XᵀΘX)
  [[nodiscard]] Real value() const { return log_det - trace_term; }
};

/// Evaluates F for a connected graph against measurements X.
[[nodiscard]] ObjectiveBreakdown graphical_lasso_objective(
    const graph::Graph& g, const la::DenseMatrix& x,
    const ObjectiveOptions& options = {});

/// Context-aware overload (DESIGN.md §8): the log-det eigensolve reuses
/// `context->acquire(g)` — for the learner that is the SAME warm
/// factorization the iteration's embedding just used — instead of
/// building a fresh LaplacianPinvSolver. Null context ⇒ plain overload.
[[nodiscard]] ObjectiveBreakdown graphical_lasso_objective(
    const graph::Graph& g, const la::DenseMatrix& x,
    const ObjectiveOptions& options, solver::SolverContext* context);

/// Tr(XᵀLX) = Σ_{(s,t)∈E} w_st ‖X(s,:) − X(t,:)‖² — the Laplacian
/// quadratic form of eq. (1) summed over measurement columns.
[[nodiscard]] Real laplacian_quadratic_trace(const graph::Graph& g,
                                             const la::DenseMatrix& x);

/// F evaluated at the best uniform weight rescaling of the graph.
/// Restricted to Θ(c) = cL + I/σ², F(c) ≈ K log c − c·T + const with
/// T = (1/M)Tr(XᵀLX), maximized at c* = K/T. Comparing graphs at their
/// own c* removes the global-scale confounder of the eq. 21–23
/// calibration and isolates the quality of the learned topology and
/// relative weights.
struct ScaledObjective {
  Real scale = 1.0;  // c*
  ObjectiveBreakdown objective;
};
[[nodiscard]] ScaledObjective optimal_scale_objective(
    const graph::Graph& g, const la::DenseMatrix& x,
    const ObjectiveOptions& options = {});

}  // namespace sgl::spectral
