// Spectral graph sparsification by effective resistances
// (Spielman–Srivastava, the paper's reference [10]).
//
// SGL is framed as the *densification* dual of spectral sparsification:
// sparsification samples edges of a dense graph with probability
// proportional to the leverage score w_e·Reff(e) and reweights them so the
// sparsifier's Laplacian approximates the original's; SGL adds edges until
// the analogous distortion reaches 1. Having both directions in one
// library lets users round-trip: densify from measurements, sparsify a
// dense candidate graph, compare spectra.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "measure/resistance_sketch.hpp"

namespace sgl::spectral {

struct SparsifyOptions {
  /// Target quality: resistances sketched to (1±ε); the number of sampled
  /// edges grows as O(N log N / ε²).
  Real epsilon = 0.5;
  /// Oversampling constant C in q = C·N·log(N)/ε² samples.
  Real oversampling = 0.4;
  /// Explicit sample count (0 = derive from epsilon/oversampling).
  Index num_samples = 0;
  std::uint64_t seed = 1234;
  measure::SketchOptions sketch;
};

struct SparsifyResult {
  graph::Graph sparsifier;
  Index samples_drawn = 0;   // q (with repetition)
  Index distinct_edges = 0;  // edges surviving in the sparsifier
};

/// Samples edges with probability ∝ w_e·R̃eff(e) (leverage scores from the
/// JL sketch) and reweights each kept edge by w_e/(q·p_e), so the
/// sparsifier is an unbiased Laplacian estimator. The input graph must be
/// connected.
[[nodiscard]] SparsifyResult spectral_sparsify(
    const graph::Graph& g, const SparsifyOptions& options = {});

}  // namespace sgl::spectral
