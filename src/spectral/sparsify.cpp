#include "spectral/sparsify.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/rng.hpp"

namespace sgl::spectral {

SparsifyResult spectral_sparsify(const graph::Graph& g,
                                 const SparsifyOptions& options) {
  SGL_EXPECTS(g.num_edges() >= 1, "spectral_sparsify: graph has no edges");
  SGL_EXPECTS(options.epsilon > 0.0 && options.epsilon < 1.0,
              "spectral_sparsify: epsilon must lie in (0, 1)");

  // Approximate effective resistances from one JL sketch (near-linear:
  // O(log N) Laplacian solves).
  measure::SketchOptions sketch_options = options.sketch;
  if (sketch_options.num_projections == 0)
    sketch_options.epsilon = std::min(options.epsilon, Real{0.3});
  const measure::ResistanceSketch sketch(g, sketch_options);

  // Leverage scores p_e ∝ w_e·Reff(e); Σ_e w_e Reff(e) = N − 1 exactly,
  // so the normalized scores form a genuine distribution.
  const Index m = g.num_edges();
  std::vector<Real> leverage(static_cast<std::size_t>(m));
  Real total = 0.0;
  for (Index e = 0; e < m; ++e) {
    const graph::Edge& edge = g.edge(e);
    leverage[static_cast<std::size_t>(e)] =
        edge.weight * std::max(sketch.estimate(edge.s, edge.t), Real{0.0});
    total += leverage[static_cast<std::size_t>(e)];
  }
  SGL_ENSURES(total > 0.0, "spectral_sparsify: degenerate leverage scores");

  Index q = options.num_samples;
  if (q <= 0) {
    const Real n = static_cast<Real>(g.num_nodes());
    q = static_cast<Index>(std::ceil(options.oversampling * n * std::log(n) /
                                     (options.epsilon * options.epsilon)));
  }
  q = std::max<Index>(q, 1);

  // Cumulative distribution for O(log m) sampling.
  std::vector<Real> cdf(static_cast<std::size_t>(m));
  Real acc = 0.0;
  for (Index e = 0; e < m; ++e) {
    acc += leverage[static_cast<std::size_t>(e)] / total;
    cdf[static_cast<std::size_t>(e)] = acc;
  }
  cdf.back() = 1.0;

  Rng rng(options.seed);
  std::map<Index, Real> sampled_weight;  // edge id -> accumulated weight
  for (Index draw = 0; draw < q; ++draw) {
    const Real u = rng.uniform();
    const Index e = to_index(static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin()));
    const Real p = leverage[static_cast<std::size_t>(e)] / total;
    sampled_weight[e] += g.edge(e).weight / (static_cast<Real>(q) * p);
  }

  SparsifyResult result;
  result.samples_drawn = q;
  result.sparsifier = graph::Graph(g.num_nodes());
  for (const auto& [e, w] : sampled_weight) {
    result.sparsifier.add_edge(g.edge(e).s, g.edge(e).t, w);
  }
  result.distinct_edges = result.sparsifier.num_edges();
  return result;
}

}  // namespace sgl::spectral
