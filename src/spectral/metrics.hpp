// Spectral comparison metrics used by the evaluation figures: eigenvalue
// scatter data, Pearson correlation, and effective-resistance correlation
// between a ground-truth graph and a learned graph.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "spectral/embedding.hpp"

namespace sgl::spectral {

/// Pearson correlation coefficient of two equal-length samples.
[[nodiscard]] Real pearson_correlation(const la::Vector& a,
                                       const la::Vector& b);

/// Mean relative error |a_i − b_i| / max(|a_i|, tiny), averaged.
[[nodiscard]] Real mean_relative_error(const la::Vector& reference,
                                       const la::Vector& approx);

struct SpectrumComparison {
  la::Vector reference;  // first K nontrivial eigenvalues of the truth
  la::Vector approx;     // same for the learned graph
  Real correlation = 0.0;
  Real mean_rel_error = 0.0;
};

/// Computes the first K nontrivial eigenvalues of both graphs and the
/// scatter statistics the paper plots ("True" vs "Appr." eigenvalues).
/// Only options.lanczos/.solver are read (the comparison always runs the
/// exact eigensolve path; r/sigma2/engine do not apply).
/// Optional caller-provided solvers for the comparison routines below
/// (DESIGN.md §8): either side may be null (that side builds its own
/// solver from options.solver, the historical behavior). A non-null
/// solver MUST belong to the matching graph in its CURRENT state — e.g.
/// a SolverContext's warm solver right after acquire() on that graph.
struct ComparisonSolvers {
  const solver::LaplacianPinvSolver* reference = nullptr;
  const solver::LaplacianPinvSolver* learned = nullptr;
};

[[nodiscard]] SpectrumComparison compare_spectra(
    const graph::Graph& reference, const graph::Graph& learned, Index k,
    const EmbeddingOptions& options = {},
    const ComparisonSolvers& solvers = {});

/// Uniformly random distinct node pairs (s ≠ t).
[[nodiscard]] std::vector<std::pair<Index, Index>> sample_node_pairs(
    Index num_nodes, Index count, std::uint64_t seed);

/// Node pairs stratified by graph distance: each pair is (s, endpoint of a
/// random walk of 1, 2, 4, … up to max_hops hops from s). Mixing scales
/// this way yields effective resistances spanning short- and long-range
/// values — the spread visible in the paper's Fig. 7 scatters, which a
/// uniform sampler misses on meshes (distant-pair Reff is nearly
/// constant).
[[nodiscard]] std::vector<std::pair<Index, Index>> sample_node_pairs_by_hops(
    const graph::Graph& g, Index count, std::uint64_t seed,
    Index max_hops = 64);

struct ResistanceComparison {
  la::Vector reference;  // Reff on the ground-truth graph, per pair
  la::Vector approx;     // Reff on the learned graph, per pair
  Real correlation = 0.0;
};

/// Exact effective resistances on both graphs over the given pairs
/// (Fig. 7 scatter data). Only options.solver is read.
[[nodiscard]] ResistanceComparison compare_effective_resistances(
    const graph::Graph& reference, const graph::Graph& learned,
    const std::vector<std::pair<Index, Index>>& pairs,
    const EmbeddingOptions& options = {},
    const ComparisonSolvers& solvers = {});

}  // namespace sgl::spectral
