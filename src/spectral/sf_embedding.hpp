// Solver-free spectral embedding (SF-SGL, arXiv 2302.04384).
//
// Replaces the Lanczos + Laplacian-pinv path of the exact engine with a
// multilevel construction that never solves a linear system:
//
//   1. Coarsen the graph by repeated heavy-edge matching into a hierarchy
//      small enough that a random block spans its low spectrum.
//   2. Fill a seeded Gaussian test block on the coarsest graph and smooth
//      it with weighted Jacobi (X ← X − ω D⁻¹ L X) — each sweep damps
//      high-frequency components, leaving low-pass-filtered vectors.
//   3. Walk the hierarchy back up: piecewise-constant prolongation (copy
//      each aggregate's value to its fine nodes), then smooth again at
//      every level.
//   4. At the finest level, deflate the constant nullspace, orthonormalize
//      the block, and run one Rayleigh–Ritz projection (a t × t dense
//      eigenproblem) to recover approximate Laplacian eigenpairs with the
//      correct eigenvalue scale for the 1/√(λ + 1/σ²) column weighting of
//      paper eq. 12.
//
// Cost: O(sweeps · |E| · t) — no factorization, no PCG, no Lanczos.
// Determinism: the hierarchy and the random block are pure functions of
// the seed, and every kernel on the hot path (spmm, block products,
// column centering) is bit-identical for every thread count, so the
// result honors the repo determinism contract.
#pragma once

#include "spectral/embedding.hpp"

namespace sgl::spectral {

/// Computes the solver-free embedding of a connected graph. Produces the
/// same Embedding shape as the exact engine: r−1 scaled Ritz vector
/// columns with ascending Ritz values, engine diagnostics filled in
/// (engine_used, smoother_sweeps, hierarchy_levels).
[[nodiscard]] Embedding compute_sf_embedding(const graph::Graph& g,
                                             const EmbeddingOptions& options);

}  // namespace sgl::spectral
