// Unit tests for the HNSW approximate nearest-neighbor index.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "knn/brute_force.hpp"
#include "knn/hnsw.hpp"

namespace sgl::knn {
namespace {

la::DenseMatrix random_points(Index n, Index dim, std::uint64_t seed) {
  Rng rng(seed);
  la::DenseMatrix x(n, dim);
  for (Index j = 0; j < dim; ++j)
    for (Index i = 0; i < n; ++i) x(i, j) = rng.normal();
  return x;
}

/// Fraction of true k-nearest neighbors recovered by the index.
Real recall(const KnnResult& exact, const KnnResult& approx) {
  SGL_EXPECTS(exact.k == approx.k, "recall: k mismatch");
  const Index n = exact.num_points();
  Index hits = 0;
  for (Index i = 0; i < n; ++i) {
    for (Index a = 0; a < approx.k; ++a) {
      const Index cand = approx.neighbor[static_cast<std::size_t>(i) * approx.k + a];
      for (Index e = 0; e < exact.k; ++e) {
        if (exact.neighbor[static_cast<std::size_t>(i) * exact.k + e] == cand) {
          ++hits;
          break;
        }
      }
    }
  }
  return static_cast<Real>(hits) / static_cast<Real>(n * exact.k);
}

TEST(Hnsw, PerfectRecallOnTinySet) {
  const la::DenseMatrix x = random_points(30, 4, 1);
  const KnnResult exact = brute_force_knn(x, 3);
  const KnnResult approx = hnsw_knn(x, 3);
  EXPECT_GE(recall(exact, approx), 0.99);
}

class HnswRecallSweep
    : public ::testing::TestWithParam<std::tuple<Index, Index>> {};

TEST_P(HnswRecallSweep, HighRecallOnRandomData) {
  const auto [n, dim] = GetParam();
  const la::DenseMatrix x = random_points(n, dim, 7);
  const KnnResult exact = brute_force_knn(x, 5);
  HnswOptions options;
  options.ef_search = 96;
  const KnnResult approx = hnsw_knn(x, 5, options);
  EXPECT_GE(recall(exact, approx), 0.9) << "n=" << n << " dim=" << dim;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, HnswRecallSweep,
    ::testing::Values(std::tuple<Index, Index>{200, 3},
                      std::tuple<Index, Index>{500, 10},
                      std::tuple<Index, Index>{1000, 25},
                      std::tuple<Index, Index>{1500, 50}));

TEST(Hnsw, DeterministicGivenSeed) {
  const la::DenseMatrix x = random_points(300, 6, 3);
  const KnnResult a = hnsw_knn(x, 4);
  const KnnResult b = hnsw_knn(x, 4);
  EXPECT_EQ(a.neighbor, b.neighbor);
  EXPECT_EQ(a.distance_squared, b.distance_squared);
}

TEST(Hnsw, SearchExcludesSelf) {
  const la::DenseMatrix x = random_points(100, 5, 9);
  const HnswIndex index(x);
  for (Index q = 0; q < 100; q += 7) {
    for (const auto& [d, node] : index.search_point(q, 5)) {
      EXPECT_NE(node, q);
      EXPECT_GE(d, 0.0);
    }
  }
}

TEST(Hnsw, ResultsSortedByDistance) {
  const la::DenseMatrix x = random_points(200, 8, 11);
  const HnswIndex index(x);
  const auto found = index.search_point(0, 10);
  for (std::size_t i = 1; i < found.size(); ++i)
    EXPECT_LE(found[i - 1].first, found[i].first);
}

TEST(Hnsw, ContractsOnBadOptions) {
  const la::DenseMatrix x = random_points(10, 2, 1);
  HnswOptions options;
  options.max_connections = 1;
  EXPECT_THROW(HnswIndex(x, options), ContractViolation);
  options.max_connections = 16;
  options.ef_construction = 4;
  EXPECT_THROW(HnswIndex(x, options), ContractViolation);
}

TEST(Hnsw, KnnAllThreadedMatchesSerialBitForBit) {
  // Index construction is serial; batched queries are read-only with
  // per-worker scratch, so every thread count must return exactly the
  // serial answer.
  const la::DenseMatrix x = random_points(400, 8, 17);
  const HnswIndex index(x);
  const KnnResult serial = index.knn_all(4, 1);
  for (const Index threads : {2, 4, 8}) {
    const KnnResult parallel = index.knn_all(4, threads);
    EXPECT_EQ(parallel.neighbor, serial.neighbor) << "threads=" << threads;
    EXPECT_EQ(parallel.distance_squared, serial.distance_squared)
        << "threads=" << threads;
  }
}

TEST(Hnsw, SearchPointMatchesScratchFreePath) {
  // The public search_point (fresh scratch per call) and knn_all (reused
  // per-worker scratch) must agree query by query.
  const la::DenseMatrix x = random_points(150, 5, 23);
  const HnswIndex index(x);
  const KnnResult batch = index.knn_all(3, 4);
  for (Index q = 0; q < 150; q += 11) {
    const auto found = index.search_point(q, 3);
    ASSERT_EQ(found.size(), 3u);
    for (Index j = 0; j < 3; ++j) {
      EXPECT_EQ(batch.neighbor[static_cast<std::size_t>(q) * 3 + j],
                found[static_cast<std::size_t>(j)].second);
      EXPECT_EQ(batch.distance_squared[static_cast<std::size_t>(q) * 3 + j],
                found[static_cast<std::size_t>(j)].first);
    }
  }
}

TEST(Hnsw, KnnAllHandlesAllDuplicatePoints) {
  // Pathological input: every point coincides, so all distances are zero
  // and search results can run short. Regression for the unsigned
  // found.size() - 1 underflow in knn_all's fill loop.
  la::DenseMatrix x(20, 3);
  for (Index i = 0; i < 20; ++i)
    for (Index j = 0; j < 3; ++j) x(i, j) = 4.2;
  const KnnResult r = hnsw_knn(x, 3);
  ASSERT_EQ(r.num_points(), 20);
  for (Index i = 0; i < 20; ++i) {
    for (Index j = 0; j < 3; ++j) {
      const Index nb = r.neighbor[static_cast<std::size_t>(i) * 3 + j];
      EXPECT_NE(nb, kInvalidIndex);
      EXPECT_NE(nb, i);
      EXPECT_DOUBLE_EQ(r.distance_squared[static_cast<std::size_t>(i) * 3 + j],
                       0.0);
    }
  }
}

TEST(Hnsw, ParallelBuildMatchesSerialEdgeForEdge) {
  // The generation-parallel build must produce the EXACT serial graph —
  // entry point, max level, per-node levels, and every adjacency list in
  // order — for every thread count (DESIGN.md §9). N is above the serial
  // build threshold so the generation machinery actually engages.
  const la::DenseMatrix x = random_points(1200, 8, 31);
  const HnswIndex serial(x, {}, 1);
  for (const Index threads : {2, 4, 8}) {
    const HnswIndex parallel(x, {}, threads);
    EXPECT_EQ(parallel.entry_point(), serial.entry_point())
        << "threads=" << threads;
    ASSERT_EQ(parallel.max_level(), serial.max_level())
        << "threads=" << threads;
    for (Index node = 0; node < 1200; ++node) {
      ASSERT_EQ(parallel.level_of(node), serial.level_of(node))
          << "node=" << node << " threads=" << threads;
      for (Index level = 0; level <= serial.level_of(node); ++level) {
        EXPECT_EQ(parallel.links(node, level), serial.links(node, level))
            << "node=" << node << " level=" << level
            << " threads=" << threads;
      }
    }
  }
}

TEST(Hnsw, ParallelBuildActuallySpeculates) {
  // Guard against the parallel path silently degrading to per-node
  // serial fallbacks: on a non-trivial build most speculations must
  // survive validation and commit.
  const la::DenseMatrix x = random_points(1024, 6, 41);
  const HnswIndex index(x, {}, 4);
  const HnswBuildStats& stats = index.build_stats();
  EXPECT_GT(stats.num_generations, 0);
  EXPECT_GT(stats.committed_speculative, 0);
  EXPECT_GT(stats.committed_speculative, stats.fallback_serial);
}

TEST(Hnsw, ParallelBuildQueriesMatchSerialBuild) {
  // End-to-end: the full hnsw_knn pipeline (parallel build + parallel
  // queries) returns the serial pipeline's bytes.
  const la::DenseMatrix x = random_points(800, 10, 53);
  const KnnResult serial = hnsw_knn(x, 5, {}, 1);
  const KnnResult parallel = hnsw_knn(x, 5, {}, 4);
  EXPECT_EQ(parallel.neighbor, serial.neighbor);
  EXPECT_EQ(parallel.distance_squared, serial.distance_squared);
}

TEST(Hnsw, SmallBuildIgnoresThreadCount) {
  // Below the serial threshold the build is serial regardless of the
  // requested workers; the graph must still be the canonical one.
  const la::DenseMatrix x = random_points(96, 4, 67);
  const HnswIndex serial(x, {}, 1);
  const HnswIndex parallel(x, {}, 8);
  EXPECT_EQ(parallel.entry_point(), serial.entry_point());
  EXPECT_EQ(parallel.max_level(), serial.max_level());
  for (Index node = 0; node < 96; ++node)
    for (Index level = 0; level <= serial.level_of(node); ++level)
      EXPECT_EQ(parallel.links(node, level), serial.links(node, level));
}

TEST(Hnsw, ClusterStructurePreserved) {
  // Two well-separated Gaussian blobs: every neighbor must stay within the
  // query's own blob.
  Rng rng(13);
  const Index per_blob = 100;
  la::DenseMatrix x(2 * per_blob, 3);
  for (Index i = 0; i < per_blob; ++i)
    for (Index j = 0; j < 3; ++j) x(i, j) = rng.normal() * 0.1;
  for (Index i = per_blob; i < 2 * per_blob; ++i)
    for (Index j = 0; j < 3; ++j) x(i, j) = 50.0 + rng.normal() * 0.1;
  const KnnResult r = hnsw_knn(x, 5);
  for (Index i = 0; i < 2 * per_blob; ++i) {
    const bool first_blob = i < per_blob;
    for (Index j = 0; j < 5; ++j) {
      const Index nb = r.neighbor[static_cast<std::size_t>(i) * 5 + j];
      EXPECT_EQ(nb < per_blob, first_blob) << "cross-blob neighbor";
    }
  }
}

}  // namespace
}  // namespace sgl::knn
