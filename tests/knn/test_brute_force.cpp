// Unit tests for exact kNN search.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "knn/brute_force.hpp"

namespace sgl::knn {
namespace {

la::DenseMatrix line_points(Index n) {
  // Points 0, 1, 2, … on a 1-D line (one column).
  la::DenseMatrix x(n, 1);
  for (Index i = 0; i < n; ++i) x(i, 0) = static_cast<Real>(i);
  return x;
}

TEST(BruteForce, LinePointsNearestAreAdjacent) {
  const KnnResult r = brute_force_knn(line_points(5), 2);
  EXPECT_EQ(r.num_points(), 5);
  // Point 2's two nearest are 1 and 3 (distance 1 each).
  EXPECT_DOUBLE_EQ(r.distance_squared[2 * 2 + 0], 1.0);
  EXPECT_DOUBLE_EQ(r.distance_squared[2 * 2 + 1], 1.0);
  const Index n0 = r.neighbor[2 * 2 + 0];
  const Index n1 = r.neighbor[2 * 2 + 1];
  EXPECT_TRUE((n0 == 1 && n1 == 3) || (n0 == 3 && n1 == 1));
}

TEST(BruteForce, EndpointNeighborsAreOrdered) {
  const KnnResult r = brute_force_knn(line_points(6), 3);
  // Point 0: neighbors 1, 2, 3 at distances 1, 4, 9.
  EXPECT_EQ(r.neighbor[0], 1);
  EXPECT_EQ(r.neighbor[1], 2);
  EXPECT_EQ(r.neighbor[2], 3);
  EXPECT_DOUBLE_EQ(r.distance_squared[2], 9.0);
}

TEST(BruteForce, ExcludesSelf) {
  const KnnResult r = brute_force_knn(line_points(4), 3);
  for (Index i = 0; i < 4; ++i)
    for (Index j = 0; j < 3; ++j)
      EXPECT_NE(r.neighbor[static_cast<std::size_t>(i) * 3 + j], i);
}

TEST(BruteForce, DistancesNonDecreasingPerPoint) {
  Rng rng(4);
  la::DenseMatrix x(50, 8);
  for (Index j = 0; j < 8; ++j)
    for (Index i = 0; i < 50; ++i) x(i, j) = rng.normal();
  const KnnResult r = brute_force_knn(x, 10);
  for (Index i = 0; i < 50; ++i)
    for (Index j = 1; j < 10; ++j)
      EXPECT_LE(r.distance_squared[static_cast<std::size_t>(i) * 10 + j - 1],
                r.distance_squared[static_cast<std::size_t>(i) * 10 + j]);
}

TEST(BruteForce, DuplicatePointsHaveZeroDistance) {
  la::DenseMatrix x(3, 2);
  x(0, 0) = 1.0; x(0, 1) = 2.0;
  x(1, 0) = 1.0; x(1, 1) = 2.0;  // duplicate of row 0
  x(2, 0) = 9.0; x(2, 1) = 9.0;
  const KnnResult r = brute_force_knn(x, 1);
  EXPECT_EQ(r.neighbor[0], 1);
  EXPECT_DOUBLE_EQ(r.distance_squared[0], 0.0);
}

TEST(BruteForce, ContractsOnBadK) {
  const la::DenseMatrix x = line_points(4);
  EXPECT_THROW(brute_force_knn(x, 0), ContractViolation);
  EXPECT_THROW(brute_force_knn(x, 4), ContractViolation);
}

TEST(BruteForce, ThreadedResultMatchesSerialBitForBit) {
  Rng rng(11);
  la::DenseMatrix x(257, 6);
  for (Index j = 0; j < 6; ++j)
    for (Index i = 0; i < 257; ++i) x(i, j) = rng.normal();
  const KnnResult serial = brute_force_knn(x, 7, 1);
  for (const Index threads : {2, 4, 8}) {
    const KnnResult parallel = brute_force_knn(x, 7, threads);
    EXPECT_EQ(parallel.neighbor, serial.neighbor) << "threads=" << threads;
    EXPECT_EQ(parallel.distance_squared, serial.distance_squared)
        << "threads=" << threads;
  }
}

TEST(BruteForce, RowMajorConversionMatchesRows) {
  la::DenseMatrix x(3, 2);
  x(1, 0) = 5.0;
  x(1, 1) = -2.0;
  const std::vector<Real> rm = to_row_major(x);
  EXPECT_DOUBLE_EQ(rm[2], 5.0);
  EXPECT_DOUBLE_EQ(rm[3], -2.0);
  EXPECT_DOUBLE_EQ(point_distance_squared(rm, 2, 0, 1), 25.0 + 4.0);
}

}  // namespace
}  // namespace sgl::knn
