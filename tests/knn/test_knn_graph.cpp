// Unit tests for kNN graph construction.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "graph/components.hpp"
#include "knn/knn_graph.hpp"

namespace sgl::knn {
namespace {

la::DenseMatrix random_points(Index n, Index dim, std::uint64_t seed) {
  Rng rng(seed);
  la::DenseMatrix x(n, dim);
  for (Index j = 0; j < dim; ++j)
    for (Index i = 0; i < n; ++i) x(i, j) = rng.normal();
  return x;
}

TEST(KnnGraph, WeightsArePaperFormula) {
  // Colinear points 0, 1, 3 (distances² 1, 4, 9); with k = 1 the graph has
  // edges (0,1) and (1,3)… after symmetrization.
  la::DenseMatrix x(3, 2);
  x(0, 0) = 0.0; x(1, 0) = 1.0; x(2, 0) = 3.0;
  KnnGraphOptions options;
  options.k = 1;
  const graph::Graph g = build_knn_graph(x, options);
  const Real m = 2.0;  // number of measurement columns
  for (const graph::Edge& e : g.edges()) {
    const Real dist2 = x.row_distance_squared(e.s, e.t);
    EXPECT_NEAR(e.weight, m / dist2, 1e-12);
  }
}

TEST(KnnGraph, SymmetrizedUnionHasNoDuplicates) {
  const la::DenseMatrix x = random_points(60, 5, 2);
  KnnGraphOptions options;
  options.k = 4;
  const graph::Graph g = build_knn_graph(x, options);
  std::set<std::pair<Index, Index>> seen;
  for (const graph::Edge& e : g.edges()) {
    EXPECT_TRUE(seen.emplace(e.s, e.t).second) << "duplicate edge";
  }
}

TEST(KnnGraph, EdgeCountBounds) {
  // Union symmetrization: between N·k/2 (fully mutual) and N·k edges.
  const la::DenseMatrix x = random_points(100, 6, 3);
  KnnGraphOptions options;
  options.k = 5;
  options.ensure_connected = false;
  const graph::Graph g = build_knn_graph(x, options);
  EXPECT_GE(g.num_edges(), 100 * 5 / 2);
  EXPECT_LE(g.num_edges(), 100 * 5);
}

TEST(KnnGraph, EnsuresConnectivityAcrossBlobs) {
  // Two far-apart blobs with k small enough that the raw kNN graph is
  // disconnected; the builder must bridge them.
  Rng rng(5);
  la::DenseMatrix x(40, 2);
  for (Index i = 0; i < 20; ++i) {
    x(i, 0) = rng.normal() * 0.01;
    x(i, 1) = rng.normal() * 0.01;
  }
  for (Index i = 20; i < 40; ++i) {
    x(i, 0) = 100.0 + rng.normal() * 0.01;
    x(i, 1) = 100.0 + rng.normal() * 0.01;
  }
  KnnGraphOptions options;
  options.k = 3;
  options.ensure_connected = true;
  const graph::Graph g = build_knn_graph(x, options);
  EXPECT_TRUE(graph::is_connected(g));

  options.ensure_connected = false;
  const graph::Graph g2 = build_knn_graph(x, options);
  EXPECT_FALSE(graph::is_connected(g2));
}

TEST(KnnGraph, DuplicatePointsGetFiniteWeights) {
  la::DenseMatrix x(4, 2);
  // Rows 0 and 1 identical; rows 2, 3 distinct.
  x(2, 0) = 1.0;
  x(3, 0) = 2.0;
  KnnGraphOptions options;
  options.k = 2;
  const graph::Graph g = build_knn_graph(x, options);
  for (const graph::Edge& e : g.edges()) {
    EXPECT_TRUE(std::isfinite(e.weight));
    EXPECT_GT(e.weight, 0.0);
  }
}

TEST(KnnGraph, BackendsAgreeOnExactRegime) {
  // With generous ef_search, HNSW matches brute force on small data; the
  // resulting graphs should be nearly identical.
  const la::DenseMatrix x = random_points(150, 4, 7);
  KnnGraphOptions brute;
  brute.k = 4;
  brute.backend = KnnBackend::kBruteForce;
  KnnGraphOptions hnsw;
  hnsw.k = 4;
  hnsw.backend = KnnBackend::kHnsw;
  hnsw.hnsw.ef_search = 150;
  const graph::Graph g1 = build_knn_graph(x, brute);
  const graph::Graph g2 = build_knn_graph(x, hnsw);
  const Real overlap =
      std::min(g1.num_edges(), g2.num_edges()) /
      static_cast<Real>(std::max(g1.num_edges(), g2.num_edges()));
  EXPECT_GE(overlap, 0.95);
}

TEST(KnnGraph, Contracts) {
  const la::DenseMatrix x = random_points(10, 2, 1);
  KnnGraphOptions options;
  options.k = 10;
  EXPECT_THROW(build_knn_graph(x, options), ContractViolation);
  options.k = 0;
  EXPECT_THROW(build_knn_graph(x, options), ContractViolation);
}

}  // namespace
}  // namespace sgl::knn
