// Unit tests for kNN graph construction.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "core/sgl.hpp"
#include "graph/components.hpp"
#include "knn/knn_graph.hpp"

namespace sgl::knn {
namespace {

la::DenseMatrix random_points(Index n, Index dim, std::uint64_t seed) {
  Rng rng(seed);
  la::DenseMatrix x(n, dim);
  for (Index j = 0; j < dim; ++j)
    for (Index i = 0; i < n; ++i) x(i, j) = rng.normal();
  return x;
}

TEST(KnnGraph, WeightsArePaperFormula) {
  // Colinear points 0, 1, 3 (distances² 1, 4, 9); with k = 1 the graph has
  // edges (0,1) and (1,3)… after symmetrization.
  la::DenseMatrix x(3, 2);
  x(0, 0) = 0.0; x(1, 0) = 1.0; x(2, 0) = 3.0;
  KnnGraphOptions options;
  options.k = 1;
  const graph::Graph g = build_knn_graph(x, options);
  const Real m = 2.0;  // number of measurement columns
  for (const graph::Edge& e : g.edges()) {
    const Real dist2 = x.row_distance_squared(e.s, e.t);
    EXPECT_NEAR(e.weight, m / dist2, 1e-12);
  }
}

TEST(KnnGraph, SymmetrizedUnionHasNoDuplicates) {
  const la::DenseMatrix x = random_points(60, 5, 2);
  KnnGraphOptions options;
  options.k = 4;
  const graph::Graph g = build_knn_graph(x, options);
  std::set<std::pair<Index, Index>> seen;
  for (const graph::Edge& e : g.edges()) {
    EXPECT_TRUE(seen.emplace(e.s, e.t).second) << "duplicate edge";
  }
}

TEST(KnnGraph, EdgeCountBounds) {
  // Union symmetrization: between N·k/2 (fully mutual) and N·k edges.
  const la::DenseMatrix x = random_points(100, 6, 3);
  KnnGraphOptions options;
  options.k = 5;
  options.ensure_connected = false;
  const graph::Graph g = build_knn_graph(x, options);
  EXPECT_GE(g.num_edges(), 100 * 5 / 2);
  EXPECT_LE(g.num_edges(), 100 * 5);
}

TEST(KnnGraph, EnsuresConnectivityAcrossBlobs) {
  // Two far-apart blobs with k small enough that the raw kNN graph is
  // disconnected; the builder must bridge them.
  Rng rng(5);
  la::DenseMatrix x(40, 2);
  for (Index i = 0; i < 20; ++i) {
    x(i, 0) = rng.normal() * 0.01;
    x(i, 1) = rng.normal() * 0.01;
  }
  for (Index i = 20; i < 40; ++i) {
    x(i, 0) = 100.0 + rng.normal() * 0.01;
    x(i, 1) = 100.0 + rng.normal() * 0.01;
  }
  KnnGraphOptions options;
  options.k = 3;
  options.ensure_connected = true;
  const graph::Graph g = build_knn_graph(x, options);
  EXPECT_TRUE(graph::is_connected(g));

  options.ensure_connected = false;
  const graph::Graph g2 = build_knn_graph(x, options);
  EXPECT_FALSE(graph::is_connected(g2));
}

TEST(KnnGraph, DuplicatePointsGetFiniteWeights) {
  la::DenseMatrix x(4, 2);
  // Rows 0 and 1 identical; rows 2, 3 distinct.
  x(2, 0) = 1.0;
  x(3, 0) = 2.0;
  KnnGraphOptions options;
  options.k = 2;
  const graph::Graph g = build_knn_graph(x, options);
  for (const graph::Edge& e : g.edges()) {
    EXPECT_TRUE(std::isfinite(e.weight));
    EXPECT_GT(e.weight, 0.0);
  }
}

TEST(KnnGraph, WeightsScaleWithData) {
  // Regression for the scale-dependent duplicate-point floor: rescaling
  // the measurements by c must rescale every weight by exactly 1/c² (the
  // floor used to go absolute for median ≪ 1, clamping every distance and
  // flattening all weights).
  const la::DenseMatrix x = random_points(80, 4, 11);
  la::DenseMatrix x_small(80, 4);
  const Real c = 1e-6;
  for (Index j = 0; j < 4; ++j)
    for (Index i = 0; i < 80; ++i) x_small(i, j) = c * x(i, j);

  KnnGraphOptions options;
  options.k = 4;
  const graph::Graph g = build_knn_graph(x, options);
  const graph::Graph g_small = build_knn_graph(x_small, options);

  ASSERT_EQ(g.num_edges(), g_small.num_edges());
  std::map<std::pair<Index, Index>, Real> weights;
  for (const graph::Edge& e : g.edges()) weights[{e.s, e.t}] = e.weight;
  bool weights_vary = false;
  Real first_weight = -1.0;
  for (const graph::Edge& e : g_small.edges()) {
    const auto it = weights.find({e.s, e.t});
    ASSERT_NE(it, weights.end()) << "edge set changed under rescaling";
    // w_small = M / (c²·d²) = w / c².
    EXPECT_NEAR(e.weight * c * c, it->second, 1e-9 * it->second);
    if (first_weight < 0.0) first_weight = e.weight;
    if (std::abs(e.weight - first_weight) > 1e-6 * first_weight)
      weights_vary = true;
  }
  // The old bug flattened all small-scale weights to M/floor; distinct
  // distances must keep distinct weights.
  EXPECT_TRUE(weights_vary);
}

TEST(KnnGraph, ConnectsThreeComponentsWithFlooredBridges) {
  // Three well-separated blobs, k small enough that kNN stays inside each
  // blob: the repair loop must add bridges until one component remains,
  // and each bridge weight must be M/max(d², floor) for the closest
  // cross-component pair.
  Rng rng(17);
  const Index per_blob = 8;
  la::DenseMatrix x(3 * per_blob, 2);
  for (Index b = 0; b < 3; ++b)
    for (Index i = 0; i < per_blob; ++i) {
      x(b * per_blob + i, 0) = 1000.0 * b + rng.normal() * 0.01;
      x(b * per_blob + i, 1) = rng.normal() * 0.01;
    }

  KnnGraphOptions options;
  options.k = 2;
  options.ensure_connected = false;
  const graph::Graph raw = build_knn_graph(x, options);
  ASSERT_GE(graph::connected_components(raw).count, 3);

  options.ensure_connected = true;
  const graph::Graph g = build_knn_graph(x, options);
  EXPECT_TRUE(graph::is_connected(g));
  // Exactly one bridge per extra component.
  EXPECT_EQ(g.num_edges(),
            raw.num_edges() + graph::connected_components(raw).count - 1);

  // Bridges span blobs; their weight is the un-floored paper formula here
  // (cross-blob distances are far above the duplicate floor).
  const Real m = 2.0;
  Index bridges = 0;
  for (const graph::Edge& e : g.edges()) {
    if (e.s / per_blob == e.t / per_blob) continue;
    ++bridges;
    const Real d2 = x.row_distance_squared(e.s, e.t);
    EXPECT_NEAR(e.weight, m / d2, 1e-9 * (m / d2));
  }
  EXPECT_EQ(bridges, graph::connected_components(raw).count - 1);

  // The learner must initialize on such data: spanning tree over all
  // 3·per_blob nodes.
  core::SglConfig config;
  config.k = 2;
  core::SglLearner learner(x, config);
  EXPECT_TRUE(graph::is_connected(learner.current_graph()));
  EXPECT_EQ(learner.current_graph().num_edges(), 3 * per_blob - 1);
}

TEST(KnnGraph, ThreadedBuildMatchesSerialBitForBit) {
  const la::DenseMatrix x = random_points(120, 5, 29);
  KnnGraphOptions serial_opts;
  serial_opts.k = 4;
  serial_opts.num_threads = 1;
  const graph::Graph serial = build_knn_graph(x, serial_opts);
  for (const Index threads : {2, 4}) {
    KnnGraphOptions opts = serial_opts;
    opts.num_threads = threads;
    const graph::Graph parallel = build_knn_graph(x, opts);
    ASSERT_EQ(parallel.num_edges(), serial.num_edges());
    for (Index e = 0; e < serial.num_edges(); ++e) {
      EXPECT_EQ(parallel.edge(e).s, serial.edge(e).s);
      EXPECT_EQ(parallel.edge(e).t, serial.edge(e).t);
      EXPECT_EQ(parallel.edge(e).weight, serial.edge(e).weight);
    }
  }
}

TEST(KnnGraph, BackendsAgreeOnExactRegime) {
  // With generous ef_search, HNSW matches brute force on small data; the
  // resulting graphs should be nearly identical.
  const la::DenseMatrix x = random_points(150, 4, 7);
  KnnGraphOptions brute;
  brute.k = 4;
  brute.backend = KnnBackend::kBruteForce;
  KnnGraphOptions hnsw;
  hnsw.k = 4;
  hnsw.backend = KnnBackend::kHnsw;
  hnsw.hnsw.ef_search = 150;
  const graph::Graph g1 = build_knn_graph(x, brute);
  const graph::Graph g2 = build_knn_graph(x, hnsw);
  const Real overlap =
      std::min(g1.num_edges(), g2.num_edges()) /
      static_cast<Real>(std::max(g1.num_edges(), g2.num_edges()));
  EXPECT_GE(overlap, 0.95);
}

TEST(KnnGraph, Contracts) {
  const la::DenseMatrix x = random_points(10, 2, 1);
  KnnGraphOptions options;
  options.k = 10;
  EXPECT_THROW(build_knn_graph(x, options), ContractViolation);
  options.k = 0;
  EXPECT_THROW(build_knn_graph(x, options), ContractViolation);
}

}  // namespace
}  // namespace sgl::knn
