// Robustness tests for the AMG hierarchy on harder-than-uniform inputs.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/mst.hpp"
#include "solver/amg.hpp"
#include "solver/pcg.hpp"
#include "solver_test_utils.hpp"

namespace sgl::solver {
namespace {

/// Anisotropic grid: strong couplings along x, weak along y — the classic
/// stress test for strength-of-connection heuristics.
graph::Graph anisotropic_grid(Index nx, Index ny, Real weak) {
  graph::Graph g(nx * ny);
  const auto id = [nx](Index x, Index y) { return y * nx + x; };
  for (Index y = 0; y < ny; ++y)
    for (Index x = 0; x < nx; ++x) {
      if (x + 1 < nx) g.add_edge(id(x, y), id(x + 1, y), 1.0);
      if (y + 1 < ny) g.add_edge(id(x, y), id(x, y + 1), weak);
    }
  return g;
}

class AmgAnisotropySweep : public ::testing::TestWithParam<Real> {};

TEST_P(AmgAnisotropySweep, PcgStillConverges) {
  const Real weak = GetParam();
  const la::CsrMatrix a = grounded_laplacian(anisotropic_grid(24, 24, weak));
  Rng rng(3);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  const AmgPreconditioner amg(a);
  la::Vector x;
  PcgOptions options;
  options.max_iterations = 400;
  const PcgResult r = pcg_solve(a, b, x, amg, options);
  EXPECT_TRUE(r.converged) << "weak coupling " << weak;
  const la::Vector ax = a.multiply(x);
  la::Vector res = b;
  la::axpy(-1.0, ax, res);
  EXPECT_LE(la::norm2(res) / la::norm2(b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(WeakCouplings, AmgAnisotropySweep,
                         ::testing::Values(Real{1.0}, Real{0.1}, Real{0.01},
                                           Real{0.001}));

TEST(AmgRobustness, WideWeightSpreadCircuit) {
  // Three decades of conductance spread.
  const graph::MeshGraph mesh =
      graph::make_circuit_grid(20, 20, 0, 0.01, 10.0, 5);
  const la::CsrMatrix a = grounded_laplacian(mesh.graph);
  Rng rng(4);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  const AmgPreconditioner amg(a);
  la::Vector x;
  const PcgResult r = pcg_solve(a, b, x, amg);
  EXPECT_TRUE(r.converged);
}

TEST(AmgRobustness, UltraSparseLearnedShapeGraph) {
  // Tree + a few extras (the SGL iterate shape) — aggregation must not
  // stall even though most nodes have degree ≤ 2.
  const graph::Graph mesh = graph::make_grid2d(30, 30).graph;
  const auto tree_ids = graph::maximum_spanning_forest(mesh);
  graph::Graph g = graph::subgraph_from_edges(mesh, tree_ids);
  g.add_edge(0, 899, 1.0);
  g.add_edge(15, 600, 1.0);
  const la::CsrMatrix a = grounded_laplacian(g);
  const AmgHierarchy h(a);
  EXPECT_GE(h.num_levels(), 2);
  Rng rng(5);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  const AmgPreconditioner amg(a);
  la::Vector x;
  PcgOptions options;
  options.max_iterations = 500;
  const PcgResult r = pcg_solve(a, b, x, amg, options);
  EXPECT_TRUE(r.converged);
}

TEST(AmgRobustness, CoarseSizeOptionRespected) {
  const la::CsrMatrix a =
      grounded_laplacian(graph::make_grid2d(20, 20).graph);
  AmgOptions options;
  options.coarse_size = 10;
  const AmgHierarchy deep(a, options);
  options.coarse_size = 200;
  const AmgHierarchy shallow(a, options);
  EXPECT_GT(deep.num_levels(), shallow.num_levels());
}

TEST(AmgRobustness, MaxLevelsCapsHierarchy) {
  const la::CsrMatrix a =
      grounded_laplacian(graph::make_grid2d(24, 24).graph);
  AmgOptions options;
  options.max_levels = 2;
  options.coarse_size = 4;
  const AmgHierarchy h(a, options);
  EXPECT_LE(h.num_levels(), 2);
}

}  // namespace
}  // namespace sgl::solver
