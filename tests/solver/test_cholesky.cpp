// Unit tests for the sparse LDLᵀ factorization.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "solver/cholesky.hpp"

namespace sgl::solver {
namespace {

/// Grounded Laplacian (node 0 removed) of a graph — SPD when connected.
la::CsrMatrix grounded_laplacian(const graph::Graph& g) {
  std::vector<la::Triplet> t;
  for (const graph::Edge& e : g.edges()) {
    if (e.s != 0) t.push_back({e.s - 1, e.s - 1, e.weight});
    if (e.t != 0) t.push_back({e.t - 1, e.t - 1, e.weight});
    if (e.s != 0 && e.t != 0) {
      t.push_back({e.s - 1, e.t - 1, -e.weight});
      t.push_back({e.t - 1, e.s - 1, -e.weight});
    }
  }
  return la::CsrMatrix::from_triplets(g.num_nodes() - 1, g.num_nodes() - 1, t);
}

la::CsrMatrix random_spd(Index n, Real density, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Triplet> t;
  la::Vector diag(static_cast<std::size_t>(n), 0.5);
  for (Index i = 0; i < n; ++i)
    for (Index j = i + 1; j < n; ++j)
      if (rng.uniform() < density) {
        const Real v = rng.uniform(0.1, 1.0);
        t.push_back({i, j, -v});
        t.push_back({j, i, -v});
        diag[static_cast<std::size_t>(i)] += v;
        diag[static_cast<std::size_t>(j)] += v;
      }
  for (Index i = 0; i < n; ++i) t.push_back({i, i, diag[static_cast<std::size_t>(i)]});
  return la::CsrMatrix::from_triplets(n, n, t);
}

TEST(Cholesky, SolvesDiagonalSystem) {
  const la::CsrMatrix a = la::CsrMatrix::from_triplets(
      3, 3, {{0, 0, 2.0}, {1, 1, 4.0}, {2, 2, 5.0}});
  const CholeskySolver solver(a);
  const la::Vector x = solver.solve({2.0, 8.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
  EXPECT_NEAR(x[2], 2.0, 1e-14);
}

class CholeskyOrderingSweep : public ::testing::TestWithParam<OrderingMethod> {};

TEST_P(CholeskyOrderingSweep, GroundedGridResidualTiny) {
  const graph::Graph g = graph::make_grid2d(9, 11).graph;
  const la::CsrMatrix a = grounded_laplacian(g);
  const CholeskySolver solver(a, GetParam());
  Rng rng(11);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  const la::Vector x = solver.solve(b);
  const la::Vector ax = a.multiply(x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Orderings, CholeskyOrderingSweep,
                         ::testing::Values(OrderingMethod::kNatural,
                                           OrderingMethod::kRcm,
                                           OrderingMethod::kMinimumDegree,
                                           OrderingMethod::kNestedDissection,
                                           OrderingMethod::kAuto));

class CholeskyRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CholeskyRandomSweep, RandomSpdResidualTiny) {
  const la::CsrMatrix a = random_spd(40, 0.15, GetParam());
  const CholeskySolver solver(a);
  Rng rng(GetParam() + 500);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  const la::Vector x = solver.solve(b);
  const la::Vector ax = a.multiply(x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskyRandomSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull,
                                           7ull, 8ull));

TEST(Cholesky, IndefiniteMatrixThrows) {
  // [1 2; 2 1] has eigenvalues 3 and −1.
  const la::CsrMatrix a = la::CsrMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 2.0}, {1, 1, 1.0}});
  EXPECT_THROW(CholeskySolver{a}, NumericalError);
}

TEST(Cholesky, SingularLaplacianThrows) {
  // Full (ungrounded) Laplacian is singular.
  const la::CsrMatrix lap = graph::make_path(5).laplacian();
  EXPECT_THROW(CholeskySolver{lap}, NumericalError);
}

TEST(Cholesky, StatsAreFilled) {
  const graph::Graph g = graph::make_grid2d(8, 8).graph;
  const la::CsrMatrix a = grounded_laplacian(g);
  const CholeskySolver solver(a, OrderingMethod::kMinimumDegree);
  EXPECT_EQ(solver.stats().n, a.rows());
  EXPECT_EQ(solver.stats().input_nnz, a.nnz());
  EXPECT_GT(solver.stats().factor_nnz, 0);
}

TEST(Cholesky, MinimumDegreeFillNoWorseThanNaturalOnGrid) {
  const graph::Graph g = graph::make_grid2d(15, 15).graph;
  const la::CsrMatrix a = grounded_laplacian(g);
  const CholeskySolver md(a, OrderingMethod::kMinimumDegree);
  const CholeskySolver nat(a, OrderingMethod::kNatural);
  EXPECT_LE(md.stats().factor_nnz, nat.stats().factor_nnz);
}

TEST(Cholesky, TreeFactorsWithLinearFill) {
  // A tree admits a no-fill factorization under minimum degree: the factor
  // of the grounded path (a tridiagonal chain) has exactly n−1
  // off-diagonal entries.
  const graph::Graph tree = graph::make_path(200);
  const la::CsrMatrix a = grounded_laplacian(tree);
  const CholeskySolver solver(a, OrderingMethod::kMinimumDegree);
  EXPECT_EQ(solver.stats().factor_nnz, a.rows() - 1);
}

TEST(Cholesky, SolveInPlaceMatchesSolve) {
  const la::CsrMatrix a = random_spd(20, 0.3, 77);
  const CholeskySolver solver(a);
  Rng rng(78);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  la::Vector x = b;
  solver.solve_in_place(x);
  EXPECT_EQ(x, solver.solve(b));
}

TEST(Cholesky, WrongRhsSizeThrows) {
  const la::CsrMatrix a = la::CsrMatrix::identity(3);
  const CholeskySolver solver(a);
  EXPECT_THROW(solver.solve({1.0}), ContractViolation);
}

}  // namespace
}  // namespace sgl::solver
