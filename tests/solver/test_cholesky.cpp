// Unit tests for the sparse LDLᵀ factorization.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "solver/cholesky.hpp"
#include "solver_test_utils.hpp"

namespace sgl::solver {
namespace {

la::CsrMatrix random_spd(Index n, Real density, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Triplet> t;
  la::Vector diag(static_cast<std::size_t>(n), 0.5);
  for (Index i = 0; i < n; ++i)
    for (Index j = i + 1; j < n; ++j)
      if (rng.uniform() < density) {
        const Real v = rng.uniform(0.1, 1.0);
        t.push_back({i, j, -v});
        t.push_back({j, i, -v});
        diag[static_cast<std::size_t>(i)] += v;
        diag[static_cast<std::size_t>(j)] += v;
      }
  for (Index i = 0; i < n; ++i) t.push_back({i, i, diag[static_cast<std::size_t>(i)]});
  return la::CsrMatrix::from_triplets(n, n, t);
}

TEST(Cholesky, SolvesDiagonalSystem) {
  const la::CsrMatrix a = la::CsrMatrix::from_triplets(
      3, 3, {{0, 0, 2.0}, {1, 1, 4.0}, {2, 2, 5.0}});
  const CholeskySolver solver(a);
  const la::Vector x = solver.solve({2.0, 8.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
  EXPECT_NEAR(x[2], 2.0, 1e-14);
}

class CholeskyOrderingSweep : public ::testing::TestWithParam<OrderingMethod> {};

TEST_P(CholeskyOrderingSweep, GroundedGridResidualTiny) {
  const graph::Graph g = graph::make_grid2d(9, 11).graph;
  const la::CsrMatrix a = grounded_laplacian(g);
  const CholeskySolver solver(a, GetParam());
  Rng rng(11);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  const la::Vector x = solver.solve(b);
  const la::Vector ax = a.multiply(x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Orderings, CholeskyOrderingSweep,
                         ::testing::Values(OrderingMethod::kNatural,
                                           OrderingMethod::kRcm,
                                           OrderingMethod::kMinimumDegree,
                                           OrderingMethod::kNestedDissection,
                                           OrderingMethod::kAuto));

class CholeskyRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CholeskyRandomSweep, RandomSpdResidualTiny) {
  const la::CsrMatrix a = random_spd(40, 0.15, GetParam());
  const CholeskySolver solver(a);
  Rng rng(GetParam() + 500);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  const la::Vector x = solver.solve(b);
  const la::Vector ax = a.multiply(x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskyRandomSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull,
                                           7ull, 8ull));

TEST(Cholesky, IndefiniteMatrixThrows) {
  // [1 2; 2 1] has eigenvalues 3 and −1.
  const la::CsrMatrix a = la::CsrMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 2.0}, {1, 1, 1.0}});
  EXPECT_THROW(CholeskySolver{a}, NumericalError);
}

TEST(Cholesky, SingularLaplacianThrows) {
  // Full (ungrounded) Laplacian is singular.
  const la::CsrMatrix lap = graph::make_path(5).laplacian();
  EXPECT_THROW(CholeskySolver{lap}, NumericalError);
}

TEST(Cholesky, StatsAreFilled) {
  const graph::Graph g = graph::make_grid2d(8, 8).graph;
  const la::CsrMatrix a = grounded_laplacian(g);
  const CholeskySolver solver(a, OrderingMethod::kMinimumDegree);
  EXPECT_EQ(solver.stats().n, a.rows());
  EXPECT_EQ(solver.stats().input_nnz, a.nnz());
  EXPECT_GT(solver.stats().factor_nnz, 0);
  EXPECT_GT(solver.stats().num_supernodes, 0);
  EXPECT_GT(solver.stats().num_levels, 0);
  EXPECT_GE(solver.stats().num_supernodes, solver.stats().num_levels);
  EXPECT_GE(solver.stats().max_level_supernodes, 1);
  EXPECT_GE(solver.stats().factor_seconds, 0.0);
}

TEST(Cholesky, PathChainCoalescesToOneBlock) {
  // The grounded path under the natural ordering factors as one
  // tridiagonal chain: every column's single child is its predecessor, so
  // chain coalescing folds the whole elimination tree into one column
  // block at one level (no spurious n-deep level schedule).
  const la::CsrMatrix a = grounded_laplacian(graph::make_path(64));
  const CholeskySolver solver(a, OrderingMethod::kNatural);
  EXPECT_EQ(solver.stats().num_supernodes, 1);
  EXPECT_EQ(solver.stats().num_levels, 1);
  EXPECT_EQ(solver.stats().max_level_supernodes, 1);
}

TEST(Cholesky, DiagonalMatrixIsOneLevelWide) {
  // No off-diagonals → the elimination "tree" is a forest of roots: n
  // singleton blocks, all independent, in a single level of width n.
  std::vector<la::Triplet> t;
  for (Index i = 0; i < 10; ++i) t.push_back({i, i, 2.0 + i});
  const la::CsrMatrix a = la::CsrMatrix::from_triplets(10, 10, t);
  const CholeskySolver solver(a, OrderingMethod::kNatural);
  EXPECT_EQ(solver.stats().num_supernodes, 10);
  EXPECT_EQ(solver.stats().num_levels, 1);
  EXPECT_EQ(solver.stats().max_level_supernodes, 10);
}

TEST(Cholesky, GridHasParallelLevels) {
  // A fill-reducing ordering of a mesh produces a bushy elimination tree:
  // several blocks per level and more than one level.
  const la::CsrMatrix a = grounded_laplacian(graph::make_grid2d(15, 15).graph);
  const CholeskySolver solver(a, OrderingMethod::kMinimumDegree);
  EXPECT_GT(solver.stats().num_levels, 1);
  EXPECT_GT(solver.stats().max_level_supernodes, 1);
}

TEST(Cholesky, MinimumDegreeFillNoWorseThanNaturalOnGrid) {
  const graph::Graph g = graph::make_grid2d(15, 15).graph;
  const la::CsrMatrix a = grounded_laplacian(g);
  const CholeskySolver md(a, OrderingMethod::kMinimumDegree);
  const CholeskySolver nat(a, OrderingMethod::kNatural);
  EXPECT_LE(md.stats().factor_nnz, nat.stats().factor_nnz);
}

TEST(Cholesky, TreeFactorsWithLinearFill) {
  // A tree admits a no-fill factorization under minimum degree: the factor
  // of the grounded path (a tridiagonal chain) has exactly n−1
  // off-diagonal entries.
  const graph::Graph tree = graph::make_path(200);
  const la::CsrMatrix a = grounded_laplacian(tree);
  const CholeskySolver solver(a, OrderingMethod::kMinimumDegree);
  EXPECT_EQ(solver.stats().factor_nnz, a.rows() - 1);
}

TEST(Cholesky, SolveInPlaceMatchesSolve) {
  const la::CsrMatrix a = random_spd(20, 0.3, 77);
  const CholeskySolver solver(a);
  Rng rng(78);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  la::Vector x = b;
  solver.solve_in_place(x);
  EXPECT_EQ(x, solver.solve(b));
}

TEST(Cholesky, WrongRhsSizeThrows) {
  const la::CsrMatrix a = la::CsrMatrix::identity(3);
  const CholeskySolver solver(a);
  EXPECT_THROW(solver.solve({1.0}), ContractViolation);
  la::MultiVector wrong(2, 2);
  EXPECT_THROW(solver.solve_in_place_block(wrong.view()), ContractViolation);
}

class CholeskyBlockSweep : public ::testing::TestWithParam<OrderingMethod> {};

TEST_P(CholeskyBlockSweep, SolveBlockMatchesScalarSolveBitwise) {
  // The block sweeps gather every output element in the same fixed order
  // as the scalar reference path, so each block column must equal the
  // per-column solve bit for bit — on a mesh and on an irregular SPD
  // matrix, under every ordering.
  const la::CsrMatrix mesh = grounded_laplacian(graph::make_grid2d(9, 11).graph);
  const la::CsrMatrix rand = random_spd(60, 0.12, 321);
  for (const la::CsrMatrix* a : {&mesh, &rand}) {
    const CholeskySolver solver(*a, GetParam());
    const la::MultiVector b = random_block_rhs(a->rows(), 7, 55);
    const la::MultiVector x = solver.solve_block(b, 1);
    for (Index j = 0; j < b.cols(); ++j) {
      const la::Vector ref =
          solver.solve(la::Vector(b.col(j).begin(), b.col(j).end()));
      for (Index i = 0; i < a->rows(); ++i)
        EXPECT_EQ(x(i, j), ref[static_cast<std::size_t>(i)])
            << "i=" << i << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orderings, CholeskyBlockSweep,
                         ::testing::Values(OrderingMethod::kNatural,
                                           OrderingMethod::kRcm,
                                           OrderingMethod::kMinimumDegree,
                                           OrderingMethod::kNestedDissection,
                                           OrderingMethod::kAuto));

TEST(Cholesky, SolveBlockBitIdenticalAcrossThreadCounts) {
  // 300 nodes clears the serial-dispatch floor, so threads > 1 really
  // schedule the level sets on the pool.
  const la::CsrMatrix a = grounded_laplacian(graph::make_grid2d(20, 15).graph);
  const CholeskySolver solver(a, OrderingMethod::kMinimumDegree);
  const la::MultiVector b = random_block_rhs(a.rows(), 8, 77);
  const la::MultiVector serial = solver.solve_block(b, 1);
  for (const Index threads : {2, 4, 8}) {
    const la::MultiVector threaded = solver.solve_block(b, threads);
    EXPECT_EQ(serial.data(), threaded.data()) << "threads=" << threads;
  }
}

TEST(Cholesky, FactorBitIdenticalAcrossThreadCounts) {
  // The level-scheduled numeric factorization applies each column's
  // updates in a fixed order, so the factor — observed through solves —
  // must be bit-identical for every worker count.
  const la::CsrMatrix a = grounded_laplacian(graph::make_grid2d(18, 18).graph);
  const CholeskySolver reference(a, OrderingMethod::kMinimumDegree, 1);
  la::Vector rhs(static_cast<std::size_t>(a.rows()));
  Rng rng(88);
  for (Real& v : rhs) v = rng.normal();
  const la::Vector expected = reference.solve(rhs);
  for (const Index threads : {2, 4, 8}) {
    const CholeskySolver solver(a, OrderingMethod::kMinimumDegree, threads);
    EXPECT_EQ(solver.solve(rhs), expected) << "threads=" << threads;
  }
}

TEST(Cholesky, SolveBlockEmptyBlockIsNoOp) {
  const la::CsrMatrix a = la::CsrMatrix::identity(4);
  const CholeskySolver solver(a);
  la::MultiVector empty(4, 0);
  solver.solve_in_place_block(empty.view());  // must not touch anything
  EXPECT_EQ(empty.cols(), 0);
}

}  // namespace
}  // namespace sgl::solver
