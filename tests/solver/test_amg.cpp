// Unit tests for the aggregation AMG hierarchy and preconditioner.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "solver/amg.hpp"
#include "solver/pcg.hpp"
#include "solver_test_utils.hpp"

namespace sgl::solver {
namespace {

TEST(Amg, BuildsMultipleLevelsOnLargeGrid) {
  const la::CsrMatrix a = grounded_laplacian(graph::make_grid2d(40, 40).graph);
  const AmgHierarchy h(a);
  EXPECT_GE(h.num_levels(), 3);
  EXPECT_EQ(h.size(), a.rows());
}

TEST(Amg, SmallMatrixIsSingleLevel) {
  const la::CsrMatrix a = grounded_laplacian(graph::make_path(10));
  AmgOptions options;
  options.coarse_size = 64;
  const AmgHierarchy h(a, options);
  EXPECT_EQ(h.num_levels(), 1);
}

TEST(Amg, OperatorComplexityIsModest) {
  const la::CsrMatrix a = grounded_laplacian(graph::make_grid2d(50, 50).graph);
  const AmgHierarchy h(a);
  EXPECT_LT(h.operator_complexity(), 2.5);
  EXPECT_GE(h.operator_complexity(), 1.0);
}

TEST(Amg, VCycleReducesResidual) {
  const la::CsrMatrix a = grounded_laplacian(graph::make_grid2d(30, 30).graph);
  const AmgHierarchy h(a);
  Rng rng(4);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();

  la::Vector x;
  h.v_cycle(b, x);
  la::Vector residual = b;
  const la::Vector ax = a.multiply(x);
  la::axpy(-1.0, ax, residual);
  EXPECT_LT(la::norm2(residual), 0.7 * la::norm2(b));
}

TEST(Amg, SolvesExactlyAtCoarseScale) {
  // When the whole problem fits the coarse solver, one cycle is a direct
  // solve.
  const la::CsrMatrix a = grounded_laplacian(graph::make_grid2d(5, 5).graph);
  AmgOptions options;
  options.coarse_size = 64;
  const AmgHierarchy h(a, options);
  Rng rng(5);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  la::Vector x;
  h.v_cycle(b, x);
  const la::Vector ax = a.multiply(x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

class AmgGridSweep : public ::testing::TestWithParam<Index> {};

TEST_P(AmgGridSweep, PcgWithAmgConvergesFastOnGrids) {
  const Index size = GetParam();
  const la::CsrMatrix a =
      grounded_laplacian(graph::make_grid2d(size, size).graph);
  Rng rng(6);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();

  const AmgPreconditioner amg(a);
  la::Vector x;
  PcgOptions options;
  options.rel_tolerance = 1e-10;
  const PcgResult r = pcg_solve(a, b, x, amg, options);
  EXPECT_TRUE(r.converged);
  // Mesh-independent-ish convergence: far fewer iterations than the
  // unpreconditioned O(size) growth.
  EXPECT_LE(r.iterations, 60);
}

INSTANTIATE_TEST_SUITE_P(GridSizes, AmgGridSweep,
                         ::testing::Values(Index{10}, Index{20}, Index{40},
                                           Index{60}));

TEST(Amg, PreconditionerIsSymmetric) {
  const la::CsrMatrix a = grounded_laplacian(graph::make_grid2d(12, 12).graph);
  const AmgPreconditioner amg(a);
  Rng rng(7);
  la::Vector r(static_cast<std::size_t>(a.rows()));
  la::Vector s(static_cast<std::size_t>(a.rows()));
  for (auto& v : r) v = rng.normal();
  for (auto& v : s) v = rng.normal();
  la::Vector mr, ms;
  amg.apply(r, mr);
  amg.apply(s, ms);
  EXPECT_NEAR(la::dot(s, mr), la::dot(r, ms), 1e-8 * la::norm2(r) * la::norm2(s));
}

TEST(Amg, ApplyBlockMatchesApplyBitwise) {
  // The real block V-cycle override must equal b scalar V-cycles exactly,
  // for every thread count.
  const la::CsrMatrix a = grounded_laplacian(graph::make_grid2d(17, 13).graph);
  const AmgPreconditioner amg(a);
  const la::MultiVector r = random_block_rhs(a.rows(), 5, 35);
  la::MultiVector z(a.rows(), 5);
  for (const Index threads : {1, 2, 4, 8}) {
    amg.apply_block(r.view(), z.view(), threads);
    for (Index j = 0; j < r.cols(); ++j) {
      la::Vector rj(r.col(j).begin(), r.col(j).end());
      la::Vector ref;
      amg.apply(rj, ref);
      for (Index i = 0; i < a.rows(); ++i)
        EXPECT_EQ(z(i, j), ref[static_cast<std::size_t>(i)])
            << "threads=" << threads << " col=" << j;
    }
  }
}

TEST(Amg, ApplyBlockMatchesApplyBitwiseAboveScatterThreshold) {
  // A fine level past la::detail::kSpmvSerialRows rows exercises the
  // chunked restriction combine; the block path must reproduce it.
  const la::CsrMatrix a = grounded_laplacian(graph::make_grid2d(72, 70).graph);
  ASSERT_GE(a.rows(), la::detail::kSpmvSerialRows);
  const AmgPreconditioner amg(a);
  const la::MultiVector r = random_block_rhs(a.rows(), 3, 36);
  la::MultiVector z(a.rows(), 3);
  for (const Index threads : {1, 4}) {
    amg.apply_block(r.view(), z.view(), threads);
    for (Index j = 0; j < r.cols(); ++j) {
      la::Vector rj(r.col(j).begin(), r.col(j).end());
      la::Vector ref;
      amg.apply(rj, ref);
      for (Index i = 0; i < a.rows(); ++i)
        EXPECT_EQ(z(i, j), ref[static_cast<std::size_t>(i)])
            << "threads=" << threads << " col=" << j;
    }
  }
}

TEST(Amg, WorksOnWeightedCircuitGrid) {
  const graph::MeshGraph mesh = graph::make_circuit_grid(25, 25, 0, 0.5, 5.0, 3);
  const la::CsrMatrix a = grounded_laplacian(mesh.graph);
  Rng rng(8);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  const AmgPreconditioner amg(a);
  la::Vector x;
  const PcgResult r = pcg_solve(a, b, x, amg);
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace sgl::solver
