// SolverContext reconciliation policy: warm reuse, rank-1 update,
// renumeration, rebuild, and the cached-ordering rebuild path
// (DESIGN.md §8).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "solver/solver_context.hpp"

namespace sgl::solver {
namespace {

la::Vector centered_rhs(Index n, std::uint64_t seed) {
  Rng rng(seed);
  la::Vector y(static_cast<std::size_t>(n));
  for (auto& v : y) v = rng.normal();
  la::center(y);
  return y;
}

/// Relative ‖x − x_ref‖ / ‖x_ref‖ between a context-produced solve and a
/// from-scratch solver of the same graph (an updated factor matches a
/// fresh one to rounding, not bitwise).
Real solve_rel_diff(const LaplacianPinvSolver& pinv, const graph::Graph& g,
                    std::uint64_t seed = 77) {
  const la::Vector y = centered_rhs(g.num_nodes(), seed);
  const la::Vector x = pinv.apply(y);
  const LaplacianPinvSolver fresh(g);
  const la::Vector x_ref = fresh.apply(y);
  Real num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - x_ref[i]) * (x[i] - x_ref[i]);
    den += x_ref[i] * x_ref[i];
  }
  return std::sqrt(num / den);
}

SolverContextOptions options_with_mode(IncrementalMode mode) {
  SolverContextOptions options;
  options.mode = mode;
  return options;
}

TEST(SolverContext, ModeNamesRoundTrip) {
  for (const IncrementalMode mode :
       {IncrementalMode::kAuto, IncrementalMode::kOn, IncrementalMode::kOff}) {
    const auto parsed = parse_incremental_mode(incremental_mode_name(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(parse_incremental_mode("sometimes").has_value());
  EXPECT_NE(incremental_mode_name_list().find("auto"), std::string::npos);
}

TEST(SolverContext, OffModeRebuildsEveryAcquire) {
  const graph::Graph g = graph::make_grid2d(5, 5).graph;
  SolverContext ctx(options_with_mode(IncrementalMode::kOff));
  EXPECT_FALSE(ctx.incremental());
  (void)ctx.acquire(g);
  (void)ctx.acquire(g);
  EXPECT_EQ(ctx.stats().acquisitions, 2);
  EXPECT_EQ(ctx.stats().rebuilds, 2);
  EXPECT_EQ(ctx.stats().ordering_reuses, 0);
}

TEST(SolverContext, UnchangedGraphReusesWarmSolver) {
  const graph::Graph g = graph::make_grid2d(5, 5).graph;
  SolverContext ctx(options_with_mode(IncrementalMode::kOn));
  const LaplacianPinvSolver& first = ctx.acquire(g);
  const LaplacianPinvSolver& second = ctx.acquire(g);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(ctx.stats().acquisitions, 2);
  EXPECT_EQ(ctx.stats().rebuilds, 1);
}

TEST(SolverContext, AppendedInPatternEdgeAppliedAsUpdate) {
  // A parallel edge duplicates an existing stamp, so it is guaranteed to
  // be inside the analyzed factor pattern.
  graph::Graph g = graph::make_grid2d(5, 5).graph;
  SolverContext ctx(options_with_mode(IncrementalMode::kOn));
  (void)ctx.acquire(g);
  const graph::Edge dup = g.edges()[10];
  g.add_edge(dup.s, dup.t, 0.5);
  const LaplacianPinvSolver& pinv = ctx.acquire(g);
  EXPECT_EQ(ctx.stats().rebuilds, 1);
  EXPECT_EQ(ctx.stats().updates_applied, 1);
  EXPECT_EQ(ctx.stats().pattern_misses, 0);
  EXPECT_LT(solve_rel_diff(pinv, g), 1e-9);
}

TEST(SolverContext, PatternMissRebuildsAndReusesOrdering) {
  // Star grounded at the hub: the reduced system is diagonal, so any
  // leaf–leaf edge falls outside the factor pattern by construction.
  graph::Graph g = graph::make_star(10);
  SolverContext ctx(options_with_mode(IncrementalMode::kOn));
  (void)ctx.acquire(g);
  g.add_edge(1, 2, 1.0);
  const LaplacianPinvSolver& pinv = ctx.acquire(g);
  EXPECT_EQ(ctx.stats().pattern_misses, 1);
  EXPECT_EQ(ctx.stats().rebuilds, 2);
  EXPECT_EQ(ctx.stats().updates_applied, 0);
  EXPECT_EQ(ctx.stats().ordering_reuses, 1);
  EXPECT_LT(solve_rel_diff(pinv, g), 1e-9);
}

TEST(SolverContext, AutoRefreshesOrderingAfterConsecutiveReuseCap) {
  graph::Graph g = graph::make_star(12);
  SolverContextOptions options = options_with_mode(IncrementalMode::kAuto);
  options.max_ordering_reuses = 2;
  SolverContext ctx(options);
  (void)ctx.acquire(g);  // fresh build, no reuse streak
  const std::array<std::pair<Index, Index>, 4> chords{
      {{1, 2}, {3, 4}, {5, 6}, {7, 8}}};
  for (const auto& [s, t] : chords) {
    g.add_edge(s, t, 1.0);
    (void)ctx.acquire(g);  // each chord is a pattern miss → rebuild
  }
  EXPECT_EQ(ctx.stats().pattern_misses, 4);
  EXPECT_EQ(ctx.stats().rebuilds, 5);
  // Streak: reuse, reuse, fresh (cap of 2 hit), reuse.
  EXPECT_EQ(ctx.stats().ordering_reuses, 3);
}

TEST(SolverContext, OnModeReusesOrderingWithoutLimit) {
  graph::Graph g = graph::make_star(12);
  SolverContextOptions options = options_with_mode(IncrementalMode::kOn);
  options.max_ordering_reuses = 1;  // ignored by kOn
  SolverContext ctx(options);
  (void)ctx.acquire(g);
  const std::array<std::pair<Index, Index>, 3> chords{{{1, 2}, {3, 4}, {5, 6}}};
  for (const auto& [s, t] : chords) {
    g.add_edge(s, t, 1.0);
    (void)ctx.acquire(g);
  }
  EXPECT_EQ(ctx.stats().ordering_reuses, 3);
}

TEST(SolverContext, WeightsOnlyChangeRefactorizes) {
  graph::Graph g = graph::make_grid2d(6, 4).graph;
  SolverContext ctx(options_with_mode(IncrementalMode::kOn));
  (void)ctx.acquire(g);
  g.scale_weights(2.0);
  const LaplacianPinvSolver& pinv = ctx.acquire(g);
  EXPECT_EQ(ctx.stats().rebuilds, 1);
  EXPECT_EQ(ctx.stats().refactorizations, 1);
  EXPECT_LT(solve_rel_diff(pinv, g), 1e-9);
}

TEST(SolverContext, WeightChangePlusAppendForcesRebuild) {
  graph::Graph g = graph::make_grid2d(6, 4).graph;
  SolverContext ctx(options_with_mode(IncrementalMode::kOn));
  (void)ctx.acquire(g);
  g.scale_weights(3.0);
  const graph::Edge dup = g.edges()[0];
  g.add_edge(dup.s, dup.t, 0.25);
  const LaplacianPinvSolver& pinv = ctx.acquire(g);
  EXPECT_EQ(ctx.stats().rebuilds, 2);
  EXPECT_EQ(ctx.stats().refactorizations, 0);
  EXPECT_LT(solve_rel_diff(pinv, g), 1e-9);
}

TEST(SolverContext, NodeCountChangeRebuildsWithFreshOrdering) {
  SolverContext ctx(options_with_mode(IncrementalMode::kOn));
  (void)ctx.acquire(graph::make_grid2d(5, 5).graph);
  (void)ctx.acquire(graph::make_grid2d(6, 6).graph);
  EXPECT_EQ(ctx.stats().rebuilds, 2);
  EXPECT_EQ(ctx.stats().ordering_reuses, 0);
}

TEST(SolverContext, AutoRenumeratesAfterUpdateCap) {
  graph::Graph g = graph::make_grid2d(6, 6).graph;
  SolverContextOptions options = options_with_mode(IncrementalMode::kAuto);
  options.max_updates_between_refactor = 2;
  SolverContext ctx(options);
  (void)ctx.acquire(g);
  for (int round = 0; round < 3; ++round) {
    const graph::Edge dup = g.edges()[static_cast<std::size_t>(round)];
    g.add_edge(dup.s, dup.t, 0.1);
    (void)ctx.acquire(g);
  }
  EXPECT_EQ(ctx.stats().updates_applied, 3);
  EXPECT_EQ(ctx.stats().rebuilds, 1);
  EXPECT_GE(ctx.stats().refactorizations, 1);
  EXPECT_LT(solve_rel_diff(ctx.acquire(g), g), 1e-9);
}

TEST(SolverContext, InvalidateDropsWarmState) {
  const graph::Graph g = graph::make_grid2d(5, 5).graph;
  SolverContext ctx(options_with_mode(IncrementalMode::kOn));
  (void)ctx.acquire(g);
  ctx.store_warm_subspace(la::DenseMatrix(g.num_nodes(), 2));
  EXPECT_EQ(ctx.warm_subspace().rows(), g.num_nodes());
  ctx.invalidate();
  EXPECT_EQ(ctx.warm_subspace().rows(), 0);
  (void)ctx.acquire(g);
  EXPECT_EQ(ctx.stats().rebuilds, 2);
  EXPECT_EQ(ctx.stats().ordering_reuses, 0);
}

TEST(SolverContext, WarmSubspaceStoredOnlyInIncrementalModes) {
  SolverContext off(options_with_mode(IncrementalMode::kOff));
  off.store_warm_subspace(la::DenseMatrix(8, 2));
  EXPECT_EQ(off.warm_subspace().rows(), 0);  // kOff stays bitwise-historical

  SolverContext on(options_with_mode(IncrementalMode::kOn));
  on.store_warm_subspace(la::DenseMatrix(8, 2));
  EXPECT_EQ(on.warm_subspace().rows(), 8);
  EXPECT_EQ(on.warm_subspace().cols(), 2);
}

TEST(SolverContext, RejectsBadOptions) {
  SolverContextOptions options;
  options.max_updates_between_refactor = 0;
  EXPECT_THROW(SolverContext{options}, ContractViolation);
  options = SolverContextOptions{};
  options.growth_refactor_threshold = 0.0;
  EXPECT_THROW(SolverContext{options}, ContractViolation);
  options = SolverContextOptions{};
  options.max_ordering_reuses = -1;
  EXPECT_THROW(SolverContext{options}, ContractViolation);
}

// --- Ordering-hint constructor (the cached-ordering rebuild primitive) ---

TEST(SolverContext, OrderingHintCtorReproducesSamePermutationBitwise) {
  const graph::Graph g = graph::make_grid2d(7, 6).graph;
  const LaplacianPinvSolver fresh(g);
  ASSERT_EQ(fresh.method(), LaplacianMethod::kCholesky);
  ASSERT_FALSE(fresh.cholesky_permutation().empty());

  const LaplacianPinvSolver hinted(g, {}, fresh.cholesky_permutation());
  EXPECT_EQ(hinted.cholesky_permutation(), fresh.cholesky_permutation());
  const la::Vector y = centered_rhs(g.num_nodes(), 5);
  const la::Vector x_fresh = fresh.apply(y);
  const la::Vector x_hinted = hinted.apply(y);
  for (std::size_t i = 0; i < x_fresh.size(); ++i)
    EXPECT_EQ(x_fresh[i], x_hinted[i]);  // same perm ⇒ same float stream
}

TEST(SolverContext, OrderingHintSizeMismatchThrows) {
  const graph::Graph g = graph::make_grid2d(4, 4).graph;
  std::vector<Index> bad(static_cast<std::size_t>(g.num_nodes()));  // need n−1
  for (Index i = 0; i < g.num_nodes(); ++i)
    bad[static_cast<std::size_t>(i)] = i;
  EXPECT_THROW((LaplacianPinvSolver{g, {}, bad}), ContractViolation);
}

TEST(SolverContext, OrderingHintIgnoredOnPcgMethods) {
  const graph::Graph g = graph::make_grid2d(6, 6).graph;
  LaplacianSolverOptions options;
  options.method = LaplacianMethod::kPcgJacobi;
  std::vector<Index> hint(static_cast<std::size_t>(g.num_nodes() - 1));
  for (Index i = 0; i + 1 < g.num_nodes(); ++i)
    hint[static_cast<std::size_t>(i)] = i;
  const LaplacianPinvSolver pinv(g, options, hint);
  EXPECT_EQ(pinv.method(), LaplacianMethod::kPcgJacobi);
  EXPECT_TRUE(pinv.cholesky_permutation().empty());
  EXPECT_LT(solve_rel_diff(pinv, g), 1e-7);
}

}  // namespace
}  // namespace sgl::solver
