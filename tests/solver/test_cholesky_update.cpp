// Rank-1 update/downdate and numeric-only refactorization (DESIGN.md §8).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "solver/cholesky.hpp"
#include "solver/laplacian_solver.hpp"

namespace sgl::solver {
namespace {

la::CsrMatrix random_spd(Index n, Real density, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Triplet> t;
  la::Vector diag(static_cast<std::size_t>(n), 0.5);
  for (Index i = 0; i < n; ++i)
    for (Index j = i + 1; j < n; ++j)
      if (rng.uniform() < density) {
        const Real v = rng.uniform(0.1, 1.0);
        t.push_back({i, j, -v});
        t.push_back({j, i, -v});
        diag[static_cast<std::size_t>(i)] += v;
        diag[static_cast<std::size_t>(j)] += v;
      }
  for (Index i = 0; i < n; ++i)
    t.push_back({i, i, diag[static_cast<std::size_t>(i)]});
  return la::CsrMatrix::from_triplets(n, n, t);
}

/// a + w·(e_u − e_v)(e_u − e_v)ᵀ, or a + w·e_u e_uᵀ when v < 0 — the same
/// Laplacian edge stamp update_edge applies, built from scratch.
la::CsrMatrix stamped(const la::CsrMatrix& a, Index u, Index v, Real w) {
  std::vector<la::Triplet> t;
  for (Index i = 0; i < a.rows(); ++i)
    for (Index p = a.row_ptr()[static_cast<std::size_t>(i)];
         p < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++p)
      t.push_back({i, a.col_idx()[static_cast<std::size_t>(p)],
                   a.values()[static_cast<std::size_t>(p)]});
  t.push_back({u, u, w});
  if (v != kInvalidIndex) {
    t.push_back({v, v, w});
    t.push_back({u, v, -w});
    t.push_back({v, u, -w});
  }
  return la::CsrMatrix::from_triplets(a.rows(), a.cols(), t);
}

la::Vector random_rhs(Index n, std::uint64_t seed) {
  Rng rng(seed);
  la::Vector b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.normal();
  return b;
}

Real rel_diff(const la::Vector& x, const la::Vector& y) {
  Real num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - y[i]) * (x[i] - y[i]);
    den += y[i] * y[i];
  }
  return std::sqrt(num / den);
}

/// First off-diagonal structural nonzero (u, v) of `a` with u < v — an
/// edge guaranteed to be inside any factorization's pattern.
std::pair<Index, Index> existing_edge(const la::CsrMatrix& a) {
  for (Index i = 0; i < a.rows(); ++i)
    for (Index p = a.row_ptr()[static_cast<std::size_t>(i)];
         p < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++p) {
      const Index j = a.col_idx()[static_cast<std::size_t>(p)];
      if (j > i) return {i, j};
    }
  return {kInvalidIndex, kInvalidIndex};
}

struct UpdateCase {
  const char* name;
  la::CsrMatrix matrix;
};

std::vector<UpdateCase> update_cases() {
  std::vector<UpdateCase> cases;
  cases.push_back(
      {"mesh", grounded_laplacian(graph::make_grid2d(9, 11).graph)});
  cases.push_back({"random_spd", random_spd(40, 0.15, 42)});
  cases.push_back({"path", grounded_laplacian(graph::make_path(64))});
  return cases;
}

class CholeskyUpdateSweep : public ::testing::TestWithParam<OrderingMethod> {};

TEST_P(CholeskyUpdateSweep, UpdateMatchesFreshFactorization) {
  for (const UpdateCase& c : update_cases()) {
    SCOPED_TRACE(c.name);
    const auto [u, v] = existing_edge(c.matrix);
    ASSERT_NE(u, kInvalidIndex);
    const Real w = 0.7;

    CholeskySolver updated(c.matrix, GetParam());
    ASSERT_TRUE(updated.edge_in_pattern(u, v));
    updated.update_edge(u, v, w);
    EXPECT_EQ(updated.stats().updates_applied, 1);

    const la::CsrMatrix modified = stamped(c.matrix, u, v, w);
    const CholeskySolver fresh(modified, GetParam());

    const la::Vector b = random_rhs(c.matrix.rows(), 7);
    const la::Vector x_upd = updated.solve(b);
    const la::Vector x_fresh = fresh.solve(b);
    EXPECT_LT(rel_diff(x_upd, x_fresh), 1e-9);

    // The updated factor solves the MODIFIED system to solver accuracy.
    const la::Vector ax = modified.multiply(x_upd);
    for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
  }
}

TEST_P(CholeskyUpdateSweep, DowndateUndoesUpdate) {
  for (const UpdateCase& c : update_cases()) {
    SCOPED_TRACE(c.name);
    const auto [u, v] = existing_edge(c.matrix);
    const Real w = 1.3;

    CholeskySolver solver(c.matrix, GetParam());
    const la::Vector b = random_rhs(c.matrix.rows(), 21);
    const la::Vector x_before = solver.solve(b);

    solver.update_edge(u, v, w);
    solver.update_edge(u, v, -w);
    EXPECT_EQ(solver.stats().updates_applied, 2);

    const la::Vector x_after = solver.solve(b);
    EXPECT_LT(rel_diff(x_after, x_before), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Orderings, CholeskyUpdateSweep,
                         ::testing::Values(OrderingMethod::kNatural,
                                           OrderingMethod::kRcm,
                                           OrderingMethod::kMinimumDegree,
                                           OrderingMethod::kNestedDissection,
                                           OrderingMethod::kAuto));

TEST(CholeskyUpdate, DiagonalStampMatchesGroundedEdgeInsertion) {
  // A graph edge incident to the GROUND node stamps only one diagonal
  // entry of the grounded system: update_edge(u, kInvalidIndex, w).
  graph::Graph g = graph::make_grid2d(6, 7).graph;
  const la::CsrMatrix a = grounded_laplacian(g);
  const Index far_node = g.num_nodes() - 1;  // not adjacent to node 0

  CholeskySolver updated(a);
  updated.update_edge(far_node - 1, kInvalidIndex, 2.5);  // grounded index

  g.add_edge(0, far_node, 2.5);
  const CholeskySolver fresh(grounded_laplacian(g));

  const la::Vector b = random_rhs(a.rows(), 3);
  EXPECT_LT(rel_diff(updated.solve(b), fresh.solve(b)), 1e-9);
}

TEST(CholeskyUpdate, SequentialUpdatesTrackTheLearnerPattern) {
  // The learner's usage: one factorization, then a stream of single-edge
  // insertions, solving in between.
  const graph::Graph g = graph::make_grid2d(8, 8).graph;
  la::CsrMatrix a = grounded_laplacian(g);
  CholeskySolver solver(a);

  Rng rng(99);
  Index applied = 0;
  for (Index trial = 0; trial < 12; ++trial) {
    const Index u = rng.uniform_int(a.rows());
    const Index v = rng.uniform_int(a.rows());
    if (u == v) continue;
    if (!solver.edge_in_pattern(u, v)) continue;
    const Real w = rng.uniform(0.2, 1.5);
    solver.update_edge(u, v, w);
    ++applied;
    a = stamped(a, u, v, w);

    const la::Vector b = random_rhs(a.rows(), 100 + trial);
    const la::Vector x = solver.solve(b);
    const la::Vector ax = a.multiply(x);
    for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
  }
  EXPECT_GT(applied, 0);
  EXPECT_EQ(solver.stats().updates_applied, applied);
}

TEST(CholeskyUpdate, DowndateToSingularThrowsAndPreservesFactor) {
  // Removing a path edge disconnects the graph: the grounded system loses
  // positive definiteness exactly when the edge weight reaches zero.
  const graph::Graph path = graph::make_path(16);
  const la::CsrMatrix a = grounded_laplacian(path);
  CholeskySolver solver(a);

  const la::Vector b = random_rhs(a.rows(), 5);
  const la::Vector x_before = solver.solve(b);

  // Edge (5, 6) of the path maps to grounded indices (4, 5), weight 1.
  EXPECT_THROW(solver.update_edge(4, 5, -1.0), NumericalError);

  // The two-pass downdate must leave the factor untouched on failure.
  const la::Vector x_after = solver.solve(b);
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_EQ(x_after[i], x_before[i]);
  EXPECT_EQ(solver.stats().updates_applied, 0);
}

TEST(CholeskyUpdate, EdgeOutsidePatternIsReported) {
  // Natural ordering of a path gives a bidiagonal factor: far-apart nodes
  // share no pattern entry, so the stamp cannot be applied in place.
  const la::CsrMatrix a = grounded_laplacian(graph::make_path(64));
  const CholeskySolver solver(a, OrderingMethod::kNatural);
  EXPECT_TRUE(solver.edge_in_pattern(10, 11));
  EXPECT_FALSE(solver.edge_in_pattern(0, 62));
  EXPECT_TRUE(solver.edge_in_pattern(30, kInvalidIndex));
}

TEST(CholeskyUpdate, RefactorizeMatchesFreshBitwise) {
  // Weight-only changes keep the pattern, so the kept symbolic analysis
  // plus a numeric renumeration must reproduce a fresh factorization of
  // the new matrix BITWISE (same ordering decision, same level schedule).
  const graph::Graph g = graph::make_grid2d(9, 11).graph;
  const la::CsrMatrix a = grounded_laplacian(g);
  graph::Graph scaled_g = g;
  scaled_g.scale_weights(3.25);
  const la::CsrMatrix scaled = grounded_laplacian(scaled_g);

  for (const OrderingMethod ordering :
       {OrderingMethod::kRcm, OrderingMethod::kMinimumDegree,
        OrderingMethod::kNestedDissection}) {
    CholeskySolver solver(a, ordering);
    solver.refactorize(scaled);
    EXPECT_EQ(solver.stats().refactorizations, 1);

    const CholeskySolver fresh(scaled, ordering);
    const la::Vector b = random_rhs(a.rows(), 17);
    const la::Vector x_re = solver.solve(b);
    const la::Vector x_fresh = fresh.solve(b);
    for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(x_re[i], x_fresh[i]);
  }
}

TEST(CholeskyUpdate, RefactorizeAfterUpdatesUsesCurrentMatrix) {
  // kAuto's policy: apply rank-1 updates, then renumerate — the updated
  // edges are inside the pattern, so refactorize's containment holds.
  const la::CsrMatrix a = grounded_laplacian(graph::make_grid2d(7, 9).graph);
  CholeskySolver solver(a);
  const auto [u, v] = existing_edge(a);
  solver.update_edge(u, v, 0.9);
  const la::CsrMatrix modified = stamped(a, u, v, 0.9);
  solver.refactorize(modified);

  const CholeskySolver fresh(modified);
  const la::Vector b = random_rhs(a.rows(), 8);
  const la::Vector x_re = solver.solve(b);
  const la::Vector x_fresh = fresh.solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(x_re[i], x_fresh[i]);
}

TEST(CholeskyUpdate, RefactorizeRejectsPatternGrowth) {
  const la::CsrMatrix a = grounded_laplacian(graph::make_path(32));
  CholeskySolver solver(a, OrderingMethod::kNatural);
  // (0, 30) is far outside the bidiagonal pattern.
  const la::CsrMatrix grown = stamped(a, 0, 30, 1.0);
  EXPECT_THROW(solver.refactorize(grown), ContractViolation);
}

TEST(CholeskyUpdate, UpdatePreservesBlockScalarEquality) {
  // The determinism contract extends to updated factors: block sweeps on
  // an updated factor equal scalar solves bitwise.
  const la::CsrMatrix a = grounded_laplacian(graph::make_grid2d(10, 10).graph);
  CholeskySolver solver(a);
  const auto [u, v] = existing_edge(a);
  solver.update_edge(u, v, 0.45);

  la::MultiVector block(a.rows(), 5);
  Rng rng(31);
  for (Index c = 0; c < 5; ++c)
    for (Real& x : block.col(c)) x = rng.normal();
  const la::MultiVector solved = solver.solve_block(block, 4);
  for (Index c = 0; c < 5; ++c) {
    la::Vector col(static_cast<std::size_t>(a.rows()));
    for (Index i = 0; i < a.rows(); ++i)
      col[static_cast<std::size_t>(i)] = block(i, c);
    const la::Vector x = solver.solve(col);
    for (Index i = 0; i < a.rows(); ++i)
      EXPECT_EQ(solved(i, c), x[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace sgl::solver
