// Unit tests for the Laplacian pseudo-inverse facade.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "solver/laplacian_solver.hpp"

namespace sgl::solver {
namespace {

TEST(LaplacianSolver, ApplyInvertsOnCenteredVectors) {
  const graph::Graph g = graph::make_grid2d(6, 7).graph;
  const LaplacianPinvSolver pinv(g);
  Rng rng(1);
  la::Vector y(static_cast<std::size_t>(g.num_nodes()));
  for (auto& v : y) v = rng.normal();
  la::center(y);

  const la::Vector x = pinv.apply(y);
  const la::Vector lx = g.laplacian().multiply(x);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(lx[i], y[i], 1e-9);
}

TEST(LaplacianSolver, ResultIsOrthogonalToOnes) {
  const graph::Graph g = graph::make_cycle(12);
  const LaplacianPinvSolver pinv(g);
  la::Vector y(12, 0.0);
  y[0] = 1.0;
  y[7] = -1.0;
  const la::Vector x = pinv.apply(y);
  EXPECT_NEAR(la::mean(x), 0.0, 1e-12);
}

TEST(LaplacianSolver, NullspaceComponentIsIgnored) {
  // L⁺(y + c·1) = L⁺y — adding a constant to the rhs must not change x.
  const graph::Graph g = graph::make_grid2d(5, 5).graph;
  const LaplacianPinvSolver pinv(g);
  la::Vector y(static_cast<std::size_t>(g.num_nodes()), 0.0);
  y[3] = 2.0;
  y[20] = -2.0;
  la::Vector y_shifted = y;
  for (auto& v : y_shifted) v += 5.0;
  const la::Vector x1 = pinv.apply(y);
  const la::Vector x2 = pinv.apply(y_shifted);
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_NEAR(x1[i], x2[i], 1e-9);
}

TEST(LaplacianSolver, PathEffectiveResistanceIsHopCount) {
  const graph::Graph g = graph::make_path(10);
  const LaplacianPinvSolver pinv(g);
  EXPECT_NEAR(pinv.effective_resistance(0, 9), 9.0, 1e-9);
  EXPECT_NEAR(pinv.effective_resistance(2, 5), 3.0, 1e-9);
}

TEST(LaplacianSolver, CycleEffectiveResistanceIsParallelFormula) {
  // On a cycle of n unit resistors, Reff(s,t) = k(n−k)/n for hop distance k.
  const Index n = 12;
  const graph::Graph g = graph::make_cycle(n);
  const LaplacianPinvSolver pinv(g);
  EXPECT_NEAR(pinv.effective_resistance(0, 3), 3.0 * 9.0 / 12.0, 1e-9);
  EXPECT_NEAR(pinv.effective_resistance(0, 6), 6.0 * 6.0 / 12.0, 1e-9);
}

TEST(LaplacianSolver, WeightsScaleResistanceInversely) {
  graph::Graph g(2);
  g.add_edge(0, 1, 4.0);
  const LaplacianPinvSolver pinv(g);
  EXPECT_NEAR(pinv.effective_resistance(0, 1), 0.25, 1e-12);
}

TEST(LaplacianSolver, RayleighMonotonicity) {
  // Adding an edge can only decrease effective resistances.
  graph::Graph g = graph::make_path(8);
  const LaplacianPinvSolver before(g);
  const Real r_before = before.effective_resistance(0, 7);
  g.add_edge(0, 7, 1.0);
  const LaplacianPinvSolver after(g);
  const Real r_after = after.effective_resistance(0, 7);
  EXPECT_LT(r_after, r_before);
  // Parallel of 7Ω path and 1Ω edge: 7/8 Ω.
  EXPECT_NEAR(r_after, 7.0 / 8.0, 1e-9);
}

class LaplacianMethodSweep : public ::testing::TestWithParam<LaplacianMethod> {};

TEST_P(LaplacianMethodSweep, AllMethodsAgree) {
  const graph::Graph g = graph::make_grid2d(9, 9).graph;
  LaplacianSolverOptions options;
  options.method = GetParam();
  const LaplacianPinvSolver pinv(g, options);

  LaplacianSolverOptions reference_options;
  reference_options.method = LaplacianMethod::kCholesky;
  const LaplacianPinvSolver reference(g, reference_options);

  Rng rng(2);
  la::Vector y(static_cast<std::size_t>(g.num_nodes()));
  for (auto& v : y) v = rng.normal();
  la::center(y);
  const la::Vector a = pinv.apply(y);
  const la::Vector b = reference.apply(y);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Methods, LaplacianMethodSweep,
                         ::testing::Values(LaplacianMethod::kCholesky,
                                           LaplacianMethod::kPcgJacobi,
                                           LaplacianMethod::kPcgIc0,
                                           LaplacianMethod::kPcgTree,
                                           LaplacianMethod::kPcgAmg,
                                           LaplacianMethod::kAuto));

// --- Solver-method agreement across graph families ----------------------
// Every method must produce the same L⁺ action — via apply() and via
// apply_block() — on a path, a mesh, and a torus, within 1e-8 of the
// Cholesky reference.

struct MethodGraphCase {
  LaplacianMethod method;
  const char* graph;
};

graph::Graph agreement_graph(const std::string& name) {
  if (name == "path") return graph::make_path(60);
  if (name == "mesh") return graph::make_grid2d(9, 9).graph;
  return graph::make_grid2d(8, 8, /*periodic=*/true).graph;  // torus
}

class MethodGraphAgreement
    : public ::testing::TestWithParam<MethodGraphCase> {};

TEST_P(MethodGraphAgreement, ApplyAndApplyBlockMatchCholeskyReference) {
  const graph::Graph g = agreement_graph(GetParam().graph);
  LaplacianSolverOptions options;
  options.method = GetParam().method;
  const LaplacianPinvSolver pinv(g, options);

  LaplacianSolverOptions reference_options;
  reference_options.method = LaplacianMethod::kCholesky;
  const LaplacianPinvSolver reference(g, reference_options);

  Rng rng(3);
  la::DenseMatrix y(g.num_nodes(), 4);
  for (Index j = 0; j < y.cols(); ++j) {
    for (Real& v : y.col(j)) v = rng.normal();
  }
  const la::DenseMatrix block = pinv.apply_block(y, 1);
  for (Index j = 0; j < y.cols(); ++j) {
    const la::Vector single = pinv.apply(y.col_vector(j));
    const la::Vector ref = reference.apply(y.col_vector(j));
    for (Index i = 0; i < g.num_nodes(); ++i) {
      EXPECT_NEAR(single[static_cast<std::size_t>(i)],
                  ref[static_cast<std::size_t>(i)], 1e-8)
          << GetParam().graph << " apply col " << j;
      EXPECT_NEAR(block(i, j), ref[static_cast<std::size_t>(i)], 1e-8)
          << GetParam().graph << " apply_block col " << j;
    }
  }
}

std::vector<MethodGraphCase> method_graph_cases() {
  std::vector<MethodGraphCase> cases;
  for (const LaplacianMethod m :
       {LaplacianMethod::kCholesky, LaplacianMethod::kPcgJacobi,
        LaplacianMethod::kPcgIc0, LaplacianMethod::kPcgTree,
        LaplacianMethod::kPcgAmg, LaplacianMethod::kAuto}) {
    for (const char* g : {"path", "mesh", "torus"}) cases.push_back({m, g});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByGraph, MethodGraphAgreement,
    ::testing::ValuesIn(method_graph_cases()),
    [](const ::testing::TestParamInfo<MethodGraphCase>& info) {
      std::string name = std::string(laplacian_method_name(info.param.method)) +
                         "_" + info.param.graph;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(LaplacianSolver, DisconnectedGraphThrows) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_THROW(LaplacianPinvSolver{g}, ContractViolation);
}

TEST(LaplacianSolver, TooSmallGraphThrows) {
  EXPECT_THROW(LaplacianPinvSolver{graph::Graph(1)}, ContractViolation);
}

TEST(LaplacianSolver, EffectiveResistanceContracts) {
  const graph::Graph g = graph::make_path(4);
  const LaplacianPinvSolver pinv(g);
  EXPECT_THROW((void)pinv.effective_resistance(0, 0), ContractViolation);
  EXPECT_THROW((void)pinv.effective_resistance(0, 9), ContractViolation);
}

TEST(LaplacianSolver, ReportsResolvedAutoMethod) {
  const graph::Graph small = graph::make_grid2d(5, 5).graph;
  const LaplacianPinvSolver pinv(small);
  EXPECT_EQ(pinv.method(), LaplacianMethod::kCholesky);
}

TEST(LaplacianSolver, ApplyBlockMatchesPerColumnApplyBitwise) {
  const graph::Graph g = graph::make_grid2d(7, 6).graph;
  for (const LaplacianMethod method :
       {LaplacianMethod::kCholesky, LaplacianMethod::kPcgJacobi,
        LaplacianMethod::kPcgAmg}) {
    LaplacianSolverOptions options;
    options.method = method;
    const LaplacianPinvSolver pinv(g, options);
    Rng rng(7);
    la::DenseMatrix y(g.num_nodes(), 6);
    for (Index j = 0; j < 6; ++j)
      for (Real& v : y.col(j)) v = rng.normal();
    const la::DenseMatrix x = pinv.apply_block(y, 1);
    for (Index j = 0; j < 6; ++j) {
      const la::Vector ref = pinv.apply(y.col_vector(j));
      for (Index i = 0; i < g.num_nodes(); ++i)
        EXPECT_DOUBLE_EQ(x(i, j), ref[static_cast<std::size_t>(i)])
            << "method=" << static_cast<int>(method);
    }
  }
}

TEST(LaplacianSolver, ApplyBlockMatchesApplyBitwiseAllPcgMethods) {
  // The block-PCG path must reproduce the scalar per-column PCG exactly —
  // for every preconditioner family, thread count, and block width.
  const graph::Graph g = graph::make_grid2d(9, 8).graph;
  for (const LaplacianMethod method :
       {LaplacianMethod::kPcgJacobi, LaplacianMethod::kPcgIc0,
        LaplacianMethod::kPcgTree, LaplacianMethod::kPcgAmg}) {
    LaplacianSolverOptions options;
    options.method = method;
    const LaplacianPinvSolver pinv(g, options);
    Rng rng(41);
    for (const Index b : {1, 3, 8}) {
      la::DenseMatrix y(g.num_nodes(), b);
      for (Index j = 0; j < b; ++j)
        for (Real& v : y.col(j)) v = rng.normal();
      std::vector<la::Vector> refs;
      for (Index j = 0; j < b; ++j)
        refs.push_back(pinv.apply(y.col_vector(j)));
      for (const Index threads : {1, 2, 4, 8}) {
        const la::DenseMatrix x = pinv.apply_block(y, threads);
        for (Index j = 0; j < b; ++j) {
          const la::Vector& ref = refs[static_cast<std::size_t>(j)];
          for (Index i = 0; i < g.num_nodes(); ++i)
            EXPECT_EQ(x(i, j), ref[static_cast<std::size_t>(i)])
                << laplacian_method_name(method) << " b=" << b
                << " threads=" << threads << " col=" << j;
        }
      }
    }
  }
}

TEST(LaplacianSolver, ApplyBlockStalledErrorCarriesOriginalColumnIndex) {
  // Column 0 is constant (centered to zero → trivially converged) and
  // column 1 needs real iterations: with a one-iteration budget the
  // failure must name column 1, not a packed slot index.
  const graph::Graph g = graph::make_grid2d(10, 10).graph;
  LaplacianSolverOptions options;
  options.method = LaplacianMethod::kPcgJacobi;
  options.pcg.max_iterations = 1;
  options.pcg.rel_tolerance = 1e-14;
  const LaplacianPinvSolver pinv(g, options);
  la::DenseMatrix y(g.num_nodes(), 2);
  for (Real& v : y.col(0)) v = 3.5;
  Rng rng(42);
  for (Real& v : y.col(1)) v = rng.normal();
  try {
    (void)pinv.apply_block(y, 1);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_NE(std::string(e.what()).find("column 1"), std::string::npos)
        << e.what();
  }
}

TEST(LaplacianSolver, LastPcgIterationsIsMaxOverBlockColumns) {
  const graph::Graph g = graph::make_grid2d(9, 9).graph;
  LaplacianSolverOptions options;
  options.method = LaplacianMethod::kPcgIc0;
  const LaplacianPinvSolver pinv(g, options);
  Rng rng(43);
  la::DenseMatrix y(g.num_nodes(), 3);
  for (Real& v : y.col(0)) v = rng.normal();
  for (Real& v : y.col(1)) v = 1.0;  // centered to zero → 0 iterations
  for (Real& v : y.col(2)) v = rng.normal();

  // Per-column reference counts via scalar apply().
  Index max_it = 0;
  Index total_it = 0;
  for (Index j = 0; j < 3; ++j) {
    (void)pinv.apply(y.col_vector(j));
    max_it = std::max(max_it, pinv.last_pcg_iterations());
    total_it += pinv.last_pcg_iterations();
  }

  (void)pinv.apply_block(y, 1);
  EXPECT_EQ(pinv.last_pcg_iterations(), max_it);
  const PcgBlockStats stats = pinv.pcg_block_stats();
  EXPECT_EQ(stats.columns, 3);
  EXPECT_EQ(stats.max_iterations, max_it);
  EXPECT_EQ(stats.total_iterations, total_it);
  EXPECT_EQ(stats.converged_columns, 3);
  EXPECT_GT(stats.max_iterations, 0);
  EXPECT_LT(stats.max_iterations, stats.total_iterations);
}

TEST(LaplacianSolver, PcgIterationCountersResetOnCholeskyPath) {
  const graph::Graph g = graph::make_grid2d(7, 7).graph;
  LaplacianSolverOptions options;
  options.method = LaplacianMethod::kCholesky;
  const LaplacianPinvSolver pinv(g, options);
  Rng rng(44);
  la::DenseMatrix y(g.num_nodes(), 2);
  for (Index j = 0; j < 2; ++j)
    for (Real& v : y.col(j)) v = rng.normal();
  (void)pinv.apply_block(y, 1);
  EXPECT_EQ(pinv.last_pcg_iterations(), 0);
  const PcgBlockStats stats = pinv.pcg_block_stats();
  EXPECT_EQ(stats.columns, 0);
  EXPECT_EQ(stats.max_iterations, 0);
  EXPECT_EQ(stats.total_iterations, 0);
  EXPECT_EQ(stats.converged_columns, 0);
}

TEST(LaplacianSolver, ApplyBlockBitIdenticalAcrossThreadCounts) {
  const graph::Graph g = graph::make_grid2d(8, 8).graph;
  const LaplacianPinvSolver pinv(g);
  Rng rng(8);
  la::DenseMatrix y(g.num_nodes(), 8);
  for (Index j = 0; j < 8; ++j)
    for (Real& v : y.col(j)) v = rng.normal();
  const la::DenseMatrix serial = pinv.apply_block(y, 1);
  for (const Index threads : {2, 4, 8}) {
    const la::DenseMatrix threaded = pinv.apply_block(y, threads);
    EXPECT_EQ(serial.data(), threaded.data()) << "threads=" << threads;
  }
}

TEST(LaplacianSolver, ApplyBlockShapeContracts) {
  const graph::Graph g = graph::make_path(6);
  const LaplacianPinvSolver pinv(g);
  la::DenseMatrix y(5, 2);  // wrong row count
  la::DenseMatrix x(6, 2);
  EXPECT_THROW(pinv.apply_block(la::view_of(y), la::view_of(x), 1),
               ContractViolation);
}

TEST(LaplacianSolver, ApplyBlockPropagatesPcgFailurePerRhs) {
  // One PCG iteration cannot solve a 10×10 grid system: the per-RHS
  // convergence check must surface NumericalError from the block path.
  const graph::Graph g = graph::make_grid2d(10, 10).graph;
  LaplacianSolverOptions options;
  options.method = LaplacianMethod::kPcgJacobi;
  options.pcg.max_iterations = 1;
  options.pcg.rel_tolerance = 1e-14;
  const LaplacianPinvSolver pinv(g, options);
  Rng rng(9);
  la::DenseMatrix y(g.num_nodes(), 4);
  for (Index j = 0; j < 4; ++j)
    for (Real& v : y.col(j)) v = rng.normal();
  EXPECT_THROW((void)pinv.apply_block(y, 2), NumericalError);
}

TEST(LaplacianSolver, ApplyBlockMatchesPerColumnWithin1e12Relative) {
  // Acceptance bound of the block refactor: the block sweep result stays
  // within 1e-12 relative error of the retained per-column reference path
  // (in fact it is bitwise equal; this guards the documented contract).
  const graph::Graph g = graph::make_grid2d(12, 11).graph;
  LaplacianSolverOptions options;
  options.method = LaplacianMethod::kCholesky;
  const LaplacianPinvSolver pinv(g, options);
  Rng rng(21);
  la::DenseMatrix y(g.num_nodes(), 16);
  for (Index j = 0; j < y.cols(); ++j)
    for (Real& v : y.col(j)) v = rng.normal();
  const la::DenseMatrix x = pinv.apply_block(y, 1);
  for (Index j = 0; j < y.cols(); ++j) {
    const la::Vector ref = pinv.apply(y.col_vector(j));
    Real ref_norm = 0.0;
    for (const Real v : ref) ref_norm += v * v;
    ref_norm = std::sqrt(ref_norm);
    for (Index i = 0; i < g.num_nodes(); ++i) {
      EXPECT_LE(std::abs(x(i, j) - ref[static_cast<std::size_t>(i)]),
                1e-12 * ref_norm)
          << "col " << j;
    }
  }
}

TEST(LaplacianSolver, FactorStatsExposedForCholesky) {
  const graph::Graph g = graph::make_grid2d(8, 8).graph;
  LaplacianSolverOptions options;
  options.method = LaplacianMethod::kCholesky;
  const LaplacianPinvSolver pinv(g, options);
  const FactorStats* stats = pinv.factor_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->n, g.num_nodes() - 1);
  EXPECT_GT(stats->factor_nnz, 0);
  EXPECT_GT(stats->num_supernodes, 0);
  EXPECT_GT(stats->num_levels, 0);
  EXPECT_GE(stats->factor_seconds, 0.0);
}

TEST(LaplacianSolver, FactorStatsNullForPcgMethods) {
  const graph::Graph g = graph::make_grid2d(6, 6).graph;
  LaplacianSolverOptions options;
  options.method = LaplacianMethod::kPcgJacobi;
  const LaplacianPinvSolver pinv(g, options);
  EXPECT_EQ(pinv.factor_stats(), nullptr);
}

TEST(LaplacianSolver, MethodNamesRoundTrip) {
  for (const LaplacianMethod m :
       {LaplacianMethod::kCholesky, LaplacianMethod::kPcgJacobi,
        LaplacianMethod::kPcgIc0, LaplacianMethod::kPcgTree,
        LaplacianMethod::kPcgAmg, LaplacianMethod::kAuto}) {
    const auto parsed = parse_laplacian_method(laplacian_method_name(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(parse_laplacian_method("lu").has_value());
  EXPECT_FALSE(parse_laplacian_method("").has_value());
  EXPECT_FALSE(parse_laplacian_method("Cholesky").has_value());
}

TEST(LaplacianSolver, ApplyBlockDefaultPcgOptionsMatchesPlainOverloadBitwise) {
  // The warm-start overload with default (null-view) options must be THE
  // same solve as the two-argument apply_block, float for float.
  const graph::Graph g = graph::make_grid2d(8, 7).graph;
  LaplacianSolverOptions options;
  options.method = LaplacianMethod::kPcgJacobi;
  const LaplacianPinvSolver pinv(g, options);
  Rng rng(19);
  la::DenseMatrix y(g.num_nodes(), 4);
  for (Index j = 0; j < 4; ++j)
    for (Real& v : y.col(j)) v = rng.normal();
  const la::DenseMatrix x_plain = pinv.apply_block(y, 1);
  la::DenseMatrix x_explicit(g.num_nodes(), 4);
  pinv.apply_block(la::view_of(y), la::view_of(x_explicit), PcgOptions{}, 1);
  for (Index j = 0; j < 4; ++j)
    for (Index i = 0; i < g.num_nodes(); ++i)
      EXPECT_EQ(x_plain(i, j), x_explicit(i, j));
}

TEST(LaplacianSolver, ApplyBlockWarmStartConvergesFasterToSameSolution) {
  const graph::Graph g = graph::make_grid2d(12, 11).graph;
  LaplacianSolverOptions options;
  options.method = LaplacianMethod::kPcgJacobi;
  const LaplacianPinvSolver pinv(g, options);
  Rng rng(23);
  la::DenseMatrix y(g.num_nodes(), 3);
  for (Index j = 0; j < 3; ++j) {
    la::Vector col(static_cast<std::size_t>(g.num_nodes()));
    for (Real& v : col) v = rng.normal();
    la::center(col);
    for (Index i = 0; i < g.num_nodes(); ++i) y(i, j) = col[static_cast<std::size_t>(i)];
  }

  // Cold solve, capturing the grounded iterate through final_iterate.
  la::DenseMatrix x_cold(g.num_nodes(), 3);
  la::DenseMatrix iterate(g.num_nodes() - 1, 3);
  PcgOptions cold;
  cold.final_iterate = la::view_of(iterate);
  pinv.apply_block(la::view_of(y), la::view_of(x_cold), cold, 1);
  const Index cold_iterations = pinv.last_pcg_iterations();
  EXPECT_GT(cold_iterations, 1);

  // Warm solve of the SAME system seeded with the converged iterate: it
  // must finish in a round or two and reproduce the cold solution.
  la::DenseMatrix x_warm(g.num_nodes(), 3);
  PcgOptions warm;
  warm.initial_guess = la::view_of(std::as_const(iterate));
  pinv.apply_block(la::view_of(y), la::view_of(x_warm), warm, 1);
  EXPECT_LE(pinv.last_pcg_iterations(), 2);
  for (Index j = 0; j < 3; ++j)
    for (Index i = 0; i < g.num_nodes(); ++i)
      EXPECT_NEAR(x_warm(i, j), x_cold(i, j), 1e-8);
}

TEST(LaplacianSolver, CholeskyPathIgnoresWarmStartViews) {
  // A direct solve has no iterate: guess and copy-out slots are inert and
  // the result equals the plain overload bitwise.
  const graph::Graph g = graph::make_grid2d(6, 6).graph;
  LaplacianSolverOptions options;
  options.method = LaplacianMethod::kCholesky;
  const LaplacianPinvSolver pinv(g, options);
  Rng rng(29);
  la::DenseMatrix y(g.num_nodes(), 2);
  for (Index j = 0; j < 2; ++j)
    for (Real& v : y.col(j)) v = rng.normal();
  const la::DenseMatrix x_plain = pinv.apply_block(y, 1);

  la::DenseMatrix guess(g.num_nodes() - 1, 2);
  for (Index j = 0; j < 2; ++j)
    for (Real& v : guess.col(j)) v = 123.0;  // garbage must not leak in
  la::DenseMatrix sink(g.num_nodes() - 1, 2);
  PcgOptions pcg;
  pcg.initial_guess = la::view_of(std::as_const(guess));
  pcg.final_iterate = la::view_of(sink);
  la::DenseMatrix x_warm(g.num_nodes(), 2);
  pinv.apply_block(la::view_of(y), la::view_of(x_warm), pcg, 1);
  for (Index j = 0; j < 2; ++j)
    for (Index i = 0; i < g.num_nodes(); ++i)
      EXPECT_EQ(x_plain(i, j), x_warm(i, j));
}

TEST(LaplacianSolver, PcgIterationCountExposed) {
  const graph::Graph g = graph::make_grid2d(10, 10).graph;
  LaplacianSolverOptions options;
  options.method = LaplacianMethod::kPcgAmg;
  const LaplacianPinvSolver pinv(g, options);
  la::Vector y(static_cast<std::size_t>(g.num_nodes()), 0.0);
  y[0] = 1.0;
  y[99] = -1.0;
  (void)pinv.apply(y);
  EXPECT_GT(pinv.last_pcg_iterations(), 0);
}

}  // namespace
}  // namespace sgl::solver
