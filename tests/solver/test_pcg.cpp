// Unit tests for preconditioned conjugate gradient (scalar and block) and
// the point preconditioners.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "solver/ic0.hpp"
#include "solver/pcg.hpp"

namespace sgl::solver {
namespace {

la::CsrMatrix grounded_grid_laplacian(Index nx, Index ny) {
  const graph::Graph g = graph::make_grid2d(nx, ny).graph;
  std::vector<la::Triplet> t;
  for (const graph::Edge& e : g.edges()) {
    if (e.s != 0) t.push_back({e.s - 1, e.s - 1, e.weight});
    if (e.t != 0) t.push_back({e.t - 1, e.t - 1, e.weight});
    if (e.s != 0 && e.t != 0) {
      t.push_back({e.s - 1, e.t - 1, -e.weight});
      t.push_back({e.t - 1, e.s - 1, -e.weight});
    }
  }
  return la::CsrMatrix::from_triplets(g.num_nodes() - 1, g.num_nodes() - 1, t);
}

TEST(Pcg, SolvesIdentityInOneIteration) {
  const la::CsrMatrix a = la::CsrMatrix::identity(10);
  la::Vector b(10, 1.0);
  la::Vector x;
  const IdentityPreconditioner m(10);
  const PcgResult r = pcg_solve(a, b, x, m);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
  for (const Real v : x) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(Pcg, ZeroRhsGivesZeroSolution) {
  const la::CsrMatrix a = la::CsrMatrix::identity(5);
  la::Vector x{1.0, 2.0, 3.0, 4.0, 5.0};  // stale initial guess
  const IdentityPreconditioner m(5);
  const PcgResult r = pcg_solve(a, la::Vector(5, 0.0), x, m);
  EXPECT_TRUE(r.converged);
  for (const Real v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

class PcgPreconditionerSweep : public ::testing::TestWithParam<int> {};

TEST_P(PcgPreconditionerSweep, GridLaplacianResidualBelowTolerance) {
  const la::CsrMatrix a = grounded_grid_laplacian(13, 14);
  Rng rng(5);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();

  std::unique_ptr<Preconditioner> m;
  switch (GetParam()) {
    case 0: m = std::make_unique<IdentityPreconditioner>(a.rows()); break;
    case 1: m = std::make_unique<JacobiPreconditioner>(a); break;
    default: m = std::make_unique<SgsPreconditioner>(a); break;
  }
  la::Vector x;
  PcgOptions options;
  options.rel_tolerance = 1e-10;
  const PcgResult r = pcg_solve(a, b, x, *m, options);
  EXPECT_TRUE(r.converged);
  const la::Vector ax = a.multiply(x);
  la::Vector res = b;
  la::axpy(-1.0, ax, res);
  EXPECT_LE(la::norm2(res) / la::norm2(b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Preconditioners, PcgPreconditionerSweep,
                         ::testing::Values(0, 1, 2));

TEST(Pcg, SgsConvergesFasterThanIdentityOnGrid) {
  const la::CsrMatrix a = grounded_grid_laplacian(20, 20);
  Rng rng(6);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();

  la::Vector x1, x2;
  const IdentityPreconditioner ident(a.rows());
  const SgsPreconditioner sgs(a);
  const PcgResult r_ident = pcg_solve(a, b, x1, ident);
  const PcgResult r_sgs = pcg_solve(a, b, x2, sgs);
  EXPECT_TRUE(r_ident.converged);
  EXPECT_TRUE(r_sgs.converged);
  EXPECT_LT(r_sgs.iterations, r_ident.iterations);
}

TEST(Pcg, RespectsIterationCap) {
  const la::CsrMatrix a = grounded_grid_laplacian(25, 25);
  Rng rng(7);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  la::Vector x;
  const IdentityPreconditioner m(a.rows());
  PcgOptions options;
  options.max_iterations = 3;
  const PcgResult r = pcg_solve(a, b, x, m, options);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3);
}

TEST(Pcg, WarmStartFromExactSolutionConvergesImmediately) {
  const la::CsrMatrix a = grounded_grid_laplacian(8, 8);
  Rng rng(8);
  la::Vector x_true(static_cast<std::size_t>(a.rows()));
  for (auto& v : x_true) v = rng.normal();
  const la::Vector b = a.multiply(x_true);
  la::Vector x = x_true;
  const JacobiPreconditioner m(a);
  const PcgResult r = pcg_solve(a, b, x, m);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 1);
}

TEST(Pcg, SizeMismatchThrows) {
  const la::CsrMatrix a = la::CsrMatrix::identity(4);
  const IdentityPreconditioner m(4);
  la::Vector x;
  EXPECT_THROW(pcg_solve(a, la::Vector(3, 1.0), x, m), ContractViolation);
}

TEST(Preconditioner, JacobiRejectsNonpositiveDiagonal) {
  const la::CsrMatrix a =
      la::CsrMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {1, 1, -2.0}});
  EXPECT_THROW(JacobiPreconditioner{a}, ContractViolation);
}

// --- pcg_solve_block ------------------------------------------------------

la::MultiVector random_rhs_block(Index rows, Index cols, std::uint64_t seed) {
  Rng rng(seed);
  la::MultiVector b(rows, cols);
  for (Index j = 0; j < cols; ++j)
    for (Real& v : b.col(j)) v = rng.normal();
  return b;
}

/// Block solve must reproduce b independent scalar solves BITWISE — the
/// iterates, the per-column iteration counts, the residuals, and the
/// convergence flags — for every thread count and block width.
void expect_block_matches_scalar(const la::CsrMatrix& a,
                                 const Preconditioner& m,
                                 const la::MultiVector& b,
                                 const PcgOptions& options) {
  for (const Index threads : {1, 2, 4, 8}) {
    PcgOptions opts = options;
    opts.num_threads = threads;
    la::MultiVector x(a.rows(), b.cols());
    const PcgBlockResult block = pcg_solve_block(a, b.view(), x.view(), m, opts);
    ASSERT_EQ(to_index(block.columns.size()), b.cols());
    for (Index j = 0; j < b.cols(); ++j) {
      la::Vector bj(b.col(j).begin(), b.col(j).end());
      la::Vector xj;
      PcgOptions scalar_opts = options;
      scalar_opts.num_threads = 1;
      const PcgResult ref = pcg_solve(a, bj, xj, m, scalar_opts);
      const PcgResult& col = block.columns[static_cast<std::size_t>(j)];
      EXPECT_EQ(col.iterations, ref.iterations)
          << "threads=" << threads << " col=" << j;
      EXPECT_EQ(col.converged, ref.converged)
          << "threads=" << threads << " col=" << j;
      EXPECT_EQ(col.relative_residual, ref.relative_residual)
          << "threads=" << threads << " col=" << j;
      for (Index i = 0; i < a.rows(); ++i)
        EXPECT_EQ(x(i, j), xj[static_cast<std::size_t>(i)])
            << "threads=" << threads << " col=" << j << " row=" << i;
    }
  }
}

TEST(PcgBlock, MatchesScalarBitwiseAcrossPreconditionersAndWidths) {
  const la::CsrMatrix a = grounded_grid_laplacian(12, 13);
  const graph::Graph g = graph::make_grid2d(12, 13).graph;
  std::vector<std::unique_ptr<Preconditioner>> preconditioners;
  preconditioners.push_back(std::make_unique<IdentityPreconditioner>(a.rows()));
  preconditioners.push_back(std::make_unique<JacobiPreconditioner>(a));
  preconditioners.push_back(std::make_unique<SgsPreconditioner>(a));
  preconditioners.push_back(std::make_unique<Ic0Preconditioner>(a));
  PcgOptions options;
  options.rel_tolerance = 1e-10;
  std::uint64_t seed = 40;
  for (const auto& m : preconditioners) {
    for (const Index b : {1, 3, 8}) {
      expect_block_matches_scalar(a, *m, random_rhs_block(a.rows(), b, seed++),
                                  options);
    }
  }
}

TEST(PcgBlock, DeflationFreezesColumnsIndependently) {
  // Columns of very different difficulty: a zero column converges at
  // iteration 0 and must be frozen while the others keep iterating — and
  // every column must still match its solo scalar solve exactly.
  const la::CsrMatrix a = grounded_grid_laplacian(15, 15);
  la::MultiVector b = random_rhs_block(a.rows(), 4, 51);
  std::fill(b.col(1).begin(), b.col(1).end(), 0.0);
  const JacobiPreconditioner m(a);
  PcgOptions options;
  options.rel_tolerance = 1e-8;
  expect_block_matches_scalar(a, m, b, options);

  la::MultiVector x(a.rows(), 4);
  const PcgBlockResult res = pcg_solve_block(a, b.view(), x.view(), m, options);
  EXPECT_TRUE(res.all_converged());
  EXPECT_EQ(res.columns[1].iterations, 0);
  EXPECT_TRUE(res.columns[1].converged);
  Index max_it = 0;
  Index total = 0;
  for (const PcgResult& c : res.columns) {
    max_it = std::max(max_it, c.iterations);
    total += c.iterations;
  }
  EXPECT_GT(max_it, 0);
  EXPECT_EQ(res.max_iterations(), max_it);
  EXPECT_EQ(res.total_iterations(), total);
  EXPECT_EQ(res.first_unconverged(), kInvalidIndex);
}

TEST(PcgBlock, WarmStartBreakdownMirrorsScalar) {
  // Column 0 starts at the exact solution (zero search direction →
  // breakdown path, 0 iterations, converged); column 1 starts cold.
  const la::CsrMatrix a = grounded_grid_laplacian(8, 8);
  Rng rng(52);
  la::Vector x_true(static_cast<std::size_t>(a.rows()));
  for (auto& v : x_true) v = rng.normal();
  la::MultiVector b(a.rows(), 2);
  const la::Vector b0 = a.multiply(x_true);
  std::copy(b0.begin(), b0.end(), b.col(0).begin());
  for (Real& v : b.col(1)) v = rng.normal();

  la::MultiVector x(a.rows(), 2);
  std::copy(x_true.begin(), x_true.end(), x.col(0).begin());
  const JacobiPreconditioner m(a);
  const PcgBlockResult res = pcg_solve_block(a, b.view(), x.view(), m, {});
  EXPECT_TRUE(res.columns[0].converged);
  EXPECT_EQ(res.columns[0].iterations, 0);
  EXPECT_TRUE(res.columns[1].converged);
  EXPECT_GT(res.columns[1].iterations, 0);

  // Scalar references with the same initial guesses.
  la::Vector x0 = x_true;
  const PcgResult r0 = pcg_solve(a, b0, x0, m);
  for (Index i = 0; i < a.rows(); ++i)
    EXPECT_EQ(x(i, 0), x0[static_cast<std::size_t>(i)]);
  EXPECT_EQ(res.columns[0].relative_residual, r0.relative_residual);
}

TEST(PcgBlock, IterationCapMirrorsScalar) {
  const la::CsrMatrix a = grounded_grid_laplacian(20, 20);
  const la::MultiVector b = random_rhs_block(a.rows(), 3, 53);
  const IdentityPreconditioner m(a.rows());
  PcgOptions options;
  options.max_iterations = 3;
  expect_block_matches_scalar(a, m, b, options);

  la::MultiVector x(a.rows(), 3);
  const PcgBlockResult res = pcg_solve_block(a, b.view(), x.view(), m, options);
  EXPECT_FALSE(res.all_converged());
  EXPECT_EQ(res.first_unconverged(), 0);
  for (const PcgResult& c : res.columns) EXPECT_EQ(c.iterations, 3);
}

TEST(PcgBlock, EmptyBlockAndShapeContracts) {
  const la::CsrMatrix a = la::CsrMatrix::identity(5);
  const IdentityPreconditioner m(5);
  la::MultiVector b(5, 0);
  la::MultiVector x(5, 0);
  const PcgBlockResult res = pcg_solve_block(a, b.view(), x.view(), m);
  EXPECT_TRUE(res.columns.empty());
  EXPECT_EQ(res.max_iterations(), 0);
  EXPECT_TRUE(res.all_converged());

  la::MultiVector bad(4, 2);
  la::MultiVector out(5, 2);
  EXPECT_THROW(pcg_solve_block(a, bad.view(), out.view(), m),
               ContractViolation);
  la::MultiVector mismatch(5, 3);
  EXPECT_THROW(pcg_solve_block(a, mismatch.view(), out.view(), m),
               ContractViolation);
}

TEST(Preconditioner, SgsApplyIsSymmetric) {
  // zᵀ M⁻¹ r should equal rᵀ M⁻¹ z for the SGS preconditioner.
  const la::CsrMatrix a = grounded_grid_laplacian(6, 6);
  const SgsPreconditioner m(a);
  Rng rng(9);
  la::Vector r(static_cast<std::size_t>(a.rows()));
  la::Vector s(static_cast<std::size_t>(a.rows()));
  for (auto& v : r) v = rng.normal();
  for (auto& v : s) v = rng.normal();
  la::Vector mr, ms;
  m.apply(r, mr);
  m.apply(s, ms);
  EXPECT_NEAR(la::dot(s, mr), la::dot(r, ms), 1e-9);
}

}  // namespace
}  // namespace sgl::solver
