// Unit tests for preconditioned conjugate gradient and the point
// preconditioners.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "solver/pcg.hpp"

namespace sgl::solver {
namespace {

la::CsrMatrix grounded_grid_laplacian(Index nx, Index ny) {
  const graph::Graph g = graph::make_grid2d(nx, ny).graph;
  std::vector<la::Triplet> t;
  for (const graph::Edge& e : g.edges()) {
    if (e.s != 0) t.push_back({e.s - 1, e.s - 1, e.weight});
    if (e.t != 0) t.push_back({e.t - 1, e.t - 1, e.weight});
    if (e.s != 0 && e.t != 0) {
      t.push_back({e.s - 1, e.t - 1, -e.weight});
      t.push_back({e.t - 1, e.s - 1, -e.weight});
    }
  }
  return la::CsrMatrix::from_triplets(g.num_nodes() - 1, g.num_nodes() - 1, t);
}

TEST(Pcg, SolvesIdentityInOneIteration) {
  const la::CsrMatrix a = la::CsrMatrix::identity(10);
  la::Vector b(10, 1.0);
  la::Vector x;
  const IdentityPreconditioner m(10);
  const PcgResult r = pcg_solve(a, b, x, m);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
  for (const Real v : x) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(Pcg, ZeroRhsGivesZeroSolution) {
  const la::CsrMatrix a = la::CsrMatrix::identity(5);
  la::Vector x{1.0, 2.0, 3.0, 4.0, 5.0};  // stale initial guess
  const IdentityPreconditioner m(5);
  const PcgResult r = pcg_solve(a, la::Vector(5, 0.0), x, m);
  EXPECT_TRUE(r.converged);
  for (const Real v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

class PcgPreconditionerSweep : public ::testing::TestWithParam<int> {};

TEST_P(PcgPreconditionerSweep, GridLaplacianResidualBelowTolerance) {
  const la::CsrMatrix a = grounded_grid_laplacian(13, 14);
  Rng rng(5);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();

  std::unique_ptr<Preconditioner> m;
  switch (GetParam()) {
    case 0: m = std::make_unique<IdentityPreconditioner>(a.rows()); break;
    case 1: m = std::make_unique<JacobiPreconditioner>(a); break;
    default: m = std::make_unique<SgsPreconditioner>(a); break;
  }
  la::Vector x;
  PcgOptions options;
  options.rel_tolerance = 1e-10;
  const PcgResult r = pcg_solve(a, b, x, *m, options);
  EXPECT_TRUE(r.converged);
  const la::Vector ax = a.multiply(x);
  la::Vector res = b;
  la::axpy(-1.0, ax, res);
  EXPECT_LE(la::norm2(res) / la::norm2(b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Preconditioners, PcgPreconditionerSweep,
                         ::testing::Values(0, 1, 2));

TEST(Pcg, SgsConvergesFasterThanIdentityOnGrid) {
  const la::CsrMatrix a = grounded_grid_laplacian(20, 20);
  Rng rng(6);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();

  la::Vector x1, x2;
  const IdentityPreconditioner ident(a.rows());
  const SgsPreconditioner sgs(a);
  const PcgResult r_ident = pcg_solve(a, b, x1, ident);
  const PcgResult r_sgs = pcg_solve(a, b, x2, sgs);
  EXPECT_TRUE(r_ident.converged);
  EXPECT_TRUE(r_sgs.converged);
  EXPECT_LT(r_sgs.iterations, r_ident.iterations);
}

TEST(Pcg, RespectsIterationCap) {
  const la::CsrMatrix a = grounded_grid_laplacian(25, 25);
  Rng rng(7);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  la::Vector x;
  const IdentityPreconditioner m(a.rows());
  PcgOptions options;
  options.max_iterations = 3;
  const PcgResult r = pcg_solve(a, b, x, m, options);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3);
}

TEST(Pcg, WarmStartFromExactSolutionConvergesImmediately) {
  const la::CsrMatrix a = grounded_grid_laplacian(8, 8);
  Rng rng(8);
  la::Vector x_true(static_cast<std::size_t>(a.rows()));
  for (auto& v : x_true) v = rng.normal();
  const la::Vector b = a.multiply(x_true);
  la::Vector x = x_true;
  const JacobiPreconditioner m(a);
  const PcgResult r = pcg_solve(a, b, x, m);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 1);
}

TEST(Pcg, SizeMismatchThrows) {
  const la::CsrMatrix a = la::CsrMatrix::identity(4);
  const IdentityPreconditioner m(4);
  la::Vector x;
  EXPECT_THROW(pcg_solve(a, la::Vector(3, 1.0), x, m), ContractViolation);
}

TEST(Preconditioner, JacobiRejectsNonpositiveDiagonal) {
  const la::CsrMatrix a =
      la::CsrMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {1, 1, -2.0}});
  EXPECT_THROW(JacobiPreconditioner{a}, ContractViolation);
}

TEST(Preconditioner, SgsApplyIsSymmetric) {
  // zᵀ M⁻¹ r should equal rᵀ M⁻¹ z for the SGS preconditioner.
  const la::CsrMatrix a = grounded_grid_laplacian(6, 6);
  const SgsPreconditioner m(a);
  Rng rng(9);
  la::Vector r(static_cast<std::size_t>(a.rows()));
  la::Vector s(static_cast<std::size_t>(a.rows()));
  for (auto& v : r) v = rng.normal();
  for (auto& v : s) v = rng.normal();
  la::Vector mr, ms;
  m.apply(r, mr);
  m.apply(s, ms);
  EXPECT_NEAR(la::dot(s, mr), la::dot(r, ms), 1e-9);
}

}  // namespace
}  // namespace sgl::solver
