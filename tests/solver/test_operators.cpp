// Unit tests for the solver-backed LinearOperator adapters.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "solver/operators.hpp"

namespace sgl::solver {
namespace {

TEST(Operators, LaplacianPinvOperatorMatchesSolver) {
  const graph::Graph g = graph::make_grid2d(6, 5).graph;
  const LaplacianPinvSolver pinv(g);
  const LaplacianPinvOperator op(pinv);
  EXPECT_EQ(op.rows(), g.num_nodes());
  EXPECT_EQ(op.cols(), g.num_nodes());

  Rng rng(1);
  la::Vector y(static_cast<std::size_t>(g.num_nodes()));
  for (Real& v : y) v = rng.normal();
  la::Vector x;
  op.apply(y, x);
  const la::Vector ref = pinv.apply(y);
  ASSERT_EQ(x.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_DOUBLE_EQ(x[i], ref[i]);
}

TEST(Operators, LaplacianPinvOperatorBlockMatchesPerColumn) {
  const graph::Graph g = graph::make_grid2d(5, 5).graph;
  const LaplacianPinvSolver pinv(g);
  const LaplacianPinvOperator op(pinv);
  Rng rng(2);
  la::MultiVector y(g.num_nodes(), 5);
  for (Index j = 0; j < 5; ++j)
    for (Real& v : y.col(j)) v = rng.normal();
  la::MultiVector x(g.num_nodes(), 5);
  op.apply_block(y.view(), x.view());
  for (Index j = 0; j < 5; ++j) {
    const la::Vector yj(y.col(j).begin(), y.col(j).end());
    const la::Vector ref = pinv.apply(yj);
    for (Index i = 0; i < g.num_nodes(); ++i)
      EXPECT_DOUBLE_EQ(x(i, j), ref[static_cast<std::size_t>(i)]);
  }
}

TEST(Operators, PreconditionedOperatorComposesApplications) {
  const graph::Graph g = graph::make_grid2d(6, 6).graph;
  // Grounded SPD system + Jacobi: y = D⁻¹(A x).
  std::vector<la::Triplet> t;
  const la::CsrMatrix lap = g.laplacian();
  for (Index i = 1; i < lap.rows(); ++i)
    for (Index j = 1; j < lap.cols(); ++j)
      if (lap.at(i, j) != 0.0) t.push_back({i - 1, j - 1, lap.at(i, j)});
  const la::CsrMatrix a =
      la::CsrMatrix::from_triplets(lap.rows() - 1, lap.cols() - 1, t);
  const JacobiPreconditioner m(a);
  const PreconditionedOperator op(a, m);

  Rng rng(3);
  la::Vector x(static_cast<std::size_t>(a.rows()));
  for (Real& v : x) v = rng.normal();
  la::Vector y;
  op.apply(x, y);
  la::Vector ref;
  m.apply(a.multiply(x), ref);
  ASSERT_EQ(y.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_DOUBLE_EQ(y[i], ref[i]);

  // Block apply matches per-column apply exactly.
  la::MultiVector xb(a.rows(), 4);
  for (Index j = 0; j < 4; ++j)
    for (Real& v : xb.col(j)) v = rng.normal();
  la::MultiVector yb(a.rows(), 4);
  op.apply_block(xb.view(), yb.view());
  for (Index j = 0; j < 4; ++j) {
    const la::Vector xj(xb.col(j).begin(), xb.col(j).end());
    la::Vector yj;
    op.apply(xj, yj);
    for (Index i = 0; i < a.rows(); ++i)
      EXPECT_DOUBLE_EQ(yb(i, j), yj[static_cast<std::size_t>(i)]);
  }
}

TEST(Operators, PreconditionedOperatorContracts) {
  const graph::Graph g = graph::make_path(5);
  const la::CsrMatrix a = g.laplacian();
  const JacobiPreconditioner m(a);
  const la::CsrMatrix b = la::CsrMatrix::identity(3);
  EXPECT_THROW((PreconditionedOperator{b, m}), ContractViolation);
}

}  // namespace
}  // namespace sgl::solver
