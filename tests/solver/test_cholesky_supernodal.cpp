// Bitwise cross-kernel tests for the supernodal dense-panel numeric
// phase (DESIGN.md §9): the default kSupernodal kernel must reproduce
// the retained kScalar reference bit for bit — factor, scalar solves,
// and block sweeps — across every ordering, matrix family, and thread
// count. The comparisons go through solve outputs: every factor nonzero
// is multiplied into the forward/backward sweeps of a dense random
// right-hand side, so a single differing bit in L or D would surface.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "solver/cholesky.hpp"
#include "solver_test_utils.hpp"

namespace sgl::solver {
namespace {

la::CsrMatrix random_spd(Index n, Real density, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Triplet> t;
  la::Vector diag(static_cast<std::size_t>(n), 0.5);
  for (Index i = 0; i < n; ++i)
    for (Index j = i + 1; j < n; ++j)
      if (rng.uniform() < density) {
        const Real v = rng.uniform(0.1, 1.0);
        t.push_back({i, j, -v});
        t.push_back({j, i, -v});
        diag[static_cast<std::size_t>(i)] += v;
        diag[static_cast<std::size_t>(j)] += v;
      }
  for (Index i = 0; i < n; ++i)
    t.push_back({i, i, diag[static_cast<std::size_t>(i)]});
  return la::CsrMatrix::from_triplets(n, n, t);
}

enum class MatrixFamily { kMesh, kPath, kRandomSpd };

la::CsrMatrix make_matrix(MatrixFamily family) {
  switch (family) {
    case MatrixFamily::kMesh:
      // Big enough that the mesh factor's trailing blocks form wide
      // panels and the numeric phase crosses the serial threshold.
      return grounded_laplacian(graph::make_grid2d(20, 17).graph);
    case MatrixFamily::kPath: {
      // A path graph factors tridiagonally: one long chain supernode
      // whose panels are all width 1 — the case that makes the
      // fundamental-panel refinement (not whole-chain densification)
      // load-bearing.
      graph::Graph g(340);
      for (Index i = 0; i + 1 < 340; ++i) g.add_edge(i, i + 1, 1.0);
      return grounded_laplacian(g);
    }
    case MatrixFamily::kRandomSpd:
    default:
      return random_spd(300, 0.04, 99);
  }
}

la::Vector random_rhs(Index n, std::uint64_t seed) {
  Rng rng(seed);
  la::Vector b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.normal();
  return b;
}

using SweepParam = std::tuple<OrderingMethod, MatrixFamily, Index>;

class SupernodalKernelSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SupernodalKernelSweep, FactorAndSweepsMatchScalarBitwise) {
  const auto [ordering, family, threads] = GetParam();
  const la::CsrMatrix a = make_matrix(family);

  const CholeskySolver reference(a, ordering, 1, FactorKernel::kScalar);
  const CholeskySolver scalar(a, ordering, threads, FactorKernel::kScalar);
  const CholeskySolver panel(a, ordering, threads, FactorKernel::kSupernodal);

  // The panel partition covers every column exactly once.
  EXPECT_GE(panel.stats().num_panels, 1);
  EXPECT_LE(panel.stats().num_panels, panel.stats().n);
  EXPECT_LE(panel.stats().panel_columns, panel.stats().n);
  EXPECT_EQ(panel.stats().factor_nnz, reference.stats().factor_nnz);

  // Scalar solve: exercises every factor entry once per sweep.
  const la::Vector b = random_rhs(a.rows(), 2024);
  const la::Vector x_ref = reference.solve(b);
  const la::Vector x_scalar = scalar.solve(b);
  const la::Vector x_panel = panel.solve(b);
  for (std::size_t i = 0; i < x_ref.size(); ++i) {
    EXPECT_EQ(x_ref[i], x_scalar[i]) << "scalar kernel, thread count " << threads;
    EXPECT_EQ(x_ref[i], x_panel[i]) << "panel kernel, thread count " << threads;
  }

  // Block sweeps (panel-run gathers under kSupernodal) against the
  // scalar reference, column by column, at the sweep's thread count.
  const la::MultiVector rhs = random_block_rhs(a.rows(), 9, 77);
  const la::MultiVector x_block = panel.solve_block(rhs, threads);
  const la::MultiVector x_block_ref = reference.solve_block(rhs, 1);
  for (Index j = 0; j < rhs.cols(); ++j) {
    const auto col = x_block.col(j);
    const auto ref = x_block_ref.col(j);
    for (Index i = 0; i < a.rows(); ++i) EXPECT_EQ(col[i], ref[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, SupernodalKernelSweep,
    ::testing::Combine(::testing::Values(OrderingMethod::kNatural,
                                         OrderingMethod::kRcm,
                                         OrderingMethod::kMinimumDegree,
                                         OrderingMethod::kNestedDissection,
                                         OrderingMethod::kAuto),
                       ::testing::Values(MatrixFamily::kMesh,
                                         MatrixFamily::kPath,
                                         MatrixFamily::kRandomSpd),
                       ::testing::Values(Index{1}, Index{2}, Index{4},
                                         Index{8})));

TEST(CholeskySupernodal, MeshFormsWidePanels) {
  const la::CsrMatrix a = grounded_laplacian(graph::make_grid2d(24, 24).graph);
  const CholeskySolver solver(a, OrderingMethod::kNestedDissection);
  // The trailing separator blocks of a nested-dissection mesh factor are
  // dense triangles — the panel refinement must find width ≥ 2 there,
  // otherwise the dense kernel never runs.
  EXPECT_GE(solver.stats().panel_max_width, 2);
  EXPECT_GE(solver.stats().panel_columns, 2);
  EXPECT_LE(solver.stats().num_panels, solver.stats().n);
}

TEST(CholeskySupernodal, PathGraphPanelsAreAllWidthOne) {
  graph::Graph g(200);
  for (Index i = 0; i + 1 < 200; ++i) g.add_edge(i, i + 1, 1.0);
  const la::CsrMatrix a = grounded_laplacian(g);
  const CholeskySolver solver(a, OrderingMethod::kNatural);
  // Tridiagonal factor: |pattern(j)| = 1 for every column but the last,
  // so the only merge the refinement may find is the final pair (sizes
  // 1 and 0). It must NOT densify the single chain supernode — that
  // would be one O(n²) panel.
  EXPECT_LE(solver.stats().panel_max_width, 2);
  EXPECT_LE(solver.stats().panel_columns, 2);
  EXPECT_GE(solver.stats().num_panels, solver.stats().n - 1);
}

TEST(CholeskySupernodal, UpdateEdgeMatchesScalarKernelBitwise) {
  const la::CsrMatrix a = grounded_laplacian(graph::make_grid2d(12, 12).graph);
  CholeskySolver scalar(a, OrderingMethod::kRcm, 1, FactorKernel::kScalar);
  CholeskySolver panel(a, OrderingMethod::kRcm, 1, FactorKernel::kSupernodal);
  ASSERT_TRUE(scalar.edge_in_pattern(3, 4));
  scalar.update_edge(3, 4, 0.75);
  panel.update_edge(3, 4, 0.75);
  const la::Vector b = random_rhs(a.rows(), 5);
  const la::Vector xs = scalar.solve(b);
  const la::Vector xp = panel.solve(b);
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_EQ(xs[i], xp[i]);
}

TEST(CholeskySupernodal, RefactorizeMatchesScalarKernelBitwise) {
  const graph::Graph g = graph::make_grid2d(15, 14).graph;
  const la::CsrMatrix a = grounded_laplacian(g);
  CholeskySolver scalar(a, OrderingMethod::kAuto, 1, FactorKernel::kScalar);
  CholeskySolver panel(a, OrderingMethod::kAuto, 1, FactorKernel::kSupernodal);

  // Same pattern, new weights: numeric-only renumeration on both kernels.
  la::CsrMatrix a2 = a;
  a2.scale(2.0);
  scalar.refactorize(a2, 4);
  panel.refactorize(a2, 4);
  const la::Vector b = random_rhs(a.rows(), 17);
  const la::Vector xs = scalar.solve(b);
  const la::Vector xp = panel.solve(b);
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_EQ(xs[i], xp[i]);
}

TEST(CholeskySupernodal, NonPositivePivotThrowsSameColumnAsScalar) {
  // Indefinite dense-ish matrix: both kernels must reject at the SAME
  // column with the same message (the pivot checks run in the same
  // column order inside a panel as outside).
  const la::CsrMatrix a = la::CsrMatrix::from_triplets(
      3, 3,
      {{0, 0, 4.0}, {0, 1, 2.0}, {0, 2, 2.0}, {1, 0, 2.0}, {1, 1, 1.0},
       {1, 2, 2.0}, {2, 0, 2.0}, {2, 1, 2.0}, {2, 2, 1.0}});
  std::string scalar_message;
  std::string panel_message;
  try {
    const CholeskySolver s(a, OrderingMethod::kNatural, 1,
                           FactorKernel::kScalar);
  } catch (const NumericalError& e) {
    scalar_message = e.what();
  }
  try {
    const CholeskySolver s(a, OrderingMethod::kNatural, 1,
                           FactorKernel::kSupernodal);
  } catch (const NumericalError& e) {
    panel_message = e.what();
  }
  ASSERT_FALSE(scalar_message.empty());
  EXPECT_EQ(scalar_message, panel_message);
}

}  // namespace
}  // namespace sgl::solver
