// Unit tests for the spanning-tree and IC(0) preconditioners.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "solver/amg.hpp"
#include "solver/ic0.hpp"
#include "solver/pcg.hpp"
#include "solver/tree_preconditioner.hpp"
#include "solver_test_utils.hpp"

namespace sgl::solver {
namespace {

// --- TreePreconditioner -------------------------------------------------

TEST(TreePreconditioner, ExactOnTrees) {
  // For a tree the preconditioner IS the grounded Laplacian: applying it
  // must solve the system exactly.
  const graph::Graph g = graph::make_path(20);
  const la::CsrMatrix a = grounded_laplacian(g);
  const TreePreconditioner tree(g);
  Rng rng(1);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  la::Vector z;
  tree.apply(b, z);
  const la::Vector az = a.multiply(z);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(az[i], b[i], 1e-10);
}

TEST(TreePreconditioner, ExactOnStarAndRandomTrees) {
  Rng rng(2);
  for (const std::uint64_t seed : {3ull, 4ull, 5ull}) {
    Rng tree_rng(seed);
    const Index n = 40;
    graph::Graph g(n);
    for (Index i = 1; i < n; ++i)
      g.add_edge(tree_rng.uniform_int(i), i, tree_rng.uniform(0.5, 3.0));
    const la::CsrMatrix a = grounded_laplacian(g);
    const TreePreconditioner tree(g);
    la::Vector b(static_cast<std::size_t>(a.rows()));
    for (auto& v : b) v = rng.normal();
    la::Vector z;
    tree.apply(b, z);
    const la::Vector az = a.multiply(z);
    for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(az[i], b[i], 1e-9);
  }
}

TEST(TreePreconditioner, AcceleratesPcgOnMesh) {
  const graph::Graph g = graph::make_grid2d(18, 18).graph;
  const la::CsrMatrix a = grounded_laplacian(g);
  Rng rng(3);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();

  const TreePreconditioner tree(g);
  const IdentityPreconditioner ident(a.rows());
  la::Vector x1, x2;
  const PcgResult r_tree = pcg_solve(a, b, x1, tree);
  const PcgResult r_ident = pcg_solve(a, b, x2, ident);
  EXPECT_TRUE(r_tree.converged);
  EXPECT_TRUE(r_ident.converged);
  // Both converge to the same solution.
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_NEAR(x1[i], x2[i], 1e-6);
}

TEST(TreePreconditioner, IsSymmetricOperator) {
  const graph::Graph g = graph::make_grid2d(9, 9).graph;
  const TreePreconditioner tree(g);
  Rng rng(4);
  la::Vector r(static_cast<std::size_t>(g.num_nodes() - 1));
  la::Vector s(static_cast<std::size_t>(g.num_nodes() - 1));
  for (auto& v : r) v = rng.normal();
  for (auto& v : s) v = rng.normal();
  la::Vector mr, ms;
  tree.apply(r, mr);
  tree.apply(s, ms);
  EXPECT_NEAR(la::dot(s, mr), la::dot(r, ms), 1e-9);
}

TEST(TreePreconditioner, RequiresConnectedGraph) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  EXPECT_THROW(TreePreconditioner{g}, ContractViolation);
}

TEST(TreePreconditioner, TreeEdgeCount) {
  const graph::Graph g = graph::make_grid2d(6, 6).graph;
  const TreePreconditioner tree(g);
  EXPECT_EQ(tree.tree_edges(), 35);
}

// --- Ic0Preconditioner ---------------------------------------------------

TEST(Ic0, ExactWhenPatternHasNoFill) {
  // A tridiagonal matrix factors exactly under IC(0).
  const graph::Graph g = graph::make_path(30);
  const la::CsrMatrix a = grounded_laplacian(g);
  const Ic0Preconditioner ic0(a);
  EXPECT_DOUBLE_EQ(ic0.shift(), 0.0);
  Rng rng(5);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  la::Vector z;
  ic0.apply(b, z);
  const la::Vector az = a.multiply(z);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(az[i], b[i], 1e-10);
}

TEST(Ic0, AcceleratesPcgOnMesh) {
  const graph::Graph g = graph::make_grid2d(20, 20).graph;
  const la::CsrMatrix a = grounded_laplacian(g);
  Rng rng(6);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();

  const Ic0Preconditioner ic0(a);
  const IdentityPreconditioner ident(a.rows());
  la::Vector x1, x2;
  const PcgResult r_ic0 = pcg_solve(a, b, x1, ic0);
  const PcgResult r_ident = pcg_solve(a, b, x2, ident);
  EXPECT_TRUE(r_ic0.converged);
  EXPECT_LT(r_ic0.iterations, r_ident.iterations);
}

TEST(Ic0, SymmetricOperator) {
  const graph::Graph g = graph::make_grid2d(10, 10).graph;
  const la::CsrMatrix a = grounded_laplacian(g);
  const Ic0Preconditioner ic0(a);
  Rng rng(7);
  la::Vector r(static_cast<std::size_t>(a.rows()));
  la::Vector s(static_cast<std::size_t>(a.rows()));
  for (auto& v : r) v = rng.normal();
  for (auto& v : s) v = rng.normal();
  la::Vector mr, ms;
  ic0.apply(r, mr);
  ic0.apply(s, ms);
  EXPECT_NEAR(la::dot(s, mr), la::dot(r, ms), 1e-9);
}

TEST(Ic0, WorksOnWeightedCircuitGrid) {
  const graph::MeshGraph mesh = graph::make_circuit_grid(15, 15, 0, 0.5, 5.0, 9);
  const la::CsrMatrix a = grounded_laplacian(mesh.graph);
  const Ic0Preconditioner ic0(a);
  Rng rng(8);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  la::Vector x;
  const PcgResult r = pcg_solve(a, b, x, ic0);
  EXPECT_TRUE(r.converged);
}

TEST(Ic0, NonSquareThrows) {
  const la::CsrMatrix rect = la::CsrMatrix::from_triplets(2, 3, {{0, 0, 1.0}});
  EXPECT_THROW(Ic0Preconditioner{rect}, ContractViolation);
}

// --- apply_block (the block-PCG seam) ------------------------------------

/// Every apply_block column must equal the per-column apply() bitwise,
/// for every thread count.
void expect_block_matches_apply(const Preconditioner& m, std::uint64_t seed) {
  const la::MultiVector r = random_block_rhs(m.size(), 5, seed);
  la::MultiVector z(m.size(), 5);
  for (const Index threads : {1, 2, 4, 8}) {
    m.apply_block(r.view(), z.view(), threads);
    for (Index j = 0; j < r.cols(); ++j) {
      la::Vector rj(r.col(j).begin(), r.col(j).end());
      la::Vector ref;
      m.apply(rj, ref);
      for (Index i = 0; i < m.size(); ++i)
        EXPECT_EQ(z(i, j), ref[static_cast<std::size_t>(i)])
            << "threads=" << threads << " col=" << j;
    }
  }
}

TEST(Ic0, ApplyBlockMatchesApplyBitwise) {
  const la::CsrMatrix a =
      grounded_laplacian(graph::make_grid2d(11, 9).graph);
  expect_block_matches_apply(Ic0Preconditioner(a), 31);
}

TEST(TreePreconditioner, ApplyBlockMatchesApplyBitwise) {
  expect_block_matches_apply(
      TreePreconditioner(graph::make_grid2d(10, 10).graph), 32);
}

TEST(Preconditioner, DefaultApplyBlockMatchesApplyBitwise) {
  // Jacobi exercises its elementwise block override; SGS exercises the
  // base-class column-parallel fallback.
  const la::CsrMatrix a =
      grounded_laplacian(graph::make_grid2d(9, 8).graph);
  expect_block_matches_apply(JacobiPreconditioner(a), 33);
  expect_block_matches_apply(SgsPreconditioner(a), 34);
}

TEST(Preconditioner, ApplyBlockShapeContracts) {
  const la::CsrMatrix a = grounded_laplacian(graph::make_path(6));
  const Ic0Preconditioner ic0(a);
  la::MultiVector r(4, 2);  // wrong row count
  la::MultiVector z(5, 2);
  EXPECT_THROW(ic0.apply_block(r.view(), z.view()), ContractViolation);
}

class PreconditionerQualityOrder : public ::testing::Test {};

TEST(PreconditionerQualityOrder, IterationCountsOrderAsExpected) {
  // On a uniform mesh: AMG ≾ IC0/tree/SGS < Jacobi < Identity.
  const graph::Graph g = graph::make_grid2d(24, 24).graph;
  const la::CsrMatrix a = grounded_laplacian(g);
  Rng rng(9);
  la::Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();

  const auto iterations_with = [&](const Preconditioner& m) {
    la::Vector x;
    return pcg_solve(a, b, x, m).iterations;
  };
  const Index it_ident = iterations_with(IdentityPreconditioner(a.rows()));
  const Index it_jacobi = iterations_with(JacobiPreconditioner(a));
  const Index it_ic0 = iterations_with(Ic0Preconditioner(a));
  const Index it_amg = iterations_with(AmgPreconditioner(a));

  EXPECT_LE(it_ic0, it_jacobi);
  EXPECT_LE(it_amg, it_ic0);
  EXPECT_LE(it_jacobi, it_ident + 1);
}

}  // namespace
}  // namespace sgl::solver
