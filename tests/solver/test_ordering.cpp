// Unit tests for fill-reducing orderings.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "solver/ordering.hpp"

namespace sgl::solver {
namespace {

bool is_permutation_of_n(const std::vector<Index>& p, Index n) {
  if (to_index(p.size()) != n) return false;
  std::set<Index> s(p.begin(), p.end());
  return to_index(s.size()) == n && *s.begin() == 0 && *s.rbegin() == n - 1;
}

TEST(Ordering, MethodNamesRoundTrip) {
  for (const OrderingMethod m :
       {OrderingMethod::kNatural, OrderingMethod::kRcm,
        OrderingMethod::kMinimumDegree, OrderingMethod::kNestedDissection,
        OrderingMethod::kAuto}) {
    const auto parsed = parse_ordering_method(ordering_method_name(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(parse_ordering_method("metis").has_value());
  EXPECT_FALSE(parse_ordering_method("").has_value());
  EXPECT_FALSE(parse_ordering_method("AMD").has_value());
}

TEST(Ordering, NaturalIsIdentity) {
  const auto p = natural_ordering(4);
  EXPECT_EQ(p, (std::vector<Index>{0, 1, 2, 3}));
}

TEST(Ordering, InvertPermutation) {
  const std::vector<Index> p{2, 0, 1};
  const auto inv = invert_permutation(p);
  EXPECT_EQ(inv, (std::vector<Index>{1, 2, 0}));
  EXPECT_THROW(invert_permutation({0, 0}), ContractViolation);
  EXPECT_THROW(invert_permutation({0, 5}), ContractViolation);
}

TEST(Ordering, PermuteSymmetricMatchesDirectIndexing) {
  const graph::Graph g = graph::make_grid2d(4, 4).graph;
  const la::CsrMatrix a = g.laplacian();
  const auto perm = rcm_ordering(a);
  const la::CsrMatrix pa = permute_symmetric(a, perm);
  for (Index i = 0; i < a.rows(); ++i)
    for (Index j = 0; j < a.cols(); ++j)
      EXPECT_DOUBLE_EQ(pa.at(i, j),
                       a.at(perm[static_cast<std::size_t>(i)],
                            perm[static_cast<std::size_t>(j)]));
}

TEST(Ordering, RcmReducesGridBandwidth) {
  const graph::Graph g = graph::make_grid2d(12, 12).graph;
  const la::CsrMatrix a = g.laplacian();
  const auto bandwidth = [&a](const std::vector<Index>& perm) {
    const auto inv = invert_permutation(perm);
    Index bw = 0;
    const la::CsrMatrix pa = permute_symmetric(a, perm);
    for (Index i = 0; i < pa.rows(); ++i)
      for (Index k = pa.row_ptr()[static_cast<std::size_t>(i)];
           k < pa.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k)
        bw = std::max(bw, std::abs(i - pa.col_idx()[static_cast<std::size_t>(k)]));
    (void)inv;
    return bw;
  };
  // Natural order of a y-major grid has bandwidth nx = 12; RCM should not
  // be worse, and is typically near the grid width too — compare against a
  // deliberately bad random ordering instead.
  std::vector<Index> bad = natural_ordering(a.rows());
  std::reverse(bad.begin(), bad.end());
  std::swap(bad[0], bad[70]);
  EXPECT_LE(bandwidth(rcm_ordering(a)), bandwidth(bad));
}

class OrderingMethodSweep
    : public ::testing::TestWithParam<OrderingMethod> {};

TEST_P(OrderingMethodSweep, ProducesValidPermutationOnMeshes) {
  const auto method = GetParam();
  for (const Index size : {2, 5, 9}) {
    const graph::Graph g = graph::make_grid2d(size, size).graph;
    const la::CsrMatrix a = g.laplacian();
    EXPECT_TRUE(is_permutation_of_n(compute_ordering(a, method), a.rows()))
        << "size " << size;
  }
}

TEST_P(OrderingMethodSweep, ProducesValidPermutationOnDisconnected) {
  graph::Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const la::CsrMatrix a = g.laplacian();
  EXPECT_TRUE(is_permutation_of_n(compute_ordering(a, GetParam()), a.rows()));
}

TEST_P(OrderingMethodSweep, ProducesValidPermutationOnDenseBlock) {
  const graph::Graph g = graph::make_complete(20);
  const la::CsrMatrix a = g.laplacian();
  EXPECT_TRUE(is_permutation_of_n(compute_ordering(a, GetParam()), 20));
}

INSTANTIATE_TEST_SUITE_P(Methods, OrderingMethodSweep,
                         ::testing::Values(OrderingMethod::kNatural,
                                           OrderingMethod::kRcm,
                                           OrderingMethod::kMinimumDegree,
                                           OrderingMethod::kNestedDissection,
                                           OrderingMethod::kAuto));

TEST(Ordering, NestedDissectionValidOnLargerMesh) {
  const graph::Graph g = graph::make_grid2d(40, 37).graph;
  const la::CsrMatrix a = g.laplacian();
  EXPECT_TRUE(is_permutation_of_n(nested_dissection_ordering(a), a.rows()));
}

TEST(Ordering, MinimumDegreeStartsWithLowestDegreeNode) {
  const graph::Graph g = graph::make_star(6);
  const auto p = minimum_degree_ordering(g.laplacian());
  // Leaves (degree 1) are eliminated before the hub; once only one leaf
  // remains the hub's degree drops to 1 as well, so the hub can appear in
  // either of the final two positions.
  EXPECT_NE(p[0], 0);
  EXPECT_TRUE(p.back() == 0 || p[p.size() - 2] == 0);
}

}  // namespace
}  // namespace sgl::solver
