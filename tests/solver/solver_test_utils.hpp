// Shared helpers for the solver test modules. The grounded SPD systems
// come from the production solver::grounded_laplacian (re-exported by the
// include below), so tests always factor the exact matrix the library
// factors.
#pragma once

#include "common/rng.hpp"
#include "la/multi_vector.hpp"
#include "solver/laplacian_solver.hpp"

namespace sgl::solver {

/// Seeded dense right-hand-side block (columns filled in order, so the
/// values are reproducible across tests and thread counts).
inline la::MultiVector random_block_rhs(Index rows, Index cols,
                                        std::uint64_t seed) {
  Rng rng(seed);
  la::MultiVector b(rows, cols);
  for (Index j = 0; j < cols; ++j)
    for (Real& v : b.col(j)) v = rng.normal();
  return b;
}

}  // namespace sgl::solver
