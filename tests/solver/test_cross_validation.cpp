// Cross-validation tests: independent solver paths must agree with each
// other and with closed forms on structured inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "eig/dense_eig.hpp"
#include "graph/generators.hpp"
#include "solver/laplacian_solver.hpp"

namespace sgl::solver {
namespace {

/// Dense L⁺ y via full eigendecomposition — the reference all sparse
/// paths are checked against.
la::Vector dense_pinv_apply(const graph::Graph& g, const la::Vector& y) {
  const Index n = g.num_nodes();
  const la::CsrMatrix lap = g.laplacian();
  la::DenseMatrix dense(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j) dense(i, j) = lap.at(i, j);
  const eig::DenseEigResult eigs = eig::dense_symmetric_eig(dense);
  la::Vector out(static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i < n; ++i) {
    if (eigs.eigenvalues[static_cast<std::size_t>(i)] < 1e-9) continue;
    const la::Vector u = eigs.eigenvectors.col_vector(i);
    la::axpy(la::dot(u, y) / eigs.eigenvalues[static_cast<std::size_t>(i)], u,
             out);
  }
  return out;
}

class PinvCrossValidation
    : public ::testing::TestWithParam<std::tuple<int, LaplacianMethod>> {};

TEST_P(PinvCrossValidation, SparseMatchesDenseReference) {
  const auto [graph_kind, method] = GetParam();
  graph::Graph g(0);
  switch (graph_kind) {
    case 0: g = graph::make_grid2d(6, 7).graph; break;
    case 1: g = graph::make_cycle(30); break;
    case 2: g = graph::make_star(25); break;
    default: g = graph::make_circuit_grid(6, 6, 0, 0.5, 5.0, 3).graph; break;
  }
  LaplacianSolverOptions options;
  options.method = method;
  const LaplacianPinvSolver pinv(g, options);

  Rng rng(11);
  la::Vector y(static_cast<std::size_t>(g.num_nodes()));
  for (auto& v : y) v = rng.normal();
  la::center(y);

  const la::Vector sparse = pinv.apply(y);
  const la::Vector dense = dense_pinv_apply(g, y);
  for (std::size_t i = 0; i < sparse.size(); ++i)
    EXPECT_NEAR(sparse[i], dense[i], 1e-7) << "graph " << graph_kind;
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndMethods, PinvCrossValidation,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(LaplacianMethod::kCholesky,
                                         LaplacianMethod::kPcgIc0,
                                         LaplacianMethod::kPcgTree,
                                         LaplacianMethod::kPcgAmg)));

TEST(PinvCrossValidation, CompleteGraphClosedForm) {
  // K_n: Reff(s, t) = 2/n for every pair.
  const Index n = 14;
  const graph::Graph g = graph::make_complete(n);
  const LaplacianPinvSolver pinv(g);
  EXPECT_NEAR(pinv.effective_resistance(0, 1), 2.0 / n, 1e-10);
  EXPECT_NEAR(pinv.effective_resistance(3, 9), 2.0 / n, 1e-10);
}

TEST(PinvCrossValidation, SeriesParallelNetworkClosedForm) {
  // Two parallel paths 0-1-2-3 (three unit resistors) and 0-4-3 (two
  // unit resistors): Reff(0,3) = (3·2)/(3+2) = 6/5 Ω.
  graph::Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 4);
  g.add_edge(4, 3);
  const LaplacianPinvSolver pinv(g);
  EXPECT_NEAR(pinv.effective_resistance(0, 3), 6.0 / 5.0, 1e-10);
}

TEST(PinvCrossValidation, FosterTheorem) {
  // Foster: Σ_{(s,t)∈E} w_st·Reff(s,t) = n − 1 for any connected graph.
  const graph::MeshGraph mesh = graph::make_circuit_grid(7, 7, 0, 0.5, 5.0, 5);
  const LaplacianPinvSolver pinv(mesh.graph);
  Real total = 0.0;
  for (const graph::Edge& e : mesh.graph.edges())
    total += e.weight * pinv.effective_resistance(e.s, e.t);
  EXPECT_NEAR(total, static_cast<Real>(mesh.graph.num_nodes() - 1), 1e-7);
}

}  // namespace
}  // namespace sgl::solver
