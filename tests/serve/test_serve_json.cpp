// The wire format under the serving layer: parse/serialize round trips,
// the byte-determinism guarantees the protocol's bitwise-equality story
// rests on, and typed kParseError failures for malformed documents.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/contracts.hpp"
#include "serve/json.hpp"

namespace sgl::serve {
namespace {

ErrorCode parse_error_code(const std::string& text) {
  try {
    (void)json_parse(text);
  } catch (const SglError& e) {
    return e.code();
  }
  return ErrorCode::kOk;
}

TEST(ServeJson, ParsesScalarsArraysAndObjects) {
  const JsonValue v = json_parse(
      R"({"op":"solve","n":3,"flag":true,"none":null,"rhs":[1.5,-2,0]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("op")->as_string(), "solve");
  EXPECT_EQ(v.find("n")->as_number(), 3.0);
  EXPECT_TRUE(v.find("flag")->as_bool());
  EXPECT_TRUE(v.find("none")->is_null());
  ASSERT_EQ(v.find("rhs")->as_array().size(), 3U);
  EXPECT_EQ(v.find("rhs")->as_array()[1].as_number(), -2.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ServeJson, ObjectsPreserveInsertionOrder) {
  JsonValue v = JsonValue(JsonValue::Object{});
  v.set("zebra", 1);
  v.set("apple", 2);
  v.set("mango", 3);
  EXPECT_EQ(json_serialize(v), R"({"zebra":1,"apple":2,"mango":3})");
  v.set("apple", 9);  // overwrite keeps the original position
  EXPECT_EQ(json_serialize(v), R"({"zebra":1,"apple":9,"mango":3})");
}

TEST(ServeJson, DoublesRoundTripBitwise) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           -2.3754478032856077,
                           1e-308,
                           6.02214076e23,
                           -0.0,
                           std::nextafter(1.0, 2.0)};
  for (const double x : values) {
    JsonValue v = JsonValue(JsonValue::Object{});
    v.set("x", x);
    const std::string wire = json_serialize(v);
    const double back = json_parse(wire).find("x")->as_number();
    EXPECT_EQ(std::signbit(back), std::signbit(x)) << wire;
    EXPECT_EQ(back, x) << wire;
    // Determinism: serializing again produces identical bytes.
    EXPECT_EQ(json_serialize(json_parse(wire)), wire);
  }
}

TEST(ServeJson, IntegralValuesSerializeWithoutExponent) {
  JsonValue v = JsonValue(JsonValue::Object{});
  v.set("n", Index{144});
  v.set("big", 9007199254740991.0);  // 2^53 − 1
  v.set("neg", -42);
  EXPECT_EQ(json_serialize(v), R"({"n":144,"big":9007199254740991,"neg":-42})");
}

TEST(ServeJson, StringEscapesRoundTrip) {
  JsonValue v = JsonValue(JsonValue::Object{});
  v.set("s", std::string("tab\there \"quoted\" back\\slash\nnewline"));
  const std::string wire = json_serialize(v);
  EXPECT_EQ(json_parse(wire).find("s")->as_string(),
            "tab\there \"quoted\" back\\slash\nnewline");
}

TEST(ServeJson, UnicodeEscapesDecodeToUtf8) {
  const JsonValue v = json_parse(R"({"s":"L⁺ solve"})");
  EXPECT_EQ(v.find("s")->as_string(), "L⁺ solve");  // superscript plus
}

TEST(ServeJson, MalformedInputThrowsTypedParseError) {
  EXPECT_EQ(parse_error_code("{"), ErrorCode::kParseError);
  EXPECT_EQ(parse_error_code(""), ErrorCode::kParseError);
  EXPECT_EQ(parse_error_code("{\"a\":}"), ErrorCode::kParseError);
  EXPECT_EQ(parse_error_code("[1,2"), ErrorCode::kParseError);
  EXPECT_EQ(parse_error_code("tru"), ErrorCode::kParseError);
  EXPECT_EQ(parse_error_code("{} trailing"), ErrorCode::kParseError);
  EXPECT_EQ(parse_error_code("1e999"), ErrorCode::kParseError);  // overflow
  EXPECT_EQ(parse_error_code("nan"), ErrorCode::kParseError);
  EXPECT_EQ(parse_error_code("\"unterminated"), ErrorCode::kParseError);
  // Valid documents for contrast.
  EXPECT_EQ(parse_error_code("[]"), ErrorCode::kOk);
  EXPECT_EQ(parse_error_code("  {\"a\": [1, {\"b\": null}]} "),
            ErrorCode::kOk);
}

TEST(ServeJson, NestingDepthIsBounded) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_EQ(parse_error_code(deep), ErrorCode::kParseError);
}

}  // namespace
}  // namespace sgl::serve
