// The NDJSON protocol layer: request routing, the typed-error envelope
// (stable ErrorCode names on the wire, never message parsing), graph-key
// round trips, and byte-identical responses between a batched and a
// serial engine for the same requests.
#include <gtest/gtest.h>

#include <string>

#include "common/contracts.hpp"
#include "graph/generators.hpp"
#include "serve/protocol.hpp"

namespace sgl::serve {
namespace {

std::string error_code_of(const std::string& response) {
  const JsonValue v = json_parse(response);
  if (v.find("ok") == nullptr || v.find("ok")->as_bool()) return "";
  return v.find("error")->find("code")->as_string();
}

TEST(ServeProtocol, GraphKeyRoundTripsThroughJson) {
  const graph::Graph g = graph::make_grid2d(13, 9).graph;
  const graph::GraphKey key = graph::graph_key(g);
  const graph::GraphKey back = graph_key_from_json(graph_key_to_json(key));
  EXPECT_EQ(back, key);  // exact, including both 64-bit fingerprints
}

TEST(ServeProtocol, LoadGraphThenResistance) {
  ServeEngine engine;
  const ProtocolResult loaded = handle_request(
      engine,
      R"({"op":"load_graph","num_nodes":3,"edges":[[0,1],[1,2,2.0]],"id":7})");
  const JsonValue v = json_parse(loaded.response);
  EXPECT_TRUE(v.find("ok")->as_bool());
  EXPECT_EQ(v.find("op")->as_string(), "load_graph");
  EXPECT_EQ(v.find("id")->as_number(), 7.0);
  EXPECT_EQ(v.find("num_edges")->as_number(), 2.0);

  const ProtocolResult r =
      handle_request(engine, R"({"op":"resistance","s":0,"t":2})");
  const JsonValue rv = json_parse(r.response);
  ASSERT_TRUE(rv.find("ok")->as_bool());
  // Series resistors: 1/1 + 1/2 = 1.5 (path graph 0—1—2), up to solver
  // rounding.
  EXPECT_NEAR(rv.find("value")->as_number(), 1.5, 1e-12);
}

TEST(ServeProtocol, ErrorsCarryStableCodesAndEchoId) {
  ServeEngine engine;
  EXPECT_EQ(error_code_of(handle_request(engine, "not json").response),
            "parse-error");
  EXPECT_EQ(error_code_of(handle_request(engine, R"({"no_op":1})").response),
            "bad-request");
  EXPECT_EQ(
      error_code_of(handle_request(engine, R"({"op":"frobnicate"})").response),
      "unknown-operation");
  EXPECT_EQ(
      error_code_of(
          handle_request(engine, R"({"op":"resistance","s":0,"t":1})").response),
      "no-active-graph");
  const ProtocolResult disconnected = handle_request(
      engine,
      R"({"op":"load_graph","num_nodes":4,"edges":[[0,1],[2,3]],"id":"x9"})");
  EXPECT_EQ(error_code_of(disconnected.response), "graph-not-connected");
  EXPECT_EQ(json_parse(disconnected.response).find("id")->as_string(), "x9");
}

TEST(ServeProtocol, BadRequestFieldsAreTyped) {
  ServeEngine engine;
  EXPECT_EQ(error_code_of(
                handle_request(engine, R"({"op":"resistance","s":0})").response),
            "bad-request");  // missing t
  EXPECT_EQ(
      error_code_of(
          handle_request(engine, R"({"op":"resistance","s":0.5,"t":1})")
              .response),
      "bad-request");  // non-integral node id
  EXPECT_EQ(error_code_of(
                handle_request(
                    engine,
                    R"({"op":"load_graph","num_nodes":2,"edges":[[0,1,-1]]})")
                    .response),
            "bad-request");  // non-positive weight
  EXPECT_EQ(
      error_code_of(
          handle_request(engine, R"({"op":"activate","key":{"num_nodes":1}})")
              .response),
      "bad-request");  // malformed key
}

TEST(ServeProtocol, LearnSyntheticSolveAndStats) {
  ServeEngine engine;
  const ProtocolResult learned = handle_request(
      engine,
      R"({"op":"learn_synthetic","graph":"grid2d","nx":8,"ny":8,"measurements":40})");
  const JsonValue lv = json_parse(learned.response);
  ASSERT_TRUE(lv.find("ok")->as_bool()) << learned.response;
  EXPECT_EQ(lv.find("num_nodes")->as_number(), 64.0);

  // Solve with a centered two-spike right-hand side.
  std::string solve_req = R"({"op":"solve","rhs":[1)";
  for (int i = 1; i < 63; ++i) solve_req += ",0";
  solve_req += R"(,-1]})";
  const ProtocolResult solved = handle_request(engine, solve_req);
  const JsonValue sv = json_parse(solved.response);
  ASSERT_TRUE(sv.find("ok")->as_bool()) << solved.response;
  EXPECT_EQ(sv.find("x")->as_array().size(), 64U);

  const ProtocolResult stats =
      handle_request(engine, R"({"op":"stats"})");
  const JsonValue tv = json_parse(stats.response);
  EXPECT_EQ(tv.find("learns")->as_number(), 1.0);
  EXPECT_EQ(tv.find("requests")->as_number(), 1.0);
}

TEST(ServeProtocol, ActivateByKeySwitchesGraphs) {
  ServeEngine engine;
  const JsonValue first = json_parse(
      handle_request(
          engine,
          R"({"op":"load_graph","num_nodes":3,"edges":[[0,1],[1,2]]})")
          .response);
  ASSERT_TRUE(first.find("ok")->as_bool());
  const std::string key_json = json_serialize(*first.find("key"));
  const JsonValue second = json_parse(
      handle_request(
          engine,
          R"({"op":"load_graph","num_nodes":2,"edges":[[0,1]]})")
          .response);
  ASSERT_TRUE(second.find("ok")->as_bool());

  const ProtocolResult activated = handle_request(
      engine, std::string(R"({"op":"activate","key":)") + key_json + "}");
  ASSERT_TRUE(json_parse(activated.response).find("ok")->as_bool())
      << activated.response;
  const JsonValue info =
      json_parse(handle_request(engine, R"({"op":"info"})").response);
  EXPECT_EQ(info.find("num_nodes")->as_number(), 3.0);
  EXPECT_EQ(json_serialize(*info.find("key")), key_json);
}

TEST(ServeProtocol, ShutdownSetsTheFlag) {
  ServeEngine engine;
  const ProtocolResult r = handle_request(engine, R"({"op":"shutdown"})");
  EXPECT_TRUE(r.shutdown);
  EXPECT_TRUE(json_parse(r.response).find("ok")->as_bool());
  EXPECT_FALSE(handle_request(engine, R"({"op":"info"})").shutdown);
}

TEST(ServeProtocol, BatchedAndSerialServersProduceIdenticalBytes) {
  // Same request stream against a width-16 engine and a width-1 engine:
  // every response line must be byte-identical (the solver's block
  // bit-equality contract, surfaced end to end through the JSON layer).
  ServeOptions batched_options;
  batched_options.batch_width = 16;
  ServeEngine batched(batched_options);
  ServeOptions serial_options;
  serial_options.batch_width = 1;
  ServeEngine serial(serial_options);

  const std::string load =
      R"({"op":"learn_synthetic","graph":"grid2d","nx":10,"ny":10,"measurements":40})";
  ASSERT_EQ(handle_request(batched, load).response,
            handle_request(serial, load).response);

  std::vector<std::string> requests;
  for (int i = 0; i < 12; ++i) {
    requests.push_back(R"({"op":"resistance","s":)" + std::to_string(i) +
                       R"(,"t":)" + std::to_string(99 - i) + "}");
  }
  requests.push_back(
      R"({"op":"resistance_batch","pairs":[[0,1],[1,2],[3,50],[98,99]]})");
  requests.push_back(R"({"op":"embedding"})");
  for (const std::string& request : requests) {
    EXPECT_EQ(handle_request(batched, request).response,
              handle_request(serial, request).response)
        << request;
  }
}

}  // namespace
}  // namespace sgl::serve
