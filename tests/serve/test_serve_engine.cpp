// ServeEngine semantics: batched answers are bitwise the serial answers,
// one coalesced batch runs ONE apply_block (the ServeStats receipt), the
// factorization LRU evicts and refills correctly, and every failure
// carries a stable ErrorCode — clients never parse message text.
#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "graph/generators.hpp"
#include "measure/measurements.hpp"
#include "serve/serve_engine.hpp"
#include "solver/laplacian_solver.hpp"

namespace sgl::serve {
namespace {

graph::Graph grid(Index nx, Index ny) {
  return graph::make_grid2d(nx, ny).graph;
}

ErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const SglError& e) {
    return e.code();
  }
  return ErrorCode::kOk;
}

TEST(ServeEngine, QueriesWithoutGraphAreTypedNoActiveGraph) {
  ServeEngine engine;
  EXPECT_FALSE(engine.has_active_graph());
  EXPECT_EQ(code_of([&] { (void)engine.solve({1.0, -1.0}); }),
            ErrorCode::kNoActiveGraph);
  EXPECT_EQ(code_of([&] { (void)engine.effective_resistance(0, 1); }),
            ErrorCode::kNoActiveGraph);
  EXPECT_EQ(code_of([&] { (void)engine.embedding(); }),
            ErrorCode::kNoActiveGraph);
  EXPECT_EQ(code_of([&] { (void)engine.active_key(); }),
            ErrorCode::kNoActiveGraph);
  EXPECT_EQ(engine.stats().errors, 3);  // accessors don't count as requests
}

TEST(ServeEngine, DisconnectedGraphIsTypedGraphNotConnected) {
  graph::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  ServeEngine engine;
  EXPECT_EQ(code_of([&] { (void)engine.load_graph(std::move(g)); }),
            ErrorCode::kGraphNotConnected);
  EXPECT_EQ(code_of([&] { (void)engine.load_graph(graph::Graph(0)); }),
            ErrorCode::kBadRequest);
  EXPECT_FALSE(engine.has_active_graph());
}

TEST(ServeEngine, SolveMatchesDirectSolverBitwise) {
  const graph::Graph g = grid(9, 7);
  const solver::LaplacianPinvSolver reference(g);

  ServeEngine engine;
  (void)engine.load_graph(g);
  la::Vector rhs(static_cast<std::size_t>(g.num_nodes()), 0.0);
  rhs[0] = 2.0;
  rhs[17] = -1.5;
  rhs[62] = -0.5;
  const la::Vector expected = reference.apply(rhs);
  const la::Vector got = engine.solve(rhs);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "entry " << i;
  }
}

TEST(ServeEngine, BatchedResistanceIsBitwiseSerialAndOneApplyBlock) {
  const graph::Graph g = grid(12, 12);

  // Serial reference: width-1 engine answers one request per block.
  ServeOptions serial_options;
  serial_options.batch_width = 1;
  ServeEngine serial(serial_options);
  (void)serial.load_graph(g);

  ServeEngine batched;  // default width 16
  (void)batched.load_graph(g);

  std::vector<std::pair<Index, Index>> pairs;
  for (Index i = 0; i < 16; ++i) pairs.emplace_back(i, 143 - i);

  const std::vector<Real> block = batched.effective_resistance_batch(pairs);
  ASSERT_EQ(block.size(), pairs.size());
  for (std::size_t j = 0; j < pairs.size(); ++j) {
    const Real one =
        serial.effective_resistance(pairs[j].first, pairs[j].second);
    EXPECT_EQ(block[j], one) << "pair " << j;
  }

  // The receipt: 16 queries, ONE apply_block of width 16.
  const ServeStats stats = batched.stats();
  EXPECT_EQ(stats.requests, 16);
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.batched_columns, 16);
  EXPECT_EQ(stats.max_batch_width, 16);

  // The serial engine ran one single-column batch per query.
  const ServeStats serial_stats = serial.stats();
  EXPECT_EQ(serial_stats.requests, 16);
  EXPECT_EQ(serial_stats.batches, 16);
  EXPECT_EQ(serial_stats.max_batch_width, 1);
}

TEST(ServeEngine, InvalidRequestsAreTypedBadRequest) {
  ServeEngine engine;
  (void)engine.load_graph(grid(4, 4));
  EXPECT_EQ(code_of([&] { (void)engine.effective_resistance(3, 3); }),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of([&] { (void)engine.effective_resistance(0, 99); }),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of([&] { (void)engine.solve(la::Vector(7, 0.0)); }),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of([&] {
              (void)engine.effective_resistance_batch({{0, 1}, {2, -1}});
            }),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of([&] { engine.activate(graph::GraphKey{}); }),
            ErrorCode::kBadRequest);
  EXPECT_EQ(engine.stats().errors, 5);
}

TEST(ServeEngine, LruEvictsAndRefillsDeterministically) {
  ServeOptions options;
  options.cache_capacity = 2;
  options.batch_width = 1;
  ServeEngine engine(options);

  const graph::GraphKey k1 = engine.load_graph(grid(5, 5));
  const Real r1 = engine.effective_resistance(0, 24);  // miss 1
  const graph::GraphKey k2 = engine.load_graph(grid(6, 5));
  (void)engine.effective_resistance(0, 29);  // miss 2
  const graph::GraphKey k3 = engine.load_graph(grid(7, 5));
  (void)engine.effective_resistance(0, 34);  // miss 3, evicts k1

  ASSERT_NE(k1, k2);
  ASSERT_NE(k2, k3);

  engine.activate(k1);
  EXPECT_EQ(engine.active_key(), k1);
  const Real r1_refill = engine.effective_resistance(0, 24);  // miss 4, evicts k2
  // Re-factorizing the same graph with the same options is bit-identical.
  EXPECT_EQ(r1_refill, r1);
  const Real r1_hit = engine.effective_resistance(0, 24);  // hit
  EXPECT_EQ(r1_hit, r1);

  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.cache_misses, 4);
  EXPECT_EQ(stats.cache_evictions, 2);
  EXPECT_EQ(stats.cache_hits, 1);
}

TEST(ServeEngine, KeyPinnedQueriesBypassTheActiveGraph) {
  ServeOptions options;
  options.batch_width = 1;
  ServeEngine engine(options);
  const graph::GraphKey small = engine.load_graph(grid(5, 5));
  const graph::GraphKey big = engine.load_graph(grid(9, 9));  // now active

  // Pinning to `small` answers against the 25-node graph even though the
  // 81-node graph is active — and does not change the active graph.
  const Real pinned = engine.effective_resistance(0, 24, small);
  EXPECT_GT(pinned, 0.0);
  EXPECT_EQ(engine.active_key(), big);

  ServeEngine reference(options);
  (void)reference.load_graph(grid(5, 5));
  EXPECT_EQ(pinned, reference.effective_resistance(0, 24));

  // Unknown keys are a typed bad request.
  EXPECT_EQ(code_of([&] {
              (void)engine.effective_resistance(0, 1, graph::GraphKey{});
            }),
            ErrorCode::kBadRequest);
}

TEST(ServeEngine, ReloadingSameGraphIsACacheHit) {
  ServeEngine engine;
  const graph::GraphKey first = engine.load_graph(grid(6, 6));
  (void)engine.effective_resistance(0, 35);
  const graph::GraphKey second = engine.load_graph(grid(6, 6));
  EXPECT_EQ(first, second);
  (void)engine.effective_resistance(0, 35);
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_EQ(stats.cache_hits, 1);
}

TEST(ServeEngine, LearnActivatesLearnedGraphAndServesQueries) {
  const graph::Graph truth = grid(8, 8);
  measure::MeasurementOptions mopt;
  mopt.num_measurements = 40;
  const measure::Measurements data =
      measure::generate_measurements(truth, mopt);

  ServeEngine engine;
  core::SglConfig config;
  const LearnSummary summary =
      engine.learn(data.voltages, &data.currents, config);
  EXPECT_EQ(summary.num_nodes, truth.num_nodes());
  EXPECT_GT(summary.num_edges, 0);
  EXPECT_TRUE(summary.converged || summary.exhausted);
  EXPECT_TRUE(engine.has_active_graph());
  EXPECT_EQ(engine.active_key(), summary.key);
  EXPECT_EQ(engine.active_num_nodes(), truth.num_nodes());

  const Real r = engine.effective_resistance(0, 63);
  EXPECT_GT(r, 0.0);
  EXPECT_EQ(engine.stats().learns, 1);
}

TEST(ServeEngine, EmbeddingIsCachedPerGraphKey) {
  ServeEngine engine;
  (void)engine.load_graph(grid(8, 8));
  const spectral::Embedding first = engine.embedding();
  const spectral::Embedding second = engine.embedding();
  EXPECT_EQ(engine.stats().embeddings, 1);  // second call was the cache
  ASSERT_EQ(first.eigenvalues.size(), second.eigenvalues.size());
  for (std::size_t i = 0; i < first.eigenvalues.size(); ++i) {
    EXPECT_EQ(first.eigenvalues[i], second.eigenvalues[i]);
  }
  // A different active graph recomputes.
  (void)engine.load_graph(grid(9, 9));
  (void)engine.embedding();
  EXPECT_EQ(engine.stats().embeddings, 2);
}

TEST(ServeEngine, PcgStallSurfacesTypedPcgStalled) {
  ServeOptions options;
  options.solver.method = solver::LaplacianMethod::kPcgJacobi;
  options.solver.pcg.max_iterations = 1;
  options.solver.pcg.rel_tolerance = 1e-14;
  ServeEngine engine(options);
  (void)engine.load_graph(grid(16, 16));
  EXPECT_EQ(code_of([&] { (void)engine.effective_resistance(0, 255); }),
            ErrorCode::kPcgStalled);
  EXPECT_EQ(code_of([&] {
              (void)engine.effective_resistance_batch({{0, 1}, {2, 3}});
            }),
            ErrorCode::kPcgStalled);
}

}  // namespace
}  // namespace sgl::serve
