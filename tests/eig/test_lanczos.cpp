// Unit tests for shift-invert Lanczos on Laplacian pseudo-inverses.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "eig/dense_eig.hpp"
#include "eig/lanczos.hpp"
#include "graph/generators.hpp"

namespace sgl::eig {
namespace {

la::DenseMatrix laplacian_dense(const graph::Graph& g) {
  const la::CsrMatrix lap = g.laplacian();
  la::DenseMatrix dense(lap.rows(), lap.cols());
  for (Index i = 0; i < lap.rows(); ++i)
    for (Index j = 0; j < lap.cols(); ++j) dense(i, j) = lap.at(i, j);
  return dense;
}

TEST(Lanczos, PathGraphMatchesClosedForm) {
  const Index n = 40;
  const graph::Graph g = graph::make_path(n);
  const solver::LaplacianPinvSolver pinv(g);
  const EigenPairs pairs = smallest_laplacian_eigenpairs(pinv, 4);
  ASSERT_EQ(pairs.eigenvalues.size(), 4u);
  for (Index k = 1; k <= 4; ++k) {
    const Real expected =
        4.0 * std::pow(std::sin(static_cast<Real>(k) * M_PI / (2.0 * n)), 2);
    EXPECT_NEAR(pairs.eigenvalues[static_cast<std::size_t>(k - 1)], expected,
                1e-8);
  }
}

TEST(Lanczos, GridMatchesDenseEig) {
  const graph::Graph g = graph::make_grid2d(7, 6).graph;
  const solver::LaplacianPinvSolver pinv(g);
  const EigenPairs pairs = smallest_laplacian_eigenpairs(pinv, 6);

  const DenseEigResult dense = dense_symmetric_eig(laplacian_dense(g));
  // dense.eigenvalues[0] ≈ 0 (trivial); compare the next six.
  for (Index i = 0; i < 6; ++i)
    EXPECT_NEAR(pairs.eigenvalues[static_cast<std::size_t>(i)],
                dense.eigenvalues[static_cast<std::size_t>(i + 1)], 1e-8);
}

TEST(Lanczos, EigenvectorsResidualSmall) {
  const graph::Graph g = graph::make_grid2d(8, 5).graph;
  const solver::LaplacianPinvSolver pinv(g);
  const EigenPairs pairs = smallest_laplacian_eigenpairs(pinv, 5);
  const la::CsrMatrix lap = g.laplacian();
  for (Index j = 0; j < 5; ++j) {
    const la::Vector v = pairs.eigenvectors.col_vector(j);
    const la::Vector lv = lap.multiply(v);
    const Real lambda = pairs.eigenvalues[static_cast<std::size_t>(j)];
    for (Index i = 0; i < g.num_nodes(); ++i)
      EXPECT_NEAR(lv[static_cast<std::size_t>(i)],
                  lambda * v[static_cast<std::size_t>(i)], 1e-7);
  }
}

TEST(Lanczos, EigenvectorsOrthonormalAndCentered) {
  const graph::Graph g = graph::make_grid2d(6, 6).graph;
  const solver::LaplacianPinvSolver pinv(g);
  const EigenPairs pairs = smallest_laplacian_eigenpairs(pinv, 4);
  for (Index i = 0; i < 4; ++i) {
    const la::Vector vi = pairs.eigenvectors.col_vector(i);
    EXPECT_NEAR(la::mean(vi), 0.0, 1e-10);  // ⊥ 1
    for (Index j = i; j < 4; ++j) {
      const Real d = la::dot(vi, pairs.eigenvectors.col_vector(j));
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(Lanczos, CompleteGraphHasFlatSpectrum) {
  // K_n Laplacian: nontrivial eigenvalues all equal n.
  const Index n = 10;
  const graph::Graph g = graph::make_complete(n);
  const solver::LaplacianPinvSolver pinv(g);
  const EigenPairs pairs = smallest_laplacian_eigenpairs(pinv, 3);
  for (const Real lambda : pairs.eigenvalues)
    EXPECT_NEAR(lambda, static_cast<Real>(n), 1e-7);
}

TEST(Lanczos, WeightScalingScalesEigenvalues) {
  graph::Graph g = graph::make_grid2d(5, 5).graph;
  const solver::LaplacianPinvSolver pinv1(g);
  const Real lambda2 = smallest_laplacian_eigenpairs(pinv1, 1).eigenvalues[0];
  g.scale_weights(3.0);
  const solver::LaplacianPinvSolver pinv3(g);
  const Real lambda2_scaled =
      smallest_laplacian_eigenpairs(pinv3, 1).eigenvalues[0];
  EXPECT_NEAR(lambda2_scaled, 3.0 * lambda2, 1e-8);
}

class LanczosGraphSweep : public ::testing::TestWithParam<Index> {};

TEST_P(LanczosGraphSweep, CycleSpectrumMatchesClosedForm) {
  const Index n = GetParam();
  const graph::Graph g = graph::make_cycle(n);
  const solver::LaplacianPinvSolver pinv(g);
  const EigenPairs pairs = smallest_laplacian_eigenpairs(pinv, 2);
  // Cycle eigenvalues 2 − 2cos(2πk/n); λ2 = λ3 (double multiplicity).
  const Real expected = 2.0 - 2.0 * std::cos(2.0 * M_PI / n);
  EXPECT_NEAR(pairs.eigenvalues[0], expected, 1e-8);
  EXPECT_NEAR(pairs.eigenvalues[1], expected, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(CycleSizes, LanczosGraphSweep,
                         ::testing::Values(Index{8}, Index{16}, Index{33},
                                           Index{64}));

TEST(Lanczos, StarGraphExtremeDegeneracy) {
  // Star K_{1,9}: Laplacian spectrum is {0, 1 ×8, 10} — eigenvalue 1 has
  // multiplicity 8, so every Lanczos block collapses after ~2 steps and
  // the restart logic must assemble the copies.
  const Index n = 10;
  const graph::Graph g = graph::make_star(n);
  const solver::LaplacianPinvSolver pinv(g);
  LanczosOptions options;
  options.max_subspace = n - 1;
  const EigenPairs pairs = smallest_laplacian_eigenpairs(pinv, 6, options);
  for (Index i = 0; i < 6; ++i)
    EXPECT_NEAR(pairs.eigenvalues[static_cast<std::size_t>(i)], 1.0, 1e-8);
}

TEST(Lanczos, TorusDoubleEigenvaluesRecovered) {
  // A square torus has doubly degenerate low modes; the first four
  // nontrivial eigenvalues are two equal pairs.
  const graph::Graph g = graph::make_grid2d(6, 6, /*periodic=*/true).graph;
  const solver::LaplacianPinvSolver pinv(g);
  const EigenPairs pairs = smallest_laplacian_eigenpairs(pinv, 4);
  EXPECT_NEAR(pairs.eigenvalues[0], pairs.eigenvalues[1], 1e-7);
  EXPECT_NEAR(pairs.eigenvalues[2], pairs.eigenvalues[3], 1e-7);
  EXPECT_NEAR(pairs.eigenvalues[0], pairs.eigenvalues[2], 1e-7);
  EXPECT_NEAR(pairs.eigenvalues[0], 2.0 - 2.0 * std::cos(2.0 * M_PI / 6.0),
              1e-7);
}

TEST(Lanczos, PinvAgreesWithDensePseudoInverse) {
  // Cross-validate the full stack: Lanczos eigenpairs reconstruct L⁺
  // action like the dense eigendecomposition does.
  const graph::Graph g = graph::make_grid2d(5, 4).graph;
  const Index n = g.num_nodes();
  const solver::LaplacianPinvSolver pinv(g);
  const DenseEigResult dense = dense_symmetric_eig(laplacian_dense(g));

  Rng rng(4);
  la::Vector y(static_cast<std::size_t>(n));
  for (auto& v : y) v = rng.normal();
  la::center(y);
  const la::Vector via_solver = pinv.apply(y);
  la::Vector via_dense(static_cast<std::size_t>(n), 0.0);
  for (Index i = 1; i < n; ++i) {  // skip the zero eigenvalue
    const la::Vector u = dense.eigenvectors.col_vector(i);
    const Real coef = la::dot(u, y) / dense.eigenvalues[static_cast<std::size_t>(i)];
    la::axpy(coef, u, via_dense);
  }
  for (Index i = 0; i < n; ++i)
    EXPECT_NEAR(via_solver[static_cast<std::size_t>(i)],
                via_dense[static_cast<std::size_t>(i)], 1e-8);
}

TEST(Lanczos, FullSubspaceIsExact) {
  // With m_cap = n−1 the Krylov space spans the whole 1-perp subspace.
  const graph::Graph g = graph::make_path(10);
  const solver::LaplacianPinvSolver pinv(g);
  LanczosOptions options;
  options.max_subspace = 9;
  const EigenPairs pairs = smallest_laplacian_eigenpairs(pinv, 9, options);
  const DenseEigResult dense = dense_symmetric_eig(laplacian_dense(g));
  for (Index i = 0; i < 9; ++i)
    EXPECT_NEAR(pairs.eigenvalues[static_cast<std::size_t>(i)],
                dense.eigenvalues[static_cast<std::size_t>(i + 1)], 1e-9);
}

TEST(Lanczos, RejectsBadArguments) {
  const graph::Graph g = graph::make_path(5);
  const solver::LaplacianPinvSolver pinv(g);
  EXPECT_THROW(smallest_laplacian_eigenpairs(pinv, 0), ContractViolation);
  EXPECT_THROW(smallest_laplacian_eigenpairs(pinv, 5), ContractViolation);
}

TEST(Lanczos, DeterministicAcrossRuns) {
  const graph::Graph g = graph::make_grid2d(6, 5).graph;
  const solver::LaplacianPinvSolver pinv(g);
  const EigenPairs a = smallest_laplacian_eigenpairs(pinv, 3);
  const EigenPairs b = smallest_laplacian_eigenpairs(pinv, 3);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(a.eigenvalues[i], b.eigenvalues[i]);
}

TEST(Lanczos, BitIdenticalAcrossThreadCounts) {
  // The block kernels and batched applies are deterministic by contract:
  // eigenvalues AND eigenvectors must match bit for bit for every thread
  // count (the num_threads knob resolves exactly like SGL_NUM_THREADS).
  const graph::Graph g = graph::make_grid2d(9, 7).graph;
  const solver::LaplacianPinvSolver pinv(g);
  LanczosOptions serial;
  serial.num_threads = 1;
  const EigenPairs ref = smallest_laplacian_eigenpairs(pinv, 5, serial);
  for (const Index threads : {2, 4, 8}) {
    LanczosOptions opt;
    opt.num_threads = threads;
    const EigenPairs got = smallest_laplacian_eigenpairs(pinv, 5, opt);
    EXPECT_EQ(ref.lanczos_steps, got.lanczos_steps);
    EXPECT_EQ(ref.eigenvalues, got.eigenvalues) << "threads=" << threads;
    EXPECT_EQ(ref.eigenvectors.data(), got.eigenvectors.data())
        << "threads=" << threads;
  }
}

TEST(Lanczos, ConvergedReportedOnEasyProblem) {
  const graph::Graph g = graph::make_grid2d(6, 6).graph;
  const solver::LaplacianPinvSolver pinv(g);
  const EigenPairs pairs = smallest_laplacian_eigenpairs(pinv, 3);
  EXPECT_TRUE(pairs.converged);
  EXPECT_GT(pairs.lanczos_steps, 0);
}

TEST(Lanczos, UnconvergedReportedWhenSubspaceCapped) {
  // With the basis capped at exactly r vectors, one Rayleigh–Ritz step on
  // a mesh cannot reach the residual tolerance.
  const graph::Graph g = graph::make_grid2d(8, 8).graph;
  const solver::LaplacianPinvSolver pinv(g);
  LanczosOptions options;
  options.max_subspace = 3;
  const EigenPairs pairs = smallest_laplacian_eigenpairs(pinv, 3, options);
  EXPECT_FALSE(pairs.converged);
  EXPECT_EQ(pairs.eigenvalues.size(), 3u);
}

TEST(Lanczos, RequireConvergedThrowsNumericalError) {
  const graph::Graph g = graph::make_grid2d(8, 8).graph;
  const solver::LaplacianPinvSolver pinv(g);
  LanczosOptions options;
  options.max_subspace = 3;
  EXPECT_THROW(
      (void)smallest_laplacian_eigenpairs(pinv, 3, options,
                                          /*require_converged=*/true),
      NumericalError);
}

TEST(Lanczos, TorusMultiplicityEightRecovered) {
  // The periodic 20×20 mesh has a multiplicity-8 eigenvalue group inside
  // its first 20 nontrivial eigenvalues. A per-vector Krylov space cannot
  // see all copies structurally — the historical implementation silently
  // dropped three of them while reporting convergence; the block solver
  // with random-restart rank repair must recover every copy.
  const graph::Graph g = graph::make_grid2d(20, 20, /*periodic=*/true).graph;
  const solver::LaplacianPinvSolver pinv(g);
  const EigenPairs pairs = smallest_laplacian_eigenpairs(pinv, 20);
  // Mode (±1, ±2) and (±2, ±1): λ = (2 − 2cos(2π/20)) + (2 − 2cos(4π/20)).
  const Real lambda = 4.0 - 2.0 * std::cos(2.0 * M_PI * 1.0 / 20.0) -
                      2.0 * std::cos(2.0 * M_PI * 2.0 / 20.0);
  Index copies = 0;
  for (const Real l : pairs.eigenvalues)
    if (std::abs(l - lambda) < 1e-8) ++copies;
  EXPECT_EQ(copies, 8);
}

TEST(Lanczos, BlockSizeOneStillConverges) {
  // Explicit single-vector blocks exercise the restart path on a graph
  // with distinct eigenvalues.
  const graph::Graph g = graph::make_path(30);
  const solver::LaplacianPinvSolver pinv(g);
  LanczosOptions options;
  options.block_size = 1;
  const EigenPairs pairs = smallest_laplacian_eigenpairs(pinv, 3, options);
  for (Index k = 1; k <= 3; ++k) {
    const Real expected =
        4.0 * std::pow(std::sin(static_cast<Real>(k) * M_PI / 60.0), 2);
    EXPECT_NEAR(pairs.eigenvalues[static_cast<std::size_t>(k - 1)], expected,
                1e-8);
  }
}

TEST(Lanczos, LargeBlockClampedBySubspaceCap) {
  const graph::Graph g = graph::make_grid2d(5, 4).graph;
  const solver::LaplacianPinvSolver pinv(g);
  LanczosOptions options;
  options.block_size = 64;  // far above the cap; must clamp, not throw
  options.max_subspace = 10;
  const EigenPairs pairs = smallest_laplacian_eigenpairs(pinv, 4, options);
  EXPECT_EQ(pairs.eigenvalues.size(), 4u);
  EXPECT_LE(pairs.lanczos_steps, 10);
}

TEST(Lanczos, SubspaceCapHelpersSharedPolicy) {
  // b = 1 reproduces the classical single-vector default exactly.
  EXPECT_EQ(default_subspace_cap(1000, 4, 1), 40);
  EXPECT_EQ(default_subspace_cap(1000, 20, 1), 76);
  // Block defaults widen the cap by (b−1)·8.
  EXPECT_EQ(default_subspace_cap(1000, 4), 40 + 3 * 8);
  // Always clamped by the 1-perp dimension.
  EXPECT_EQ(default_subspace_cap(10, 4), 9);
  EXPECT_EQ(spectrum_subspace_cap(1000, 50, 1), 140);
  EXPECT_EQ(spectrum_subspace_cap(10, 5), 9);
}

TEST(Lanczos, WarmStartFromConvergedEigenvectorsConvergesInFewSteps) {
  // Seeding the start block with the converged eigenvectors puts the
  // whole target subspace into the basis before the first expansion, so
  // a relaxed-tolerance rerun stops almost immediately — the warm-start
  // contract the incremental learner relies on (DESIGN.md §8).
  const graph::Graph g = graph::make_grid2d(9, 8).graph;
  const solver::LaplacianPinvSolver pinv(g);
  const EigenPairs cold = smallest_laplacian_eigenpairs(pinv, 4);
  ASSERT_TRUE(cold.converged);

  LanczosOptions warm_options;
  warm_options.tolerance = 1e-6;
  warm_options.initial_block = la::view_of(cold.eigenvectors);
  const EigenPairs warm = smallest_laplacian_eigenpairs(pinv, 4, warm_options);
  EXPECT_TRUE(warm.converged);
  EXPECT_LT(warm.lanczos_steps, cold.lanczos_steps);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(warm.eigenvalues[i], cold.eigenvalues[i],
                1e-6 * (1.0 + std::abs(cold.eigenvalues[i])));
}

TEST(Lanczos, NullInitialBlockReproducesDefaultRunBitwise) {
  // A default (null) initial_block is not a semantic knob: the run must
  // be THE standard run, float for float.
  const graph::Graph g = graph::make_grid2d(6, 7).graph;
  const solver::LaplacianPinvSolver pinv(g);
  const EigenPairs a = smallest_laplacian_eigenpairs(pinv, 3);
  LanczosOptions options;
  options.initial_block = la::ConstBlockView{};
  const EigenPairs b = smallest_laplacian_eigenpairs(pinv, 3, options);
  ASSERT_EQ(a.eigenvalues.size(), b.eigenvalues.size());
  for (std::size_t i = 0; i < a.eigenvalues.size(); ++i)
    EXPECT_EQ(a.eigenvalues[i], b.eigenvalues[i]);
  for (Index j = 0; j < 3; ++j)
    for (Index i = 0; i < g.num_nodes(); ++i)
      EXPECT_EQ(a.eigenvectors(i, j), b.eigenvectors(i, j));
}

}  // namespace
}  // namespace sgl::eig
