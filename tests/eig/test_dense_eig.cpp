// Unit tests for the dense symmetric eigensolver.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "eig/dense_eig.hpp"
#include "graph/generators.hpp"

namespace sgl::eig {
namespace {

la::DenseMatrix random_symmetric(Index n, std::uint64_t seed) {
  Rng rng(seed);
  la::DenseMatrix a(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j <= i; ++j) {
      const Real v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  return a;
}

TEST(DenseEig, DiagonalMatrixEigenvaluesSorted) {
  la::DenseMatrix a(3, 3);
  a(0, 0) = 5.0;
  a(1, 1) = -1.0;
  a(2, 2) = 2.0;
  const DenseEigResult r = dense_symmetric_eig(a);
  EXPECT_NEAR(r.eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[2], 5.0, 1e-12);
}

TEST(DenseEig, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  la::DenseMatrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0; a(1, 0) = 1.0; a(1, 1) = 2.0;
  const DenseEigResult r = dense_symmetric_eig(a);
  EXPECT_NEAR(r.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 3.0, 1e-12);
}

TEST(DenseEig, SingleElement) {
  la::DenseMatrix a(1, 1);
  a(0, 0) = 7.0;
  const DenseEigResult r = dense_symmetric_eig(a);
  EXPECT_NEAR(r.eigenvalues[0], 7.0, 1e-14);
  EXPECT_NEAR(r.eigenvectors(0, 0), 1.0, 1e-14);
}

class DenseEigSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DenseEigSweep, ResidualsAndOrthonormality) {
  const Index n = 25;
  const la::DenseMatrix a = random_symmetric(n, GetParam());
  const DenseEigResult r = dense_symmetric_eig(a);

  // A v = λ v for every pair.
  for (Index j = 0; j < n; ++j) {
    const la::Vector v = r.eigenvectors.col_vector(j);
    const la::Vector av = a.multiply(v);
    for (Index i = 0; i < n; ++i)
      EXPECT_NEAR(av[static_cast<std::size_t>(i)],
                  r.eigenvalues[static_cast<std::size_t>(j)] *
                      v[static_cast<std::size_t>(i)],
                  1e-8);
  }
  // Ascending eigenvalues.
  for (Index j = 1; j < n; ++j)
    EXPECT_LE(r.eigenvalues[static_cast<std::size_t>(j - 1)],
              r.eigenvalues[static_cast<std::size_t>(j)] + 1e-12);
  // Orthonormal columns.
  for (Index i = 0; i < n; ++i)
    for (Index j = i; j < n; ++j) {
      const Real d = la::dot(r.eigenvectors.col_vector(i),
                             r.eigenvectors.col_vector(j));
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseEigSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

TEST(DenseEig, TraceAndDeterminantInvariants) {
  const la::DenseMatrix a = random_symmetric(10, 42);
  const DenseEigResult r = dense_symmetric_eig(a);
  Real trace = 0.0;
  for (Index i = 0; i < 10; ++i) trace += a(i, i);
  Real eig_sum = 0.0;
  for (const Real v : r.eigenvalues) eig_sum += v;
  EXPECT_NEAR(trace, eig_sum, 1e-9);
}

TEST(DenseEig, PathLaplacianMatchesClosedForm) {
  // Path Laplacian eigenvalues: 4 sin²(kπ / (2n)), k = 0..n−1.
  const Index n = 12;
  const graph::Graph g = graph::make_path(n);
  const la::CsrMatrix lap = g.laplacian();
  la::DenseMatrix dense(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j) dense(i, j) = lap.at(i, j);
  const DenseEigResult r = dense_symmetric_eig(dense);
  for (Index k = 0; k < n; ++k) {
    const Real expected =
        4.0 * std::pow(std::sin(static_cast<Real>(k) * M_PI / (2.0 * n)), 2);
    EXPECT_NEAR(r.eigenvalues[static_cast<std::size_t>(k)], expected, 1e-9);
  }
}

TEST(TridiagonalEig, MatchesDensePath) {
  // Tridiagonal [2, −1] chain = grounded path Laplacian-like matrix.
  const Index n = 9;
  la::Vector d(static_cast<std::size_t>(n), 2.0);
  la::Vector e(static_cast<std::size_t>(n) - 1, -1.0);
  const DenseEigResult r = tridiagonal_eig(d, e);
  // Eigenvalues of the (2, −1) tridiagonal: 2 − 2cos(kπ/(n+1)), k = 1..n.
  for (Index k = 1; k <= n; ++k) {
    const Real expected =
        2.0 - 2.0 * std::cos(static_cast<Real>(k) * M_PI / (n + 1));
    EXPECT_NEAR(r.eigenvalues[static_cast<std::size_t>(k - 1)], expected, 1e-9);
  }
  // Residual check with vectors.
  for (Index j = 0; j < n; ++j) {
    const la::Vector v = r.eigenvectors.col_vector(j);
    for (Index i = 0; i < n; ++i) {
      Real av = 2.0 * v[static_cast<std::size_t>(i)];
      if (i > 0) av -= v[static_cast<std::size_t>(i - 1)];
      if (i + 1 < n) av -= v[static_cast<std::size_t>(i + 1)];
      EXPECT_NEAR(av,
                  r.eigenvalues[static_cast<std::size_t>(j)] *
                      v[static_cast<std::size_t>(i)],
                  1e-9);
    }
  }
}

TEST(TridiagonalEig, ValuesOnlyModeSkipsVectors) {
  la::Vector d{1.0, 2.0, 3.0};
  la::Vector e{0.0, 0.0};
  const DenseEigResult r = tridiagonal_eig(d, e, /*want_vectors=*/false);
  EXPECT_TRUE(r.eigenvectors.empty());
  EXPECT_NEAR(r.eigenvalues[2], 3.0, 1e-12);
}

TEST(DenseEig, NonSquareThrows) {
  EXPECT_THROW(dense_symmetric_eig(la::DenseMatrix(2, 3)), ContractViolation);
}

TEST(TridiagonalEig, SizeMismatchThrows) {
  EXPECT_THROW(tridiagonal_eig({1.0, 2.0}, {0.0, 0.0}), ContractViolation);
}

}  // namespace
}  // namespace sgl::eig
