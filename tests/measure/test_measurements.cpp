// Unit tests for measurement generation, noise, and subsampling.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "measure/measurements.hpp"

namespace sgl::measure {
namespace {

TEST(Measurements, CurrentsAreCenteredAndUnitNorm) {
  const graph::Graph g = graph::make_grid2d(8, 8).graph;
  MeasurementOptions options;
  options.num_measurements = 12;
  const Measurements m = generate_measurements(g, options);
  ASSERT_EQ(m.currents.cols(), 12);
  for (Index i = 0; i < 12; ++i) {
    const la::Vector y = m.currents.col_vector(i);
    EXPECT_NEAR(la::mean(y), 0.0, 1e-12);
    EXPECT_NEAR(la::norm2(y), 1.0, 1e-12);
  }
}

TEST(Measurements, VoltagesSolveTheLaplacian) {
  const graph::Graph g = graph::make_grid2d(7, 6).graph;
  MeasurementOptions options;
  options.num_measurements = 5;
  const Measurements m = generate_measurements(g, options);
  const la::CsrMatrix lap = g.laplacian();
  for (Index i = 0; i < 5; ++i) {
    const la::Vector lx = lap.multiply(m.voltages.col_vector(i));
    const la::Vector y = m.currents.col_vector(i);
    for (std::size_t j = 0; j < y.size(); ++j) EXPECT_NEAR(lx[j], y[j], 1e-9);
  }
}

TEST(Measurements, ThreadedGenerationMatchesSerialBitForBit) {
  // Currents are drawn serially from the seeded RNG; the voltage solves
  // are per-column and independent, so any thread count must reproduce
  // the serial measurements exactly.
  const graph::Graph g = graph::make_grid2d(7, 7).graph;
  MeasurementOptions serial_options;
  serial_options.num_measurements = 24;
  serial_options.num_threads = 1;
  const Measurements serial = generate_measurements(g, serial_options);
  for (const Index threads : {2, 4, 8}) {
    MeasurementOptions options = serial_options;
    options.num_threads = threads;
    const Measurements parallel = generate_measurements(g, options);
    EXPECT_EQ(parallel.currents.data(), serial.currents.data())
        << "threads=" << threads;
    EXPECT_EQ(parallel.voltages.data(), serial.voltages.data())
        << "threads=" << threads;
  }
}

TEST(Measurements, DeterministicPerSeed) {
  const graph::Graph g = graph::make_grid2d(5, 5).graph;
  MeasurementOptions options;
  options.num_measurements = 3;
  options.seed = 77;
  const Measurements a = generate_measurements(g, options);
  const Measurements b = generate_measurements(g, options);
  EXPECT_EQ(a.voltages.data(), b.voltages.data());
  options.seed = 78;
  const Measurements c = generate_measurements(g, options);
  EXPECT_NE(a.voltages.data(), c.voltages.data());
}

TEST(Measurements, NoiseMagnitudeMatchesZeta) {
  const graph::Graph g = graph::make_grid2d(10, 10).graph;
  MeasurementOptions options;
  options.num_measurements = 20;
  const Measurements clean = generate_measurements(g, options);
  la::DenseMatrix noisy = clean.voltages;
  const Real zeta = 0.25;
  add_noise(noisy, zeta, 5);
  for (Index i = 0; i < 20; ++i) {
    la::Vector diff = noisy.col_vector(i);
    const la::Vector orig = clean.voltages.col_vector(i);
    la::axpy(-1.0, orig, diff);
    // ‖x̃ − x‖ = ζ‖x‖ exactly (ε has unit norm).
    EXPECT_NEAR(la::norm2(diff), zeta * la::norm2(orig), 1e-10);
  }
}

TEST(Measurements, ZeroNoiseIsIdentity) {
  const graph::Graph g = graph::make_grid2d(4, 4).graph;
  const Measurements m = generate_measurements(g);
  la::DenseMatrix noisy = m.voltages;
  add_noise(noisy, 0.0, 1);
  EXPECT_EQ(noisy.data(), m.voltages.data());
}

TEST(Measurements, NegativeNoiseThrows) {
  la::DenseMatrix x(3, 2);
  EXPECT_THROW(add_noise(x, -0.1, 1), ContractViolation);
}

TEST(Measurements, SampleNodesSortedUniqueInRange) {
  const auto s = sample_nodes(100, 30, 9);
  EXPECT_EQ(s.size(), 30u);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1], s[i]);
  EXPECT_GE(s.front(), 0);
  EXPECT_LT(s.back(), 100);
}

TEST(Measurements, SampleNodesFullSubsetIsIdentityRange) {
  const auto s = sample_nodes(5, 5, 3);
  EXPECT_EQ(s, (std::vector<Index>{0, 1, 2, 3, 4}));
}

TEST(Measurements, TakeRowsExtractsSubmatrix) {
  la::DenseMatrix x(4, 2);
  for (Index i = 0; i < 4; ++i)
    for (Index j = 0; j < 2; ++j) x(i, j) = static_cast<Real>(10 * i + j);
  const la::DenseMatrix sub = take_rows(x, {1, 3});
  EXPECT_EQ(sub.rows(), 2);
  EXPECT_DOUBLE_EQ(sub(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(sub(0, 1), 11.0);
  EXPECT_DOUBLE_EQ(sub(1, 0), 30.0);
  EXPECT_DOUBLE_EQ(sub(1, 1), 31.0);
}

TEST(Measurements, TakeRowsOutOfRangeThrows) {
  const la::DenseMatrix x(3, 1);
  EXPECT_THROW(take_rows(x, {5}), ContractViolation);
}

TEST(Measurements, Contracts) {
  const graph::Graph g = graph::make_grid2d(4, 4).graph;
  MeasurementOptions options;
  options.num_measurements = 0;
  EXPECT_THROW(generate_measurements(g, options), ContractViolation);
  EXPECT_THROW(sample_nodes(10, 0, 1), ContractViolation);
  EXPECT_THROW(sample_nodes(10, 11, 1), ContractViolation);
}

}  // namespace
}  // namespace sgl::measure
