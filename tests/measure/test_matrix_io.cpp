// Unit tests for dense MatrixMarket array I/O.
#include <gtest/gtest.h>

#include <fstream>

#include "common/rng.hpp"
#include "measure/matrix_io.hpp"

namespace sgl::measure {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(MatrixIo, RoundTripPreservesValues) {
  Rng rng(1);
  la::DenseMatrix m(7, 4);
  for (Index j = 0; j < 4; ++j)
    for (Index i = 0; i < 7; ++i) m(i, j) = rng.normal();

  const std::string path = temp_path("dense_roundtrip.mtx");
  write_dense_matrix_market(m, path);
  const la::DenseMatrix loaded = read_dense_matrix_market(path);
  ASSERT_EQ(loaded.rows(), 7);
  ASSERT_EQ(loaded.cols(), 4);
  for (Index j = 0; j < 4; ++j)
    for (Index i = 0; i < 7; ++i) EXPECT_DOUBLE_EQ(loaded(i, j), m(i, j));
}

TEST(MatrixIo, ColumnMajorOrderOnDisk) {
  la::DenseMatrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 0) = 2.0;
  m(0, 1) = 3.0;
  m(1, 1) = 4.0;
  const std::string path = temp_path("dense_order.mtx");
  write_dense_matrix_market(m, path);

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // banner
  std::getline(in, line);  // comment
  std::getline(in, line);  // size
  la::Vector values;
  Real v;
  while (in >> v) values.push_back(v);
  EXPECT_EQ(values, (la::Vector{1.0, 2.0, 3.0, 4.0}));
}

TEST(MatrixIo, RejectsCoordinateFormat) {
  const std::string path = temp_path("coord.mtx");
  std::ofstream out(path);
  out << "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 5.0\n";
  out.close();
  EXPECT_THROW((void)read_dense_matrix_market(path), ContractViolation);
}

TEST(MatrixIo, RejectsTruncatedData) {
  const std::string path = temp_path("short.mtx");
  std::ofstream out(path);
  out << "%%MatrixMarket matrix array real general\n3 2\n1.0\n2.0\n";
  out.close();
  EXPECT_THROW((void)read_dense_matrix_market(path), ContractViolation);
}

TEST(MatrixIo, MissingFileThrows) {
  EXPECT_THROW((void)read_dense_matrix_market(temp_path("nope.mtx")),
               ContractViolation);
}

}  // namespace
}  // namespace sgl::measure
