// Unit tests for the JL effective-resistance sketch (paper §II-D).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "measure/resistance_sketch.hpp"

namespace sgl::measure {
namespace {

TEST(ResistanceSketch, AutoProjectionCountFollowsFormula) {
  const graph::Graph g = graph::make_grid2d(10, 10).graph;
  SketchOptions options;
  options.epsilon = 0.5;
  const ResistanceSketch sketch(g, options);
  const Index expected = static_cast<Index>(
      std::ceil(24.0 * std::log(100.0) / 0.25));
  EXPECT_EQ(sketch.num_projections(), expected);
}

TEST(ResistanceSketch, ExplicitProjectionCountWins) {
  const graph::Graph g = graph::make_grid2d(6, 6).graph;
  SketchOptions options;
  options.num_projections = 17;
  const ResistanceSketch sketch(g, options);
  EXPECT_EQ(sketch.num_projections(), 17);
}

class SketchAccuracySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SketchAccuracySweep, EstimatesWithinJlBand) {
  // With M = 24 ln N / ε² projections the JL guarantee is (1±ε) w.h.p.;
  // we allow 1.5ε slack to keep the test robust across seeds.
  const graph::Graph g = graph::make_grid2d(9, 9).graph;
  const solver::LaplacianPinvSolver exact(g);
  SketchOptions options;
  options.epsilon = 0.3;
  options.seed = GetParam();
  const ResistanceSketch sketch(g, options);
  for (const auto& [s, t] : std::vector<std::pair<Index, Index>>{
           {0, 1}, {0, 80}, {12, 61}, {40, 41}, {5, 75}}) {
    const Real truth = exact.effective_resistance(s, t);
    const Real est = sketch.estimate(s, t);
    EXPECT_GE(est, (1.0 - 0.45) * truth) << s << "," << t;
    EXPECT_LE(est, (1.0 + 0.45) * truth) << s << "," << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SketchAccuracySweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull));

TEST(ResistanceSketch, MoreProjectionsTightenTheEstimate) {
  const graph::Graph g = graph::make_grid2d(8, 8).graph;
  const solver::LaplacianPinvSolver exact(g);
  const Real truth = exact.effective_resistance(0, 63);

  Real err_small = 0.0;
  Real err_large = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SketchOptions small;
    small.num_projections = 10;
    small.seed = seed;
    SketchOptions large;
    large.num_projections = 400;
    large.seed = seed;
    err_small += std::abs(ResistanceSketch(g, small).estimate(0, 63) - truth);
    err_large += std::abs(ResistanceSketch(g, large).estimate(0, 63) - truth);
  }
  EXPECT_LT(err_large, err_small);
}

TEST(ResistanceSketch, SketchMeasurementsSatisfyLaplacian) {
  const graph::Graph g = graph::make_grid2d(6, 5).graph;
  SketchOptions options;
  options.num_projections = 9;
  const Measurements m = sketch_measurements(g, options);
  EXPECT_EQ(m.voltages.cols(), 9);
  const la::CsrMatrix lap = g.laplacian();
  for (Index i = 0; i < 9; ++i) {
    const la::Vector lx = lap.multiply(m.voltages.col_vector(i));
    const la::Vector y = m.currents.col_vector(i);
    for (std::size_t j = 0; j < y.size(); ++j) EXPECT_NEAR(lx[j], y[j], 1e-9);
  }
}

TEST(ResistanceSketch, CurrentsAreCentered) {
  const graph::Graph g = graph::make_cycle(10);
  SketchOptions options;
  options.num_projections = 6;
  const Measurements m = sketch_measurements(g, options);
  for (Index i = 0; i < 6; ++i)
    EXPECT_NEAR(la::mean(m.currents.col_vector(i)), 0.0, 1e-12);
}

TEST(ResistanceSketch, Contracts) {
  const graph::Graph g = graph::make_path(5);
  SketchOptions bad;
  bad.epsilon = 1.5;
  EXPECT_THROW(ResistanceSketch(g, bad), ContractViolation);
  SketchOptions four;
  four.num_projections = 4;
  const ResistanceSketch sketch(g, four);
  EXPECT_THROW((void)sketch.estimate(0, 0), ContractViolation);
  EXPECT_THROW((void)sketch.estimate(0, 10), ContractViolation);
}

}  // namespace
}  // namespace sgl::measure
