// Unit tests for the parallel execution primitives (thread pool,
// parallel_for/parallel_for_slots, deterministic chunked reduction).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/mutex.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace sgl::parallel {
namespace {

TEST(Parallel, DefaultThreadCountIsWithinBounds) {
  EXPECT_GE(default_num_threads(), 1);
  EXPECT_LE(default_num_threads(), kMaxThreads);
}

TEST(Parallel, ResolveSemantics) {
  EXPECT_EQ(resolve_num_threads(0), default_num_threads());
  EXPECT_EQ(resolve_num_threads(-3), default_num_threads());
  EXPECT_EQ(resolve_num_threads(1), 1);
  EXPECT_EQ(resolve_num_threads(5), 5);
  EXPECT_EQ(resolve_num_threads(kMaxThreads + 100), kMaxThreads);
}

TEST(Parallel, ForVisitsEveryIndexExactlyOnce) {
  constexpr Index n = 20000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, 4, [&](Index i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (Index i = 0; i < n; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
}

TEST(Parallel, ForHonorsNonZeroBegin) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(40, 100, 3, [&](Index i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (Index i = 0; i < 100; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), i >= 40 ? 1 : 0);
}

TEST(Parallel, EmptyAndReversedRangesAreNoops) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, 4, [&](Index) { calls.fetch_add(1); });
  parallel_for(7, 3, 4, [&](Index) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Parallel, SlotsStayBelowThreadCount) {
  constexpr Index threads = 4;
  std::atomic<bool> out_of_range{false};
  std::vector<std::atomic<int>> hits(5000);
  parallel_for_slots(0, 5000, threads, [&](Index lo, Index hi, Index slot) {
    if (slot < 0 || slot >= threads) out_of_range.store(true);
    for (Index i = lo; i < hi; ++i)
      hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_FALSE(out_of_range.load());
  for (Index i = 0; i < 5000; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(Parallel, ReduceSumMatchesSerialBitForBit) {
  // The chunk layout depends only on the range size, so every thread count
  // must produce the exact same floating-point sum.
  Rng rng(123);
  std::vector<Real> values(10007);
  for (Real& v : values) v = rng.normal();
  const auto sum_with = [&](Index threads) {
    return parallel_reduce(
        0, to_index(values.size()), threads, Real{0.0},
        [&](Index lo, Index hi) {
          Real acc = 0.0;
          for (Index i = lo; i < hi; ++i)
            acc += values[static_cast<std::size_t>(i)];
          return acc;
        },
        [](Real a, Real b) { return a + b; });
  };
  const Real serial = sum_with(1);
  for (const Index threads : {2, 3, 4, 8, 16}) {
    EXPECT_EQ(sum_with(threads), serial) << "threads=" << threads;
  }
}

TEST(Parallel, ReduceMaxMatchesSerialScan) {
  Rng rng(7);
  std::vector<Real> values(513);
  for (Real& v : values) v = rng.uniform(-10.0, 10.0);
  Real expected = values[0];
  for (const Real v : values) expected = std::max(expected, v);
  const Real got = parallel_reduce(
      0, to_index(values.size()), 4, -1e300,
      [&](Index lo, Index hi) {
        Real local = -1e300;
        for (Index i = lo; i < hi; ++i)
          local = std::max(local, values[static_cast<std::size_t>(i)]);
        return local;
      },
      [](Real a, Real b) { return std::max(a, b); });
  EXPECT_EQ(got, expected);
}

TEST(Parallel, ReduceTinyRangeUsesOneElementChunks) {
  // n < kReduceChunks: every element is its own chunk; combine order is
  // the element order.
  std::vector<int> order;
  const int total = parallel_reduce(
      0, 5, 1, 0,
      [&](Index lo, Index hi) {
        EXPECT_EQ(hi, lo + 1);
        return static_cast<int>(lo);
      },
      [&order](int a, int b) {
        order.push_back(b);
        return a + b;
      });
  EXPECT_EQ(total, 0 + 1 + 2 + 3 + 4);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Parallel, ExceptionsPropagateToCaller) {
  EXPECT_THROW(
      parallel_for(0, 1000, 4,
                   [](Index i) {
                     if (i == 713) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(Parallel, ExceptionOnCallerSlotPropagates) {
  // Slot 0 runs on the calling thread; its exception must also surface
  // after the workers drain. Exercised via run_on_pool directly: in
  // parallel_for_slots the chunks are handed out dynamically, so pool
  // workers can legitimately consume every chunk before the calling
  // thread fetches one — throwing on "slot == 0" there was a flaky
  // no-op whenever the caller lost that race.
  EXPECT_THROW(detail::run_on_pool(4,
                                   [](Index slot) {
                                     if (slot == 0)
                                       throw std::runtime_error("caller");
                                   }),
               std::runtime_error);
}

TEST(Parallel, NestedRegionsFallBackToSerial) {
  // A parallel_for inside a pool worker must not deadlock; it degrades to
  // a serial loop on that worker.
  constexpr Index outer = 16;
  constexpr Index inner = 64;
  std::vector<std::atomic<int>> hits(outer * inner);
  parallel_for(0, outer, 4, [&](Index o) {
    parallel_for(0, inner, 4, [&](Index i) {
      hits[static_cast<std::size_t>(o * inner + i)].fetch_add(
          1, std::memory_order_relaxed);
    });
  });
  for (Index i = 0; i < outer * inner; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(Mutex, GuardedCounterIsExactUnderContention) {
  // The annotated Mutex/MutexLock wrappers (common/mutex.hpp) must
  // provide real mutual exclusion, not just satisfy the static analysis:
  // a plain int incremented under the lock from many workers ends up
  // exact. TSan verifies the absence-of-race half of this contract.
  common::Mutex mutex;
  int counter = 0;  // guarded by `mutex` (local, so no GUARDED_BY)
  constexpr Index n = 20000;
  parallel_for(0, n, 8, [&](Index) {
    const common::MutexLock lock(mutex);
    ++counter;
  });
  EXPECT_EQ(counter, n);
}

TEST(Mutex, TryLockReportsContention) {
  // Written with explicit branches on every try_lock so the clang
  // thread-safety analysis can track the conditional acquisition.
  common::Mutex mutex;
  if (!mutex.try_lock()) {
    ADD_FAILURE() << "uncontended try_lock must succeed";
    return;
  }
  // Same-thread try_lock on a held std::mutex is UB, so probe from a
  // pool worker instead: it must see the mutex held.
  bool acquired_elsewhere = false;
  detail::run_on_pool(2, [&](Index slot) {
    if (slot == 1) {
      if (mutex.try_lock()) {
        acquired_elsewhere = true;
        mutex.unlock();
      }
    }
  });
  EXPECT_FALSE(acquired_elsewhere);
  mutex.unlock();
}

TEST(Parallel, ManyConsecutiveRegionsReuseThePool) {
  // Regression guard for pool lifecycle bugs (stuck workers, lost wakeups).
  for (int round = 0; round < 200; ++round) {
    std::atomic<Index> sum{0};
    parallel_for(0, 64, 4,
                 [&](Index i) { sum.fetch_add(i, std::memory_order_relaxed); });
    ASSERT_EQ(sum.load(), 64 * 63 / 2);
  }
}

}  // namespace
}  // namespace sgl::parallel
