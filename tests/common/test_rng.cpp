// Unit tests for the deterministic RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace sgl {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(123);
  Rng b(124);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const Real u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const Real u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  Real acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(13);
  std::vector<int> count(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++count[static_cast<std::size_t>(rng.uniform_int(10))];
  for (const int c : count) EXPECT_NEAR(c, n / 10, 600);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  const int n = 200000;
  Real mean = 0.0;
  Real var = 0.0;
  std::vector<Real> xs(n);
  for (auto& x : xs) x = rng.normal();
  for (const Real x : xs) mean += x;
  mean /= n;
  for (const Real x : xs) var += (x - mean) * (x - mean);
  var /= n;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, RademacherIsBalanced) {
  Rng rng(19);
  int plus = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) plus += (rng.rademacher() > 0.0);
  EXPECT_NEAR(plus, n / 2, 800);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(23);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (child1() == child2());
  EXPECT_LT(equal, 5);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  shuffle(v, rng);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(*s.begin(), 0);
  EXPECT_EQ(*s.rbegin(), 99);
}

TEST(Rng, ShuffleDeterministicPerSeed) {
  std::vector<int> a(50), b(50);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  Rng r1(31), r2(31);
  shuffle(a, r1);
  shuffle(b, r2);
  EXPECT_EQ(a, b);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformIndexStaysInRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
    EXPECT_LT(rng.uniform_int(5), 5);
    EXPECT_GE(rng.uniform_int(5), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 1234567ull,
                                           ~0ull));

}  // namespace
}  // namespace sgl
