// Unit tests for contract macros and the typed error surface.
#include <gtest/gtest.h>

#include <string>

#include "common/contracts.hpp"

namespace sgl {
namespace {

TEST(Contracts, ExpectsPassesOnTrue) {
  EXPECT_NO_THROW(SGL_EXPECTS(1 + 1 == 2, "arithmetic"));
}

TEST(Contracts, ExpectsThrowsOnFalse) {
  EXPECT_THROW(SGL_EXPECTS(false, "must fail"), ContractViolation);
}

TEST(Contracts, EnsuresThrowsOnFalse) {
  EXPECT_THROW(SGL_ENSURES(false, "post"), ContractViolation);
}

TEST(Contracts, MessageContainsExpressionAndNote) {
  try {
    SGL_EXPECTS(2 < 1, "two is not less than one");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Contracts, ContractViolationCarriesInvalidArgumentCode) {
  // Every library exception is an SglError with a stable code; boundary
  // layers catch the base and branch on code(), never on what() text.
  try {
    SGL_EXPECTS(false, "x");
    FAIL() << "expected throw";
  } catch (const SglError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
    EXPECT_STREQ(e.status().code_name(), "invalid-argument");
  }
}

TEST(Contracts, NumericalErrorIsRuntimeError) {
  try {
    throw NumericalError("pivot failure");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "pivot failure");
  }
}

TEST(Contracts, NumericalErrorDefaultsToNumericalBreakdown) {
  const NumericalError e("ad-hoc breakdown");
  EXPECT_EQ(e.code(), ErrorCode::kNumericalBreakdown);
}

TEST(Contracts, ExplicitCodesRoundTripThroughStatus) {
  const NumericalError e("stalled", ErrorCode::kPcgStalled);
  const Status s = e.status();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code, ErrorCode::kPcgStalled);
  EXPECT_EQ(s.message, "stalled");
  EXPECT_STREQ(s.code_name(), "pcg-stalled");
}

TEST(Contracts, ErrorCodeNamesAreStableWireIdentifiers) {
  EXPECT_STREQ(error_code_name(ErrorCode::kOk), "ok");
  EXPECT_STREQ(error_code_name(ErrorCode::kBadRequest), "bad-request");
  EXPECT_STREQ(error_code_name(ErrorCode::kNoActiveGraph), "no-active-graph");
  EXPECT_STREQ(error_code_name(ErrorCode::kGraphNotConnected),
               "graph-not-connected");
  EXPECT_STREQ(error_code_name(ErrorCode::kNonPositivePivot),
               "non-positive-pivot");
  EXPECT_STREQ(error_code_name(ErrorCode::kEigNotConverged),
               "eig-not-converged");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "internal");
}

TEST(Contracts, StatusDefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_STREQ(s.code_name(), "ok");
}

}  // namespace
}  // namespace sgl
