// Unit tests for contract macros and error types.
#include <gtest/gtest.h>

#include <string>

#include "common/contracts.hpp"

namespace sgl {
namespace {

TEST(Contracts, ExpectsPassesOnTrue) {
  EXPECT_NO_THROW(SGL_EXPECTS(1 + 1 == 2, "arithmetic"));
}

TEST(Contracts, ExpectsThrowsOnFalse) {
  EXPECT_THROW(SGL_EXPECTS(false, "must fail"), ContractViolation);
}

TEST(Contracts, EnsuresThrowsOnFalse) {
  EXPECT_THROW(SGL_ENSURES(false, "post"), ContractViolation);
}

TEST(Contracts, MessageContainsExpressionAndNote) {
  try {
    SGL_EXPECTS(2 < 1, "two is not less than one");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Contracts, ContractViolationIsInvalidArgument) {
  try {
    SGL_EXPECTS(false, "x");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument&) {
    SUCCEED();
  }
}

TEST(Contracts, NumericalErrorIsRuntimeError) {
  try {
    throw NumericalError("pivot failure");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "pivot failure");
  }
}

}  // namespace
}  // namespace sgl
