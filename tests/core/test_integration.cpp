// End-to-end integration tests: the full measurement → SGL → evaluation
// pipeline on each experiment family the paper uses, at reduced scale.
#include <gtest/gtest.h>

#include "baseline/knn_baseline.hpp"
#include "core/sgl.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "measure/measurements.hpp"
#include "spectral/metrics.hpp"
#include "spectral/objective.hpp"

namespace sgl::core {
namespace {

TEST(Integration, GridRecoveryPreservesSpectrum) {
  // Miniature of the paper's "2D mesh" experiment.
  const graph::Graph truth = graph::make_grid2d(20, 20, /*periodic=*/true).graph;
  measure::MeasurementOptions mopt;
  mopt.num_measurements = 50;
  const measure::Measurements m = measure::generate_measurements(truth, mopt);

  const SglResult result = learn_graph(m.voltages, m.currents);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.learned.density(), 1.3);

  const spectral::SpectrumComparison cmp =
      spectral::compare_spectra(truth, result.learned, 20);
  // The periodic 20×20 mesh's reference spectrum contains a
  // multiplicity-8 eigenvalue group inside the first 20; the correct
  // reference (all copies recovered — see Lanczos.TorusMultiplicityEight-
  // Recovered) correlates at ≈0.93–0.95 with the learned spectrum across
  // measurement seeds. The historical 0.95 bound was calibrated against a
  // per-vector eigensolver that silently dropped three degenerate copies,
  // inflating the correlation.
  EXPECT_GT(cmp.correlation, 0.92);
  // λ2 recovered within a factor band (edge scaling pins the scale).
  EXPECT_NEAR(cmp.approx[0] / cmp.reference[0], 1.0, 0.5);
}

TEST(Integration, TriangulatedMeshRecovery) {
  // Miniature of the airfoil/fe_4elt2 family.
  graph::TriMeshOptions topt;
  topt.nx = 18;
  topt.ny = 18;
  topt.holes = {{9.0, 9.0, 3.0, 3.0}};
  const graph::MeshGraph mesh = graph::make_triangulated_mesh(topt);
  measure::MeasurementOptions mopt;
  mopt.num_measurements = 50;
  const measure::Measurements m =
      measure::generate_measurements(mesh.graph, mopt);

  const SglResult result = learn_graph(m.voltages, m.currents);
  EXPECT_TRUE(graph::is_connected(result.learned));
  EXPECT_LT(result.learned.density(), 1.4);
  EXPECT_LT(result.learned.density(), mesh.graph.density() / 2.0);

  const spectral::SpectrumComparison cmp =
      spectral::compare_spectra(mesh.graph, result.learned, 15);
  EXPECT_GT(cmp.correlation, 0.9);
}

TEST(Integration, SglSparserThanBaselineWithComparableSpectrum) {
  // The Fig. 2/3 story in miniature: SGL achieves a similar spectral fit
  // with a fraction of the kNN baseline's edges.
  const graph::Graph truth = graph::make_grid2d(16, 16).graph;
  measure::MeasurementOptions mopt;
  mopt.num_measurements = 50;
  const measure::Measurements m = measure::generate_measurements(truth, mopt);

  const SglResult sgl = learn_graph(m.voltages, m.currents);
  baseline::KnnBaselineOptions bopt;
  const baseline::KnnBaselineResult knn =
      baseline::learn_knn_baseline(m.voltages, &m.currents, bopt);

  EXPECT_LT(sgl.learned.density(), 0.55 * knn.graph.density());
  const spectral::SpectrumComparison sgl_cmp =
      spectral::compare_spectra(truth, sgl.learned, 15);
  EXPECT_GT(sgl_cmp.correlation, 0.9);
}

TEST(Integration, ReducedNetworkLearning) {
  // Fig. 8 in miniature: learn a smaller spectrally-similar graph from a
  // random 30% subset of node voltages, no currents.
  const graph::Graph truth = graph::make_grid2d(18, 18).graph;
  measure::MeasurementOptions mopt;
  mopt.num_measurements = 60;
  const measure::Measurements m = measure::generate_measurements(truth, mopt);

  const Index subset = truth.num_nodes() * 3 / 10;
  const auto nodes = measure::sample_nodes(truth.num_nodes(), subset, 4);
  const la::DenseMatrix x_sub = measure::take_rows(m.voltages, nodes);

  const SglResult result = learn_graph(x_sub);
  EXPECT_EQ(result.learned.num_nodes(), subset);
  EXPECT_TRUE(graph::is_connected(result.learned));

  // Spectral correlation of the first eigenvalues (scale-free check, as
  // the reduced graph has no current measurements to pin its scale).
  const Index k = 10;
  const solver::LaplacianPinvSolver pinv_truth(truth);
  const solver::LaplacianPinvSolver pinv_small(result.learned);
  const auto eig_truth = eig::smallest_laplacian_eigenpairs(pinv_truth, k);
  const auto eig_small = eig::smallest_laplacian_eigenpairs(pinv_small, k);
  EXPECT_GT(spectral::pearson_correlation(eig_truth.eigenvalues,
                                          eig_small.eigenvalues),
            0.8);
}

TEST(Integration, NoisyMeasurementsStillRecoverStructure) {
  // Fig. 9 in miniature: ζ = 0.25 noise still preserves the few smallest
  // eigenvalues reasonably well.
  const graph::Graph truth = graph::make_grid2d(16, 16, true).graph;
  measure::MeasurementOptions mopt;
  mopt.num_measurements = 50;
  const measure::Measurements m = measure::generate_measurements(truth, mopt);
  la::DenseMatrix noisy = m.voltages;
  measure::add_noise(noisy, 0.25, 77);

  const SglResult result = learn_graph(noisy, m.currents);
  const spectral::SpectrumComparison cmp =
      spectral::compare_spectra(truth, result.learned, 10);
  EXPECT_GT(cmp.correlation, 0.8);
}

TEST(Integration, MoreMeasurementsImproveRecovery) {
  // Fig. 10 in miniature: spectrum error shrinks as M grows.
  const graph::Graph truth = graph::make_grid2d(14, 14).graph;
  const auto error_for = [&truth](Index num_measurements) {
    measure::MeasurementOptions mopt;
    mopt.num_measurements = num_measurements;
    mopt.seed = 55;
    const measure::Measurements m =
        measure::generate_measurements(truth, mopt);
    const SglResult result = learn_graph(m.voltages, m.currents);
    return spectral::compare_spectra(truth, result.learned, 10).mean_rel_error;
  };
  // Generous margin: only require that 50 measurements beat 5 clearly.
  EXPECT_LT(error_for(50), error_for(5) * 1.2);
}

}  // namespace
}  // namespace sgl::core
