// Cross-validation of the two embedding engines through the full SGL
// learning loop: on the paper's figure-generator graphs the solver-free
// engine must learn essentially the same topology as the exact engine
// (edge Jaccard ≥ 0.9) with comparable spectral quality, and the
// solver-free run must honor the determinism contract end to end.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "common/contracts.hpp"
#include "graph/generators.hpp"
#include "measure/measurements.hpp"
#include "sgl.hpp"
#include "spectral/metrics.hpp"

namespace sgl::core {
namespace {

SglResult learn_with_engine(const measure::Measurements& data,
                            spectral::EmbeddingEngine engine,
                            Index num_threads = 0) {
  SglConfig config;
  config.embedding.engine = engine;
  config.num_threads = num_threads;
  return learn_graph(data.voltages, data.currents, config);
}

std::set<std::pair<Index, Index>> edge_set(const graph::Graph& g) {
  std::set<std::pair<Index, Index>> edges;
  for (const graph::Edge& e : g.edges()) edges.insert({e.s, e.t});
  return edges;
}

double edge_jaccard(const graph::Graph& a, const graph::Graph& b) {
  const auto ea = edge_set(a);
  const auto eb = edge_set(b);
  std::size_t intersection = 0;
  for (const auto& e : ea) intersection += eb.count(e);
  return static_cast<double>(intersection) /
         static_cast<double>(ea.size() + eb.size() - intersection);
}

// Shared body: learn with both engines and compare topology + spectrum.
// Thresholds carry generous margin over the measured values (grid 20×20:
// Jaccard 0.96, correlations ≥ 0.98; triangulated mesh: Jaccard 0.93).
void expect_engines_agree(const graph::Graph& truth) {
  measure::MeasurementOptions mopt;
  mopt.num_measurements = 50;
  const measure::Measurements data = measure::generate_measurements(truth, mopt);

  const SglResult exact =
      learn_with_engine(data, spectral::EmbeddingEngine::kExact);
  const SglResult sf =
      learn_with_engine(data, spectral::EmbeddingEngine::kSolverFree);

  EXPECT_GE(edge_jaccard(exact.learned, sf.learned), 0.9);

  ASSERT_FALSE(exact.history.empty());
  ASSERT_FALSE(sf.history.empty());
  EXPECT_EQ(exact.history.back().engine, spectral::EmbeddingEngine::kExact);
  EXPECT_EQ(sf.history.back().engine, spectral::EmbeddingEngine::kSolverFree);
  EXPECT_GT(sf.history.back().smoother_sweeps, 0);
  EXPECT_EQ(exact.history.back().smoother_sweeps, 0);

  // Both learned graphs must reproduce the truth's low spectrum: high
  // eigenvalue correlation, and the solver-free relative error within a
  // loose band of the exact engine's.
  const Index k = std::min<Index>(15, truth.num_nodes() - 1);
  const spectral::SpectrumComparison cmp_exact =
      spectral::compare_spectra(truth, exact.learned, k);
  const spectral::SpectrumComparison cmp_sf =
      spectral::compare_spectra(truth, sf.learned, k);
  EXPECT_GE(cmp_exact.correlation, 0.95);
  EXPECT_GE(cmp_sf.correlation, 0.95);
  EXPECT_LE(cmp_sf.mean_rel_error, 3.0 * cmp_exact.mean_rel_error + 0.3);
}

TEST(EngineCrossValidation, Grid2d) {
  expect_engines_agree(graph::make_grid2d(20, 20).graph);
}

TEST(EngineCrossValidation, TriangulatedMesh) {
  graph::TriMeshOptions options;
  options.nx = 16;
  options.ny = 16;
  expect_engines_agree(graph::make_triangulated_mesh(options).graph);
}

TEST(EngineCrossValidation, CircuitGrid) {
  expect_engines_agree(graph::make_circuit_grid(12, 12, 0, 0.5, 5.0, 3).graph);
}

TEST(EngineCrossValidation, SolverFreeRunIsBitIdenticalAcrossThreadCounts) {
  const graph::Graph truth = graph::make_grid2d(16, 16).graph;
  measure::MeasurementOptions mopt;
  mopt.num_measurements = 40;
  const measure::Measurements data = measure::generate_measurements(truth, mopt);

  const SglResult serial =
      learn_with_engine(data, spectral::EmbeddingEngine::kSolverFree, 1);
  for (const Index threads : {4, 8}) {
    const SglResult parallel =
        learn_with_engine(data, spectral::EmbeddingEngine::kSolverFree, threads);
    ASSERT_EQ(parallel.learned.num_edges(), serial.learned.num_edges())
        << threads << " threads";
    for (Index e = 0; e < serial.learned.num_edges(); ++e) {
      const graph::Edge& a = serial.learned.edge(e);
      const graph::Edge& b = parallel.learned.edge(e);
      ASSERT_EQ(a.s, b.s) << threads << " threads, edge " << e;
      ASSERT_EQ(a.t, b.t) << threads << " threads, edge " << e;
      ASSERT_EQ(a.weight, b.weight) << threads << " threads, edge " << e;
    }
  }
}

TEST(EngineCrossValidation, SolverFreeRunIsReproducibleAtFixedSeed) {
  const graph::Graph truth = graph::make_grid2d(14, 14).graph;
  measure::MeasurementOptions mopt;
  mopt.num_measurements = 40;
  const measure::Measurements data = measure::generate_measurements(truth, mopt);

  const SglResult a =
      learn_with_engine(data, spectral::EmbeddingEngine::kSolverFree);
  const SglResult b =
      learn_with_engine(data, spectral::EmbeddingEngine::kSolverFree);
  EXPECT_EQ(edge_set(a.learned), edge_set(b.learned));
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.final_smax, b.final_smax);
}

}  // namespace
}  // namespace sgl::core
